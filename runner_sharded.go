package repro

import (
	"context"
	"io"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// ShardedRunner is the fleet front (internal/fleet, DESIGN.md §12) as a
// public Runner: it consistent-hashes canonical spec identities across N
// vpserved shards, scatters batches as batch-sync frames, gathers records
// back into deterministic spec order, probes shard health, and re-routes
// around dead or draining shards. Results are byte-identical to a
// LocalRunner over the same specs and windows — sharding changes where a
// simulation runs, never what it computes. Safe for concurrent use.
type ShardedRunner struct {
	f   *fleet.Runner
	obs *runnerObs // nil when unobserved
}

// Interface compliance is part of the facade contract.
var _ Runner = (*ShardedRunner)(nil)

// OpenShardedRunner builds a fleet front over o.Shards (vpserved base
// URLs). Windows, workers and the store belong to each shard daemon;
// o.Metrics and o.TraceWriter attach client-side observability
// (repro_dispatch_seconds{backend="sharded"} plus a dispatch span per
// Simulate), exactly like the other Open constructors.
func OpenShardedRunner(o RunnerOptions) (*ShardedRunner, error) {
	f, err := fleet.New(fleet.Options{Shards: o.Shards})
	if err != nil {
		return nil, err
	}
	var tracer *obs.Tracer
	if o.TraceWriter != nil {
		tracer = obs.NewTracer(o.TraceWriter)
	}
	return &ShardedRunner{f: f, obs: newRunnerObs(o.Metrics, tracer, "sharded")}, nil
}

// Shards reports every shard's current health (url, id, up/draining/down),
// in configuration order — the client-side view the fleet routes by.
func (r *ShardedRunner) Shards() []fleet.ShardStatus { return r.f.Shards() }

// ProbeShards refreshes every shard's health once, synchronously, ahead of
// the background prober's next tick.
func (r *ShardedRunner) ProbeShards(ctx context.Context) { r.f.ProbeOnce(ctx) }

// Simulate routes one spec to its owning shard (Runner interface).
func (r *ShardedRunner) Simulate(ctx context.Context, spec Spec) (Record, error) {
	start := time.Now()
	rec, err := r.f.Simulate(ctx, spec)
	r.obs.observe(spec.Canonical(), start, err)
	return rec, err
}

// Batch scatters the specs across their owning shards and delivers records
// to fn in spec order (Runner interface).
func (r *ShardedRunner) Batch(ctx context.Context, specs []Spec, fn func(Record) error) error {
	return r.f.Batch(ctx, specs, fn)
}

// Experiment regenerates one experiment by id (Runner interface).
// o.Workers is ignored — concurrency belongs to each shard's pool; nonzero
// windows must match the shards' windows, as with a RemoteRunner.
func (r *ShardedRunner) Experiment(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	return r.f.Experiment(ctx, id, fleet.ExperimentOptions{
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Format:  o.Format,
	}, w)
}

// Experiments fetches the experiment index from any healthy shard (Runner
// interface).
func (r *ShardedRunner) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	return r.f.Experiments(ctx)
}

// RegisterProgram uploads p to every shard and remembers its bytes for
// re-upload self-healing (Runner interface). The content-addressed workload
// id is the same on every shard and every backend.
func (r *ShardedRunner) RegisterProgram(ctx context.Context, p *Program) (string, error) {
	return r.f.RegisterProgram(ctx, p)
}

// Close stops the health prober and releases pooled connections.
func (r *ShardedRunner) Close() error { return r.f.Close() }
