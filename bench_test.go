// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation (DESIGN.md §5). Each iteration regenerates the artifact with
// reduced simulation windows so `go test -bench=.` completes in minutes;
// cmd/experiments reproduces the same artifacts with full windows.
package repro

import (
	"context"
	"io"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/emu"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/pipeline"
)

const (
	benchWarmup  = 20_000
	benchMeasure = 80_000
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		se := harness.NewSession(benchWarmup, benchMeasure)
		e, ok := harness.ExperimentByID(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		if err := e.Run(context.Background(), se, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Layout regenerates Table 1 (predictor layout summary).
func BenchmarkTable1Layout(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Config regenerates Table 2 (simulator configuration).
func BenchmarkTable2Config(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Benchmarks regenerates Table 3 (benchmark list).
func BenchmarkTable3Benchmarks(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig1BackToBack regenerates the Section 3.2 back-to-back fetch
// statistics (Fig. 1 motivation).
func BenchmarkFig1BackToBack(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig3OracleBound regenerates Fig. 3 (speedup upper bound with a
// perfect value predictor).
func BenchmarkFig3OracleBound(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4SquashAtCommit regenerates Fig. 4 (speedups of the four
// single-scheme predictors with squash-at-commit recovery, baseline
// counters vs FPC).
func BenchmarkFig4SquashAtCommit(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5SelectiveReissue regenerates Fig. 5 (same with idealized
// selective reissue).
func BenchmarkFig5SelectiveReissue(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6VTAGECoverage regenerates Fig. 6 (VTAGE speedup and coverage,
// baseline counters vs FPC).
func BenchmarkFig6VTAGECoverage(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Hybrids regenerates Fig. 7 (hybrid predictors, speedup and
// coverage).
func BenchmarkFig7Hybrids(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkAccuracy regenerates the Section 8.2 accuracy comparison.
func BenchmarkAccuracy(b *testing.B) { benchExperiment(b, "acc") }

// BenchmarkSec3RecoveryModel regenerates the Section 3.1.1 recovery cost
// model.
func BenchmarkSec3RecoveryModel(b *testing.B) { benchExperiment(b, "sec3") }

// BenchmarkSec4RegfileModel regenerates the Section 4 register file port
// cost model.
func BenchmarkSec4RegfileModel(b *testing.B) { benchExperiment(b, "sec4") }

// BenchmarkSimulatorThroughput measures raw simulation speed (µops/s) of the
// baseline machine on one kernel — the cost model for sizing experiments.
// The per-iteration cost includes session construction and trace generation;
// BenchmarkSteadyStateSimulate isolates the simulate loop itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := harness.NewSession(benchWarmup, benchMeasure)
		if _, err := se.Run(harness.Spec{Kernel: "gzip", Predictor: "none"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchWarmup+benchMeasure), "uops/op")
}

// newSteadySim builds and warms a simulator over a long kernel trace for
// steady-state measurement. The windows, predictor coverage and build logic
// live in internal/benchkit, shared with cmd/bench so BENCH_*.json records
// stay comparable to these benchmarks by construction.
func newSteadySim(tb testing.TB, kernel, predictor string, traceUops int) (*pipeline.Sim, int) {
	tb.Helper()
	tr, err := benchkit.SteadyTrace(kernel, traceUops)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := benchkit.NewWarmSim(tr, predictor)
	if err != nil {
		tb.Fatal(err)
	}
	return sim, len(tr)
}

// BenchmarkSteadyStateSimulate times the simulate loop alone — construction,
// trace generation and warmup excluded — via repeated Sim.Advance chunks.
// The ns/uop metric is this repo's primary hot-path trajectory number; run
// cmd/bench to record it to a BENCH_*.json file.
func BenchmarkSteadyStateSimulate(b *testing.B) {
	for _, predictor := range benchkit.SteadyPredictors {
		b.Run(predictor, func(b *testing.B) {
			sim, traceLen := newSteadySim(b, "gzip", predictor, benchkit.TraceUops)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sim.Stats().Committed+benchkit.Chunk > uint64(traceLen) {
					b.StopTimer()
					sim, _ = newSteadySim(b, "gzip", predictor, benchkit.TraceUops)
					b.StartTimer()
				}
				if _, err := sim.Advance(benchkit.Chunk); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchkit.Chunk, "ns/uop")
		})
	}
}

// TestSteadyStateSimulateZeroAllocs is the allocation regression gate for
// the simulate loop: once the machine is warm, advancing it must not
// allocate — for the baseline machine or for any steady predictor
// configuration, on more than one kernel, and deep into the trace (late
// phases churn the predictors' per-PC speculative windows in ways the first
// hundred-k µops never do). AllocsPerRun(1, ...) is deliberate: with a
// single run its integer average cannot absorb stray allocations.
func TestSteadyStateSimulateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full warmup windows")
	}
	// Trace budget: 30k warmup + 250k pre-advance + 2×200k probe (AllocsPerRun
	// runs the closure once extra as its own warm-up) = 680k, with headroom so
	// the measured window never hits fetch-exhausted drain at the trace end.
	const (
		traceUops  = 1_000_000
		preAdvance = 250_000
		probeUops  = 200_000
	)
	for _, kernel := range []string{"gzip", "art"} {
		for _, predictor := range benchkit.SteadyPredictors {
			t.Run(kernel+"/"+predictor, func(t *testing.T) {
				sim, _ := newSteadySim(t, kernel, predictor, traceUops)
				// Drive deep into the trace before measuring, then measure
				// a long window so phase changes are covered.
				if _, err := sim.Advance(preAdvance); err != nil {
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(1, func() {
					if _, err := sim.Advance(probeUops); err != nil {
						t.Fatal(err)
					}
				})
				if allocs > 0 {
					t.Errorf("steady-state simulate loop allocates: %.0f allocs per %dk-uop advance",
						allocs, probeUops/1000)
				}
				if got := sim.Stats().Committed; got < 30_000+preAdvance+2*probeUops {
					t.Fatalf("probe ran into the trace end: only %d uops committed", got)
				}
			})
		}
	}
}

// TestAdvanceContinuesRun pins the Advance contract the bench layer depends
// on: committing exactly n more µops (modulo retire-width overshoot) without
// restarting the machine.
func TestAdvanceContinuesRun(t *testing.T) {
	k, _ := kernels.ByName("gzip")
	tr := emu.Trace(k.Build(), 60_000)
	sim := pipeline.New(pipeline.DefaultConfig(), tr, nil, nil)
	st, err := sim.Run(5_000, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Committed
	cyclesBefore := st.Cycles
	st, err = sim.Advance(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Committed - before; got < 10_000 || got >= 10_000+uint64(pipeline.DefaultConfig().RetireWidth) {
		t.Errorf("Advance(10k) committed %d more uops", got)
	}
	if st.Cycles <= cyclesBefore {
		t.Error("Advance did not make cycle progress")
	}
	// Capped at trace end: a huge advance drains the trace and stops.
	st, err = sim.Advance(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != uint64(len(tr)) {
		t.Errorf("Advance past trace end committed %d, want %d", st.Committed, len(tr))
	}
}
