// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation (DESIGN.md §5). Each iteration regenerates the artifact with
// reduced simulation windows so `go test -bench=.` completes in minutes;
// cmd/experiments reproduces the same artifacts with full windows.
package repro

import (
	"io"
	"testing"

	"repro/internal/harness"
)

const (
	benchWarmup  = 20_000
	benchMeasure = 80_000
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		se := harness.NewSession(benchWarmup, benchMeasure)
		e, ok := harness.ExperimentByID(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		if err := e.Run(se, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Layout regenerates Table 1 (predictor layout summary).
func BenchmarkTable1Layout(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Config regenerates Table 2 (simulator configuration).
func BenchmarkTable2Config(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Benchmarks regenerates Table 3 (benchmark list).
func BenchmarkTable3Benchmarks(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig1BackToBack regenerates the Section 3.2 back-to-back fetch
// statistics (Fig. 1 motivation).
func BenchmarkFig1BackToBack(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig3OracleBound regenerates Fig. 3 (speedup upper bound with a
// perfect value predictor).
func BenchmarkFig3OracleBound(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4SquashAtCommit regenerates Fig. 4 (speedups of the four
// single-scheme predictors with squash-at-commit recovery, baseline
// counters vs FPC).
func BenchmarkFig4SquashAtCommit(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5SelectiveReissue regenerates Fig. 5 (same with idealized
// selective reissue).
func BenchmarkFig5SelectiveReissue(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6VTAGECoverage regenerates Fig. 6 (VTAGE speedup and coverage,
// baseline counters vs FPC).
func BenchmarkFig6VTAGECoverage(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Hybrids regenerates Fig. 7 (hybrid predictors, speedup and
// coverage).
func BenchmarkFig7Hybrids(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkAccuracy regenerates the Section 8.2 accuracy comparison.
func BenchmarkAccuracy(b *testing.B) { benchExperiment(b, "acc") }

// BenchmarkSec3RecoveryModel regenerates the Section 3.1.1 recovery cost
// model.
func BenchmarkSec3RecoveryModel(b *testing.B) { benchExperiment(b, "sec3") }

// BenchmarkSec4RegfileModel regenerates the Section 4 register file port
// cost model.
func BenchmarkSec4RegfileModel(b *testing.B) { benchExperiment(b, "sec4") }

// BenchmarkSimulatorThroughput measures raw simulation speed (µops/s) of the
// baseline machine on one kernel — the cost model for sizing experiments.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := harness.NewSession(benchWarmup, benchMeasure)
		if _, err := se.Run(harness.Spec{Kernel: "gzip", Predictor: "none"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchWarmup+benchMeasure), "uops/op")
}
