package repro

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestProgramBackendEquivalence is the tentpole's acceptance test: a
// generated program registered with both backends must carry one identity
// and simulate byte-identically through LocalRunner and RemoteRunner —
// Simulate and Batch alike.
func TestProgramBackendEquivalence(t *testing.T) {
	local, remote := newBackends(t)
	ctx := context.Background()

	prog, err := GenerateProgram("mixed", 2014)
	if err != nil {
		t.Fatal(err)
	}
	localID, err := local.RegisterProgram(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	remoteID, err := remote.RegisterProgram(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if localID != remoteID || localID != ProgramID(prog) {
		t.Fatalf("identities diverge: local %q, remote %q, want %q", localID, remoteID, ProgramID(prog))
	}

	specs := []Spec{
		{Program: localID, Predictor: "vtage", Counters: FPC},
		{Program: localID, Predictor: "stride"},
		{Program: localID, Predictor: "none"},
	}
	for _, spec := range specs {
		lrec, err := local.Simulate(ctx, spec)
		if err != nil {
			t.Fatalf("local %s: %v", spec.Predictor, err)
		}
		rrec, err := remote.Simulate(ctx, spec)
		if err != nil {
			t.Fatalf("remote %s: %v", spec.Predictor, err)
		}
		if lrec != rrec {
			t.Fatalf("records diverge for %s:\n local %+v\nremote %+v", spec.Predictor, lrec, rrec)
		}
	}

	var localRecs, remoteRecs []Record
	if err := local.Batch(ctx, specs, func(r Record) error { localRecs = append(localRecs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := remote.Batch(ctx, specs, func(r Record) error { remoteRecs = append(remoteRecs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range localRecs {
		if localRecs[i] != remoteRecs[i] {
			t.Fatalf("batch record %d diverges:\n local %+v\nremote %+v", i, localRecs[i], remoteRecs[i])
		}
	}
}

// TestRemoteRunnerReuploadsAfterRestart pins the transparent re-upload: a
// daemon restart empties the server-side program registry, and the runner's
// next call must cure the resulting unknown_program error by re-uploading
// and retrying — invisible to the caller.
func TestRemoteRunnerReuploadsAfterRestart(t *testing.T) {
	t.Parallel()
	newDaemon := func() *Server {
		srv, err := NewServer(ServerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	// A swappable handler stands in for "the daemon behind this URL
	// restarted": same address, fresh process state.
	var mu sync.Mutex
	current := newDaemon()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := current
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	remote := NewRemoteRunner(ts.URL)
	ctx := context.Background()
	prog, err := GenerateProgram("branchy", 99)
	if err != nil {
		t.Fatal(err)
	}
	id, err := remote.RegisterProgram(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Program: id, Predictor: "lvp"}
	before, err := remote.Simulate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	current = newDaemon() // restart: empty registry, cold memo
	mu.Unlock()

	after, err := remote.Simulate(ctx, spec)
	if err != nil {
		t.Fatalf("post-restart simulate did not self-heal: %v", err)
	}
	if before != after {
		t.Fatalf("records diverge across restart:\nbefore %+v\n after %+v", before, after)
	}

	mu.Lock()
	current = newDaemon() // restart again; heal through Batch this time
	mu.Unlock()
	var got []Record
	if err := remote.Batch(ctx, []Spec{spec}, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("post-restart batch did not self-heal: %v", err)
	}
	if len(got) != 1 || got[0] != before {
		t.Fatalf("batch records diverge across restart: %+v", got)
	}
}

// TestProgramWarmRestartZeroMisses pins the cross-process warm start for
// uploaded programs: a fresh runner over the same store directory must serve
// a previously simulated program spec entirely from disk — zero simulations
// started.
func TestProgramWarmRestartZeroMisses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ctx := context.Background()
	prog, err := GenerateProgram("memory", 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(id string) Spec { return Spec{Program: id, Predictor: "vtage", Counters: FPC} }

	r1, err := OpenLocalRunner(RunnerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := r1.RegisterProgram(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r1.Simulate(ctx, spec(id))
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()

	r2, err := OpenLocalRunner(RunnerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.RegisterProgram(ctx, prog); err != nil {
		t.Fatal(err)
	}
	second, err := r2.Simulate(ctx, spec(id))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("warm restart changed the record:\nfirst  %+v\nsecond %+v", first, second)
	}
	m := r2.MemoStats()
	if m.Misses != 0 || m.StoreHits == 0 {
		t.Fatalf("warm restart re-simulated: %+v", m)
	}
}
