package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// shardedFixture is a local fleet for differential tests: N in-process
// service shards behind real http.Servers (so a test can force-kill one
// mid-batch — httptest's Close politely waits for in-flight requests,
// which is exactly what a kill must not do) plus a ShardedRunner front.
type shardedFixture struct {
	runner *ShardedRunner
	httpds []*http.Server
	urls   []string
}

// kill force-closes one shard's listener and every active connection.
func (fx *shardedFixture) kill(i int) { fx.httpds[i].Close() }

func newShardedFixture(t testing.TB, shards int) *shardedFixture {
	t.Helper()
	fx := &shardedFixture{}
	for i := 0; i < shards; i++ {
		srv, err := NewServer(ServerOptions{
			Warmup:  runnerWarmup,
			Measure: runnerMeasure,
			Workers: 2,
			ShardID: fmt.Sprintf("t-shard-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		httpd := &http.Server{Handler: srv}
		go httpd.Serve(ln)
		t.Cleanup(func() { httpd.Close(); srv.Close() })
		fx.httpds = append(fx.httpds, httpd)
		fx.urls = append(fx.urls, "http://"+ln.Addr().String())
	}
	r, err := OpenShardedRunner(RunnerOptions{Shards: fx.urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	fx.runner = r
	return fx
}

// shardedReference is the LocalRunner every sharded result is held against.
func shardedReference(t testing.TB) *LocalRunner {
	t.Helper()
	local := NewLocalRunner(RunnerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 4})
	t.Cleanup(func() { local.Close() })
	return local
}

func collectBatch(t testing.TB, r Runner, specs []Spec) []Record {
	t.Helper()
	var recs []Record
	if err := r.Batch(context.Background(), specs, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatalf("%T batch: %v", r, err)
	}
	return recs
}

func asJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedRunnerEquivalence is the fleet acceptance test: batches,
// single-spec dispatch, experiments (server-rendered text and locally
// emitted csv), and a registered-program sweep must be byte-identical to a
// LocalRunner across 1, 2 and 3 shards.
func TestShardedRunnerEquivalence(t *testing.T) {
	local := shardedReference(t)
	ctx := context.Background()
	specs := differentialSpecs()
	wantBatch := asJSON(t, collectBatch(t, local, specs))

	var wantText, wantCSV bytes.Buffer
	if err := local.Experiment(ctx, "fig1", ExperimentOptions{Format: "text"}, &wantText); err != nil {
		t.Fatal(err)
	}
	if err := local.Experiment(ctx, "fig1", ExperimentOptions{Format: "csv"}, &wantCSV); err != nil {
		t.Fatal(err)
	}

	// A registered-program sweep — the corpus path: same program, same
	// predictors, byte-identical records wherever each spec lands.
	prog, err := GenerateProgram(GeneratorFamilies()[0], 42)
	if err != nil {
		t.Fatal(err)
	}
	localID, err := local.RegisterProgram(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	progSpecs := func(id string) []Spec {
		return []Spec{
			{Program: id, Predictor: "lvp", Counters: FPC},
			{Program: id, Predictor: "vtage", Counters: FPC},
		}
	}
	wantProg := asJSON(t, collectBatch(t, local, progSpecs(localID)))

	for _, shards := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			fx := newShardedFixture(t, shards)
			r := fx.runner

			if got := asJSON(t, collectBatch(t, r, specs)); !bytes.Equal(got, wantBatch) {
				t.Errorf("batch records differ from LocalRunner:\n got %s\nwant %s", got, wantBatch)
			}

			rec, err := r.Simulate(ctx, specs[3])
			if err != nil {
				t.Fatal(err)
			}
			lrec, err := local.Simulate(ctx, specs[3])
			if err != nil {
				t.Fatal(err)
			}
			if rec != lrec {
				t.Errorf("Simulate differs:\n got %+v\nwant %+v", rec, lrec)
			}

			var gotText, gotCSV bytes.Buffer
			if err := r.Experiment(ctx, "fig1", ExperimentOptions{Format: "text"}, &gotText); err != nil {
				t.Fatal(err)
			}
			if gotText.String() != wantText.String() {
				t.Errorf("fig1 text differs:\n--- sharded\n%s--- local\n%s", gotText.String(), wantText.String())
			}
			if err := r.Experiment(ctx, "fig1", ExperimentOptions{Format: "csv"}, &gotCSV); err != nil {
				t.Fatal(err)
			}
			if gotCSV.String() != wantCSV.String() {
				t.Errorf("fig1 csv differs:\n--- sharded\n%s--- local\n%s", gotCSV.String(), wantCSV.String())
			}

			id, err := r.RegisterProgram(ctx, prog)
			if err != nil {
				t.Fatal(err)
			}
			if id != localID {
				t.Fatalf("program id differs across backends: %s vs %s", id, localID)
			}
			if got := asJSON(t, collectBatch(t, r, progSpecs(id))); !bytes.Equal(got, wantProg) {
				t.Errorf("program sweep differs:\n got %s\nwant %s", got, wantProg)
			}

			li, err := local.Experiments(ctx)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := r.Experiments(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(li) != fmt.Sprint(ri) {
				t.Errorf("experiment index differs:\nlocal:   %v\nsharded: %v", li, ri)
			}
		})
	}
}

// TestShardedRunnerKillMidBatch: killing a shard while a batch is in
// flight re-routes its work to the survivors — the batch completes with
// records byte-identical to a LocalRunner, and the killed shard is marked
// down.
func TestShardedRunnerKillMidBatch(t *testing.T) {
	local := shardedReference(t)
	specs := harness.Fig4Specs()[:60]
	want := asJSON(t, collectBatch(t, local, specs))

	fx := newShardedFixture(t, 3)
	ctx := context.Background()
	var got []Record
	killed := false
	if err := fx.runner.Batch(ctx, specs, func(rec Record) error {
		got = append(got, rec)
		if !killed && len(got) == 3 {
			killed = true
			fx.kill(0) // force-close the listener and every active connection
		}
		return nil
	}); err != nil {
		t.Fatalf("batch with mid-flight shard kill: %v", err)
	}
	if !killed {
		t.Fatal("batch finished before the kill fired")
	}
	if g := asJSON(t, got); !bytes.Equal(g, want) {
		t.Errorf("records differ after mid-batch kill:\n got %s\nwant %s", g, want)
	}

	pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	fx.runner.ProbeShards(pctx)
	states := fx.runner.Shards()
	if states[0].State != "down" {
		t.Errorf("killed shard state = %q, want down (%+v)", states[0].State, states)
	}
	up := 0
	for _, st := range states[1:] {
		if st.State == "up" {
			up++
		}
	}
	if up != 2 {
		t.Errorf("survivors not up: %+v", states)
	}
}

// TestShardedRunnerSurfacesSpecErrors: fleet re-routing must not eat real
// failures — an invalid spec and an unknown experiment keep their standard
// errors.
func TestShardedRunnerSurfacesSpecErrors(t *testing.T) {
	fx := newShardedFixture(t, 2)
	ctx := context.Background()
	bad := Spec{Kernel: "art", Predictor: "lvp", MaxHist: 256}
	if _, err := fx.runner.Simulate(ctx, bad); err == nil || !strings.Contains(err.Error(), "max_hist") {
		t.Errorf("bad spec error: %v", err)
	}
	err := fx.runner.Experiment(ctx, "table1", ExperimentOptions{Format: "json"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no structured results") {
		t.Errorf("json for text-only experiment: %v", err)
	}
	err = fx.runner.Experiment(ctx, "fig1", ExperimentOptions{Warmup: 77, Measure: 88}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "per-daemon") {
		t.Errorf("window mismatch error: %v", err)
	}
}
