package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

// RemoteRunner runs simulations against a vpserved daemon through the typed
// client: Simulate maps onto POST /v1/simulate, Batch onto a batch job
// followed over the result stream (records reach the callback as they
// arrive, reordered into spec order), and Experiment onto a server-side
// experiment job. The daemon's process-lifetime session plays the role of
// LocalRunner's shared memo, so a warm server answers repeat work at memo
// speed for every client. Server failures surface as *service.APIError
// (unwrapped — errors.As works directly on the returned error).
type RemoteRunner struct {
	c   *client.Client
	obs *runnerObs // nil when unobserved

	// progs remembers the encoded bytes of every program this runner has
	// registered, keyed by workload id, so a daemon restart (which empties
	// the server-side registry but not the persistent store) is cured by a
	// transparent re-upload instead of surfacing CodeUnknownProgram.
	mu    sync.Mutex
	progs map[string][]byte
}

// NewRemoteRunner builds a runner against the service at baseURL
// (e.g. "http://127.0.0.1:8437").
func NewRemoteRunner(baseURL string) *RemoteRunner {
	return &RemoteRunner{c: client.New(baseURL)}
}

// OpenRemoteRunner is NewRemoteRunner with client-side observability:
// o.Metrics registers repro_dispatch_seconds{backend="remote"} — the full
// HTTP round-trip per Simulate, the number to hold against a local runner's
// "local" label — and o.TraceWriter receives one dispatch span per call.
// The remaining RunnerOptions fields describe a local session and are
// ignored: windows, workers, and the store belong to the daemon.
func OpenRemoteRunner(baseURL string, o RunnerOptions) *RemoteRunner {
	var tracer *obs.Tracer
	if o.TraceWriter != nil {
		tracer = obs.NewTracer(o.TraceWriter)
	}
	return &RemoteRunner{
		c:   client.New(baseURL),
		obs: newRunnerObs(o.Metrics, tracer, "remote"),
	}
}

// NewRemoteRunnerClient wraps an existing typed client (tests, custom
// transports).
func NewRemoteRunnerClient(c *Client) *RemoteRunner { return &RemoteRunner{c: c} }

// RegisterProgram uploads p to the daemon (POST /v1/programs) and returns
// its canonical workload string (Runner interface). The runner remembers
// the program's bytes: if a later call hits a daemon that has forgotten the
// registration (a restart, a different daemon behind the same URL), the
// program is re-uploaded and the call retried, transparently.
func (r *RemoteRunner) RegisterProgram(ctx context.Context, p *Program) (string, error) {
	if p == nil {
		return "", errors.New("repro: RegisterProgram: nil program")
	}
	if err := isa.CheckEncodable(p); err != nil {
		return "", err
	}
	if err := p.Validate(); err != nil {
		return "", fmt.Errorf("repro: invalid program: %w", err)
	}
	enc := p.Encode()
	info, err := r.c.UploadProgram(ctx, enc)
	if err != nil {
		return "", err
	}
	if harness.IsProgramRef(info.ID) {
		r.mu.Lock()
		if r.progs == nil {
			r.progs = make(map[string][]byte)
		}
		r.progs[info.ID] = enc
		r.mu.Unlock()
	}
	return info.ID, nil
}

// isUnknownProgram recognizes the curable CodeUnknownProgram API error.
func isUnknownProgram(err error) bool {
	var apiErr *service.APIError
	return errors.As(err, &apiErr) && apiErr.Code == service.CodeUnknownProgram
}

// reupload re-registers the remembered programs the given workloads name.
// Reports whether at least one upload succeeded (i.e. a retry could help).
func (r *RemoteRunner) reupload(ctx context.Context, workloads ...string) bool {
	retry := false
	for _, wl := range workloads {
		r.mu.Lock()
		enc := r.progs[wl]
		r.mu.Unlock()
		if enc == nil {
			continue
		}
		if _, err := r.c.UploadProgram(ctx, enc); err == nil {
			retry = true
		}
	}
	return retry
}

// Simulate runs one spec synchronously on the server. The spec is
// canonicalized and validated locally first — Spec is the same type on both
// sides of the wire, so the check cannot drift from the server's.
func (r *RemoteRunner) Simulate(ctx context.Context, spec Spec) (Record, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return Record{}, err
	}
	start := time.Now()
	rec, err := r.c.Simulate(ctx, service.RequestFor(spec))
	if isUnknownProgram(err) && r.reupload(ctx, spec.Kernel) {
		rec, err = r.c.Simulate(ctx, service.RequestFor(spec))
	}
	r.obs.observe(spec, start, err)
	return rec, err
}

// Batch submits the specs as one job and follows its result stream,
// delivering records to fn in spec order as they stream in.
func (r *RemoteRunner) Batch(ctx context.Context, specs []Spec, fn func(Record) error) error {
	if len(specs) == 0 {
		return nil
	}
	reqs := make([]service.SpecRequest, len(specs))
	workloads := make([]string, len(specs))
	for i, sp := range specs {
		sp = sp.Canonical()
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
		reqs[i] = service.RequestFor(sp)
		workloads[i] = sp.Kernel
	}
	st, err := r.c.SubmitBatch(ctx, reqs)
	if isUnknownProgram(err) && r.reupload(ctx, workloads...) {
		st, err = r.c.SubmitBatch(ctx, reqs)
	}
	if err != nil {
		return err
	}
	return r.follow(ctx, st.ID, len(specs), fn)
}

// follow streams job events, reordering "record" and per-spec "error"
// events (which arrive in completion order, each carrying its index into
// the requested spec order) into spec-order deliveries to fn. It enforces
// the Batch contract: fn sees each record exactly once, in order, while the
// job is still running; the first spec failure in spec order aborts. A job
// abandoned early — fn errored, the context died, the stream broke — is
// cancelled server-side so its tasks stop burning workers.
func (r *RemoteRunner) follow(ctx context.Context, jobID string, n int, fn func(Record) error) error {
	finished := false
	defer func() {
		if !finished {
			// Best effort, on a fresh context: ours may already be dead, and
			// cancelling a finished job is an idempotent no-op.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			r.c.Cancel(cctx, jobID)
		}
	}()

	type entry struct {
		rec    *harness.Record
		errMsg string
	}
	entries := make([]entry, n)
	have := make([]bool, n)
	next := 0
	deliver := func() error {
		for next < n && have[next] {
			e := entries[next]
			if e.rec == nil {
				return fmt.Errorf("spec %d: %s", next, e.errMsg)
			}
			if err := fn(*e.rec); err != nil {
				return err
			}
			next++
		}
		return nil
	}
	final, err := r.c.Stream(ctx, jobID, func(ev service.Event) error {
		switch ev.Type {
		case "record", "error":
			if ev.Index < 0 || ev.Index >= n || (ev.Type == "record" && ev.Record == nil) {
				return fmt.Errorf("repro: job %s: malformed %s event (index %d of %d specs)",
					jobID, ev.Type, ev.Index, n)
			}
			entries[ev.Index] = entry{rec: ev.Record, errMsg: ev.Error}
			have[ev.Index] = true
			return deliver()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("repro: job %s ended %s: %s", jobID, final.State, final.Error)
	}
	if next != n {
		return fmt.Errorf("repro: job %s done after delivering %d of %d records", jobID, next, n)
	}
	finished = true
	return nil
}

// Experiment runs one experiment as a server-side job. Text renders on the
// server (the artifact is byte-identical to a local render — same code,
// same warm memo reads); json/csv stream the job's records and emit them
// locally through the same Write{JSON,CSV} path a LocalRunner uses.
// o.Workers is ignored: concurrency belongs to the server's pool. Nonzero
// o.Warmup/o.Measure are verified against the server's windows — a remote
// runner cannot resize simulations per call, only refuse a mismatch loudly.
func (r *RemoteRunner) Experiment(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	switch o.Format {
	case "", "text", "json", "csv":
	default:
		return fmt.Errorf("harness: unknown format %q (have text, json, csv)", o.Format)
	}
	if o.Warmup != 0 || o.Measure != 0 {
		stats, err := r.c.Stats(ctx)
		if err != nil {
			return err
		}
		lim := stats.Limits
		if (o.Warmup != 0 && o.Warmup != lim.Warmup) || (o.Measure != 0 && o.Measure != lim.Measure) {
			return fmt.Errorf("repro: server simulates %d+%d µops, not the requested %d+%d: "+
				"window sizing is per-daemon (vpserved -warmup/-measure), not per call",
				lim.Warmup, lim.Measure, o.Warmup, o.Measure)
		}
	}
	st, err := r.c.SubmitExperiment(ctx, id)
	if err != nil {
		return err
	}

	if o.Format == "json" || o.Format == "csv" {
		if st.Specs == 0 {
			// Match the local renderer's refusal for experiments that
			// declare no spec set; the submitted job would render text.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			r.c.Cancel(cctx, st.ID)
			return fmt.Errorf("%s: no structured results (text-only experiment)", id)
		}
		recs := make([]Record, 0, st.Specs)
		if err := r.follow(ctx, st.ID, st.Specs, func(rec Record) error {
			recs = append(recs, rec)
			return nil
		}); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if o.Format == "json" {
			return harness.WriteJSON(w, recs)
		}
		return harness.WriteCSV(w, recs)
	}

	finished := false
	defer func() {
		if !finished {
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			r.c.Cancel(cctx, st.ID)
		}
	}()
	final, err := r.c.Wait(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if final.State != service.StateDone {
		return fmt.Errorf("%s: job %s ended %s: %s", id, final.ID, final.State, final.Error)
	}
	finished = true
	_, err = io.WriteString(w, final.Artifact)
	return err
}

// Experiments fetches the server's experiment index.
func (r *RemoteRunner) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	return r.c.Experiments(ctx)
}

// Close releases the client's pooled connections.
func (r *RemoteRunner) Close() error {
	r.c.Close()
	return nil
}
