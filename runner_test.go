package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// runnerWindows are small enough for -short while still exercising real
// simulations on both backends.
const (
	runnerWarmup  = 1_000
	runnerMeasure = 4_000
)

// newBackends builds the two Runner implementations over identical window
// sizing: a LocalRunner, and a RemoteRunner against an httptest-hosted
// Server. Differential tests drive both and require identical output.
func newBackends(t testing.TB) (*LocalRunner, *RemoteRunner) {
	t.Helper()
	local := NewLocalRunner(RunnerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 4})
	srv, err := NewServer(ServerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	remote := NewRemoteRunner(ts.URL)
	t.Cleanup(func() {
		local.Close()
		remote.Close()
		ts.Close()
		srv.Close()
	})
	return local, remote
}

// differentialSpecs is a small batch covering the classic four-field specs,
// a shared-baseline pair, and the extended canonical key (width, history,
// loads-only, explicit vector).
func differentialSpecs() []Spec {
	return []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "gzip", Predictor: "stride", Counters: FPC, Recovery: SelectiveReissue},
		{Kernel: "art", Predictor: "vtage", Counters: FPC, Width: 4, MaxHist: 256},
		{Kernel: "art", Predictor: "lvp", LoadsOnly: true, FPCVec: "0,2,2,2,2,3,3"},
	}
}

// TestRunnerBackendEquivalence is the PR's acceptance test: the same specs
// and the same experiment, driven through LocalRunner and RemoteRunner,
// must yield byte-identical records and rendered artifacts.
func TestRunnerBackendEquivalence(t *testing.T) {
	local, remote := newBackends(t)
	ctx := context.Background()
	specs := differentialSpecs()

	collect := func(r Runner) ([]Record, error) {
		var recs []Record
		err := r.Batch(ctx, specs, func(rec Record) error {
			recs = append(recs, rec)
			return nil
		})
		return recs, err
	}
	localRecs, err := collect(local)
	if err != nil {
		t.Fatalf("local batch: %v", err)
	}
	remoteRecs, err := collect(remote)
	if err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	if len(localRecs) != len(specs) || len(remoteRecs) != len(specs) {
		t.Fatalf("got %d local / %d remote records, want %d each", len(localRecs), len(remoteRecs), len(specs))
	}
	for i := range specs {
		if localRecs[i].Kernel != specs[i].Kernel || localRecs[i].Predictor != specs[i].Predictor {
			t.Errorf("batch delivery out of spec order at %d: %+v", i, localRecs[i])
		}
	}
	localJSON, _ := json.Marshal(localRecs)
	remoteJSON, _ := json.Marshal(remoteRecs)
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Errorf("backends disagree on batch records:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}

	// Single-spec dispatch must agree with itself across backends too.
	lr, err := local.Simulate(ctx, specs[3])
	if err != nil {
		t.Fatal(err)
	}
	rr, err := remote.Simulate(ctx, specs[3])
	if err != nil {
		t.Fatal(err)
	}
	if lr != rr {
		t.Errorf("Simulate disagrees across backends:\nlocal:  %+v\nremote: %+v", lr, rr)
	}

	// Experiment rendering: text (server-side render vs local render) and
	// csv (streamed records vs local records) are byte-identical.
	for _, format := range []string{"text", "csv"} {
		var lb, rb bytes.Buffer
		if err := local.Experiment(ctx, "fig1", ExperimentOptions{Format: format}, &lb); err != nil {
			t.Fatalf("local fig1 %s: %v", format, err)
		}
		if err := remote.Experiment(ctx, "fig1", ExperimentOptions{Format: format}, &rb); err != nil {
			t.Fatalf("remote fig1 %s: %v", format, err)
		}
		if lb.String() != rb.String() {
			t.Errorf("fig1 %s output differs across backends:\n--- local\n%s--- remote\n%s",
				format, lb.String(), rb.String())
		}
	}
}

// TestRunnerExperimentsIndex: both backends serve the same experiment
// index, and text-only experiments refuse structured formats identically.
func TestRunnerExperimentsIndex(t *testing.T) {
	local, remote := newBackends(t)
	ctx := context.Background()
	li, err := local.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := remote.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(li) != fmt.Sprint(ri) {
		t.Errorf("experiment indexes differ:\nlocal:  %v\nremote: %v", li, ri)
	}
	if len(li) == 0 || li[0].ID != "table1" {
		t.Errorf("unexpected index head: %v", li)
	}

	for _, r := range []Runner{local, remote} {
		err := r.Experiment(ctx, "table1", ExperimentOptions{Format: "json"}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "no structured results") {
			t.Errorf("%T: json for text-only experiment: %v", r, err)
		}
	}
}

// TestRunnerBatchCallbackAbort: a non-nil fn error stops the batch on both
// backends without delivering further records.
func TestRunnerBatchCallbackAbort(t *testing.T) {
	local, remote := newBackends(t)
	ctx := context.Background()
	sentinel := errors.New("stop after two")
	for _, tc := range []struct {
		name string
		r    Runner
	}{{"local", local}, {"remote", remote}} {
		calls := 0
		err := tc.r.Batch(ctx, differentialSpecs(), func(Record) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: Batch returned %v, want the callback error", tc.name, err)
		}
		if calls != 2 {
			t.Errorf("%s: callback ran %d times after aborting at 2", tc.name, calls)
		}
	}
}

// TestRunnerValidatesSpecs: both backends reject invalid specs before (or
// at) the wire, with the shared harness validation error.
func TestRunnerValidatesSpecs(t *testing.T) {
	local, remote := newBackends(t)
	ctx := context.Background()
	bad := Spec{Kernel: "art", Predictor: "lvp", MaxHist: 256} // max_hist is vtage-only
	for _, tc := range []struct {
		name string
		r    Runner
	}{{"local", local}, {"remote", remote}} {
		if _, err := tc.r.Simulate(ctx, bad); err == nil || !strings.Contains(err.Error(), "max_hist") {
			t.Errorf("%s: bad spec error %v", tc.name, err)
		}
		err := tc.r.Batch(ctx, []Spec{bad}, func(Record) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "spec 0") {
			t.Errorf("%s: bad batch error %v", tc.name, err)
		}
	}
}

// TestRemoteRunnerTypedErrors: server-side failures surface as unwrapped
// *APIError values — errors.As works directly on what the runner returns.
func TestRemoteRunnerTypedErrors(t *testing.T) {
	_, remote := newBackends(t)
	ctx := context.Background()
	err := remote.Experiment(ctx, "fig99", ExperimentOptions{}, &bytes.Buffer{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("unknown experiment error %v is not an *APIError", err)
	}
	if apiErr.Status != 404 || apiErr.Code != APICodeNotFound {
		t.Errorf("got status %d code %q, want 404 %s", apiErr.Status, apiErr.Code, APICodeNotFound)
	}
	if !strings.Contains(apiErr.Msg, "fig4") {
		t.Errorf("404 message does not carry the index: %s", apiErr.Msg)
	}

	// Window-mismatch refusal is loud and names both sizings.
	err = remote.Experiment(ctx, "fig1", ExperimentOptions{Warmup: 77, Measure: 88}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "per-daemon") {
		t.Errorf("window mismatch error: %v", err)
	}
}

// TestRunnerExperimentWindowOverride: a LocalRunner honours per-call window
// overrides on a throwaway session — the output matches a runner built with
// those windows natively.
func TestRunnerExperimentWindowOverride(t *testing.T) {
	big := NewLocalRunner(RunnerOptions{Warmup: 500, Measure: 2_000})
	var native bytes.Buffer
	if err := big.Experiment(context.Background(), "fig1", ExperimentOptions{}, &native); err != nil {
		t.Fatal(err)
	}
	other := NewLocalRunner(RunnerOptions{Warmup: runnerWarmup, Measure: runnerMeasure})
	var overridden bytes.Buffer
	opts := ExperimentOptions{Warmup: 500, Measure: 2_000}
	if err := other.Experiment(context.Background(), "fig1", opts, &overridden); err != nil {
		t.Fatal(err)
	}
	if native.String() != overridden.String() {
		t.Errorf("window override render differs from native windows:\n--- native\n%s--- override\n%s",
			native.String(), overridden.String())
	}
	if misses := other.MemoStats().Misses; misses != 0 {
		t.Errorf("window-overridden render leaked %d simulations into the runner's session", misses)
	}
}

// TestDefaultRunnerPoolBounded: the process-default runner pool behind the
// deprecated wrappers evicts oldest-first beyond its bound, so legacy
// window sweeps cannot retain traces without limit.
func TestDefaultRunnerPoolBounded(t *testing.T) {
	for i := 0; i < maxDefaultRunners+3; i++ {
		defaultLocalRunner(uint64(31+i), uint64(91+i), "") // windows nobody else uses
	}
	defaultMu.Lock()
	n, ordered := len(defaultRunners), len(defaultOrder)
	defaultMu.Unlock()
	if n != maxDefaultRunners || ordered != n {
		t.Errorf("pool holds %d runners (%d ordered), want %d", n, ordered, maxDefaultRunners)
	}
	// A repeat request for a live sizing is still the same runner.
	a, _ := defaultLocalRunner(uint64(31+maxDefaultRunners+2), uint64(91+maxDefaultRunners+2), "")
	b, _ := defaultLocalRunner(uint64(31+maxDefaultRunners+2), uint64(91+maxDefaultRunners+2), "")
	if a != b {
		t.Error("repeat lookup of a retained sizing returned a different runner")
	}
}

// TestDeprecatedSimulateSharesDefaultRunner pins the facade-warmup fix: the
// deprecated one-shot Simulate is backed by a process-default LocalRunner,
// so a second identical call is a memo hit, not a cold re-run.
func TestDeprecatedSimulateSharesDefaultRunner(t *testing.T) {
	// A window sizing no other test uses, so this test owns its default
	// runner and the counters below are exact.
	o := Options{Kernel: "mcf", Predictor: "lvp", Counters: FPC, Warmup: 730, Measure: 2_610}
	first, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := defaultLocalRunner(o.Warmup, o.Measure, "")
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := r.MemoStats().Misses
	if missesAfterFirst != 2 { // the run and its baseline
		t.Fatalf("first Simulate started %d simulations, want 2", missesAfterFirst)
	}
	second, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	m := r.MemoStats()
	if m.Misses != missesAfterFirst {
		t.Errorf("second identical Simulate started %d new simulations; the default runner is not shared",
			m.Misses-missesAfterFirst)
	}
	if m.Hits == 0 {
		t.Error("second identical Simulate recorded no memo hits")
	}
	if first != second {
		t.Errorf("memoized Simulate changed its summary:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	// The deprecated experiment wrapper shares the same default-runner pool.
	var buf bytes.Buffer
	if err := RunExperiment("table2", o.Warmup, o.Measure, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8") {
		t.Errorf("table2 render looks wrong:\n%s", buf.String())
	}
}
