package emu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// buildLoop assembles: sum = 0; for i in 0..n-1 { sum += i }; halt.
func buildLoop(n int64) *isa.Program {
	b := isa.NewBuilder("loop")
	b.Li(isa.R1, 0) // i
	b.Li(isa.R2, 0) // sum
	b.Li(isa.R3, n)
	loop := b.Here()
	b.Add(isa.R2, isa.R2, isa.R1)
	b.Addi(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R3, loop)
	b.Halt()
	return b.Program()
}

func TestLoopSum(t *testing.T) {
	p := buildLoop(10)
	m := New(p)
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if got, want := m.Reg(isa.R2), uint64(45); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if !m.Halted() {
		t.Error("machine did not halt")
	}
}

func TestIntOps(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *isa.Builder)
		reg   isa.Reg
		want  uint64
	}{
		{"add", func(b *isa.Builder) { b.Li(isa.R1, 3); b.Addi(isa.R2, isa.R1, 4) }, isa.R2, 7},
		{"sub", func(b *isa.Builder) { b.Li(isa.R1, 3); b.Subi(isa.R2, isa.R1, 5) }, isa.R2, ^uint64(1)},
		{"and", func(b *isa.Builder) { b.Li(isa.R1, 0xF0); b.Andi(isa.R2, isa.R1, 0x3C) }, isa.R2, 0x30},
		{"or", func(b *isa.Builder) { b.Li(isa.R1, 0xF0); b.Ori(isa.R2, isa.R1, 0x0F) }, isa.R2, 0xFF},
		{"xor", func(b *isa.Builder) { b.Li(isa.R1, 0xFF); b.Xori(isa.R2, isa.R1, 0x0F) }, isa.R2, 0xF0},
		{"shl", func(b *isa.Builder) { b.Li(isa.R1, 1); b.Shli(isa.R2, isa.R1, 10) }, isa.R2, 1024},
		{"shr", func(b *isa.Builder) { b.Li(isa.R1, 1024); b.Shri(isa.R2, isa.R1, 3) }, isa.R2, 128},
		{"sra", func(b *isa.Builder) { b.Li(isa.R1, -16); b.Srai(isa.R2, isa.R1, 2) }, isa.R2, ^uint64(3)},
		{"cmpeq", func(b *isa.Builder) { b.Li(isa.R1, 5); b.Li(isa.R2, 5); b.Cmpeq(isa.R3, isa.R1, isa.R2) }, isa.R3, 1},
		{"cmplt", func(b *isa.Builder) { b.Li(isa.R1, -1); b.Cmplti(isa.R2, isa.R1, 0) }, isa.R2, 1},
		{"mul", func(b *isa.Builder) { b.Li(isa.R1, 7); b.Muli(isa.R2, isa.R1, 6) }, isa.R2, 42},
		{"div", func(b *isa.Builder) { b.Li(isa.R1, 42); b.Li(isa.R2, 6); b.Div(isa.R3, isa.R1, isa.R2) }, isa.R3, 7},
		{"divzero", func(b *isa.Builder) { b.Li(isa.R1, 42); b.Li(isa.R2, 0); b.Div(isa.R3, isa.R1, isa.R2) }, isa.R3, 0},
		{"rem", func(b *isa.Builder) { b.Li(isa.R1, 43); b.Remi(isa.R2, isa.R1, 6) }, isa.R2, 1},
		{"mov", func(b *isa.Builder) { b.Li(isa.R1, 99); b.Mov(isa.R2, isa.R1) }, isa.R2, 99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := isa.NewBuilder(tt.name)
			tt.build(b)
			b.Halt()
			m := New(b.Program())
			for {
				if _, ok := m.Step(); !ok {
					break
				}
			}
			if got := m.Reg(tt.reg); got != tt.want {
				t.Errorf("%s = %#x, want %#x", tt.reg, got, tt.want)
			}
		})
	}
}

func TestFPOps(t *testing.T) {
	b := isa.NewBuilder("fp")
	b.DataF(0x1000, 2.5, 4.0)
	b.Li(isa.R1, 0x1000)
	b.Fld(isa.F1, isa.R1, 0)
	b.Fld(isa.F2, isa.R1, 8)
	b.Fadd(isa.F3, isa.F1, isa.F2)   // 6.5
	b.Fmul(isa.F4, isa.F1, isa.F2)   // 10.0
	b.Fsub(isa.F5, isa.F2, isa.F1)   // 1.5
	b.Fdiv(isa.F6, isa.F2, isa.F1)   // 1.6
	b.Fneg(isa.F7, isa.F1)           // -2.5
	b.Fabs(isa.F8, isa.F7)           // 2.5
	b.Fcmplt(isa.R2, isa.F1, isa.F2) // 1
	b.F2i(isa.R3, isa.F4)            // 10
	b.Li(isa.R4, 3)
	b.I2f(isa.F9, isa.R4) // 3.0
	b.Halt()
	m := New(b.Program())
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	checkF := func(r isa.Reg, want float64) {
		t.Helper()
		if got := math.Float64frombits(m.Reg(r)); got != want {
			t.Errorf("%v = %g, want %g", r, got, want)
		}
	}
	checkF(isa.F3, 6.5)
	checkF(isa.F4, 10.0)
	checkF(isa.F5, 1.5)
	checkF(isa.F6, 1.6)
	checkF(isa.F7, -2.5)
	checkF(isa.F8, 2.5)
	checkF(isa.F9, 3.0)
	if m.Reg(isa.R2) != 1 {
		t.Errorf("fcmplt = %d, want 1", m.Reg(isa.R2))
	}
	if m.Reg(isa.R3) != 10 {
		t.Errorf("f2i = %d, want 10", m.Reg(isa.R3))
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	b := isa.NewBuilder("mem")
	b.Li(isa.R1, 0x2000)
	b.Li(isa.R2, 0xDEADBEEF)
	b.St(isa.R1, 16, isa.R2)
	b.Ld(isa.R3, isa.R1, 16)
	b.Li(isa.R4, 16)
	b.Ldx(isa.R5, isa.R1, isa.R4)
	b.Halt()
	m := New(b.Program())
	for {
		if _, ok := m.Step(); !ok {
			break
		}
	}
	if got := m.Reg(isa.R3); got != 0xDEADBEEF {
		t.Errorf("ld = %#x, want 0xDEADBEEF", got)
	}
	if got := m.Reg(isa.R5); got != 0xDEADBEEF {
		t.Errorf("ldx = %#x, want 0xDEADBEEF", got)
	}
}

func TestUninitializedMemoryReadsZero(t *testing.T) {
	m := New(&isa.Program{Name: "empty", Insts: []isa.Inst{{Op: isa.HALT}}})
	if got := m.ReadMem(0x123456); got != 0 {
		t.Errorf("uninitialized read = %d, want 0", got)
	}
}

func TestCallRet(t *testing.T) {
	b := isa.NewBuilder("callret")
	fn := b.NewLabel()
	b.Li(isa.R1, 1)
	b.Call(isa.R31, fn)
	b.Addi(isa.R1, isa.R1, 100) // after return: 1+10+100 = 111
	b.Halt()
	b.Bind(fn)
	b.Addi(isa.R1, isa.R1, 10)
	b.Ret(isa.R31)
	m := New(b.Program())
	var dyns []isa.DynInst
	for {
		d, ok := m.Step()
		if !ok {
			break
		}
		dyns = append(dyns, d)
	}
	if got := m.Reg(isa.R1); got != 111 {
		t.Errorf("R1 = %d, want 111", got)
	}
	// CALL must record the link value and the correct NextPC.
	var call isa.DynInst
	found := false
	for _, d := range dyns {
		if d.Op == isa.CALL {
			call, found = d, true
		}
	}
	if !found {
		t.Fatal("no CALL in trace")
	}
	if call.Result != uint64(call.PC)+1 {
		t.Errorf("call link = %d, want %d", call.Result, call.PC+1)
	}
}

func TestDynInstFieldsForBranch(t *testing.T) {
	p := buildLoop(3)
	tr := Trace(p, 1000)
	takenSeen := 0
	for _, d := range tr {
		if d.Op == isa.BLT {
			if d.Taken {
				takenSeen++
				if d.NextPC != 3 {
					t.Errorf("taken branch NextPC = %d, want 3", d.NextPC)
				}
			} else if d.NextPC != d.PC+1 {
				t.Errorf("not-taken branch NextPC = %d, want %d", d.NextPC, d.PC+1)
			}
		}
	}
	if takenSeen != 2 {
		t.Errorf("taken branches = %d, want 2", takenSeen)
	}
}

func TestTraceSeqIsDense(t *testing.T) {
	tr := Trace(buildLoop(50), 10000)
	for i, d := range tr {
		if d.Seq != uint64(i) {
			t.Fatalf("trace[%d].Seq = %d", i, d.Seq)
		}
	}
}

func TestTraceMaxUops(t *testing.T) {
	tr := Trace(buildLoop(1_000_000), 100)
	if len(tr) != 100 {
		t.Errorf("len(trace) = %d, want 100", len(tr))
	}
}

// Property: the emulator is deterministic — two traces of the same program
// are identical.
func TestDeterminism(t *testing.T) {
	f := func(n uint16) bool {
		iters := int64(n%100) + 1
		a := Trace(buildLoop(iters), 5000)
		b := Trace(buildLoop(iters), 5000)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: word-granular memory writes are readable back for arbitrary
// addresses (aligned down to 8 bytes).
func TestMemReadWriteProperty(t *testing.T) {
	m := New(&isa.Program{Name: "p", Insts: []isa.Inst{{Op: isa.HALT}}})
	f := func(addr uint64, v uint64) bool {
		addr &= 0xFFFFFFF8
		m.WriteMem(addr, v)
		return m.ReadMem(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
