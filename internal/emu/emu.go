// Package emu is the functional emulator for the mini-ISA: it executes a
// program architecturally, one µop at a time, producing the dynamic µop
// stream (with actual result values, effective addresses, and branch
// outcomes) that drives the trace-driven timing model. It plays the role of
// gem5's functional front in the paper's setup.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

const (
	pageShift = 12 // 4 KiB pages
	pageWords = 1 << (pageShift - 3)
)

type page [pageWords]uint64

// Machine is the architectural state of one running program. The zero value
// is not usable; create machines with New.
type Machine struct {
	prog   *isa.Program
	regs   [isa.NumRegs]uint64
	mem    map[uint64]*page
	pc     uint32
	seq    uint64
	halted bool
}

// New creates a machine loaded with p's initial state.
func New(p *isa.Program) *Machine {
	m := &Machine{
		prog: p,
		mem:  make(map[uint64]*page),
		pc:   p.Entry,
	}
	for _, seg := range p.Data {
		for i, w := range seg.Words {
			m.WriteMem(seg.Addr+uint64(i)*8, w)
		}
	}
	for r, v := range p.InitRegs {
		m.regs[r] = v
	}
	return m
}

// Halted reports whether the program has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// PC returns the next µop's static index.
func (m *Machine) PC() uint32 { return m.pc }

// Reg returns the current architectural value of r.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// ReadMem returns the 8-byte word at byte address addr (aligned down).
func (m *Machine) ReadMem(addr uint64) uint64 {
	pg, ok := m.mem[addr>>pageShift]
	if !ok {
		return 0
	}
	return pg[(addr>>3)&(pageWords-1)]
}

// WriteMem stores an 8-byte word at byte address addr (aligned down).
func (m *Machine) WriteMem(addr uint64, v uint64) {
	key := addr >> pageShift
	pg, ok := m.mem[key]
	if !ok {
		pg = new(page)
		m.mem[key] = pg
	}
	pg[(addr>>3)&(pageWords-1)] = v
}

func (m *Machine) src2(in isa.Inst) uint64 {
	if in.Src2 == isa.NoReg {
		return uint64(in.Imm)
	}
	return m.regs[in.Src2]
}

// Step executes one µop and returns its dynamic record. ok is false once the
// machine has halted (the HALT µop itself is returned with ok true).
func (m *Machine) Step() (d isa.DynInst, ok bool) {
	if m.halted {
		return isa.DynInst{}, false
	}
	if int(m.pc) >= len(m.prog.Insts) {
		m.halted = true
		return isa.DynInst{}, false
	}
	in := m.prog.Insts[m.pc]
	d = isa.DynInst{
		Seq:  m.seq,
		PC:   m.pc,
		Op:   in.Op,
		Dst:  in.Dst,
		Src1: in.Src1,
		Src2: in.Src2,
	}
	m.seq++
	next := m.pc + 1

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		d.Result = m.regs[in.Src1] + m.src2(in)
	case isa.SUB:
		d.Result = m.regs[in.Src1] - m.src2(in)
	case isa.AND:
		d.Result = m.regs[in.Src1] & m.src2(in)
	case isa.OR:
		d.Result = m.regs[in.Src1] | m.src2(in)
	case isa.XOR:
		d.Result = m.regs[in.Src1] ^ m.src2(in)
	case isa.SHL:
		d.Result = m.regs[in.Src1] << (m.src2(in) & 63)
	case isa.SHR:
		d.Result = m.regs[in.Src1] >> (m.src2(in) & 63)
	case isa.SRA:
		d.Result = uint64(int64(m.regs[in.Src1]) >> (m.src2(in) & 63))
	case isa.CMPEQ:
		d.Result = b2u(m.regs[in.Src1] == m.src2(in))
	case isa.CMPLT:
		d.Result = b2u(int64(m.regs[in.Src1]) < int64(m.src2(in)))
	case isa.CMPLTU:
		d.Result = b2u(m.regs[in.Src1] < m.src2(in))
	case isa.MOVI:
		d.Result = uint64(in.Imm)
	case isa.MOV:
		d.Result = m.regs[in.Src1]
	case isa.MUL:
		d.Result = m.regs[in.Src1] * m.src2(in)
	case isa.DIV:
		if v := int64(m.src2(in)); v != 0 {
			d.Result = uint64(int64(m.regs[in.Src1]) / v)
		}
	case isa.REM:
		if v := int64(m.src2(in)); v != 0 {
			d.Result = uint64(int64(m.regs[in.Src1]) % v)
		} else {
			d.Result = m.regs[in.Src1]
		}

	case isa.FADD:
		d.Result = fop(m.regs[in.Src1], m.regs[in.Src2], func(a, b float64) float64 { return a + b })
	case isa.FSUB:
		d.Result = fop(m.regs[in.Src1], m.regs[in.Src2], func(a, b float64) float64 { return a - b })
	case isa.FMUL:
		d.Result = fop(m.regs[in.Src1], m.regs[in.Src2], func(a, b float64) float64 { return a * b })
	case isa.FDIV:
		d.Result = fop(m.regs[in.Src1], m.regs[in.Src2], func(a, b float64) float64 {
			if b == 0 {
				return 0
			}
			return a / b
		})
	case isa.FMOV:
		d.Result = m.regs[in.Src1]
	case isa.FNEG:
		d.Result = math.Float64bits(-math.Float64frombits(m.regs[in.Src1]))
	case isa.FABS:
		d.Result = math.Float64bits(math.Abs(math.Float64frombits(m.regs[in.Src1])))
	case isa.I2F:
		d.Result = math.Float64bits(float64(int64(m.regs[in.Src1])))
	case isa.F2I:
		f := math.Float64frombits(m.regs[in.Src1])
		if !math.IsNaN(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			d.Result = uint64(int64(f))
		}
	case isa.FCMPLT:
		d.Result = b2u(math.Float64frombits(m.regs[in.Src1]) < math.Float64frombits(m.regs[in.Src2]))

	case isa.LD, isa.FLD:
		d.Addr = m.regs[in.Src1] + uint64(in.Imm)
		d.Result = m.ReadMem(d.Addr)
	case isa.LDX:
		d.Addr = m.regs[in.Src1] + m.regs[in.Src2]
		d.Result = m.ReadMem(d.Addr)
	case isa.ST, isa.FST:
		d.Addr = m.regs[in.Src1] + uint64(in.Imm)
		m.WriteMem(d.Addr, m.regs[in.Src2])

	case isa.BEQ:
		d.Taken = m.regs[in.Src1] == m.src2branch(in)
	case isa.BNE:
		d.Taken = m.regs[in.Src1] != m.src2branch(in)
	case isa.BLT:
		d.Taken = int64(m.regs[in.Src1]) < int64(m.src2branch(in))
	case isa.BGE:
		d.Taken = int64(m.regs[in.Src1]) >= int64(m.src2branch(in))
	case isa.JMP:
		d.Taken = true
		next = uint32(in.Imm)
	case isa.JR:
		d.Taken = true
		next = uint32(m.regs[in.Src1])
	case isa.CALL:
		d.Taken = true
		d.Result = uint64(m.pc) + 1
		next = uint32(in.Imm)
	case isa.RET:
		d.Taken = true
		next = uint32(m.regs[in.Src1])
	case isa.HALT:
		m.halted = true
	default:
		panic(fmt.Sprintf("emu: unknown opcode %v at pc %d", in.Op, m.pc))
	}

	if isa.IsConditional(in.Op) && d.Taken {
		next = uint32(in.Imm)
	}
	if in.Dst != isa.NoReg {
		m.regs[in.Dst] = d.Result
	}
	d.NextPC = next
	m.pc = next
	return d, true
}

// src2branch reads the second comparison operand of a conditional branch:
// Src2 == NoReg means compare against zero (Beqz/Bnez forms); the immediate
// slot holds the branch target, never an operand.
func (m *Machine) src2branch(in isa.Inst) uint64 {
	if in.Src2 == isa.NoReg {
		return 0
	}
	return m.regs[in.Src2]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, f func(x, y float64) float64) uint64 {
	return math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b)))
}

// Trace executes p for at most maxUops µops and returns the dynamic stream.
// The trace ends early if the program halts. It returns an error if the
// program runs a single µop short of maxUops without halting and
// requireHalt is set.
func Trace(p *isa.Program, maxUops int) []isa.DynInst {
	m := New(p)
	out := make([]isa.DynInst, 0, maxUops)
	for len(out) < maxUops {
		d, ok := m.Step()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out
}
