// Package store is a persistent, content-addressed record store: the disk
// extension of the harness session's in-process memo. Each entry is one
// immutable simulation result, addressed by a key hashed from everything
// that determines the result (canonical spec, kernel fingerprint, window
// sizing, simulator version token — the caller assembles the parts, KeyOf
// hashes them). A populated directory makes warm-start the norm: a fresh
// process pays disk reads instead of simulations, and any number of
// processes can share one directory.
//
// Robustness contract (DESIGN.md §8): a load can only ever produce the
// exact record that was stored, or a miss. Truncated files, garbage bytes,
// a stale version token, and entries whose recorded identity does not match
// the requested one all degrade silently to a miss — the caller
// re-simulates and overwrites. Writes go through a temp file and an atomic
// rename, so concurrent writers (including other processes) can race on one
// key and readers still only ever observe complete entries.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Key is a content-addressed entry key: the SHA-256 of the identity parts.
type Key [sha256.Size]byte

// KeyOf hashes the identity parts into a Key. Parts are length-prefixed, so
// distinct part lists can never collide by concatenation ("ab","c" vs
// "a","bc").
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex — also the entry's file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Stats is a snapshot of the store's counters since Open.
type Stats struct {
	Hits        uint64 // loads that returned a valid entry
	Misses      uint64 // loads that found no entry file
	LoadErrors  uint64 // loads rejected: corrupt, stale version, or mismatched identity
	Writes      uint64 // entries persisted
	WriteErrors uint64 // failed persists (disk full, permissions); never fatal
}

// Store is one directory of entries plus load/write counters. Safe for
// concurrent use by any number of goroutines and processes.
type Store struct {
	dir     string
	version string

	hits, misses, loadErrs, writes, writeErrs atomic.Uint64
}

// envelope is the on-disk form of one entry. Version and Key are verified on
// load (a copied or hand-edited file is rejected); ID is the human-readable
// identity the caller derived the key from, re-checked so that even a
// key-collision-shaped mismatch degrades to a miss instead of serving a
// wrong record.
type envelope struct {
	Version string          `json:"version"`
	Key     string          `json:"key"`
	ID      string          `json:"id"`
	Payload json.RawMessage `json:"payload"`
}

// Open opens (creating if needed) the store rooted at dir. version is the
// simulator version token: entries written under any other token are
// treated as misses, never served.
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, version: version}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the version token entries are written and verified under.
func (s *Store) Version() string { return s.version }

// path is the entry file for key.
func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+".json")
}

// Get loads the entry for key into v (via encoding/json) and reports whether
// a valid entry was found. id must match the identity recorded at Put time.
// Every failure mode — missing file, truncated or garbage bytes, version or
// identity mismatch, a payload v cannot decode — returns false; Get never
// returns a partially-filled v as true.
func (s *Store) Get(key Key, id string, v any) bool {
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var e envelope
	if err := json.Unmarshal(buf, &e); err != nil ||
		e.Version != s.version || e.Key != key.String() || e.ID != id || len(e.Payload) == 0 {
		s.loadErrs.Add(1)
		return false
	}
	// Decode strictly: an unknown field means the payload schema moved
	// without a version bump, and a zero-filled result is worse than a miss.
	dec := json.NewDecoder(bytes.NewReader(e.Payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.loadErrs.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Put persists v (via encoding/json) as the entry for key, recording id as
// its identity. The write is atomic — a temp file in the store directory
// renamed over the final name — so concurrent writers on one key are safe:
// both write complete, identical-content entries and the last rename wins.
// Errors are counted (WriteErrors) as well as returned; callers on a hot
// path may ignore them, since a failed write only costs a future miss.
func (s *Store) Put(key Key, id string, v any) error {
	fail := func(err error) error {
		s.writeErrs.Add(1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fail(err)
	}
	buf, err := json.Marshal(envelope{
		Version: s.version,
		Key:     key.String(),
		ID:      id,
		Payload: payload,
	})
	if err != nil {
		return fail(err)
	}
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fail(err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	s.writes.Add(1)
	return nil
}

// Len counts the entries currently on disk (a directory scan; for tests and
// tooling, not hot paths).
func (s *Store) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		LoadErrors:  s.loadErrs.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrs.Load(),
	}
}

// Tamper rewrites the raw bytes of key's entry file through f — the
// corruption-injection hook the robustness tests (and any fault-injection
// harness) drive: truncation, garbage, stale version tokens, copied
// envelopes. Unlike Put it writes in place and does not validate, so the
// result can be exactly as broken as requested. Returns an error if the
// entry does not exist.
func (s *Store) Tamper(key Key, f func([]byte) []byte) error {
	p := s.path(key)
	buf, err := os.ReadFile(p)
	if err != nil {
		return fmt.Errorf("store: tamper %s: %w", key, err)
	}
	return os.WriteFile(p, f(buf), 0o644)
}
