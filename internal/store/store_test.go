package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// payload is a stand-in for the result types callers persist.
type payload struct {
	A uint64  `json:"a"`
	B int64   `json:"b"`
	C float64 `json:"c"`
}

func open(t *testing.T, version string, dir ...string) *Store {
	t.Helper()
	d := ""
	if len(dir) > 0 {
		d = dir[0]
	} else {
		d = t.TempDir()
	}
	s, err := Open(d, version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyOfPartsDoNotConcatenate(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf collides across part boundaries")
	}
	if KeyOf("a") == KeyOf("a", "") {
		t.Fatal("KeyOf ignores empty trailing parts")
	}
	if len(KeyOf("x").String()) != 64 {
		t.Fatalf("key hex length = %d, want 64", len(KeyOf("x").String()))
	}
}

func TestRoundTrip(t *testing.T) {
	s := open(t, "v1")
	key := KeyOf("spec", "kernel-fp", "v1")
	want := payload{A: 42, B: -7, C: 1.25}
	if err := s.Put(key, "spec-id", want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(key, "spec-id", &got) {
		t.Fatal("Get missed a just-written entry")
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.LoadErrors != 0 || st.Writes != 1 {
		t.Fatalf("stats after round trip: %+v", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want (1, nil)", n, err)
	}
}

func TestMissingEntryIsAMiss(t *testing.T) {
	s := open(t, "v1")
	var got payload
	if s.Get(KeyOf("absent"), "id", &got) {
		t.Fatal("Get found an entry in an empty store")
	}
	if st := s.Stats(); st.Misses != 1 || st.LoadErrors != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

// corruptionCase writes one valid entry, corrupts it via Tamper, and expects
// Get to degrade to a miss (counted as a load error) without ever returning
// wrong data.
func corruptionCase(t *testing.T, corrupt func([]byte) []byte) {
	t.Helper()
	s := open(t, "v1")
	key := KeyOf("the-spec")
	if err := s.Put(key, "id", payload{A: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Tamper(key, corrupt); err != nil {
		t.Fatal(err)
	}
	got := payload{A: 999}
	if s.Get(key, "id", &got) {
		t.Fatalf("Get served a corrupted entry: %+v", got)
	}
	if st := s.Stats(); st.LoadErrors != 1 || st.Hits != 0 {
		t.Fatalf("stats after corrupted load: %+v", st)
	}
	// The caller's recovery path: re-simulate and overwrite.
	if err := s.Put(key, "id", payload{A: 7}); err != nil {
		t.Fatal(err)
	}
	var again payload
	if !s.Get(key, "id", &again) || again.A != 7 {
		t.Fatalf("overwrite after corruption did not restore the entry: %+v", again)
	}
}

func TestTruncatedFileIsAMiss(t *testing.T) {
	corruptionCase(t, func(b []byte) []byte { return b[:len(b)/2] })
}

func TestEmptyFileIsAMiss(t *testing.T) {
	corruptionCase(t, func(b []byte) []byte { return nil })
}

func TestGarbageBytesAreAMiss(t *testing.T) {
	corruptionCase(t, func(b []byte) []byte { return []byte("\x00\xff not json at all") })
}

func TestGarbagePayloadIsAMiss(t *testing.T) {
	// Valid envelope JSON whose payload cannot decode into the caller's type.
	corruptionCase(t, func(b []byte) []byte {
		var e envelope
		if err := json.Unmarshal(b, &e); err != nil {
			panic(err)
		}
		e.Payload = json.RawMessage(`"not-a-struct"`)
		out, err := json.Marshal(e)
		if err != nil {
			panic(err)
		}
		return out
	})
}

func TestUnknownPayloadFieldIsAMiss(t *testing.T) {
	// A payload schema that moved without a version bump must reject rather
	// than decode partially.
	corruptionCase(t, func(b []byte) []byte {
		var e envelope
		if err := json.Unmarshal(b, &e); err != nil {
			panic(err)
		}
		e.Payload = json.RawMessage(`{"a":7,"renamed_field":1}`)
		out, err := json.Marshal(e)
		if err != nil {
			panic(err)
		}
		return out
	})
}

func TestWrongVersionTokenIsAMiss(t *testing.T) {
	dir := t.TempDir()
	old := open(t, "v1", dir)
	key := KeyOf("spec")
	if err := old.Put(key, "id", payload{A: 1}); err != nil {
		t.Fatal(err)
	}
	// A new simulator version opens the same directory: the stale entry must
	// be invisible, and re-writing under the new token must take over.
	cur := open(t, "v2", dir)
	var got payload
	if cur.Get(key, "id", &got) {
		t.Fatal("entry written under v1 served under v2")
	}
	if st := cur.Stats(); st.LoadErrors != 1 {
		t.Fatalf("stale version load not counted as a load error: %+v", st)
	}
	if err := cur.Put(key, "id", payload{A: 2}); err != nil {
		t.Fatal(err)
	}
	if !cur.Get(key, "id", &got) || got.A != 2 {
		t.Fatalf("v2 overwrite not served: %+v", got)
	}
	// And the old process now misses in turn — no cross-version serving in
	// either direction.
	if old.Get(key, "id", &got) {
		t.Fatal("entry written under v2 served under v1")
	}
}

func TestMismatchedIdentityIsAMiss(t *testing.T) {
	s := open(t, "v1")
	key := KeyOf("spec-a")
	if err := s.Put(key, "spec-a-identity", payload{A: 1}); err != nil {
		t.Fatal(err)
	}
	// Same key, different identity: the shape a key collision would take.
	var got payload
	if s.Get(key, "spec-b-identity", &got) {
		t.Fatal("entry served under a different identity")
	}
	if st := s.Stats(); st.LoadErrors != 1 {
		t.Fatalf("identity mismatch not counted as a load error: %+v", st)
	}
}

func TestCopiedEnvelopeIsAMiss(t *testing.T) {
	// An entry file copied (or hard-linked) to another key's file name —
	// e.g. by a confused sync tool — must be rejected by the envelope's
	// recorded key even when version and identity line up.
	s := open(t, "v1")
	keyA, keyB := KeyOf("spec-a"), KeyOf("spec-b")
	if err := s.Put(keyA, "shared-id", payload{A: 1}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(s.path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(keyB), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if s.Get(keyB, "shared-id", &got) {
		t.Fatal("copied envelope served under the wrong key")
	}
}

func TestConcurrentWritersOneKey(t *testing.T) {
	s := open(t, "v1")
	key := KeyOf("contended")
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deterministic simulations produce identical content, so every
			// writer stores the same value; any rename may win.
			errs[i] = s.Put(key, "id", payload{A: 7})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	var got payload
	if !s.Get(key, "id", &got) || got.A != 7 {
		t.Fatalf("entry unreadable after concurrent writes: %+v", got)
	}
	// No temp files may survive the races.
	tmps, err := filepath.Glob(filepath.Join(s.Dir(), "put-*.tmp"))
	if err != nil || len(tmps) != 0 {
		t.Fatalf("leftover temp files %v (err %v)", tmps, err)
	}
}

func TestTamperMissingEntryFails(t *testing.T) {
	s := open(t, "v1")
	if err := s.Tamper(KeyOf("absent"), func(b []byte) []byte { return b }); err == nil {
		t.Fatal("Tamper on a missing entry succeeded")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", "v1"); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestWriteErrorIsCountedNotFatal(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: read-only directories are still writable")
	}
	dir := t.TempDir()
	s := open(t, "v1", dir)
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := s.Put(KeyOf("k"), "id", payload{}); err == nil {
		t.Fatal("Put into a read-only directory succeeded")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write error not counted: %+v", st)
	}
}

func TestEnvelopeBytesAreDeterministic(t *testing.T) {
	// Two stores writing the same value must produce byte-identical files,
	// so concurrent cross-process writers genuinely race on nothing.
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := open(t, "v1", dirA), open(t, "v1", dirB)
	key := KeyOf("spec")
	if err := a.Put(key, "id", payload{A: 3, C: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(key, "id", payload{A: 3, C: 0.5}); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(a.path(key))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("identical Puts produced different bytes")
	}
}
