package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span stages, in lifecycle order. One simulation run emits one span-set:
// an admit span when the lookup takes ownership of the memo entry, one
// lookup span per cache tier probed below it (store, snapshot), warmup and
// measure spans when the simulator actually ran, and a publish span when
// the result lands (memoized, plus the store write-behind when a store is
// attached). Runs served entirely from the in-process memo emit no spans —
// the span stream records work performed, not lookups answered.
const (
	StageAdmit    = "admit"
	StageStore    = "store"
	StageSnapshot = "snapshot"
	StageWarmup   = "warmup"
	StageMeasure  = "measure"
	StagePublish  = "publish"
	StageDispatch = "dispatch" // runner-level: one backend round trip
)

// Cache tiers a stage can be served by.
const (
	TierMemo      = "memo"
	TierStore     = "store"
	TierSnapshot  = "snapshot"
	TierSimulated = "simulated"
	TierLocal     = "local"  // dispatch: in-process backend
	TierRemote    = "remote" // dispatch: vpserved round trip
)

// Span is one NDJSON trace record: a stage of one run's lifecycle.
type Span struct {
	TS    string `json:"ts"`   // wall-clock stage end, RFC3339Nano
	Run   uint64 `json:"run"`  // links the spans of one run
	Spec  string `json:"spec"` // canonical spec identity
	Stage string `json:"stage"`
	// Tier is the cache tier that served the stage: which tier answered a
	// lookup, whether warmup was simulated or snapshot-restored, where a
	// publish landed.
	Tier string `json:"tier,omitempty"`
	// Outcome qualifies lookup stages: "hit" or "miss".
	Outcome string `json:"outcome,omitempty"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// Tracer serializes spans as NDJSON onto one writer. Safe for concurrent
// use; each Emit writes exactly one line. The zero value is not usable;
// construct with NewTracer. A nil *Tracer is a valid no-op receiver for
// Begin and Emit, so instrumented code paths need no nil checks.
type Tracer struct {
	mu      sync.Mutex
	enc     *json.Encoder
	nextRun atomic.Uint64
	now     func() time.Time
}

// NewTracer builds a tracer writing NDJSON spans to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w), now: time.Now}
}

// Begin allocates the next run id (unique per tracer, starting at 1).
// A nil tracer returns 0.
func (t *Tracer) Begin() uint64 {
	if t == nil {
		return 0
	}
	return t.nextRun.Add(1)
}

// Emit writes one span, stamping TS if unset. A nil tracer drops it.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	if s.TS == "" {
		s.TS = t.now().UTC().Format(time.RFC3339Nano)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(s) // an unwritable trace sink must not fail the run
}
