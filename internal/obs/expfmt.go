package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, each emitted
// exactly once with its # HELP and # TYPE lines, children sorted by label
// values. Histograms expose cumulative le-buckets plus _sum and _count.
// The snapshot is per-instrument atomic, not cross-metric consistent —
// counters keep moving while the page renders, which is the Prometheus
// contract anyway.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the exposition over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// write renders one family: header lines, then every child in sorted label
// order.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return // nothing to expose until a child exists
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range children {
		switch m := c.metric.(type) {
		case *Counter:
			writeSample(b, f.name, "", f.labels, c.labelValues, "", "", formatUint(m.Value()))
		case *Gauge:
			writeSample(b, f.name, "", f.labels, c.labelValues, "", "", formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				writeSample(b, f.name, "_bucket", f.labels, c.labelValues, "le", formatFloat(bound), formatUint(cum))
			}
			cum += m.counts[len(m.bounds)].Load()
			writeSample(b, f.name, "_bucket", f.labels, c.labelValues, "le", "+Inf", formatUint(cum))
			writeSample(b, f.name, "_sum", f.labels, c.labelValues, "", "", formatFloat(m.Sum()))
			writeSample(b, f.name, "_count", f.labels, c.labelValues, "", "", formatUint(m.Count()))
		}
	}
}

// writeSample renders one sample line. extraName/extraValue append one more
// label (the histogram's le) after the family's own labels.
func writeSample(b *strings.Builder, name, suffix string, labels, values []string, extraName, extraValue, sample string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraValue))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(sample)
	b.WriteByte('\n')
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
