// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges, and fixed-bucket latency histograms, grouped into
// labeled families on a Registry with Prometheus-text exposition
// (expfmt.go), plus a run-lifecycle tracer emitting NDJSON span records
// (trace.go). Every layer of the serving stack — harness session, service,
// runners — registers its instruments here; DESIGN.md §10 is the metric
// catalog and the cardinality rules.
//
// Instruments are safe for concurrent use and never allocate on the update
// path; the Registry allocates only at registration and exposition time.
// Registration is idempotent: asking for an existing name with the same
// type, help, labels, and buckets returns the existing instrument, so any
// number of sessions or runners can share one Registry (an empty help string
// matches any existing family, for read-side lookups). A mismatched
// re-registration panics — that is a wiring bug, not a runtime condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, as exposed in the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets is the default latency histogram layout, in seconds: two
// points per decade from 1µs to 10s. Wide enough that one layout serves
// both sides of the measured dispatch gap (~1.3µs local vs ~48µs remote
// per warm call, BENCH_pr5) and whole-simulation wall times (ms to
// minutes); +Inf is implicit.
var DefBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5,
	1, 5, 10,
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: an unlabeled singleton, or a set of
// labeled children created on first use.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string  // label names; empty for unlabeled families
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]child // serialized label values -> instrument
	order    []string         // insertion order; sorted at exposition
}

// child is one concrete instrument plus the label values that select it.
type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge, or *Histogram
}

// register returns the named family, creating it on first use and
// verifying the signature on every later one.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		// An empty help string matches any existing family: read-side callers
		// (tests, stats endpoints) can look an instrument up without
		// repeating its help text.
		if f.typ != typ || (help != "" && f.help != help) || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

// get returns the child instrument for the given label values, creating it
// with mk on first use.
func (f *family) get(labelValues []string, mk func() any) any {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.metric
	}
	m := mk()
	f.children[key] = child{labelValues: append([]string(nil), labelValues...), metric: m}
	f.order = append(f.order, key)
	return m
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter returns the registry's unlabeled counter with the given name,
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f *family
}

// CounterVec returns the registry's counter family with the given name and
// label names, registering it on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label (use Counter)", name))
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// With returns the child counter for the given label values (one per label
// name, in registration order), creating it on first use. Hot paths should
// call With once and retain the child.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() any { return new(Counter) }).(*Counter)
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the registry's unlabeled gauge with the given name,
// registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the registry's gauge family with the given name and
// label names, registering it on first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label (use Gauge)", name))
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// With returns the child gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

// Histogram is a fixed-bucket distribution. Bucket bounds are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. Updates are
// lock-free; Observe costs one bucket scan and three atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, non-cumulative; +Inf at len(bounds)
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram returns the registry's unlabeled histogram with the given name
// and bucket bounds (nil: DefBuckets), registering it on first use. Bounds
// must be sorted ascending; they are validated once at registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	b := checkBuckets(name, buckets)
	f := r.register(name, help, typeHistogram, nil, b)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	f *family
}

// HistogramVec returns the registry's histogram family with the given name,
// bucket bounds (nil: DefBuckets), and label names, registering it on first
// use.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs at least one label (use Histogram)", name))
	}
	b := checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, b)}
}

// With returns the child histogram for the given label values, creating it
// on first use. Hot paths should call With once and retain the child.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		return DefBuckets
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic(fmt.Sprintf("obs: histogram %q declares +Inf explicitly; it is implicit", name))
	}
	return buckets
}
