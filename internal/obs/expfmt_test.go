package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition byte-for-byte: family ordering
// (sorted by name, regardless of registration order), label-value ordering
// within a family, histogram cumulative buckets with the implicit +Inf,
// and label-value escaping. CI's scrape gate asserts this format stays
// well-formed; this test asserts it stays exactly this.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()

	// Registered deliberately out of name order.
	g := r.Gauge("zz_inflight", "requests in flight")
	g.Set(3)

	cv := r.CounterVec("repro_cache_lookups_total", "cache lookups by tier", "tier", "result")
	cv.With("store", "miss").Add(7)
	cv.With("memo", "hit").Add(12)

	h := r.Histogram("aa_latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	esc := r.CounterVec("esc_total", `help with \ backslash`, "path")
	esc.With("a\"b\\c\nd").Inc()

	const want = `# HELP aa_latency_seconds request latency
# TYPE aa_latency_seconds histogram
aa_latency_seconds_bucket{le="0.01"} 1
aa_latency_seconds_bucket{le="0.1"} 2
aa_latency_seconds_bucket{le="1"} 3
aa_latency_seconds_bucket{le="+Inf"} 4
aa_latency_seconds_sum 5.555
aa_latency_seconds_count 4
# HELP esc_total help with \\ backslash
# TYPE esc_total counter
esc_total{path="a\"b\\c\nd"} 1
# HELP repro_cache_lookups_total cache lookups by tier
# TYPE repro_cache_lookups_total counter
repro_cache_lookups_total{tier="memo",result="hit"} 12
repro_cache_lookups_total{tier="store",result="miss"} 7
# HELP zz_inflight requests in flight
# TYPE zz_inflight gauge
zz_inflight 3
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNoDuplicateFamilies scrapes a populated registry and asserts each
// family name appears in exactly one # TYPE line — the same well-formedness
// gate CI applies to a live /metrics page.
func TestNoDuplicateFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.CounterVec("b_total", "b", "l").With("x").Inc()
	r.CounterVec("b_total", "b", "l").With("y").Inc()
	r.Histogram("c_seconds", "c", nil).Observe(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	seen := map[string]int{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			seen[fields[2]]++
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("family %s exposed %d times", name, n)
		}
	}
	if len(seen) != 3 {
		t.Errorf("exposed %d families, want 3", len(seen))
	}
}

// TestEmptyFamilyHidden verifies a vec with no children yet emits nothing
// (a header with no samples is useless scrape noise).
func TestEmptyFamilyHidden(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_used_total", "no children", "l")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty registry exposed %q", sb.String())
	}
}
