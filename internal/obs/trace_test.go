package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerNDJSON verifies each Emit is one valid JSON line with the
// stamped timestamp and the caller's fields intact.
func TestTracerNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 42, time.UTC)
	tr.now = func() time.Time { return fixed }

	run := tr.Begin()
	if run != 1 {
		t.Errorf("first run id = %d, want 1", run)
	}
	tr.Emit(Span{Run: run, Spec: "art/vtage", Stage: StageWarmup, Tier: TierSimulated, DurNS: 1500})
	tr.Emit(Span{Run: run, Spec: "art/vtage", Stage: StageStore, Tier: TierStore, Outcome: "miss", DurNS: 10, Err: "boom"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2", len(lines))
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if s.TS != fixed.Format(time.RFC3339Nano) {
		t.Errorf("ts = %q, want stamped %q", s.TS, fixed.Format(time.RFC3339Nano))
	}
	if s.Stage != StageWarmup || s.Tier != TierSimulated || s.DurNS != 1500 || s.Run != 1 {
		t.Errorf("span round-trip mismatch: %+v", s)
	}
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if s.Outcome != "miss" || s.Err != "boom" {
		t.Errorf("span round-trip mismatch: %+v", s)
	}
}

// TestTracerNilNoop verifies the nil receiver contract instrumented code
// relies on.
func TestTracerNilNoop(t *testing.T) {
	var tr *Tracer
	if got := tr.Begin(); got != 0 {
		t.Errorf("nil Begin = %d, want 0", got)
	}
	tr.Emit(Span{Stage: StageAdmit}) // must not panic
}

// TestTracerConcurrent emits from many goroutines and asserts every line
// stays intact (no interleaved writes) and run ids are unique.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const goroutines = 8
	const spans = 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < spans; j++ {
				run := tr.Begin()
				tr.Emit(Span{Run: run, Spec: "k/p", Stage: StageMeasure, DurNS: int64(j)})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*spans {
		t.Fatalf("emitted %d lines, want %d", len(lines), goroutines*spans)
	}
	runs := make(map[uint64]bool)
	for i, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d corrupt: %v", i, err)
		}
		runs[s.Run] = true
	}
	if len(runs) != goroutines*spans {
		t.Errorf("%d distinct run ids, want %d", len(runs), goroutines*spans)
	}
}
