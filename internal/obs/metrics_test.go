package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogramValues pins the basic instrument semantics.
func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-105.65) > 1e-9 {
		t.Errorf("histogram sum = %v, want 105.65", got)
	}
	// Bucket placement: le="0.1" is inclusive, so 0.1 lands there; 100
	// lands in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

// TestRegistrationIdempotent verifies that re-registering the same family
// returns the same instrument, and that vec children are stable.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Error("re-registered counter is a different instrument")
	}
	v1 := r.CounterVec("y_total", "help", "tier")
	v2 := r.CounterVec("y_total", "help", "tier")
	if v1.With("memo") != v2.With("memo") {
		t.Error("vec child differs across re-registration")
	}
	if v1.With("memo") == v1.With("store") {
		t.Error("distinct label values share a child")
	}
}

// TestRegistrationConflictPanics verifies a changed signature is rejected.
func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("z_total", "help")
}

// TestConcurrentUpdatesAndExposition hammers every instrument type from
// many goroutines while the exposition renders concurrently — the
// race-mode guarantee the serving stack depends on (metrics are updated on
// hot paths while /metrics scrapes).
func TestConcurrentUpdatesAndExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	cv := r.CounterVec("lookups_total", "lookups", "tier", "result")
	g := r.Gauge("inflight", "in-flight")
	h := r.HistogramVec("latency_seconds", "latency", nil, "endpoint")

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tier := "memo"
			if id%2 == 1 {
				tier = "store"
			}
			lk := cv.With(tier, "hit")
			la := h.With("simulate")
			for j := 0; j < iters; j++ {
				c.Inc()
				lk.Inc()
				g.Inc()
				la.Observe(float64(j) * 1e-6)
				g.Dec()
			}
		}(i)
	}
	// Scrape concurrently with the updates.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := cv.With("memo", "hit").Value() + cv.With("store", "hit").Value(); got != goroutines*iters {
		t.Errorf("vec total = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.With("simulate").Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}
