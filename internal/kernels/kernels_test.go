package kernels

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

func TestAllKernelsBuildAndValidate(t *testing.T) {
	ks := All()
	if len(ks) != 19 {
		t.Fatalf("kernel count = %d, want 19 (Table 3)", len(ks))
	}
	for _, k := range ks {
		t.Run(k.Name, func(t *testing.T) {
			p := k.Build()
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if len(p.Insts) < 10 {
				t.Errorf("suspiciously small program: %d insts", len(p.Insts))
			}
		})
	}
}

func TestAllKernelsRunWithoutHalting(t *testing.T) {
	// Every kernel must sustain at least 200K µops (they are meant to run
	// forever; an early halt or a stuck PC means a broken loop).
	const want = 200_000
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			tr := emu.Trace(k.Build(), want)
			if len(tr) != want {
				t.Fatalf("trace ended after %d µops", len(tr))
			}
		})
	}
}

func TestKernelsAreDeterministic(t *testing.T) {
	for _, k := range All() {
		a := emu.Trace(k.Build(), 20_000)
		bb := emu.Trace(k.Build(), 20_000)
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("%s: traces diverge at µop %d", k.Name, i)
			}
		}
	}
}

func TestKernelMix(t *testing.T) {
	// Each kernel must exercise the machine: some branches, and (except
	// pure register kernels) some memory traffic.
	for _, k := range All() {
		tr := emu.Trace(k.Build(), 50_000)
		var branches, mems, fpops, dests int
		for i := range tr {
			d := &tr[i]
			if isa.IsControl(d.Op) {
				branches++
			}
			if isa.IsMem(d.Op) {
				mems++
			}
			if d.Dst != isa.NoReg && d.Dst.IsFP() {
				fpops++
			}
			if d.HasDest() {
				dests++
			}
		}
		if branches == 0 {
			t.Errorf("%s: no control flow", k.Name)
		}
		if mems == 0 {
			t.Errorf("%s: no memory traffic", k.Name)
		}
		if dests < len(tr)/4 {
			t.Errorf("%s: only %d/%d µops produce registers", k.Name, dests, len(tr))
		}
		if kk, _ := ByName(k.Name); kk.FP && fpops == 0 {
			t.Errorf("%s: declared FP but no FP results", k.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gzip"); !ok {
		t.Error("gzip not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found a kernel that should not exist")
	}
	if len(Names()) != 19 {
		t.Errorf("Names() = %d entries, want 19", len(Names()))
	}
}

func TestH264HasTightLoop(t *testing.T) {
	// The h264 kernel exists to exercise back-to-back fetches of the same
	// µop: its inner loop must be shorter than the 8-wide fetch width + a
	// couple of cycles.
	tr := emu.Trace(buildH264(), 50_000)
	// Measure the most common PC-revisit distance.
	last := map[uint32]uint64{}
	hist := map[uint64]int{}
	for i := range tr {
		d := &tr[i]
		if prev, ok := last[d.PC]; ok {
			hist[d.Seq-prev]++
		}
		last[d.PC] = d.Seq
	}
	best, bestN := uint64(0), 0
	for d, n := range hist {
		if n > bestN {
			best, bestN = d, n
		}
	}
	if best > 16 {
		t.Errorf("dominant PC revisit distance = %d µops, want ≤ 16 (tight loop)", best)
	}
}

func TestMcfChaseIsSerialAndConstant(t *testing.T) {
	// The mcf chase loads must return a repeating (hence predictable) value
	// stream: each chase slot holds a constant next-index.
	tr := emu.Trace(buildMcf(), 100_000)
	seen := map[uint32]map[uint64]map[uint64]bool{} // pc -> addr -> values
	for i := range tr {
		d := &tr[i]
		if !isa.IsLoad(d.Op) {
			continue
		}
		if seen[d.PC] == nil {
			seen[d.PC] = map[uint64]map[uint64]bool{}
		}
		if seen[d.PC][d.Addr] == nil {
			seen[d.PC][d.Addr] = map[uint64]bool{}
		}
		seen[d.PC][d.Addr][d.Result] = true
	}
	for pc, addrs := range seen {
		for addr, vals := range addrs {
			if len(vals) > 1 {
				t.Errorf("pc %d addr %#x returned %d distinct values, want 1", pc, addr, len(vals))
			}
		}
	}
}
