// Package kernels provides the 19 synthetic benchmark programs standing in
// for the paper's SPEC CPU2000/2006 subset (Table 3). SPEC sources and
// reference inputs are proprietary, so each kernel is written in the
// mini-ISA to reproduce the dominant behaviour the paper's evaluation
// depends on for that benchmark: which value predictor family covers it
// (stride vs last-value vs control-flow context vs none), its branch
// predictability, and its memory behaviour. DESIGN.md §4 documents the
// substitution.
//
// All kernels run forever (the trace generator bounds execution), are
// deterministic, and use disjoint static memory regions.
package kernels

import "repro/internal/isa"

// Kernel is one synthetic benchmark.
type Kernel struct {
	Name  string // short name used in tables and CLI flags
	Paper string // the paper's Table 3 benchmark it stands in for
	FP    bool   // floating-point dominated, as in Table 3
	Build func() *isa.Program
}

// All returns the 19 kernels in the paper's Table 3 order.
func All() []Kernel {
	return []Kernel{
		{"gzip", "164.gzip (INT)", false, buildGzip},
		{"wupwise", "168.wupwise (FP)", true, buildWupwise},
		{"applu", "173.applu (FP)", true, buildApplu},
		{"vpr", "175.vpr (INT)", false, buildVpr},
		{"art", "179.art (FP)", true, buildArt},
		{"crafty", "186.crafty (INT)", false, buildCrafty},
		{"parser", "197.parser (INT)", false, buildParser},
		{"vortex", "255.vortex (INT)", false, buildVortex},
		{"bzip2", "401.bzip2 (INT)", false, buildBzip2},
		{"gcc", "403.gcc (INT)", false, buildGcc},
		{"gamess", "416.gamess (FP)", true, buildGamess},
		{"mcf", "429.mcf (INT)", false, buildMcf},
		{"milc", "433.milc (FP)", true, buildMilc},
		{"namd", "444.namd (FP)", true, buildNamd},
		{"gobmk", "445.gobmk (INT)", false, buildGobmk},
		{"hmmer", "456.hmmer (INT)", false, buildHmmer},
		{"sjeng", "458.sjeng (INT)", false, buildSjeng},
		{"h264ref", "464.h264ref (INT)", false, buildH264},
		{"lbm", "470.lbm (FP)", true, buildLbm},
	}
}

// ByName returns the kernel called name.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Names lists all kernel names in order.
func Names() []string {
	ks := All()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// lcg advances a linear congruential generator held in r (Knuth's MMIX
// constants); the resulting values are deliberately value-unpredictable.
func lcg(b *isa.Builder, r isa.Reg) {
	b.Muli(r, r, 6364136223846793005)
	b.Addi(r, r, 1442695040888963407)
}

// seedWords fills [addr, addr+n*8) with a deterministic pseudo-random
// pattern at build time.
func seedWords(b *isa.Builder, addr uint64, n int, seed uint64) {
	words := make([]uint64, n)
	x := seed
	for i := range words {
		x = x*6364136223846793005 + 1442695040888963407
		words[i] = x
	}
	b.Data(addr, words...)
}

// seedSmallWords fills memory with small positive values (x mod bound).
func seedSmallWords(b *isa.Builder, addr uint64, n int, seed, bound uint64) {
	words := make([]uint64, n)
	x := seed
	for i := range words {
		x = x*6364136223846793005 + 1442695040888963407
		words[i] = x % bound
	}
	b.Data(addr, words...)
}

// seedCycle seeds a pointer-chase cycle at addr: entry i holds the index of
// the next element, forming one cycle through all n slots (n power of two).
func seedCycle(b *isa.Builder, addr uint64, n int, stride int) {
	words := make([]uint64, n)
	for i := range words {
		words[i] = uint64((i + stride) & (n - 1))
	}
	b.Data(addr, words...)
}
