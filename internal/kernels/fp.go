package kernels

import "repro/internal/isa"

// buildWupwise mimics 168.wupwise: BLAS-like strided FP loops (daxpy/dot)
// where address arithmetic and loop counters stride perfectly — the
// computational-predictor-friendly profile the paper reports for wupwise.
func buildWupwise() *isa.Program {
	b := isa.NewBuilder("wupwise")
	const (
		xs = 0x70_0000
		ys = 0x72_0000
		zs = 0x74_0000
		n  = 8192
	)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := range xv {
		xv[i] = 1.0 + float64(i%16)/16
		yv[i] = 2.0 - float64(i%8)/8
	}
	b.DataF(xs, xv...)
	b.DataF(ys, yv...)

	i := isa.R1
	xb := isa.R2
	yb := isa.R3
	zb := isa.R4
	t := isa.R5
	alpha := isa.F1
	x := isa.F2
	y := isa.F3
	z := isa.F4

	b.Li(xb, xs)
	b.Li(yb, ys)
	b.Li(zb, zs)
	b.Li(t, 0x70_0000)
	b.Fld(alpha, t, 0) // alpha = x[0]

	restart := b.Here()
	b.Li(i, 0)
	loop := b.Here()
	b.Shli(t, i, 3)
	b.Add(t, xb, t)
	b.Fld(x, t, 0)
	b.Shli(t, i, 3)
	b.Add(t, yb, t)
	b.Fld(y, t, 0)
	b.Fmul(z, alpha, x)
	b.Fadd(z, z, y)
	b.Shli(t, i, 3)
	b.Add(t, zb, t)
	b.Fst(t, 0, z)
	b.Addi(i, i, 1)
	b.Cmplti(t, i, n)
	b.Bnez(t, loop)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}

// buildApplu mimics 173.applu: an SSOR-like stencil sweep where the
// coefficient applied at each point depends on the parity branch — values
// correlate with recent control flow, favouring VTAGE as the paper reports
// for applu.
func buildApplu() *isa.Program {
	b := isa.NewBuilder("applu")
	const (
		grid = 0x80_0000
		dim  = 64 // 64x64
	)
	gv := make([]float64, dim*dim)
	for i := range gv {
		gv[i] = float64(i%7) * 0.5
	}
	b.DataF(grid, gv...)

	i := isa.R1
	j := isa.R2
	gb := isa.R3
	t := isa.R4
	par := isa.R5
	c := isa.F1
	u := isa.F2
	l := isa.F3
	r := isa.F4
	acc := isa.F5

	b.Li(gb, grid)

	restart := b.Here()
	b.Li(i, 1)
	rows := b.Here()
	b.Li(j, 1)
	cols := b.Here()
	// t = (i*dim + j)*8
	b.Muli(t, i, dim)
	b.Add(t, t, j)
	b.Shli(t, t, 3)
	b.Add(t, gb, t)
	b.Fld(u, t, 0)
	b.Fld(l, t, -8)
	b.Fld(r, t, 8)
	// coefficient chosen by parity branch: the value stream the paper's
	// context predictors key on.
	b.Andi(par, j, 1)
	odd := b.NewLabel()
	merge := b.NewLabel()
	b.Bnez(par, odd)
	b.Fmov(c, u)
	b.Jmp(merge)
	b.Bind(odd)
	b.Fadd(c, l, r)
	b.Bind(merge)
	b.Fadd(acc, u, c)
	b.Fst(t, 0, acc)
	b.Addi(j, j, 1)
	b.Cmplti(par, j, dim-1)
	b.Bnez(par, cols)
	b.Addi(i, i, 1)
	b.Cmplti(par, i, dim-1)
	b.Bnez(par, rows)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}

// buildArt mimics 179.art: neural-network training scans. The critical path
// is a normalization recurrence that converges to a fixpoint — its values
// become constant, so every value predictor can break the serial FP chain
// (divide + add, the longest-latency units in the machine), which is why art
// shows the paper's largest speedups. A second, data-dependent accumulation
// chain remains unpredictable and bounds the speedup.
func buildArt() *isa.Program {
	b := isa.NewBuilder("art")
	const (
		weights = 0x90_0000
		n       = 512
	)
	wv := make([]float64, n)
	for i := range wv {
		wv[i] = 0.25 + float64(i%10)*0.125
	}
	b.DataF(weights, wv...)

	j := isa.R1
	wb := isa.R2
	t := isa.R3
	r := isa.F1 // normalization recurrence: r = r/d + c -> constant
	d := isa.F2
	c := isa.F3
	w := isa.F4
	acc := isa.F5 // unpredictable serial chain: acc = acc*s + w*r
	sc := isa.F6
	pr := isa.F7

	b.DataF(0x91_0000, 2.0, 0.125, 0.99921875)
	b.Li(t, 0x91_0000)
	b.Fld(d, t, 0)
	b.Fld(c, t, 8)
	b.Fld(sc, t, 16)
	b.Fld(r, t, 0) // r0 = 2.0
	b.Li(j, 0)
	b.Li(wb, weights)

	loop := b.Here()
	// Serial predictable chain: FDIV(10c, unpipelined) + FADD(3c).
	b.Fdiv(r, r, d)
	b.Fadd(r, r, c)
	// Weight scan (period n per PC).
	b.Shli(t, j, 3)
	b.Add(t, wb, t)
	b.Fld(w, t, 0)
	b.Fmul(pr, w, r)
	// Serial unpredictable chain: FMUL(5c) + FADD(3c).
	b.Fmul(acc, acc, sc)
	b.Fadd(acc, acc, pr)
	b.Addi(j, j, 1)
	b.Andi(j, j, n-1)
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// buildGamess mimics 416.gamess: small dense kernels inside a call-heavy
// driver; per-call-site values repeat, giving context predictors coverage
// (the paper lists gamess among VTAGE's wins but also in the
// low-baseline-accuracy set).
func buildGamess() *isa.Program {
	b := isa.NewBuilder("gamess")
	const (
		mat = 0xA0_0000
		dim = 8
	)
	mv := make([]float64, dim*dim)
	for i := range mv {
		mv[i] = 1.0 / float64(1+i%5)
	}
	b.DataF(mat, mv...)

	i := isa.R1
	j := isa.R2
	mb := isa.R3
	t := isa.R4
	which := isa.R5
	link := isa.R30
	a := isa.F1
	s := isa.F2

	dotFn := b.NewLabel()

	b.Li(mb, mat)
	b.Li(which, 0)

	loop := b.Here()
	b.Andi(which, which, 7)
	b.Call(link, dotFn)
	b.Addi(which, which, 1)
	b.Jmp(loop)
	b.Halt()

	// dot(which): sum row `which` of the matrix.
	b.Bind(dotFn)
	b.Li(j, 0)
	b.Muli(i, which, dim)
	b.Li(t, 0)
	b.Fsub(s, s, s) // s = 0
	inner := b.Here()
	b.Add(t, i, j)
	b.Shli(t, t, 3)
	b.Add(t, mb, t)
	b.Fld(a, t, 0) // row-constant loads: repeat across calls
	b.Fadd(s, s, a)
	b.Addi(j, j, 1)
	b.Cmplti(t, j, dim)
	b.Bnez(t, inner)
	b.Ret(link)
	return b.Program()
}

// buildMilc mimics 433.milc: su3 matrix-multiply-like unrolled FP chains
// over strided data — high FP throughput with enough ILP that value
// prediction barely matters (milc is the paper's one slight slowdown).
func buildMilc() *isa.Program {
	b := isa.NewBuilder("milc")
	const (
		field = 0xB0_0000
		n     = 4096
	)
	fv := make([]float64, n)
	for i := range fv {
		fv[i] = float64(i%13)*0.75 - 3
	}
	b.DataF(field, fv...)

	i := isa.R1
	fb := isa.R2
	t := isa.R3
	a0 := isa.F1
	a1 := isa.F2
	a2 := isa.F3
	b0 := isa.F4
	b1 := isa.F5
	b2 := isa.F6
	acc0 := isa.F7
	acc1 := isa.F8
	acc2 := isa.F9

	b.Li(fb, field)

	restart := b.Here()
	b.Li(i, 0)
	loop := b.Here()
	b.Shli(t, i, 3)
	b.Add(t, fb, t)
	b.Fld(a0, t, 0)
	b.Fld(a1, t, 8)
	b.Fld(a2, t, 16)
	b.Fld(b0, t, 24)
	b.Fld(b1, t, 32)
	b.Fld(b2, t, 40)
	// three independent multiply-add chains (ILP)
	b.Fmul(a0, a0, b0)
	b.Fmul(a1, a1, b1)
	b.Fmul(a2, a2, b2)
	b.Fadd(acc0, acc0, a0)
	b.Fadd(acc1, acc1, a1)
	b.Fadd(acc2, acc2, a2)
	b.Addi(i, i, 6)
	b.Cmplti(t, i, n-8)
	b.Bnez(t, loop)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}

// buildNamd mimics 444.namd: particle-pair force loops — predictable
// addresses and coordinate loads (quasi-static positions) giving high VP
// coverage, but the FP arithmetic chain dominates the critical path so the
// speedup stays marginal, as the paper observes ("namd exhibits 90%
// coverage but marginal speedup").
func buildNamd() *isa.Program {
	b := isa.NewBuilder("namd")
	const (
		posX = 0xC0_0000
		posY = 0xC2_0000
		n    = 1024
	)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := range xv {
		xv[i] = float64(i) * 0.5
		yv[i] = float64(i%32) * 0.25
	}
	b.DataF(posX, xv...)
	b.DataF(posY, yv...)

	i := isa.R1
	xb := isa.R2
	yb := isa.R3
	t := isa.R4
	x1 := isa.F1
	y1 := isa.F2
	x2 := isa.F3
	y2 := isa.F4
	dx := isa.F5
	dy := isa.F6
	f := isa.F7
	e := isa.F8

	b.Li(xb, posX)
	b.Li(yb, posY)

	restart := b.Here()
	b.Li(i, 0)
	loop := b.Here()
	b.Shli(t, i, 3)
	b.Add(t, xb, t)
	b.Fld(x1, t, 0)
	b.Fld(x2, t, 8)
	b.Shli(t, i, 3)
	b.Add(t, yb, t)
	b.Fld(y1, t, 0)
	b.Fld(y2, t, 8)
	// serial FP chain: dx² + dy², then a division (long latency)
	b.Fsub(dx, x2, x1)
	b.Fsub(dy, y2, y1)
	b.Fmul(dx, dx, dx)
	b.Fmul(dy, dy, dy)
	b.Fadd(f, dx, dy)
	b.Fadd(f, f, x1) // keep f nonzero
	b.Fdiv(e, x2, f) // critical-path divide: VP on loads cannot shorten it
	b.Fadd(e, e, e)
	b.Addi(i, i, 1)
	b.Cmplti(t, i, n-2)
	b.Bnez(t, loop)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}

// buildLbm mimics 470.lbm: lattice-Boltzmann streaming — long unit-stride
// read-modify-write sweeps over a grid that exceeds the L1, exercising the
// L2 stride prefetcher and store bandwidth.
func buildLbm() *isa.Program {
	b := isa.NewBuilder("lbm")
	const (
		src = 0xD00_0000
		dst = 0xD40_0000
		n   = 32768 // 256 KB per array: misses in L1, hits L2 after a sweep
	)
	fv := make([]float64, 2048) // seed only a prefix; the rest reads as 0.0
	for i := range fv {
		fv[i] = float64(i%9) * 0.111
	}
	b.DataF(src, fv...)

	i := isa.R1
	sb := isa.R2
	db := isa.R3
	t := isa.R4
	f0 := isa.F1
	f1 := isa.F2
	f2 := isa.F3
	o := isa.F4

	b.Li(sb, src)
	b.Li(db, dst)

	restart := b.Here()
	b.Li(i, 0)
	loop := b.Here()
	b.Shli(t, i, 3)
	b.Add(t, sb, t)
	b.Fld(f0, t, 0)
	b.Fld(f1, t, 8)
	b.Fld(f2, t, 16)
	b.Fadd(o, f0, f1)
	b.Fadd(o, o, f2)
	b.Fmul(o, o, f1)
	b.Shli(t, i, 3)
	b.Add(t, db, t)
	b.Fst(t, 0, o)
	b.Addi(i, i, 3)
	b.Cmplti(t, i, n-4)
	b.Bnez(t, loop)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}
