package kernels

import "repro/internal/isa"

// buildGcc mimics 403.gcc: a token-driven state machine — a switch over
// token kinds from a long repeating stream, where each case updates state
// differently. The values produced correlate with the control-flow path,
// the pattern VTAGE captures and per-PC predictors cannot (the paper shows
// gcc among VTAGE's wins).
func buildGcc() *isa.Program {
	b := isa.NewBuilder("gcc")
	const (
		tokens = 0x10_0000
		nTok   = 4096
		jtab   = 0x12_0000
	)
	// Token stream: a structured repeating pattern with some irregularity.
	words := make([]uint64, nTok)
	x := uint64(0x6CC)
	for i := range words {
		switch {
		case i%7 == 0:
			words[i] = 0 // "identifier"
		case i%5 == 0:
			words[i] = 1 // "operator"
		case i%11 == 0:
			words[i] = 3 // "keyword"
		default:
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = x % 4
		}
	}
	b.Data(tokens, words...)

	i := isa.R1
	tbase := isa.R2
	jbase := isa.R3
	tok := isa.R4
	state := isa.R5
	nodes := isa.R6
	t := isa.R7

	b.Li(i, 0)
	b.Li(tbase, tokens)
	b.Li(jbase, jtab)
	b.Li(state, 0)
	b.Li(nodes, 0)

	loop := b.Here()
	b.Shli(t, i, 3)
	b.Ldx(tok, tbase, t)
	b.Addi(i, i, 1)
	b.Andi(i, i, nTok-1)
	b.Shli(t, tok, 3)
	b.Ldx(t, jbase, t)
	b.Jr(t)

	back := b.NewLabel()
	c0 := b.PC() // identifier: state = 100 + small counter
	b.Andi(state, nodes, 7)
	b.Addi(state, state, 100)
	b.Addi(nodes, nodes, 1)
	b.Jmp(back)
	c1 := b.PC() // operator: state depends on path
	b.Li(state, 200)
	b.Addi(nodes, nodes, 2)
	b.Jmp(back)
	c2 := b.PC() // literal
	b.Li(state, 300)
	b.Jmp(back)
	c3 := b.PC() // keyword: reset
	b.Li(state, 0)
	b.Addi(nodes, nodes, 1)
	b.Jmp(back)

	b.Bind(back)
	// Consume state so it is a live VP-eligible chain.
	b.Add(nodes, nodes, state)
	b.Jmp(loop)
	b.Halt()

	b.Data(jtab, uint64(c0), uint64(c1), uint64(c2), uint64(c3))
	return b.Program()
}

// buildMcf mimics 429.mcf: network-simplex pointer chasing. The arc-chain
// walk is a serial load-to-address dependence through a working set larger
// than the L1 (mostly L2 hits plus cold DRAM misses), and the chase sequence
// is far too long for any realistic predictor to capture — so real
// predictors gain almost nothing (the paper's mcf rows are flat) while the
// oracle exposes the large memory-level-parallelism headroom (Fig. 3).
func buildMcf() *isa.Program {
	b := isa.NewBuilder("mcf")
	const (
		chase  = 0x200_0000 // 32K-entry pointer cycle = 256 KB (8x the L1)
		nChase = 32768
	)
	seedCycle(b, chase, nChase, 12289) // co-prime stride: one long cycle

	idx := isa.R1
	cbase := isa.R2
	acc := isa.R3
	t := isa.R4
	f1 := isa.R5
	f2 := isa.R6
	f3 := isa.R7
	f4 := isa.R8
	f5 := isa.R9

	b.Li(idx, 0)
	b.Li(cbase, chase)
	b.Li(acc, 0)
	b.Li(f1, 3)
	b.Li(f2, 5)
	b.Li(f3, 7)
	b.Li(f4, 11)
	b.Li(f5, 13)

	loop := b.Here()
	// Serial chase: idx = chase[idx] (load feeds the next address).
	b.Shli(t, idx, 3)
	b.Ldx(idx, cbase, t)
	// Independent arc-cost bookkeeping: enough parallel ALU work that the
	// baseline is not completely latency-bound (mcf still computes).
	for i := 0; i < 6; i++ {
		b.Add(f1, f1, f2)
		b.Xor(f2, f2, f3)
		b.Add(f3, f3, f4)
		b.Xor(f4, f4, f5)
		b.Addi(f5, f5, 1)
		b.Add(acc, acc, f1)
	}
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// buildGobmk mimics 445.gobmk: scanning a board with pattern tests —
// nested loops with data-dependent branches over a slowly mutating board.
// Predictability is low, another member of the paper's low-baseline-accuracy
// group.
func buildGobmk() *isa.Program {
	b := isa.NewBuilder("gobmk")
	const (
		board = 0x30_0000
		size  = 169 // 13x13
	)
	seedSmallWords(b, board, size+16, 0x60B, 3) // 0 empty, 1 black, 2 white

	i := isa.R1
	bbase := isa.R2
	cell := isa.R3
	right := isa.R4
	down := isa.R5
	score := isa.R6
	rng := isa.R7
	t := isa.R8

	b.Li(bbase, board)
	b.Li(score, 0)
	b.Li(rng, 0x1337)

	restart := b.Here()
	b.Li(i, 0)
	scan := b.Here()
	b.Shli(t, i, 3)
	b.Ldx(cell, bbase, t)
	b.Add(t, bbase, t)
	b.Ld(right, t, 8)
	b.Ld(down, t, 13*8)
	// pattern: same-colour neighbours score
	next := b.NewLabel()
	b.Bne(cell, right, next)
	b.Addi(score, score, 5)
	b.Bind(next)
	next2 := b.NewLabel()
	b.Bne(cell, down, next2)
	b.Addi(score, score, 3)
	b.Bind(next2)
	b.Addi(i, i, 1)
	b.Cmplti(t, i, size-14)
	b.Bnez(t, scan)
	// Mutate one cell pseudo-randomly, then rescan.
	lcg(b, rng)
	b.Shri(t, rng, 20)
	b.Remi(t, t, size-14)
	b.Shli(t, t, 3)
	b.Add(t, bbase, t)
	b.Andi(cell, rng, 3)
	b.St(t, 0, cell)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}

// buildHmmer mimics 456.hmmer: the Viterbi dynamic-programming inner loop —
// running maxima and additions carried serially through memory rows.
// Partial monotonicity gives stride and context predictors some coverage.
func buildHmmer() *isa.Program {
	b := isa.NewBuilder("hmmer")
	const (
		match = 0x40_0000
		ins   = 0x42_0000
		emit  = 0x44_0000
		cols  = 512
	)
	seedSmallWords(b, emit, cols, 0x4A3E, 16)

	j := isa.R1
	mbase := isa.R2
	ibase := isa.R3
	ebase := isa.R4
	mprev := isa.R5
	iprev := isa.R6
	e := isa.R7
	best := isa.R8
	t := isa.R9
	cand := isa.R10

	b.Li(mbase, match)
	b.Li(ibase, ins)
	b.Li(ebase, emit)

	row := b.Here()
	b.Li(j, 1)
	b.Li(mprev, 0)
	b.Li(iprev, 0)
	col := b.Here()
	b.Shli(t, j, 3)
	b.Ldx(e, ebase, t)
	// best = max(mprev + e, iprev + 3)
	b.Add(best, mprev, e)
	b.Addi(cand, iprev, 3)
	noswap := b.NewLabel()
	b.Bge(best, cand, noswap)
	b.Mov(best, cand)
	b.Bind(noswap)
	// store M[j], carry serial deps
	b.Add(t, mbase, t)
	b.Ld(mprev, t, 0) // previous row's value (memory-carried)
	b.St(t, 0, best)
	b.Shli(t, j, 3)
	b.Add(t, ibase, t)
	b.St(t, 0, cand)
	b.Mov(iprev, cand)
	b.Addi(j, j, 1)
	b.Cmplti(t, j, cols)
	b.Bnez(t, col)
	b.Jmp(row)
	b.Halt()
	return b.Program()
}

// buildSjeng mimics 458.sjeng: game-tree search — a recursive walk with
// hash probes and evaluation mixing, exercising the call/return stack with
// low value predictability.
func buildSjeng() *isa.Program {
	b := isa.NewBuilder("sjeng")
	const (
		ttab  = 0x50_0000 // transposition table
		nTT   = 8192
		stack = 0x58_0000
	)
	seedWords(b, ttab, nTT, 0x57E)

	depth := isa.R1
	pos := isa.R2
	tbase := isa.R3
	sp := isa.R4
	h := isa.R5
	entry := isa.R6
	score := isa.R7
	t := isa.R8
	link := isa.R30

	searchFn := b.NewLabel()

	b.Li(pos, 0xABCDEF12345)
	b.Li(tbase, ttab)
	b.Li(sp, stack+4096)
	b.Li(score, 0)

	loop := b.Here()
	b.Li(depth, 4)
	b.Call(link, searchFn)
	// Perturb the root position.
	b.Shli(t, pos, 7)
	b.Xor(pos, pos, t)
	b.Shri(t, pos, 9)
	b.Xor(pos, pos, t)
	b.Jmp(loop)
	b.Halt()

	// search(depth): probe ttab, mix, recurse twice until depth 0.
	b.Bind(searchFn)
	ret := b.NewLabel()
	b.Beqz(depth, ret)
	// probe
	b.Muli(h, pos, -7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	b.Shri(h, h, 45)
	b.Andi(h, h, nTT-1)
	b.Shli(h, h, 3)
	b.Ldx(entry, tbase, h)
	b.Add(score, score, entry)
	// push link & depth, recurse on child 1
	b.St(sp, 0, link)
	b.St(sp, 8, depth)
	b.Addi(sp, sp, 16)
	b.Subi(depth, depth, 1)
	b.Shli(t, pos, 3)
	b.Xor(pos, pos, t)
	b.Call(link, searchFn)
	// recurse on child 2
	b.Shri(t, pos, 5)
	b.Xor(pos, pos, t)
	b.Call(link, searchFn)
	// pop
	b.Subi(sp, sp, 16)
	b.Ld(depth, sp, 8)
	b.Ld(link, sp, 0)
	b.Bind(ret)
	b.Ret(link)
	return b.Program()
}

// buildH264 mimics 464.h264ref: sum-of-absolute-differences over small
// blocks — a very tight inner loop that fetches successive occurrences of
// the same µops back to back (the Section 3.2 motivation), with a reference
// block that is constant across candidate comparisons.
func buildH264() *isa.Program {
	b := isa.NewBuilder("h264ref")
	const (
		refBlk = 0x60_0000
		frame  = 0x62_0000
		blkLen = 16
		nCand  = 1024
	)
	seedSmallWords(b, refBlk, blkLen, 0x264, 256)
	seedSmallWords(b, frame, nCand+blkLen, 0xF4A, 256)

	cand := isa.R1
	i := isa.R2
	rbase := isa.R3
	fbase := isa.R4
	rv := isa.R5
	fv := isa.R6
	d := isa.R7
	sad := isa.R8
	bestSAD := isa.R9
	t := isa.R10

	b.Li(cand, 0)
	b.Li(rbase, refBlk)
	b.Li(fbase, frame)
	b.Li(bestSAD, 1<<40)

	outer := b.Here()
	b.Li(i, 0)
	b.Li(sad, 0)
	inner := b.Here() // 9 µops: same PCs re-fetched nearly back-to-back
	b.Shli(t, i, 3)
	b.Ldx(rv, rbase, t) // constant across candidates: highly predictable
	b.Add(t, t, fbase)
	b.Add(t, t, cand)
	b.Ld(fv, t, 0)
	b.Sub(d, rv, fv)
	neg := b.NewLabel()
	b.Bge(d, isa.R0, neg)
	b.Sub(d, isa.R0, d)
	b.Bind(neg)
	b.Add(sad, sad, d)
	b.Addi(i, i, 1)
	b.Cmplti(t, i, blkLen)
	b.Bnez(t, inner)
	// track best
	keep := b.NewLabel()
	b.Bge(sad, bestSAD, keep)
	b.Mov(bestSAD, sad)
	b.Bind(keep)
	b.Addi(cand, cand, 8)
	b.Andi(cand, cand, (nCand-1)*8)
	b.Jmp(outer)
	b.Halt()
	return b.Program()
}
