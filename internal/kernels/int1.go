package kernels

import "repro/internal/isa"

// buildGzip mimics 164.gzip: an LZ-style match loop — load input words,
// hash them, probe a hash table, and on a (frequent) mismatch update the
// table; counters and pointers stride while the table contents churn.
func buildGzip() *isa.Program {
	b := isa.NewBuilder("gzip")
	const (
		inBuf   = 0x1_0000 // 16K words of input
		hashTab = 0x9_0000 // 4K-entry hash table
		inLen   = 16384
	)
	seedSmallWords(b, inBuf, inLen, 0x6211, 65536)

	pos := isa.R1  // input position (word index)
	base := isa.R2 // input base
	htab := isa.R3 // hash table base
	word := isa.R4 // current input word
	hash := isa.R5
	entry := isa.R6
	matches := isa.R7
	misses := isa.R8
	tmp := isa.R9
	off := isa.R10

	b.Li(pos, 0)
	b.Li(base, inBuf)
	b.Li(htab, hashTab)
	b.Li(matches, 0)
	b.Li(misses, 0)

	loop := b.Here()
	// word = in[pos]; pos = (pos+1) % inLen  — strided address stream.
	b.Shli(off, pos, 3)
	b.Ldx(word, base, off)
	b.Addi(pos, pos, 1)
	b.Andi(pos, pos, inLen-1)
	// hash = (word*2654435761) >> 20 & 4095
	b.Muli(hash, word, 2654435761)
	b.Shri(hash, hash, 20)
	b.Andi(hash, hash, 4095)
	b.Shli(tmp, hash, 3)
	b.Ldx(entry, htab, tmp)
	match := b.NewLabel()
	cont := b.NewLabel()
	b.Beq(entry, word, match)
	// miss: install the new word (data-dependent store)
	b.Add(tmp, htab, tmp)
	b.St(tmp, 0, word)
	b.Addi(misses, misses, 1)
	b.Jmp(cont)
	b.Bind(match)
	b.Addi(matches, matches, 1)
	b.Bind(cont)
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// buildVpr mimics 175.vpr's placement inner loop: RNG-driven swaps of array
// slots with an RNG-dependent accept branch — poorly predictable branches
// and values, the low-accuracy regime where the paper's baseline counters
// lose performance.
func buildVpr() *isa.Program {
	b := isa.NewBuilder("vpr")
	const (
		grid  = 0x2_0000
		slots = 4096
	)
	seedSmallWords(b, grid, slots, 0x1234, 1000)

	rng := isa.R1
	base := isa.R2
	i1 := isa.R3
	i2 := isa.R4
	v1 := isa.R5
	v2 := isa.R6
	cost := isa.R7
	t1 := isa.R8
	t2 := isa.R9

	b.Li(rng, 88172645463325252)
	b.Li(base, grid)
	b.Li(cost, 0)

	loop := b.Here()
	lcg(b, rng)
	b.Shri(i1, rng, 13)
	b.Andi(i1, i1, slots-1)
	lcg(b, rng)
	b.Shri(i2, rng, 13)
	b.Andi(i2, i2, slots-1)
	b.Shli(t1, i1, 3)
	b.Shli(t2, i2, 3)
	b.Ldx(v1, base, t1)
	b.Ldx(v2, base, t2)
	// delta = v1 - v2; accept if delta < (rng & 255)
	b.Sub(isa.R10, v1, v2)
	b.Andi(isa.R11, rng, 255)
	reject := b.NewLabel()
	b.Bge(isa.R10, isa.R11, reject)
	// swap (two stores with data-dependent addresses)
	b.Add(t1, base, t1)
	b.Add(t2, base, t2)
	b.St(t1, 0, v2)
	b.St(t2, 0, v1)
	b.Add(cost, cost, isa.R10)
	b.Bind(reject)
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// buildCrafty mimics 186.crafty: bitboard mixing — shifts, xors and rotates
// of an evolving position, with table lookups indexed by mixed bits and
// branches on bit tests. Values are close to pseudo-random: the benchmark
// the paper lists among the low-baseline-accuracy group.
func buildCrafty() *isa.Program {
	b := isa.NewBuilder("crafty")
	const (
		attacks = 0x3_0000
		entries = 8192
	)
	seedWords(b, attacks, entries, 0xC4AF7)

	board := isa.R1
	occ := isa.R2
	tab := isa.R3
	idx := isa.R4
	att := isa.R5
	score := isa.R6
	t := isa.R7

	b.Li(board, 0x1234567890ABCDEF)
	b.Li(occ, 0x0F0F00FF00F0F0F0)
	b.Li(tab, attacks)
	b.Li(score, 0)

	loop := b.Here()
	// Mix the board (values never repeat usefully).
	b.Shli(t, board, 13)
	b.Xor(board, board, t)
	b.Shri(t, board, 7)
	b.Xor(board, board, t)
	b.Shli(t, board, 17)
	b.Xor(board, board, t)
	b.And(idx, board, occ)
	b.Andi(idx, idx, entries-1)
	b.Shli(t, idx, 3)
	b.Ldx(att, tab, t)
	b.Xor(occ, occ, att)
	// branch on a data-dependent bit (hard to predict)
	b.Andi(t, att, 1)
	skip := b.NewLabel()
	b.Beqz(t, skip)
	b.Addi(score, score, 3)
	b.Xori(occ, occ, 0x5A5A)
	b.Bind(skip)
	b.Addi(score, score, 1)
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// buildParser mimics 197.parser: dictionary linked-list walks. The list
// structure is static, so node addresses and link pointers are last-value
// predictable; walk lengths vary with the query, driving branches.
func buildParser() *isa.Program {
	b := isa.NewBuilder("parser")
	const (
		nodes   = 0x4_0000 // node i at nodes + i*16: [word, nextIndex]
		nNodes  = 1024
		queries = 0x6_0000
		nQuery  = 64
	)
	// Chain: node i -> i+1, words ascending multiples of 17.
	words := make([]uint64, nNodes*2)
	for i := 0; i < nNodes; i++ {
		words[i*2] = uint64(i * 17)
		words[i*2+1] = uint64(i+1) % nNodes
	}
	b.Data(nodes, words...)
	// Targets stay below the last dictionary word so every walk terminates.
	seedSmallWords(b, queries, nQuery, 0x9E37, (nNodes-1)*17)

	qi := isa.R1
	qbase := isa.R2
	nbase := isa.R3
	target := isa.R4
	node := isa.R5
	w := isa.R6
	t := isa.R7
	found := isa.R8

	b.Li(qi, 0)
	b.Li(qbase, queries)
	b.Li(nbase, nodes)
	b.Li(found, 0)

	outer := b.Here()
	b.Shli(t, qi, 3)
	b.Ldx(target, qbase, t)
	b.Addi(qi, qi, 1)
	b.Andi(qi, qi, nQuery-1)
	b.Li(node, 0)

	walk := b.Here()
	b.Shli(t, node, 4) // node*16
	b.Ldx(w, nbase, t)
	hit := b.NewLabel()
	b.Bge(w, target, hit) // words ascend: stop at first >= target
	b.Add(t, nbase, t)
	b.Ld(node, t, 8) // follow next pointer (constant per node)
	b.Jmp(walk)
	b.Bind(hit)
	b.Addi(found, found, 1)
	b.Jmp(outer)
	b.Halt()
	return b.Program()
}

// buildVortex mimics 255.vortex: an object store where each record carries a
// type tag selecting a handler through an indirect jump; handlers read and
// update mostly-constant fields.
func buildVortex() *isa.Program {
	b := isa.NewBuilder("vortex")
	const (
		objs  = 0x7_0000 // object i at objs + i*32: [type, f1, f2, f3]
		nObjs = 2048
		jtab  = 0xA_0000 // jump table, 4 handlers
	)
	words := make([]uint64, nObjs*4)
	x := uint64(0xBEEF)
	for i := 0; i < nObjs; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		words[i*4] = x % 4       // type
		words[i*4+1] = uint64(i) // f1
		words[i*4+2] = 7         // f2: constant
		words[i*4+3] = x % 100   // f3
	}
	b.Data(objs, words...)

	i := isa.R1
	obase := isa.R2
	jbase := isa.R3
	typ := isa.R4
	optr := isa.R5
	f := isa.R6
	acc := isa.R7
	t := isa.R8

	b.Li(i, 0)
	b.Li(obase, objs)
	b.Li(jbase, jtab)
	b.Li(acc, 0)

	loop := b.Here()
	b.Shli(t, i, 5)
	b.Add(optr, obase, t)
	b.Ld(typ, optr, 0)
	b.Addi(i, i, 1)
	b.Andi(i, i, nObjs-1)
	// indirect dispatch: target = jumptable[type]
	b.Shli(t, typ, 3)
	b.Ldx(t, jbase, t)
	b.Jr(t)

	// handlers (filled into the jump table below)
	h0 := b.PC()
	b.Ld(f, optr, 8)
	b.Add(acc, acc, f)
	back0 := b.NewLabel()
	b.Jmp(back0)
	h1 := b.PC()
	b.Ld(f, optr, 16) // constant field: very predictable
	b.Add(acc, acc, f)
	b.Jmp(back0)
	h2 := b.PC()
	b.Ld(f, optr, 24)
	b.Sub(acc, acc, f)
	b.Jmp(back0)
	h3 := b.PC()
	b.Addi(acc, acc, 1)
	b.St(optr, 24, acc)
	b.Jmp(back0)

	b.Bind(back0)
	b.Jmp(loop)
	b.Halt()

	b.Data(jtab, uint64(h0), uint64(h1), uint64(h2), uint64(h3))
	return b.Program()
}

// buildBzip2 mimics 401.bzip2: byte-frequency counting then a prefix-sum
// pass whose running total is a near-affine sequence — the serial
// memory-carried dependence the 2D-Stride predictor breaks (the paper shows
// bzip among the stride winners).
func buildBzip2() *isa.Program {
	b := isa.NewBuilder("bzip2")
	const (
		input = 0xB_0000
		freq  = 0xD_0000
		cum   = 0xE_0000
		inLen = 8192
		nSym  = 256
	)
	// Text-like skewed symbol distribution: counts diverge quickly, so the
	// frequency-table loads are not accidentally last-value predictable, and
	// the hot symbols give the prefix-sum pass its strided behaviour.
	syms := make([]uint64, inLen)
	x := uint64(0xB219)
	for i := range syms {
		x = x*6364136223846793005 + 1442695040888963407
		s1 := (x >> 16) % nSym
		syms[i] = (s1 * s1) / nSym // quadratic skew toward small symbols
	}
	b.Data(input, syms...)

	i := isa.R1
	ibase := isa.R2
	fbase := isa.R3
	cbase := isa.R4
	sym := isa.R5
	cnt := isa.R6
	acc := isa.R7
	t := isa.R8
	n := isa.R9

	b.Li(ibase, input)
	b.Li(fbase, freq)
	b.Li(cbase, cum)

	restart := b.Here()
	// Pass 1: count a block of symbols.
	b.Li(i, 0)
	b.Li(n, inLen)
	count := b.Here()
	b.Shli(t, i, 3)
	b.Ldx(sym, ibase, t)
	b.Shli(sym, sym, 3)
	b.Add(sym, fbase, sym)
	b.Ld(cnt, sym, 0)
	b.Addi(cnt, cnt, 1)
	b.St(sym, 0, cnt)
	b.Addi(i, i, 1)
	b.Blt(i, n, count)

	// Pass 2: prefix sums over the 256 counters (acc strides smoothly).
	b.Li(i, 0)
	b.Li(n, nSym)
	b.Li(acc, 0)
	scan := b.Here()
	b.Shli(t, i, 3)
	b.Ldx(cnt, fbase, t)
	b.Add(acc, acc, cnt)
	b.Add(t, cbase, t)
	b.St(t, 0, acc)
	b.Addi(i, i, 1)
	b.Blt(i, n, scan)
	b.Jmp(restart)
	b.Halt()
	return b.Program()
}
