package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
)

// job is one submitted batch or experiment. Its task list is the requested
// spec set plus the deduplicated baselines their speedups need (mirroring
// Session.Records), fanned through the server-wide scheduler; results come
// back via deliver. A record streams as soon as its spec and baseline have
// both landed, so consumers see results while the batch is still running;
// the terminal JobStatus carries the full record list in spec order.
type job struct {
	server *Server
	id     string
	kind   string // "batch" or "experiment"
	expID  string

	specs   []harness.Spec // requested, in request order
	tasks   []harness.Spec // deduplicated specs + baselines
	taskIdx []int          // requested spec i -> index into tasks
	baseIdx []int          // requested spec i -> baseline index into tasks, -1 if none
	deps    [][]int        // task index -> requested specs it can complete

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	results   []*harness.Result // per task
	errs      []error           // per task
	delivered []bool            // per task
	nDeliv    int
	recorded  []bool            // per requested spec
	records   []*harness.Record // per requested spec
	completed int               // requested specs finished (recorded or failed)
	events    []Event           // replay buffer for late stream subscribers
	subs      map[chan Event]struct{}
	errMsg    string
	artifact  string
	canceled  bool // DELETE /v1/jobs/{id} was called
	submitted time.Time
	started   time.Time
	finished  time.Time

	allDone chan struct{} // closed when every task has been delivered
	doneCh  chan struct{} // closed when the job reaches a terminal state
}

// newJob builds the task list for the requested specs: the specs themselves
// plus each non-baseline spec's baseline, deduplicated in first-appearance
// order (duplicates would only occupy queue slots; the memo and the
// scheduler coalescing make them free, but there is no reason to carry
// them).
func (s *Server) newJob(kind, expID string, specs []harness.Spec) *job {
	j := &job{
		server:    s,
		id:        s.nextJobID(),
		kind:      kind,
		expID:     expID,
		specs:     specs,
		taskIdx:   make([]int, len(specs)),
		baseIdx:   make([]int, len(specs)),
		state:     StateQueued,
		recorded:  make([]bool, len(specs)),
		records:   make([]*harness.Record, len(specs)),
		subs:      make(map[chan Event]struct{}),
		submitted: time.Now(),
		allDone:   make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	seen := make(map[harness.Spec]int)
	add := func(sp harness.Spec) int {
		if i, ok := seen[sp]; ok {
			return i
		}
		i := len(j.tasks)
		seen[sp] = i
		j.tasks = append(j.tasks, sp)
		return i
	}
	for i, sp := range specs {
		j.taskIdx[i] = add(sp)
		if sp.Predictor != "none" {
			j.baseIdx[i] = add(sp.Baseline())
		} else {
			j.baseIdx[i] = -1
		}
	}
	// Reverse index: which requested specs does each task's delivery affect?
	// deliver then touches only those instead of rescanning the whole batch.
	j.deps = make([][]int, len(j.tasks))
	for i := range specs {
		j.deps[j.taskIdx[i]] = append(j.deps[j.taskIdx[i]], i)
		if b := j.baseIdx[i]; b >= 0 && b != j.taskIdx[i] {
			j.deps[b] = append(j.deps[b], i)
		}
	}
	j.results = make([]*harness.Result, len(j.tasks))
	j.errs = make([]error, len(j.tasks))
	j.delivered = make([]bool, len(j.tasks))
	if len(j.tasks) == 0 {
		// Text-only experiments declare no specs; all their work happens in
		// finalize's render.
		close(j.allDone)
	}
	return j
}

// taskCtx implements taskSink.
func (j *job) taskCtx() context.Context { return j.ctx }

// deliver implements taskSink: it lands one task's result, streams any
// requested record that just became computable (its spec and baseline are
// both in the memo, so Session.Record is a pure warm lookup), and closes
// allDone on the last task. A requested spec that completes without a
// record — its simulation failed, its baseline failed, or flattening the
// record itself failed — broadcasts a per-spec "error" event instead, so
// streaming clients learn about the loss before the terminal "done".
// Deliveries after the job finished (late cancellation fallout) are dropped.
func (j *job) deliver(idx int, res *harness.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning && j.state != StateQueued {
		return
	}
	if j.delivered[idx] {
		return
	}
	j.delivered[idx] = true
	j.results[idx] = res
	j.errs[idx] = err
	j.nDeliv++

	for _, i := range j.deps[idx] {
		if j.recorded[i] || !j.delivered[j.taskIdx[i]] {
			continue
		}
		if b := j.baseIdx[i]; b >= 0 && !j.delivered[b] {
			continue
		}
		specErr := j.errs[j.taskIdx[i]]
		var baseErr error
		if j.baseIdx[i] >= 0 {
			baseErr = j.errs[j.baseIdx[i]]
		}
		j.recorded[i] = true
		j.completed++
		recErr := specErr
		if recErr == nil {
			recErr = baseErr
		}
		if recErr == nil {
			rec, rerr := j.server.session.Record(j.results[j.taskIdx[i]])
			if rerr != nil {
				j.errs[j.taskIdx[i]] = rerr
				recErr = rerr
			} else {
				j.records[i] = &rec
				j.broadcastLocked(Event{Type: "record", Index: i, Record: &rec})
			}
		}
		if recErr != nil {
			j.broadcastLocked(Event{Type: "error", Index: i, Error: recErr.Error()})
		}
	}
	if j.nDeliv == len(j.tasks) {
		close(j.allDone)
	}
}

// run is the job goroutine: feed every task to the scheduler, wait for all
// deliveries (or cancellation), then finalize.
func (j *job) run() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.broadcastLocked(Event{Type: "status", Job: j.statusLocked(false)})
	j.mu.Unlock()
	j.server.metrics.countJob(j.kind, StateRunning)

	for i, sp := range j.tasks {
		if j.ctx.Err() != nil {
			j.deliver(i, nil, j.ctx.Err())
			continue
		}
		if err := j.server.sched.submit(task{sink: j, idx: i, spec: sp}); err != nil {
			j.deliver(i, nil, err)
		}
	}
	select {
	case <-j.allDone:
	case <-j.ctx.Done():
	}
	j.finalize()
}

// finalize computes the terminal state. For a successful experiment job it
// also renders the paper artifact — every declared spec is warm in the memo
// at this point, so rendering is a read; experiments without a declared
// spec set (static tables, custom-predictor ablations) do their work right
// here on the job goroutine.
func (j *job) finalize() {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	var firstErr error
	for _, i := range j.taskIdx {
		if j.errs[i] != nil {
			firstErr = j.errs[i]
			break
		}
	}
	if firstErr == nil {
		for _, err := range j.errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr == nil && j.ctx.Err() != nil {
		firstErr = j.ctx.Err()
	}
	kind, expID := j.kind, j.expID
	j.mu.Unlock()

	var artifact string
	var renderErr error
	// With every experiment's spec set pre-declared (ablation sweep points
	// included) the render is a pure read of warm memo entries, and
	// Experiment.Run takes the job context, so a DELETE landing mid-render
	// interrupts it — even inside a simulation, should a memo entry turn
	// out cold. No serialization is needed: simulation concurrency stays
	// bounded by the worker pool, which already ran the declared specs.
	if firstErr == nil && kind == "experiment" && j.ctx.Err() == nil {
		if e, ok := harness.ExperimentByID(expID); ok {
			var buf bytes.Buffer
			if renderErr = e.Run(j.ctx, j.server.session, &buf); renderErr == nil {
				artifact = buf.String()
			}
		} else {
			renderErr = fmt.Errorf("experiment %q disappeared", expID)
		}
	}

	j.mu.Lock()
	// Re-read the cancellation flag: a DELETE that lands during the render
	// must still win over "done".
	canceled := j.canceled || j.ctx.Err() != nil
	j.finished = time.Now()
	j.artifact = artifact
	switch {
	case canceled || (firstErr != nil && harness.IsContextErr(firstErr)) ||
		(renderErr != nil && harness.IsContextErr(renderErr)):
		j.state = StateCanceled
		// A DELETE can land after the last simulation, while the warm
		// render is completing under the already-dead context; the
		// cancellation wins over "done", so the artifact goes with it.
		j.artifact = ""
		if firstErr != nil {
			j.errMsg = firstErr.Error()
		} else {
			j.errMsg = context.Canceled.Error()
		}
	case firstErr != nil:
		j.state = StateFailed
		j.errMsg = firstErr.Error()
	case renderErr != nil:
		j.state = StateFailed
		j.errMsg = renderErr.Error()
	default:
		j.state = StateDone
	}
	// Flush per-spec error events for requested specs that will never
	// produce a record: cancellation killed their tasks before delivery, or
	// their delivery raced the terminal transition and was dropped. This
	// keeps the stream's accounting exact — every requested spec emits a
	// record or an error event before the terminal done — and stays within
	// the subscriber buffer bound (at most one record-or-error per spec).
	for i := range j.specs {
		if j.recorded[i] || j.records[i] != nil {
			continue
		}
		reason := firstErr
		if err := j.errs[j.taskIdx[i]]; err != nil {
			reason = err
		}
		if reason == nil {
			if reason = j.ctx.Err(); reason == nil {
				if reason = renderErr; reason == nil {
					reason = context.Canceled
				}
			}
		}
		j.recorded[i] = true
		j.broadcastLocked(Event{Type: "error", Index: i, Error: reason.Error()})
	}
	// The done event is light by contract: records already streamed one by
	// one, but the artifact (a plain string) rides along so stream-only
	// consumers get the rendered table.
	done := j.statusLocked(false)
	done.Artifact = j.artifact
	j.broadcastLocked(Event{Type: "done", Job: done})
	close(j.doneCh)
	terminal := j.state
	j.mu.Unlock()

	j.server.metrics.countJob(j.kind, terminal)
	j.server.metrics.jobsActive.Dec()
	j.cancel() // release the context's resources
	j.server.jobFinished()
}

// cancelJob flags the job as user-cancelled and cancels its context; the
// scheduler observes the dead context at the next checkpoint and frees the
// job's workers.
func (j *job) cancelJob() {
	j.mu.Lock()
	j.canceled = true
	j.mu.Unlock()
	j.cancel()
}

// statusLocked snapshots the wire status; callers hold j.mu. withResults
// selects whether a terminal job's record list and artifact are
// materialized — the job listing and the stream's done event are
// contractually light, so they skip the per-record copying. Failed and
// canceled jobs materialize too: records that completed before the failure
// are real results the client already paid for, so they are returned
// (missing entries stay zero; the per-spec "error" events on the stream
// say which).
func (j *job) statusLocked(withResults bool) *JobStatus {
	st := &JobStatus{
		ID:            j.id,
		Kind:          j.kind,
		Experiment:    j.expID,
		State:         j.state,
		Specs:         len(j.specs),
		Completed:     j.completed,
		Error:         j.errMsg,
		SubmittedUnix: j.submitted.Unix(),
	}
	if !j.started.IsZero() {
		st.StartedUnix = j.started.Unix()
	}
	if !j.finished.IsZero() {
		st.FinishedUnix = j.finished.Unix()
	}
	if withResults && terminalState(j.state) {
		st.Records = make([]harness.Record, len(j.specs))
		for i, r := range j.records {
			if r != nil {
				st.Records[i] = *r
			}
		}
		st.Artifact = j.artifact
	}
	return st
}

// status snapshots the wire status, results included for done jobs.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(true)
}

// statusLight snapshots the wire status without records or artifact.
func (j *job) statusLight() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(false)
}

// broadcastLocked appends ev to the replay buffer and fans it out to live
// subscribers; callers hold j.mu. Subscriber channels are sized so that the
// bounded event stream can never fill them (see subscribe), making the send
// non-blocking by construction — the default arm is pure defense.
func (j *job) broadcastLocked(ev Event) {
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns the events broadcast so far and a channel for the rest.
// The channel capacity covers every event the job can still emit (one
// record per spec plus status transitions), so broadcasters never block on
// a slow reader; the reader's transport backpressure is handled by the
// stream handler, not here.
func (j *job) subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch = make(chan Event, len(j.specs)+4)
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}
