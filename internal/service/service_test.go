// The end-to-end tests live outside the package so they can use the typed
// client (which imports service); the dot-import keeps the wire types
// readable.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	. "repro/internal/service"
	"repro/internal/service/client"
)

// testWindows are small enough that the full fig4 batch stays fast under
// -race while still exercising real simulations.
const (
	testWarmup  = 1_000
	testMeasure = 4_000
)

func newTestServer(t testing.TB, o Options) (*Server, *client.Client, *httptest.Server) {
	t.Helper()
	if o.Warmup == 0 {
		o.Warmup = testWarmup
	}
	if o.Measure == 0 {
		o.Measure = testMeasure
	}
	srv, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL), ts
}

// specRequests converts harness specs to their wire form.
func specRequests(specs []harness.Spec) []SpecRequest {
	out := make([]SpecRequest, len(specs))
	for i, s := range specs {
		out[i] = RequestFor(s)
	}
	return out
}

// TestServerEndToEndConcurrentClients is the subsystem's acceptance test
// (run it with -race): several clients concurrently submit overlapping fig4
// spec batches; every job's records must be byte-identical to a sequential
// Session.Records over the same specs on a fresh session, and the shared
// memo must show cross-request hits afterwards.
func TestServerEndToEndConcurrentClients(t *testing.T) {
	_, c, _ := newTestServer(t, Options{Workers: 4})
	specs := harness.Fig4Specs()
	reqs := specRequests(specs)

	// The sequential reference on an independent session.
	ref := harness.NewSession(testWarmup, testMeasure)
	want, err := ref.Records(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	got := make([][]harness.Record, clients)
	streamed := make([]int, clients)
	errs := make([]error, clients)
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			st, err := c.SubmitBatch(ctx, reqs)
			if err != nil {
				errs[n] = err
				return
			}
			if _, err := c.Stream(ctx, st.ID, func(ev Event) error {
				if ev.Type == "record" {
					streamed[n]++
				}
				return nil
			}); err != nil {
				errs[n] = err
				return
			}
			final, err := c.Job(ctx, st.ID)
			if err != nil {
				errs[n] = err
				return
			}
			if final.State != StateDone {
				errs[n] = fmt.Errorf("job %s finished %s: %s", final.ID, final.State, final.Error)
				return
			}
			got[n] = final.Records
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", n, err)
		}
	}
	for n := 0; n < clients; n++ {
		gotJSON, err := json.Marshal(got[n])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("client %d: served records differ from sequential RunAll records", n)
		}
		if streamed[n] != len(specs) {
			t.Errorf("client %d: streamed %d record events, want %d", n, streamed[n], len(specs))
		}
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoHits == 0 {
		t.Error("no cross-request memo hits after overlapping batches")
	}
	if stats.BusyWorkers != 0 {
		t.Errorf("%d workers still busy after all jobs finished", stats.BusyWorkers)
	}
	if stats.Jobs[StateDone] != clients {
		t.Errorf("statsz job census %v, want %d done", stats.Jobs, clients)
	}
}

// TestServerCancelFreesWorkers: cancelling a job must release its workers,
// observable through /v1/statsz, and leave the job canceled — while the
// memo stays healthy for later runs of the same specs.
func TestServerCancelFreesWorkers(t *testing.T) {
	// Long measurement windows so the batch is mid-flight when cancelled.
	_, c, _ := newTestServer(t, Options{Workers: 2, Warmup: 10_000, Measure: 1_500_000})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var reqs []SpecRequest
	for _, k := range []string{"gzip", "art"} {
		for _, p := range []string{"none", "lvp", "stride"} {
			reqs = append(reqs, SpecRequest{Kernel: k, Predictor: p})
		}
	}
	st, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(what string, cond func(ServerStats) bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			stats, err := c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if cond(stats) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor("workers busy", func(s ServerStats) bool { return s.BusyWorkers > 0 })

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	waitFor("workers freed", func(s ServerStats) bool {
		return s.BusyWorkers == 0 && s.QueuedTasks == 0
	})

	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("cancelled job is %q, want %q", final.State, StateCanceled)
	}
	// The abandoned runs must not have been memoized as failures: a small
	// follow-up simulate of one of the same specs succeeds.
	rec, err := c.Simulate(ctx, SpecRequest{Kernel: "gzip", Predictor: "none"})
	if err != nil {
		t.Fatalf("simulate after cancel: %v", err)
	}
	if rec.IPC <= 0 {
		t.Errorf("post-cancel simulate returned empty record: %+v", rec)
	}
}

// TestSimulateSync covers the synchronous endpoint: a valid spec returns a
// record with a real speedup; bad specs are 400s.
func TestSimulateSync(t *testing.T) {
	_, c, _ := newTestServer(t, Options{})
	ctx := context.Background()
	rec, err := c.Simulate(ctx, SpecRequest{Kernel: "art", Predictor: "vtage", Counters: "fpc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kernel != "art" || rec.Predictor != "vtage" || rec.Speedup <= 0 {
		t.Errorf("bad record: %+v", rec)
	}
	for _, bad := range []SpecRequest{
		{Kernel: "nope", Predictor: "lvp"},
		{Kernel: "art", Predictor: "nope"},
		{Kernel: "art", Predictor: "lvp", Counters: "nope"},
		{Kernel: "art", Predictor: "lvp", Recovery: "nope"},
	} {
		var apiErr *client.APIError
		if _, err := c.Simulate(ctx, bad); err == nil {
			t.Errorf("bad spec %+v accepted", bad)
		} else if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != CodeBadRequest {
			t.Errorf("bad spec %+v: got %v, want HTTP 400 %s", bad, err, CodeBadRequest)
		}
	}
}

// TestExperimentJob runs one experiment end to end and pins the artifact
// against the harness's direct text rendering.
func TestExperimentJob(t *testing.T) {
	_, c, _ := newTestServer(t, Options{Workers: 4})
	ctx := context.Background()
	st, err := c.SubmitExperiment(ctx, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("fig1 job finished %s: %s", final.State, final.Error)
	}
	if len(final.Records) != 19 {
		t.Errorf("fig1 job returned %d records, want 19", len(final.Records))
	}

	e, _ := harness.ExperimentByID("fig1")
	var want bytes.Buffer
	if err := harness.Render(context.Background(), harness.NewSession(testWarmup, testMeasure), e, "text", 1, &want); err != nil {
		t.Fatal(err)
	}
	if final.Artifact != want.String() {
		t.Errorf("experiment artifact differs from direct render:\n--- service\n%s--- direct\n%s",
			final.Artifact, want.String())
	}

	// Text-only experiments (no declared specs) also work as jobs.
	st, err = c.SubmitExperiment(ctx, "table3")
	if err != nil {
		t.Fatal(err)
	}
	if final, err = c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || !strings.Contains(final.Artifact, "Kernel") {
		t.Errorf("table3 job: state=%s artifact=%q", final.State, final.Artifact)
	}
}

// TestUnknownExperimentListsIndex: a bad experiment id must fail with the
// available index, not a bare error.
func TestUnknownExperimentListsIndex(t *testing.T) {
	_, c, _ := newTestServer(t, Options{})
	_, err := c.SubmitExperiment(context.Background(), "fig99")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != CodeNotFound {
		t.Fatalf("got %v, want HTTP 404 %s", err, CodeNotFound)
	}
	for _, id := range []string{"fig4", "table1", "abl-width"} {
		if !strings.Contains(apiErr.Msg, id) {
			t.Errorf("404 message does not list %q: %s", id, apiErr.Msg)
		}
	}
}

// TestAdmissionLimits: job-count and batch-size limits reject with 429/413,
// and a draining server answers 503.
func TestAdmissionLimits(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{Workers: 1, MaxJobs: 1, MaxBatch: 4, Warmup: 10_000, Measure: 1_000_000})
	ctx := context.Background()

	big := specRequests([]harness.Spec{
		{Kernel: "gzip", Predictor: "none"}, {Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "art", Predictor: "none"}, {Kernel: "art", Predictor: "lvp"},
		{Kernel: "parser", Predictor: "none"},
	})
	var apiErr *client.APIError
	if _, err := c.SubmitBatch(ctx, big); err == nil {
		t.Error("oversized batch accepted")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 413 || apiErr.Code != CodeTooLarge {
		t.Errorf("oversized batch: got %v, want HTTP 413 %s", err, CodeTooLarge)
	}

	st, err := c.SubmitBatch(ctx, big[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBatch(ctx, big[2:4]); err == nil {
		t.Error("second job accepted beyond MaxJobs=1")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != CodeQueueFull {
		t.Errorf("full queue: got %v, want HTTP 429 %s", err, CodeQueueFull)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// Drain: no new work, health reports draining, old jobs stay readable.
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBatch(ctx, big[:1]); err == nil {
		t.Error("draining server accepted a job")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != CodeDraining {
		t.Errorf("draining submit: got %v, want HTTP 503 %s", err, CodeDraining)
	}
	if _, err := c.Simulate(ctx, big[0]); err == nil {
		t.Error("draining server accepted a synchronous simulate")
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.OK || !h.Draining {
		t.Errorf("health while draining: %+v", h)
	}
	if _, err := c.Job(ctx, st.ID); err != nil {
		t.Errorf("finished job unreadable while draining: %v", err)
	}
}

// evictThenForward intercepts the client's follow-up GET /v1/jobs/{id}
// (the non-stream one Wait issues after its stream ends) and, before
// forwarding it, forces the job out of retention — deterministically
// reproducing the race where eviction lands between the stream's done event
// and the status fetch.
type evictThenForward struct {
	base  http.RoundTripper
	jobID string
	once  sync.Once
	evict func()
}

func (e *evictThenForward) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodGet && req.URL.Path == "/v1/jobs/"+e.jobID {
		e.once.Do(e.evict)
	}
	return e.base.RoundTrip(req)
}

// TestWaitSurvivesRetentionEviction pins the finished-job retention race:
// with retention shrunk to 1, the job Wait is following is evicted between
// its stream ending and the follow-up GET. Wait must return the terminal
// done status with every record — synthesized from the stream — instead of
// a spurious not-found error or a record-less status.
func TestWaitSurvivesRetentionEviction(t *testing.T) {
	_, plain, ts := newTestServer(t, Options{Workers: 2, FinishedJobRetention: 1})
	ctx := context.Background()
	specs := []harness.Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "art", Predictor: "none"},
	}

	rt := &evictThenForward{base: http.DefaultTransport}
	rt.evict = func() {
		// A filler job takes the single retention slot...
		filler, err := plain.SubmitBatch(ctx, specRequests([]harness.Spec{{Kernel: "mcf", Predictor: "none"}}))
		if err != nil {
			t.Errorf("filler submit: %v", err)
			return
		}
		if _, err := plain.Stream(ctx, filler.ID, nil); err != nil {
			t.Errorf("filler stream: %v", err)
			return
		}
		// ...and the watched job must actually be gone before the GET goes
		// through (eviction runs as the filler finalizes; poll it home).
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			_, err := plain.Job(ctx, rt.jobID)
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Error("watched job was never evicted")
	}
	c := client.NewWithHTTPClient(ts.URL, &http.Client{Transport: rt})

	st, err := c.SubmitBatch(ctx, specRequests(specs))
	if err != nil {
		t.Fatal(err)
	}
	rt.jobID = st.ID

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait over an evicted job failed: %v", err)
	}
	if final.State != StateDone || final.Completed != len(specs) {
		t.Fatalf("synthesized status = state %q completed %d, want %q/%d (error: %s)",
			final.State, final.Completed, StateDone, len(specs), final.Error)
	}
	if len(final.Records) != len(specs) {
		t.Fatalf("synthesized status carries %d records, want %d", len(final.Records), len(specs))
	}
	for i, rec := range final.Records {
		if rec.Kernel != specs[i].Kernel || rec.IPC <= 0 {
			t.Errorf("record %d lost in eviction: %+v", i, rec)
		}
	}
	// The race really happened: the job is gone server-side.
	if _, err := plain.Job(ctx, st.ID); err == nil {
		t.Error("watched job still queryable — the test never exercised eviction")
	}
}

// TestStreamFormats checks both stream transports: NDJSON replay for an
// already-finished job, and SSE framing.
func TestStreamFormats(t *testing.T) {
	_, c, ts := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	reqs := specRequests([]harness.Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
	})
	st, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// NDJSON replay after completion: full event history, then done.
	var types []string
	final, err := c.Stream(ctx, st.ID, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Errorf("replayed done event has state %q", final.State)
	}
	records := 0
	for _, ty := range types {
		if ty == "record" {
			records++
		}
	}
	if records != len(reqs) || types[len(types)-1] != "done" {
		t.Errorf("replayed events %v, want %d records ending in done", types, len(reqs))
	}

	// SSE framing: data: prefixed lines.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	var sse bytes.Buffer
	if _, err := sse.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sse.String(), "data: {") {
		t.Errorf("SSE body lacks data frames:\n%s", sse.String())
	}
}

// BenchmarkServerThroughput measures served specs/second through the full
// HTTP path with a warm memo — the serving-leverage headline (cmd/bench
// records it into the BENCH trajectory). Each iteration submits the
// deduplicated fig4 batch and waits for its records.
func BenchmarkServerThroughput(b *testing.B) {
	_, c, _ := newTestServer(b, Options{Workers: 4})
	ctx := context.Background()
	specs := harness.DedupSpecs(harness.Fig4Specs())
	reqs := specRequests(specs)
	warm := func() {
		st, err := c.SubmitBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if final, err := c.Wait(ctx, st.ID); err != nil || final.State != StateDone {
			b.Fatalf("warm batch: %v state=%v", err, final.State)
		}
	}
	warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := c.SubmitBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "specs/s")
}

// TestAblationExperimentCancelMidSimulation is the PR 4 acceptance pin:
// with the render semaphore gone, an ablation experiment job — whose sweep
// points are now pre-declared extended specs fanned through the shared
// worker pool — must be cancellable mid-simulation, freeing its workers
// (observable via /v1/statsz) and ending canceled.
func TestAblationExperimentCancelMidSimulation(t *testing.T) {
	// Long windows so the sweep is mid-flight when the DELETE lands.
	_, c, _ := newTestServer(t, Options{Workers: 2, Warmup: 10_000, Measure: 1_500_000})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	st, err := c.SubmitExperiment(ctx, "abl-hist")
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs == 0 {
		t.Fatalf("abl-hist declared no specs; the ablation is not pool-scheduled: %+v", st)
	}

	waitFor := func(what string, cond func(ServerStats) bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			stats, err := c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if cond(stats) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor("ablation simulations in flight", func(s ServerStats) bool { return s.BusyWorkers > 0 })

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	waitFor("workers freed after cancel", func(s ServerStats) bool {
		return s.BusyWorkers == 0 && s.QueuedTasks == 0
	})

	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("cancelled ablation job is %q, want %q", final.State, StateCanceled)
	}
	if final.Artifact != "" {
		t.Errorf("cancelled job rendered an artifact anyway (%d bytes)", len(final.Artifact))
	}
}

// TestCanceledJobReturnsPartialRecords: records that completed before a
// DELETE are returned on the canceled job's terminal status instead of
// being discarded.
func TestCanceledJobReturnsPartialRecords(t *testing.T) {
	_, c, _ := newTestServer(t, Options{Workers: 2, Warmup: 5_000, Measure: 800_000})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var reqs []SpecRequest
	for _, k := range []string{"gzip", "art", "parser"} {
		for _, p := range []string{"none", "lvp"} {
			reqs = append(reqs, SpecRequest{Kernel: k, Predictor: p})
		}
	}
	st, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Completed >= 2 || cur.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed its first records")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		// With small kernels the batch can occasionally finish before the
		// DELETE lands; that run proves nothing about partial records.
		if final.State == StateDone {
			t.Skip("batch finished before the cancel landed; nothing partial to assert")
		}
		t.Fatalf("job finished %q, want %q", final.State, StateCanceled)
	}
	if len(final.Records) != len(reqs) {
		t.Fatalf("canceled job carries %d records, want %d (zero-filled)", len(final.Records), len(reqs))
	}
	have := 0
	for _, r := range final.Records {
		if r.Kernel != "" {
			if r.IPC <= 0 {
				t.Errorf("degenerate partial record: %+v", r)
			}
			have++
		}
	}
	if have == 0 {
		t.Error("canceled job returned no partial records despite completed specs")
	}

	// The stream's accounting must be exact even under cancellation: every
	// requested spec emits a record or a per-spec error event before done.
	recorded, errored := 0, 0
	if _, err := c.Stream(ctx, st.ID, func(ev Event) error {
		switch ev.Type {
		case "record":
			recorded++
		case "error":
			errored++
			if ev.Error == "" {
				t.Errorf("error event without a message: %+v", ev)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if recorded != have || recorded+errored != len(reqs) {
		t.Errorf("stream accounted %d records + %d errors over %d specs (%d recorded on the job)",
			recorded, errored, len(reqs), have)
	}
}

// TestExtendedSpecOverWire drives one extended-key spec through the full
// HTTP path: the knob must reach the simulator, the record must echo the
// canonical key, and invalid extended specs must be 400s.
func TestExtendedSpecOverWire(t *testing.T) {
	_, c, _ := newTestServer(t, Options{})
	ctx := context.Background()
	rec, err := c.Simulate(ctx, SpecRequest{Kernel: "art", Predictor: "vtage", Counters: "fpc", Width: 4, MaxHist: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width != 4 || rec.MaxHist != 256 || rec.IPC <= 0 || rec.Speedup <= 0 {
		t.Errorf("extended record did not round-trip: %+v", rec)
	}
	// An explicit vector equal to a named scheme folds onto it on the wire.
	rec, err = c.Simulate(ctx, SpecRequest{Kernel: "art", Predictor: "lvp", FPCVector: "0,4,4,4,4,5,5"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counters != "FPC" || rec.FPCVector != "" {
		t.Errorf("canonicalization did not fold the explicit vector onto FPC: %+v", rec)
	}
	for _, bad := range []SpecRequest{
		{Kernel: "art", Predictor: "lvp", Width: 99},
		{Kernel: "art", Predictor: "lvp", MaxHist: 256},
		{Kernel: "art", Predictor: "vtage", MaxHist: 1},
		{Kernel: "art", Predictor: "vtage", FPCVector: "1,2,3"},
	} {
		var apiErr *client.APIError
		if _, err := c.Simulate(ctx, bad); err == nil {
			t.Errorf("bad extended spec %+v accepted", bad)
		} else if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != CodeBadRequest {
			t.Errorf("bad extended spec %+v: got %v, want HTTP 400 %s", bad, err, CodeBadRequest)
		}
	}
}

// TestBatchSync drives the batched synchronous wire path: one frame of many
// specs (duplicates included) must answer records byte-identical to a
// sequential Session over the same specs, in request order; malformed and
// unknown-program frames must fail with the standard typed errors.
func TestBatchSync(t *testing.T) {
	_, c, _ := newTestServer(t, Options{Workers: 2, MaxBatch: 8})
	ctx := context.Background()

	specs := []harness.Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "vtage"},
		{Kernel: "art", Predictor: "vtage"},
		{Kernel: "gzip", Predictor: "vtage"}, // duplicate: dedup must not reorder
		{Kernel: "art", Predictor: "none"},
	}
	ref := harness.NewSession(testWarmup, testMeasure)
	want, err := ref.Records(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SimulateBatchSync(ctx, specRequests(specs))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("batch-sync records differ from sequential session:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	var apiErr *client.APIError
	if _, err := c.SimulateBatchSync(ctx, nil); err == nil {
		t.Error("empty batch-sync frame accepted")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("empty frame: got %v, want HTTP 400", err)
	}
	big := make([]SpecRequest, 9)
	for i := range big {
		big[i] = RequestFor(harness.Spec{Kernel: "gzip", Predictor: "none"})
	}
	if _, err := c.SimulateBatchSync(ctx, big); err == nil {
		t.Error("oversized batch-sync frame accepted")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 413 || apiErr.Code != CodeTooLarge {
		t.Errorf("oversized frame: got %v, want HTTP 413 %s", err, CodeTooLarge)
	}
	ghost := []SpecRequest{
		RequestFor(harness.Spec{Kernel: "gzip", Predictor: "none"}),
		{Program: "prog:" + strings.Repeat("ab", 32), Predictor: "lvp"},
	}
	if _, err := c.SimulateBatchSync(ctx, ghost); err == nil {
		t.Error("unknown-program frame accepted")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != CodeUnknownProgram {
		t.Errorf("unknown-program frame: got %v, want HTTP 404 %s", err, CodeUnknownProgram)
	}
}

// TestDrainWindowHealthz is the drain-window e2e test: while a drain is in
// progress (jobs still running), /v1/healthz must flip to 503 with a
// {"draining":true} body — on the raw wire, so status-code-only probes see
// it too — while already-admitted work runs to completion; once drained,
// the batched sync path must refuse new frames with 503 draining.
func TestDrainWindowHealthz(t *testing.T) {
	srv, c, ts := newTestServer(t, Options{Workers: 1, ShardID: "shard-drain"})
	ctx := context.Background()

	// Before drain: 200 on the raw wire, ok body, shard id echoed.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !h.OK || h.Draining || h.ShardID != "shard-drain" {
		t.Fatalf("pre-drain healthz: code=%d body=%+v", resp.StatusCode, h)
	}

	// Admit real work, then drain concurrently: the drain window is open
	// until the job finishes.
	st, err := c.SubmitBatch(ctx, specRequests([]harness.Spec{
		{Kernel: "gzip", Predictor: "vtage"},
		{Kernel: "art", Predictor: "vtage"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	// Inside the window: raw 503, draining body; the typed client treats it
	// as a report, not an error.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if h.OK || !h.Draining {
				t.Fatalf("draining healthz body: %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	hh, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("typed client errored on draining healthz: %v", err)
	}
	if hh.OK || !hh.Draining || hh.ShardID != "shard-drain" {
		t.Errorf("typed draining health: %+v", hh)
	}

	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	// The admitted job ran to completion through the drain.
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || len(final.Records) != 2 {
		t.Errorf("job through drain: state=%s records=%d", final.State, len(final.Records))
	}
	// New frames are refused.
	var apiErr *client.APIError
	if _, err := c.SimulateBatchSync(ctx, specRequests([]harness.Spec{{Kernel: "gzip", Predictor: "none"}})); err == nil {
		t.Error("draining server accepted a batch-sync frame")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != CodeDraining {
		t.Errorf("draining batch-sync: got %v, want HTTP 503 %s", err, CodeDraining)
	}
}

// TestStatszShardBlock: /v1/statsz carries the shard identity block, with
// the configured -shard-id and a live uptime.
func TestStatszShardBlock(t *testing.T) {
	_, c, _ := newTestServer(t, Options{ShardID: "fleet-3"})
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard.ID != "fleet-3" || st.Shard.StartUnix == 0 || st.Shard.UptimeSeconds < 0 {
		t.Errorf("shard block: %+v", st.Shard)
	}
}
