package service

import (
	"fmt"
	"net/http"
)

// Error codes carried by the API error envelope's "code" field. They are
// stable wire values: clients branch on them (and on APIError.Status) rather
// than parsing message text.
const (
	CodeBadRequest = "bad_request" // malformed body or invalid spec / format
	CodeNotFound   = "not_found"   // unknown job or experiment id
	CodeTooLarge   = "too_large"   // batch or experiment exceeds MaxBatch
	CodeQueueFull  = "queue_full"  // MaxJobs unfinished jobs already admitted
	CodeDraining   = "draining"    // server is shutting down; retry elsewhere
	CodeTimeout    = "timeout"     // synchronous request exceeded its budget
	CodeInternal   = "internal"    // everything else

	// CodeUnknownProgram marks a spec naming a prog:<sha256> reference the
	// daemon has not seen. It is distinct from CodeNotFound because it is
	// curable: upload the program (POST /v1/programs) and retry — the
	// RemoteRunner does exactly that, transparently.
	CodeUnknownProgram = "unknown_program"
)

// codeForStatus derives the error code from the HTTP status the handlers
// already chose — one mapping, so the envelope can never disagree with the
// status line.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusGatewayTimeout:
		return CodeTimeout
	default:
		return CodeInternal
	}
}

// APIError is a non-2xx service response: the HTTP status, a stable
// machine-readable code, and the human-readable message from the error
// envelope. The server's apiError writes it, the typed client's do()
// returns it from every call, and RemoteRunner surfaces it unwrapped — so
// errors.As(err, &apiErr) works at any consumer layer.
type APIError struct {
	Status int    `json:"-"`
	Code   string `json:"code,omitempty"`
	Msg    string `json:"error"`
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("service: HTTP %d (%s): %s", e.Status, e.Code, e.Msg)
}
