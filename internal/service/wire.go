package service

import (
	"bytes"
	"encoding/json"

	"repro/internal/harness"
	"repro/internal/wirejson"
)

// Hand-rolled JSON codecs for the batched wire path (DESIGN.md §12.3): a
// batch-sync frame carries thousands of spec requests in and records out,
// and encoding/json's per-element machinery (scan, reflect, re-scan) was
// the dominant cost of a warm frame on both sides. The frame types parse
// and emit in one scanner pass; byte-compatibility and semantics match
// encoding/json exactly, with a stdlib fallback for anything unusual —
// the API's strict unknown-field rejection included (the fallback decoder
// sets DisallowUnknownFields, so strictness predating the fast path
// survives it).

// appendSpecRequest appends r's JSON object, byte-compatible with the
// reflection encoding (field order and omitempty behavior included).
func appendSpecRequest(b []byte, r SpecRequest) []byte {
	b = append(b, `{"kernel":`...)
	b = wirejson.AppendString(b, r.Kernel)
	if r.Program != "" {
		b = append(b, `,"program":`...)
		b = wirejson.AppendString(b, r.Program)
	}
	b = append(b, `,"predictor":`...)
	b = wirejson.AppendString(b, r.Predictor)
	if r.Counters != "" {
		b = append(b, `,"counters":`...)
		b = wirejson.AppendString(b, r.Counters)
	}
	if r.Recovery != "" {
		b = append(b, `,"recovery":`...)
		b = wirejson.AppendString(b, r.Recovery)
	}
	if r.Width != 0 {
		b = append(b, `,"width":`...)
		b = appendInt(b, r.Width)
	}
	if r.LoadsOnly {
		b = append(b, `,"loads_only":true`...)
	}
	if r.MaxHist != 0 {
		b = append(b, `,"max_hist":`...)
		b = appendInt(b, r.MaxHist)
	}
	if r.FPCVector != "" {
		b = append(b, `,"fpc_vector":`...)
		b = wirejson.AppendString(b, r.FPCVector)
	}
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler byte-compatibly with the default
// reflection encoding.
func (r SpecRequest) MarshalJSON() ([]byte, error) {
	return appendSpecRequest(make([]byte, 0, 128), r), nil
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// UnmarshalJSON implements json.Unmarshaler: fast scanner first, then a
// strict encoding/json decoder — so unknown fields still fail with the
// standard "json: unknown field" error the API has always returned.
func (r *SpecRequest) UnmarshalJSON(b []byte) error {
	s := wirejson.NewScanner(b)
	if req, ok := parseSpecRequest(s); ok && s.End() {
		*r = req
		return nil
	}
	type plain SpecRequest
	var p plain
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return err
	}
	*r = SpecRequest(p)
	return nil
}

// parseSpecRequest consumes one spec-request object from s, in any key
// order; escapes, unknown keys, or anything else report false for the
// fallback.
func parseSpecRequest(s *wirejson.Scanner) (SpecRequest, bool) {
	var req SpecRequest
	if !s.Byte('{') {
		return req, false
	}
	if s.Byte('}') {
		return req, true
	}
	for {
		key, ok := s.String()
		if !ok || !s.Byte(':') {
			return req, false
		}
		switch key {
		case "kernel":
			req.Kernel, ok = s.String()
		case "program":
			req.Program, ok = s.String()
		case "predictor":
			req.Predictor, ok = s.String()
		case "counters":
			req.Counters, ok = s.String()
		case "recovery":
			req.Recovery, ok = s.String()
		case "width":
			req.Width, ok = s.Int()
		case "loads_only":
			req.LoadsOnly, ok = s.Bool()
		case "max_hist":
			req.MaxHist, ok = s.Int()
		case "fpc_vector":
			req.FPCVector, ok = s.String()
		default:
			return req, false
		}
		if !ok {
			return req, false
		}
		if s.Byte(',') {
			continue
		}
		return req, s.Byte('}')
	}
}

// MarshalJSON emits the whole frame in one pass — {"specs":[...]} — so the
// client pays one appender walk instead of per-element reflection.
func (r BatchSyncRequest) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 64+128*len(r.Specs))
	b = append(b, `{"specs":`...)
	if r.Specs == nil {
		return append(b, "null}"...), nil
	}
	b = append(b, '[')
	for i, sp := range r.Specs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendSpecRequest(b, sp)
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON parses the whole frame in one scanner pass; any surprise
// falls back to the strict reflection decoder.
func (r *BatchSyncRequest) UnmarshalJSON(b []byte) error {
	s := wirejson.NewScanner(b)
	specs, ok := parseSpecFrame(s)
	if ok && s.End() {
		r.Specs = specs
		return nil
	}
	type plain BatchSyncRequest
	var p plain
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return err
	}
	*r = BatchSyncRequest(p)
	return nil
}

func parseSpecFrame(s *wirejson.Scanner) ([]SpecRequest, bool) {
	if !s.Byte('{') {
		return nil, false
	}
	if key, ok := s.String(); !ok || key != "specs" || !s.Byte(':') {
		return nil, false
	}
	if !s.Byte('[') {
		return nil, false
	}
	var specs []SpecRequest
	if s.Byte(']') {
		return specs, s.Byte('}')
	}
	for {
		sp, ok := parseSpecRequest(s)
		if !ok {
			return nil, false
		}
		specs = append(specs, sp)
		if s.Byte(',') {
			continue
		}
		return specs, s.Byte(']') && s.Byte('}')
	}
}

// MarshalJSON emits the whole response — {"records":[...]} — in one
// appender walk; NaN/Inf anywhere defers to encoding/json for its standard
// error.
func (r BatchSyncResponse) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 64+360*len(r.Records))
	b = append(b, `{"records":`...)
	if r.Records == nil {
		return append(b, "null}"...), nil
	}
	b = append(b, '[')
	for i, rec := range r.Records {
		if i > 0 {
			b = append(b, ',')
		}
		var ok bool
		if b, ok = harness.AppendRecordJSON(b, rec); !ok {
			type plain BatchSyncResponse
			return json.Marshal(plain(r))
		}
	}
	return append(b, ']', '}'), nil
}

// UnmarshalJSON parses the whole response in one scanner pass, with the
// lenient reflection decoder as fallback (unknown fields ignored, matching
// the client's pre-fast-path behavior).
func (r *BatchSyncResponse) UnmarshalJSON(b []byte) error {
	s := wirejson.NewScanner(b)
	recs, ok := parseRecordFrame(s)
	if ok && s.End() {
		r.Records = recs
		return nil
	}
	type plain BatchSyncResponse
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*r = BatchSyncResponse(p)
	return nil
}

func parseRecordFrame(s *wirejson.Scanner) ([]harness.Record, bool) {
	if !s.Byte('{') {
		return nil, false
	}
	if key, ok := s.String(); !ok || key != "records" || !s.Byte(':') {
		return nil, false
	}
	if !s.Byte('[') {
		return nil, false
	}
	var recs []harness.Record
	if s.Byte(']') {
		return recs, s.Byte('}')
	}
	for {
		rec, ok := harness.ParseRecord(s)
		if !ok {
			return nil, false
		}
		recs = append(recs, rec)
		if s.Byte(',') {
			continue
		}
		return recs, s.Byte(']') && s.Byte('}')
	}
}
