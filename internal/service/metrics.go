package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// serverMetrics holds the service layer's instruments, all registered on one
// obs.Registry (shared with the harness observer and, via RunnerOptions,
// with the embedding process). A nil *serverMetrics is a no-op everywhere,
// so the hot paths carry no conditionals — but New always builds one, since
// the registry also backs GET /metrics.
//
// Cardinality (DESIGN.md §10): endpoint labels come from the fixed route
// table (never from request paths), code labels are the handful of statuses
// the API emits, job kind/state are closed vocabularies — every family here
// is bounded by construction.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // repro_http_requests_total{endpoint,code}
	latency  *obs.HistogramVec // repro_http_request_seconds{endpoint}
	inflight *obs.Gauge        // repro_http_inflight_requests

	jobs       *obs.CounterVec // repro_jobs_total{kind,state}
	jobsActive *obs.Gauge      // repro_jobs_active

	streamSubs     *obs.Counter // repro_stream_subscriptions_total
	streamReplayed *obs.Counter // repro_stream_replayed_events_total

	schedQueueWait *obs.Histogram // repro_sched_queue_wait_seconds
	schedCoalesced *obs.Counter   // repro_sched_coalesced_total
	schedBusy      *obs.Gauge     // repro_sched_busy_workers
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("repro_http_requests_total",
			"API requests by route and response status.",
			"endpoint", "code"),
		latency: reg.HistogramVec("repro_http_request_seconds",
			"API request wall time by route, first byte to handler return.",
			nil, "endpoint"),
		inflight: reg.Gauge("repro_http_inflight_requests",
			"API requests currently being handled (streams included)."),
		jobs: reg.CounterVec("repro_jobs_total",
			"Job state transitions by kind (batch, experiment) and state entered.",
			"kind", "state"),
		jobsActive: reg.Gauge("repro_jobs_active",
			"Jobs admitted and not yet terminal."),
		streamSubs: reg.Counter("repro_stream_subscriptions_total",
			"Job event-stream subscriptions opened."),
		streamReplayed: reg.Counter("repro_stream_replayed_events_total",
			"Events replayed to late stream subscribers (live events not included)."),
		schedQueueWait: reg.Histogram("repro_sched_queue_wait_seconds",
			"Delay from scheduler submission to a worker picking the task up.", nil),
		schedCoalesced: reg.Counter("repro_sched_coalesced_total",
			"Tasks parked onto an identical in-flight spec instead of a worker."),
		schedBusy: reg.Gauge("repro_sched_busy_workers",
			"Workers currently simulating."),
	}
}

func (m *serverMetrics) countJob(kind, state string) {
	if m != nil {
		m.jobs.With(kind, state).Inc()
	}
}

// statusWriter captures the response status (and bytes, for access logs
// layered above) while passing the streaming interfaces through.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush lets wrapped handlers stream (NDJSON/SSE); the inner writer is
// always an http.ResponseWriter from net/http, which supports it.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handle registers pattern on the mux with per-endpoint instrumentation.
// The endpoint label is this explicit registration-time name — never the
// request path — so family cardinality equals the route table.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	m := s.metrics
	lat := m.latency.With(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Inc()
		start := time.Now()
		h(sw, r)
		lat.Observe(time.Since(start).Seconds())
		m.inflight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.requests.With(endpoint, strconv.Itoa(sw.status)).Inc()
	})
}
