package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/store"
)

// Options configures a Server. The zero value is usable: every field has a
// serving-oriented default.
type Options struct {
	Warmup  uint64 // µops before measurement per simulation (default 50_000)
	Measure uint64 // measured µops per simulation (default 250_000)
	Workers int    // simulation workers shared by all requests (<=0: GOMAXPROCS)

	MaxJobs        int           // max unfinished jobs admitted (default 64)
	MaxBatch       int           // max specs per batch or experiment (default 4096)
	RequestTimeout time.Duration // synchronous endpoint budget (default 2m)

	// StoreDir, when non-empty, attaches a persistent content-addressed
	// record store under the session memo: results survive restarts, and any
	// number of processes may share the directory. Empty: memory-only.
	StoreDir string

	// FinishedJobRetention bounds how many terminal jobs stay queryable;
	// the oldest are evicted first (default 256). Active jobs are never
	// evicted.
	FinishedJobRetention int

	// Metrics is the registry the server's instruments register on and
	// GET /metrics renders. Nil: the server builds a private registry, so
	// /metrics always works; pass one to share instruments with the
	// embedding process (the Runner facade does).
	Metrics *obs.Registry

	// TraceWriter, when non-nil, receives one NDJSON span per simulation
	// lifecycle stage (obs.Span; see DESIGN.md §10). The writer is wrapped
	// in a mutex by the tracer; an *os.File is fine.
	TraceWriter io.Writer

	// SnapshotCap bounds the warm-state snapshot cache attached to the
	// session: 0 selects harness.DefaultSnapshotCap, negative disables the
	// cache. Snapshots skip the warmup phase of repeat specs
	// byte-identically (DESIGN.md §9).
	SnapshotCap int

	// ShardID names this daemon within a fleet (vpserved -shard-id; the
	// daemon defaults it to the bound host:port). It is reported by
	// /v1/healthz and the /v1/statsz shard block so fleet probing and logs
	// can tell shards apart; empty is fine for a standalone server.
	ShardID string
}

// WithDefaults resolves every unset field to its serving default — the one
// place those defaults live. New applies it; cmd/vpserved calls it to log
// (and document) the values a zero-configured daemon actually runs with.
func (o Options) WithDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 50_000
	}
	if o.Measure == 0 {
		o.Measure = 250_000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.FinishedJobRetention <= 0 {
		o.FinishedJobRetention = 256
	}
	return o
}

// Server is the simulation service: one process-lifetime Session, one
// bounded worker pool, an in-memory job store, and the /v1 HTTP API on top.
// Construct with New, serve it as an http.Handler, stop with Drain (finish
// everything first) or Close (cancel everything).
type Server struct {
	opts    Options
	session *harness.Session
	sched   *scheduler
	mux     *http.ServeMux
	metrics *serverMetrics
	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time
	nextID  atomic.Uint64
	syncWG  sync.WaitGroup // in-flight synchronous simulations

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for retention and listing
	active   int      // jobs not yet in a terminal state
	draining bool
}

// New builds a Server and starts its worker pool. A non-empty o.StoreDir
// opens (creating if needed) the persistent record store and attaches it
// under the session memo; an unusable directory is a construction error.
func New(o Options) (*Server, error) {
	o = o.WithDefaults()
	s := &Server{
		opts:    o,
		session: harness.NewSession(o.Warmup, o.Measure),
		jobs:    make(map[string]*job),
		start:   time.Now(),
	}
	if o.StoreDir != "" {
		st, err := store.Open(o.StoreDir, harness.StoreVersion)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.session.UseStore(st)
	}
	if o.SnapshotCap >= 0 {
		s.session.UseSnapshots(harness.NewSnapshotCache(o.SnapshotCap))
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.metrics = newServerMetrics(reg)
	var tracer *obs.Tracer
	if o.TraceWriter != nil {
		tracer = obs.NewTracer(o.TraceWriter)
	}
	s.session.Observe(harness.NewObserver(reg, tracer))
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.sched = newScheduler(s.session, o.Workers, s.metrics)
	s.mux = http.NewServeMux()
	s.handle("POST /v1/simulate", "simulate", s.handleSimulate)
	s.handle("POST /v1/simulate/batch-sync", "batch_sync", s.handleBatchSync)
	s.handle("POST /v1/batch", "batch", s.handleBatch)
	s.handle("POST /v1/programs", "program_upload", s.handleProgramUpload)
	s.handle("GET /v1/programs", "programs", s.handleProgramList)
	s.handle("GET /v1/experiments", "experiments", s.handleExperimentIndex)
	s.handle("POST /v1/experiments/{id}", "experiment", s.handleExperiment)
	s.handle("GET /v1/jobs", "jobs", s.handleJobList)
	s.handle("GET /v1/jobs/{id}", "job", s.handleJob)
	s.handle("DELETE /v1/jobs/{id}", "cancel", s.handleCancel)
	s.handle("GET /v1/jobs/{id}/stream", "stream", s.handleStream)
	s.handle("GET /v1/healthz", "healthz", s.handleHealthz)
	s.handle("GET /v1/statsz", "statsz", s.handleStatsz)
	s.handle("GET /metrics", "metrics", reg.Handler().ServeHTTP)
	return s, nil
}

// Registry exposes the metric registry the server's instruments live on —
// the one GET /metrics renders — so embedding processes (cmd/vpserved, the
// Runner facade) can register their own instruments beside it.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Session exposes the shared session (benchmarks and tests compare service
// results against direct harness runs).
func (s *Server) Session() *harness.Session { return s.session }

// Drain stops admitting work and waits until every job has reached a
// terminal state (in-flight jobs run to completion) and every in-flight
// synchronous request has answered. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	waiting := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		waiting = append(waiting, j)
	}
	s.mu.Unlock()
	for _, j := range waiting {
		select {
		case <-j.doneCh:
		case <-ctx.Done():
			return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
		}
	}
	syncDone := make(chan struct{})
	go func() {
		s.syncWG.Wait()
		close(syncDone)
	}()
	select {
	case <-syncDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Close cancels every job and synchronous request, waits for them to
// settle, and stops the worker pool. Safe to call after Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	waiting := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		waiting = append(waiting, j)
	}
	s.mu.Unlock()
	s.cancel()
	for _, j := range waiting {
		<-j.doneCh
	}
	s.syncWG.Wait()
	s.sched.close()
	return nil
}

func (s *Server) nextJobID() string {
	return fmt.Sprintf("j%06d", s.nextID.Add(1))
}

// admit registers a new job, enforcing the admission limits.
func (s *Server) admit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if s.active >= s.opts.MaxJobs {
		return errQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.active++
	s.metrics.countJob(j.kind, StateQueued)
	s.metrics.jobsActive.Inc()
	return nil
}

// jobFinished updates admission accounting and evicts the oldest finished
// jobs beyond the retention bound.
func (s *Server) jobFinished() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	finished := len(s.jobs) - s.active
	if finished <= s.opts.FinishedJobRetention {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := terminalState(j.state)
		j.mu.Unlock()
		if terminal && finished > s.opts.FinishedJobRetention {
			delete(s.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

var (
	errDraining  = errors.New("server is draining; not accepting new work")
	errQueueFull = errors.New("job queue full")
)

// apiError writes the uniform JSON error envelope — an APIError body whose
// code is derived from the HTTP status, so the typed client can rebuild the
// identical error value on the other side.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	apiErrorCode(w, status, codeForStatus(status), format, args...)
}

// apiErrorCode is apiError with an explicit code, for the few errors whose
// code carries more than the status does (CodeUnknownProgram rides a 404).
func apiErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIError{
		Code: code,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// admissionStatus maps an admission error to its HTTP status.
func admissionStatus(err error) int {
	if errors.Is(err, errDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusTooManyRequests
}

// handleProgramUpload registers a workload program with the daemon's session
// (POST /v1/programs). The body carries the program as binary encoding or
// text-assembly source; the response is its canonical workload id — content-
// addressed, so uploading the same bytes twice (from any client) is an
// idempotent no-op answering the same id.
func (s *Server) handleProgramUpload(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var p *isa.Program
	var err error
	switch {
	case len(req.Encoded) > 0 && req.Assembly != "":
		apiError(w, http.StatusBadRequest,
			"program request carries both encoded bytes and assembly source; send exactly one")
		return
	case len(req.Encoded) > 0:
		p, err = isa.Decode(req.Encoded)
	case req.Assembly != "":
		p, err = isa.Assemble(req.Name, []byte(req.Assembly))
	default:
		apiError(w, http.StatusBadRequest,
			"empty program request: send encoded bytes or assembly source")
		return
	}
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		apiError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	id, err := s.session.RegisterProgram(p)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ProgramInfo{
		ID: id, Name: p.Name, Insts: len(p.Insts), Bytes: len(p.Encode()),
	})
}

// handleProgramList answers GET /v1/programs with the registered programs in
// id order. Uploads that deduplicated onto a builtin kernel do not appear —
// they are the builtin.
func (s *Server) handleProgramList(w http.ResponseWriter, r *http.Request) {
	ids := s.session.ProgramIDs()
	out := make([]ProgramInfo, 0, len(ids))
	for _, id := range ids {
		p, ok := s.session.Program(id)
		if !ok {
			continue
		}
		out = append(out, ProgramInfo{
			ID: id, Name: p.Name, Insts: len(p.Insts), Bytes: len(p.Encode()),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// checkPrograms verifies every prog: reference in specs against the
// session's registry before admitting work, so a spec naming a program this
// daemon never received fails fast with the curable CodeUnknownProgram (the
// RemoteRunner reacts by uploading and retrying) instead of dying inside a
// job. Reports false after writing the error.
func (s *Server) checkPrograms(w http.ResponseWriter, specs ...harness.Spec) bool {
	for _, sp := range specs {
		if !harness.IsProgramRef(sp.Kernel) {
			continue
		}
		if _, ok := s.session.Program(sp.Kernel); ok {
			continue
		}
		if ids := s.session.ProgramIDs(); len(ids) > 0 {
			apiErrorCode(w, http.StatusNotFound, CodeUnknownProgram,
				"unknown program %q (uploaded: %s); POST /v1/programs to register it",
				sp.Kernel, strings.Join(ids, ", "))
		} else {
			apiErrorCode(w, http.StatusNotFound, CodeUnknownProgram,
				"unknown program %q: no programs uploaded to this daemon (POST /v1/programs first)",
				sp.Kernel)
		}
		return false
	}
	return true
}

// handleSimulate runs one spec synchronously within the request budget,
// scheduling it (and the baseline its speedup needs) through the shared
// worker pool, and answers with the flattened Record.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if !decodeBody(w, r, &req) {
		return
	}
	spec, err := req.Spec()
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkPrograms(w, spec) {
		return
	}
	// The draining check and the syncWG.Add share one critical section:
	// Drain/Close set draining under s.mu before waiting on syncWG, so
	// every Add is either ordered before the flag flip (and thus seen by
	// the Wait) or never happens — the Add-from-zero-concurrent-with-Wait
	// case sync.WaitGroup forbids cannot occur.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		apiError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	s.syncWG.Add(1)
	s.mu.Unlock()
	defer s.syncWG.Done()

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel) // Close aborts sync work too
	defer stop()

	sink := &syncSink{ctx: ctx, ch: make(chan syncDelivery, 2)}
	specsToRun := []harness.Spec{spec}
	if spec.Predictor != "none" {
		specsToRun = append(specsToRun, spec.Baseline())
	}
	for i, sp := range specsToRun {
		if err := s.sched.submit(task{sink: sink, idx: i, spec: sp}); err != nil {
			code := http.StatusServiceUnavailable
			if harness.IsContextErr(err) {
				// The RequestTimeout expired while queueing: same outcome
				// (and same status) as timing out later in the wait.
				code = http.StatusGatewayTimeout
			}
			apiError(w, code, "%v", err)
			return
		}
	}
	var res *harness.Result
	for range specsToRun {
		var d syncDelivery
		select {
		case d = <-sink.ch:
		case <-ctx.Done():
			// The RequestTimeout budget applies even while parked behind
			// other jobs (queued, or coalesced onto an in-flight run); the
			// cancelled context makes any eventual delivery a cheap drop.
			apiError(w, http.StatusGatewayTimeout, "%v", ctx.Err())
			return
		}
		if d.err != nil {
			switch {
			case harness.IsContextErr(d.err):
				apiError(w, http.StatusGatewayTimeout, "%v", d.err)
			case harness.IsUnknownWorkload(d.err):
				// Belt and braces behind checkPrograms: the session cannot
				// forget a program, but keep the curable code if it ever does.
				apiErrorCode(w, http.StatusNotFound, CodeUnknownProgram, "%v", d.err)
			default:
				apiError(w, http.StatusInternalServerError, "%v", d.err)
			}
			return
		}
		if d.idx == 0 {
			res = d.res
		}
	}
	rec, err := s.session.Record(res)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// syncSink collects deliveries for the synchronous path.
type syncSink struct {
	ctx context.Context
	ch  chan syncDelivery
}

type syncDelivery struct {
	idx int
	res *harness.Result
	err error
}

func (s *syncSink) taskCtx() context.Context { return s.ctx }
func (s *syncSink) deliver(idx int, res *harness.Result, err error) {
	s.ch <- syncDelivery{idx, res, err}
}

// handleBatchSync runs a whole spec frame synchronously within the request
// budget (POST /v1/simulate/batch-sync): the batched wire framing that
// amortizes one HTTP round trip over many specs. The frame's specs plus
// their deduplicated baselines all fan through the shared worker pool; the
// response carries one record per requested spec, in request order. The
// frame is all-or-nothing: the first failing spec (in request order) fails
// the whole frame with the standard error envelope, mirroring the Batch
// contract's first-error abort — a fleet front retries the frame elsewhere.
func (s *Server) handleBatchSync(w http.ResponseWriter, r *http.Request) {
	// Decode through the frame codec directly — one scanner pass over the
	// body — instead of json.Decoder's validate-then-parse double walk;
	// the codec's fallback keeps strict unknown-field rejection.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req BatchSyncRequest
	if err := req.UnmarshalJSON(body); err != nil {
		apiError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		apiError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Specs) > s.opts.MaxBatch {
		apiError(w, http.StatusRequestEntityTooLarge,
			"batch of %d specs exceeds the %d-spec limit", len(req.Specs), s.opts.MaxBatch)
		return
	}
	specs := make([]harness.Spec, len(req.Specs))
	for i, sr := range req.Specs {
		sp, err := sr.Spec()
		if err != nil {
			apiError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		specs[i] = sp
	}
	if !s.checkPrograms(w, specs...) {
		return
	}
	// Same draining/syncWG critical section as handleSimulate: every Add is
	// ordered before Drain's flag flip or never happens.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		apiError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	s.syncWG.Add(1)
	s.mu.Unlock()
	defer s.syncWG.Done()

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel) // Close aborts sync work too
	defer stop()

	// Deduplicate the task list (specs + the baselines their speedups need),
	// exactly like an async job: duplicates would only occupy queue slots.
	var tasks []harness.Spec
	seen := make(map[harness.Spec]int)
	add := func(sp harness.Spec) int {
		if i, ok := seen[sp]; ok {
			return i
		}
		i := len(tasks)
		seen[sp] = i
		tasks = append(tasks, sp)
		return i
	}
	taskIdx := make([]int, len(specs))
	baseIdx := make([]int, len(specs))
	for i, sp := range specs {
		taskIdx[i] = add(sp)
		if sp.Predictor != "none" {
			baseIdx[i] = add(sp.Baseline())
		} else {
			baseIdx[i] = -1
		}
	}

	// Warm fast path: tasks already memoized are answered inline, without a
	// scheduler round trip — a fully warm frame costs JSON decode + encode
	// plus map lookups, which is what lets the batched wire path beat warm
	// per-call dispatch by the DESIGN.md §12 margin. Only cold tasks fan
	// through the worker pool.
	results := make([]*harness.Result, len(tasks))
	errs := make([]error, len(tasks))
	var cold []int
	for i, sp := range tasks {
		if res, err, ok := s.session.Peek(sp); ok {
			results[i], errs[i] = res, err
		} else {
			cold = append(cold, i)
		}
	}
	if len(cold) > 0 {
		sink := &syncSink{ctx: ctx, ch: make(chan syncDelivery, len(cold))}
		for _, i := range cold {
			if err := s.sched.submit(task{sink: sink, idx: i, spec: tasks[i]}); err != nil {
				code := http.StatusServiceUnavailable
				if harness.IsContextErr(err) {
					code = http.StatusGatewayTimeout
				}
				apiError(w, code, "%v", err)
				return
			}
		}
		for range cold {
			var d syncDelivery
			select {
			case d = <-sink.ch:
			case <-ctx.Done():
				apiError(w, http.StatusGatewayTimeout, "%v", ctx.Err())
				return
			}
			results[d.idx], errs[d.idx] = d.res, d.err
		}
	}
	// First failure in request order fails the frame.
	for i := range specs {
		err := errs[taskIdx[i]]
		if err == nil && baseIdx[i] >= 0 {
			err = errs[baseIdx[i]]
		}
		if err == nil {
			continue
		}
		switch {
		case harness.IsContextErr(err):
			apiError(w, http.StatusGatewayTimeout, "spec %d: %v", i, err)
		case harness.IsUnknownWorkload(err):
			apiErrorCode(w, http.StatusNotFound, CodeUnknownProgram, "spec %d: %v", i, err)
		default:
			apiError(w, http.StatusInternalServerError, "spec %d: %v", i, err)
		}
		return
	}
	recs := make([]harness.Record, len(specs))
	for i := range specs {
		rec, err := s.session.Record(results[taskIdx[i]])
		if err != nil {
			apiError(w, http.StatusInternalServerError, "spec %d: %v", i, err)
			return
		}
		recs[i] = rec
	}
	// Emit through the frame codec: the response bytes go straight to the
	// wire, skipping the encoder's compaction re-scan of the marshaled body.
	out, err := BatchSyncResponse{Records: recs}.MarshalJSON()
	if err != nil {
		apiError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
	w.Write([]byte{'\n'})
}

// handleBatch admits a batch job and answers 202 with its status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		apiError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Specs) > s.opts.MaxBatch {
		apiError(w, http.StatusRequestEntityTooLarge,
			"batch of %d specs exceeds the %d-spec limit", len(req.Specs), s.opts.MaxBatch)
		return
	}
	specs := make([]harness.Spec, len(req.Specs))
	for i, sr := range req.Specs {
		sp, err := sr.Spec()
		if err != nil {
			apiError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		specs[i] = sp
	}
	if !s.checkPrograms(w, specs...) {
		return
	}
	s.startJob(w, r, "batch", "", specs)
}

// handleExperiment admits a job for one §5.1 experiment id.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := harness.ExperimentByID(id)
	if !ok {
		var b strings.Builder
		for _, e := range harness.Experiments() {
			fmt.Fprintf(&b, "%s (%s); ", e.ID, e.Title)
		}
		apiError(w, http.StatusNotFound, "unknown experiment %q; available: %s", id, b.String())
		return
	}
	var specs []harness.Spec
	if e.Specs != nil {
		specs = e.Specs()
	}
	if len(specs) > s.opts.MaxBatch {
		apiError(w, http.StatusRequestEntityTooLarge,
			"experiment %q declares %d specs, exceeding the %d-spec limit", id, len(specs), s.opts.MaxBatch)
		return
	}
	s.startJob(w, r, "experiment", id, specs)
}

func (s *Server) startJob(w http.ResponseWriter, r *http.Request, kind, expID string, specs []harness.Spec) {
	j := s.newJob(kind, expID, specs)
	if err := s.admit(j); err != nil {
		j.cancel()
		apiError(w, admissionStatus(err), "%v", err)
		return
	}
	go j.run()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		apiError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.statusLight() // listing stays light
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancel cancels a job (idempotent: cancelling a finished job leaves
// it as it ended) and returns its current status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	terminal := terminalState(j.state)
	j.mu.Unlock()
	if !terminal {
		j.cancelJob()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream streams a job's events as NDJSON (one Event per line), or as
// SSE when the client asks for text/event-stream. Already-emitted events
// replay first; the stream ends after the "done" event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := j.subscribe()
	defer unsub()
	s.metrics.streamSubs.Inc()
	s.metrics.streamReplayed.Add(uint64(len(replay)))
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if sse {
			fmt.Fprintf(w, "data: ")
		}
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "\n")
		}
		flusher.Flush()
		return ev.Type != "done"
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-live:
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleExperimentIndex(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range harness.Experiments() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz answers 200 while serving and 503 once drain begins — the
// body carries {"draining":true} either way a client reads it, so both
// status-code probes (load balancers) and body-decoding probes (the fleet
// front) stop routing new work to a draining shard while its in-flight jobs
// finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{
		OK:       !draining,
		UptimeS:  time.Since(s.start).Seconds(),
		Draining: draining,
		ShardID:  s.opts.ShardID,
	}
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// Stats snapshots the observable server state (the /v1/statsz body).
func (s *Server) Stats() ServerStats {
	memo := s.session.MemoStats()
	s.mu.Lock()
	jobs := make(map[string]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		jobs[j.state]++
		j.mu.Unlock()
	}
	active, draining := s.active, s.draining
	s.mu.Unlock()
	out := ServerStats{
		Workers:       s.opts.Workers,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		BusyWorkers:   int(s.sched.busy.Load()),
		QueuedTasks:   int(s.sched.queued.Load()),
		Coalesced:     s.sched.coalesced.Load(),
		MemoHits:      memo.Hits,
		MemoMisses:    memo.Misses,
		MemoStoreHits: memo.StoreHits,
		Jobs:          jobs,
		ActiveJobs:    active,
		Draining:      draining,
		Programs:      s.session.ProgramCount(),
		Shard: ShardInfo{
			ID:            s.opts.ShardID,
			StartUnix:     s.start.Unix(),
			UptimeSeconds: time.Since(s.start).Seconds(),
		},
		Limits: Limits{
			MaxJobs:          s.opts.MaxJobs,
			MaxBatch:         s.opts.MaxBatch,
			RequestTimeoutMs: s.opts.RequestTimeout.Milliseconds(),
			Warmup:           s.opts.Warmup,
			Measure:          s.opts.Measure,
		},
	}
	if st := s.session.Store(); st != nil {
		out.Store = &StoreStats{
			Dir:         st.Dir(),
			Hits:        memo.Store.Hits,
			Misses:      memo.Store.Misses,
			LoadErrors:  memo.Store.LoadErrors,
			Writes:      memo.Store.Writes,
			WriteErrors: memo.Store.WriteErrors,
		}
	}
	if s.session.Snapshots() != nil {
		snaps := memo.Snapshots
		out.Snapshots = &snaps
	}
	return out
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
