// Internal tests for the scheduler's coalescing/promotion machinery and the
// job layer's terminal-state semantics — paths the HTTP surface cannot
// steer precisely (wire validation rejects the failing specs, and promotion
// needs its waiters parked in a known order). Run with -race.
package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// promoSink is a single-task taskSink recording its one delivery.
type promoSink struct {
	ctx  context.Context
	mu   sync.Mutex
	res  *harness.Result
	err  error
	done chan struct{}
}

func newPromoSink(ctx context.Context) *promoSink {
	return &promoSink{ctx: ctx, done: make(chan struct{})}
}

func (s *promoSink) taskCtx() context.Context { return s.ctx }

func (s *promoSink) deliver(idx int, res *harness.Result, err error) {
	s.mu.Lock()
	s.res, s.err = res, err
	s.mu.Unlock()
	close(s.done)
}

func (s *promoSink) wait(t *testing.T, what string) (*harness.Result, error) {
	t.Helper()
	select {
	case <-s.done:
	case <-time.After(120 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// TestOwnerPromotionServesParkedWaiters pins the scheduler's promotion path
// with leftover parked waiters: the owner of an in-flight spec is cancelled
// while three duplicates are parked on it — one already dead, two live. The
// dead waiter must get its own context error, the first live waiter must be
// promoted to owner, and the promoted re-run must serve the remaining
// parked survivor too.
func TestOwnerPromotionServesParkedWaiters(t *testing.T) {
	// Windows long enough that the owner is still simulating while the
	// waiters park and the cancellations land.
	se := harness.NewSession(10_000, 1_500_000)
	sched := newScheduler(se, 2, nil)
	defer sched.close()
	spec := harness.Spec{Kernel: "gzip", Predictor: "none"}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	defer cancelOwner()
	owner := newPromoSink(ownerCtx)
	if err := sched.submit(task{sink: owner, idx: 0, spec: spec}); err != nil {
		t.Fatal(err)
	}
	// The owner must hold the in-flight slot before any duplicate arrives,
	// or a duplicate would own the spec instead.
	waitFor("owner in flight", func() bool { return sched.busy.Load() == 1 })

	deadCtx, cancelDead := context.WithCancel(context.Background())
	defer cancelDead()
	dead := newPromoSink(deadCtx) // will be cancelled while parked
	promoted := newPromoSink(context.Background())
	survivor := newPromoSink(context.Background())
	for i, s := range []*promoSink{dead, promoted, survivor} {
		if err := sched.submit(task{sink: s, idx: i + 1, spec: spec}); err != nil {
			t.Fatal(err)
		}
		want := uint64(i + 1)
		waitFor("waiter parked", func() bool { return sched.coalesced.Load() == want })
	}

	// Kill the first parked waiter, then the owner mid-simulation. The
	// drain must hand dead its own error, promote the next live waiter,
	// and keep the survivor parked for the re-run's fan-out.
	cancelDead()
	cancelOwner()

	if _, err := owner.wait(t, "owner delivery"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled owner got %v, want context.Canceled", err)
	}
	if res, err := dead.wait(t, "dead-waiter delivery"); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("dead waiter got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	pRes, pErr := promoted.wait(t, "promoted waiter delivery")
	if pErr != nil || pRes == nil {
		t.Fatalf("promoted waiter got (%v, %v), want a result", pRes, pErr)
	}
	sRes, sErr := survivor.wait(t, "survivor delivery")
	if sErr != nil || sRes == nil {
		t.Fatalf("parked survivor got (%v, %v), want a result", sRes, sErr)
	}
	if pRes.Stats != sRes.Stats {
		t.Error("promoted owner and parked survivor got different results for one spec")
	}
	waitFor("workers idle", func() bool { return sched.busy.Load() == 0 })
	// The re-run's result must be memoized for later requests (the
	// cancellation was the owner's, not the promoted run's).
	if m := se.MemoStats(); m.Misses != 2 || m.Hits != 1 {
		t.Errorf("memo stats = %d misses / %d hits, want 2/1: the abandoned owner run and the promoted re-run are "+
			"the misses, the fanned-out survivor the one hit — a double-counted promotion would inflate the misses, "+
			"an uncounted survivor would deflate the hits", m.Misses, m.Hits)
	}
}

// TestMemoStatsCoalescedWaitersCountAsHits pins the contention accounting
// (run with -race): waiters the scheduler parks on an in-flight spec never
// call RunCtx themselves, yet each is one logical lookup served from the
// memo entry once the owner finishes. They must count as exactly one hit
// each — no more (double delivery) and no less (coalescing silently
// swallowing lookups).
func TestMemoStatsCoalescedWaitersCountAsHits(t *testing.T) {
	// Windows long enough that the owner is still simulating while every
	// duplicate parks.
	se := harness.NewSession(10_000, 1_500_000)
	sched := newScheduler(se, 2, nil)
	defer sched.close()
	spec := harness.Spec{Kernel: "gzip", Predictor: "none"}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	owner := newPromoSink(context.Background())
	if err := sched.submit(task{sink: owner, idx: 0, spec: spec}); err != nil {
		t.Fatal(err)
	}
	waitFor("owner in flight", func() bool { return sched.busy.Load() == 1 })

	const dupes = 3
	waiters := make([]*promoSink, dupes)
	for i := range waiters {
		waiters[i] = newPromoSink(context.Background())
		if err := sched.submit(task{sink: waiters[i], idx: i + 1, spec: spec}); err != nil {
			t.Fatal(err)
		}
		want := uint64(i + 1)
		waitFor("waiter parked", func() bool { return sched.coalesced.Load() == want })
	}

	oRes, oErr := owner.wait(t, "owner delivery")
	if oErr != nil || oRes == nil {
		t.Fatalf("owner got (%v, %v), want a result", oRes, oErr)
	}
	for i, w := range waiters {
		res, err := w.wait(t, "waiter delivery")
		if err != nil || res == nil {
			t.Fatalf("waiter %d got (%v, %v), want a result", i, res, err)
		}
		if res.Stats != oRes.Stats {
			t.Errorf("waiter %d's fanned-out result differs from the owner's", i)
		}
	}
	if m := se.MemoStats(); m.Misses != 1 || m.Hits != dupes {
		t.Errorf("memo stats = %d misses / %d hits, want 1/%d: one simulation, one hit per coalesced waiter",
			m.Misses, m.Hits, dupes)
	}
}

// TestFailedJobPartialRecordsAndErrorEvents pins two terminal-state
// contracts at the job layer, using a spec that fails validation only at
// simulation time (the wire layer would reject it earlier): a job that
// fails still returns the records that completed before the failure, and
// the stream carries a per-spec "error" event for the spec that produced no
// record — not just the terminal "done".
func TestFailedJobPartialRecordsAndErrorEvents(t *testing.T) {
	srv, err := New(Options{Warmup: 1_000, Measure: 4_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	specs := []harness.Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "bogus", Predictor: "none"},
	}
	j := srv.newJob("batch", "", specs)
	if err := srv.admit(j); err != nil {
		t.Fatal(err)
	}
	go j.run()
	select {
	case <-j.doneCh:
	case <-time.After(60 * time.Second):
		t.Fatal("job never reached a terminal state")
	}

	st := j.status()
	if st.State != StateFailed {
		t.Fatalf("job state %q, want %q (error: %s)", st.State, StateFailed, st.Error)
	}
	if len(st.Records) != len(specs) {
		t.Fatalf("terminal non-done status carries %d records, want %d (zero-filled)", len(st.Records), len(specs))
	}
	if st.Records[0].Kernel != "gzip" || st.Records[0].IPC <= 0 {
		t.Errorf("completed spec's record missing from failed job: %+v", st.Records[0])
	}
	if st.Records[1].Kernel != "" {
		t.Errorf("failed spec unexpectedly produced a record: %+v", st.Records[1])
	}

	replay, _, unsub := j.subscribe()
	unsub()
	var errorEvents, recordEvents int
	for _, ev := range replay {
		switch ev.Type {
		case "error":
			errorEvents++
			if ev.Index != 1 || ev.Error == "" {
				t.Errorf("error event for index %d with message %q, want index 1 with a message", ev.Index, ev.Error)
			}
		case "record":
			recordEvents++
			if ev.Index != 0 {
				t.Errorf("record event for index %d, want 0", ev.Index)
			}
		}
	}
	if errorEvents != 1 || recordEvents != 1 {
		t.Errorf("stream saw %d error and %d record events, want 1 and 1", errorEvents, recordEvents)
	}
}
