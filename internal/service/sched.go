package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// taskSink receives the results of scheduled specs. Both async jobs and the
// synchronous /v1/simulate path implement it.
type taskSink interface {
	taskCtx() context.Context
	deliver(idx int, res *harness.Result, err error)
}

// task is one spec to simulate on behalf of one sink; idx is the sink's own
// index for the delivery (a job's position in its combined task list).
type task struct {
	sink      taskSink
	idx       int
	spec      harness.Spec
	submitted time.Time // queue-wait measurement (zero when unobserved)
}

// errSchedulerClosed rejects submissions after shutdown.
var errSchedulerClosed = errors.New("service: scheduler shut down")

// scheduler is the server-wide simulation worker pool. All jobs and
// synchronous requests share it, so total simulation concurrency is bounded
// by the worker count no matter how many clients are connected.
//
// On top of the Session singleflight it deduplicates identical in-flight
// specs at the scheduling level: the session memo already guarantees one
// simulation per spec, but a second worker calling RunCtx on an in-flight
// spec would park — a burned worker — for the duration of the run. Here the
// duplicate task is parked instead (a coalesced waiter) and its worker
// moves on; the owning worker fans the result out on completion. If the
// owner's job is cancelled mid-run, a parked waiter with a live context is
// promoted to owner and the spec re-runs under its context.
type scheduler struct {
	session *harness.Session
	tasks   chan task
	metrics *serverMetrics // nil in metric-less tests

	mu       sync.Mutex
	inflight map[harness.Spec][]task // spec being simulated -> parked duplicates
	closed   bool

	queued    atomic.Int64 // submitted, not yet picked up by a worker
	busy      atomic.Int64 // workers currently simulating
	coalesced atomic.Uint64
	workers   int
	wg        sync.WaitGroup
}

func newScheduler(se *harness.Session, workers int, m *serverMetrics) *scheduler {
	s := &scheduler{
		session:  se,
		tasks:    make(chan task, 4*workers),
		inflight: make(map[harness.Spec][]task),
		metrics:  m,
		workers:  workers,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// submit enqueues one task, blocking while the queue is full (callers are
// job goroutines and request handlers, never workers, so this cannot
// deadlock the pool). The sink's context bounds the wait: a cancelled or
// timed-out submitter gets its context error instead of queueing dead work.
func (s *scheduler) submit(t task) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSchedulerClosed
	}
	s.queued.Add(1)
	s.mu.Unlock()
	if s.metrics != nil {
		t.submitted = time.Now()
	}
	select {
	case s.tasks <- t:
		return nil
	case <-t.sink.taskCtx().Done():
		s.queued.Add(-1)
		return t.sink.taskCtx().Err()
	}
}

// close stops the workers. The server guarantees no submitter is alive by
// the time it calls this (jobs have finished, handlers have returned).
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.tasks)
	s.wg.Wait()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		s.queued.Add(-1)
		if m := s.metrics; m != nil && !t.submitted.IsZero() {
			m.schedQueueWait.Observe(time.Since(t.submitted).Seconds())
		}
		if err := t.sink.taskCtx().Err(); err != nil {
			t.sink.deliver(t.idx, nil, err)
			continue
		}
		s.mu.Lock()
		if _, ok := s.inflight[t.spec]; ok {
			// Identical spec already being simulated: park this task as a
			// waiter instead of parking this worker on the memo.
			s.inflight[t.spec] = append(s.inflight[t.spec], t)
			s.coalesced.Add(1)
			s.mu.Unlock()
			if m := s.metrics; m != nil {
				m.schedCoalesced.Inc()
			}
			continue
		}
		s.inflight[t.spec] = nil
		s.mu.Unlock()

		s.busy.Add(1)
		if m := s.metrics; m != nil {
			m.schedBusy.Inc()
		}
		s.runSpec(t)
		s.busy.Add(-1)
		if m := s.metrics; m != nil {
			m.schedBusy.Dec()
		}
	}
}

// runSpec simulates cur's spec and fans the result out to every waiter that
// coalesced onto it. A run abandoned by cancellation (the owner's job went
// away) promotes the first parked waiter with a live context and loops.
func (s *scheduler) runSpec(cur task) {
	for {
		res, err := s.session.RunCtx(cur.sink.taskCtx(), cur.spec)
		cur.sink.deliver(cur.idx, res, err)

		s.mu.Lock()
		waiters := s.inflight[cur.spec]
		abandoned := err != nil && harness.IsContextErr(err)
		var dead []task
		var next task
		promoted := false
		if abandoned {
			// Drain waiters until one with a live context can take over;
			// the ones cancelled while parked just get their own error.
			for len(waiters) > 0 && !promoted {
				w := waiters[0]
				waiters = waiters[1:]
				if w.sink.taskCtx().Err() == nil {
					next, promoted = w, true
				} else {
					dead = append(dead, w)
				}
			}
		}
		if promoted {
			s.inflight[cur.spec] = waiters // the rest stay parked
		} else {
			delete(s.inflight, cur.spec)
		}
		s.mu.Unlock()

		for _, w := range dead {
			w.sink.deliver(w.idx, nil, w.sink.taskCtx().Err())
		}
		if promoted {
			cur = next
			continue
		}
		if !abandoned {
			// Success or a real (memoized) error: every waiter gets the
			// same outcome the memo now holds. Each waiter is one logical
			// lookup the scheduler answered above the session, so record
			// them as memo hits — otherwise coalescing would silently
			// deflate the hit count (one RunCtx for many lookups).
			if len(waiters) > 0 {
				s.session.CountCoalescedHits(uint64(len(waiters)))
			}
			for _, w := range waiters {
				w.sink.deliver(w.idx, res, err)
			}
		}
		return
	}
}
