// Package client is the typed Go client for the vpserved simulation
// service (internal/service). It wraps the /v1 JSON API: synchronous
// simulation, batch and experiment job submission, status polling, NDJSON
// result streaming, and cancellation. Reachable from outside the module via
// the repro facade (repro.NewClient).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// Client talks to one vpserved instance.
type Client struct {
	base string
	hc   *http.Client
}

// sharedTransport is the tuned http.Transport every default-constructed
// client rides: keep-alive on, a deep idle pool per host so warm dispatch
// reuses one TCP connection instead of re-handshaking, and no compression
// (records are small JSON; gzip would cost more than the bytes it saves on
// loopback). Shared across clients so a fleet front talking to N shards
// holds one pool, not N.
var sharedTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
	DisableCompression:  true,
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8437").
// The underlying http.Client has no timeout: per-call budgets come from the
// caller's context, and streams live as long as their job runs. All clients
// built here share one tuned keep-alive transport (sharedTransport), so the
// warm dispatch path never pays connection setup per call.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: sharedTransport}}
}

// NewWithHTTPClient uses a caller-supplied http.Client (tests, custom
// transports).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx response decoded from the server's error envelope.
// It is the service-level type (status, stable code, message): assert on it
// with errors.As at any layer above the client, RemoteRunner included.
type APIError = service.APIError

// Close releases idle connections held by the underlying transport. The
// client remains usable afterwards; Close only returns pooled resources.
func (c *Client) Close() {
	c.hc.CloseIdleConnections()
}

// do performs one JSON round-trip. in == nil sends no body; out == nil
// discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError rebuilds the server's typed APIError from the error envelope;
// non-JSON bodies (a proxy in the way, a crash page) degrade to a code-less
// APIError carrying the raw text.
func decodeError(resp *http.Response) error {
	var e APIError
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(buf, &e) != nil || e.Msg == "" {
		e = APIError{Msg: strings.TrimSpace(string(buf))}
	}
	e.Status = resp.StatusCode
	return &e
}

// Simulate runs one spec synchronously (POST /v1/simulate) and returns its
// flattened record, speedup included.
func (c *Client) Simulate(ctx context.Context, spec service.SpecRequest) (harness.Record, error) {
	var rec harness.Record
	err := c.do(ctx, http.MethodPost, "/v1/simulate", spec, &rec)
	return rec, err
}

// SimulateBatchSync runs many specs in one synchronous round trip (POST
// /v1/simulate/batch-sync) and returns their records in request order. The
// frame is all-or-nothing: any failing spec fails the whole call with the
// server's typed APIError for the first failure in request order.
//
// This is the hot path of a fleet front, so the response body is parsed by
// the frame codec directly (one scanner pass) instead of going through
// json.Decoder's extra validation walk.
func (c *Client) SimulateBatchSync(ctx context.Context, specs []service.SpecRequest) ([]harness.Record, error) {
	in, err := service.BatchSyncRequest{Specs: specs}.MarshalJSON()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/simulate/batch-sync", bytes.NewReader(in))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var out service.BatchSyncResponse
	if err := out.UnmarshalJSON(body); err != nil {
		return nil, err
	}
	if len(out.Records) != len(specs) {
		return nil, fmt.Errorf("service: batch-sync returned %d records for %d specs", len(out.Records), len(specs))
	}
	return out.Records, nil
}

// UploadProgram registers a binary-encoded program with the daemon (POST
// /v1/programs) and returns its canonical workload id. Content-addressed and
// idempotent: the same bytes always answer the same id, from any client.
func (c *Client) UploadProgram(ctx context.Context, encoded []byte) (service.ProgramInfo, error) {
	var info service.ProgramInfo
	err := c.do(ctx, http.MethodPost, "/v1/programs", service.ProgramRequest{Encoded: encoded}, &info)
	return info, err
}

// UploadAssembly registers a program from text-assembly source (POST
// /v1/programs); name is used when the source has no .name directive.
func (c *Client) UploadAssembly(ctx context.Context, name, src string) (service.ProgramInfo, error) {
	var info service.ProgramInfo
	err := c.do(ctx, http.MethodPost, "/v1/programs", service.ProgramRequest{Assembly: src, Name: name}, &info)
	return info, err
}

// Programs lists the daemon's registered programs in id order (GET
// /v1/programs).
func (c *Client) Programs(ctx context.Context) ([]service.ProgramInfo, error) {
	var out []service.ProgramInfo
	err := c.do(ctx, http.MethodGet, "/v1/programs", nil, &out)
	return out, err
}

// SubmitBatch submits a spec batch (POST /v1/batch) and returns the
// accepted job's status.
func (c *Client) SubmitBatch(ctx context.Context, specs []service.SpecRequest) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/batch", service.BatchRequest{Specs: specs}, &st)
	return st, err
}

// SubmitExperiment submits one §5.1 experiment by id (POST
// /v1/experiments/{id}).
func (c *Client) SubmitExperiment(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/experiments/"+id, struct{}{}, &st)
	return st, err
}

// Job fetches a job's current status (GET /v1/jobs/{id}); records and
// artifact are included once the job is done.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every retained job, newest last (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels a job (DELETE /v1/jobs/{id}) and returns its status.
// Cancelling a finished job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stream follows a job's NDJSON event stream (GET /v1/jobs/{id}/stream),
// invoking fn for every event (fn may be nil), and returns the terminal
// status carried by the final "done" event. A non-nil error from fn aborts
// the stream and is returned.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.Event) error) (service.JobStatus, error) {
	var final service.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return final, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return final, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20) // experiment artifacts ride one line
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return final, fmt.Errorf("service: bad stream line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return final, err
			}
		}
		if ev.Type == "done" && ev.Job != nil {
			return *ev.Job, nil
		}
	}
	if err := sc.Err(); err != nil {
		return final, err
	}
	return final, fmt.Errorf("service: stream for job %s ended without a done event", id)
}

// Wait streams the job to completion, collecting its record events, and
// then fetches the full terminal status (records and artifact included). If
// the job was evicted by the server's finished-job retention between the
// stream ending and the fetch, the terminal status is synthesized from the
// stream instead: the "done" event's status plus the streamed records laid
// out in spec order — the same shape the fetch would have returned — so a
// successful run never turns into a spurious not-found error or a record-
// less result.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	records := make(map[int]harness.Record)
	final, err := c.Stream(ctx, id, func(ev service.Event) error {
		if ev.Type == "record" && ev.Record != nil {
			records[ev.Index] = *ev.Record
		}
		return nil
	})
	if err != nil {
		return service.JobStatus{}, err
	}
	full, err := c.Job(ctx, id)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			if len(records) > 0 && final.Specs > 0 {
				// Missing indices stay zero-valued, matching the server's own
				// terminal status for a job that lost specs (the stream's
				// "error" events named them).
				recs := make([]harness.Record, final.Specs)
				for i, r := range records {
					if i >= 0 && i < len(recs) {
						recs[i] = r
					}
				}
				final.Records = recs
			}
			return final, nil
		}
		return service.JobStatus{}, err
	}
	return full, nil
}

// Experiments lists the server's experiment index (GET /v1/experiments).
func (c *Client) Experiments(ctx context.Context) ([]service.ExperimentInfo, error) {
	var out []service.ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Health fetches GET /v1/healthz. A draining daemon answers 503 with a
// well-formed body (OK false, Draining true); that is a health report, not a
// transport failure, so it is returned without error — callers branch on
// h.OK / h.Draining. Any other non-2xx stays an error.
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	var h service.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusServiceUnavailable {
		buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if err != nil {
			return h, err
		}
		if json.Unmarshal(buf, &h) == nil && (h.OK || h.Draining) {
			return h, nil
		}
		if resp.StatusCode/100 == 2 {
			return h, fmt.Errorf("service: bad healthz body: %q", string(buf))
		}
		// A 503 that is not the draining shape (a proxy, an overloaded
		// gateway) is still an error.
		return h, &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(buf))}
	}
	return h, decodeError(resp)
}

// Stats fetches GET /v1/statsz.
func (c *Client) Stats(ctx context.Context) (service.ServerStats, error) {
	var st service.ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/statsz", nil, &st)
	return st, err
}
