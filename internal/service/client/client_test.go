package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/harness"
	"repro/internal/service"
)

// These tests exercise the client against hand-rolled httptest handlers so
// its own logic — error-envelope decoding, stream parsing, and Wait's
// eviction fallback — is pinned directly, independent of the real server's
// behavior (which the end-to-end tests in internal/service already cover).

// TestDecodeAPIErrorEnvelope pins the typed error path: a JSON envelope
// round-trips to an *APIError carrying the HTTP status, the stable code,
// and the message, reachable through errors.As.
func TestDecodeAPIErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code":"job_not_found","error":"no job j000042"}`)
	}))
	defer srv.Close()

	_, err := New(srv.URL).Job(context.Background(), "j000042")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %T (%v), want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != "job_not_found" || apiErr.Msg != "no job j000042" {
		t.Errorf("decoded %+v, want status=404 code=job_not_found msg=%q", apiErr, "no job j000042")
	}
}

// TestDecodeAPIErrorNonJSON pins the degradation path: a body that is not
// the service's envelope (a proxy error page, a crash) still becomes an
// APIError with the status code and the raw text, not a JSON decode error.
func TestDecodeAPIErrorNonJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "<html>502 upstream sad</html>\n")
	}))
	defer srv.Close()

	_, err := New(srv.URL).Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %T (%v), want *APIError", err, err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Code != "" || apiErr.Msg != "<html>502 upstream sad</html>" {
		t.Errorf("decoded %+v, want status=502, no code, raw body as message", apiErr)
	}
}

// streamHandler writes the given NDJSON events for the stream endpoint and
// serves status (or a 404 envelope when evicted) for the job endpoint.
func streamHandler(t *testing.T, id string, events []service.Event, fetch *service.JobStatus) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/"+id+"/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				t.Errorf("encode event: %v", err)
			}
		}
	})
	mux.HandleFunc("GET /v1/jobs/"+id, func(w http.ResponseWriter, r *http.Request) {
		if fetch == nil {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"code":"job_not_found","error":"job evicted"}`)
			return
		}
		if err := json.NewEncoder(w).Encode(fetch); err != nil {
			t.Errorf("encode status: %v", err)
		}
	})
	return mux
}

// TestStreamReplaysEvents pins Stream's contract: every event reaches fn in
// wire order, and the "done" event's status is returned.
func TestStreamReplaysEvents(t *testing.T) {
	recA := harness.Record{Kernel: "gzip", Predictor: "vtage", IPC: 1.5}
	recB := harness.Record{Kernel: "art", Predictor: "none", IPC: 0.7}
	done := service.JobStatus{ID: "j1", Kind: "batch", State: service.StateDone, Specs: 2, Completed: 2}
	events := []service.Event{
		{Type: "status", Job: &service.JobStatus{ID: "j1", State: service.StateRunning}},
		{Type: "record", Index: 1, Record: &recB},
		{Type: "record", Index: 0, Record: &recA},
		{Type: "done", Job: &done},
	}
	srv := httptest.NewServer(streamHandler(t, "j1", events, &done))
	defer srv.Close()

	var seen []service.Event
	final, err := New(srv.URL).Stream(context.Background(), "j1", func(ev service.Event) error {
		seen = append(seen, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.ID != "j1" {
		t.Errorf("final status %+v, want done j1", final)
	}
	if len(seen) != len(events) {
		t.Fatalf("fn saw %d events, want %d", len(seen), len(events))
	}
	for i, ev := range seen {
		if ev.Type != events[i].Type || ev.Index != events[i].Index {
			t.Errorf("event %d: got %s/%d, want %s/%d", i, ev.Type, ev.Index, events[i].Type, events[i].Index)
		}
	}
	if *seen[1].Record != recB || *seen[2].Record != recA {
		t.Error("record events did not carry their records through")
	}
}

// TestStreamCallbackErrorAborts: a non-nil error from fn stops the stream
// and is returned unchanged.
func TestStreamCallbackErrorAborts(t *testing.T) {
	boom := errors.New("enough")
	events := []service.Event{
		{Type: "record", Index: 0, Record: &harness.Record{Kernel: "gzip"}},
		{Type: "done", Job: &service.JobStatus{ID: "j1", State: service.StateDone}},
	}
	srv := httptest.NewServer(streamHandler(t, "j1", events, nil))
	defer srv.Close()

	_, err := New(srv.URL).Stream(context.Background(), "j1", func(service.Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want the callback's error", err)
	}
}

// TestStreamWithoutDoneFails: a stream that ends cleanly but never delivers
// a "done" event is a protocol error, not a silent zero status.
func TestStreamWithoutDoneFails(t *testing.T) {
	events := []service.Event{{Type: "record", Index: 0, Record: &harness.Record{Kernel: "gzip"}}}
	srv := httptest.NewServer(streamHandler(t, "j1", events, nil))
	defer srv.Close()

	_, err := New(srv.URL).Stream(context.Background(), "j1", nil)
	if err == nil {
		t.Fatal("stream without a done event succeeded")
	}
}

// TestWaitFetchesTerminalStatus: the happy path — stream, then fetch the
// full record-bearing status from the job endpoint.
func TestWaitFetchesTerminalStatus(t *testing.T) {
	rec := harness.Record{Kernel: "gzip", Predictor: "vtage", IPC: 1.5}
	full := service.JobStatus{
		ID: "j1", State: service.StateDone, Specs: 1, Completed: 1,
		Records: []harness.Record{rec},
	}
	events := []service.Event{
		{Type: "record", Index: 0, Record: &rec},
		{Type: "done", Job: &service.JobStatus{ID: "j1", State: service.StateDone, Specs: 1, Completed: 1}},
	}
	srv := httptest.NewServer(streamHandler(t, "j1", events, &full))
	defer srv.Close()

	st, err := New(srv.URL).Wait(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 1 || st.Records[0] != rec {
		t.Errorf("Wait returned %+v, want the fetched terminal status with its record", st)
	}
}

// TestWaitSynthesizesEvictedStatus pins Wait's fallback: when the job was
// evicted between the stream's "done" and the status fetch (404), the
// terminal status is rebuilt from the stream — streamed records laid out in
// spec order, missing indices zero-valued — instead of failing.
func TestWaitSynthesizesEvictedStatus(t *testing.T) {
	recA := harness.Record{Kernel: "gzip", Predictor: "vtage", IPC: 1.5}
	recC := harness.Record{Kernel: "art", Predictor: "none", IPC: 0.7}
	events := []service.Event{
		// Completion order differs from spec order on purpose; spec 1 never
		// produced a record (its "error" event stands in).
		{Type: "record", Index: 2, Record: &recC},
		{Type: "error", Index: 1, Error: "spec lost"},
		{Type: "record", Index: 0, Record: &recA},
		{Type: "done", Job: &service.JobStatus{ID: "j1", State: service.StateDone, Specs: 3, Completed: 2}},
	}
	srv := httptest.NewServer(streamHandler(t, "j1", events, nil)) // fetch 404s
	defer srv.Close()

	st, err := New(srv.URL).Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait failed on eviction instead of synthesizing: %v", err)
	}
	if st.State != service.StateDone || st.Specs != 3 {
		t.Errorf("synthesized status %+v, want the done event's status", st)
	}
	if len(st.Records) != 3 {
		t.Fatalf("synthesized %d records, want 3 (one per requested spec)", len(st.Records))
	}
	if st.Records[0] != recA || st.Records[2] != recC {
		t.Error("streamed records not laid out by spec index")
	}
	if st.Records[1] != (harness.Record{}) {
		t.Errorf("lost spec's slot = %+v, want zero-valued", st.Records[1])
	}
}

// TestWaitPropagatesOtherFetchErrors: only 404 triggers synthesis; any
// other status-fetch failure surfaces.
func TestWaitPropagatesOtherFetchErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/stream", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Event{
			Type: "done",
			Job:  &service.JobStatus{ID: "j1", State: service.StateDone, Specs: 1},
		})
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"code":"internal","error":"boom"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	_, err := New(srv.URL).Wait(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Errorf("got %v, want the fetch's 500 APIError", err)
	}
}
