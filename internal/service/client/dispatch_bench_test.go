package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// Dispatch-cost pins for the wire path. BENCH_pr5 measured warm per-call
// remote dispatch at ~48 µs/call; the batch-sync framing exists to beat
// that by amortizing HTTP and job machinery across a whole frame. The
// benchmarks track the absolute numbers interactively; the test below is
// the CI regression gate, asserted as a ratio on one machine so a slow
// runner can't flake it.

// warmDispatchFixture is a live in-process service with every fig4 spec
// already simulated, so timed calls measure dispatch alone.
type warmDispatchFixture struct {
	c    *Client
	reqs []service.SpecRequest
}

func newWarmDispatchFixture(tb testing.TB) *warmDispatchFixture {
	tb.Helper()
	srv, err := service.New(service.Options{Warmup: 1_000, Measure: 4_000, Workers: 4})
	if err != nil {
		tb.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	tb.Cleanup(func() { hs.Close(); srv.Close() })

	var reqs []service.SpecRequest
	for _, sp := range harness.DedupSpecs(harness.Fig4Specs()) {
		reqs = append(reqs, service.RequestFor(sp))
	}
	c := New(hs.URL)
	if _, err := c.SimulateBatchSync(context.Background(), reqs); err != nil {
		tb.Fatal(err)
	}
	return &warmDispatchFixture{c: c, reqs: reqs}
}

// timePerCall returns warm µs per Simulate round-trip.
func (fx *warmDispatchFixture) timePerCall(tb testing.TB, calls int) float64 {
	tb.Helper()
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := fx.c.Simulate(ctx, fx.reqs[i%len(fx.reqs)]); err != nil {
			tb.Fatal(err)
		}
	}
	return time.Since(start).Seconds() * 1e6 / float64(calls)
}

// timeBatched returns warm µs per spec through batch-sync frames.
func (fx *warmDispatchFixture) timeBatched(tb testing.TB, frames int) float64 {
	tb.Helper()
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < frames; i++ {
		if _, err := fx.c.SimulateBatchSync(ctx, fx.reqs); err != nil {
			tb.Fatal(err)
		}
	}
	return time.Since(start).Seconds() * 1e6 / float64(frames*len(fx.reqs))
}

// TestBatchedDispatchBeatsPerCall is the regression gate for the batched
// wire path: per spec, a batch-sync frame must dispatch at least 5x
// cheaper than warm per-call Simulate on the same connection. Both sides
// run on this machine in this process, so the ratio holds on slow CI
// runners where an absolute µs bound would not.
func TestBatchedDispatchBeatsPerCall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	fx := newWarmDispatchFixture(t)
	perCall := fx.timePerCall(t, 200)
	batched := fx.timeBatched(t, 20)
	t.Logf("warm dispatch: %.1f µs/call per-call, %.2f µs/spec batched (%.1fx)",
		perCall, batched, perCall/batched)
	if batched*5 > perCall {
		t.Errorf("batched dispatch %.2f µs/spec is not 5x cheaper than per-call %.1f µs/call (%.1fx)",
			batched, perCall, perCall/batched)
	}
}

// BenchmarkWarmSimulateDispatch is the per-call baseline: one warm spec
// per HTTP round-trip (the ~48 µs/call number from BENCH_pr5).
func BenchmarkWarmSimulateDispatch(b *testing.B) {
	fx := newWarmDispatchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.c.Simulate(ctx, fx.reqs[i%len(fx.reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmBatchSyncDispatch is the batched path: a full warm frame
// per round-trip; the reported per-op cost is per spec, not per frame.
func BenchmarkWarmBatchSyncDispatch(b *testing.B) {
	fx := newWarmDispatchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(fx.reqs) {
		if _, err := fx.c.SimulateBatchSync(ctx, fx.reqs); err != nil {
			b.Fatal(err)
		}
	}
}
