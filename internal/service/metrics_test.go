package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
	. "repro/internal/service"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line matching prefix.
func metricValue(t *testing.T, page, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	t.Fatalf("no sample with prefix %q in scrape", prefix)
	return ""
}

// TestMetricsEndToEnd drives real work through the API and asserts the
// /metrics page reflects it: simulations ran, requests were counted under
// their route labels, the trace writer got spans, and the page is
// well-formed (each family exactly once) — the same gate CI applies to a
// live daemon.
func TestMetricsEndToEnd(t *testing.T) {
	var trace bytes.Buffer
	reg := obs.NewRegistry()
	_, c, ts := newTestServer(t, Options{Workers: 2, Metrics: reg, TraceWriter: &trace})

	spec := harness.Spec{Kernel: "gzip", Predictor: "vtage", Counters: harness.FPC}
	if _, err := c.Simulate(t.Context(), RequestFor(spec)); err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitBatch(t.Context(), specRequests([]harness.Spec{
		{Kernel: "art", Predictor: "stride", Counters: harness.BaselineCounters},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}

	page := scrape(t, ts.URL+"/metrics")

	if v := metricValue(t, page, "repro_simulations_total"); v == "0" {
		t.Error("repro_simulations_total = 0 after real work")
	}
	for _, prefix := range []string{
		`repro_http_requests_total{endpoint="simulate",code="200"}`,
		`repro_http_requests_total{endpoint="batch",code="202"}`,
		`repro_jobs_total{kind="batch",state="done"}`,
		`repro_cache_lookups_total{tier="memo",result="miss"}`,
		`repro_sched_queue_wait_seconds_count`,
		`repro_simulate_phase_seconds_count{phase="warmup"}`,
	} {
		if v := metricValue(t, page, prefix); v == "0" {
			t.Errorf("%s = 0, want > 0", prefix)
		}
	}
	if v := metricValue(t, page, "repro_jobs_active"); v != "0" {
		t.Errorf("repro_jobs_active = %s after all jobs finished, want 0", v)
	}

	// Well-formedness: every family header appears exactly once.
	seen := map[string]int{}
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]]++
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("family %s exposed %d times", name, n)
		}
	}

	// The trace writer saw complete span-sets: at least admit + warmup +
	// measure for the cold specs above.
	stages := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var s obs.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("corrupt trace line %q: %v", line, err)
		}
		stages[s.Stage]++
	}
	for _, st := range []string{obs.StageAdmit, obs.StageWarmup, obs.StageMeasure, obs.StagePublish} {
		if stages[st] == 0 {
			t.Errorf("trace has no %q spans: %v", st, stages)
		}
	}
}

// TestStatszSnapshots verifies the snapshot cache is attached by default,
// reported in /v1/statsz, and disabled by a negative SnapshotCap.
func TestStatszSnapshots(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{Workers: 2})
	if srv.Session().Snapshots() == nil {
		t.Fatal("default server has no snapshot cache attached")
	}
	spec := harness.Spec{Kernel: "gzip", Predictor: "lvp"}
	if _, err := c.Simulate(t.Context(), RequestFor(spec)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Snapshots == nil {
		t.Fatal("statsz has no snapshots section")
	}
	if stats.Snapshots.Misses == 0 || stats.Snapshots.Entries == 0 {
		t.Errorf("snapshot stats not populated: %+v", *stats.Snapshots)
	}

	off, _, _ := newTestServer(t, Options{Workers: 1, SnapshotCap: -1})
	if off.Session().Snapshots() != nil {
		t.Error("SnapshotCap < 0 still attached a snapshot cache")
	}
	if s := off.Stats(); s.Snapshots != nil {
		t.Error("statsz reports snapshots with the cache disabled")
	}
}
