// Program-ingestion tests: POST /v1/programs in both wire forms, simulation
// by prog: reference, the typed unknown_program error, and the statsz
// program count (DESIGN.md §11).
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/kernels"
	. "repro/internal/service"
	"repro/internal/service/client"
)

// TestProgramUploadAndSimulate uploads a generated program in both wire
// forms and checks the simulate-by-reference path end to end: the remote
// record must be byte-identical to a direct harness run of the same program
// under the same windows.
func TestProgramUploadAndSimulate(t *testing.T) {
	t.Parallel()
	_, c, _ := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	prog, err := isa.Generate("mixed", 42)
	if err != nil {
		t.Fatal(err)
	}

	// Binary upload.
	info, err := c.UploadProgram(ctx, prog.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != harness.ProgramID(prog) {
		t.Fatalf("upload answered id %q, want %q", info.ID, harness.ProgramID(prog))
	}
	if info.Insts != len(prog.Insts) || info.Name != prog.Name {
		t.Fatalf("upload metadata wrong: %+v", info)
	}

	// The assembly form of the same program is the same identity.
	asmInfo, err := c.UploadAssembly(ctx, "", string(isa.Disassemble(prog)))
	if err != nil {
		t.Fatal(err)
	}
	if asmInfo.ID != info.ID {
		t.Fatalf("assembly upload answered %q, binary answered %q", asmInfo.ID, info.ID)
	}

	// Simulating by reference matches a direct harness run byte for byte.
	rec, err := c.Simulate(ctx, SpecRequest{Program: info.ID, Predictor: "vtage", Counters: "fpc"})
	if err != nil {
		t.Fatal(err)
	}
	se := harness.NewSession(testWarmup, testMeasure)
	if _, err := se.RegisterProgram(prog); err != nil {
		t.Fatal(err)
	}
	want, err := se.Records([]harness.Spec{{Kernel: info.ID, Predictor: "vtage", Counters: harness.FPC}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec != want[0] {
		t.Fatalf("remote record differs from direct run:\n got %+v\nwant %+v", rec, want[0])
	}

	// The registry lists exactly one program, and statsz agrees.
	list, err := c.Programs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("program list = %+v, want just %s", list, info.ID)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Programs != 1 {
		t.Fatalf("statsz programs = %d, want 1", st.Programs)
	}
}

// TestProgramUploadBuiltinDedup pins the identity rule over the wire: a
// byte-identical upload of a builtin kernel answers the builtin's name and
// never enters the registry.
func TestProgramUploadBuiltinDedup(t *testing.T) {
	t.Parallel()
	_, c, _ := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	k, ok := kernels.ByName("mcf")
	if !ok {
		t.Fatal("no builtin mcf")
	}
	info, err := c.UploadProgram(ctx, k.Build().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "mcf" {
		t.Fatalf("byte-identical mcf upload answered %q, want the builtin name", info.ID)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Programs != 0 {
		t.Fatalf("builtin-identical upload entered the registry: programs = %d", st.Programs)
	}
}

// TestUnknownProgramTypedError pins the curable error contract: a spec
// naming an unuploaded prog: reference answers 404 with the stable
// unknown_program code (simulate and batch alike), and the message lists
// what IS uploaded once anything is.
func TestUnknownProgramTypedError(t *testing.T) {
	t.Parallel()
	_, c, _ := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	ghost := "prog:" + strings.Repeat("ab", 32)
	_, err := c.Simulate(ctx, SpecRequest{Program: ghost, Predictor: "vtage"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != CodeUnknownProgram {
		t.Fatalf("unknown program error = %v, want 404 %s", err, CodeUnknownProgram)
	}
	if !strings.Contains(apiErr.Msg, "POST /v1/programs") {
		t.Fatalf("error does not explain the cure: %v", apiErr)
	}

	prog, perr := isa.Generate("branchy", 1)
	if perr != nil {
		t.Fatal(perr)
	}
	info, perr := c.UploadProgram(ctx, prog.Encode())
	if perr != nil {
		t.Fatal(perr)
	}
	_, err = c.SubmitBatch(ctx, []SpecRequest{{Program: ghost, Predictor: "vtage"}})
	if !errors.As(err, &apiErr) || apiErr.Code != CodeUnknownProgram {
		t.Fatalf("batch unknown program error = %v, want %s", err, CodeUnknownProgram)
	}
	if !strings.Contains(apiErr.Msg, info.ID) {
		t.Fatalf("error does not list uploaded programs: %v", apiErr)
	}
}

// TestProgramUploadRejects pins the 400 paths of POST /v1/programs. The
// malformed bodies are posted raw (the typed client refuses to build them).
func TestProgramUploadRejects(t *testing.T) {
	t.Parallel()
	_, _, ts := newTestServer(t, Options{Workers: 1})

	cases := []struct {
		name string
		req  ProgramRequest
		frag string
	}{
		{"empty", ProgramRequest{}, "empty program request"},
		{"both", ProgramRequest{Encoded: []byte("VPP1junk"), Assembly: "halt"}, "exactly one"},
		{"bad encoding", ProgramRequest{Encoded: []byte("not a program")}, ""},
		{"bad assembly", ProgramRequest{Assembly: "frobnicate r1, r2", Name: "t"}, "unknown"},
	}
	for _, tc := range cases {
		body, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/programs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr APIError
		if jerr := json.NewDecoder(resp.Body).Decode(&apiErr); jerr != nil {
			t.Fatalf("%s: bad error body: %v", tc.name, jerr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, apiErr.Msg)
			continue
		}
		if tc.frag != "" && !strings.Contains(apiErr.Msg, tc.frag) {
			t.Errorf("%s: message %q missing %q", tc.name, apiErr.Msg, tc.frag)
		}
	}
}
