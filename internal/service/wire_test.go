package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// reflectSpecRequest is SpecRequest without its methods — the reflection
// oracle for the hand-rolled codec.
type reflectSpecRequest SpecRequest

func wireTestSpecRequests() []SpecRequest {
	return []SpecRequest{
		{Kernel: "art", Predictor: "vtage"},
		{Kernel: "gzip", Predictor: "lvp", Counters: "fpc", Recovery: "reissue",
			Width: 4, LoadsOnly: true, MaxHist: 128, FPCVector: "0,2,2,2,2,3,3"},
		{Program: "prog:4b3f", Predictor: "stride", Counters: "baseline"},
		{},
	}
}

// TestSpecRequestMarshalByteCompatible pins the hand-rolled marshaler
// against the reflection encoder, omitempty layout included.
func TestSpecRequestMarshalByteCompatible(t *testing.T) {
	for _, req := range wireTestSpecRequests() {
		got, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(reflectSpecRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("hand-rolled marshal differs from reflection:\n got %s\nwant %s", got, want)
		}
	}
}

// TestSpecRequestUnmarshalStrict checks decode equivalence on the fast
// path and both fallback behaviors: escaped strings decode correctly, and
// unknown fields still fail — the API's strictness predates the fast path
// and must survive it.
func TestSpecRequestUnmarshalStrict(t *testing.T) {
	for _, req := range wireTestSpecRequests() {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var got SpecRequest
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: got %+v, want %+v", b, got, req)
		}
	}

	var esc SpecRequest
	if err := json.Unmarshal([]byte(`{"kernel":"art","predictor":"lvp"}`), &esc); err != nil {
		t.Fatal(err)
	}
	if esc.Kernel != "art" {
		t.Errorf("escaped kernel = %q, want art", esc.Kernel)
	}

	err := json.Unmarshal([]byte(`{"kernel":"art","predictor":"lvp","bogus":1}`), &SpecRequest{})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field must be rejected, got: %v", err)
	}
}
