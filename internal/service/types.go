// Package service is the simulation-as-a-service layer: a job-oriented HTTP
// server over one process-lifetime harness.Session, so the memo (kernel
// traces and simulation results) is shared across every request the daemon
// ever answers. The versioned JSON API (DESIGN.md §6) offers synchronous
// single-spec simulation, asynchronous batch and experiment jobs with
// NDJSON/SSE result streaming, per-job cancellation, and /healthz +
// /statsz observability. cmd/vpserved is the daemon; service/client the
// typed Go client; repro.NewServer the facade constructor.
package service

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/pipeline"
)

// SpecRequest is the wire form of one simulation spec. Counters and
// Recovery use the same strings as the CLIs: "baseline" (default) or "fpc",
// and "squash" (default) or "reissue". The remaining fields are the
// extended config key (harness.Spec): zero values mean the paper's default
// machine, so pre-PR4 requests are unchanged. Width overrides the machine
// width, LoadsOnly restricts prediction to loads, MaxHist overrides
// VTAGE's history length (vtage-family predictors only), and FPCVector
// ("0,2,2,2,2,3,3") replaces the counters-derived probability vector.
type SpecRequest struct {
	Kernel string `json:"kernel"`
	// Program names the workload by content-addressed reference
	// ("prog:<sha256>", from POST /v1/programs) instead of a builtin kernel
	// name. Set one of Kernel and Program; a prog: reference in Kernel is
	// also accepted (the canonical spec carries the workload there), so
	// RequestFor round-trips program specs through the Kernel field.
	Program   string `json:"program,omitempty"`
	Predictor string `json:"predictor"`
	Counters  string `json:"counters,omitempty"`
	Recovery  string `json:"recovery,omitempty"`
	Width     int    `json:"width,omitempty"`
	LoadsOnly bool   `json:"loads_only,omitempty"`
	MaxHist   int    `json:"max_hist,omitempty"`
	FPCVector string `json:"fpc_vector,omitempty"`
}

// Spec converts the request to a canonical harness spec, validating it the
// same way (and in the same canonical-first order) as the harness itself,
// so the wire layer and the Go API accept exactly the same configurations.
func (r SpecRequest) Spec() (harness.Spec, error) {
	var s harness.Spec
	s.Kernel, s.Program, s.Predictor = r.Kernel, r.Program, r.Predictor
	switch r.Counters {
	case "", "baseline":
		s.Counters = harness.BaselineCounters
	case "fpc", "FPC":
		s.Counters = harness.FPC
	default:
		return s, fmt.Errorf("unknown counters %q (have baseline, fpc)", r.Counters)
	}
	switch r.Recovery {
	case "", "squash":
		s.Recovery = pipeline.SquashAtCommit
	case "reissue":
		s.Recovery = pipeline.SelectiveReissue
	default:
		return s, fmt.Errorf("unknown recovery %q (have squash, reissue)", r.Recovery)
	}
	s.Width = r.Width
	s.LoadsOnly = r.LoadsOnly
	s.MaxHist = r.MaxHist
	s.FPCVec = r.FPCVector
	s = s.Canonical()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// RequestFor is Spec's inverse: the wire form of a harness spec. It is the
// one place the counters/recovery strings are produced (clients, benchmarks
// and tests all go through it, so the wire vocabulary cannot drift).
func RequestFor(s harness.Spec) SpecRequest {
	counters := "baseline"
	if s.Counters == harness.FPC {
		counters = "fpc"
	}
	return SpecRequest{
		Kernel:    s.Kernel,
		Predictor: s.Predictor,
		Counters:  counters,
		Recovery:  s.Recovery.String(),
		Width:     s.Width,
		LoadsOnly: s.LoadsOnly,
		MaxHist:   s.MaxHist,
		FPCVector: s.FPCVec,
	}
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Specs []SpecRequest `json:"specs"`
}

// BatchSyncRequest is the body of POST /v1/simulate/batch-sync: the batched
// synchronous wire framing (DESIGN.md §12). One request carries many specs
// and one response carries their records in request order, so the HTTP round
// trip — the dominant cost of warm, memo-served dispatch — is amortized over
// the whole frame instead of paid per spec.
type BatchSyncRequest struct {
	Specs []SpecRequest `json:"specs"`
}

// BatchSyncResponse answers a batch-sync frame: Records[i] is the flattened
// record of Specs[i]. The endpoint is all-or-nothing — a failing spec fails
// the whole frame with the standard error envelope (the first failure in
// request order), mirroring the Batch contract's first-error abort.
type BatchSyncResponse struct {
	Records []harness.Record `json:"records"`
}

// ProgramRequest is the body of POST /v1/programs: exactly one of Encoded
// (the program's binary encoding, base64 on the wire per encoding/json) and
// Assembly (text-assembly source, DESIGN.md §11). Name optionally overrides
// the program's display name when assembling source with no .name directive;
// it never affects an Encoded upload (the bytes are the identity).
type ProgramRequest struct {
	Encoded  []byte `json:"encoded,omitempty"`
	Assembly string `json:"assembly,omitempty"`
	Name     string `json:"name,omitempty"`
}

// ProgramInfo describes one registered program: the workload string to put
// in SpecRequest.Program (a prog: reference — or a builtin kernel name, when
// the upload was byte-identical to that builtin), plus display metadata.
type ProgramInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Insts int    `json:"insts"`
	Bytes int    `json:"bytes"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the wire form of one job. Records (per requested spec, in
// spec order, identical to a sequential Session.Records over the same
// specs) and Artifact (the rendered text table of an experiment job) are
// populated once State is terminal. A failed or canceled job returns the
// records that completed before it died — missing entries are zero-valued;
// the stream's per-spec "error" events name the ones that were lost.
type JobStatus struct {
	ID            string           `json:"id"`
	Kind          string           `json:"kind"` // "batch" or "experiment"
	Experiment    string           `json:"experiment,omitempty"`
	State         string           `json:"state"`
	Specs         int              `json:"specs"`     // requested specs
	Completed     int              `json:"completed"` // requested specs finished
	Error         string           `json:"error,omitempty"`
	SubmittedUnix int64            `json:"submitted_unix"`
	StartedUnix   int64            `json:"started_unix,omitempty"`
	FinishedUnix  int64            `json:"finished_unix,omitempty"`
	Records       []harness.Record `json:"records,omitempty"`
	Artifact      string           `json:"artifact,omitempty"`
}

// terminalState is the one definition of "this job can change no further";
// Finished, cancellation, and retention all use it.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Finished reports whether the job has reached a terminal state.
func (s JobStatus) Finished() bool { return terminalState(s.State) }

// Event is one line of a job's NDJSON stream (or one SSE data frame):
// "record" events carry one finished record with its index into the
// requested spec order (records stream in completion order, not spec
// order); "error" events carry the failure of one requested spec that will
// never produce a record (its simulation, its baseline, or the record
// flattening failed — cancellation included), so a streaming client learns
// about the loss before the terminal "done"; the final "done" event carries
// the terminal JobStatus, records omitted since they were already streamed.
type Event struct {
	Type string `json:"type"` // "status", "record", "error", "done"
	// Index is meaningful only when Type is "record" or "error"
	// (status/done events carry a zero Index that refers to nothing). It is
	// always serialized — no omitempty — so a record event for spec 0 looks
	// like every other record event.
	Index  int             `json:"index"`
	Record *harness.Record `json:"record,omitempty"`
	Job    *JobStatus      `json:"job,omitempty"`
	Error  string          `json:"error,omitempty"` // set when Type is "error"
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Health is the body of GET /v1/healthz. A serving daemon answers 200 with
// OK true; once SIGTERM drain begins the endpoint answers 503 with OK false
// and Draining true — same body shape, so a fleet front (or a load balancer
// probing status codes alone) stops routing new work to the shard while its
// in-flight jobs finish.
type Health struct {
	OK       bool    `json:"ok"`
	UptimeS  float64 `json:"uptime_s"`
	Draining bool    `json:"draining"`
	ShardID  string  `json:"shard_id,omitempty"`
}

// ShardInfo is the shard identity block of /v1/statsz: who this daemon is in
// a fleet (vpserved -shard-id, defaulting to the bound host:port) and since
// when it has been serving, so fleet probing and logs can tell shards apart.
type ShardInfo struct {
	ID            string  `json:"id"`
	StartUnix     int64   `json:"start_time_unix"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Limits echoes the admission configuration in /v1/statsz.
type Limits struct {
	MaxJobs          int    `json:"max_jobs"`
	MaxBatch         int    `json:"max_specs_per_batch"`
	RequestTimeoutMs int64  `json:"request_timeout_ms"`
	Warmup           uint64 `json:"warmup_uops"`
	Measure          uint64 `json:"measure_uops"`
}

// StoreStats is the persistent-store section of /v1/statsz, present only
// when the daemon was started with -store-dir.
type StoreStats struct {
	Dir         string `json:"dir"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	LoadErrors  uint64 `json:"load_errors"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
}

// ServerStats is the body of GET /v1/statsz: scheduler load, the shared
// session's memo/store/snapshot effectiveness, and the job population by
// state.
// Workers is the scheduler pool size; GOMAXPROCS and NumCPU put it in
// context — min of the three is the parallelism the pool can really get.
// MemoMisses counts simulations actually started; a result loaded from the
// persistent store is a MemoStoreHit, not a miss, so "memo_misses == 0"
// across a run is the warm-start success criterion.
type ServerStats struct {
	Workers       int            `json:"workers"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	NumCPU        int            `json:"num_cpu"`
	BusyWorkers   int            `json:"busy_workers"`
	QueuedTasks   int            `json:"queued_tasks"`
	Coalesced     uint64         `json:"coalesced_tasks"`
	MemoHits      uint64         `json:"memo_hits"`
	MemoMisses    uint64         `json:"memo_misses"`
	MemoStoreHits uint64         `json:"memo_store_hits"`
	Jobs          map[string]int `json:"jobs"`
	ActiveJobs    int            `json:"active_jobs"`
	Draining      bool           `json:"draining"`
	// Programs counts the workloads registered via POST /v1/programs (or
	// Session.RegisterProgram) over the daemon's lifetime. Uploads that
	// deduplicated onto a builtin kernel are not counted — they added nothing.
	Programs int         `json:"programs"`
	Store    *StoreStats `json:"store,omitempty"`

	// Snapshots reports the warm-state snapshot cache (harness
	// SnapshotCache.Stats), present unless the cache was disabled with a
	// negative SnapshotCap. A snapshot hit still simulates — it skips only
	// the warmup phase — so these are orthogonal to the memo counters.
	Snapshots *harness.SnapshotStats `json:"snapshots,omitempty"`

	// Shard identifies this daemon within a fleet (DESIGN.md §12).
	Shard ShardInfo `json:"shard"`

	Limits Limits `json:"limits"`
}
