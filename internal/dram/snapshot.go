package dram

// State is an opaque snapshot of a Memory's mutable state (open rows, bank
// and bus timing, refresh phase, counters). Restore reinstates it in place
// on an identically configured Memory.
type State struct {
	banks            []bank
	busFree          int64
	refDone          int64
	nextRef          int64
	reads, writes    uint64
	rowHits, rowMiss uint64
	rowConf          uint64
}

// Snapshot deep-copies the memory state.
func (m *Memory) Snapshot() *State {
	return &State{
		banks:   append([]bank(nil), m.banks...),
		busFree: m.busFree,
		refDone: m.refDone,
		nextRef: m.nextRef,
		reads:   m.reads,
		writes:  m.writes,
		rowHits: m.rowHits,
		rowMiss: m.rowMiss,
		rowConf: m.rowConf,
	}
}

// Restore reinstates a snapshot taken from an identically configured Memory.
func (m *Memory) Restore(st *State) {
	copy(m.banks, st.banks)
	m.busFree = st.busFree
	m.refDone = st.refDone
	m.nextRef = st.nextRef
	m.reads = st.reads
	m.writes = st.writes
	m.rowHits = st.rowHits
	m.rowMiss = st.rowMiss
	m.rowConf = st.rowConf
}
