// Package dram models the paper's main memory (Table 2): a single-channel
// DDR3-1600 11-11-11 part with 2 ranks of 8 banks, 8K row buffers, and
// periodic refresh (tREFI 7.8µs), behind a 64-byte bus. All timing is in CPU
// cycles at the paper's 4 GHz clock (1 DRAM cycle = 5 CPU cycles), giving
// the paper's 75-cycle minimum and ~185-cycle maximum read latency.
package dram

// Config holds the DDR3 timing parameters in CPU cycles.
type Config struct {
	TCAS     int64 // column access (CL=11 → 55)
	TRCD     int64 // row to column (11 → 55)
	TRP      int64 // precharge (11 → 55)
	Burst    int64 // data burst over the 64B bus (BL8 → 4 DRAM cycles → 20)
	TREFI    int64 // refresh interval (7.8µs → 31200)
	TRFC     int64 // refresh cycle time (~260ns → 1040)
	Ranks    int
	Banks    int    // banks per rank
	RowBytes uint64 // row buffer size (8K)
}

// DefaultConfig is the paper's Table 2 memory.
func DefaultConfig() Config {
	return Config{
		TCAS:     55,
		TRCD:     55,
		TRP:      55,
		Burst:    20,
		TREFI:    31200,
		TRFC:     1040,
		Ranks:    2,
		Banks:    8,
		RowBytes: 8192,
	}
}

// Memory is a single-channel DDR3 timing model. It is not a data store —
// functional data lives in the emulator; Memory answers only "when does this
// access complete".
type Memory struct {
	cfg   Config
	banks []bank
	// busFree is when the shared data bus next becomes available.
	busFree int64
	// refDone is the end of the most recently processed refresh window.
	refDone int64
	nextRef int64

	reads, writes    uint64
	rowHits, rowMiss uint64
	rowConf          uint64
}

type bank struct {
	openRow  uint64
	rowValid bool
	busyTill int64
}

// New builds a memory with cfg.
func New(cfg Config) *Memory {
	return &Memory{
		cfg:     cfg,
		banks:   make([]bank, cfg.Ranks*cfg.Banks),
		nextRef: cfg.TREFI,
	}
}

// decode splits a line address into bank and row. The bank index folds
// higher address bits in (as real memory controllers do) so that strided
// access patterns whose stride is a multiple of the bank count still spread
// across banks instead of serializing on one.
func (m *Memory) decode(addr uint64) (bankIdx int, row uint64) {
	line := addr >> 6
	nb := uint64(len(m.banks))
	bankIdx = int((line ^ line>>4 ^ line>>9 ^ line>>14) % nb)
	row = (addr / nb) / m.cfg.RowBytes
	return
}

// refreshWait advances the refresh schedule to now and returns the extra
// wait if now falls inside a refresh window (all banks busy).
func (m *Memory) refreshWait(now int64) int64 {
	for m.nextRef <= now {
		m.refDone = m.nextRef + m.cfg.TRFC
		m.nextRef += m.cfg.TREFI
	}
	if now < m.refDone {
		return m.refDone - now
	}
	return 0
}

// Access issues a read or write for the line containing addr at CPU cycle
// now and returns the cycle its data transfer completes. Writes release the
// requester immediately in the cache model; the returned time still occupies
// the bank and bus.
func (m *Memory) Access(now int64, addr uint64, write bool) int64 {
	if write {
		m.writes++
	} else {
		m.reads++
	}
	now += m.refreshWait(now)

	bi, row := m.decode(addr)
	b := &m.banks[bi]

	start := now
	if b.busyTill > start {
		start = b.busyTill
	}

	var lat int64
	switch {
	case b.rowValid && b.openRow == row:
		m.rowHits++
		lat = m.cfg.TCAS
	case !b.rowValid:
		m.rowMiss++
		lat = m.cfg.TRCD + m.cfg.TCAS
	default:
		m.rowConf++
		lat = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
	}
	b.openRow = row
	b.rowValid = true

	ready := start + lat
	// The data burst needs the shared bus.
	if m.busFree > ready {
		ready = m.busFree
	}
	done := ready + m.cfg.Burst
	m.busFree = done
	b.busyTill = done
	return done
}

// Stats reports access counts and row-buffer behaviour.
func (m *Memory) Stats() (reads, writes, rowHits, rowMiss, rowConf uint64) {
	return m.reads, m.writes, m.rowHits, m.rowMiss, m.rowConf
}

// MinReadLatency returns the unloaded row-hit latency (paper: 75).
func (m *Memory) MinReadLatency() int64 { return m.cfg.TCAS + m.cfg.Burst }

// MaxReadLatency returns the unloaded row-conflict latency (paper: 185).
func (m *Memory) MaxReadLatency() int64 {
	return m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS + m.cfg.Burst
}
