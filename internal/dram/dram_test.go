package dram

import (
	"testing"
	"testing/quick"
)

func TestUnloadedRowHitLatency(t *testing.T) {
	m := New(DefaultConfig())
	// First access opens the row (closed bank): tRCD + tCAS + burst.
	d1 := m.Access(0, 0x1000, false)
	if want := int64(55 + 55 + 20); d1 != want {
		t.Errorf("first access latency = %d, want %d", d1, want)
	}
	// Second access to the same row far in the future: row hit, 75 cycles.
	now := int64(1_000_000)
	d2 := m.Access(now, 0x1000, false)
	if got := d2 - now; got != m.MinReadLatency() {
		t.Errorf("row-hit latency = %d, want %d", got, m.MinReadLatency())
	}
	if m.MinReadLatency() != 75 {
		t.Errorf("MinReadLatency = %d, want 75 (paper Table 2)", m.MinReadLatency())
	}
}

func TestRowConflictLatency(t *testing.T) {
	m := New(DefaultConfig())
	// Open a row on some bank, then find an address on the same bank in a
	// different row (the bank index is hashed, so search for a collision).
	m.Access(0, 0, false)
	b0, r0 := m.decode(0)
	var conflict uint64
	found := false
	for a := uint64(1 << 12); a < 1<<30 && !found; a += 1 << 12 {
		if b, r := m.decode(a); b == b0 && r != r0 {
			conflict, found = a, true
		}
	}
	if !found {
		t.Fatal("no same-bank different-row address found")
	}
	now := int64(1_000_000)
	d := m.Access(now, conflict, false)
	if got := d - now; got != m.MaxReadLatency() {
		t.Errorf("row-conflict latency = %d, want %d", got, m.MaxReadLatency())
	}
	if m.MaxReadLatency() != 185 {
		t.Errorf("MaxReadLatency = %d, want 185 (paper Table 2)", m.MaxReadLatency())
	}
}

func TestBankOccupancySerializes(t *testing.T) {
	m := New(DefaultConfig())
	d1 := m.Access(0, 0, false)
	d2 := m.Access(0, 0, false) // same bank, same cycle: must queue
	if d2 <= d1 {
		t.Errorf("second access done at %d, not after first at %d", d2, d1)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	m := New(DefaultConfig())
	d1 := m.Access(0, 0, false)
	d2 := m.Access(0, 64, false) // next line -> different bank
	// Bank work overlaps; only the burst serializes on the bus.
	if d2-d1 >= 75 {
		t.Errorf("bank-parallel accesses serialized fully: d1=%d d2=%d", d1, d2)
	}
}

func TestRefreshStallsAccesses(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Land exactly inside the first refresh window.
	inRef := cfg.TREFI + 1
	d := m.Access(inRef, 0, false)
	minDone := cfg.TREFI + cfg.TRFC // cannot start before refresh completes
	if d < minDone {
		t.Errorf("access during refresh done at %d, want ≥ %d", d, minDone)
	}
}

func TestStatsCount(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0, false)
	m.Access(0, 64, true)
	r, w, _, _, _ := m.Stats()
	if r != 1 || w != 1 {
		t.Errorf("reads,writes = %d,%d, want 1,1", r, w)
	}
}

// Property: completion times are monotonically consistent — an access never
// completes before it starts plus the minimum latency.
func TestLatencyLowerBoundProperty(t *testing.T) {
	m := New(DefaultConfig())
	now := int64(0)
	f := func(addrSeed uint32, gap uint16) bool {
		now += int64(gap)
		done := m.Access(now, uint64(addrSeed)*64, false)
		return done >= now+m.MinReadLatency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
