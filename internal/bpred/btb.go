package bpred

// BTB is the branch target buffer (Table 2: 2-way, 4K entries). It maps
// branch PCs to their most recent taken target. Direct branches that miss
// cost a front-end redirect bubble; indirect branches that hit a stale
// target cost a full misprediction.
type BTB struct {
	sets []btbSet
	mask uint64
}

type btbSet struct {
	ways [2]btbWay
}

type btbWay struct {
	tag    uint64
	target uint32
	valid  bool
	lru    bool // true if this way is the most recently used
}

// NewBTB builds a 2-way BTB with 2^logEntries total entries.
func NewBTB(logEntries int) *BTB {
	n := (1 << logEntries) / 2
	return &BTB{sets: make([]btbSet, n), mask: uint64(n - 1)}
}

func (b *BTB) set(pc uint64) (*btbSet, uint64) {
	h := hash64(pc)
	return &b.sets[h&b.mask], h >> 12
}

// Lookup returns the predicted target for pc and whether the BTB hit.
func (b *BTB) Lookup(pc uint64) (uint32, bool) {
	s, tag := b.set(pc)
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.tag == tag {
			w.lru = true
			s.ways[1-i].lru = false
			return w.target, true
		}
	}
	return 0, false
}

// Insert records target for pc, evicting the least recently used way.
func (b *BTB) Insert(pc uint64, target uint32) {
	s, tag := b.set(pc)
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.tag == tag {
			w.target = target
			w.lru = true
			s.ways[1-i].lru = false
			return
		}
	}
	victim := 0
	if s.ways[0].lru || !s.ways[1].valid {
		victim = 1
	}
	s.ways[victim] = btbWay{tag: tag, target: target, valid: true, lru: true}
	s.ways[1-victim].lru = false
}

// Entries reports the BTB capacity.
func (b *BTB) Entries() int { return len(b.sets) * 2 }

// RAS is the return address stack (Table 2: 32 entries). The pipeline
// snapshots Top before each fetched control µop and restores it on squash —
// the standard top-pointer checkpoint repair.
type RAS struct {
	stack [32]uint32
	top   int // index of the next free slot (grows upward, wraps)
}

// Push records a return address at a call.
func (r *RAS) Push(ret uint32) {
	r.stack[r.top&31] = ret
	r.top++
}

// Pop predicts the target of a return.
func (r *RAS) Pop() uint32 {
	r.top--
	return r.stack[r.top&31]
}

// Top returns the checkpointable stack position.
func (r *RAS) Top() int { return r.top }

// Restore rewinds the stack position to a checkpoint. Entries above the
// checkpoint may have been clobbered by wrong-path pushes that wrapped the
// ring; that imprecision is inherent to the hardware scheme being modelled.
func (r *RAS) Restore(top int) { r.top = top }
