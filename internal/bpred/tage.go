// Package bpred implements the front-end branch prediction substrate from
// the paper's Table 2: a TAGE conditional branch predictor with 1+12
// components (~15K entries total), a 2-way 4K-entry BTB, and a 32-entry
// return address stack. TAGE shares the speculative global history object
// with the VTAGE value predictor, exactly as the paper leverages "context
// that is usually already available in the processor thanks to the branch
// predictor".
package bpred

import (
	"math"

	"repro/internal/ghist"
)

// NTables is the number of tagged TAGE components (Table 2: 1+12).
const NTables = 12

// TageMeta carries fetch-time bookkeeping from Predict to the commit-time
// Train, the same role core.Meta plays for value predictors.
type TageMeta struct {
	Pred    bool
	AltPred bool
	Prov    int8 // provider table, -1 = bimodal base
	AltProv int8
	BaseIdx uint32
	Idx     [NTables]uint32
	Tag     [NTables]uint16
}

// Tage is a TAGE conditional branch direction predictor.
type Tage struct {
	hist *ghist.History

	base     []uint8 // 2-bit bimodal counters
	baseMask uint64

	tables [NTables]tageTable
	rng    uint32
}

type tageTable struct {
	entries  []tageEntry
	mask     uint64
	histLen  int
	tagBits  int
	idxFold  ghist.Fold
	tagFoldA ghist.Fold
	tagFoldB ghist.Fold
	pathFold ghist.Fold
}

type tageEntry struct {
	tag uint16
	ctr uint8 // 3-bit counter, taken if >= 4
	u   uint8 // 2-bit usefulness
}

// TageConfig sizes the predictor.
type TageConfig struct {
	LogBase   int // log2 bimodal entries (default 13 → 8K)
	LogTagged int // log2 entries per tagged table (default 9 → 512)
	MinHist   int // shortest history (default 4)
	MaxHist   int // longest history (default 640)
}

// DefaultTageConfig approximates the paper's 15K-entry TAGE.
func DefaultTageConfig() TageConfig {
	return TageConfig{LogBase: 13, LogTagged: 9, MinHist: 4, MaxHist: 640}
}

// NewTage builds a TAGE predictor over the shared global history h.
func NewTage(cfg TageConfig, h *ghist.History) *Tage {
	t := &Tage{
		hist: h,
		base: make([]uint8, 1<<cfg.LogBase),
		rng:  0x2545F491,
	}
	t.baseMask = uint64(len(t.base) - 1)
	for i := range t.base {
		t.base[i] = 2 // weakly taken
	}
	ratio := math.Pow(float64(cfg.MaxHist)/float64(cfg.MinHist), 1.0/float64(NTables-1))
	hl := float64(cfg.MinHist)
	for i := 0; i < NTables; i++ {
		tb := &t.tables[i]
		n := 1 << cfg.LogTagged
		L := int(hl + 0.5)
		tb.entries = make([]tageEntry, n)
		tb.mask = uint64(n - 1)
		tb.histLen = L
		tb.tagBits = 9 + i/2 // 9..14 bits
		if tb.tagBits > 15 {
			tb.tagBits = 15
		}
		tb.idxFold = h.RegisterFold(L, cfg.LogTagged, false)
		tb.tagFoldA = h.RegisterFold(L, tb.tagBits, false)
		tb.tagFoldB = h.RegisterFold(L, tb.tagBits-1, false)
		tb.pathFold = h.RegisterFold(min(L, 16), cfg.LogTagged, true)
		hl *= ratio
	}
	return t
}

func hash64(pc uint64) uint64 {
	z := pc + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *Tage) nextRand() uint32 {
	s := t.rng
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	t.rng = s
	return s
}

func (t *Tage) index(k int, pc uint64) uint32 {
	tb := &t.tables[k]
	h := hash64(pc)
	return uint32((h ^ h>>uint(9+k) ^ t.hist.Folded(tb.idxFold) ^ t.hist.Folded(tb.pathFold)) & tb.mask)
}

func (t *Tage) tag(k int, pc uint64) uint16 {
	tb := &t.tables[k]
	h := hash64(pc ^ 0x61C88647)
	mask := uint64(1)<<tb.tagBits - 1
	return uint16((h ^ t.hist.Folded(tb.tagFoldA) ^ t.hist.Folded(tb.tagFoldB)<<1) & mask)
}

// Predict returns the predicted direction for the conditional branch at pc
// using the current speculative history, plus the bookkeeping for Train.
func (t *Tage) Predict(pc uint64) (bool, TageMeta) {
	var m TageMeta
	m.Prov, m.AltProv = -1, -1
	m.BaseIdx = uint32(hash64(pc) & t.baseMask)
	for k := 0; k < NTables; k++ {
		m.Idx[k] = t.index(k, pc)
		m.Tag[k] = t.tag(k, pc)
		if t.tables[k].entries[m.Idx[k]].tag == m.Tag[k] {
			m.AltProv = m.Prov
			m.Prov = int8(k)
		}
	}
	basePred := t.base[m.BaseIdx] >= 2
	m.AltPred = basePred
	if m.AltProv >= 0 {
		m.AltPred = t.tables[m.AltProv].entries[m.Idx[m.AltProv]].ctr >= 4
	}
	if m.Prov >= 0 {
		m.Pred = t.tables[m.Prov].entries[m.Idx[m.Prov]].ctr >= 4
	} else {
		m.Pred = basePred
	}
	return m.Pred, m.Meta()
}

// Meta returns m itself; it exists so Predict reads naturally at call sites.
func (m TageMeta) Meta() TageMeta { return m }

// Train updates the predictor at commit time with the actual outcome.
func (t *Tage) Train(pc uint64, taken bool, m *TageMeta) {
	correct := m.Pred == taken

	if m.Prov >= 0 {
		e := &t.tables[m.Prov].entries[m.Idx[m.Prov]]
		if e.tag == m.Tag[m.Prov] {
			e.ctr = bump3(e.ctr, taken)
			if m.Pred != m.AltPred {
				if correct {
					if e.u < 3 {
						e.u++
					}
				} else if e.u > 0 {
					e.u--
				}
			}
		}
	} else {
		t.base[m.BaseIdx] = bump2(t.base[m.BaseIdx], taken)
	}

	if correct {
		return
	}
	// Allocate in a longer-history table with a not-useful entry.
	lo := int(m.Prov) + 1
	var cands [NTables]int
	nc := 0
	for k := lo; k < NTables; k++ {
		if t.tables[k].entries[m.Idx[k]].u == 0 {
			cands[nc] = k
			nc++
		}
	}
	if nc == 0 {
		for k := lo; k < NTables; k++ {
			e := &t.tables[k].entries[m.Idx[k]]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	// Prefer shorter histories 2:1 to spread allocations (classic TAGE).
	pick := cands[0]
	if nc > 1 && t.nextRand()&3 == 0 {
		pick = cands[int(t.nextRand())%nc]
	}
	e := &t.tables[pick].entries[m.Idx[pick]]
	*e = tageEntry{tag: m.Tag[pick], ctr: weakCtr(taken), u: 0}
}

func weakCtr(taken bool) uint8 {
	if taken {
		return 4
	}
	return 3
}

func bump3(c uint8, up bool) uint8 {
	if up {
		if c < 7 {
			return c + 1
		}
		return 7
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func bump2(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// StorageBits reports the predictor's storage cost.
func (t *Tage) StorageBits() int {
	bits := len(t.base) * 2
	for i := range t.tables {
		tb := &t.tables[i]
		bits += len(tb.entries) * (tb.tagBits + 3 + 2)
	}
	return bits
}

// Entries reports the total entry count (paper: ~15K).
func (t *Tage) Entries() int {
	n := len(t.base)
	for i := range t.tables {
		n += len(t.tables[i].entries)
	}
	return n
}

// HistLen returns table k's history length (for tests).
func (t *Tage) HistLen(k int) int { return t.tables[k].histLen }
