package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ghist"
)

// runPattern feeds TAGE a branch at pc whose outcome follows pattern
// cyclically, training after each prediction, and returns the accuracy over
// the last `tail` occurrences.
func runPattern(t *Tage, h *ghist.History, pc uint64, pattern []bool, n, tail int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		outcome := pattern[i%len(pattern)]
		pred, m := t.Predict(pc)
		if i >= n-tail && pred == outcome {
			correct++
		}
		t.Train(pc, outcome, &m)
		h.Push(outcome, pc)
	}
	return float64(correct) / float64(tail)
}

func TestTageAlwaysTaken(t *testing.T) {
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	if acc := runPattern(tg, &h, 100, []bool{true}, 200, 100); acc != 1.0 {
		t.Errorf("always-taken accuracy = %.3f, want 1.0", acc)
	}
}

func TestTageShortPeriodicPattern(t *testing.T) {
	// TTN repeating — bimodal alone cannot exceed 2/3, TAGE must nail it.
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	if acc := runPattern(tg, &h, 100, []bool{true, true, false}, 3000, 500); acc < 0.98 {
		t.Errorf("TTN pattern accuracy = %.3f, want ≥ 0.98", acc)
	}
}

func TestTageLongPeriodicPattern(t *testing.T) {
	// Period-17 pattern requires a history longer than bimodal's zero.
	pattern := make([]bool, 17)
	for i := range pattern {
		pattern[i] = i%3 == 0
	}
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	if acc := runPattern(tg, &h, 100, pattern, 6000, 1000); acc < 0.95 {
		t.Errorf("period-17 accuracy = %.3f, want ≥ 0.95", acc)
	}
}

func TestTageHistoryLengthsGeometric(t *testing.T) {
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	if got := tg.HistLen(0); got != 4 {
		t.Errorf("first history length = %d, want 4", got)
	}
	if got := tg.HistLen(NTables - 1); got != 640 {
		t.Errorf("last history length = %d, want 640", got)
	}
	for k := 1; k < NTables; k++ {
		if tg.HistLen(k) <= tg.HistLen(k-1) {
			t.Errorf("history lengths not increasing at %d: %d <= %d", k, tg.HistLen(k), tg.HistLen(k-1))
		}
	}
}

func TestTageEntryBudget(t *testing.T) {
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	// Paper: "15K-entry total". 8192 + 12*512 = 14336.
	if n := tg.Entries(); n < 14000 || n > 16000 {
		t.Errorf("TAGE entries = %d, want ≈ 15K", n)
	}
}

func TestTageCorrelatedBranches(t *testing.T) {
	// Branch B is always the opposite of the preceding branch A: global
	// history correlation that bimodal can't see when A is random.
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	rng := rand.New(rand.NewSource(3))
	correctB := 0
	const n, tail = 8000, 1000
	for i := 0; i < n; i++ {
		a := rng.Intn(2) == 0
		predA, ma := tg.Predict(10)
		_ = predA
		tg.Train(10, a, &ma)
		h.Push(a, 10)

		b := !a
		predB, mb := tg.Predict(20)
		if i >= n-tail && predB == b {
			correctB++
		}
		tg.Train(20, b, &mb)
		h.Push(b, 20)
	}
	if acc := float64(correctB) / tail; acc < 0.95 {
		t.Errorf("correlated branch accuracy = %.3f, want ≥ 0.95", acc)
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(12)
	if _, hit := b.Lookup(0x400); hit {
		t.Error("empty BTB hit")
	}
	b.Insert(0x400, 77)
	if tgt, hit := b.Lookup(0x400); !hit || tgt != 77 {
		t.Errorf("Lookup = (%d,%v), want (77,true)", tgt, hit)
	}
	b.Insert(0x400, 99) // update in place
	if tgt, _ := b.Lookup(0x400); tgt != 99 {
		t.Errorf("updated target = %d, want 99", tgt)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(1) // 1 set, 2 ways
	b.Insert(1, 10)
	b.Insert(2, 20)
	b.Lookup(1)     // make pc=1 MRU
	b.Insert(3, 30) // must evict pc=2
	if _, hit := b.Lookup(1); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := b.Lookup(2); hit {
		t.Error("LRU entry survived")
	}
	if tgt, hit := b.Lookup(3); !hit || tgt != 30 {
		t.Error("new entry not inserted")
	}
}

func TestBTBEntries(t *testing.T) {
	if got := NewBTB(12).Entries(); got != 4096 {
		t.Errorf("Entries = %d, want 4096", got)
	}
}

func TestRASPushPop(t *testing.T) {
	var r RAS
	r.Push(100)
	r.Push(200)
	if got := r.Pop(); got != 200 {
		t.Errorf("Pop = %d, want 200", got)
	}
	if got := r.Pop(); got != 100 {
		t.Errorf("Pop = %d, want 100", got)
	}
}

func TestRASRestore(t *testing.T) {
	var r RAS
	r.Push(100)
	chk := r.Top()
	r.Push(200)
	r.Pop()
	r.Pop() // wrong-path pops
	r.Restore(chk)
	if got := r.Pop(); got != 100 {
		t.Errorf("after restore Pop = %d, want 100", got)
	}
}

func TestRASDepthWraps(t *testing.T) {
	var r RAS
	for i := uint32(0); i < 40; i++ {
		r.Push(i)
	}
	// The last 32 pushes survive; deeper frames were overwritten.
	for i := uint32(39); i >= 8; i-- {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
}

// Property: TAGE Predict/Train never panic and stay in range under random
// interleavings of branches, outcomes, and history pushes.
func TestTageRobustProperty(t *testing.T) {
	var h ghist.History
	tg := NewTage(DefaultTageConfig(), &h)
	f := func(pc uint64, outcome, push bool) bool {
		_, m := tg.Predict(pc)
		tg.Train(pc, outcome, &m)
		if push {
			h.Push(outcome, pc)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
