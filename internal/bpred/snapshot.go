package bpred

// Snapshot/Restore capture the branch-prediction substrate for the
// pipeline's warm-state snapshots (DESIGN.md §9). Snapshots are deep copies
// of all mutable state; Restore reinstates them in place on an instance
// built with the same configuration, so shared wiring (the global history
// object TAGE reads) is preserved.

// TageState is an opaque snapshot of a Tage predictor.
type TageState struct {
	base   []uint8
	tables [NTables][]tageEntry
	rng    uint32
}

// Snapshot captures the predictor's tables and allocation RNG. Fold values
// live in the shared ghist.History and are snapshotted there.
func (t *Tage) Snapshot() *TageState {
	st := &TageState{base: append([]uint8(nil), t.base...), rng: t.rng}
	for i := range t.tables {
		st.tables[i] = append([]tageEntry(nil), t.tables[i].entries...)
	}
	return st
}

// Restore reinstates a snapshot taken from an identically configured Tage.
func (t *Tage) Restore(st *TageState) {
	copy(t.base, st.base)
	for i := range t.tables {
		copy(t.tables[i].entries, st.tables[i])
	}
	t.rng = st.rng
}

// BTBState is an opaque snapshot of a BTB.
type BTBState struct {
	sets []btbSet
}

// Snapshot captures the BTB contents.
func (b *BTB) Snapshot() *BTBState {
	return &BTBState{sets: append([]btbSet(nil), b.sets...)}
}

// Restore reinstates a snapshot taken from an identically sized BTB.
func (b *BTB) Restore(st *BTBState) {
	copy(b.sets, st.sets)
}

// RASState is a snapshot of the return address stack.
type RASState struct {
	stack [32]uint32
	top   int
}

// Snapshot captures the stack and its position.
func (r *RAS) Snapshot() RASState {
	return RASState{stack: r.stack, top: r.top}
}

// RestoreState reinstates a snapshot. (Restore, taking a stack position, is
// the pipeline's per-squash rollback.)
func (r *RAS) RestoreState(st RASState) {
	r.stack = st.stack
	r.top = st.top
}
