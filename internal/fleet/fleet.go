package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/service"
	"repro/internal/service/client"
)

// Options configures a fleet Runner. Only Shards is required.
type Options struct {
	// Shards is the vpserved base URLs forming the fleet, e.g.
	// {"http://127.0.0.1:8437", "http://127.0.0.1:8438"}. Order is
	// irrelevant to routing (the ring hashes the URLs themselves) but fixed
	// at construction: a fleet does not resize in place.
	Shards []string

	// ProbeInterval is how often the background prober refreshes every
	// shard's health (default 2s; negative disables background probing —
	// dispatch-time classification still marks shards down/draining).
	ProbeInterval time.Duration

	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration

	// MaxFrame caps the specs per batch-sync frame (default 256, well under
	// the server's default 4096 admission limit). Oversized frames are also
	// split adaptively when a shard answers 413.
	MaxFrame int
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = 256
	}
	return o
}

// Shard health states. A shard starts Up (optimistically — the first failed
// dispatch or probe demotes it), turns Draining when it answers the 503
// draining health shape, and Down when it stops answering at all. Draining
// and Down shards receive no new work; the prober promotes them back to Up
// when they recover.
const (
	StateUp       = "up"
	StateDraining = "draining"
	StateDown     = "down"
)

// shard is one vpserved backend: its client plus the prober/dispatcher's
// shared view of its health.
type shard struct {
	url   string
	c     *client.Client
	state atomic.Int32 // 0 up, 1 draining, 2 down

	mu      sync.Mutex
	shardID string // from healthz/statsz, for ShardStatus reporting
	lastErr error
}

const (
	stUp int32 = iota
	stDraining
	stDown
)

func (s *shard) setState(st int32, err error) {
	s.state.Store(st)
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

func (s *shard) healthy() bool { return s.state.Load() == stUp }

// ShardStatus is one shard's externally visible health, for CLIs and tests.
type ShardStatus struct {
	URL     string
	ShardID string
	State   string
	LastErr string
}

// Runner is the fleet front: it implements the same method set as the
// public repro.Runner over N vpserved shards. Safe for concurrent use.
type Runner struct {
	opts   Options
	shards []*shard
	ring   *ring

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// progs remembers every registered program's encoded bytes so any shard
	// that has forgotten one (restart, late join after mark-down) is cured
	// by re-upload instead of surfacing unknown_program.
	mu    sync.Mutex
	progs map[string][]byte
}

// New builds the fleet front and starts its background prober. It does not
// contact the shards: a fleet over daemons that are still starting becomes
// healthy as soon as they answer.
func New(o Options) (*Runner, error) {
	o = o.withDefaults()
	if len(o.Shards) == 0 {
		return nil, errors.New("fleet: no shards configured")
	}
	seen := make(map[string]bool, len(o.Shards))
	f := &Runner{
		opts:  o,
		ring:  newRing(o.Shards),
		stop:  make(chan struct{}),
		progs: make(map[string][]byte),
	}
	for _, u := range o.Shards {
		if u == "" || seen[u] {
			return nil, fmt.Errorf("fleet: empty or duplicate shard URL %q", u)
		}
		seen[u] = true
		f.shards = append(f.shards, &shard{url: u, c: client.New(u)})
	}
	if o.ProbeInterval > 0 {
		f.wg.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Shards reports every shard's current health, in configuration order.
func (f *Runner) Shards() []ShardStatus {
	out := make([]ShardStatus, len(f.shards))
	for i, s := range f.shards {
		st := ShardStatus{URL: s.url}
		switch s.state.Load() {
		case stDraining:
			st.State = StateDraining
		case stDown:
			st.State = StateDown
		default:
			st.State = StateUp
		}
		s.mu.Lock()
		st.ShardID = s.shardID
		if s.lastErr != nil {
			st.LastErr = s.lastErr.Error()
		}
		s.mu.Unlock()
		out[i] = st
	}
	return out
}

// probeLoop refreshes every shard's health on a timer until Close.
func (f *Runner) probeLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.ProbeOnce(context.Background())
		}
	}
}

// ProbeOnce probes every shard's /v1/healthz once, concurrently, and
// updates the routing states. The background prober calls it on a timer;
// tests and CLIs may call it directly for a deterministic refresh.
func (f *Runner) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range f.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeTimeout)
			defer cancel()
			h, err := s.c.Health(pctx)
			switch {
			case err != nil:
				s.setState(stDown, err)
			case h.Draining:
				s.setState(stDraining, nil)
			default:
				s.setState(stUp, nil)
			}
			if h.ShardID != "" {
				s.mu.Lock()
				s.shardID = h.ShardID
				s.mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
}

// target resolves the shard that should serve key right now: the first
// healthy candidate in ring order. When no shard is healthy it falls back
// to the ring owner anyway — a stale mark-down must not wedge the fleet,
// and a genuinely dead fleet then surfaces the real transport error.
func (f *Runner) target(key string) *shard {
	cands := f.ring.candidates(key)
	for _, i := range cands {
		if f.shards[i].healthy() {
			return f.shards[i]
		}
	}
	return f.shards[cands[0]]
}

// classify sorts a dispatch error into the routing taxonomy:
// rerouteable (the shard is unfit — transport failure or draining; mark it
// and try another), curable (unknown_program — re-upload and retry the same
// shard), or neither (a real per-spec failure or a dead context: propagate).
func classify(err error) (reroute, curable bool) {
	if err == nil {
		return false, false
	}
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		// No typed envelope: the request never got a service answer
		// (connection refused, reset, timeout). Context death is the
		// caller's, not the shard's.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false, false
		}
		return true, false
	}
	switch apiErr.Code {
	case service.CodeDraining:
		return true, false
	case service.CodeUnknownProgram:
		return false, true
	}
	return false, false
}

// markUnfit demotes a shard according to the rerouteable error it produced.
func (f *Runner) markUnfit(s *shard, err error) {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) && apiErr.Code == service.CodeDraining {
		s.setState(stDraining, err)
		return
	}
	s.setState(stDown, err)
}

// reupload pushes every remembered program to one shard, curing
// unknown_program after a shard restart. Reports whether anything was
// uploaded (i.e. whether a retry could help).
func (f *Runner) reupload(ctx context.Context, s *shard) bool {
	f.mu.Lock()
	encs := make([][]byte, 0, len(f.progs))
	for _, enc := range f.progs {
		encs = append(encs, enc)
	}
	f.mu.Unlock()
	ok := false
	for _, enc := range encs {
		if _, err := s.c.UploadProgram(ctx, enc); err == nil {
			ok = true
		}
	}
	return ok
}

// maxAttempts bounds re-routing: every shard may be tried roughly twice
// (once optimistically, once after the prober refreshed states) before a
// dispatch gives up with the last error.
func (f *Runner) maxAttempts() int { return 2*len(f.shards) + 1 }

// Simulate routes one spec to its owning shard. Shard failure or drain
// re-routes to the next ring candidate; unknown_program re-uploads and
// retries in place. The spec is canonicalized and validated locally first,
// exactly like the other runners.
func (f *Runner) Simulate(ctx context.Context, spec harness.Spec) (harness.Record, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return harness.Record{}, err
	}
	req := service.RequestFor(spec)
	key := spec.Identity()
	var lastErr error
	cured := false
	for attempt := 0; attempt < f.maxAttempts(); attempt++ {
		s := f.target(key)
		rec, err := s.c.Simulate(ctx, req)
		if err == nil {
			return rec, nil
		}
		lastErr = err
		reroute, curable := classify(err)
		switch {
		case curable && !cured && f.reupload(ctx, s):
			cured = true // retry the same shard once, now that it knows the program
		case reroute:
			f.markUnfit(s, err)
			cured = false
		default:
			return harness.Record{}, err
		}
	}
	return harness.Record{}, fmt.Errorf("fleet: no shard could serve %s: %w", key, lastErr)
}

// outcome is one spec's gathered result.
type outcome struct {
	rec harness.Record
	err error
}

// Batch scatters the specs across their owning shards as batch-sync frames
// and gathers the records back into deterministic spec order: fn is invoked
// exactly once per spec, in spec order, never concurrently, as soon as each
// record's turn is reachable — the same streaming contract as LocalRunner.
// A shard lost mid-batch has its frames re-scattered over the surviving
// shards; records stay byte-identical because simulation is a pure function
// of spec and windows, wherever it runs.
func (f *Runner) Batch(ctx context.Context, specs []harness.Spec, fn func(harness.Record) error) error {
	if len(specs) == 0 {
		return nil
	}
	canon := make([]harness.Spec, len(specs))
	for i, sp := range specs {
		canon[i] = sp.Canonical()
		if err := canon[i].Validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One buffered slot per spec: every dispatch path delivers each index
	// exactly once, so senders never block and the in-order loop below
	// drains at its own pace.
	slots := make([]chan outcome, len(canon))
	for i := range slots {
		slots[i] = make(chan outcome, 1)
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel() // runs before wg.Wait: dispatchers die before we wait

	f.scatter(ctx, &wg, canon, indexRange(len(canon)), slots, f.maxAttempts())

	for i := range canon {
		select {
		case out := <-slots[i]:
			if out.err != nil {
				return fmt.Errorf("spec %d: %w", i, out.err)
			}
			if err := fn(out.rec); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// scatter groups the given spec indices by owning shard and dispatches one
// goroutine per frame. Grouping consults live health, so a re-scatter after
// a mark-down lands on the survivors.
func (f *Runner) scatter(ctx context.Context, wg *sync.WaitGroup, canon []harness.Spec, idxs []int, slots []chan outcome, attempts int) {
	groups := make(map[*shard][]int)
	for _, i := range idxs {
		s := f.target(canon[i].Identity())
		groups[s] = append(groups[s], i)
	}
	for s, group := range groups {
		for len(group) > 0 {
			n := len(group)
			if n > f.opts.MaxFrame {
				n = f.opts.MaxFrame
			}
			frame := group[:n]
			group = group[n:]
			wg.Add(1)
			go func(s *shard, frame []int) {
				defer wg.Done()
				f.runFrame(ctx, wg, s, canon, frame, slots, attempts, false)
			}(s, frame)
		}
	}
}

// deliver resolves a set of spec indices with one shared outcome.
func deliver(slots []chan outcome, idxs []int, out outcome) {
	for _, i := range idxs {
		slots[i] <- out
	}
}

// runFrame sends one batch-sync frame to one shard and routes the result:
// success delivers every record; a rerouteable failure marks the shard and
// re-scatters the frame over the survivors; unknown_program re-uploads and
// retries in place; a per-spec failure bisects the frame so the failure is
// attributed to the exact spec (and the frame's healthy specs still
// complete). Every index is delivered exactly once on every path.
func (f *Runner) runFrame(ctx context.Context, wg *sync.WaitGroup, s *shard, canon []harness.Spec, idxs []int, slots []chan outcome, attempts int, cured bool) {
	if ctx.Err() != nil {
		deliver(slots, idxs, outcome{err: ctx.Err()})
		return
	}
	reqs := make([]service.SpecRequest, len(idxs))
	for k, i := range idxs {
		reqs[k] = service.RequestFor(canon[i])
	}
	recs, err := s.c.SimulateBatchSync(ctx, reqs)
	if err == nil {
		for k, i := range idxs {
			slots[i] <- outcome{rec: recs[k]}
		}
		return
	}
	if attempts <= 0 {
		deliver(slots, idxs, outcome{err: fmt.Errorf("fleet: no shard could serve the frame: %w", err)})
		return
	}
	reroute, curable := classify(err)
	switch {
	case curable && !cured && f.reupload(ctx, s):
		f.runFrame(ctx, wg, s, canon, idxs, slots, attempts-1, true)
	case reroute:
		f.markUnfit(s, err)
		f.scatter(ctx, wg, canon, idxs, slots, attempts-1)
	case len(idxs) > 1:
		// Either the shard's admission limit is smaller than our frame
		// (too_large) or the all-or-nothing frame failed on some spec:
		// bisect, so the failure is attributed to the exact spec and the
		// innocent specs still complete. Halving terminates on its own — no
		// attempt spent.
		mid := len(idxs) / 2
		f.runFrame(ctx, wg, s, canon, idxs[:mid], slots, attempts, cured)
		f.runFrame(ctx, wg, s, canon, idxs[mid:], slots, attempts, cured)
	default:
		deliver(slots, idxs, outcome{err: err})
	}
}

// RegisterProgram validates and encodes p, uploads it to every shard, and
// remembers the bytes so shards that restart (or were down during
// registration) are cured on demand. The returned workload id is content-
// addressed, so every shard answers the same id.
func (f *Runner) RegisterProgram(ctx context.Context, p *isa.Program) (string, error) {
	if p == nil {
		return "", errors.New("repro: RegisterProgram: nil program")
	}
	if err := isa.CheckEncodable(p); err != nil {
		return "", err
	}
	if err := p.Validate(); err != nil {
		return "", fmt.Errorf("repro: invalid program: %w", err)
	}
	enc := p.Encode()
	id := ""
	var lastErr error
	for _, s := range f.shards {
		info, err := s.c.UploadProgram(ctx, enc)
		if err != nil {
			if reroute, _ := classify(err); reroute {
				f.markUnfit(s, err)
				lastErr = err
				continue
			}
			return "", err
		}
		if id == "" {
			id = info.ID
		} else if id != info.ID {
			return "", fmt.Errorf("fleet: shards disagree on program identity: %s vs %s", id, info.ID)
		}
	}
	if id == "" {
		return "", fmt.Errorf("fleet: no shard accepted the program: %w", lastErr)
	}
	if harness.IsProgramRef(id) {
		f.mu.Lock()
		f.progs[id] = enc
		f.mu.Unlock()
	}
	return id, nil
}

// ExperimentOptions is the subset of the facade's experiment options a
// fleet honours: format plus the window assertion. Worker counts belong to
// each shard's own pool.
type ExperimentOptions struct {
	Warmup  uint64
	Measure uint64
	Format  string
}

// Experiment regenerates one experiment by id. Text format routes the whole
// job to one shard (consistent-hashed on the experiment id — with a shared
// -store-dir repeated renders stay warm on that shard) and writes the
// server-rendered artifact. json/csv resolve the experiment's declared spec
// set locally and scatter it through Batch, so the emitted bytes are
// identical to a LocalRunner over the same specs. Nonzero o.Warmup/o.Measure
// must match the shards' windows, same as a RemoteRunner.
func (f *Runner) Experiment(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	switch o.Format {
	case "", "text", "json", "csv":
	default:
		return fmt.Errorf("harness: unknown format %q (have text, json, csv)", o.Format)
	}
	if o.Warmup != 0 || o.Measure != 0 {
		stats, err := f.stats(ctx)
		if err != nil {
			return err
		}
		lim := stats.Limits
		if (o.Warmup != 0 && o.Warmup != lim.Warmup) || (o.Measure != 0 && o.Measure != lim.Measure) {
			return fmt.Errorf("repro: server simulates %d+%d µops, not the requested %d+%d: "+
				"window sizing is per-daemon (vpserved -warmup/-measure), not per call",
				lim.Warmup, lim.Measure, o.Warmup, o.Measure)
		}
	}

	if o.Format == "json" || o.Format == "csv" {
		e, ok := harness.ExperimentByID(id)
		if !ok {
			return fmt.Errorf("fleet: unknown experiment %q", id)
		}
		if e.Specs == nil {
			return fmt.Errorf("%s: no structured results (text-only experiment)", id)
		}
		recs := make([]harness.Record, 0, 64)
		if err := f.Batch(ctx, e.Specs(), func(rec harness.Record) error {
			recs = append(recs, rec)
			return nil
		}); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if o.Format == "json" {
			return harness.WriteJSON(w, recs)
		}
		return harness.WriteCSV(w, recs)
	}

	// Text: one shard renders the whole artifact server-side.
	key := "exp:" + id
	var lastErr error
	for attempt := 0; attempt < f.maxAttempts(); attempt++ {
		s := f.target(key)
		artifact, err := f.textExperiment(ctx, s, id)
		if err == nil {
			_, werr := io.WriteString(w, artifact)
			return werr
		}
		lastErr = err
		if reroute, _ := classify(err); reroute {
			f.markUnfit(s, err)
			continue
		}
		return fmt.Errorf("%s: %w", id, err)
	}
	return fmt.Errorf("%s: no shard could serve the experiment: %w", id, lastErr)
}

// textExperiment runs one text-format experiment job on one shard and
// returns the rendered artifact.
func (f *Runner) textExperiment(ctx context.Context, s *shard, id string) (string, error) {
	st, err := s.c.SubmitExperiment(ctx, id)
	if err != nil {
		return "", err
	}
	finished := false
	defer func() {
		if !finished {
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.c.Cancel(cctx, st.ID)
		}
	}()
	final, err := s.c.Wait(ctx, st.ID)
	if err != nil {
		return "", err
	}
	if final.State != service.StateDone {
		return "", fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	finished = true
	return final.Artifact, nil
}

// stats fetches /v1/statsz from any healthy shard.
func (f *Runner) stats(ctx context.Context) (service.ServerStats, error) {
	var lastErr error
	for attempt := 0; attempt < f.maxAttempts(); attempt++ {
		s := f.target("fleet:stats")
		st, err := s.c.Stats(ctx)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if reroute, _ := classify(err); !reroute {
			return service.ServerStats{}, err
		}
		f.markUnfit(s, err)
	}
	return service.ServerStats{}, fmt.Errorf("fleet: no shard answered statsz: %w", lastErr)
}

// Experiments fetches the experiment index from any healthy shard.
func (f *Runner) Experiments(ctx context.Context) ([]service.ExperimentInfo, error) {
	var lastErr error
	for attempt := 0; attempt < f.maxAttempts(); attempt++ {
		s := f.target("fleet:experiments")
		out, err := s.c.Experiments(ctx)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if reroute, _ := classify(err); !reroute {
			return nil, err
		}
		f.markUnfit(s, err)
	}
	return nil, fmt.Errorf("fleet: no shard answered the experiment index: %w", lastErr)
}

// Close stops the prober and releases every shard client's pooled
// connections. Safe to call more than once.
func (f *Runner) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	for _, s := range f.shards {
		s.c.Close()
	}
	return nil
}
