package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/service/client"
)

const (
	testWarmup  = 1_000
	testMeasure = 4_000
)

// startShards brings up n real service instances and a fleet front over
// them, returning the front plus the underlying servers (for Drain) and
// their test listeners (for kills).
func startShards(t *testing.T, n int) (*Runner, []*service.Server, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	srvs := make([]*service.Server, n)
	tss := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		srv, err := service.New(service.Options{Warmup: testWarmup, Measure: testMeasure})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls[i], srvs[i], tss[i] = ts.URL, srv, ts
	}
	f, err := New(Options{Shards: urls, ProbeInterval: -1}) // probes on demand only
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, srvs, tss
}

func refRecords(t *testing.T, specs []harness.Spec) []harness.Record {
	t.Helper()
	se := harness.NewSession(testWarmup, testMeasure)
	recs, err := se.Records(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestFleetSimulateAndBatch: routed results are byte-identical to a local
// session, Batch delivers in spec order, and the work really spreads — with
// the fig4 spec set over two shards, both end up with simulations.
func TestFleetSimulateAndBatch(t *testing.T) {
	f, _, tss := startShards(t, 2)
	ctx := context.Background()
	specs := harness.Fig4Specs()[:24]
	want := refRecords(t, specs)

	rec, err := f.Simulate(ctx, specs[1])
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, rec), mustJSON(t, want[1]); !bytes.Equal(a, b) {
		t.Errorf("Simulate record differs:\n got %s\nwant %s", a, b)
	}

	var got []harness.Record
	if err := f.Batch(ctx, specs, func(r harness.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(a, b) {
		t.Errorf("Batch records differ from local session:\n got %s\nwant %s", a, b)
	}

	// Both shards simulated something: the scatter really sharded.
	for i, ts := range tss {
		st, err := client.New(ts.URL).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.MemoMisses == 0 {
			t.Errorf("shard %d ran no simulations: scatter did not shard", i)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetFailoverDeadShard: a fleet with one dead member still answers
// everything (work re-routes to the survivor) and the dead shard is marked
// down for the status view.
func TestFleetFailoverDeadShard(t *testing.T) {
	f, _, tss := startShards(t, 2)
	ctx := context.Background()
	specs := harness.Fig4Specs()[:12]
	want := refRecords(t, specs)

	tss[0].Close() // kill one shard before any traffic

	var got []harness.Record
	if err := f.Batch(ctx, specs, func(r harness.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(a, b) {
		t.Errorf("records differ after failover:\n got %s\nwant %s", a, b)
	}

	f.ProbeOnce(ctx)
	states := f.Shards()
	if states[0].State != StateDown {
		t.Errorf("dead shard state = %s, want %s (%+v)", states[0].State, StateDown, states)
	}
	if states[1].State != StateUp {
		t.Errorf("surviving shard state = %s, want %s", states[1].State, StateUp)
	}
}

// TestFleetDrainAwareRouting: once a shard drains, probing marks it and new
// work lands only on the survivors — while results stay identical.
func TestFleetDrainAwareRouting(t *testing.T) {
	f, srvs, _ := startShards(t, 2)
	ctx := context.Background()
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srvs[0].Drain(dctx); err != nil {
		t.Fatal(err)
	}
	f.ProbeOnce(ctx)
	if st := f.Shards()[0].State; st != StateDraining {
		t.Fatalf("drained shard state = %s, want %s", st, StateDraining)
	}

	specs := harness.Fig4Specs()[:8]
	want := refRecords(t, specs)
	var got []harness.Record
	if err := f.Batch(ctx, specs, func(r harness.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(a, b) {
		t.Errorf("records differ through drain:\n got %s\nwant %s", a, b)
	}
}

// TestFleetPerSpecFailureAttribution: a bad spec inside a frame fails the
// batch with that spec's index, not a whole-frame mystery — the bisect path.
func TestFleetPerSpecFailureAttribution(t *testing.T) {
	f, _, _ := startShards(t, 2)
	ctx := context.Background()
	// Index 2 names a program no shard has: a real per-spec failure that
	// re-routing must not mask.
	specs := []harness.Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "prog:" + string(bytes.Repeat([]byte("ab"), 32)), Predictor: "lvp"},
		{Kernel: "art", Predictor: "none"},
	}
	err := f.Batch(ctx, specs, func(harness.Record) error { return nil })
	if err == nil {
		t.Fatal("batch with an unknown program succeeded")
	}
	if want := "spec 2:"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not attribute the failure to spec 2", err)
	}
}
