// Package fleet is the sharded serving tier (DESIGN.md §12): a client-side
// front that consistent-hashes canonical spec identities across N vpserved
// shards, each with its own worker pool and memo. Routing keeps every
// distinct spec on exactly one warm shard (memo/store/snapshot locality),
// scatter/gather batching amortizes the HTTP round trip over whole
// sub-batches, and health probing (/v1/healthz + /v1/statsz) marks shards
// down or draining so work re-routes without changing results. Reachable
// from outside the module via repro.OpenShardedRunner.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the virtual-node count per shard: enough points that
// key ownership spreads within a few percent of uniform for small N, small
// enough that ring construction stays trivial.
const vnodesPerShard = 128

// ring is a consistent-hash ring over shard indices. Points are virtual
// nodes hashed from the shard's stable name (its base URL), NOT its slice
// index, so adding or losing one shard moves only the keys that shard
// owned — the rest of the fleet keeps its warm memo working set.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring from the shards' stable names, in index order.
func newRing(names []string) *ring {
	r := &ring{shards: len(names)}
	r.points = make([]ringPoint, 0, len(names)*vnodesPerShard)
	for i, name := range names {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", name, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break on shard index so
		// the ring order is fully deterministic.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// candidates returns every shard index in ring order starting at the point
// owning key: candidates(key)[0] is the owner, and the rest is the
// deterministic failover order a router walks when the owner is down or
// draining. The slice always holds every shard exactly once.
func (r *ring) candidates(key string) []int {
	out := make([]int, 0, r.shards)
	if r.shards == 0 {
		return out
	}
	seen := make([]bool, r.shards)
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// owner returns the shard index owning key.
func (r *ring) owner(key string) int { return r.candidates(key)[0] }
