package fleet

import (
	"fmt"
	"testing"

	"repro/internal/harness"
)

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return out
}

// TestRingCandidates: every key yields all shards exactly once, in a
// deterministic order, with the owner first.
func TestRingCandidates(t *testing.T) {
	r := newRing(shardNames(3))
	for _, sp := range harness.Fig4Specs() {
		key := sp.Identity()
		c1 := r.candidates(key)
		c2 := r.candidates(key)
		if len(c1) != 3 {
			t.Fatalf("candidates(%q) = %v, want all 3 shards", key, c1)
		}
		seen := map[int]bool{}
		for _, s := range c1 {
			if s < 0 || s > 2 || seen[s] {
				t.Fatalf("candidates(%q) = %v: out of range or repeated", key, c1)
			}
			seen[s] = true
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("candidates(%q) not deterministic: %v vs %v", key, c1, c2)
			}
		}
		if r.owner(key) != c1[0] {
			t.Fatalf("owner(%q) = %d, want candidates[0] = %d", key, r.owner(key), c1[0])
		}
	}
}

// TestRingBalance: ownership over the fig4 spec identities spreads across
// every shard — no shard is starved or owns everything.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		r := newRing(shardNames(n))
		counts := make([]int, n)
		specs := harness.Fig4Specs()
		for _, sp := range specs {
			counts[r.owner(sp.Identity())]++
		}
		for i, c := range counts {
			if c == 0 {
				t.Errorf("%d shards: shard %d owns no specs (%v over %d specs)", n, i, counts, len(specs))
			}
		}
	}
}

// TestRingStability: dropping one shard moves only the keys that shard
// owned — every other key keeps its owner, so the surviving shards keep
// their warm working sets.
func TestRingStability(t *testing.T) {
	names := shardNames(3)
	full := newRing(names)
	reduced := newRing(names[:2]) // shard 2 removed
	moved, kept := 0, 0
	for _, sp := range harness.Fig4Specs() {
		key := sp.Identity()
		was := full.owner(key)
		now := reduced.owner(key)
		if was == 2 {
			moved++
			continue
		}
		if was != now {
			t.Errorf("key %q moved %d -> %d though shard 2 was the one removed", key, was, now)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Errorf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}
