// Package wirejson is the hand-rolled JSON fast path for the service wire
// structs (DESIGN.md §12.3). encoding/json's reflection costs ~5 µs per
// 20-field record on each side of the wire, which dominates a warm
// batch-sync frame; the appenders and the scanner here cut that to the cost
// of a few strconv calls. The contract is strict byte-compatibility:
//
//   - AppendFloat reproduces encoding/json's float formatting exactly
//     (including the e-07 → e-7 rewrite), so emitted records stay
//     byte-identical to the reflection encoder's output;
//   - AppendString emits plain ASCII strings verbatim and defers anything
//     needing escapes to encoding/json itself;
//   - Scanner parses only the grammar the appenders emit (compact or
//     whitespace-padded objects, escape-free strings); callers fall back to
//     encoding/json when a Parse* method reports failure, so unusual input
//     costs one extra parse instead of an error.
package wirejson

import (
	"encoding/json"
	"math"
	"strconv"
)

// AppendFloat appends f exactly as encoding/json encodes a float64. The
// second result is false for NaN and infinities, which JSON cannot carry —
// the caller should defer to encoding/json for its standard error.
func AppendFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json rewrites a two-digit zero-padded exponent: e-07 → e-7.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// plainString reports whether s needs no JSON escaping under encoding/json's
// default (HTML-escaping) encoder: printable ASCII without quotes,
// backslashes, or the HTML-significant characters.
func plainString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// AppendString appends s as a JSON string, matching encoding/json's output
// byte for byte (escapes included, via encoding/json itself on the rare
// non-plain string).
func AppendString(b []byte, s string) []byte {
	if plainString(s) {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	esc, err := json.Marshal(s)
	if err != nil { // a string cannot fail to marshal; defensive only
		return append(b, '"', '"')
	}
	return append(b, esc...)
}

// Scanner is a non-allocating cursor over one JSON value. Every Parse*
// method consumes leading whitespace, then either consumes its token and
// returns true, or returns false leaving the input conceptually invalid —
// the caller abandons the fast path and re-parses with encoding/json. A
// false result therefore never needs to carry a reason.
type Scanner struct {
	buf []byte
	i   int
}

// NewScanner returns a scanner over b.
func NewScanner(b []byte) *Scanner { return &Scanner{buf: b} }

func (s *Scanner) ws() {
	for s.i < len(s.buf) {
		switch s.buf[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// Byte consumes the single byte c (a structural token: '{', '}', ':', ',').
func (s *Scanner) Byte(c byte) bool {
	s.ws()
	if s.i < len(s.buf) && s.buf[s.i] == c {
		s.i++
		return true
	}
	return false
}

// String parses an escape-free JSON string. Strings with escapes (or any
// non-string token) report false; encoding/json handles them on fallback.
func (s *Scanner) String() (string, bool) {
	s.ws()
	if s.i >= len(s.buf) || s.buf[s.i] != '"' {
		return "", false
	}
	j := s.i + 1
	for j < len(s.buf) {
		c := s.buf[j]
		if c == '"' {
			out := string(s.buf[s.i+1 : j])
			s.i = j + 1
			return out, true
		}
		if c == '\\' || c < 0x20 {
			return "", false
		}
		j++
	}
	return "", false
}

// numTok consumes one JSON number token and returns its bytes.
func (s *Scanner) numTok() ([]byte, bool) {
	s.ws()
	j := s.i
	for j < len(s.buf) {
		switch c := s.buf[j]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			j++
		default:
			goto done
		}
	}
done:
	if j == s.i {
		return nil, false
	}
	tok := s.buf[s.i:j]
	s.i = j
	return tok, true
}

// Float parses a JSON number as float64.
func (s *Scanner) Float() (float64, bool) {
	tok, ok := s.numTok()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}

// Int parses a JSON number as int.
func (s *Scanner) Int() (int, bool) {
	tok, ok := s.numTok()
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(string(tok))
	return n, err == nil
}

// Int64 parses a JSON number as int64.
func (s *Scanner) Int64() (int64, bool) {
	tok, ok := s.numTok()
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(string(tok), 10, 64)
	return n, err == nil
}

// Uint64 parses a JSON number as uint64.
func (s *Scanner) Uint64() (uint64, bool) {
	tok, ok := s.numTok()
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(string(tok), 10, 64)
	return n, err == nil
}

// Bool parses true or false.
func (s *Scanner) Bool() (bool, bool) {
	s.ws()
	rest := s.buf[s.i:]
	switch {
	case len(rest) >= 4 && string(rest[:4]) == "true":
		s.i += 4
		return true, true
	case len(rest) >= 5 && string(rest[:5]) == "false":
		s.i += 5
		return false, true
	}
	return false, false
}

// End reports whether only trailing whitespace remains — encoding/json's
// whole-input rule, so the fast path accepts exactly one value too.
func (s *Scanner) End() bool {
	s.ws()
	return s.i == len(s.buf)
}
