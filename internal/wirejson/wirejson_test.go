package wirejson

import (
	"encoding/json"
	"math"
	"testing"
)

// TestAppendFloatMatchesEncodingJSON pins the byte-compatibility contract:
// for every representable value class — integral, fractional, subnormal-ish
// exponents on both sides of the e-07 rewrite, huge magnitudes — AppendFloat
// must produce exactly what encoding/json produces, or the wire structs'
// hand-rolled marshalers would silently break byte-identical differential
// output.
func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	values := []float64{
		0, 1, -1, 0.5, -0.25, 1.0 / 3.0, 2.0 / 3.0,
		1e-5, 1e-6, 9.999e-7, 1e-7, 1e-9, -1e-7,
		1e20, 1e21, 1.5e21, -2.5e22, 1e300, 5e-324,
		3.141592653589793, 123456.789, 0.6931471805599453,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	// A deterministic xorshift sweep adds coverage without flaky randomness.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 500; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f := math.Float64frombits(x)
		if !math.IsNaN(f) && !math.IsInf(f, 0) {
			values = append(values, f)
		}
	}
	for _, f := range values {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got, ok := AppendFloat(nil, f)
		if !ok {
			t.Errorf("AppendFloat(%v) refused a finite value", f)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, encoding/json = %s", f, got, want)
		}
	}
	if _, ok := AppendFloat(nil, math.NaN()); ok {
		t.Error("AppendFloat(NaN) must report false")
	}
	if _, ok := AppendFloat(nil, math.Inf(1)); ok {
		t.Error("AppendFloat(+Inf) must report false")
	}
}

// TestAppendStringMatchesEncodingJSON covers the plain fast path and the
// escape fallback (quotes, backslashes, control bytes, HTML characters,
// UTF-8) against encoding/json's default encoder.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	for _, s := range []string{
		"", "art", "prog:4b3f", "lvp,stride", "a b_c-d.e/f",
		`quo"te`, `back\slash`, "tab\there", "html <b>&</b>", "µops", "\x01",
	} {
		want, _ := json.Marshal(s)
		if got := AppendString(nil, s); string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, encoding/json = %s", s, got, want)
		}
	}
}

// TestScannerRoundTrip drives the scanner over a compact object and a
// whitespace-padded one, and checks the fallback triggers (escaped string,
// trailing garbage).
func TestScannerRoundTrip(t *testing.T) {
	for _, in := range []string{
		`{"k":"art","n":-3,"f":0.25,"b":true,"u":18446744073709551615}`,
		" {\n  \"k\": \"art\",\t\"n\": -3 , \"f\": 0.25, \"b\": true, \"u\": 18446744073709551615\n} ",
	} {
		s := NewScanner([]byte(in))
		if !s.Byte('{') {
			t.Fatalf("%q: missing {", in)
		}
		if k, ok := s.String(); !ok || k != "k" {
			t.Fatalf("%q: key = %q, %v", in, k, ok)
		}
		if !s.Byte(':') {
			t.Fatal("missing :")
		}
		if v, ok := s.String(); !ok || v != "art" {
			t.Fatalf("value = %q, %v", v, ok)
		}
		s.Byte(',')
		s.String()
		s.Byte(':')
		if n, ok := s.Int(); !ok || n != -3 {
			t.Fatalf("int = %d, %v", n, ok)
		}
		s.Byte(',')
		s.String()
		s.Byte(':')
		if f, ok := s.Float(); !ok || f != 0.25 {
			t.Fatalf("float = %v, %v", f, ok)
		}
		s.Byte(',')
		s.String()
		s.Byte(':')
		if b, ok := s.Bool(); !ok || !b {
			t.Fatalf("bool = %v, %v", b, ok)
		}
		s.Byte(',')
		s.String()
		s.Byte(':')
		if u, ok := s.Uint64(); !ok || u != math.MaxUint64 {
			t.Fatalf("uint64 = %d, %v", u, ok)
		}
		if !s.Byte('}') || !s.End() {
			t.Fatalf("%q: unterminated", in)
		}
	}

	if _, ok := NewScanner([]byte(`"esc\"aped"`)).String(); ok {
		t.Error("escaped string must report false (fallback path)")
	}
	s := NewScanner([]byte(`{} trailing`))
	s.Byte('{')
	s.Byte('}')
	if s.End() {
		t.Error("trailing garbage must fail End")
	}
}
