// Package benchkit is the shared steady-state measurement substrate behind
// the root benchmarks (bench_test.go) and cmd/bench (DESIGN.md §5.4). Both
// measure the same thing — the warm simulate loop, free of construction,
// trace generation and cold-start effects — so the window constants, the
// predictor coverage, and the build-warm helper live here once; BENCH_*.json
// records stay comparable to `go test -bench` numbers by construction.
package benchkit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/pipeline"
)

// Steady-state measurement windows: warm past cold caches and cold
// predictor tables, then measure fixed Advance chunks of the running
// machine.
const (
	TraceUops = 1_500_000 // default trace length for timing runs
	WarmUops  = 30_000    // Run(WarmUops, 0) before any measurement
	Chunk     = 10_000    // µops per timed Advance
)

// SteadyPredictors are the configurations every steady-state measurement
// and the zero-allocation gate cover: the baseline machine, each
// single-scheme predictor of the paper's figures, and the headline hybrid.
var SteadyPredictors = []string{"none", "lvp", "stride", "fcm", "vtage", "vtage+stride"}

// SteadyTrace builds the dynamic trace for kernel, uops long.
func SteadyTrace(kernel string, uops int) ([]isa.DynInst, error) {
	k, ok := kernels.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("benchkit: unknown kernel %q", kernel)
	}
	return emu.Trace(k.Build(), uops), nil
}

// NewWarmSim builds a simulator for the named predictor over tr and runs it
// through the warmup window, leaving it ready for timed Advance calls.
func NewWarmSim(tr []isa.DynInst, predictor string) (*pipeline.Sim, error) {
	h := &ghist.History{}
	pred, err := harness.NewPredictor(predictor, core.FPCCommit, h)
	if err != nil {
		return nil, err
	}
	sim := pipeline.New(pipeline.DefaultConfig(), tr, pred, h)
	if _, err := sim.Run(WarmUops, 0); err != nil {
		return nil, err
	}
	return sim, nil
}
