package mem

// CacheState is an opaque snapshot of one cache level's mutable state
// (tags, fill/LRU timestamps, in-flight misses, counters). Configuration
// (geometry, latencies, next-level wiring) is not captured; Restore
// reinstates the snapshot in place on an identically configured Cache.
type CacheState struct {
	ways                                             []way // all sets' ways, flattened in set order
	inflight                                         map[uint64]int64
	hits, misses, mergedMisses, mshrStalls, prefills uint64
	pf                                               *PrefetcherState // attached prefetcher, nil if none
}

// Snapshot deep-copies the cache contents.
func (c *Cache) Snapshot() *CacheState {
	if len(c.sets) == 0 {
		return &CacheState{}
	}
	assoc := len(c.sets[0].ways)
	st := &CacheState{
		ways:         make([]way, len(c.sets)*assoc),
		inflight:     make(map[uint64]int64, len(c.inflight)),
		hits:         c.hits,
		misses:       c.misses,
		mergedMisses: c.mergedMisses,
		mshrStalls:   c.mshrStalls,
		prefills:     c.prefills,
	}
	for i := range c.sets {
		copy(st.ways[i*assoc:], c.sets[i].ways)
	}
	for l, done := range c.inflight {
		st.inflight[l] = done
	}
	if c.pf != nil {
		st.pf = c.pf.Snapshot()
	}
	return st
}

// Restore reinstates a snapshot taken from an identically configured cache.
func (c *Cache) Restore(st *CacheState) {
	if len(c.sets) > 0 {
		assoc := len(c.sets[0].ways)
		for i := range c.sets {
			copy(c.sets[i].ways, st.ways[i*assoc:(i+1)*assoc])
		}
	}
	clear(c.inflight)
	for l, done := range st.inflight {
		c.inflight[l] = done
	}
	c.hits = st.hits
	c.misses = st.misses
	c.mergedMisses = st.mergedMisses
	c.mshrStalls = st.mshrStalls
	c.prefills = st.prefills
	if c.pf != nil && st.pf != nil {
		c.pf.Restore(st.pf)
	}
}

// PrefetcherState is an opaque snapshot of a StridePrefetcher.
type PrefetcherState struct {
	table  []pfEntry
	issued uint64
}

// Snapshot copies the detection table and issue counter.
func (p *StridePrefetcher) Snapshot() *PrefetcherState {
	return &PrefetcherState{table: append([]pfEntry(nil), p.table...), issued: p.issued}
}

// Restore reinstates a snapshot taken from an identically sized prefetcher.
func (p *StridePrefetcher) Restore(st *PrefetcherState) {
	copy(p.table, st.table)
	p.issued = st.issued
}
