// Package mem models the paper's cache hierarchy (Table 2): 32KB 4-way L1I
// and L1D (2-cycle L1D, 4 load ports, 64 MSHRs) over a unified 2MB 16-way
// 12-cycle L2 with a degree-8 stride prefetcher, 64B lines and LRU
// everywhere, backed by the DDR3 model in package dram.
//
// The hierarchy is a timing model, not a data store: an access returns the
// cycle at which its data is available (or that the miss could not be
// accepted because the MSHRs are full and must retry).
package mem

import "repro/internal/dram"

// LineBytes is the cache line size everywhere (Table 2).
const LineBytes = 64

// Cache is one level of set-associative cache with MSHR-limited misses.
type Cache struct {
	name    string
	sets    []set
	setMask uint64
	setBits uint
	latency int64
	mshrs   int
	next    *Cache       // next level, nil if memory-backed
	memory  *dram.Memory // backing memory for the last level
	pf      *StridePrefetcher

	// inflight tracks outstanding misses per line: line -> fill-done cycle.
	// Accesses to a line already being fetched merge with it (MSHR merge).
	inflight map[uint64]int64

	hits, misses, mergedMisses, mshrStalls, prefills uint64
}

type set struct {
	ways []way
}

type way struct {
	tag     uint64
	valid   bool
	dirty   bool
	readyAt int64 // fill completion time (prefetches arrive in the future)
	lastUse int64 // LRU timestamp
}

// Config sizes one cache level.
type Config struct {
	Name    string
	Bytes   int
	Assoc   int
	Latency int64
	MSHRs   int
}

// NewCache builds a cache. Exactly one of next/memory must be non-nil.
func NewCache(cfg Config, next *Cache, memory *dram.Memory) *Cache {
	nSets := cfg.Bytes / LineBytes / cfg.Assoc
	setBits := uint(0)
	for 1<<setBits < nSets {
		setBits++
	}
	c := &Cache{
		name:     cfg.Name,
		sets:     make([]set, nSets),
		setMask:  uint64(nSets - 1),
		setBits:  setBits,
		latency:  cfg.Latency,
		mshrs:    cfg.MSHRs,
		next:     next,
		memory:   memory,
		inflight: make(map[uint64]int64),
	}
	for i := range c.sets {
		c.sets[i].ways = make([]way, cfg.Assoc)
	}
	return c
}

// AttachPrefetcher installs a stride prefetcher that observes demand
// accesses to this cache and prefetches into it.
func (c *Cache) AttachPrefetcher(pf *StridePrefetcher) { c.pf = pf }

func (c *Cache) line(addr uint64) uint64 { return addr / LineBytes }

func (c *Cache) find(lineAddr uint64) *way {
	s := &c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.setBits
	for i := range s.ways {
		if s.ways[i].valid && s.ways[i].tag == tag {
			return &s.ways[i]
		}
	}
	return nil
}

func (c *Cache) victim(lineAddr uint64) *way {
	s := &c.sets[lineAddr&c.setMask]
	v := &s.ways[0]
	for i := range s.ways {
		w := &s.ways[i]
		if !w.valid {
			return w
		}
		if w.lastUse < v.lastUse {
			v = w
		}
	}
	return v
}

// reapInflight drops completed misses so MSHR occupancy reflects only
// genuinely outstanding fills.
func (c *Cache) reapInflight(now int64) {
	for l, done := range c.inflight {
		if done <= now {
			delete(c.inflight, l)
		}
	}
}

// Access requests the line containing addr at cycle now. pc identifies the
// requesting instruction for the prefetcher. It returns the cycle data is
// available and ok=false if the access must retry later (MSHRs full).
// Writes allocate like reads (write-allocate, writeback).
func (c *Cache) Access(now int64, addr uint64, pc uint64, write bool, demand bool) (int64, bool) {
	lineAddr := c.line(addr)

	if c.pf != nil && demand {
		c.pf.Observe(now, pc, addr)
	}

	if w := c.find(lineAddr); w != nil {
		w.lastUse = now
		if write {
			w.dirty = true
		}
		done := now + c.latency
		if w.readyAt > done {
			// The line's fill is still outstanding (earlier miss or
			// prefetch): this access merges with it rather than hitting.
			c.mergedMisses++
			done = w.readyAt + c.latency
		} else {
			c.hits++
		}
		return done, true
	}

	// Miss. Merge with an outstanding fill of the same line if any.
	if done, ok := c.inflight[lineAddr]; ok {
		c.mergedMisses++
		c.install(lineAddr, done, now, write)
		return done + c.latency, true
	}

	c.reapInflight(now)
	if len(c.inflight) >= c.mshrs {
		c.mshrStalls++
		return 0, false
	}

	c.misses++
	var fillDone int64
	if c.next != nil {
		d, ok := c.next.Access(now+c.latency, addr, pc, false, demand)
		if !ok {
			// Next level out of MSHRs: propagate the retry.
			return 0, false
		}
		fillDone = d
	} else {
		fillDone = c.memory.Access(now+c.latency, addr, false)
	}
	c.inflight[lineAddr] = fillDone
	c.install(lineAddr, fillDone, now, write)
	return fillDone + c.latency, true
}

// install places the line in the cache with its fill time, writing back the
// victim if dirty.
func (c *Cache) install(lineAddr uint64, readyAt, now int64, write bool) {
	if c.find(lineAddr) != nil {
		return
	}
	v := c.victim(lineAddr)
	if v.valid && v.dirty {
		c.writeback(now)
	}
	*v = way{tag: lineAddr >> c.setBits, valid: true, dirty: write, readyAt: readyAt, lastUse: now}
}

// writeback sends a dirty victim down the hierarchy (timing only; the
// requester never waits for it).
func (c *Cache) writeback(now int64) {
	if c.memory != nil {
		c.memory.Access(now, 0, true) // address immaterial for timing stats
	}
	// Writebacks into a next cache level are absorbed by its write buffers;
	// we charge nothing further, matching Table 2's "no port constraints" L2.
}

// Prefetch requests a line fill without a demand requester. It fills this
// cache when the data arrives and never stalls anyone.
func (c *Cache) Prefetch(now int64, addr uint64) {
	lineAddr := c.line(addr)
	if c.find(lineAddr) != nil {
		return
	}
	if _, ok := c.inflight[lineAddr]; ok {
		return
	}
	c.reapInflight(now)
	if len(c.inflight) >= c.mshrs {
		return // prefetches are droppable
	}
	var fillDone int64
	if c.next != nil {
		d, ok := c.next.Access(now+c.latency, addr, 0, false, false)
		if !ok {
			return
		}
		fillDone = d
	} else {
		fillDone = c.memory.Access(now+c.latency, addr, false)
	}
	c.prefills++
	c.inflight[lineAddr] = fillDone
	c.install(lineAddr, fillDone, now, false)
}

// Contains reports whether the line holding addr is present (for tests and
// the I-cache presence check at fetch).
func (c *Cache) Contains(addr uint64) bool {
	return c.find(c.line(addr)) != nil
}

// Stats returns hit/miss accounting.
func (c *Cache) Stats() (hits, misses, merged, mshrStalls, prefills uint64) {
	return c.hits, c.misses, c.mergedMisses, c.mshrStalls, c.prefills
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }
