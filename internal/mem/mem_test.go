package mem

import (
	"testing"

	"repro/internal/dram"
)

// hierarchy builds the paper's L1D -> L2 -> DRAM stack.
func hierarchy() (*Cache, *Cache, *dram.Memory) {
	d := dram.New(dram.DefaultConfig())
	l2 := NewCache(Config{Name: "L2", Bytes: 2 << 20, Assoc: 16, Latency: 12, MSHRs: 64}, nil, d)
	l1 := NewCache(Config{Name: "L1D", Bytes: 32 << 10, Assoc: 4, Latency: 2, MSHRs: 64}, l2, nil)
	return l1, l2, d
}

func TestL1HitLatency(t *testing.T) {
	l1, _, _ := hierarchy()
	l1.Access(0, 0x1000, 1, false, true) // miss, fills
	now := int64(10_000)
	done, ok := l1.Access(now, 0x1000, 1, false, true)
	if !ok || done-now != 2 {
		t.Errorf("L1 hit latency = %d, want 2", done-now)
	}
}

func TestMissGoesThroughL2ToDRAM(t *testing.T) {
	l1, _, _ := hierarchy()
	done, ok := l1.Access(0, 0x4000, 1, false, true)
	if !ok {
		t.Fatal("access rejected")
	}
	// L1(2) + L2(12) + DRAM(130 first access) + L1 fill latency ≈ 146.
	if done < 100 || done > 250 {
		t.Errorf("cold miss latency = %d, want ~146", done)
	}
	// Second touch: L2 hit at most.
	now := int64(100_000)
	done2, _ := l1.Access(now, 0x4000, 1, false, true)
	if done2-now != 2 {
		t.Errorf("refetch latency = %d, want 2 (L1 hit)", done2-now)
	}
}

func TestMSHRMergeSameLine(t *testing.T) {
	l1, _, _ := hierarchy()
	d1, _ := l1.Access(0, 0x8000, 1, false, true)
	d2, ok := l1.Access(1, 0x8008, 1, false, true) // same line, one cycle later
	if !ok {
		t.Fatal("merged access rejected")
	}
	if d2 > d1+2 {
		t.Errorf("merged miss completes at %d, primary at %d — no merge happened", d2, d1)
	}
	_, _, merged, _, _ := l1.Stats()
	if merged != 1 {
		t.Errorf("merged misses = %d, want 1", merged)
	}
}

func TestMSHRFullRejects(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	l2 := NewCache(Config{Name: "L2", Bytes: 2 << 20, Assoc: 16, Latency: 12, MSHRs: 64}, nil, d)
	l1 := NewCache(Config{Name: "L1D", Bytes: 32 << 10, Assoc: 4, Latency: 2, MSHRs: 2}, l2, nil)
	l1.Access(0, 0x10000, 1, false, true)
	l1.Access(0, 0x20000, 1, false, true)
	if _, ok := l1.Access(0, 0x30000, 1, false, true); ok {
		t.Error("third concurrent miss accepted with 2 MSHRs")
	}
	_, _, _, stalls, _ := l1.Stats()
	if stalls != 1 {
		t.Errorf("mshrStalls = %d, want 1", stalls)
	}
	// After the fills complete, new misses are accepted again.
	if _, ok := l1.Access(1_000_000, 0x30000, 1, false, true); !ok {
		t.Error("miss rejected after MSHRs drained")
	}
}

func TestLRUEviction(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	// Tiny cache: 2 ways, 1 set (128B).
	c := NewCache(Config{Name: "c", Bytes: 128, Assoc: 2, Latency: 1, MSHRs: 8}, nil, d)
	c.Access(0, 0, 1, false, true)
	c.Access(10, 64, 1, false, true)
	c.Access(20, 0, 1, false, true)   // touch line 0 (MRU)
	c.Access(30, 128, 1, false, true) // evicts line 64
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(64) {
		t.Error("LRU line survived")
	}
	if !c.Contains(128) {
		t.Error("new line absent")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	c := NewCache(Config{Name: "c", Bytes: 128, Assoc: 2, Latency: 1, MSHRs: 8}, nil, d)
	c.Access(0, 0, 1, true, true) // dirty
	c.Access(10, 64, 1, false, true)
	c.Access(20, 128, 1, false, true) // evicts dirty line 0
	_, w, _, _, _ := d.Stats()
	if w != 1 {
		t.Errorf("DRAM writes = %d, want 1 (writeback)", w)
	}
}

func TestPrefetcherIssuesOnConfirmedStride(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	l2 := NewCache(Config{Name: "L2", Bytes: 2 << 20, Assoc: 16, Latency: 12, MSHRs: 64}, nil, d)
	pf := NewStridePrefetcher(8, 8, l2)
	l2.AttachPrefetcher(pf)

	// Three accesses with the same stride confirm it; prefetches follow.
	for i := 0; i < 4; i++ {
		l2.Access(int64(i*1000), uint64(i)*256, 42, false, true)
	}
	if pf.Issued() == 0 {
		t.Fatal("no prefetches issued on a confirmed stride")
	}
	// The next strided line should now be resident (prefetch distance 1).
	if !l2.Contains(4 * 256) {
		t.Error("next strided line not prefetched into L2")
	}
}

func TestPrefetchHitWaitsForFill(t *testing.T) {
	l1, _, _ := hierarchy()
	l1.Prefetch(0, 0xF000)
	// Demand access immediately after: hit, but data arrives with the fill.
	done, ok := l1.Access(1, 0xF000, 1, false, true)
	if !ok {
		t.Fatal("demand access on in-flight prefetch rejected")
	}
	if done < 75 {
		t.Errorf("demand hit on in-flight prefetch returned %d, before fill could finish", done)
	}
}

func TestDistinctLinesDistinctSets(t *testing.T) {
	// Regression test for tag aliasing: two addresses mapping to the same
	// set must not hit each other's entries.
	d := dram.New(dram.DefaultConfig())
	c := NewCache(Config{Name: "c", Bytes: 32 << 10, Assoc: 4, Latency: 2, MSHRs: 8}, nil, d)
	c.Access(0, 0x2000, 1, false, true)
	if c.Contains(0x4000) {
		t.Error("alias false hit: 0x4000 reported present after filling 0x2000")
	}
}
