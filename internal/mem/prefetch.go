package mem

// StridePrefetcher is the Table 2 L2 prefetcher: per-PC stride detection
// with degree 8 and distance 1 — on a confirmed stride it fetches the next
// 8 strided lines starting one stride ahead of the demand access.
type StridePrefetcher struct {
	table  []pfEntry
	mask   uint64
	target *Cache
	degree int

	issued uint64
}

type pfEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8
	valid    bool
}

// NewStridePrefetcher builds a prefetcher with 2^logEntries detection
// entries that prefetches into target.
func NewStridePrefetcher(logEntries, degree int, target *Cache) *StridePrefetcher {
	n := 1 << logEntries
	return &StridePrefetcher{
		table:  make([]pfEntry, n),
		mask:   uint64(n - 1),
		target: target,
		degree: degree,
	}
}

// Observe records a demand access from instruction pc to addr, trains the
// stride detector, and issues prefetches when the stride is confirmed.
func (p *StridePrefetcher) Observe(now int64, pc uint64, addr uint64) {
	e := &p.table[pc&p.mask]
	if !e.valid || e.pc != pc {
		*e = pfEntry{pc: pc, lastAddr: addr, valid: true}
		return
	}
	stride := int64(addr - e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < 2 {
		return
	}
	// Confirmed: prefetch degree lines, distance 1 stride ahead.
	for i := 1; i <= p.degree; i++ {
		next := addr + uint64(stride*int64(i))
		p.target.Prefetch(now, next)
		p.issued++
	}
}

// Issued reports how many prefetch requests were generated.
func (p *StridePrefetcher) Issued() uint64 { return p.issued }
