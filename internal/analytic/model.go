// Package analytic reproduces the closed-form models the paper works through
// in its motivation: the Section 3.1.1 recovery-cost model comparing
// selective reissue against pipeline squashing, and the Section 4 register
// file port-cost scenarios (via package regfile).
package analytic

// RecoveryParams describes a value-prediction deployment for the Trecov =
// Pvalue * Nmisp model of Section 3.1.
type RecoveryParams struct {
	Coverage     float64 // fraction of eligible µops predicted and used
	Accuracy     float64 // fraction of used predictions that are correct
	UsedBefore   float64 // fraction of predictions consumed before execution
	BenefitPerOK float64 // cycles gained per correct used prediction
	Penalty      float64 // Pvalue: average misprediction penalty in cycles
}

// NetBenefitPerKI returns the net cycles gained (positive) or lost
// (negative) per thousand instructions, assuming every instruction is
// VP-eligible as the paper's example implicitly does.
func (p RecoveryParams) NetBenefitPerKI() float64 {
	used := 1000 * p.Coverage
	correct := used * p.Accuracy
	wrong := used - correct
	// Only predictions consumed before execution cost a recovery.
	recoveries := wrong * p.UsedBefore
	return correct*p.BenefitPerOK - recoveries*p.Penalty
}

// Scenario is one row of the Section 3.1.1 worked example.
type Scenario struct {
	Name    string
	Penalty float64
}

// PaperScenarios are the three recovery mechanisms with the paper's
// simplified penalties: 5 cycles for selective reissue, 20 for squashing at
// execution time, 40 for squashing at commit.
func PaperScenarios() []Scenario {
	return []Scenario{
		{"selective reissue", 5},
		{"squash at execute", 20},
		{"squash at commit", 40},
	}
}

// Example1 is the paper's first example: 40% coverage, 95% accuracy, 50% of
// predictions used before execution, 0.3 cycles gained per correct
// prediction. It yields ≈ +64 / -86 / -286 cycles per kilo-instruction.
func Example1(penalty float64) float64 {
	return RecoveryParams{
		Coverage:     0.40,
		Accuracy:     0.95,
		UsedBefore:   0.5,
		BenefitPerOK: 0.3,
		Penalty:      penalty,
	}.NetBenefitPerKI()
}

// Example2 is the high-accuracy trade-off: 30% coverage at 99.75% accuracy
// (the FPC operating point). It yields ≈ +88 / +83 / +76 cycles per
// kilo-instruction — squashing at commit becomes viable.
func Example2(penalty float64) float64 {
	return RecoveryParams{
		Coverage:     0.30,
		Accuracy:     0.9975,
		UsedBefore:   0.5,
		BenefitPerOK: 0.3,
		Penalty:      penalty,
	}.NetBenefitPerKI()
}
