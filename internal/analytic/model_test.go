package analytic

import (
	"math"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExample1MatchesPaperNumbers(t *testing.T) {
	// Paper Section 3.1.1: ≈ +64 with selective reissue, ≈ -86 squashing at
	// execute, ≈ -286 squashing at commit (cycles per kilo-instruction).
	tests := []struct {
		penalty float64
		want    float64
	}{
		{5, 64},
		{20, -86},
		{40, -286},
	}
	for _, tt := range tests {
		if got := Example1(tt.penalty); !close(got, tt.want, 1.0) {
			t.Errorf("Example1(penalty=%.0f) = %.1f, want ≈ %.0f", tt.penalty, got, tt.want)
		}
	}
}

func TestExample2MatchesPaperNumbers(t *testing.T) {
	// Paper: ≈ +88 / +83 / +76 once accuracy reaches 99.75% at 30% coverage.
	tests := []struct {
		penalty float64
		want    float64
	}{
		{5, 88},
		{20, 83},
		{40, 76},
	}
	for _, tt := range tests {
		if got := Example2(tt.penalty); !close(got, tt.want, 1.5) {
			t.Errorf("Example2(penalty=%.0f) = %.1f, want ≈ %.0f", tt.penalty, got, tt.want)
		}
	}
}

func TestHighAccuracyMakesRecoveryIrrelevant(t *testing.T) {
	// The paper's core argument: at FPC-level accuracy the spread between
	// the cheapest and the most expensive recovery shrinks to a few cycles
	// per kilo-instruction.
	spread1 := Example1(5) - Example1(40)
	spread2 := Example2(5) - Example2(40)
	if spread2 >= spread1/10 {
		t.Errorf("accuracy did not collapse the recovery spread: %.1f vs %.1f", spread1, spread2)
	}
}

func TestScenarios(t *testing.T) {
	sc := PaperScenarios()
	if len(sc) != 3 || sc[0].Penalty != 5 || sc[2].Penalty != 40 {
		t.Errorf("unexpected scenarios: %+v", sc)
	}
}

func TestNetBenefitZeroCoverage(t *testing.T) {
	p := RecoveryParams{Coverage: 0, Accuracy: 1, UsedBefore: 0.5, BenefitPerOK: 0.3, Penalty: 40}
	if got := p.NetBenefitPerKI(); got != 0 {
		t.Errorf("zero coverage benefit = %f, want 0", got)
	}
}
