package harness

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestSpecCanonical pins the canonicalization rules: equivalent
// configurations must fold to one identity, because that identity is the
// memo key, the scheduler's coalescing key, and the Record spec.
func TestSpecCanonical(t *testing.T) {
	base := Spec{Kernel: "art", Predictor: "vtage", Counters: FPC}
	cases := []struct {
		name string
		in   Spec
		want Spec
	}{
		{"plain specs are fixed points", base, base},
		{"default width folds to zero",
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Width: 8}, base},
		{"non-default width survives",
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Width: 4},
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Width: 4}},
		{"default max hist folds to zero",
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, MaxHist: 64}, base},
		{"vector equal to the derived scheme folds away",
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, FPCVec: FormatFPCVector(core.FPCCommit)},
			base},
		{"vector matching a named scheme folds onto it",
			Spec{Kernel: "art", Predictor: "vtage", FPCVec: FormatFPCVector(core.FPCCommit)},
			base},
		{"reissue vector folds onto FPC under reissue recovery",
			Spec{Kernel: "art", Predictor: "vtage", Recovery: pipeline.SelectiveReissue,
				FPCVec: FormatFPCVector(core.FPCReissue)},
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Recovery: pipeline.SelectiveReissue}},
		{"explicit vector zeroes counters and re-renders canonically",
			Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, FPCVec: "0, 2,2,2,2,3,3"},
			Spec{Kernel: "art", Predictor: "vtage", FPCVec: "0,2,2,2,2,3,3"}},
		{"baseline machines shed predictor-only fields but keep width",
			Spec{Kernel: "art", Predictor: "none", Counters: FPC, LoadsOnly: true, MaxHist: 8,
				FPCVec: "0,2,2,2,2,3,3", Width: 4},
			Spec{Kernel: "art", Predictor: "none", Width: 4}},
	}
	for _, tc := range cases {
		if got := tc.in.Canonical(); got != tc.want {
			t.Errorf("%s: Canonical(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
	// The 3-bit FPC sweep point is the plain baseline-counter VTAGE spec.
	if got := fpcSpec("art", core.FPCBaseline); got != (Spec{Kernel: "art", Predictor: "vtage", Recovery: pipeline.SquashAtCommit}) {
		t.Errorf("3-bit fpcSpec did not fold onto the named config: %+v", got)
	}
	// The paper-default history point is the figures' VTAGE spec.
	if got := histSpec("art", 64); got != (Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Recovery: pipeline.SquashAtCommit}) {
		t.Errorf("max-hist=64 histSpec did not fold onto the named config: %+v", got)
	}
}

// TestFPCVectorRoundTrip: Format and Parse are inverses, and Parse rejects
// malformed vectors.
func TestFPCVectorRoundTrip(t *testing.T) {
	for _, v := range []core.FPCVector{core.FPCBaseline, core.FPCReissue, core.FPCCommit, {0, 5, 5, 5, 5, 6, 6}} {
		got, err := ParseFPCVector(FormatFPCVector(v))
		if err != nil || got != v {
			t.Errorf("round trip of %v: got %v, err %v", v, got, err)
		}
	}
	for _, bad := range []string{"", "1,2,3", "0,2,2,2,2,3,3,4", "0,2,2,2,2,3,x", "0,2,2,2,2,3,99"} {
		if _, err := ParseFPCVector(bad); err == nil {
			t.Errorf("ParseFPCVector(%q) accepted", bad)
		}
	}
}

// TestSpecValidate covers the constructible-configuration checks the
// service layer rejects wire specs with.
func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Kernel: "art", Predictor: "vtage", Width: 4},
		{Kernel: "art", Predictor: "vtage", MaxHist: 256},
		{Kernel: "art", Predictor: "vtage+stride", MaxHist: 8},
		{Kernel: "art", Predictor: "lvp", FPCVec: "0,2,2,2,2,3,3"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{Kernel: "nope", Predictor: "vtage"},
		{Kernel: "art", Predictor: "nope"},
		{Kernel: "art", Predictor: "vtage", Width: 99},
		{Kernel: "art", Predictor: "vtage", Width: -1},
		{Kernel: "art", Predictor: "lvp", MaxHist: 256},    // not vtage-family
		{Kernel: "art", Predictor: "vtage", MaxHist: 1},    // below MinHist
		{Kernel: "art", Predictor: "vtage", MaxHist: 4096}, // above cap
		{Kernel: "art", Predictor: "vtage", FPCVec: "1,2"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
	// Run surfaces the same errors (memoized like any other failure). Note
	// MaxHist=64 would canonicalize to the default and pass; 256 cannot.
	se := NewSession(100, 400)
	if _, err := se.Run(Spec{Kernel: "art", Predictor: "lvp", MaxHist: 256}); err == nil {
		t.Error("Run accepted max_hist on a non-vtage predictor")
	}
}

// TestExtendedSpecsSimulate runs one spec from each extension axis through
// the ordinary memoized path and checks the results are real and respond to
// the knob.
func TestExtendedSpecsSimulate(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(2_000, 10_000))
	ctx := context.Background()

	// Width: the knob must reach the machine (different cycle counts) and
	// still produce a real run. (IPC ordering is asserted only at full
	// windows by the abl-width shape; tiny -short windows are too noisy.)
	wide, err := se.RunCtx(ctx, Spec{Kernel: "art", Predictor: "none"})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := se.RunCtx(ctx, Spec{Kernel: "art", Predictor: "none", Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Stats.IPC() <= 0 || narrow.Stats == wide.Stats {
		t.Errorf("4-wide run indistinguishable from 8-wide: IPC %.3f vs %.3f",
			narrow.Stats.IPC(), wide.Stats.IPC())
	}
	// Speedup of a width spec divides by the width-matched baseline.
	if _, err := se.SpeedupCtx(ctx, Spec{Kernel: "art", Predictor: "vtage", Counters: FPC, Width: 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := se.memo[Spec{Kernel: "art", Predictor: "none", Width: 4}]; !ok {
		t.Error("width-matched baseline missing from the memo after SpeedupCtx")
	}

	// LoadsOnly: restricting scope must reduce eligibility.
	all, err := se.RunCtx(ctx, Spec{Kernel: "parser", Predictor: "lvp"})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := se.RunCtx(ctx, Spec{Kernel: "parser", Predictor: "lvp", LoadsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if loads.Stats.Eligible == 0 || loads.Stats.Eligible >= all.Stats.Eligible {
		t.Errorf("loads-only eligible %d, all-uops %d: want 0 < loads-only < all",
			loads.Stats.Eligible, all.Stats.Eligible)
	}

	// MaxHist and FPCVec: the overrides construct and run.
	if _, err := se.RunCtx(ctx, Spec{Kernel: "gzip", Predictor: "vtage", Counters: FPC, MaxHist: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := se.RunCtx(ctx, Spec{Kernel: "gzip", Predictor: "vtage+stride", MaxHist: 256}); err != nil {
		t.Fatal(err)
	}
	if _, err := se.RunCtx(ctx, Spec{Kernel: "gzip", Predictor: "vtage", FPCVec: "0,5,5,5,5,6,6"}); err != nil {
		t.Fatal(err)
	}

	// Equivalent spellings share one memo entry: the default-width spec and
	// the explicit-8-wide spec must not double-simulate.
	missesBefore := se.MemoStats().Misses
	if _, err := se.RunCtx(ctx, Spec{Kernel: "art", Predictor: "none", Width: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := se.RunCtx(ctx, Spec{Kernel: "gzip", Predictor: "vtage", Counters: FPC, MaxHist: 64}); err != nil {
		t.Fatal(err)
	}
	if missesAfter := se.MemoStats().Misses; missesAfter != missesBefore+1 {
		t.Errorf("equivalent spellings re-simulated: misses %d -> %d (want +1: only the MaxHist=64 FPC spec is new)",
			missesBefore, missesAfter)
	}
}

// TestPrepareCoversRender pins the tentpole property the service layer's
// render path depends on: for every spec-declaring experiment, rendering
// after Prepare starts no new simulations — the declared spec set is the
// complete simulation footprint and the render is a pure warm-memo read.
func TestPrepareCoversRender(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(500, 2_000))
	ctx := context.Background()
	for _, e := range Experiments() {
		if e.Specs == nil {
			continue
		}
		if err := se.Prepare(ctx, e, 4); err != nil {
			t.Fatalf("%s: prepare: %v", e.ID, err)
		}
		missesBefore := se.MemoStats().Misses
		if err := e.Run(ctx, se, io.Discard); err != nil {
			t.Fatalf("%s: render: %v", e.ID, err)
		}
		if missesAfter := se.MemoStats().Misses; missesAfter != missesBefore {
			t.Errorf("%s: render started %d simulations beyond its declared spec set",
				e.ID, missesAfter-missesBefore)
		}
	}
}

// TestRenderCancelled: a dead context aborts Render with the context error,
// in both the text and structured paths.
func TestRenderCancelled(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := ExperimentByID("abl-hist")
	for _, format := range []string{"text", "json"} {
		var sb strings.Builder
		err := Render(ctx, se, e, format, 2, &sb)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s render under a dead context returned %v, want context.Canceled", format, err)
		}
	}
}
