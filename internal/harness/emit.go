package harness

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Record is the flattened, machine-readable form of one simulation result.
// Field names (JSON keys and CSV headers) are stable; downstream tooling may
// depend on them. Committed and Cycles cover the measurement window only.
// The extended spec-key fields report the canonical spec: zero values mean
// the paper's default (8-wide machine, 64-entry VTAGE history, all-µop
// scope); Counters reads "custom" when an explicit FPCVector replaces the
// named scheme.
type Record struct {
	Kernel         string  `json:"kernel"`
	Predictor      string  `json:"predictor"`
	Counters       string  `json:"counters"`
	Recovery       string  `json:"recovery"`
	Width          int     `json:"width"`
	LoadsOnly      bool    `json:"loads_only"`
	MaxHist        int     `json:"max_hist"`
	FPCVector      string  `json:"fpc_vector"`
	IPC            float64 `json:"ipc"`
	Speedup        float64 `json:"speedup"`
	Coverage       float64 `json:"coverage"`
	Accuracy       float64 `json:"accuracy"`
	Committed      uint64  `json:"committed"`
	Cycles         int64   `json:"cycles"`
	SquashValue    uint64  `json:"squash_value"`
	SquashBranch   uint64  `json:"squash_branch"`
	SquashMemOrder uint64  `json:"squash_memorder"`
	ReissuedUops   uint64  `json:"reissued_uops"`
	BranchMPKI     float64 `json:"branch_mpki"`
	B2BFraction    float64 `json:"b2b_fraction"`
}

// csvHeader must stay in sync with Record's JSON tags; emit_test.go pins it.
var csvHeader = []string{
	"kernel", "predictor", "counters", "recovery",
	"width", "loads_only", "max_hist", "fpc_vector",
	"ipc", "speedup", "coverage", "accuracy",
	"committed", "cycles",
	"squash_value", "squash_branch", "squash_memorder", "reissued_uops",
	"branch_mpki", "b2b_fraction",
}

// Record flattens r into the machine-readable form, computing speedup
// against the memoized no-VP baseline (running it if absent). The baseline
// machine's own speedup is 1 by definition.
func (se *Session) Record(r *Result) (Record, error) {
	sp := 1.0
	if r.Spec.Predictor != "none" {
		var err error
		sp, err = se.Speedup(r.Spec)
		if err != nil {
			return Record{}, err
		}
	}
	counters := r.Spec.Counters.String()
	if r.Spec.FPCVec != "" {
		counters = "custom"
	}
	st := r.Stats
	return Record{
		Kernel:         r.Spec.Kernel,
		Predictor:      r.Spec.Predictor,
		Counters:       counters,
		Recovery:       r.Spec.Recovery.String(),
		Width:          r.Spec.Width,
		LoadsOnly:      r.Spec.LoadsOnly,
		MaxHist:        r.Spec.MaxHist,
		FPCVector:      r.Spec.FPCVec,
		IPC:            st.IPC(),
		Speedup:        sp,
		Coverage:       st.Coverage(),
		Accuracy:       st.Accuracy(),
		Committed:      st.MeasuredCommitted(),
		Cycles:         st.MeasuredCycles(),
		SquashValue:    st.SquashValue,
		SquashBranch:   st.SquashBranch,
		SquashMemOrder: st.SquashMemOrder,
		ReissuedUops:   st.ReissuedUops,
		BranchMPKI:     st.BranchMPKI(),
		B2BFraction:    st.B2BFraction(),
	}, nil
}

// RecordCtx simulates one spec (memoized) plus the baseline its speedup
// needs and flattens the result — the single-spec form of RecordsCtx, shared
// by the facade's runners. Both runs are warm no-ops when a batch pass
// already scheduled them.
func (se *Session) RecordCtx(ctx context.Context, spec Spec) (Record, error) {
	spec = spec.Canonical()
	res, err := se.RunCtx(ctx, spec)
	if err != nil {
		return Record{}, err
	}
	if spec.Predictor != "none" {
		if _, err := se.RunCtx(ctx, spec.Baseline()); err != nil {
			return Record{}, err
		}
	}
	return se.Record(res)
}

// Records simulates specs (plus the baselines their speedups need) across
// the worker pool and flattens the results in spec order.
func (se *Session) Records(specs []Spec, workers int) ([]Record, error) {
	return se.RecordsCtx(context.Background(), specs, workers)
}

// RecordsCtx is Records with cancellation (see RunAllCtx).
func (se *Session) RecordsCtx(ctx context.Context, specs []Spec, workers int) ([]Record, error) {
	batch := make([]Spec, 0, 2*len(specs))
	for _, s := range specs {
		batch = append(batch, s.Canonical())
	}
	for _, s := range specs {
		if s.Predictor != "none" {
			batch = append(batch, s.Canonical().Baseline())
		}
	}
	results, err := se.RunAllCtx(ctx, batch, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(specs))
	for i := range specs {
		out[i], err = se.Record(results[i])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteJSON emits records as an indented JSON array with stable field names.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteCSV emits records as CSV: one header row, then one row per record.
// Floats use the shortest exact representation so values round-trip.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range recs {
		row := []string{
			r.Kernel, r.Predictor, r.Counters, r.Recovery,
			strconv.Itoa(r.Width), strconv.FormatBool(r.LoadsOnly), strconv.Itoa(r.MaxHist), r.FPCVector,
			f(r.IPC), f(r.Speedup), f(r.Coverage), f(r.Accuracy),
			u(r.Committed), strconv.FormatInt(r.Cycles, 10),
			u(r.SquashValue), u(r.SquashBranch), u(r.SquashMemOrder), u(r.ReissuedUops),
			f(r.BranchMPKI), f(r.B2BFraction),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
