package harness

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// RunAll simulates every spec across a pool of worker goroutines and returns
// the results in spec order: results[i] always corresponds to specs[i],
// regardless of completion order, so parallel scheduling never changes
// rendered output. workers <= 0 selects GOMAXPROCS. Duplicate specs in the
// batch are simulated once (the session memo singleflights them). On error
// the first failure in spec order is returned; results holds every run that
// did complete.
func (se *Session) RunAll(specs []Spec, workers int) ([]*Result, error) {
	return se.RunAllCtx(context.Background(), specs, workers)
}

// RunAllCtx is RunAll with cancellation: once ctx is done, unstarted specs
// are abandoned with ctx's error, in-flight simulations stop at their next
// cancellation checkpoint, and the call returns. Results that completed
// before the cancellation are still populated.
func (se *Session) RunAllCtx(ctx context.Context, specs []Spec, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*Result, len(specs))
	if len(specs) == 0 {
		return results, nil
	}
	// Queue wait = submission to worker pickup; observed per spec so the
	// histogram shows how long the tail of a batch sits behind the pool.
	o := se.observer()
	var submitted time.Time
	if o != nil {
		submitted = time.Now()
	}
	errs := make([]error, len(specs))
	if workers <= 1 {
		for i, s := range specs {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			o.observeQueueWait(sinceSubmitted(submitted))
			results[i], errs[i] = se.RunCtx(ctx, s)
		}
		return results, firstError(errs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o.observeQueueWait(sinceSubmitted(submitted))
				results[i], errs[i] = se.RunCtx(ctx, specs[i])
			}
		}()
	}
feed:
	for i := range specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Workers only ever touch fed indexes, so marking the rest
			// here is race-free.
			for j := i; j < len(specs); j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, firstError(errs)
}

// DedupSpecs returns specs with exact duplicates removed, keeping
// first-appearance order — the one definition of "unique specs" the
// benchmarks and the service layer share. Declared spec sets repeat
// per-kernel baselines across figure halves; the memo makes the duplicates
// free at run time, but counting or costing a batch wants them gone.
func DedupSpecs(specs []Spec) []Spec {
	seen := make(map[Spec]bool, len(specs))
	out := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		if !seen[sp] {
			seen[sp] = true
			out = append(out, sp)
		}
	}
	return out
}

// ParallelRun is the package-level form of Session.RunAll, for callers that
// hold specs but not the session method chain.
func ParallelRun(se *Session, specs []Spec, workers int) ([]*Result, error) {
	return se.RunAll(specs, workers)
}

// Prepare batch-schedules an experiment's pre-declared spec set across the
// worker pool so that rendering afterwards only hits warm memo entries.
// Experiments without a declared spec set are a no-op. ctx cancels the
// batch (see RunAllCtx).
func (se *Session) Prepare(ctx context.Context, e Experiment, workers int) error {
	if e.Specs == nil {
		return nil
	}
	_, err := se.RunAllCtx(ctx, e.Specs(), workers)
	return err
}

// sinceSubmitted guards the queue-wait measurement against an unobserved
// batch (zero submission time → zero wait, and observeQueueWait no-ops on
// the nil observer anyway).
func sinceSubmitted(submitted time.Time) time.Duration {
	if submitted.IsZero() {
		return 0
	}
	return time.Since(submitted)
}

// firstError returns the earliest non-nil error, keeping failure reporting
// deterministic under parallel execution.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
