package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// reflectRecord is Record without its methods: encoding/json falls back to
// reflection for it, giving the byte-compatibility oracle the hand-rolled
// codec is tested against.
type reflectRecord Record

func wireTestRecords() []Record {
	return []Record{
		{},
		{
			Kernel: "art", Predictor: "vtage", Counters: "fpc", Recovery: "squash",
			Width: 8, MaxHist: 64, IPC: 2.345678901234, Speedup: 1.0 / 3.0,
			Coverage: 0.425, Accuracy: 0.9987654321, Committed: 80_000,
			Cycles: 34117, SquashValue: 12, SquashBranch: 345, SquashMemOrder: 6,
			ReissuedUops: 789, BranchMPKI: 16.25, B2BFraction: 9.999e-7,
		},
		{
			Kernel: "prog:4b3f00ff", Predictor: "lvp", Counters: "custom",
			Recovery: "reissue", Width: 4, LoadsOnly: true, MaxHist: 128,
			FPCVector: "0,2,2,2,2,3,3", IPC: 1e21, Speedup: 5e-324,
			Coverage: 1, Accuracy: 0, Committed: 18446744073709551615,
			Cycles: -42, BranchMPKI: 1e-7,
		},
	}
}

// TestRecordMarshalByteCompatible pins the wire fast path's core contract:
// the hand-rolled marshaler and encoding/json's reflection encoder emit
// identical bytes, compact and indented (WriteJSON re-indents marshaler
// output through the stdlib, so indented equality follows — but pin it
// anyway).
func TestRecordMarshalByteCompatible(t *testing.T) {
	for _, rec := range wireTestRecords() {
		got, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(reflectRecord(rec))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("hand-rolled marshal differs from reflection:\n got %s\nwant %s", got, want)
		}
	}
}

// TestRecordUnmarshalEquivalent checks the decode side: fast-path input,
// whitespace-padded input, reordered keys, unknown fields and escaped
// strings must all decode exactly as the reflection decoder would.
func TestRecordUnmarshalEquivalent(t *testing.T) {
	var inputs [][]byte
	for _, rec := range wireTestRecords() {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, b)
	}
	inputs = append(inputs,
		[]byte(" {\n \"ipc\": 1.5 ,\t\"kernel\": \"gzip\", \"cycles\": -7 } "),
		[]byte(`{"kernel":"g","future_field":123,"ipc":2}`), // unknown key → lenient fallback
		[]byte(`{"kernel":"esc\"aped","ipc":1}`),            // escape → fallback
		[]byte(`{}`),
	)
	for _, in := range inputs {
		var got Record
		if err := json.Unmarshal(in, &got); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		var want reflectRecord
		if err := json.Unmarshal(in, &want); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if !reflect.DeepEqual(got, Record(want)) {
			t.Errorf("%s:\n got %+v\nwant %+v", in, got, want)
		}
	}
	if err := json.Unmarshal([]byte(`{"kernel":}`), &Record{}); err == nil {
		t.Error("malformed record must still error through the fallback")
	}
}
