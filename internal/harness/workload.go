package harness

// Workload sources (DESIGN.md §11): a Spec's workload is either a builtin
// kernel name or a content-addressed program reference "prog:<sha256>" over
// the program's binary encoding. The reference is self-certifying — two
// byte-identical programs get one identity no matter who uploads them, and
// two different programs can never collide, even if both are named "mcf" —
// so memo entries, persisted store records, and warm-state snapshots all key
// correctly across processes without trusting the program's display name.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// progRefPrefix marks a content-addressed workload reference. No builtin
// kernel name contains a colon, so the namespaces are disjoint.
const progRefPrefix = "prog:"

// IsProgramRef reports whether the workload string is a program reference
// (as opposed to a builtin kernel name).
func IsProgramRef(workload string) bool {
	return strings.HasPrefix(workload, progRefPrefix)
}

// checkProgramRef validates the shape of a program reference: the prefix
// followed by a full lowercase hex sha256.
func checkProgramRef(ref string) error {
	hexpart := strings.TrimPrefix(ref, progRefPrefix)
	if len(hexpart) != sha256.Size*2 {
		return fmt.Errorf("harness: malformed program reference %q: want prog:<64 hex digits>", ref)
	}
	for _, c := range hexpart {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("harness: malformed program reference %q: want prog:<64 lowercase hex digits>", ref)
		}
	}
	return nil
}

// ProgramID returns the content-addressed workload reference for p:
// "prog:" + sha256 of the binary encoding. The encoding covers the name,
// code, data and initial registers, so any observable difference changes
// the identity.
func ProgramID(p *isa.Program) string {
	sum := sha256.Sum256(p.Encode())
	return progRefPrefix + hex.EncodeToString(sum[:])
}

// RegisterProgram adds p to the session's workload registry and returns the
// workload string to put in Spec.Kernel (or Spec.Program). Safe for
// concurrent use; registering the same program twice is an idempotent no-op
// returning the same reference.
//
// A program byte-identical to a builtin kernel returns the builtin's name:
// it is the same workload, so it shares the builtin's memo entries, store
// records and warm-state snapshots. A different program that merely shares
// a builtin's name gets its own prog: reference and can never collide.
func (se *Session) RegisterProgram(p *isa.Program) (string, error) {
	if p == nil {
		return "", errors.New("harness: RegisterProgram: nil program")
	}
	if err := isa.CheckEncodable(p); err != nil {
		return "", err
	}
	if err := p.Validate(); err != nil {
		return "", fmt.Errorf("harness: invalid program: %w", err)
	}
	enc := p.Encode()
	sum := sha256.Sum256(enc)
	fp := hex.EncodeToString(sum[:])
	if _, builtin := kernels.ByName(p.Name); builtin {
		if kfp, ok := se.workloadFingerprint(p.Name); ok && kfp == fp {
			return p.Name, nil
		}
	}
	// Register a private decoded copy: the caller keeps ownership of p and
	// may mutate it afterwards without corrupting the registry.
	cp, err := isa.Decode(enc)
	if err != nil {
		return "", err
	}
	id := progRefPrefix + fp
	se.mu.Lock()
	if se.progs == nil {
		se.progs = make(map[string]*isa.Program)
	}
	if _, dup := se.progs[id]; !dup {
		se.progs[id] = cp
	}
	se.mu.Unlock()
	return id, nil
}

// Program returns the registered program for a prog: reference.
func (se *Session) Program(workload string) (*isa.Program, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	p, ok := se.progs[workload]
	return p, ok
}

// ProgramIDs returns the registered program references in sorted order.
func (se *Session) ProgramIDs() []string {
	se.mu.Lock()
	ids := make([]string, 0, len(se.progs))
	for id := range se.progs {
		ids = append(ids, id)
	}
	se.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// ProgramCount returns the number of registered programs.
func (se *Session) ProgramCount() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.progs)
}

// UnknownWorkloadError reports a workload the session cannot resolve. It is
// a distinct type because it is the one simulation error that is *about the
// session*, not the spec: registering the program afterwards fixes it, so
// neither the trace singleflight nor the result memo caches it (unlike real
// simulation errors, which are memoized).
type UnknownWorkloadError struct {
	Workload string
	msg      string
}

func (e *UnknownWorkloadError) Error() string { return e.msg }

// IsUnknownWorkload reports whether err is (or wraps) an UnknownWorkloadError.
func IsUnknownWorkload(err error) bool {
	var u *UnknownWorkloadError
	return errors.As(err, &u)
}

// unknownWorkloadError explains an unresolvable workload in terms the caller
// can act on: the builtin index for kernel names, the session's registered
// references (and how to register one) for prog: references.
func (se *Session) unknownWorkloadError(workload string) error {
	if !IsProgramRef(workload) {
		return &UnknownWorkloadError{Workload: workload, msg: fmt.Sprintf(
			"harness: unknown kernel %q (builtin kernels: %s)",
			workload, strings.Join(kernels.Names(), ", "))}
	}
	ids := se.ProgramIDs()
	if len(ids) == 0 {
		return &UnknownWorkloadError{Workload: workload, msg: fmt.Sprintf(
			"harness: unknown program %q: no programs registered with this session (use RegisterProgram, or POST /v1/programs on a daemon)", workload)}
	}
	return &UnknownWorkloadError{Workload: workload, msg: fmt.Sprintf(
		"harness: unknown program %q (registered: %s)", workload, strings.Join(ids, ", "))}
}
