package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// decodeSpans parses a tracer's NDJSON buffer back into spans.
func decodeSpans(t *testing.T, buf *bytes.Buffer) []obs.Span {
	t.Helper()
	var spans []obs.Span
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("corrupt trace line %q: %v", line, err)
		}
		spans = append(spans, s)
	}
	return spans
}

// countStages tallies spans by stage.
func countStages(spans []obs.Span) map[string]int {
	m := make(map[string]int)
	for _, s := range spans {
		m[s.Stage]++
	}
	return m
}

// fig4Subset trims the canonical fig4 batch to a few kernels so the e2e
// trace test stays fast while keeping the batch's real shape (baselines
// duplicated across matrix halves, both counter schemes).
func fig4Subset() []Spec {
	keep := map[string]bool{"gzip": true, "art": true, "mcf": true}
	var out []Spec
	for _, sp := range Fig4Specs() {
		if keep[sp.Kernel] {
			out = append(out, sp)
		}
	}
	return out
}

func uniqueCanonical(specs []Spec) int {
	seen := make(map[Spec]bool)
	for _, sp := range specs {
		seen[sp.Canonical()] = true
	}
	return len(seen)
}

// TestObserverE2EColdThenWarm is the issue's acceptance test for the trace
// layer: a fig4 batch over a cold store produces exactly one span-set per
// uncached spec (one admit, one warmup, one measure), and re-running the
// batch in a fresh session over the now-warm store simulates nothing — zero
// warmup/measure spans, every run served by the store tier.
func TestObserverE2EColdThenWarm(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(500, 2_000)
	specs := fig4Subset()
	unique := uniqueCanonical(specs)

	observe := func(se *Session) (*obs.Registry, *bytes.Buffer) {
		reg := obs.NewRegistry()
		var buf bytes.Buffer
		se.Observe(NewObserver(reg, obs.NewTracer(&buf)))
		return reg, &buf
	}
	counter := func(reg *obs.Registry, name string, labels ...string) uint64 {
		if len(labels) == 0 {
			return reg.Counter(name, "").Value()
		}
		return reg.CounterVec(name, "", "tier", "result").With(labels...).Value()
	}

	// Cold: every unique spec simulates and publishes to the store.
	cold := storeSession(t, dir, StoreVersion, warmup, measure)
	coldReg, coldBuf := observe(cold)
	if _, err := cold.RunAll(specs, 4); err != nil {
		t.Fatal(err)
	}
	if got := counter(coldReg, "repro_simulations_total"); got != uint64(unique) {
		t.Errorf("cold simulations = %d, want %d (unique specs)", got, unique)
	}
	if got := counter(coldReg, "repro_cache_lookups_total", obs.TierStore, "miss"); got != uint64(unique) {
		t.Errorf("cold store misses = %d, want %d", got, unique)
	}
	spans := decodeSpans(t, coldBuf)
	byRun := make(map[uint64][]obs.Span)
	for _, s := range spans {
		byRun[s.Run] = append(byRun[s.Run], s)
	}
	if len(byRun) != unique {
		t.Errorf("cold trace has %d span-sets, want %d (one per uncached spec)", len(byRun), unique)
	}
	for run, set := range byRun {
		st := countStages(set)
		if st[obs.StageAdmit] != 1 || st[obs.StageWarmup] != 1 || st[obs.StageMeasure] != 1 {
			t.Errorf("run %d stage counts = %v, want one admit/warmup/measure", run, st)
		}
		spec := set[0].Spec
		for _, s := range set {
			if s.Spec != spec {
				t.Errorf("run %d mixes specs %q and %q", run, spec, s.Spec)
			}
		}
	}

	// Warm: a fresh session (fresh memo) over the same store directory.
	warm := storeSession(t, dir, StoreVersion, warmup, measure)
	warmReg, warmBuf := observe(warm)
	if _, err := warm.RunAll(specs, 4); err != nil {
		t.Fatal(err)
	}
	if got := counter(warmReg, "repro_simulations_total"); got != 0 {
		t.Errorf("warm simulations = %d, want 0", got)
	}
	if got := counter(warmReg, "repro_cache_lookups_total", obs.TierStore, "hit"); got != uint64(unique) {
		t.Errorf("warm store hits = %d, want %d", got, unique)
	}
	st := countStages(decodeSpans(t, warmBuf))
	if st[obs.StageWarmup] != 0 || st[obs.StageMeasure] != 0 {
		t.Errorf("warm trace has %d warmup / %d measure spans, want 0/0",
			st[obs.StageWarmup], st[obs.StageMeasure])
	}
	if st[obs.StageStore] != unique || st[obs.StagePublish] != unique {
		t.Errorf("warm trace store/publish = %d/%d, want %d each",
			st[obs.StageStore], st[obs.StagePublish], unique)
	}
}

// TestObservedRunsByteIdentical is the PR's record-level differential: an
// observed session (which times warmup and measure via the split simulate
// path) and an observed session with snapshots attached must both render
// records byte-identical to the plain unobserved fast path.
func TestObservedRunsByteIdentical(t *testing.T) {
	t.Parallel()
	warmup, measure := testWindows(5_000, 40_000)
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "vtage", Counters: FPC},
		{Kernel: "art", Predictor: "stride", Counters: BaselineCounters},
	}

	render := func(se *Session) (string, string) {
		t.Helper()
		recs, err := se.Records(specs, 2)
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteJSON(&j, recs); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, recs); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}

	plain := NewSession(warmup, measure)
	wantJSON, wantCSV := render(plain)

	observed := NewSession(warmup, measure)
	observed.Observe(NewObserver(obs.NewRegistry(), nil))
	gotJSON, gotCSV := render(observed)
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Error("observed session records differ from unobserved fast path")
	}

	snapped := NewSession(warmup, measure)
	snapped.Observe(NewObserver(obs.NewRegistry(), obs.NewTracer(&bytes.Buffer{})))
	snapped.UseSnapshots(NewSnapshotCache(8))
	gotJSON, gotCSV = render(snapped)
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Error("observed+snapshot session records differ from unobserved fast path")
	}
}

// TestObserverQueueWaitAndCoalesced covers the batch-level instruments: one
// queue-wait observation per submitted spec, and CountCoalescedHits
// mirroring into the memo-hit counter.
func TestObserverQueueWaitAndCoalesced(t *testing.T) {
	t.Parallel()
	warmup, measure := testWindows(500, 2_000)
	se := NewSession(warmup, measure)
	reg := obs.NewRegistry()
	se.Observe(NewObserver(reg, nil))

	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "gzip", Predictor: "none"}, // duplicate: memo hit
	}
	if _, err := se.RunAllCtx(context.Background(), specs, 2); err != nil {
		t.Fatal(err)
	}
	qw := reg.Histogram("repro_batch_queue_wait_seconds", "", nil)
	if got := qw.Count(); got != uint64(len(specs)) {
		t.Errorf("queue-wait observations = %d, want %d", got, len(specs))
	}

	hits := reg.CounterVec("repro_cache_lookups_total", "", "tier", "result").With(obs.TierMemo, "hit")
	before := hits.Value()
	se.CountCoalescedHits(5)
	if got := hits.Value() - before; got != 5 {
		t.Errorf("coalesced hits delta = %d, want 5", got)
	}
}
