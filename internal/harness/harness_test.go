package harness

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ghist"
	"repro/internal/pipeline"
)

// testWindows sizes simulation windows for the test mode: full windows in
// long mode carry the statistical claims; -short mode shrinks them 10x so
// the suite stays fast while still exercising every code path.
func testWindows(warmup, measure uint64) (uint64, uint64) {
	if testing.Short() {
		return warmup / 10, measure / 10
	}
	return warmup, measure
}

func TestNewPredictorAllNames(t *testing.T) {
	for _, name := range PredictorNames {
		h := &ghist.History{}
		p, err := NewPredictor(name, core.FPCCommit, h)
		if err != nil {
			t.Errorf("NewPredictor(%q): %v", name, err)
			continue
		}
		if name == "none" {
			if p != nil {
				t.Error("none should return a nil predictor")
			}
			continue
		}
		if p == nil {
			t.Errorf("NewPredictor(%q) returned nil", name)
		}
	}
	if _, err := NewPredictor("bogus", core.FPCCommit, &ghist.History{}); err == nil {
		t.Error("bogus predictor name accepted")
	}
}

func TestDisplayNames(t *testing.T) {
	tests := map[string]string{
		"none": "Baseline", "lvp": "LVP", "stride": "2D-Str",
		"fcm": "o4-FCM", "vtage": "VTAGE", "oracle": "Oracle",
		"vtage+stride": "VTAGE-2DStr", "fcm+stride": "o4-FCM-2DStr",
	}
	for in, want := range tests {
		if got := DisplayName(in); got != want {
			t.Errorf("DisplayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersVectorMatchesRecovery(t *testing.T) {
	if FPC.Vector(pipeline.SquashAtCommit) != core.FPCCommit {
		t.Error("FPC+squash should use the 7-bit-equivalent vector")
	}
	if FPC.Vector(pipeline.SelectiveReissue) != core.FPCReissue {
		t.Error("FPC+reissue should use the 6-bit-equivalent vector")
	}
	if BaselineCounters.Vector(pipeline.SquashAtCommit) != core.FPCBaseline {
		t.Error("baseline counters should be deterministic")
	}
}

func TestSessionMemoizes(t *testing.T) {
	se := NewSession(5_000, 20_000)
	spec := Spec{Kernel: "gzip", Predictor: "none"}
	r1, err := se.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := se.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical specs were re-simulated (memoization broken)")
	}
	if len(se.sortedSpecs()) != 1 {
		t.Errorf("memo holds %d specs, want 1", len(se.sortedSpecs()))
	}
	if m := se.MemoStats(); m.Hits != 1 || m.Misses != 1 {
		t.Errorf("MemoStats = (%d hits, %d misses), want (1, 1)", m.Hits, m.Misses)
	}
}

func TestSessionUnknownKernel(t *testing.T) {
	se := NewSession(100, 100)
	if _, err := se.Run(Spec{Kernel: "bogus", Predictor: "none"}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestSpeedupOracleAtLeastOne(t *testing.T) {
	se := NewSession(testWindows(5_000, 30_000))
	for _, k := range []string{"art", "hmmer"} {
		s, err := se.Speedup(Spec{Kernel: k, Predictor: "oracle"})
		if err != nil {
			t.Fatal(err)
		}
		if s < 0.999 {
			t.Errorf("%s: oracle speedup %.3f < 1", k, s)
		}
	}
}

func TestMeanHelpers(t *testing.T) {
	if got := AMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("AMean = %v, want 2", got)
	}
	if got := AMean(nil); got != 0 {
		t.Errorf("AMean(nil) = %v, want 0", got)
	}
	if got := Max([]float64{1, 5, 3}); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %v, want 0", got)
	}
}

func TestStaticExperimentsRender(t *testing.T) {
	se := NewSession(100, 100)
	for _, id := range []string{"table1", "table2", "table3", "sec3", "sec4"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		var sb strings.Builder
		if err := e.Run(context.Background(), se, &sb); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if len(sb.String()) < 50 {
			t.Errorf("%s rendered only %d bytes", id, len(sb.String()))
		}
	}
}

func TestExperimentByIDUnknown(t *testing.T) {
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown experiment id found")
	}
}

func TestKernelNamesComplete(t *testing.T) {
	if len(KernelNames()) != 19 {
		t.Errorf("KernelNames() = %d, want 19", len(KernelNames()))
	}
}

// TestFig4ShapeHolds is the headline integration test: with FPC and
// squash-at-commit, no kernel may lose more than a few percent, and the
// predictable kernels must gain (the paper's core claim). The whole batch is
// fanned out across the worker pool; in -short mode the windows shrink and
// only sanity (not the statistical shape) is asserted.
func TestFig4ShapeHolds(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(10_000, 40_000))
	var specs []Spec
	for _, k := range KernelNames() {
		specs = append(specs,
			Spec{Kernel: k, Predictor: "none"},
			Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
	}
	if _, err := se.RunAll(specs, 0); err != nil {
		t.Fatal(err)
	}
	worst := 1.0
	worstK := ""
	for _, k := range KernelNames() {
		s, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 {
			t.Fatalf("%s: degenerate speedup %v", k, s)
		}
		if s < worst {
			worst, worstK = s, k
		}
	}
	if testing.Short() {
		return // windows too small for the statistical claims below
	}
	if worst < 0.93 {
		t.Errorf("FPC VTAGE slows %s to %.3f; paper's claim is no significant slowdown", worstK, worst)
	}
	// art is engineered as the paper's headline winner.
	if s, _ := se.Speedup(Spec{Kernel: "art", Predictor: "vtage", Counters: FPC}); s < 1.3 {
		t.Errorf("art VTAGE speedup %.3f, want the paper's large-gain shape (>1.3)", s)
	}
}

// TestRecoveryIrrelevantUnderFPC asserts the paper's second headline claim:
// with FPC, squash-at-commit performs on par with idealized selective
// reissue.
func TestRecoveryIrrelevantUnderFPC(t *testing.T) {
	t.Parallel()
	// Kernels with stable value streams, where FPC coverage converges for
	// both probability vectors. On kernels with periodic value changes
	// (e.g. parser) the 6-bit-equivalent reissue vector re-saturates sooner
	// and earns extra coverage — an inherent property of the paper's
	// vector-per-recovery pairing, documented in EXPERIMENTS.md.
	se := NewSession(testWindows(10_000, 40_000))
	kernels := []string{"art", "gamess", "gzip"}
	var specs []Spec
	for _, k := range kernels {
		for _, rec := range []pipeline.RecoveryMode{pipeline.SquashAtCommit, pipeline.SelectiveReissue} {
			specs = append(specs,
				Spec{Kernel: k, Predictor: "none", Recovery: rec},
				Spec{Kernel: k, Predictor: "vtage+stride", Counters: FPC, Recovery: rec})
		}
	}
	if _, err := se.RunAll(specs, 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels {
		sq, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage+stride", Counters: FPC, Recovery: pipeline.SquashAtCommit})
		if err != nil {
			t.Fatal(err)
		}
		re, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage+stride", Counters: FPC, Recovery: pipeline.SelectiveReissue})
		if err != nil {
			t.Fatal(err)
		}
		if testing.Short() {
			continue // windows too small for the equivalence claim
		}
		if diff := sq/re - 1; diff < -0.10 || diff > 0.10 {
			t.Errorf("%s: squash %.3f vs reissue %.3f differ by %.1f%%, want ≈ equal under FPC",
				k, sq, re, 100*diff)
		}
	}
}

// TestAblationExperimentsRun exercises the beyond-the-paper runners with
// small windows (rendering correctness, not statistical claims). Rendering
// goes through Render so the pre-declared spec batches are exercised too.
func TestAblationExperimentsRun(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(1_000, 5_000))
	for _, id := range []string{"abl-fpc", "abl-hist", "ext-pred", "profile", "abl-loads", "abl-width"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		var sb strings.Builder
		if err := Render(context.Background(), se, e, "text", 0, &sb); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if len(sb.String()) < 80 {
			t.Errorf("%s rendered only %d bytes", id, len(sb.String()))
		}
	}
}

// TestRenderFormats pins the Render contract: text-only experiments reject
// structured formats, unknown formats are rejected, and a spec-bearing
// experiment renders in all three formats.
func TestRenderFormats(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	table1, _ := ExperimentByID("table1")
	if err := Render(context.Background(), se, table1, "json", 0, io.Discard); err == nil {
		t.Error("json rendering of a text-only experiment accepted")
	}
	fig1, _ := ExperimentByID("fig1")
	if err := Render(context.Background(), se, fig1, "bogus", 0, io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
	for _, format := range []string{"text", "json", "csv"} {
		var sb strings.Builder
		if err := Render(context.Background(), se, fig1, format, 0, &sb); err != nil {
			t.Errorf("fig1 %s: %v", format, err)
		}
		if sb.Len() == 0 {
			t.Errorf("fig1 %s rendered nothing", format)
		}
	}
}

// TestPredictLoadsOnlyRestrictsEligibility checks the loads-only switch.
func TestPredictLoadsOnlyRestrictsEligibility(t *testing.T) {
	se := NewSession(2_000, 20_000)
	tr, err := se.trace(context.Background(), "parser")
	if err != nil {
		t.Fatal(err)
	}
	h := &ghist.History{}
	pred, err := NewPredictor("lvp", core.FPCBaseline, h)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.PredictLoadsOnly = true
	st, err := pipeline.New(cfg, tr, pred, h).Run(2_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	h2 := &ghist.History{}
	pred2, _ := NewPredictor("lvp", core.FPCBaseline, h2)
	st2, err := pipeline.New(pipeline.DefaultConfig(), tr, pred2, h2).Run(2_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Eligible >= st2.Eligible {
		t.Errorf("loads-only eligible %d not below all-uops %d", st.Eligible, st2.Eligible)
	}
	if st.Eligible == 0 {
		t.Error("loads-only mode predicted nothing")
	}
}
