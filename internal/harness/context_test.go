package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCtxMatchesRun pins the equivalence the service layer depends on:
// the cancellable chunked simulation path must produce stats byte-identical
// to the one-shot Run path, because Advance targets absolute commit counts
// and pausing between cycles is state-neutral.
func TestRunCtxMatchesRun(t *testing.T) {
	t.Parallel()
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "vtage", Counters: FPC},
		{Kernel: "art", Predictor: "stride", Counters: BaselineCounters},
	}
	warmup, measure := testWindows(5_000, 60_000)
	for _, spec := range specs {
		plain := NewSession(warmup, measure)
		want, err := plain.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		// A cancellable (but never cancelled) context forces the chunked
		// Advance path through a fresh session.
		ctx, cancel := context.WithCancel(context.Background())
		chunked := NewSession(warmup, measure)
		got, err := chunked.RunCtx(ctx, spec)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats != want.Stats {
			t.Errorf("%v: chunked cancellable run diverged from one-shot run:\n%+v\n%+v",
				spec, got.Stats, want.Stats)
		}
	}
}

// TestRunCtxCancelledNotMemoized: a cancelled run must not poison the memo —
// the next request for the same spec re-simulates and succeeds.
func TestRunCtxCancelledNotMemoized(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(5_000, 60_000))
	spec := Spec{Kernel: "gzip", Predictor: "lvp"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run even starts
	if _, err := se.RunCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	r, err := se.Run(spec)
	if err != nil {
		t.Fatalf("run after cancellation: %v (cancellation was memoized)", err)
	}
	if r.Stats.IPC() <= 0 {
		t.Errorf("re-run after cancellation produced empty stats: %+v", r.Stats)
	}
}

// TestRunCtxCancelMidRun cancels a simulation once it is in flight and
// requires RunCtx to return promptly with the context error — the property
// that lets a cancelled service job free its worker.
func TestRunCtxCancelMidRun(t *testing.T) {
	t.Parallel()
	// Large windows so the run is comfortably longer than the cancellation
	// latency being measured.
	se := NewSession(50_000, 1_500_000)
	spec := Spec{Kernel: "gzip", Predictor: "none"}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := se.RunCtx(ctx, spec)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it get into the simulate loop
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("RunCtx still running %v after cancel", time.Since(start))
	}
	// The abandoned entry must be gone so a fresh small-window session-level
	// retry re-owns it (checked via memo counters: a new Run is a miss).
	misses := se.MemoStats().Misses
	se.mu.Lock()
	_, stillThere := se.memo[spec]
	se.mu.Unlock()
	if stillThere {
		t.Error("cancelled run left its memo entry behind")
	}
	if misses == 0 {
		t.Error("cancelled run was never counted as a miss")
	}
}

// TestRunCtxWaiterRetriesAfterAbandonedOwner: a goroutine that joined an
// in-flight entry whose owner got cancelled must transparently retry and
// succeed under its own live context.
func TestRunCtxWaiterRetriesAfterAbandonedOwner(t *testing.T) {
	t.Parallel()
	se := NewSession(50_000, 1_000_000)
	spec := Spec{Kernel: "art", Predictor: "none"}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := se.RunCtx(ownerCtx, spec)
		ownerErr <- err
	}()
	// Wait until the owner's entry exists so the waiter is guaranteed to
	// join rather than own.
	for {
		se.mu.Lock()
		_, ok := se.memo[spec]
		se.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	waiterDone := make(chan error, 1)
	go func() {
		r, err := se.RunCtx(context.Background(), spec)
		if err == nil && r == nil {
			err = errors.New("nil result without error")
		}
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelOwner()

	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner got %v, want context.Canceled", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter failed after owner abandonment: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("waiter never completed after owner abandonment")
	}
	m := se.MemoStats()
	if m.Hits+m.Misses != 2 {
		t.Errorf("memo saw %d lookups, want 2 (hits=%d misses=%d)", m.Hits+m.Misses, m.Hits, m.Misses)
	}
	// Exact split: the waiter's join was recounted from a hit to a miss when
	// it re-owned the abandoned entry — a double-counted promotion would
	// leave hits=1/misses=2 (3 lookups for 2 calls).
	if m.Hits != 0 || m.Misses != 2 {
		t.Errorf("memo stats = %d hits / %d misses, want 0/2 after abandoned-owner promotion", m.Hits, m.Misses)
	}
}

// TestRunAllCtxCancel: cancelling a batch abandons the unstarted tail with
// the context error and reports it deterministically.
func TestRunAllCtxCancel(t *testing.T) {
	t.Parallel()
	se := NewSession(50_000, 600_000)
	var specs []Spec
	for _, k := range KernelNames() {
		specs = append(specs, Spec{Kernel: k, Predictor: "none"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := se.RunAllCtx(ctx, specs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancelled RunAllCtx took %v to return", d)
	}
}

// TestMemoStatsConcurrent hammers hits, misses and MemoStats readers from
// many goroutines (run with -race) and checks the accounting invariant:
// hits+misses equals the number of lookups, and misses covers each distinct
// spec at least once.
func TestMemoStatsConcurrent(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(1_000, 4_000))
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "art", Predictor: "none"},
	}
	const goroutines = 12
	const rounds = 4
	var lookups atomic.Uint64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent MemoStats polling while runs are in flight
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m := se.MemoStats()
				if m.Hits+m.Misses > goroutines*rounds*uint64(len(specs)) {
					t.Errorf("MemoStats over-counted: hits=%d misses=%d", m.Hits, m.Misses)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range specs {
					if _, err := se.Run(specs[(g+i)%len(specs)]); err != nil {
						t.Error(err)
						return
					}
					lookups.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := se.MemoStats()
	if st.Hits+st.Misses != lookups.Load() {
		t.Errorf("hits(%d)+misses(%d) != %d lookups", st.Hits, st.Misses, lookups.Load())
	}
	if st.Misses != uint64(len(specs)) {
		t.Errorf("%d misses, want exactly %d (one per distinct spec)", st.Misses, len(specs))
	}
}
