package harness

import (
	"time"

	"repro/internal/obs"
)

// Observer is the session's connection to the observability layer: metric
// instruments registered on an obs.Registry plus an optional run-lifecycle
// tracer. Attach one with Session.Observe; any number of sessions may share
// one Observer (its instruments are concurrency-safe), and a nil Observer
// (or a nil field inside one) is always a no-op, so instrumented paths need
// no conditionals.
//
// Metric semantics (DESIGN.md §10): the lookup counters count *served*
// lookups by the tier that answered them — a memo "hit" is a lookup
// answered from (or coalesced onto) an in-process entry, a memo "miss" is
// a lookup that took ownership and had to go below the memo; store and
// snapshot hits/misses count probes of those tiers by owners. They are
// deliberately not identical to MemoStats, which counts lookups at entry
// (a waiter cancelled mid-join counts there but produced nothing here).
type Observer struct {
	tracer *obs.Tracer

	memoHits, memoMisses *obs.Counter
	storeHits, storeMisses *obs.Counter
	snapHits, snapMisses *obs.Counter
	simulations            *obs.Counter
	warmupSeconds          *obs.Histogram
	measureSeconds         *obs.Histogram
	queueWaitSeconds       *obs.Histogram
}

// NewObserver builds an observer registering the session's instruments on
// reg (nil: trace-only) and emitting run spans to tracer (nil: metrics-only).
func NewObserver(reg *obs.Registry, tracer *obs.Tracer) *Observer {
	o := &Observer{tracer: tracer}
	if reg != nil {
		lookups := reg.CounterVec("repro_cache_lookups_total",
			"Simulation-result cache lookups by tier (memo, store, snapshot) and outcome.",
			"tier", "result")
		o.memoHits = lookups.With(obs.TierMemo, "hit")
		o.memoMisses = lookups.With(obs.TierMemo, "miss")
		o.storeHits = lookups.With(obs.TierStore, "hit")
		o.storeMisses = lookups.With(obs.TierStore, "miss")
		o.snapHits = lookups.With(obs.TierSnapshot, "hit")
		o.snapMisses = lookups.With(obs.TierSnapshot, "miss")
		o.simulations = reg.Counter("repro_simulations_total",
			"Simulations actually executed (memo misses not served by the persistent store).")
		phase := reg.HistogramVec("repro_simulate_phase_seconds",
			"Wall time of one simulation phase; warmup is near-zero when restored from a snapshot.",
			nil, "phase")
		o.warmupSeconds = phase.With("warmup")
		o.measureSeconds = phase.With("measure")
		o.queueWaitSeconds = reg.Histogram("repro_batch_queue_wait_seconds",
			"Delay from batch submission (RunAll) to a worker picking the spec up.", nil)
	}
	return o
}

// Observe attaches o to the session (nil detaches). Instruments are
// concurrency-safe, so attaching mid-flight only means earlier lookups went
// uncounted.
func (se *Session) Observe(o *Observer) { se.obs.Store(o) }

// observer returns the attached observer, nil when none.
func (se *Session) observer() *Observer {
	return se.obs.Load()
}

func (o *Observer) countMemo(hit bool, n uint64) {
	if o == nil {
		return
	}
	c := o.memoMisses
	if hit {
		c = o.memoHits
	}
	if c != nil {
		c.Add(n)
	}
}

func (o *Observer) countStore(hit bool) {
	if o == nil {
		return
	}
	c := o.storeMisses
	if hit {
		c = o.storeHits
	}
	if c != nil {
		c.Inc()
	}
}

func (o *Observer) countSnapshot(hit bool) {
	if o == nil {
		return
	}
	c := o.snapMisses
	if hit {
		c = o.snapHits
	}
	if c != nil {
		c.Inc()
	}
}

func (o *Observer) countSimulation() {
	if o != nil && o.simulations != nil {
		o.simulations.Inc()
	}
}

func (o *Observer) observeQueueWait(d time.Duration) {
	if o != nil && o.queueWaitSeconds != nil {
		o.queueWaitSeconds.Observe(d.Seconds())
	}
}

// beginRun opens one run's span-set: called when a lookup takes ownership
// of a memo entry (a memo miss). start is the lookup's entry time; the
// admit span covers everything between entering RunCtx and winning
// ownership (including waits on abandoned entries).
func (o *Observer) beginRun(spec Spec, start time.Time) *runRec {
	if o == nil {
		return nil
	}
	o.countMemo(false, 1)
	rt := &runRec{o: o, spec: spec.Identity()}
	if o.tracer != nil {
		rt.id = o.tracer.Begin()
		rt.span(obs.StageAdmit, obs.TierMemo, "miss", time.Since(start), nil)
	}
	return rt
}

// runRec carries one run's trace identity through the simulate path. All
// methods are nil-receiver-safe: an unobserved session passes nil all the
// way down.
type runRec struct {
	o    *Observer
	id   uint64
	spec string
}

// countSimulation bumps the executed-simulations counter for this run.
func (rt *runRec) countSimulation() {
	if rt != nil {
		rt.o.countSimulation()
	}
}

// span emits one trace span (no-op without a tracer).
func (rt *runRec) span(stage, tier, outcome string, d time.Duration, err error) {
	if rt == nil || rt.o == nil || rt.o.tracer == nil {
		return
	}
	s := obs.Span{
		Run:     rt.id,
		Spec:    rt.spec,
		Stage:   stage,
		Tier:    tier,
		Outcome: outcome,
		DurNS:   d.Nanoseconds(),
	}
	if err != nil {
		s.Err = err.Error()
	}
	rt.o.tracer.Emit(s)
}

// lookup emits one cache-tier lookup span.
func (rt *runRec) lookup(stage, tier string, hit bool, d time.Duration) {
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	rt.span(stage, tier, outcome, d, nil)
}

// phase records one simulate phase: the phase histogram plus a span whose
// tier says what served it (simulated, or snapshot for a restored warmup).
func (rt *runRec) phase(stage, tier string, d time.Duration) {
	if rt == nil {
		return
	}
	if o := rt.o; o != nil {
		switch stage {
		case obs.StageWarmup:
			if o.warmupSeconds != nil {
				o.warmupSeconds.Observe(d.Seconds())
			}
		case obs.StageMeasure:
			if o.measureSeconds != nil {
				o.measureSeconds.Observe(d.Seconds())
			}
		}
	}
	rt.span(stage, tier, "", d, nil)
}

// Identity returns the spec's canonical human-readable identity string —
// the same rendering the persistent store records and trace spans carry.
func (s Spec) Identity() string { return s.storeID() }
