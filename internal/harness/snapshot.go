package harness

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// SnapshotCache holds warm-state pipeline snapshots (pipeline.State) keyed
// like the persistent record store minus the measure window: canonical spec
// identity, kernel fingerprint, warmup window, simulator version — the
// warmup-affecting configuration and nothing else, since the state captured
// at the warmup boundary does not depend on how long the measurement that
// follows runs. One cache can be shared by any number of sessions (it is
// safe for concurrent use): a sweep pass that re-runs specs another session
// already warmed — same or different measure window — skips straight to the
// measurement phase, byte-identically (DESIGN.md §9).
//
// Entries are LRU-evicted beyond a fixed count — a snapshot of the default
// machine is about 1.5 MB (dominated by the L2 tag/LRU arrays), so the
// default cap of 64 bounds the cache near 100 MB.
type SnapshotCache struct {
	mu      sync.Mutex
	max     int
	entries map[store.Key]*list.Element
	lru     *list.List // front = most recently used; element value is *snapEntry

	hits, misses uint64
}

type snapEntry struct {
	key store.Key
	st  *pipeline.State
}

// DefaultSnapshotCap is the entry cap used when NewSnapshotCache is given a
// non-positive limit.
const DefaultSnapshotCap = 64

// NewSnapshotCache builds a cache holding at most maxEntries snapshots
// (<= 0 selects DefaultSnapshotCap).
func NewSnapshotCache(maxEntries int) *SnapshotCache {
	if maxEntries <= 0 {
		maxEntries = DefaultSnapshotCap
	}
	return &SnapshotCache{
		max:     maxEntries,
		entries: make(map[store.Key]*list.Element),
		lru:     list.New(),
	}
}

// get returns the snapshot for key, or nil. The returned State is shared
// and read-only by contract (pipeline.Restore only reads it).
func (c *SnapshotCache) get(key store.Key) *pipeline.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*snapEntry).st
}

// put inserts (or refreshes) a snapshot, evicting the least recently used
// entry beyond the cap.
func (c *SnapshotCache) put(key store.Key, st *pipeline.State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*snapEntry).st = st
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&snapEntry{key: key, st: st})
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*snapEntry).key)
	}
}

// Len reports the number of cached snapshots.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SnapshotStats is a point-in-time view of cache effectiveness.
type SnapshotStats struct {
	Hits    uint64 `json:"hits"`    // simulations resumed from a cached warm state
	Misses  uint64 `json:"misses"`  // simulations that had to execute warmup
	Entries int    `json:"entries"` // snapshots currently held
}

// Stats reports cache effectiveness.
func (c *SnapshotCache) Stats() SnapshotStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SnapshotStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}

// UseSnapshots attaches a warm-state snapshot cache: simulations restore a
// cached warmup state when one exists, and publish their own warmup state
// after completing cleanly — a run that errors or is cancelled never
// snapshots, mirroring the memo and store invariants. Attach before
// concurrent use; nil detaches.
func (se *Session) UseSnapshots(c *SnapshotCache) {
	se.mu.Lock()
	se.snaps = c
	se.mu.Unlock()
}

// Snapshots returns the attached snapshot cache (nil when none).
func (se *Session) Snapshots() *SnapshotCache {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.snaps
}

// runWithSnapshots is the simulate loop with warm-state reuse. On a cache
// hit the sim starts from the restored warmup boundary; on a miss it runs
// warmup itself, captures the boundary state, and commits it to the cache
// only after the whole run succeeds. Both paths produce the exact machine
// state the straight Run(Warmup, Measure) would: Restore reinstates every
// bit of mutable state, Advance targets absolute commit counts, and pausing
// between cycles is state-neutral.
func (se *Session) runWithSnapshots(ctx context.Context, snaps *SnapshotCache, spec Spec, sim *pipeline.Sim, traceLen uint64, rt *runRec) (*pipeline.Stats, error) {
	key, ok := se.snapKey(spec)
	if !ok {
		// Unkeyable (unknown kernel): fall through to the plain paths, which
		// surface the real error.
		if rt == nil && ctx.Done() == nil {
			return sim.Run(se.Warmup, se.Measure)
		}
		return se.runCancellable(ctx, sim, traceLen, rt)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := se.Warmup + se.Measure
	if total > traceLen {
		total = traceLen
	}

	t0 := time.Now()
	snap := snaps.get(key)
	hit := snap != nil
	rt.lookup(obs.StageSnapshot, obs.TierSnapshot, hit, time.Since(t0))
	if rt != nil {
		rt.o.countSnapshot(hit)
	}
	if hit {
		t0 = time.Now()
		sim.Restore(snap)
		// A restored warmup: the phase happened, it just cost a Restore.
		rt.phase(obs.StageWarmup, obs.TierSnapshot, time.Since(t0))
		t0 = time.Now()
		st, err := se.advanceChunked(ctx, sim, total)
		if err != nil {
			return nil, err
		}
		rt.phase(obs.StageMeasure, obs.TierSimulated, time.Since(t0))
		return st, nil
	}

	t0 = time.Now()
	st, err := sim.Run(se.Warmup, 0)
	if err != nil {
		return nil, err
	}
	newSnap := sim.Snapshot()
	rt.phase(obs.StageWarmup, obs.TierSimulated, time.Since(t0))
	t0 = time.Now()
	if st.Committed < total {
		if st, err = se.advanceChunked(ctx, sim, total); err != nil {
			return nil, err // cancelled or deadlocked: never snapshot
		}
	}
	rt.phase(obs.StageMeasure, obs.TierSimulated, time.Since(t0))
	snaps.put(key, newSnap)
	return st, nil
}

// advanceChunked drives sim to the absolute commit target. Without a
// cancellable context it advances in one piece; otherwise it checks ctx
// every cancelChunk µops, exactly like runCancellable's measurement loop.
func (se *Session) advanceChunked(ctx context.Context, sim *pipeline.Sim, total uint64) (*pipeline.Stats, error) {
	st := sim.Stats()
	if ctx.Done() == nil {
		if st.Committed >= total {
			return sim.Advance(0) // refresh the cycle stamp
		}
		return sim.Advance(total - st.Committed)
	}
	if st.Committed >= total {
		return sim.Advance(0)
	}
	for st.Committed < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := total - st.Committed
		if n > cancelChunk {
			n = cancelChunk
		}
		var err error
		if st, err = sim.Advance(n); err != nil {
			return nil, err
		}
	}
	return st, nil
}
