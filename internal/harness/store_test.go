package harness

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/store"
)

// storeSession opens a store over dir with the given version token and
// attaches it to a fresh session — the moral equivalent of a new process
// pointed at a shared -store-dir.
func storeSession(t *testing.T, dir, version string, warmup, measure uint64) *Session {
	t.Helper()
	st, err := store.Open(dir, version)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(warmup, measure)
	se.UseStore(st)
	return se
}

// TestStoreDifferentialByteIdentical is the PR's acceptance differential:
// records served from the persistent store must be byte-identical — in both
// JSON and CSV renderings — to records from a fresh simulation. pipeline.Stats
// is all exported integer counters, so a JSON round-trip through the store
// loses nothing; this test pins that property end to end.
func TestStoreDifferentialByteIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(5_000, 60_000)
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "vtage", Counters: FPC},
		{Kernel: "art", Predictor: "stride", Counters: BaselineCounters},
		{Kernel: "mcf", Predictor: "vtage", Counters: FPC, Width: 4, MaxHist: 128},
	}

	render := func(se *Session) (string, string) {
		t.Helper()
		recs, err := se.Records(specs, 2)
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteJSON(&j, recs); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, recs); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}

	cold := storeSession(t, dir, StoreVersion, warmup, measure)
	coldJSON, coldCSV := render(cold)
	if m := cold.MemoStats(); m.StoreHits != 0 || m.Misses == 0 {
		t.Fatalf("cold session over an empty store: %d store hits / %d misses, want 0 / >0", m.StoreHits, m.Misses)
	}

	warm := storeSession(t, dir, StoreVersion, warmup, measure)
	warmJSON, warmCSV := render(warm)
	m := warm.MemoStats()
	if m.Misses != 0 {
		t.Errorf("warm session simulated %d specs over a populated store, want 0", m.Misses)
	}
	if m.StoreHits == 0 {
		t.Error("warm session reported no store hits")
	}
	if warmJSON != coldJSON {
		t.Errorf("store-loaded JSON differs from fresh simulation:\n--- cold\n%s--- warm\n%s", coldJSON, warmJSON)
	}
	if warmCSV != coldCSV {
		t.Errorf("store-loaded CSV differs from fresh simulation:\n--- cold\n%s--- warm\n%s", coldCSV, warmCSV)
	}
}

// TestStoreCancelledRunNotPersisted: a cancelled simulation must leave the
// store untouched — the persistent twin of "cancellation never memoized". A
// partial result written to disk would be served as truth to every future
// process.
func TestStoreCancelledRunNotPersisted(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	se := storeSession(t, dir, StoreVersion, 50_000, 1_500_000)
	spec := Spec{Kernel: "gzip", Predictor: "none"}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := se.RunCtx(ctx, spec)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it get into the simulate loop
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunCtx never returned after cancel")
	}
	if n, err := se.Store().Len(); err != nil || n != 0 {
		t.Errorf("cancelled run persisted %d store entries (err %v), want 0", n, err)
	}
}

// TestStoreVersionBumpInvalidates: reopening the same directory under a newer
// version token must treat every old entry as a miss and re-simulate — stale
// results are never served across a simulator change.
func TestStoreVersionBumpInvalidates(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(1_000, 4_000)
	spec := Spec{Kernel: "gzip", Predictor: "lvp"}

	v1 := storeSession(t, dir, StoreVersion, warmup, measure)
	if _, err := v1.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n, err := v1.Store().Len(); err != nil || n == 0 {
		t.Fatalf("first run persisted %d entries (err %v), want >0", n, err)
	}

	v2 := storeSession(t, dir, StoreVersion+"-next", warmup, measure)
	if _, err := v2.Run(spec); err != nil {
		t.Fatal(err)
	}
	m := v2.MemoStats()
	if m.StoreHits != 0 || m.Misses == 0 {
		t.Errorf("version-bumped session saw %d store hits / %d misses, want 0 / >0", m.StoreHits, m.Misses)
	}
}

// TestStoreWindowChangeInvalidates: the measurement windows are part of the
// key — a session with different warmup/measure must not be served another
// session's records.
func TestStoreWindowChangeInvalidates(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := Spec{Kernel: "gzip", Predictor: "lvp"}

	a := storeSession(t, dir, StoreVersion, 1_000, 4_000)
	ra, err := a.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	b := storeSession(t, dir, StoreVersion, 1_000, 8_000)
	rb, err := b.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := b.MemoStats(); m.StoreHits != 0 {
		t.Errorf("different-window session got %d store hits, want 0", m.StoreHits)
	}
	if ra.Stats == rb.Stats {
		t.Error("different measurement windows produced identical stats — window keying untestable")
	}
}

// TestStoreCorruptionResimulatesAndHeals: a corrupted entry must degrade to a
// miss through the session (never an error, never a wrong answer), and the
// write-behind after the re-simulation must restore the entry so the process
// after next is warm again.
func TestStoreCorruptionResimulatesAndHeals(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(1_000, 4_000)
	spec := Spec{Kernel: "art", Predictor: "lvp"}

	first := storeSession(t, dir, StoreVersion, warmup, measure)
	want, err := first.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	key, _, ok := first.storeKey(spec.Canonical())
	if !ok {
		t.Fatal("storeKey failed for a valid spec")
	}
	if err := first.Store().Tamper(key, func(b []byte) []byte { return b[:len(b)/2] }); err != nil {
		t.Fatal(err)
	}

	second := storeSession(t, dir, StoreVersion, warmup, measure)
	got, err := second.Run(spec)
	if err != nil {
		t.Fatalf("run over a corrupted store failed: %v", err)
	}
	m := second.MemoStats()
	if m.StoreHits != 0 || m.Misses != 1 {
		t.Errorf("corrupted entry: %d store hits / %d misses, want 0/1", m.StoreHits, m.Misses)
	}
	if m.Store.LoadErrors == 0 {
		t.Error("corruption was not surfaced in store load-error counters")
	}
	if got.Stats != want.Stats {
		t.Errorf("re-simulation after corruption diverged:\n%+v\n%+v", got.Stats, want.Stats)
	}

	// The write-behind healed the entry: a third session is warm again.
	third := storeSession(t, dir, StoreVersion, warmup, measure)
	if _, err := third.Run(spec); err != nil {
		t.Fatal(err)
	}
	if m := third.MemoStats(); m.StoreHits != 1 || m.Misses != 0 {
		t.Errorf("healed entry: %d store hits / %d misses, want 1/0", m.StoreHits, m.Misses)
	}
}

// TestStoreFig4SecondProcessZeroMisses is the PR's warm-start acceptance
// criterion at full batch scale: a first session runs the complete Fig. 4
// matrix (baselines included) into a store; a second cold session over the
// same directory must complete the identical batch with zero simulation
// misses and records identical to the first pass.
func TestStoreFig4SecondProcessZeroMisses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(1_000, 4_000)
	specs := Fig4Specs()

	first := storeSession(t, dir, StoreVersion, warmup, measure)
	want, err := first.Records(specs, 4)
	if err != nil {
		t.Fatal(err)
	}

	second := storeSession(t, dir, StoreVersion, warmup, measure)
	got, err := second.Records(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := second.MemoStats()
	if m.Misses != 0 {
		t.Errorf("second process over a populated store simulated %d specs, want 0 (store hits %d)", m.Misses, m.StoreHits)
	}
	if m.StoreHits == 0 {
		t.Error("second process reported no store hits")
	}
	if len(got) != len(want) {
		t.Fatalf("record counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("record %d differs between cold and warm pass:\n%+v\n%+v", i, want[i], got[i])
		}
	}
}

// TestStoreConcurrentSessionsRaceSameSpecs is the cross-session sharing
// guarantee a fleet over one -store-dir depends on (DESIGN.md §12): two
// sessions — the moral equivalent of two shard processes — racing the
// identical spec set over one directory degrade to at-most-duplicate
// simulation, never corruption. Every record from both sessions must be
// byte-identical to an isolated reference, combined misses are bounded by
// one full pass per session, and a third session afterwards is fully warm
// with no load errors (nothing on disk was torn by the race).
func TestStoreConcurrentSessionsRaceSameSpecs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	warmup, measure := testWindows(1_000, 4_000)
	specs := Fig4Specs()[:40]

	ref := NewSession(warmup, measure)
	want, err := ref.Records(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := new(bytes.Buffer)
	if err := WriteJSON(wantJSON, want); err != nil {
		t.Fatal(err)
	}

	a := storeSession(t, dir, StoreVersion, warmup, measure)
	b := storeSession(t, dir, StoreVersion, warmup, measure)
	type result struct {
		recs []Record
		err  error
	}
	results := make(chan result, 2)
	for _, se := range []*Session{a, b} {
		go func(se *Session) {
			recs, err := se.Records(specs, 4)
			results <- result{recs, err}
		}(se)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		got := new(bytes.Buffer)
		if err := WriteJSON(got, r.recs); err != nil {
			t.Fatal(err)
		}
		if got.String() != wantJSON.String() {
			t.Errorf("racing session's records differ from the isolated reference:\n--- got\n%s--- want\n%s",
				got.String(), wantJSON.String())
		}
	}

	// At-most-duplicate: each session simulates a spec at most once (its own
	// memo guarantees that), so the combined misses can never exceed two
	// full passes — and the race must not have produced load errors.
	ma, mb := a.MemoStats(), b.MemoStats()
	tasks := uint64(len(ref.sortedSpecs())) // distinct specs incl. baselines
	if total := ma.Misses + mb.Misses; total > 2*tasks {
		t.Errorf("racing sessions simulated %d tasks over %d distinct specs — more than duplicate work", total, tasks)
	}
	if ma.Misses+mb.Misses < tasks {
		t.Errorf("racing sessions simulated only %d of %d distinct specs", ma.Misses+mb.Misses, tasks)
	}
	for _, m := range []MemoStats{ma, mb} {
		if m.Store.LoadErrors != 0 {
			t.Errorf("race produced %d store load errors — torn reads", m.Store.LoadErrors)
		}
	}

	// A fresh third session over the raced directory is fully warm: nothing
	// was corrupted, everything was persisted.
	third := storeSession(t, dir, StoreVersion, warmup, measure)
	got, err := third.Records(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := third.MemoStats()
	if m.Misses != 0 {
		t.Errorf("third session simulated %d specs over the raced store, want 0", m.Misses)
	}
	if m.Store.LoadErrors != 0 {
		t.Errorf("third session hit %d load errors — the race tore an entry", m.Store.LoadErrors)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("record %d from the raced store differs from the reference:\n%+v\n%+v", i, want[i], got[i])
		}
	}
}
