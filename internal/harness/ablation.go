package harness

// This file holds the ablations beyond the paper: the Section 5/7
// sensitivity arguments (confidence strength, history length, loads-only
// scope, machine width) rendered as experiments. Every sweep point is an
// extended Spec — a memoizable, schedulable value — so these experiments
// batch across the worker pool and render from warm memo entries exactly
// like the figures; nothing here simulates outside the scheduler.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// ablationKernels is a small representative set: a large-gain kernel, a
// context-predictable one, a drift-heavy one, and a VP-neutral one.
var ablationKernels = []string{"art", "gcc", "gobmk", "milc"}

// ablLoadsKernels is the kernel set of the loads-only ablation: large-gain,
// drift-heavy, FP, pointer-chasing, context, and memory-bound examples.
var ablLoadsKernels = []string{"art", "parser", "gamess", "vortex", "hmmer", "lbm"}

// ablWidthKernels is the kernel set of the width-sensitivity ablation.
var ablWidthKernels = []string{"art", "parser", "gamess", "gcc"}

// fpcPoint is one confidence strength in the FPC ablation.
type fpcPoint struct {
	name string
	vec  core.FPCVector
}

// fpcSweep spans deterministic 3-bit counters up to an 8-bit-equivalent FPC.
// ExpectedStreak: 7, 33, 65, 129, 257.
var fpcSweep = []fpcPoint{
	{"3-bit", core.FPCBaseline},
	{"5-bit eq", core.FPCVector{0, 2, 2, 2, 2, 3, 3}},
	{"6-bit eq", core.FPCReissue},
	{"7-bit eq", core.FPCCommit},
	{"8-bit eq", core.FPCVector{0, 5, 5, 5, 5, 6, 6}},
}

// fpcSpec is one FPC-sweep point: VTAGE under squash-at-commit with an
// explicit probability vector. Canonical() folds the 3-bit point onto the
// plain baseline-counter VTAGE spec the figures already memoize.
func fpcSpec(kernel string, vec core.FPCVector) Spec {
	return Spec{
		Kernel:    kernel,
		Predictor: "vtage",
		Recovery:  pipeline.SquashAtCommit,
		FPCVec:    FormatFPCVector(vec),
	}.Canonical()
}

// ablFPCSpecs declares the full spec set of the FPC-strength sweep.
func ablFPCSpecs() []Spec {
	var out []Spec
	for _, k := range ablationKernels {
		out = append(out, Spec{Kernel: k, Predictor: "none"})
		for _, p := range fpcSweep {
			out = append(out, fpcSpec(k, p.vec))
		}
	}
	return out
}

// runAblFPC sweeps the FPC probability vector on VTAGE under squash-at-commit
// recovery: the Section 5 trade-off between coverage (weak counters) and
// accuracy (strong counters), and the basis for the paper's suggestion of
// adapting probabilities at run time.
func runAblFPC(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE under squash-at-commit, varying confidence strength\n")
	fmt.Fprintf(w, "%-8s", "kernel")
	for _, p := range fpcSweep {
		fmt.Fprintf(w, " %22s", p.name)
	}
	fmt.Fprintf(w, "\n%-8s", "")
	for range fpcSweep {
		fmt.Fprintf(w, " %8s %6s %6s", "speedup", "cov%", "acc%")
	}
	fmt.Fprintln(w)
	for _, k := range ablationKernels {
		fmt.Fprintf(w, "%-8s", k)
		for _, p := range fpcSweep {
			spec := fpcSpec(k, p.vec)
			sp, err := se.SpeedupCtx(ctx, spec)
			if err != nil {
				return err
			}
			r, err := se.RunCtx(ctx, spec)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.3f %6.1f %6.2f",
				sp, 100*r.Stats.Coverage(), 100*r.Stats.Accuracy())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(stronger counters: less coverage, higher accuracy, fewer squashes)")
	return nil
}

// runExtPredictors compares the extension predictors the paper references
// but does not chart: the Per-Path Stride predictor (footnote 4: "on par
// with 2D-Str") and gDiff [27] (composable global-stride prediction).
func runExtPredictors(ctx context.Context, se *Session, w io.Writer) error {
	preds := []string{"stride", "ps", "vtage", "gdiff"}
	if err := speedupMatrix(ctx, se, w, preds, FPC, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper footnote 4: PS performance was on par with 2D-Str)")
	return nil
}

// maxHists are the VTAGE history lengths of the history ablation; 64 is the
// paper's pick, so its spec canonicalizes onto the figures' VTAGE entry.
var maxHists = []int{8, 64, 256}

// histSpec is one history-length point: VTAGE with FPC, squash at commit.
func histSpec(kernel string, maxHist int) Spec {
	return Spec{
		Kernel:    kernel,
		Predictor: "vtage",
		Counters:  FPC,
		Recovery:  pipeline.SquashAtCommit,
		MaxHist:   maxHist,
	}.Canonical()
}

// ablHistSpecs declares the full spec set of the history-length sweep.
func ablHistSpecs() []Spec {
	var out []Spec
	for _, k := range ablationKernels {
		out = append(out, Spec{Kernel: k, Predictor: "none"})
		for _, mh := range maxHists {
			out = append(out, histSpec(k, mh))
		}
	}
	return out
}

// runAblHist sweeps VTAGE's maximum history length: too short loses
// control-flow context, too long dilutes capacity across components and
// slows learning — the paper picked 2..64 as "a good tradeoff".
func runAblHist(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE with FPC and squash-at-commit, varying max history length\n")
	fmt.Fprintf(w, "%-8s", "kernel")
	for _, mh := range maxHists {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("max=%d", mh))
	}
	fmt.Fprintln(w, "   (speedup)")
	for _, k := range ablationKernels {
		fmt.Fprintf(w, "%-8s", k)
		for _, mh := range maxHists {
			sp, err := se.SpeedupCtx(ctx, histSpec(k, mh))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.3f", sp)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runProfile renders the workload characterization table: the evidence for
// the Table 3 substitution argument (which predictor family each kernel is
// built to exercise). It is trace-driven (no simulations), so it declares
// no specs; the context check between kernels keeps it cancellable.
func runProfile(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintln(w, stats.Header())
	for _, k := range KernelNames() {
		tr, err := se.trace(ctx, k)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, stats.Compute(tr).Row(k))
	}
	fmt.Fprintln(w, "(lastv%/stride% bound what last-value and stride predictors can cover)")
	return nil
}

// loadsSpec is the loads-only half of the scope ablation; allUopsSpec the
// paper's whole-instruction deployment.
func loadsSpec(kernel string, loadsOnly bool) Spec {
	return Spec{
		Kernel:    kernel,
		Predictor: "vtage+stride",
		Counters:  FPC,
		Recovery:  pipeline.SquashAtCommit,
		LoadsOnly: loadsOnly,
	}
}

// ablLoadsSpecs declares the full spec set of the prediction-scope ablation.
func ablLoadsSpecs() []Spec {
	var out []Spec
	for _, k := range ablLoadsKernels {
		out = append(out,
			Spec{Kernel: k, Predictor: "none"},
			loadsSpec(k, false),
			loadsSpec(k, true))
	}
	return out
}

// runAblLoads compares predicting every register-producing µop (the paper's
// deployment) with classic load-value prediction only: loads carry the
// longest latencies, but the paper's whole-instruction scope also breaks
// ALU/FP dependence chains.
func runAblLoads(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE-2DStr hybrid with FPC, squash-at-commit: all µops vs loads only\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "kernel", "all uops", "loads only")
	for _, k := range ablLoadsKernels {
		all, err := se.SpeedupCtx(ctx, loadsSpec(k, false))
		if err != nil {
			return err
		}
		loads, err := se.SpeedupCtx(ctx, loadsSpec(k, true))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %12.3f %12.3f\n", k, all, loads)
	}
	fmt.Fprintln(w, "(the paper predicts every register-producing µop, §7.2)")
	return nil
}

// widthPoints are the machine widths for the width-sensitivity ablation;
// 8 is Table 2's machine, so its specs canonicalize onto the figures'.
var widthPoints = []int{4, 8}

// widthSpec is one width point: VTAGE-2DStr with FPC on a w-wide machine.
// Its speedup divides by the width-matched baseline (Spec.Baseline keeps
// Width).
func widthSpec(kernel string, width int) Spec {
	return Spec{
		Kernel:    kernel,
		Predictor: "vtage+stride",
		Counters:  FPC,
		Recovery:  pipeline.SquashAtCommit,
		Width:     width,
	}.Canonical()
}

// ablWidthSpecs declares the full spec set of the width ablation: each
// width's predictor spec plus the width-matched baseline it divides by.
func ablWidthSpecs() []Spec {
	var out []Spec
	for _, k := range ablWidthKernels {
		for _, wd := range widthPoints {
			sp := widthSpec(k, wd)
			out = append(out, sp.Baseline(), sp)
		}
	}
	return out
}

// runAblWidth shows the paper's premise — value prediction is a lever for
// wide machines: on a narrower pipeline the same predictor buys less,
// because fewer independent µops are waiting on the broken dependences.
func runAblWidth(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE-2DStr with FPC, squash-at-commit: speedup vs machine width\n")
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, wd := range widthPoints {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d-wide", wd))
	}
	fmt.Fprintln(w)
	for _, k := range ablWidthKernels {
		fmt.Fprintf(w, "%-10s", k)
		for _, wd := range widthPoints {
			sp, err := se.SpeedupCtx(ctx, widthSpec(k, wd))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", sp)
		}
		fmt.Fprintln(w)
	}
	return nil
}
