package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ghist"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// RunCustom simulates kernel under recovery rec with a caller-built
// predictor — the hook for ablations that vary predictor parameters outside
// the named configurations. Results are not memoized.
func (se *Session) RunCustom(kernel string, rec pipeline.RecoveryMode, mk func(h *ghist.History) core.Predictor) (*pipeline.Stats, error) {
	tr, err := se.trace(context.Background(), kernel)
	if err != nil {
		return nil, err
	}
	h := &ghist.History{}
	var pred core.Predictor
	if mk != nil {
		pred = mk(h)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Recovery = rec
	sim := pipeline.New(cfg, tr, pred, h)
	return sim.Run(se.Warmup, se.Measure)
}

// ablationKernels is a small representative set: a large-gain kernel, a
// context-predictable one, a drift-heavy one, and a VP-neutral one.
var ablationKernels = []string{"art", "gcc", "gobmk", "milc"}

// ablLoadsKernels is the kernel set of the loads-only ablation: large-gain,
// drift-heavy, FP, pointer-chasing, context, and memory-bound examples.
var ablLoadsKernels = []string{"art", "parser", "gamess", "vortex", "hmmer", "lbm"}

// fpcPoint is one confidence strength in the FPC ablation.
type fpcPoint struct {
	name string
	vec  core.FPCVector
}

// fpcSweep spans deterministic 3-bit counters up to an 8-bit-equivalent FPC.
// ExpectedStreak: 7, 33, 65, 129, 257.
var fpcSweep = []fpcPoint{
	{"3-bit", core.FPCBaseline},
	{"5-bit eq", core.FPCVector{0, 2, 2, 2, 2, 3, 3}},
	{"6-bit eq", core.FPCReissue},
	{"7-bit eq", core.FPCCommit},
	{"8-bit eq", core.FPCVector{0, 5, 5, 5, 5, 6, 6}},
}

// runAblFPC sweeps the FPC probability vector on VTAGE under squash-at-commit
// recovery: the Section 5 trade-off between coverage (weak counters) and
// accuracy (strong counters), and the basis for the paper's suggestion of
// adapting probabilities at run time.
func runAblFPC(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE under squash-at-commit, varying confidence strength\n")
	fmt.Fprintf(w, "%-8s", "kernel")
	for _, p := range fpcSweep {
		fmt.Fprintf(w, " %22s", p.name)
	}
	fmt.Fprintf(w, "\n%-8s", "")
	for range fpcSweep {
		fmt.Fprintf(w, " %8s %6s %6s", "speedup", "cov%", "acc%")
	}
	fmt.Fprintln(w)
	for _, k := range ablationKernels {
		base, err := se.Run(Spec{Kernel: k, Predictor: "none"})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", k)
		for _, p := range fpcSweep {
			vec := p.vec
			st, err := se.RunCustom(k, pipeline.SquashAtCommit, func(h *ghist.History) core.Predictor {
				return core.NewVTAGE(core.DefaultVTAGEConfig(vec), h)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.3f %6.1f %6.2f",
				st.IPC()/base.Stats.IPC(), 100*st.Coverage(), 100*st.Accuracy())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(stronger counters: less coverage, higher accuracy, fewer squashes)")
	return nil
}

// runExtPredictors compares the extension predictors the paper references
// but does not chart: the Per-Path Stride predictor (footnote 4: "on par
// with 2D-Str") and gDiff [27] (composable global-stride prediction).
func runExtPredictors(se *Session, w io.Writer) error {
	preds := []string{"stride", "ps", "vtage", "gdiff"}
	if err := speedupMatrix(se, w, preds, FPC, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper footnote 4: PS performance was on par with 2D-Str)")
	return nil
}

// runAblHist sweeps VTAGE's maximum history length: too short loses
// control-flow context, too long dilutes capacity across components and
// slows learning — the paper picked 2..64 as "a good tradeoff".
func runAblHist(se *Session, w io.Writer) error {
	maxHists := []int{8, 64, 256}
	fmt.Fprintf(w, "VTAGE with FPC and squash-at-commit, varying max history length\n")
	fmt.Fprintf(w, "%-8s", "kernel")
	for _, mh := range maxHists {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("max=%d", mh))
	}
	fmt.Fprintln(w, "   (speedup)")
	for _, k := range ablationKernels {
		base, err := se.Run(Spec{Kernel: k, Predictor: "none"})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", k)
		for _, mh := range maxHists {
			mh := mh
			st, err := se.RunCustom(k, pipeline.SquashAtCommit, func(h *ghist.History) core.Predictor {
				cfg := core.DefaultVTAGEConfig(core.FPCCommit)
				cfg.MaxHist = mh
				return core.NewVTAGE(cfg, h)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.3f", st.IPC()/base.Stats.IPC())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runProfile renders the workload characterization table: the evidence for
// the Table 3 substitution argument (which predictor family each kernel is
// built to exercise).
func runProfile(se *Session, w io.Writer) error {
	fmt.Fprintln(w, stats.Header())
	for _, k := range KernelNames() {
		tr, err := se.trace(context.Background(), k)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, stats.Compute(tr).Row(k))
	}
	fmt.Fprintln(w, "(lastv%/stride% bound what last-value and stride predictors can cover)")
	return nil
}

// runAblLoads compares predicting every register-producing µop (the paper's
// deployment) with classic load-value prediction only: loads carry the
// longest latencies, but the paper's whole-instruction scope also breaks
// ALU/FP dependence chains.
func runAblLoads(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE-2DStr hybrid with FPC, squash-at-commit: all µops vs loads only\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "kernel", "all uops", "loads only")
	for _, k := range ablLoadsKernels {
		base, err := se.Run(Spec{Kernel: k, Predictor: "none"})
		if err != nil {
			return err
		}
		all, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage+stride", Counters: FPC})
		if err != nil {
			return err
		}
		tr, err := se.trace(context.Background(), k)
		if err != nil {
			return err
		}
		h := &ghist.History{}
		pred, err := NewPredictor("vtage+stride", FPC.Vector(pipeline.SquashAtCommit), h)
		if err != nil {
			return err
		}
		cfg := pipeline.DefaultConfig()
		cfg.PredictLoadsOnly = true
		st, err := pipeline.New(cfg, tr, pred, h).Run(se.Warmup, se.Measure)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %12.3f %12.3f\n", k, all, st.IPC()/base.Stats.IPC())
	}
	fmt.Fprintln(w, "(the paper predicts every register-producing µop, §7.2)")
	return nil
}

// widthPoints are the machine widths for the width-sensitivity ablation.
var widthPoints = []int{4, 8}

// runAblWidth shows the paper's premise — value prediction is a lever for
// wide machines: on a narrower pipeline the same predictor buys less,
// because fewer independent µops are waiting on the broken dependences.
func runAblWidth(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "VTAGE-2DStr with FPC, squash-at-commit: speedup vs machine width\n")
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, wd := range widthPoints {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d-wide", wd))
	}
	fmt.Fprintln(w)
	for _, k := range []string{"art", "parser", "gamess", "gcc"} {
		fmt.Fprintf(w, "%-10s", k)
		for _, wd := range widthPoints {
			tr, err := se.trace(context.Background(), k)
			if err != nil {
				return err
			}
			mkCfg := func() pipeline.Config {
				cfg := pipeline.DefaultConfig()
				cfg.FetchWidth = wd
				cfg.DispatchWidth = wd
				cfg.IssueWidth = wd
				cfg.RetireWidth = wd
				return cfg
			}
			bst, err := pipeline.New(mkCfg(), tr, nil, nil).Run(se.Warmup, se.Measure)
			if err != nil {
				return err
			}
			h := &ghist.History{}
			pred, err := NewPredictor("vtage+stride", FPC.Vector(pipeline.SquashAtCommit), h)
			if err != nil {
				return err
			}
			pst, err := pipeline.New(mkCfg(), tr, pred, h).Run(se.Warmup, se.Measure)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", pst.IPC()/bst.IPC())
		}
		fmt.Fprintln(w)
	}
	return nil
}
