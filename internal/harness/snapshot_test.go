package harness

import (
	"context"

	"repro/internal/pipeline"
	"testing"
	"time"
)

// snapTestSpecs crosses a few predictor families and both recovery modes —
// enough to exercise every Snapshot/Restore implementation through the
// session path.
func snapTestSpecs() []Spec {
	return []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp", Counters: FPC},
		{Kernel: "gzip", Predictor: "vtage+stride", Counters: FPC, Recovery: pipeline.SelectiveReissue},
		{Kernel: "mcf", Predictor: "fcm", Counters: BaselineCounters},
		{Kernel: "mcf", Predictor: "stride", Counters: FPC, Recovery: pipeline.SelectiveReissue},
	}
}

// TestSnapshotResumeByteIdentical runs every spec three ways — no cache,
// cache-miss (publishes), cache-hit (restores) — and requires bit-equal
// stats from all three.
func TestSnapshotResumeByteIdentical(t *testing.T) {
	w, m := uint64(5_000), uint64(15_000)
	cache := NewSnapshotCache(0)

	for _, spec := range snapTestSpecs() {
		plain := NewSession(w, m)
		ref, err := plain.Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}

		cold := NewSession(w, m)
		cold.UseSnapshots(cache)
		miss, err := cold.Run(spec)
		if err != nil {
			t.Fatalf("%v: cold with cache: %v", spec, err)
		}
		if miss.Stats != ref.Stats {
			t.Errorf("%v: cache-miss run differs from plain run:\n%+v\nvs\n%+v",
				spec, miss.Stats, ref.Stats)
		}

		warm := NewSession(w, m)
		warm.UseSnapshots(cache)
		hit, err := warm.Run(spec)
		if err != nil {
			t.Fatalf("%v: warm with cache: %v", spec, err)
		}
		if hit.Stats != ref.Stats {
			t.Errorf("%v: snapshot-resumed run differs from plain run:\n%+v\nvs\n%+v",
				spec, hit.Stats, ref.Stats)
		}
	}

	st := cache.Stats()
	if st.Entries != len(snapTestSpecs()) {
		t.Errorf("cache holds %d snapshots, want %d", st.Entries, len(snapTestSpecs()))
	}
	if st.Hits == 0 {
		t.Error("warm pass recorded no snapshot hits")
	}
	if stats := (func() MemoStats {
		se := NewSession(w, m)
		se.UseSnapshots(cache)
		if _, err := se.Run(snapTestSpecs()[0]); err != nil {
			t.Fatal(err)
		}
		return se.MemoStats()
	})(); stats.Snapshots.Entries == 0 {
		t.Errorf("MemoStats does not surface snapshot cache stats: %+v", stats)
	}
}

// TestSnapshotSharedAcrossMeasureWindows pins the cache key's scope: the
// snapshot captures the warmup boundary, so a session that measures longer
// (or shorter) over the same warmup must reuse it — and still match a plain
// straight-through run of its own windows bit for bit. A different warmup
// changes the captured state and must miss.
func TestSnapshotSharedAcrossMeasureWindows(t *testing.T) {
	const w = uint64(5_000)
	spec := Spec{Kernel: "gzip", Predictor: "vtage", Counters: FPC}
	cache := NewSnapshotCache(0)

	warmer := NewSession(w, 10_000)
	warmer.UseSnapshots(cache)
	if _, err := warmer.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("warming pass: %+v, want one miss, one entry", st)
	}

	ref, err := NewSession(w, 25_000).Run(spec) // plain, no cache
	if err != nil {
		t.Fatal(err)
	}
	resweep := NewSession(w, 25_000) // same warmup, different measure
	resweep.UseSnapshots(cache)
	got, err := resweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("re-sweep with a different measure window missed the snapshot: %+v", st)
	}
	if got.Stats != ref.Stats {
		t.Errorf("snapshot-resumed re-sweep differs from plain run:\n%+v\nvs\n%+v",
			got.Stats, ref.Stats)
	}

	other := NewSession(2*w, 10_000) // different warmup: different warm state
	other.UseSnapshots(cache)
	if _, err := other.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("different warmup reused a foreign warm state: %+v", st)
	}
}

// TestSnapshotResumeCancellable drives the snapshot paths through RunCtx
// (the chunked cancellable loop) and checks they match the plain result.
func TestSnapshotResumeCancellable(t *testing.T) {
	w, m := uint64(5_000), uint64(15_000)
	spec := Spec{Kernel: "gzip", Predictor: "vtage", Counters: FPC}

	ref, err := NewSession(w, m).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSnapshotCache(0)
	for pass := 0; pass < 2; pass++ { // miss then hit
		se := NewSession(w, m)
		se.UseSnapshots(cache)
		ctx, cancel := context.WithCancel(context.Background())
		res, err := se.RunCtx(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if res.Stats != ref.Stats {
			t.Errorf("pass %d: cancellable snapshot run differs from plain run", pass)
		}
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("want exactly 1 hit and 1 miss, got %+v", cache.Stats())
	}
}

// TestCancelledRunNeverSnapshots mirrors the memo and store invariants: a
// run abandoned by cancellation must not publish its warmup state.
func TestCancelledRunNeverSnapshots(t *testing.T) {
	se := NewSession(1_000, 2_000_000) // long measure so cancel lands mid-run
	cache := NewSnapshotCache(0)
	se.UseSnapshots(cache)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := se.RunCtx(ctx, Spec{Kernel: "gzip", Predictor: "vtage", Counters: FPC})
	if err == nil {
		t.Skip("run completed before cancellation on this machine")
	}
	if !IsContextErr(err) {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := cache.Len(); n != 0 {
		t.Errorf("cancelled run published %d snapshot(s); want none", n)
	}
}

// TestSnapshotCacheLRUEviction checks the entry cap holds and evicts the
// least recently used snapshot.
func TestSnapshotCacheLRUEviction(t *testing.T) {
	cache := NewSnapshotCache(2)
	se := NewSession(2_000, 4_000)
	se.UseSnapshots(cache)
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp", Counters: FPC},
		{Kernel: "gzip", Predictor: "stride", Counters: FPC},
	}
	for _, sp := range specs {
		if _, err := se.Run(sp); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, cap is 2", n)
	}
	// The first spec was evicted: running it in a fresh session misses.
	se2 := NewSession(2_000, 4_000)
	se2.UseSnapshots(cache)
	before := cache.Stats().Hits
	if _, err := se2.Run(specs[0]); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits != before {
		t.Error("evicted snapshot unexpectedly hit")
	}
}
