package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/regfile"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(se *Session, w io.Writer) error
}

// Experiments returns every experiment in DESIGN.md §5 order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: predictor layout summary", runTable1},
		{"table2", "Table 2: simulator configuration", runTable2},
		{"table3", "Table 3: benchmarks (synthetic equivalents)", runTable3},
		{"fig1", "Fig. 1 motivation: back-to-back VP-eligible fetches", runFig1},
		{"fig3", "Fig. 3: speedup upper bound with a perfect predictor", runFig3},
		{"fig4", "Fig. 4: speedup, squash at commit (a: baseline counters, b: FPC)", runFig4},
		{"fig5", "Fig. 5: speedup, selective reissue (a: baseline counters, b: FPC)", runFig5},
		{"fig6", "Fig. 6: VTAGE speedup and coverage, baseline vs FPC", runFig6},
		{"fig7", "Fig. 7: hybrid predictors, speedup and coverage (FPC, squash)", runFig7},
		{"acc", "Accuracy: baseline counters vs FPC (Section 8.2)", runAccuracy},
		{"sec3", "Section 3.1.1: recovery cost model", runSec3},
		{"sec4", "Section 4: register file port cost model", runSec4},
		{"abl-fpc", "Ablation (beyond the paper): FPC vector strength sweep", runAblFPC},
		{"abl-hist", "Ablation (beyond the paper): VTAGE max history length", runAblHist},
		{"ext-pred", "Extension predictors (paper refs): PS and gDiff vs 2D-Str and VTAGE", runExtPredictors},
		{"profile", "Workload characterization: mix, footprint, value locality", runProfile},
		{"abl-loads", "Ablation (beyond the paper): all-uop VP vs loads-only VP", runAblLoads},
		{"abl-width", "Ablation (beyond the paper): VP gain vs machine width", runAblWidth},
	}
}

// ExperimentByID returns the named experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(se *Session, w io.Writer) error {
	_, err := io.WriteString(w, core.FormatTable1())
	return err
}

func runTable2(se *Session, w io.Writer) error {
	_, err := io.WriteString(w, pipeline.DefaultConfig().FormatTable2())
	return err
}

func runTable3(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-22s %s\n", "Kernel", "Stands in for", "Class")
	for _, k := range kernels.All() {
		class := "INT"
		if k.FP {
			class = "FP"
		}
		fmt.Fprintf(w, "%-10s %-22s %s\n", k.Name, k.Paper, class)
	}
	return nil
}

func runFig1(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %10s\n", "kernel", "b2b frac")
	var fracs []float64
	for _, k := range KernelNames() {
		r, err := se.Run(Spec{Kernel: k, Predictor: "none"})
		if err != nil {
			return err
		}
		f := r.Stats.B2BFraction()
		fracs = append(fracs, f)
		fmt.Fprintf(w, "%-10s %9.1f%%\n", k, 100*f)
	}
	fmt.Fprintf(w, "%-10s %9.1f%%\n", "amean", 100*AMean(fracs))
	fmt.Fprintf(w, "%-10s %9.1f%%\n", "max", 100*Max(fracs))
	fmt.Fprintf(w, "(paper: 3.4%% amean, 15.3%% max on SPEC)\n")
	return nil
}

func runFig3(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %8s\n", "kernel", "speedup")
	var sp []float64
	for _, k := range KernelNames() {
		s, err := se.Speedup(Spec{Kernel: k, Predictor: "oracle"})
		if err != nil {
			return err
		}
		sp = append(sp, s)
		fmt.Fprintf(w, "%-10s %8.2f\n", k, s)
	}
	fmt.Fprintf(w, "%-10s %8.2f\n", "amean", AMean(sp))
	fmt.Fprintf(w, "%-10s %8.2f\n", "max", Max(sp))
	fmt.Fprintf(w, "(paper: up to 3.3x with an oracle predictor)\n")
	return nil
}

// speedupMatrix renders one speedup table: kernels x predictors.
func speedupMatrix(se *Session, w io.Writer, preds []string, c Counters, rec pipeline.RecoveryMode) error {
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range preds {
		fmt.Fprintf(w, " %12s", DisplayName(p))
	}
	fmt.Fprintln(w)
	means := make([]float64, len(preds))
	for _, k := range KernelNames() {
		fmt.Fprintf(w, "%-10s", k)
		for i, p := range preds {
			s, err := se.Speedup(Spec{Kernel: k, Predictor: p, Counters: c, Recovery: rec})
			if err != nil {
				return err
			}
			means[i] += s
			fmt.Fprintf(w, " %12.3f", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "amean")
	for i := range preds {
		fmt.Fprintf(w, " %12.3f", means[i]/float64(len(KernelNames())))
	}
	fmt.Fprintln(w)
	return nil
}

var singlePredictors = []string{"lvp", "stride", "fcm", "vtage"}

func runFig4(se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) baseline 3-bit counters, squash at commit")
	if err := speedupMatrix(se, w, singlePredictors, BaselineCounters, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) FPC, squash at commit")
	return speedupMatrix(se, w, singlePredictors, FPC, pipeline.SquashAtCommit)
}

func runFig5(se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) baseline 3-bit counters, selective reissue")
	if err := speedupMatrix(se, w, singlePredictors, BaselineCounters, pipeline.SelectiveReissue); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) FPC, selective reissue")
	return speedupMatrix(se, w, singlePredictors, FPC, pipeline.SelectiveReissue)
}

func runFig6(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %14s %10s %14s %10s\n",
		"kernel", "speedup(base)", "cov(base)", "speedup(FPC)", "cov(FPC)")
	for _, k := range KernelNames() {
		sb, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage", Counters: BaselineCounters})
		if err != nil {
			return err
		}
		rb, err := se.Run(Spec{Kernel: k, Predictor: "vtage", Counters: BaselineCounters})
		if err != nil {
			return err
		}
		sf, err := se.Speedup(Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
		if err != nil {
			return err
		}
		rf, err := se.Run(Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %14.3f %9.1f%% %14.3f %9.1f%%\n",
			k, sb, 100*rb.Stats.Coverage(), sf, 100*rf.Stats.Coverage())
	}
	return nil
}

var hybridPredictors = []string{"stride", "fcm", "vtage", "fcm+stride", "vtage+stride"}

func runFig7(se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) speedup (FPC, squash at commit)")
	if err := speedupMatrix(se, w, hybridPredictors, FPC, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) coverage")
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range hybridPredictors {
		fmt.Fprintf(w, " %12s", DisplayName(p))
	}
	fmt.Fprintln(w)
	for _, k := range KernelNames() {
		fmt.Fprintf(w, "%-10s", k)
		for _, p := range hybridPredictors {
			r, err := se.Run(Spec{Kernel: k, Predictor: p, Counters: FPC})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %11.1f%%", 100*r.Stats.Coverage())
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runAccuracy(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range singlePredictors {
		fmt.Fprintf(w, " %10s(b) %10s(F)", DisplayName(p), DisplayName(p))
	}
	fmt.Fprintln(w)
	worstBase, worstFPC := 1.0, 1.0
	for _, k := range KernelNames() {
		fmt.Fprintf(w, "%-10s", k)
		for _, p := range singlePredictors {
			rb, err := se.Run(Spec{Kernel: k, Predictor: p, Counters: BaselineCounters})
			if err != nil {
				return err
			}
			rf, err := se.Run(Spec{Kernel: k, Predictor: p, Counters: FPC})
			if err != nil {
				return err
			}
			ab, af := rb.Stats.Accuracy(), rf.Stats.Accuracy()
			if rb.Stats.Used > 100 && ab < worstBase {
				worstBase = ab
			}
			if rf.Stats.Used > 100 && af < worstFPC {
				worstFPC = af
			}
			fmt.Fprintf(w, " %12.4f %12.4f", ab, af)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "worst accuracy: baseline=%.4f FPC=%.4f (paper: baseline 0.94..1.0, FPC > 0.997)\n",
		worstBase, worstFPC)
	return nil
}

func runSec3(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "Recovery cost model, cycles gained per kilo-instruction (Trecov = Pvalue x Nmisp)\n")
	fmt.Fprintf(w, "%-22s %8s %28s %30s\n", "mechanism", "penalty",
		"ex.1: 40% cov, 95% acc", "ex.2: 30% cov, 99.75% acc")
	for _, sc := range analytic.PaperScenarios() {
		fmt.Fprintf(w, "%-22s %8.0f %28.0f %30.0f\n",
			sc.Name, sc.Penalty, analytic.Example1(sc.Penalty), analytic.Example2(sc.Penalty))
	}
	fmt.Fprintf(w, "(paper: +64/-86/-286 then +88/+83/+76)\n")
	return nil
}

func runSec4(se *Session, w io.Writer) error {
	fmt.Fprintf(w, "Register file area model (Zyuban-Kogge, area ~ (R+W)(R+2W)), issue width W=8\n")
	fmt.Fprintf(w, "%-30s %6s %6s %10s\n", "design", "R", "W", "area (W^2)")
	for _, sc := range regfile.Section4Scenarios(8) {
		fmt.Fprintf(w, "%-30s %6d %6d %10.1f\n", sc.Name, sc.ReadPorts, sc.WritePorts, sc.AreaUnits)
	}
	fmt.Fprintf(w, "(paper: 12W^2 baseline, 24W^2 naive VP, 35W^2/2 with W/2 buffered ports)\n")
	return nil
}

// RunAll executes every experiment into w, with headers.
func RunAll(se *Session, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(se, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w, strings.Repeat("-", 70))
	}
	return nil
}
