package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/regfile"
)

// Experiment regenerates one table or figure of the paper. Specs, when
// non-nil, pre-declares every simulation the renderer will request, letting
// the engine batch-schedule the whole figure (ablation sweeps included —
// every sweep point is an extended Spec) across the worker pool before Run
// touches the session; Run then only reads warm memo entries. Static tables
// and the trace-driven profile declare nothing. Run takes the caller's
// context: renderers pass it to every session read, so an experiment is
// cancellable even mid-simulation when a memo entry turns out cold.
type Experiment struct {
	ID    string
	Title string
	Specs func() []Spec
	Run   func(ctx context.Context, se *Session, w io.Writer) error
}

// Experiments returns every experiment in DESIGN.md §5 order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: predictor layout summary", nil, runTable1},
		{"table2", "Table 2: simulator configuration", nil, runTable2},
		{"table3", "Table 3: benchmarks (synthetic equivalents)", nil, runTable3},
		{"fig1", "Fig. 1 motivation: back-to-back VP-eligible fetches", fig1Specs, runFig1},
		{"fig3", "Fig. 3: speedup upper bound with a perfect predictor", fig3Specs, runFig3},
		{"fig4", "Fig. 4: speedup, squash at commit (a: baseline counters, b: FPC)", Fig4Specs, runFig4},
		{"fig5", "Fig. 5: speedup, selective reissue (a: baseline counters, b: FPC)", fig5Specs, runFig5},
		{"fig6", "Fig. 6: VTAGE speedup and coverage, baseline vs FPC", fig6Specs, runFig6},
		{"fig7", "Fig. 7: hybrid predictors, speedup and coverage (FPC, squash)", fig7Specs, runFig7},
		{"acc", "Accuracy: baseline counters vs FPC (Section 8.2)", accSpecs, runAccuracy},
		{"sec3", "Section 3.1.1: recovery cost model", nil, runSec3},
		{"sec4", "Section 4: register file port cost model", nil, runSec4},
		{"abl-fpc", "Ablation (beyond the paper): FPC vector strength sweep", ablFPCSpecs, runAblFPC},
		{"abl-hist", "Ablation (beyond the paper): VTAGE max history length", ablHistSpecs, runAblHist},
		{"ext-pred", "Extension predictors (paper refs): PS and gDiff vs 2D-Str and VTAGE", extPredSpecs, runExtPredictors},
		{"profile", "Workload characterization: mix, footprint, value locality", nil, runProfile},
		{"abl-loads", "Ablation (beyond the paper): all-uop VP vs loads-only VP", ablLoadsSpecs, runAblLoads},
		{"abl-width", "Ablation (beyond the paper): VP gain vs machine width", ablWidthSpecs, runAblWidth},
	}
}

// matrixSpecs declares the spec set of one speedup matrix: every kernel
// under every predictor, plus the per-kernel baselines the speedups divide
// by. Duplicates across matrices are deduplicated by the session memo.
func matrixSpecs(preds []string, c Counters, rec pipeline.RecoveryMode) []Spec {
	var out []Spec
	for _, k := range KernelNames() {
		out = append(out, Spec{Kernel: k, Predictor: "none", Recovery: rec})
		for _, p := range preds {
			out = append(out, Spec{Kernel: k, Predictor: p, Counters: c, Recovery: rec})
		}
	}
	return out
}

func fig1Specs() []Spec {
	return matrixSpecs(nil, BaselineCounters, pipeline.SquashAtCommit)
}

func fig3Specs() []Spec {
	return matrixSpecs([]string{"oracle"}, BaselineCounters, pipeline.SquashAtCommit)
}

// Fig4Specs is exported as the canonical mid-size batch for scheduler tests
// and benchmarks: 19 kernels x (4 predictors x 2 counter schemes + baseline).
func Fig4Specs() []Spec {
	out := matrixSpecs(singlePredictors, BaselineCounters, pipeline.SquashAtCommit)
	return append(out, matrixSpecs(singlePredictors, FPC, pipeline.SquashAtCommit)...)
}

func fig5Specs() []Spec {
	out := matrixSpecs(singlePredictors, BaselineCounters, pipeline.SelectiveReissue)
	return append(out, matrixSpecs(singlePredictors, FPC, pipeline.SelectiveReissue)...)
}

func fig6Specs() []Spec {
	var out []Spec
	for _, k := range KernelNames() {
		out = append(out,
			Spec{Kernel: k, Predictor: "none"},
			Spec{Kernel: k, Predictor: "vtage", Counters: BaselineCounters},
			Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
	}
	return out
}

func fig7Specs() []Spec {
	return matrixSpecs(hybridPredictors, FPC, pipeline.SquashAtCommit)
}

func accSpecs() []Spec {
	var out []Spec
	for _, k := range KernelNames() {
		for _, p := range singlePredictors {
			out = append(out,
				Spec{Kernel: k, Predictor: p, Counters: BaselineCounters},
				Spec{Kernel: k, Predictor: p, Counters: FPC})
		}
	}
	return out
}

func extPredSpecs() []Spec {
	return matrixSpecs([]string{"stride", "ps", "vtage", "gdiff"}, FPC, pipeline.SquashAtCommit)
}

// ExperimentByID returns the named experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(ctx context.Context, se *Session, w io.Writer) error {
	_, err := io.WriteString(w, core.FormatTable1())
	return err
}

func runTable2(ctx context.Context, se *Session, w io.Writer) error {
	_, err := io.WriteString(w, pipeline.DefaultConfig().FormatTable2())
	return err
}

func runTable3(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-22s %s\n", "Kernel", "Stands in for", "Class")
	for _, k := range kernels.All() {
		class := "INT"
		if k.FP {
			class = "FP"
		}
		fmt.Fprintf(w, "%-10s %-22s %s\n", k.Name, k.Paper, class)
	}
	return nil
}

func runFig1(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %10s\n", "kernel", "b2b frac")
	var fracs []float64
	for _, k := range KernelNames() {
		r, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: "none"})
		if err != nil {
			return err
		}
		f := r.Stats.B2BFraction()
		fracs = append(fracs, f)
		fmt.Fprintf(w, "%-10s %9.1f%%\n", k, 100*f)
	}
	fmt.Fprintf(w, "%-10s %9.1f%%\n", "amean", 100*AMean(fracs))
	fmt.Fprintf(w, "%-10s %9.1f%%\n", "max", 100*Max(fracs))
	fmt.Fprintf(w, "(paper: 3.4%% amean, 15.3%% max on SPEC)\n")
	return nil
}

func runFig3(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %8s\n", "kernel", "speedup")
	var sp []float64
	for _, k := range KernelNames() {
		s, err := se.SpeedupCtx(ctx, Spec{Kernel: k, Predictor: "oracle"})
		if err != nil {
			return err
		}
		sp = append(sp, s)
		fmt.Fprintf(w, "%-10s %8.2f\n", k, s)
	}
	fmt.Fprintf(w, "%-10s %8.2f\n", "amean", AMean(sp))
	fmt.Fprintf(w, "%-10s %8.2f\n", "max", Max(sp))
	fmt.Fprintf(w, "(paper: up to 3.3x with an oracle predictor)\n")
	return nil
}

// speedupMatrix renders one speedup table over every kernel.
func speedupMatrix(ctx context.Context, se *Session, w io.Writer, preds []string, c Counters, rec pipeline.RecoveryMode) error {
	return speedupMatrixOver(ctx, se, w, KernelNames(), preds, c, rec)
}

// speedupMatrixOver renders one speedup table: kernels x predictors.
func speedupMatrixOver(ctx context.Context, se *Session, w io.Writer, kernels, preds []string, c Counters, rec pipeline.RecoveryMode) error {
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range preds {
		fmt.Fprintf(w, " %12s", DisplayName(p))
	}
	fmt.Fprintln(w)
	means := make([]float64, len(preds))
	for _, k := range kernels {
		fmt.Fprintf(w, "%-10s", k)
		for i, p := range preds {
			s, err := se.SpeedupCtx(ctx, Spec{Kernel: k, Predictor: p, Counters: c, Recovery: rec})
			if err != nil {
				return err
			}
			means[i] += s
			fmt.Fprintf(w, " %12.3f", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "amean")
	for i := range preds {
		fmt.Fprintf(w, " %12.3f", means[i]/float64(len(kernels)))
	}
	fmt.Fprintln(w)
	return nil
}

var singlePredictors = []string{"lvp", "stride", "fcm", "vtage"}

func runFig4(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) baseline 3-bit counters, squash at commit")
	if err := speedupMatrix(ctx, se, w, singlePredictors, BaselineCounters, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) FPC, squash at commit")
	return speedupMatrix(ctx, se, w, singlePredictors, FPC, pipeline.SquashAtCommit)
}

func runFig5(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) baseline 3-bit counters, selective reissue")
	if err := speedupMatrix(ctx, se, w, singlePredictors, BaselineCounters, pipeline.SelectiveReissue); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) FPC, selective reissue")
	return speedupMatrix(ctx, se, w, singlePredictors, FPC, pipeline.SelectiveReissue)
}

func runFig6(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %14s %10s %14s %10s\n",
		"kernel", "speedup(base)", "cov(base)", "speedup(FPC)", "cov(FPC)")
	for _, k := range KernelNames() {
		sb, err := se.SpeedupCtx(ctx, Spec{Kernel: k, Predictor: "vtage", Counters: BaselineCounters})
		if err != nil {
			return err
		}
		rb, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: "vtage", Counters: BaselineCounters})
		if err != nil {
			return err
		}
		sf, err := se.SpeedupCtx(ctx, Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
		if err != nil {
			return err
		}
		rf, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: "vtage", Counters: FPC})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %14.3f %9.1f%% %14.3f %9.1f%%\n",
			k, sb, 100*rb.Stats.Coverage(), sf, 100*rf.Stats.Coverage())
	}
	return nil
}

var hybridPredictors = []string{"stride", "fcm", "vtage", "fcm+stride", "vtage+stride"}

func runFig7(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintln(w, "(a) speedup (FPC, squash at commit)")
	if err := speedupMatrix(ctx, se, w, hybridPredictors, FPC, pipeline.SquashAtCommit); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) coverage")
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range hybridPredictors {
		fmt.Fprintf(w, " %12s", DisplayName(p))
	}
	fmt.Fprintln(w)
	for _, k := range KernelNames() {
		fmt.Fprintf(w, "%-10s", k)
		for _, p := range hybridPredictors {
			r, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: p, Counters: FPC})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %11.1f%%", 100*r.Stats.Coverage())
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runAccuracy(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "%-10s", "kernel")
	for _, p := range singlePredictors {
		fmt.Fprintf(w, " %10s(b) %10s(F)", DisplayName(p), DisplayName(p))
	}
	fmt.Fprintln(w)
	worstBase, worstFPC := 1.0, 1.0
	for _, k := range KernelNames() {
		fmt.Fprintf(w, "%-10s", k)
		for _, p := range singlePredictors {
			rb, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: p, Counters: BaselineCounters})
			if err != nil {
				return err
			}
			rf, err := se.RunCtx(ctx, Spec{Kernel: k, Predictor: p, Counters: FPC})
			if err != nil {
				return err
			}
			ab, af := rb.Stats.Accuracy(), rf.Stats.Accuracy()
			if rb.Stats.Used > 100 && ab < worstBase {
				worstBase = ab
			}
			if rf.Stats.Used > 100 && af < worstFPC {
				worstFPC = af
			}
			fmt.Fprintf(w, " %12.4f %12.4f", ab, af)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "worst accuracy: baseline=%.4f FPC=%.4f (paper: baseline 0.94..1.0, FPC > 0.997)\n",
		worstBase, worstFPC)
	return nil
}

func runSec3(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "Recovery cost model, cycles gained per kilo-instruction (Trecov = Pvalue x Nmisp)\n")
	fmt.Fprintf(w, "%-22s %8s %28s %30s\n", "mechanism", "penalty",
		"ex.1: 40% cov, 95% acc", "ex.2: 30% cov, 99.75% acc")
	for _, sc := range analytic.PaperScenarios() {
		fmt.Fprintf(w, "%-22s %8.0f %28.0f %30.0f\n",
			sc.Name, sc.Penalty, analytic.Example1(sc.Penalty), analytic.Example2(sc.Penalty))
	}
	fmt.Fprintf(w, "(paper: +64/-86/-286 then +88/+83/+76)\n")
	return nil
}

func runSec4(ctx context.Context, se *Session, w io.Writer) error {
	fmt.Fprintf(w, "Register file area model (Zyuban-Kogge, area ~ (R+W)(R+2W)), issue width W=8\n")
	fmt.Fprintf(w, "%-30s %6s %6s %10s\n", "design", "R", "W", "area (W^2)")
	for _, sc := range regfile.Section4Scenarios(8) {
		fmt.Fprintf(w, "%-30s %6d %6d %10.1f\n", sc.Name, sc.ReadPorts, sc.WritePorts, sc.AreaUnits)
	}
	fmt.Fprintf(w, "(paper: 12W^2 baseline, 24W^2 naive VP, 35W^2/2 with W/2 buffered ports)\n")
	return nil
}

// Render batch-schedules an experiment's spec set across workers and writes
// it to w in the requested format: "text" (the paper-style table), "json",
// or "csv" (the structured Record layer). Experiments without a declared
// spec set are text-only. ctx cancels the batch and the render: unstarted
// specs are abandoned, in-flight simulations stop at their next
// cancellation checkpoint, and Render returns the context error.
func Render(ctx context.Context, se *Session, e Experiment, format string, workers int, w io.Writer) error {
	switch format {
	case "", "text":
		if err := se.Prepare(ctx, e, workers); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := e.Run(ctx, se, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		return nil
	case "json", "csv":
		if e.Specs == nil {
			return fmt.Errorf("%s: no structured results (text-only experiment)", e.ID)
		}
		recs, err := se.RecordsCtx(ctx, e.Specs(), workers)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if format == "json" {
			return WriteJSON(w, recs)
		}
		return WriteCSV(w, recs)
	default:
		return fmt.Errorf("harness: unknown format %q (have text, json, csv)", format)
	}
}
