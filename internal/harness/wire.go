package harness

import (
	"encoding/json"

	"repro/internal/wirejson"
)

// Record's hand-rolled JSON codec. A warm batch-sync frame is thousands of
// records whose encode and decode both sat on encoding/json's reflection —
// the single largest cost of the batched wire path (DESIGN.md §12.3). The
// appender emits exactly the bytes the reflection encoder emitted (field
// order, float formatting, no omitted fields), so every byte-identity
// guarantee — differential tests, stable WriteJSON output — is preserved;
// wire_test pins the equivalence. The parser consumes from a shared
// wirejson.Scanner so a whole frame parses in one pass; callers fall back
// to encoding/json on any input it does not recognize, keeping semantics
// (unknown fields ignored, escapes handled) identical.

// AppendRecordJSON appends r's JSON object to b, byte-compatible with the
// reflection encoder. ok is false when a float is NaN or Inf — the caller
// should defer to encoding/json for its standard UnsupportedValueError.
func AppendRecordJSON(b []byte, r Record) (out []byte, ok bool) {
	appendStr := func(key, v string) {
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = wirejson.AppendString(b, v)
		b = append(b, ',')
	}
	floatsOK := true
	appendFloat := func(key string, v float64) {
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		var fok bool
		b, fok = wirejson.AppendFloat(b, v)
		floatsOK = floatsOK && fok
		b = append(b, ',')
	}
	appendUint := func(key string, v uint64) {
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = appendUint64(b, v)
		b = append(b, ',')
	}
	b = append(b, '{')
	appendStr("kernel", r.Kernel)
	appendStr("predictor", r.Predictor)
	appendStr("counters", r.Counters)
	appendStr("recovery", r.Recovery)
	b = append(b, `"width":`...)
	b = appendInt64(b, int64(r.Width))
	b = append(b, `,"loads_only":`...)
	b = appendBool(b, r.LoadsOnly)
	b = append(b, `,"max_hist":`...)
	b = appendInt64(b, int64(r.MaxHist))
	b = append(b, ',')
	appendStr("fpc_vector", r.FPCVector)
	appendFloat("ipc", r.IPC)
	appendFloat("speedup", r.Speedup)
	appendFloat("coverage", r.Coverage)
	appendFloat("accuracy", r.Accuracy)
	appendUint("committed", r.Committed)
	b = append(b, `"cycles":`...)
	b = appendInt64(b, r.Cycles)
	b = append(b, ',')
	appendUint("squash_value", r.SquashValue)
	appendUint("squash_branch", r.SquashBranch)
	appendUint("squash_memorder", r.SquashMemOrder)
	appendUint("reissued_uops", r.ReissuedUops)
	appendFloat("branch_mpki", r.BranchMPKI)
	appendFloat("b2b_fraction", r.B2BFraction)
	b[len(b)-1] = '}'
	return b, floatsOK
}

// MarshalJSON implements json.Marshaler byte-compatibly with the default
// reflection encoding of the struct.
func (r Record) MarshalJSON() ([]byte, error) {
	b, ok := AppendRecordJSON(make([]byte, 0, 360), r)
	if !ok {
		type plain Record
		return json.Marshal(plain(r))
	}
	return b, nil
}

func appendInt64(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	return appendUint64(b, uint64(v))
}

func appendUint64(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// UnmarshalJSON implements json.Unmarshaler: the fast scanner first, then
// encoding/json (which ignores unknown fields and decodes escapes) whenever
// the input is anything but a plain record object.
func (r *Record) UnmarshalJSON(b []byte) error {
	s := wirejson.NewScanner(b)
	if rec, ok := ParseRecord(s); ok && s.End() {
		*r = rec
		return nil
	}
	type plain Record
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*r = Record(p)
	return nil
}

// ParseRecord consumes one record object from s — the exact shape
// AppendRecordJSON (or the reflection encoder) emits, in any key order,
// with arbitrary whitespace. Anything else — escapes, unknown keys,
// non-object input — reports false; the caller falls back to encoding/json
// on whatever input s wraps.
func ParseRecord(s *wirejson.Scanner) (Record, bool) {
	var rec Record
	if !s.Byte('{') {
		return rec, false
	}
	if s.Byte('}') {
		return rec, true
	}
	for {
		key, ok := s.String()
		if !ok || !s.Byte(':') {
			return rec, false
		}
		switch key {
		case "kernel":
			rec.Kernel, ok = s.String()
		case "predictor":
			rec.Predictor, ok = s.String()
		case "counters":
			rec.Counters, ok = s.String()
		case "recovery":
			rec.Recovery, ok = s.String()
		case "width":
			rec.Width, ok = s.Int()
		case "loads_only":
			rec.LoadsOnly, ok = s.Bool()
		case "max_hist":
			rec.MaxHist, ok = s.Int()
		case "fpc_vector":
			rec.FPCVector, ok = s.String()
		case "ipc":
			rec.IPC, ok = s.Float()
		case "speedup":
			rec.Speedup, ok = s.Float()
		case "coverage":
			rec.Coverage, ok = s.Float()
		case "accuracy":
			rec.Accuracy, ok = s.Float()
		case "committed":
			rec.Committed, ok = s.Uint64()
		case "cycles":
			rec.Cycles, ok = s.Int64()
		case "squash_value":
			rec.SquashValue, ok = s.Uint64()
		case "squash_branch":
			rec.SquashBranch, ok = s.Uint64()
		case "squash_memorder":
			rec.SquashMemOrder, ok = s.Uint64()
		case "reissued_uops":
			rec.ReissuedUops, ok = s.Uint64()
		case "branch_mpki":
			rec.BranchMPKI, ok = s.Float()
		case "b2b_fraction":
			rec.B2BFraction, ok = s.Float()
		default:
			return rec, false
		}
		if !ok {
			return rec, false
		}
		if s.Byte(',') {
			continue
		}
		return rec, s.Byte('}')
	}
}
