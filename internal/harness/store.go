package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// StoreVersion is the simulator version token persisted entries are keyed
// and verified under. Bump it whenever pipeline, core, or kernels semantics
// change — anything that could make an old record differ from what the
// current simulator would produce — and every stale entry silently becomes
// a miss instead of a wrong answer.
const StoreVersion = "vpsim-v1"

// UseStore attaches a persistent record store under the session memo:
// reads-through on a memo miss before simulating, writes-behind after a
// successful simulation. Cancellations and errors are never persisted
// (mirroring the memo's own "cancellation never memoized" invariant).
// Attach before concurrent use; a nil store detaches.
func (se *Session) UseStore(st *store.Store) {
	se.mu.Lock()
	se.store = st
	se.mu.Unlock()
}

// Store returns the attached store (nil when none).
func (se *Session) Store() *store.Store {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.store
}

// storeID renders the canonical spec as the entry's recorded identity — the
// human-readable string the key is derived from, re-verified on load so a
// key collision degrades to a miss.
func (s Spec) storeID() string {
	return fmt.Sprintf("%s/%s/counters=%d/recovery=%d/width=%d/loads_only=%t/max_hist=%d/fpc_vec=%s",
		s.Kernel, s.Predictor, s.Counters, s.Recovery, s.Width, s.LoadsOnly, s.MaxHist, s.FPCVec)
}

// workloadFingerprint hashes the workload's encoded program, so a kernel
// whose generated code changes invalidates its entries even without a
// version bump. A prog: reference carries its fingerprint in the reference
// itself (it IS the content hash), which keeps store keys for uploaded
// programs stable across processes — a fresh daemon can serve a warm store
// entry for a program before anyone re-registers it. Builtin fingerprints
// are cached per kernel for the session's lifetime.
func (se *Session) workloadFingerprint(workload string) (string, bool) {
	if IsProgramRef(workload) {
		if checkProgramRef(workload) != nil {
			return "", false
		}
		return strings.TrimPrefix(workload, progRefPrefix), true
	}
	se.mu.Lock()
	if fp, ok := se.fps[workload]; ok {
		se.mu.Unlock()
		return fp, true
	}
	se.mu.Unlock()

	k, ok := kernels.ByName(workload)
	if !ok {
		return "", false
	}
	sum := sha256.Sum256(k.Build().Encode())
	fp := hex.EncodeToString(sum[:])

	se.mu.Lock()
	if se.fps == nil {
		se.fps = make(map[string]string)
	}
	se.fps[workload] = fp
	se.mu.Unlock()
	return fp, true
}

// storeKey derives the entry key for spec under this session: canonical spec
// identity, workload fingerprint, the session's measurement windows (window
// sizing is session-wide state that determines the result), and the
// simulator version token. ok is false when the spec cannot be keyed
// (unknown kernel) — the caller falls through to simulate, which reports the
// real error.
func (se *Session) storeKey(spec Spec) (key store.Key, id string, ok bool) {
	fp, ok := se.workloadFingerprint(spec.Kernel)
	if !ok {
		return store.Key{}, "", false
	}
	id = spec.storeID()
	windows := fmt.Sprintf("warmup=%d/measure=%d", se.Warmup, se.Measure)
	return store.KeyOf(id, fp, windows, StoreVersion), id, true
}

// snapKey derives the warm-state snapshot key for spec: like storeKey but
// without the measure window. A snapshot is taken at the warmup boundary,
// so only warmup-affecting state goes into the key — spec identity, workload
// fingerprint, the warmup window, the version token. Sessions that differ
// only in how long they measure share warm states; that cross-window reuse
// is the snapshot cache's reason to exist alongside the result store.
func (se *Session) snapKey(spec Spec) (key store.Key, ok bool) {
	fp, ok := se.workloadFingerprint(spec.Kernel)
	if !ok {
		return store.Key{}, false
	}
	return store.KeyOf(spec.storeID(), fp, fmt.Sprintf("warmup=%d", se.Warmup), StoreVersion), true
}

// storeLoad is the read-through: probe the attached store for spec's
// persisted stats. Any load failure — missing, corrupt, stale version,
// mismatched identity — reports false and the caller simulates.
func (se *Session) storeLoad(st *store.Store, spec Spec) (*Result, bool) {
	key, id, ok := se.storeKey(spec)
	if !ok {
		return nil, false
	}
	var stats pipeline.Stats
	if !st.Get(key, id, &stats) {
		return nil, false
	}
	return &Result{Spec: spec, Stats: stats}, true
}

// storeSave is the write-behind: persist a freshly simulated result.
// Best-effort — a failed write is counted in the store's own stats and only
// costs a future process a re-simulation.
func (se *Session) storeSave(st *store.Store, spec Spec, r *Result) {
	key, id, ok := se.storeKey(spec)
	if !ok {
		return
	}
	_ = st.Put(key, id, r.Stats)
}
