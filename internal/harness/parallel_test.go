package harness

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestRunAllDeterminism runs the same spec set sequentially and with eight
// workers and requires identical Stats per spec and byte-identical rendered
// output: parallel scheduling must never change simulation results.
func TestRunAllDeterminism(t *testing.T) {
	t.Parallel()
	kernels := []string{"gzip", "art", "parser", "milc"}
	var specs []Spec
	for _, k := range kernels {
		for _, c := range []Counters{BaselineCounters, FPC} {
			specs = append(specs, matrixSpecsFor(k, singlePredictors, c)...)
		}
	}
	warmup, measure := testWindows(1_000, 4_000)
	seq := NewSession(warmup, measure)
	seqRes, err := seq.RunAll(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par := NewSession(warmup, measure)
	parRes, err := par.RunAll(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		if seqRes[i].Spec != spec || parRes[i].Spec != spec {
			t.Fatalf("result %d out of order: seq=%v par=%v want=%v",
				i, seqRes[i].Spec, parRes[i].Spec, spec)
		}
		if seqRes[i].Stats != parRes[i].Stats {
			t.Errorf("%v: stats differ between workers=1 and workers=8:\n%+v\n%+v",
				spec, seqRes[i].Stats, parRes[i].Stats)
		}
	}
	// The rendered artifacts must match byte for byte too: the fig4-style
	// text table over these kernels and the structured JSON emission (both
	// sessions are fully warm, so rendering adds no simulations).
	var a, b strings.Builder
	for _, c := range []Counters{BaselineCounters, FPC} {
		if err := speedupMatrixOver(context.Background(), seq, &a, kernels, singlePredictors, c, pipeline.SquashAtCommit); err != nil {
			t.Fatal(err)
		}
		if err := speedupMatrixOver(context.Background(), par, &b, kernels, singlePredictors, c, pipeline.SquashAtCommit); err != nil {
			t.Fatal(err)
		}
	}
	if a.String() != b.String() {
		t.Error("speedup table differs between sequential and parallel sessions")
	}
	var aj, bj bytes.Buffer
	seqRecs, err := seq.Records(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRecs, err := par.Records(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&aj, seqRecs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bj, parRecs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Error("JSON emission differs between sequential and parallel sessions")
	}
}

// matrixSpecsFor is the one-kernel slice of a speedup matrix: baseline plus
// every predictor.
func matrixSpecsFor(kernel string, preds []string, c Counters) []Spec {
	out := []Spec{{Kernel: kernel, Predictor: "none"}}
	for _, p := range preds {
		out = append(out, Spec{Kernel: kernel, Predictor: p, Counters: c})
	}
	return out
}

// TestConcurrentRunSingleflight hammers one session from many goroutines
// requesting overlapping specs and asserts every spec was simulated exactly
// once (miss counting) while every request was answered. Run with -race.
func TestConcurrentRunSingleflight(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(1_000, 4_000))
	distinct := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "gzip", Predictor: "lvp"},
		{Kernel: "gzip", Predictor: "stride", Counters: FPC},
		{Kernel: "art", Predictor: "none"},
		{Kernel: "art", Predictor: "lvp", Counters: FPC},
		{Kernel: "art", Predictor: "stride"},
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range distinct {
				spec := distinct[(g+i)%len(distinct)] // rotate to force contention
				r, err := se.Run(spec)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if r.Spec != spec {
					t.Errorf("goroutine %d: got result for %v, want %v", g, r.Spec, spec)
				}
			}
		}(g)
	}
	wg.Wait()
	m := se.MemoStats()
	if m.Misses != uint64(len(distinct)) {
		t.Errorf("%d simulations started, want exactly %d (one per distinct spec)",
			m.Misses, len(distinct))
	}
	if total := m.Hits + m.Misses; total != goroutines*uint64(len(distinct)) {
		t.Errorf("memo saw %d lookups, want %d", total, goroutines*len(distinct))
	}
}

// TestRunAllErrorDeterministic: under parallel execution the reported error
// must be the first failure in spec order, not whichever finished first.
func TestRunAllErrorDeterministic(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	specs := []Spec{
		{Kernel: "gzip", Predictor: "none"},
		{Kernel: "zzz-missing", Predictor: "none"},
		{Kernel: "art", Predictor: "none"},
		{Kernel: "aaa-missing", Predictor: "none"},
	}
	_, err := se.RunAll(specs, 4)
	if err == nil {
		t.Fatal("bad kernels accepted")
	}
	if !strings.Contains(err.Error(), "zzz-missing") {
		t.Errorf("error %q is not the first failure in spec order", err)
	}
}

// TestParallelRunMatchesRunAll pins the package-level alias.
func TestParallelRunMatchesRunAll(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	specs := []Spec{{Kernel: "gzip", Predictor: "none"}, {Kernel: "gzip", Predictor: "lvp"}}
	rs, err := ParallelRun(se, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Spec != specs[0] || rs[1].Spec != specs[1] {
		t.Errorf("ParallelRun returned %v", rs)
	}
}

// TestRunAllParallelSpeedup demonstrates the engine's purpose: on a
// multi-core runner the fig4 spec set completes measurably faster with
// workers=GOMAXPROCS than with workers=1, with identical results. The gate
// is effective parallelism — min(GOMAXPROCS, NumCPU) — not GOMAXPROCS
// alone: a raised GOMAXPROCS on a one-CPU machine still time-slices a
// single core, and asserting a speedup there would fail (or worse, pass by
// scheduler accident) without measuring anything.
func TestRunAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	procs := runtime.GOMAXPROCS(0)
	if par := min(procs, runtime.NumCPU()); par < 2 {
		t.Skipf("effective parallelism is %d (GOMAXPROCS=%d, NumCPU=%d): "+
			"workers=1 and workers=N share one CPU, so their wall-clock ratio "+
			"measures scheduler noise, not parallel scaling", par, procs, runtime.NumCPU())
	}
	specs := Fig4Specs()

	seq := NewSession(2_000, 8_000)
	t0 := time.Now()
	seqRes, err := seq.RunAll(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqD := time.Since(t0)

	par := NewSession(2_000, 8_000)
	t1 := time.Now()
	parRes, err := par.RunAll(specs, procs)
	if err != nil {
		t.Fatal(err)
	}
	parD := time.Since(t1)

	for i := range specs {
		if seqRes[i].Stats != parRes[i].Stats {
			t.Fatalf("%v: parallel run changed results", specs[i])
		}
	}
	want := 1.15 // modest bar for 2-3 cores
	if procs >= 4 {
		want = 1.5
	}
	if ratio := seqD.Seconds() / parD.Seconds(); ratio < want {
		t.Errorf("workers=%d took %v vs workers=1 %v (%.2fx), want >= %.2fx",
			procs, parD, seqD, ratio, want)
	} else {
		t.Logf("workers=%d: %.2fx faster (%v -> %v)", procs, ratio, seqD, parD)
	}
}

// BenchmarkRunAllFig4 measures the fig4 spec set under one worker and under
// GOMAXPROCS workers; compare the two to see the engine's scaling.
func BenchmarkRunAllFig4(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				se := NewSession(2_000, 8_000)
				if _, err := se.RunAll(Fig4Specs(), workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("workers=1", bench(1))
	b.Run("workers=max", bench(runtime.GOMAXPROCS(0)))
}
