package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// goldenRecords are fixed, hand-written values: the golden files pin the
// serialization format (field names, ordering, float rendering), not
// simulator output.
func goldenRecords() []Record {
	return []Record{
		{
			Kernel: "art", Predictor: "vtage", Counters: "custom", Recovery: "squash",
			Width: 4, LoadsOnly: true, MaxHist: 256, FPCVector: "0,2,2,2,2,3,3",
			IPC: 1.25, Speedup: 1.5, Coverage: 0.4, Accuracy: 0.9975,
			Committed: 250000, Cycles: 200000,
			SquashValue: 12, SquashBranch: 34, SquashMemOrder: 5, ReissuedUops: 0,
			BranchMPKI: 1.36, B2BFraction: 0.034,
		},
		{
			Kernel: "gzip", Predictor: "none", Counters: "baseline", Recovery: "reissue",
			IPC: 2, Speedup: 1, Coverage: 0, Accuracy: 1,
			Committed: 250000, Cycles: 125000,
			SquashValue: 0, SquashBranch: 7, SquashMemOrder: 0, ReissuedUops: 3,
			BranchMPKI: 0.028, B2BFraction: 0,
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records.golden.json", buf.Bytes())
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records.golden.csv", buf.Bytes())
}

// failingWriter accepts `allow` bytes and then fails every write — a stand-in
// for a sink (pipe, socket, full disk) dying mid-stream.
type failingWriter struct {
	allow   int
	written int
}

var errSinkClosed = errors.New("sink closed")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allow {
		n := 0
		if w.allow > w.written {
			n = w.allow - w.written
		}
		w.written += n
		return n, errSinkClosed
	}
	w.written += len(p)
	return len(p), nil
}

// manyRecords is big enough to overflow every internal buffer on the emit
// path (csv.Writer fronts its sink with a 4KiB bufio.Writer, so small
// outputs only surface write errors at Flush).
func manyRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = goldenRecords()[i%2]
		recs[i].Committed = uint64(i)
	}
	return recs
}

// TestWriteJSONWriterError: a writer failure must surface as WriteJSON's
// error, whether the sink dies immediately or mid-stream.
func TestWriteJSONWriterError(t *testing.T) {
	for _, allow := range []int{0, 512} {
		w := &failingWriter{allow: allow}
		err := WriteJSON(w, manyRecords(64))
		if !errors.Is(err, errSinkClosed) {
			t.Errorf("allow=%d: WriteJSON returned %v, want the sink error", allow, err)
		}
	}
}

// TestWriteCSVWriterError covers the three places a dying sink can surface
// in WriteCSV: the header write, a row write mid-stream, and the final
// flush.
func TestWriteCSVWriterError(t *testing.T) {
	for _, tc := range []struct {
		name  string
		allow int
		recs  []Record
	}{
		{"immediately", 0, manyRecords(64)},
		{"mid-stream", 8 << 10, manyRecords(256)},
		{"at flush", 16, manyRecords(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := &failingWriter{allow: tc.allow}
			err := WriteCSV(w, tc.recs)
			if !errors.Is(err, errSinkClosed) {
				t.Errorf("WriteCSV returned %v, want the sink error", err)
			}
		})
	}
	// And the success path really does flush everything it was given.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, manyRecords(256)); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 257 {
		t.Errorf("got %d CSV lines, want 257", lines)
	}
}

// TestRecordFieldNamesStable ties the JSON keys to the CSV header: both are
// the public contract of the structured-results layer.
func TestRecordFieldNamesStable(t *testing.T) {
	raw, err := json.Marshal(goldenRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != len(csvHeader) {
		t.Errorf("Record marshals %d JSON fields, CSV header has %d", len(m), len(csvHeader))
	}
	for _, key := range csvHeader {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON output missing field %q present in CSV header", key)
		}
	}
}

// TestRecordCtx: the single-spec record path must agree with the batch
// Records layer, cancel cleanly, and memoize — a repeat call starts no new
// simulations.
func TestRecordCtx(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	spec := Spec{Kernel: "art", Predictor: "lvp", Counters: FPC}
	ctx := context.Background()
	rec, err := se.RecordCtx(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := se.Records([]Spec{spec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec != recs[0] {
		t.Errorf("RecordCtx differs from Records:\nsingle: %+v\nbatch:  %+v", rec, recs[0])
	}
	misses := se.MemoStats().Misses
	if _, err := se.RecordCtx(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if after := se.MemoStats().Misses; after != misses {
		t.Errorf("repeat RecordCtx started %d new simulations", after-misses)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := se.RecordCtx(dead, Spec{Kernel: "gzip", Predictor: "vtage"}); !IsContextErr(err) {
		t.Errorf("cancelled RecordCtx returned %v, want a context error", err)
	}
}

// TestSessionRecords runs a tiny real batch through the Record layer.
func TestSessionRecords(t *testing.T) {
	se := NewSession(testWindows(1_000, 4_000))
	specs := []Spec{
		{Kernel: "art", Predictor: "none"},
		{Kernel: "art", Predictor: "lvp", Counters: FPC},
	}
	recs, err := se.Records(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Predictor != "none" || recs[0].Speedup != 1 {
		t.Errorf("baseline record should have speedup 1: %+v", recs[0])
	}
	if recs[1].Kernel != "art" || recs[1].Predictor != "lvp" || recs[1].Counters != "FPC" {
		t.Errorf("record spec fields wrong: %+v", recs[1])
	}
	if recs[1].IPC <= 0 || recs[1].Speedup <= 0 {
		t.Errorf("degenerate record: %+v", recs[1])
	}
	if _, err := se.Records([]Spec{{Kernel: "nope", Predictor: "none"}}, 1); err == nil {
		t.Error("unknown kernel accepted by Records")
	}
}
