package harness

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/store"
)

// mcfProgram returns a byte-identical copy of the builtin mcf kernel, as an
// uploader reconstructing it from its encoding would hold it.
func mcfProgram(t *testing.T) *isa.Program {
	t.Helper()
	k, ok := kernels.ByName("mcf")
	if !ok {
		t.Fatal("no builtin mcf")
	}
	p, err := isa.Decode(k.Build().Encode())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// impostorProgram returns a program that *claims* to be mcf but runs
// different code — the name-collision attack the content-addressed identity
// exists to defuse.
func impostorProgram() *isa.Program {
	b := isa.NewBuilder("mcf")
	b.InitReg(isa.R1, 1)
	top := b.Here()
	b.Addi(isa.R1, isa.R1, 3)
	b.Xori(isa.R2, isa.R1, 0x5a5a)
	b.Jmp(top)
	return b.Program()
}

// TestRegisterProgramIdentity pins the tentpole's identity rules (satellite:
// identity isolation). A byte-identical upload of builtin mcf resolves to
// the workload "mcf" and therefore memo-hits, store-hits, and snapshot-hits
// the builtin's entries; an impostor named "mcf" gets its own prog: identity
// and shares nothing.
func TestRegisterProgramIdentity(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir(), StoreVersion)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(testWindows(5_000, 20_000))
	se.UseStore(st)
	se.UseSnapshots(NewSnapshotCache(8))

	// Byte-identical upload deduplicates onto the builtin name...
	id, err := se.RegisterProgram(mcfProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if id != "mcf" {
		t.Fatalf("byte-identical mcf registered as %q, want the builtin name", id)
	}
	if se.ProgramCount() != 0 {
		t.Fatalf("builtin-identical program entered the registry (%d entries)", se.ProgramCount())
	}

	// ...so simulating the builtin and then "the upload" is one memo entry.
	spec := Spec{Kernel: "mcf", Predictor: "vtage", Counters: FPC}
	if _, err := se.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Run(Spec{Kernel: id, Predictor: "vtage", Counters: FPC}); err != nil {
		t.Fatal(err)
	}
	m := se.MemoStats()
	if m.Misses != 1 || m.Hits != 1 {
		t.Fatalf("builtin-identical upload did not share the memo: %+v", m)
	}

	// The impostor gets a distinct content-addressed identity.
	impID, err := se.RegisterProgram(impostorProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !IsProgramRef(impID) {
		t.Fatalf("impostor registered as %q, want a prog: reference", impID)
	}
	if p, ok := se.Program(impID); !ok || p.Name != "mcf" {
		t.Fatalf("registry lookup = %v, %v", p, ok)
	}
	if _, err := se.Run(Spec{Kernel: impID, Predictor: "vtage", Counters: FPC}); err != nil {
		t.Fatal(err)
	}
	m = se.MemoStats()
	if m.Misses != 2 {
		t.Fatalf("impostor \"mcf\" shared the builtin's entries: %+v", m)
	}

	// Store isolation across processes: a fresh session over the same store
	// dir serves the builtin and the impostor from disk — each from its own
	// entry — and never cross-serves.
	se2 := NewSession(testWindows(5_000, 20_000))
	se2.UseStore(st)
	if _, err := se2.RegisterProgram(impostorProgram()); err != nil {
		t.Fatal(err)
	}
	if _, err := se2.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := se2.Run(Spec{Kernel: impID, Predictor: "vtage", Counters: FPC}); err != nil {
		t.Fatal(err)
	}
	m2 := se2.MemoStats()
	if m2.StoreHits != 2 || m2.Misses != 0 {
		t.Fatalf("warm restart did not serve both identities from the store: %+v", m2)
	}
	if m2.Store.Hits != 2 {
		t.Fatalf("store counters disagree: %+v", m2.Store)
	}

	// Snapshot isolation: the builtin and the impostor have different
	// workload fingerprints, so their snapshot keys differ.
	bk, ok := se.snapKey(spec.Canonical())
	if !ok {
		t.Fatal("no snapshot key for builtin spec")
	}
	ik, ok := se.snapKey(Spec{Kernel: impID, Predictor: "vtage", Counters: FPC}.Canonical())
	if !ok {
		t.Fatal("no snapshot key for impostor spec")
	}
	if bk == ik {
		t.Fatal("impostor shares the builtin's snapshot key")
	}
}

// TestRegisterProgramConcurrent races many registrations and runs of the
// same program: one identity, one simulation, no data races (run with
// -race in CI).
func TestRegisterProgramConcurrent(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(2_000, 10_000))
	prog, err := isa.Generate("branchy", 7)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _ := isa.Generate("branchy", 7) // private copy per goroutine
			id, err := se.RegisterProgram(p)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
			if _, err := se.Run(Spec{Kernel: id, Predictor: "stride", Counters: FPC}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	want := ProgramID(prog)
	for i, id := range ids {
		if id != want {
			t.Fatalf("goroutine %d registered %q, want %q", i, id, want)
		}
	}
	if se.ProgramCount() != 1 {
		t.Fatalf("registry holds %d entries, want 1", se.ProgramCount())
	}
	m := se.MemoStats()
	if m.Misses != 1 || m.Hits+m.Misses != n {
		t.Fatalf("concurrent identical runs did not coalesce: %+v", m)
	}
}

// TestWorkloadErrors pins the upgraded usage errors (satellite: better
// errors): unknown kernels list the builtin index, unknown program
// references explain registration, malformed references and two-workload
// specs fail validation.
func TestWorkloadErrors(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(1_000, 5_000))

	_, err := se.Run(Spec{Kernel: "gcc9", Predictor: "vtage"})
	if err == nil || !strings.Contains(err.Error(), "builtin kernels:") || !strings.Contains(err.Error(), "gzip") {
		t.Errorf("unknown kernel error does not list the index: %v", err)
	}

	ref := strings.Repeat("ab", 32)
	_, err = se.Run(Spec{Kernel: "prog:" + ref, Predictor: "vtage"})
	if err == nil || !strings.Contains(err.Error(), "no programs registered") {
		t.Errorf("unregistered program error unhelpful: %v", err)
	}

	p, perr := isa.Generate("memory", 3)
	if perr != nil {
		t.Fatal(perr)
	}
	id, perr := se.RegisterProgram(p)
	if perr != nil {
		t.Fatal(perr)
	}
	_, err = se.Run(Spec{Kernel: "prog:" + ref, Predictor: "vtage"})
	if err == nil || !strings.Contains(err.Error(), id) {
		t.Errorf("unregistered program error does not list registered ids: %v", err)
	}

	if err := (Spec{Kernel: "prog:short", Predictor: "vtage"}).Validate(); err == nil || !strings.Contains(err.Error(), "malformed program reference") {
		t.Errorf("malformed reference accepted: %v", err)
	}
	if err := (Spec{Kernel: "gzip", Program: id, Predictor: "vtage"}).Validate(); err == nil || !strings.Contains(err.Error(), "both kernel") {
		t.Errorf("two-workload spec accepted: %v", err)
	}

	// The Program field alone is valid and canonicalizes onto Kernel.
	c := Spec{Program: id, Predictor: "vtage"}.Canonical()
	if c.Kernel != id || c.Program != "" {
		t.Errorf("Canonical did not fold Program into Kernel: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("canonical program spec invalid: %v", err)
	}
}

// TestRegisterProgramRejects pins the registration error paths.
func TestRegisterProgramRejects(t *testing.T) {
	t.Parallel()
	se := NewSession(testWindows(1_000, 5_000))
	if _, err := se.RegisterProgram(nil); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := se.RegisterProgram(&isa.Program{Name: "empty"}); err == nil {
		t.Error("empty program accepted")
	}
	bad := &isa.Program{Name: "bad", Insts: []isa.Inst{{Op: isa.JMP, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Imm: 99}}}
	if _, err := se.RegisterProgram(bad); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}
