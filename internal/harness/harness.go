// Package harness runs the paper's experiments: it wires kernels, value
// predictors, and machine configurations together, caches shared runs (the
// baseline machine appears in every figure), and renders each table and
// figure of the evaluation section as text. The per-experiment index lives
// in DESIGN.md §5.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/pipeline"
)

// PredictorNames lists the constructible predictor configurations. "ps" and
// "gdiff" are the extension predictors the paper references but does not
// evaluate in its figures (footnote 4 and Section 2).
var PredictorNames = []string{
	"none", "lvp", "stride", "fcm", "vtage", "oracle",
	"fcm+stride", "vtage+stride", "ps", "gdiff",
}

// NewPredictor constructs the named predictor with confidence vector vec
// over the shared history h. "none" returns nil (the baseline machine).
func NewPredictor(name string, vec core.FPCVector, h *ghist.History) (core.Predictor, error) {
	const seed = 0xC0FFEE
	switch name {
	case "none":
		return nil, nil
	case "lvp":
		return core.NewLVP(13, vec, seed), nil
	case "stride":
		return core.NewStride2D(13, vec, seed), nil
	case "fcm":
		return core.NewFCM(4, 13, vec, seed), nil
	case "vtage":
		return core.NewVTAGE(core.DefaultVTAGEConfig(vec), h), nil
	case "oracle":
		return &core.Oracle{}, nil
	case "fcm+stride":
		return core.NewHybrid(core.NewFCM(4, 13, vec, seed), core.NewStride2D(13, vec, seed+1)), nil
	case "vtage+stride":
		return core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(vec), h), core.NewStride2D(13, vec, seed+1)), nil
	case "ps":
		return core.NewPS(13, 13, vec, seed, h), nil
	case "gdiff":
		return core.NewGDiff(13, vec, seed), nil
	default:
		return nil, fmt.Errorf("harness: unknown predictor %q", name)
	}
}

// DisplayName maps predictor config names to the paper's labels.
func DisplayName(name string) string {
	switch name {
	case "none":
		return "Baseline"
	case "lvp":
		return "LVP"
	case "stride":
		return "2D-Str"
	case "fcm":
		return "o4-FCM"
	case "vtage":
		return "VTAGE"
	case "oracle":
		return "Oracle"
	case "fcm+stride":
		return "o4-FCM-2DStr"
	case "vtage+stride":
		return "VTAGE-2DStr"
	case "ps":
		return "PS"
	case "gdiff":
		return "gDiff"
	}
	return name
}

// Counters selects the confidence scheme of a run.
type Counters int

const (
	// BaselineCounters are plain 3-bit saturating counters (Fig. 4a/5a).
	BaselineCounters Counters = iota
	// FPC uses the paper's forward probabilistic counters, matched to the
	// recovery mechanism (7-bit-equivalent for squash, 6-bit for reissue).
	FPC
)

func (c Counters) String() string {
	if c == FPC {
		return "FPC"
	}
	return "baseline"
}

// Vector returns the probability vector for the counter scheme under the
// given recovery mechanism, following Section 5.
func (c Counters) Vector(rec pipeline.RecoveryMode) core.FPCVector {
	if c == BaselineCounters {
		return core.FPCBaseline
	}
	if rec == pipeline.SelectiveReissue {
		return core.FPCReissue
	}
	return core.FPCCommit
}

// Spec identifies one simulation run.
type Spec struct {
	Kernel    string
	Predictor string
	Counters  Counters
	Recovery  pipeline.RecoveryMode
}

// Result is the outcome of one run.
type Result struct {
	Spec  Spec
	Stats pipeline.Stats
}

// Session runs experiments with shared settings and memoized results. The
// zero value is not usable; construct with NewSession.
type Session struct {
	Warmup  uint64
	Measure uint64
	traces  map[string][]isa.DynInst
	memo    map[Spec]*Result
}

// NewSession builds a session with the given measurement window, standing in
// for the paper's 50M-warmup/50M-measure Simpoint methodology.
func NewSession(warmup, measure uint64) *Session {
	return &Session{
		Warmup:  warmup,
		Measure: measure,
		traces:  make(map[string][]isa.DynInst),
		memo:    make(map[Spec]*Result),
	}
}

// DefaultSession sizes runs for interactive use (seconds per figure).
func DefaultSession() *Session { return NewSession(50_000, 250_000) }

func (se *Session) trace(kernel string) ([]isa.DynInst, error) {
	if tr, ok := se.traces[kernel]; ok {
		return tr, nil
	}
	k, ok := kernels.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("harness: unknown kernel %q", kernel)
	}
	tr := emu.Trace(k.Build(), int(se.Warmup+se.Measure))
	se.traces[kernel] = tr
	return tr, nil
}

// Run simulates spec (memoized) and returns its result.
func (se *Session) Run(spec Spec) (*Result, error) {
	if r, ok := se.memo[spec]; ok {
		return r, nil
	}
	tr, err := se.trace(spec.Kernel)
	if err != nil {
		return nil, err
	}
	h := &ghist.History{}
	pred, err := NewPredictor(spec.Predictor, spec.Counters.Vector(spec.Recovery), h)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Recovery = spec.Recovery
	sim := pipeline.New(cfg, tr, pred, h)
	st, err := sim.Run(se.Warmup, se.Measure)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s/%s: %w",
			spec.Kernel, spec.Predictor, spec.Counters, spec.Recovery, err)
	}
	r := &Result{Spec: spec, Stats: *st}
	se.memo[spec] = r
	return r, nil
}

// Speedup returns the ratio of the spec's IPC to the baseline (no-VP)
// machine's IPC on the same kernel and recovery mode.
func (se *Session) Speedup(spec Spec) (float64, error) {
	r, err := se.Run(spec)
	if err != nil {
		return 0, err
	}
	base, err := se.Run(Spec{Kernel: spec.Kernel, Predictor: "none", Recovery: spec.Recovery})
	if err != nil {
		return 0, err
	}
	if base.Stats.IPC() == 0 {
		return 0, fmt.Errorf("harness: zero baseline IPC for %s", spec.Kernel)
	}
	return r.Stats.IPC() / base.Stats.IPC(), nil
}

// AMean returns the arithmetic mean.
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum element (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// KernelNames returns all kernels in Table 3 order.
func KernelNames() []string { return kernels.Names() }

// sortedSpecs is a test helper keeping memo iteration deterministic.
func (se *Session) sortedSpecs() []Spec {
	out := make([]Spec, 0, len(se.memo))
	for s := range se.memo {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Predictor != b.Predictor {
			return a.Predictor < b.Predictor
		}
		if a.Counters != b.Counters {
			return a.Counters < b.Counters
		}
		return a.Recovery < b.Recovery
	})
	return out
}
