// Package harness runs the paper's experiments: it wires kernels, value
// predictors, and machine configurations together, caches shared runs (the
// baseline machine appears in every figure), and renders each table and
// figure of the evaluation section as text, JSON, or CSV. The per-experiment
// index lives in DESIGN.md §5.
//
// A Session is safe for concurrent use: trace generation and simulation
// results are memoized behind a per-entry singleflight, so an identical Spec
// requested from many goroutines is simulated exactly once. RunAll fans a
// batch of specs out across a worker pool (see parallel.go).
package harness

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// PredictorNames lists the constructible predictor configurations. "ps" and
// "gdiff" are the extension predictors the paper references but does not
// evaluate in its figures (footnote 4 and Section 2).
var PredictorNames = []string{
	"none", "lvp", "stride", "fcm", "vtage", "oracle",
	"fcm+stride", "vtage+stride", "ps", "gdiff",
}

// NewPredictor constructs the named predictor with confidence vector vec
// over the shared history h. "none" returns nil (the baseline machine).
func NewPredictor(name string, vec core.FPCVector, h *ghist.History) (core.Predictor, error) {
	const seed = 0xC0FFEE
	switch name {
	case "none":
		return nil, nil
	case "lvp":
		return core.NewLVP(13, vec, seed), nil
	case "stride":
		return core.NewStride2D(13, vec, seed), nil
	case "fcm":
		return core.NewFCM(4, 13, vec, seed), nil
	case "vtage":
		return core.NewVTAGE(core.DefaultVTAGEConfig(vec), h), nil
	case "oracle":
		return &core.Oracle{}, nil
	case "fcm+stride":
		return core.NewHybrid(core.NewFCM(4, 13, vec, seed), core.NewStride2D(13, vec, seed+1)), nil
	case "vtage+stride":
		return core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(vec), h), core.NewStride2D(13, vec, seed+1)), nil
	case "ps":
		return core.NewPS(13, 13, vec, seed, h), nil
	case "gdiff":
		return core.NewGDiff(13, vec, seed), nil
	default:
		return nil, fmt.Errorf("harness: unknown predictor %q", name)
	}
}

// DisplayName maps predictor config names to the paper's labels.
func DisplayName(name string) string {
	switch name {
	case "none":
		return "Baseline"
	case "lvp":
		return "LVP"
	case "stride":
		return "2D-Str"
	case "fcm":
		return "o4-FCM"
	case "vtage":
		return "VTAGE"
	case "oracle":
		return "Oracle"
	case "fcm+stride":
		return "o4-FCM-2DStr"
	case "vtage+stride":
		return "VTAGE-2DStr"
	case "ps":
		return "PS"
	case "gdiff":
		return "gDiff"
	}
	return name
}

// Counters selects the confidence scheme of a run.
type Counters int

const (
	// BaselineCounters are plain 3-bit saturating counters (Fig. 4a/5a).
	BaselineCounters Counters = iota
	// FPC uses the paper's forward probabilistic counters, matched to the
	// recovery mechanism (7-bit-equivalent for squash, 6-bit for reissue).
	FPC
)

func (c Counters) String() string {
	if c == FPC {
		return "FPC"
	}
	return "baseline"
}

// Vector returns the probability vector for the counter scheme under the
// given recovery mechanism, following Section 5.
func (c Counters) Vector(rec pipeline.RecoveryMode) core.FPCVector {
	if c == BaselineCounters {
		return core.FPCBaseline
	}
	if rec == pipeline.SelectiveReissue {
		return core.FPCReissue
	}
	return core.FPCCommit
}

// Spec identifies one simulation run. Beyond the four classic fields it
// carries an optional canonical machine/predictor-parameter key, so every
// simulation the repo can run — including the sensitivity ablations — is a
// memoizable, schedulable value. Zero values mean "the paper's default", so
// pre-existing four-field specs keep their identity (and memo entries).
type Spec struct {
	Kernel    string
	Predictor string
	Counters  Counters
	Recovery  pipeline.RecoveryMode

	// Width overrides the machine's fetch/dispatch/issue/retire width.
	// 0 means Table 2's 8-wide machine.
	Width int
	// LoadsOnly restricts value prediction to load µops (the classic
	// load-value-prediction deployment the paper argues against, §7.2).
	LoadsOnly bool
	// MaxHist overrides VTAGE's maximum history length (vtage-family
	// predictors only). 0 means Table 1's 64.
	MaxHist int
	// FPCVec, when non-empty, is an explicit FPC probability vector in
	// FormatFPCVector form ("0,2,2,2,2,3,3") that replaces the vector
	// Counters.Vector(Recovery) would derive. Canonical specs keep Counters
	// zero when FPCVec is set.
	FPCVec string

	// Program, when non-empty, names the workload by its content-addressed
	// program reference ("prog:<sha256>", from Session.RegisterProgram)
	// instead of a builtin kernel. Canonical() folds it into Kernel — the
	// workload field the memo, store and snapshot keys use — so a spec may
	// set either field; setting both to different workloads is invalid.
	Program string
}

// defaultWidth is Table 2's machine width; defaultMaxHist is Table 1's
// VTAGE maximum history length. Canonical() folds explicit mentions of
// either back to the zero value so equivalent specs share one memo entry.
var (
	defaultWidth   = pipeline.DefaultConfig().FetchWidth
	defaultMaxHist = core.DefaultVTAGEConfig(core.FPCBaseline).MaxHist
)

// FormatFPCVector renders a probability vector in the canonical wire form
// accepted by ParseFPCVector and Spec.FPCVec: shift values joined by commas.
func FormatFPCVector(v core.FPCVector) string {
	var b strings.Builder
	for i, s := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// ParseFPCVector parses the canonical vector form ("0,4,4,4,4,5,5"): exactly
// core.ConfMax comma-separated shift values, each at most 31 (TakeProb's
// word-wide LFSR bound).
func ParseFPCVector(s string) (core.FPCVector, error) {
	var v core.FPCVector
	parts := strings.Split(s, ",")
	if len(parts) != len(v) {
		return v, fmt.Errorf("harness: FPC vector %q has %d entries, want %d", s, len(parts), len(v))
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 || n > 31 {
			return v, fmt.Errorf("harness: FPC vector %q entry %d: want a shift in 0..31", s, i)
		}
		v[i] = uint8(n)
	}
	return v, nil
}

// Canonical returns the spec in canonical form — the one identity the memo,
// the scheduler's in-flight coalescing, and the structured Record layer key
// on. Equivalent configurations fold together:
//
//   - Width equal to the default machine width becomes 0, MaxHist equal to
//     VTAGE's default becomes 0;
//   - an explicit FPCVec is re-rendered in canonical form; if a named
//     counter scheme derives the same vector under this recovery mode, the
//     spec folds onto that scheme (so an explicit FPCCommit under squash is
//     the FPC spec the figures memoize), and otherwise Counters is zeroed —
//     the vector wins;
//   - the baseline machine (predictor "none") sheds every predictor-only
//     field (Counters, LoadsOnly, MaxHist, FPCVec) but keeps Width: a
//     narrow machine's baseline is the narrow machine;
//   - a program reference moves from Program into Kernel, the one workload
//     field everything keys on (prog: references and builtin kernel names
//     are disjoint, so the merge is unambiguous).
//
// Unparseable FPCVec values and Kernel/Program conflicts are left untouched
// for Validate to report.
func (s Spec) Canonical() Spec {
	if s.Program != "" && (s.Kernel == "" || s.Kernel == s.Program) {
		s.Kernel, s.Program = s.Program, ""
	}
	if s.Width == defaultWidth {
		s.Width = 0
	}
	if s.MaxHist == defaultMaxHist {
		s.MaxHist = 0
	}
	if s.FPCVec != "" {
		if v, err := ParseFPCVector(s.FPCVec); err == nil {
			switch v {
			case BaselineCounters.Vector(s.Recovery):
				s.Counters = BaselineCounters
				s.FPCVec = ""
			case FPC.Vector(s.Recovery):
				s.Counters = FPC
				s.FPCVec = ""
			default:
				s.FPCVec = FormatFPCVector(v)
				s.Counters = BaselineCounters
			}
		}
	}
	if s.Predictor == "none" {
		s.Counters = BaselineCounters
		s.LoadsOnly = false
		s.MaxHist = 0
		s.FPCVec = ""
	}
	return s
}

// vtageFamily reports whether the predictor embeds a VTAGE (and therefore
// honours the MaxHist override).
func vtageFamily(predictor string) bool {
	return predictor == "vtage" || predictor == "vtage+stride"
}

// Validate checks the spec against the constructible configuration space;
// the service layer rejects invalid wire specs with it before scheduling,
// and simulate applies it so direct harness users get the same errors.
func (s Spec) Validate() error {
	workload := s.Kernel
	if s.Program != "" {
		if s.Kernel != "" && s.Kernel != s.Program {
			return fmt.Errorf("harness: spec names both kernel %q and program %q; set one workload", s.Kernel, s.Program)
		}
		workload = s.Program
	}
	if IsProgramRef(workload) {
		if err := checkProgramRef(workload); err != nil {
			return err
		}
	} else if !slices.Contains(kernels.Names(), workload) {
		return fmt.Errorf("harness: unknown kernel %q (builtin kernels: %s; registered programs are referenced as prog:<sha256>)",
			workload, strings.Join(kernels.Names(), ", "))
	}
	if !slices.Contains(PredictorNames, s.Predictor) {
		return fmt.Errorf("harness: unknown predictor %q (have %v)", s.Predictor, PredictorNames)
	}
	if s.Width < 0 || s.Width > 16 {
		return fmt.Errorf("harness: machine width %d out of range 1..16", s.Width)
	}
	if s.MaxHist != 0 {
		if !vtageFamily(s.Predictor) {
			return fmt.Errorf("harness: max_hist applies to vtage-family predictors, not %q", s.Predictor)
		}
		if s.MaxHist < 2 || s.MaxHist > 1024 {
			return fmt.Errorf("harness: max history %d out of range 2..1024", s.MaxHist)
		}
	}
	if s.FPCVec != "" {
		if _, err := ParseFPCVector(s.FPCVec); err != nil {
			return err
		}
	}
	return nil
}

// vector resolves the confidence vector of the run: the explicit FPCVec
// when set, otherwise the scheme Counters and Recovery select.
func (s Spec) vector() (core.FPCVector, error) {
	if s.FPCVec == "" {
		return s.Counters.Vector(s.Recovery), nil
	}
	return ParseFPCVector(s.FPCVec)
}

// config builds the machine configuration the spec describes.
func (s Spec) config() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Recovery = s.Recovery
	cfg.PredictLoadsOnly = s.LoadsOnly
	if s.Width > 0 {
		cfg.FetchWidth = s.Width
		cfg.DispatchWidth = s.Width
		cfg.IssueWidth = s.Width
		cfg.RetireWidth = s.Width
	}
	return cfg
}

// newPredictor constructs the spec's predictor over h, honouring the
// extended key (explicit vector, VTAGE history override).
func (s Spec) newPredictor(h *ghist.History) (core.Predictor, error) {
	vec, err := s.vector()
	if err != nil {
		return nil, err
	}
	if s.MaxHist == 0 {
		return NewPredictor(s.Predictor, vec, h)
	}
	const seed = 0xC0FFEE // same seeds as NewPredictor, so MaxHist=default ≡ the named config
	cfg := core.DefaultVTAGEConfig(vec)
	cfg.MaxHist = s.MaxHist
	switch s.Predictor {
	case "vtage":
		return core.NewVTAGE(cfg, h), nil
	case "vtage+stride":
		return core.NewHybrid(core.NewVTAGE(cfg, h), core.NewStride2D(13, vec, seed+1)), nil
	default:
		return nil, fmt.Errorf("harness: max_hist applies to vtage-family predictors, not %q", s.Predictor)
	}
}

// Baseline returns the no-VP spec this spec's speedup is measured against:
// same kernel, recovery mode and machine width, predictor "none".
func (s Spec) Baseline() Spec {
	return Spec{Kernel: s.Kernel, Predictor: "none", Recovery: s.Recovery, Width: s.Width}
}

// Result is the outcome of one run.
type Result struct {
	Spec  Spec
	Stats pipeline.Stats
}

// traceCall is a singleflight slot for one kernel's trace: the goroutine
// that created the slot generates the trace; everyone else waits on done.
type traceCall struct {
	done chan struct{}
	tr   []isa.DynInst
	err  error
}

// runCall is the equivalent singleflight slot for one simulation result.
type runCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// Session runs experiments with shared settings and memoized results. It is
// safe for concurrent use: identical Specs (and kernel traces) are simulated
// exactly once even when requested from many goroutines. The zero value is
// not usable; construct with NewSession.
type Session struct {
	Warmup  uint64
	Measure uint64

	mu        sync.Mutex // guards the maps and counters; never held while simulating
	traces    map[string]*traceCall
	memo      map[Spec]*runCall
	hits      uint64 // Run lookups that joined an existing (possibly in-flight) entry
	misses    uint64 // Run lookups that started a simulation
	storeHits uint64 // Run lookups served by loading a persisted record

	store *store.Store            // optional persistent tier under the memo (UseStore)
	snaps *SnapshotCache          // optional warm-state snapshot cache (UseSnapshots)
	fps   map[string]string       // workload → fingerprint, cached for store keying
	progs map[string]*isa.Program // registered programs by prog:<sha256> reference

	obs atomic.Pointer[Observer] // optional metrics + run tracing (Observe)
}

// NewSession builds a session with the given measurement window, standing in
// for the paper's 50M-warmup/50M-measure Simpoint methodology.
func NewSession(warmup, measure uint64) *Session {
	return &Session{
		Warmup:  warmup,
		Measure: measure,
		traces:  make(map[string]*traceCall),
		memo:    make(map[Spec]*runCall),
	}
}

// DefaultSession sizes runs for interactive use (seconds per figure).
func DefaultSession() *Session { return NewSession(50_000, 250_000) }

// trace returns the workload's instruction trace, generating it on first
// use. The workload is a builtin kernel name or a registered program
// reference; concurrent requests for the same workload share one generation.
// ctx aborts only this caller's wait: the generation itself always runs to
// completion, because a trace is workload-wide shared state every future run
// will want.
func (se *Session) trace(ctx context.Context, workload string) ([]isa.DynInst, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	se.mu.Lock()
	c, ok := se.traces[workload]
	if ok {
		se.mu.Unlock()
		select {
		case <-c.done:
			return c.tr, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c = &traceCall{done: make(chan struct{})}
	se.traces[workload] = c
	se.mu.Unlock()

	if p, ok := se.Program(workload); ok {
		c.tr = emu.Trace(p, int(se.Warmup+se.Measure))
	} else if k, ok := kernels.ByName(workload); ok {
		c.tr = emu.Trace(k.Build(), int(se.Warmup+se.Measure))
	} else {
		// Unresolvable today is not unresolvable forever: registering the
		// program cures it, so drop the slot instead of caching the failure.
		c.err = se.unknownWorkloadError(workload)
		se.mu.Lock()
		delete(se.traces, workload)
		se.mu.Unlock()
	}
	close(c.done)
	return c.tr, c.err
}

// Run simulates spec (memoized) and returns its result. Concurrent calls
// with the same spec share one simulation; errors are memoized too.
func (se *Session) Run(spec Spec) (*Result, error) {
	return se.RunCtx(context.Background(), spec)
}

// IsContextErr reports whether err is (or wraps) a cancellation or deadline
// error — caller state, not a property of the spec. The session uses it to
// decide what not to memoize; the service layer uses the same predicate to
// classify job outcomes, so the two can never drift.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunCtx is Run with cancellation. ctx aborts both waiting on another
// goroutine's in-flight simulation and the simulation loop itself (the loop
// checks the context every cancelChunk committed µops, so a cancelled caller
// stops burning CPU promptly). A run abandoned by cancellation is not
// memoized: its memo entry is removed before waiters wake, so the next
// request re-simulates, and goroutines that joined the abandoned entry with
// a live context of their own transparently retry as the new owner.
//
// The spec is canonicalized first (see Spec.Canonical), so equivalent
// configurations share one memo entry no matter how the caller spelled them.
func (se *Session) RunCtx(ctx context.Context, spec Spec) (*Result, error) {
	spec = spec.Canonical()
	o := se.observer()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	counted := false
	for {
		se.mu.Lock()
		c, ok := se.memo[spec]
		if ok {
			if !counted {
				se.hits++
				counted = true
			}
			se.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil || !IsContextErr(c.err) {
				o.countMemo(true, 1) // served from an in-process entry
				return c.res, c.err
			}
			// The owner abandoned this entry (and deleted it). Retry under
			// our own context unless we were cancelled too.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		if counted {
			// A retry after an abandoned owner becomes the new owner after
			// all: uncount the earlier hit; the owner path below recounts
			// this lookup exactly once (as a store hit or a miss), so
			// hits+storeHits+misses still equals the number of RunCtx calls.
			se.hits--
			counted = false
		}
		c = &runCall{done: make(chan struct{})}
		se.memo[spec] = c
		st := se.store
		se.mu.Unlock()

		// This lookup took ownership: a memo miss, and the start of one
		// run's trace span-set (admit → tier lookups → phases → publish).
		rt := o.beginRun(spec, start)

		// Read-through: a populated store turns this would-be miss into a
		// disk load. Waiters parked on c still count as plain memo hits.
		if st != nil {
			t0 := time.Now()
			res, ok := se.storeLoad(st, spec)
			rt.lookup(obs.StageStore, obs.TierStore, ok, time.Since(t0))
			o.countStore(ok)
			if ok {
				se.mu.Lock()
				se.storeHits++
				se.mu.Unlock()
				c.res = res
				// The disk record is promoted into the memo; no simulation
				// phases ran, so the span-set goes straight to publish.
				rt.span(obs.StagePublish, obs.TierMemo, "", 0, nil)
				close(c.done)
				return c.res, nil
			}
		}
		se.mu.Lock()
		se.misses++
		se.mu.Unlock()

		c.res, c.err = se.simulate(ctx, spec, rt)
		if c.err != nil && (IsContextErr(c.err) || IsUnknownWorkload(c.err)) {
			// Abandoned (caller state) or not-yet-registered (session state):
			// either way the next request may succeed, so nothing is published.
			se.mu.Lock()
			delete(se.memo, spec)
			se.mu.Unlock()
		} else if c.err == nil && st != nil {
			// Write-behind: persist only clean successes — cancellations and
			// errors are never stored, mirroring the memo invariant.
			t0 := time.Now()
			se.storeSave(st, spec, c.res)
			rt.span(obs.StagePublish, obs.TierStore, "", time.Since(t0), nil)
		} else {
			rt.span(obs.StagePublish, obs.TierMemo, "", 0, c.err)
		}
		close(c.done)
		return c.res, c.err
	}
}

// Peek returns spec's memoized outcome without blocking and without
// starting any work: it hits only when a completed in-process memo entry
// already exists. An in-flight entry, an absent entry, or one abandoned by
// cancellation all report !ok — the caller falls back to RunCtx (or a
// scheduler). A hit counts in MemoStats exactly like a RunCtx memo hit, so
// "one bucket per lookup" holds no matter which door served it; the warm
// batch-sync fast path (DESIGN.md §12) is built on this.
func (se *Session) Peek(spec Spec) (res *Result, err error, ok bool) {
	spec = spec.Canonical()
	se.mu.Lock()
	c, found := se.memo[spec]
	se.mu.Unlock()
	if !found {
		return nil, nil, false
	}
	select {
	case <-c.done:
	default:
		return nil, nil, false // still simulating; Peek never waits
	}
	if c.err != nil && IsContextErr(c.err) {
		return nil, nil, false
	}
	se.mu.Lock()
	se.hits++
	se.mu.Unlock()
	se.observer().countMemo(true, 1)
	return c.res, c.err, true
}

// simulate performs one uncached run. The trace lookup is itself
// singleflighted, so concurrent first runs of one kernel build its trace once.
func (se *Session) simulate(ctx context.Context, spec Spec, rt *runRec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr, err := se.trace(ctx, spec.Kernel)
	if err != nil {
		return nil, err
	}
	h := &ghist.History{}
	pred, err := spec.newPredictor(h)
	if err != nil {
		return nil, err
	}
	sim := pipeline.New(spec.config(), tr, pred, h)
	se.mu.Lock()
	snaps := se.snaps
	se.mu.Unlock()
	rt.countSimulation()
	var st *pipeline.Stats
	switch {
	case snaps != nil && se.Warmup > 0:
		st, err = se.runWithSnapshots(ctx, snaps, spec, sim, uint64(len(tr)), rt)
	case rt == nil && ctx.Done() == nil:
		// Unobserved, uncancellable fast path: one Run call, no phase split.
		st, err = sim.Run(se.Warmup, se.Measure)
	default:
		st, err = se.runCancellable(ctx, sim, uint64(len(tr)), rt)
	}
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s/%s: %w",
			spec.Kernel, spec.Predictor, spec.Counters, spec.Recovery, err)
	}
	return &Result{Spec: spec, Stats: *st}, nil
}

// cancelChunk is the µop granularity at which a cancellable simulation
// checks its context between Advance calls: small enough that a cancelled
// job frees its worker within a few milliseconds, large enough that the
// per-chunk bookkeeping is invisible next to the simulate loop.
const cancelChunk = 25_000

// runCancellable produces the exact machine state Run(Warmup, Measure)
// would: Advance targets absolute commit counts and pausing between cycles
// is state-neutral, so chunking changes nothing but the cancellation
// latency. The warmup window runs in one piece (Run must set the
// measurement boundary itself); cancellation granularity during measurement
// is cancelChunk µops. Observed runs (rt != nil) reuse the same split to
// time the two phases separately without perturbing the records.
func (se *Session) runCancellable(ctx context.Context, sim *pipeline.Sim, traceLen uint64, rt *runRec) (*pipeline.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := se.Warmup + se.Measure
	if total > traceLen {
		total = traceLen
	}
	t0 := time.Now()
	st, err := sim.Run(se.Warmup, 0)
	if err != nil {
		return nil, err
	}
	rt.phase(obs.StageWarmup, obs.TierSimulated, time.Since(t0))
	t0 = time.Now()
	for st.Committed < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := total - st.Committed
		if n > cancelChunk {
			n = cancelChunk
		}
		if st, err = sim.Advance(n); err != nil {
			return nil, err
		}
	}
	rt.phase(obs.StageMeasure, obs.TierSimulated, time.Since(t0))
	return st, nil
}

// MemoStats is a snapshot of the session's caching effectiveness. Every
// RunCtx lookup lands in exactly one bucket, so Hits+StoreHits+Misses equals
// the total number of Run calls (plus any scheduler-level coalesced waiters
// recorded via CountCoalescedHits).
type MemoStats struct {
	Hits      uint64 `json:"hits"`       // served from (or joined to) an in-process memo entry
	StoreHits uint64 `json:"store_hits"` // served by loading a persisted record instead of simulating
	Misses    uint64 `json:"misses"`     // simulations actually started

	Store store.Stats `json:"store"` // attached store's own counters (zero when no store)

	// Snapshots reports the attached warm-state snapshot cache (zero when
	// none). A snapshot hit is not a memo hit: the simulation still runs,
	// but skips its warmup phase.
	Snapshots SnapshotStats `json:"snapshots"`
}

// MemoStats reports memo and store effectiveness.
func (se *Session) MemoStats() MemoStats {
	se.mu.Lock()
	defer se.mu.Unlock()
	m := MemoStats{Hits: se.hits, StoreHits: se.storeHits, Misses: se.misses}
	if se.store != nil {
		m.Store = se.store.Stats()
	}
	if se.snaps != nil {
		m.Snapshots = se.snaps.Stats()
	}
	return m
}

// CountCoalescedHits records n lookups that were served above the session —
// a scheduler that parks duplicate in-flight specs and fans one result out
// to all of them performs one RunCtx call for many logical lookups; counting
// the extra waiters here keeps MemoStats meaning "one bucket per lookup"
// across layers.
func (se *Session) CountCoalescedHits(n uint64) {
	se.mu.Lock()
	se.hits += n
	se.mu.Unlock()
	se.observer().countMemo(true, n)
}

// Speedup returns the ratio of the spec's IPC to the baseline (no-VP)
// machine's IPC on the same kernel, recovery mode and machine width.
func (se *Session) Speedup(spec Spec) (float64, error) {
	return se.SpeedupCtx(context.Background(), spec)
}

// SpeedupCtx is Speedup with cancellation; renderers use it so a cancelled
// experiment job stops between (warm) memo reads.
func (se *Session) SpeedupCtx(ctx context.Context, spec Spec) (float64, error) {
	spec = spec.Canonical()
	r, err := se.RunCtx(ctx, spec)
	if err != nil {
		return 0, err
	}
	base, err := se.RunCtx(ctx, spec.Baseline())
	if err != nil {
		return 0, err
	}
	if base.Stats.IPC() == 0 {
		return 0, fmt.Errorf("harness: zero baseline IPC for %s", spec.Kernel)
	}
	return r.Stats.IPC() / base.Stats.IPC(), nil
}

// AMean returns the arithmetic mean.
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum element (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// KernelNames returns all kernels in Table 3 order.
func KernelNames() []string { return kernels.Names() }

// sortedSpecs is a test helper keeping memo iteration deterministic.
func (se *Session) sortedSpecs() []Spec {
	se.mu.Lock()
	out := make([]Spec, 0, len(se.memo))
	for s := range se.memo {
		out = append(out, s)
	}
	se.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Predictor != b.Predictor {
			return a.Predictor < b.Predictor
		}
		if a.Counters != b.Counters {
			return a.Counters < b.Counters
		}
		if a.Recovery != b.Recovery {
			return a.Recovery < b.Recovery
		}
		if a.Width != b.Width {
			return a.Width < b.Width
		}
		if a.LoadsOnly != b.LoadsOnly {
			return b.LoadsOnly
		}
		if a.MaxHist != b.MaxHist {
			return a.MaxHist < b.MaxHist
		}
		if a.FPCVec != b.FPCVec {
			return a.FPCVec < b.FPCVec
		}
		return a.Program < b.Program
	})
	return out
}
