package core

// Oracle is the perfect value predictor used for the Figure 3 speedup upper
// bound: it predicts every result correctly. The trace-driven pipeline feeds
// it the architectural result before asking for the prediction.
type Oracle struct {
	next Value
}

// FeedActual implements OracleFeed.
func (p *Oracle) FeedActual(v Value) { p.next = v }

// Predict implements Predictor: always confident, always right.
func (p *Oracle) Predict(pc uint64, m *Meta) {
	*m = Meta{Pred: p.next, Conf: true}
	m.C1.Pred = p.next
	m.C1.Conf = true
}

// Train implements Predictor.
func (p *Oracle) Train(pc uint64, actual Value, m *Meta) {}

// Squash implements Predictor.
func (p *Oracle) Squash(fromSeq uint64) {}

// Name implements Predictor.
func (p *Oracle) Name() string { return "Oracle" }

// StorageBits implements Predictor: an oracle is free (and impossible).
func (p *Oracle) StorageBits() int { return 0 }
