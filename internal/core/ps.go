package core

import "repro/internal/ghist"

// PS is the Per-Path Stride predictor of Nakra, Gupta and Soffa [15]: a
// stride predictor whose stride is selected by a few bits of the global
// branch history, so the same instruction can carry different strides on
// different control-flow paths. The paper included it in its initial study
// (footnote 4) and found it on par with 2D-Stride; it is provided here as
// the historical bridge between computational predictors and VTAGE's use of
// branch history.
type PS struct {
	lasts                []psLast   // per-PC last value (like LVP's table)
	strides              []psStride // per (PC, path) stride + confidence
	conf                 *Confidence
	lastMask, strideMask uint64
	hist                 *ghist.History
	fold                 ghist.Fold
	spec                 map[uint64]*specWindow
}

type psLast struct {
	tag  uint64
	last Value
	ok   bool
}

type psStride struct {
	tag    uint16
	stride int64
	c      uint8
}

// psHistBits is how many branch-history bits select the stride ("PS only
// uses a few bits of the global branch history" — Section 6).
const psHistBits = 4

// NewPS builds a per-path stride predictor with 2^logLast last-value entries
// and 2^logStride path-qualified stride entries over the shared history h.
func NewPS(logLast, logStride int, vec FPCVector, seed uint32, h *ghist.History) *PS {
	return &PS{
		lasts:      make([]psLast, 1<<logLast),
		strides:    make([]psStride, 1<<logStride),
		conf:       NewConfidence(vec, seed),
		lastMask:   uint64(1)<<logLast - 1,
		strideMask: uint64(1)<<logStride - 1,
		hist:       h,
		fold:       h.RegisterFold(psHistBits, psHistBits, false),
		spec:       make(map[uint64]*specWindow),
	}
}

func (p *PS) lastSlot(pc uint64) (*psLast, uint64) {
	h := hashPC(pc)
	return &p.lasts[h&p.lastMask], h >> 13
}

func (p *PS) strideSlot(pc uint64, hist uint64) (*psStride, uint16) {
	h := hashPC(pc) ^ hist*0x9E3779B9
	return &p.strides[h&p.strideMask], uint16(h >> 24 & 0x3FF)
}

// Predict implements Predictor: last speculative occurrence plus the stride
// recorded for the current path.
func (p *PS) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	le, tag := p.lastSlot(pc)
	if !le.ok || le.tag != tag {
		return
	}
	last := le.last
	if w := p.spec[pc]; w != nil {
		if sv, ok := w.newest(); ok {
			last = sv.val
		}
	}
	hist := p.hist.Folded(p.fold)
	se, stag := p.strideSlot(pc, hist)
	if se.tag == stag {
		m.Pred = last + Value(se.stride)
		m.Conf = Saturated(se.c)
	} else {
		m.Pred = last
	}
	m.C1.Pred = m.Pred
	m.C1.Conf = m.Conf
	m.C1.Idx[0] = uint32(hist) // fetch-time path for Train
}

// FeedSpec implements SpecFeeder.
func (p *PS) FeedSpec(pc uint64, v Value, seq uint64) {
	w := p.spec[pc]
	if w == nil {
		w = &specWindow{}
		p.spec[pc] = w
	}
	w.push(seq, v)
}

// Train implements Predictor. Drained windows stay in the map so their
// capacity is reused (empty predicts identically to absent).
func (p *PS) Train(pc uint64, actual Value, m *Meta) {
	if w := p.spec[pc]; w != nil {
		w.popThrough(m.Seq)
	}
	le, tag := p.lastSlot(pc)
	if !le.ok || le.tag != tag {
		*le = psLast{tag: tag, last: actual, ok: true}
		return
	}
	se, stag := p.strideSlot(pc, uint64(m.C1.Idx[0]))
	s := int64(actual - le.last)
	if se.tag != stag {
		*se = psStride{tag: stag, stride: s}
	} else if le.last+Value(se.stride) == actual {
		se.c = p.conf.Bump(se.c)
	} else {
		se.c = 0
		se.stride = s
	}
	le.last = actual
}

// Squash implements Predictor. Drained windows are kept (see Train).
func (p *PS) Squash(fromSeq uint64) {
	for _, w := range p.spec {
		w.truncFrom(fromSeq)
	}
}

// Name implements Predictor.
func (p *PS) Name() string { return "PS" }

// StorageBits implements Predictor.
func (p *PS) StorageBits() int {
	return len(p.lasts)*(51+64) + len(p.strides)*(10+64+3)
}
