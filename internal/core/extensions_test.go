package core

import (
	"testing"

	"repro/internal/ghist"
)

// --- Per-Path Stride ---

func TestPSPredictsAffine(t *testing.T) {
	var h ghist.History
	p := NewPS(10, 10, FPCBaseline, 1, &h)
	correct, wrong := drive(p, 100, affineSeq(500, 16, 60), 40)
	if wrong != 0 {
		t.Errorf("PS made %d wrong confident predictions on affine sequence", wrong)
	}
	if correct < 35 {
		t.Errorf("PS confident-correct = %d, want ≥ 35", correct)
	}
}

func TestPSDistinguishesStridesByPath(t *testing.T) {
	// One instruction whose delta depends on the preceding branch direction:
	// +1 after taken, +100 after not-taken. A plain stride predictor cannot
	// hold both strides; PS keys the stride on history bits.
	var h ghist.History
	p := NewPS(10, 10, FPCBaseline, 1, &h)
	v := Value(0)
	correct, confident := 0, 0
	const n, tail = 4000, 500
	for i := 0; i < n; i++ {
		taken := (i/4)%2 == 0 // direction changes every 4 iterations
		h.Push(taken, 0x77)
		h.Push(taken, 0x78) // widen the path signature
		delta := Value(100)
		if taken {
			delta = 1
		}
		v += delta
		m := predict(p, 42)
		m.Seq = uint64(i)
		p.FeedSpec(42, v, uint64(i))
		if i >= n-tail && m.Conf {
			confident++
			if m.Pred == v {
				correct++
			}
		}
		p.Train(42, v, &m)
	}
	if confident == 0 {
		t.Fatal("PS never confident on path-dependent strides")
	}
	if acc := float64(correct) / float64(confident); acc < 0.7 {
		t.Errorf("PS accuracy on path-dependent strides = %.3f, want ≥ 0.7", acc)
	}
}

func TestPSSquashAndStorage(t *testing.T) {
	var h ghist.History
	p := NewPS(10, 10, FPCBaseline, 1, &h)
	p.FeedSpec(1, 5, 10)
	p.Squash(10)
	if m := predict(p, 1); m.Conf {
		t.Error("fresh PS confident")
	}
	if p.StorageBits() <= 0 {
		t.Error("PS storage not accounted")
	}
	if p.Name() != "PS" {
		t.Errorf("Name = %q", p.Name())
	}
}

// --- gDiff ---

// driveGDiff runs a synthetic stream where instruction B's result always
// equals (last result of instruction A) + delta: the global-stride pattern
// gDiff exists to capture and no per-PC predictor can.
func driveGDiff(p *GDiff, n, tail int, delta Value) (confCorrect, confWrong int) {
	seq := uint64(0)
	x := Value(1000)
	for i := 0; i < n; i++ {
		// Instruction A produces an erratic value.
		x = x*6364136223846793005 + 1442695040888963407
		ma := predict(p, 10)
		ma.Seq = seq
		p.FeedSpec(10, x, seq)
		p.Train(10, x, &ma)
		seq++

		// Instruction B produces A's result plus delta.
		want := x + delta
		mb := predict(p, 20)
		mb.Seq = seq
		if mb.Conf && i >= n-tail {
			if mb.Pred == want {
				confCorrect++
			} else {
				confWrong++
			}
		}
		p.FeedSpec(20, want, seq)
		p.Train(20, want, &mb)
		seq++
	}
	return
}

func TestGDiffCapturesGlobalStride(t *testing.T) {
	p := NewGDiff(10, FPCBaseline, 1)
	correct, wrong := driveGDiff(p, 500, 300, 7)
	if wrong != 0 {
		t.Errorf("gDiff made %d wrong confident predictions on global stride", wrong)
	}
	if correct < 250 {
		t.Errorf("gDiff confident-correct = %d, want ≥ 250", correct)
	}
}

func TestLVPCannotCaptureGlobalStride(t *testing.T) {
	// Sanity companion: the same stream defeats a per-PC last value
	// predictor (values of B are erratic per PC).
	p := NewLVP(10, FPCBaseline, 1)
	x := Value(1000)
	confident := 0
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		m := predict(p, 20)
		if m.Conf {
			confident++
		}
		p.Train(20, x+7, &m)
	}
	if confident > 5 {
		t.Errorf("LVP confident %d times on erratic global-stride values", confident)
	}
}

func TestGDiffRingRepairOnRefetch(t *testing.T) {
	p := NewGDiff(10, FPCBaseline, 1)
	// Feed occurrences 1..5, then a refetch starting over at 3: the ring
	// must discard 3..5 before re-inserting.
	for s := uint64(1); s <= 5; s++ {
		p.FeedSpec(uint64(100+s), Value(s*10), s)
	}
	p.FeedSpec(103, 999, 3) // refetch of occurrence 3 with a new value
	var snap [gdiffDepth]Value
	p.snapshot(&snap)
	if snap[0] != 999 {
		t.Errorf("newest after refetch = %d, want 999", snap[0])
	}
	if snap[1] != 20 {
		t.Errorf("second-newest after refetch = %d, want 20 (occurrence 2)", snap[1])
	}
}

func TestGDiffStorageAndName(t *testing.T) {
	p := NewGDiff(10, FPCBaseline, 1)
	if p.StorageBits() <= 0 {
		t.Error("gDiff storage not accounted")
	}
	if p.Name() != "gDiff" {
		t.Errorf("Name = %q", p.Name())
	}
	p.Squash(0) // no-op, must not panic
}
