package core

import (
	"testing"
	"testing/quick"
)

func TestLFSRNonZeroAndPeriodic(t *testing.T) {
	l := NewLFSR(1)
	seen := map[uint32]bool{}
	for i := 0; i < 100000; i++ {
		v := l.Next()
		if v == 0 {
			t.Fatal("LFSR reached the all-zero fixed point")
		}
		seen[v] = true
	}
	if len(seen) < 99000 {
		t.Errorf("LFSR produced only %d distinct values in 100k steps", len(seen))
	}
}

func TestLFSRZeroSeedIsUsable(t *testing.T) {
	l := NewLFSR(0)
	if l.Next() == 0 {
		t.Error("zero-seeded LFSR stuck at zero")
	}
}

func TestTakeProbZeroShiftAlwaysFires(t *testing.T) {
	l := NewLFSR(42)
	for i := 0; i < 100; i++ {
		if !l.TakeProb(0) {
			t.Fatal("TakeProb(0) returned false")
		}
	}
}

func TestTakeProbRate(t *testing.T) {
	// A shift of k should fire with probability about 2^-k.
	for _, shift := range []uint8{3, 4, 5} {
		l := NewLFSR(7)
		n := 1 << 18
		hits := 0
		for i := 0; i < n; i++ {
			if l.TakeProb(shift) {
				hits++
			}
		}
		want := float64(n) / float64(int(1)<<shift)
		got := float64(hits)
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("shift %d: %d hits in %d trials, want about %.0f", shift, hits, n, want)
		}
	}
}

func TestExpectedStreak(t *testing.T) {
	tests := []struct {
		vec  FPCVector
		want int
	}{
		{FPCBaseline, 7}, // plain 3-bit counter
		{FPCCommit, 129}, // ≈ 7-bit counter (paper Section 5)
		{FPCReissue, 65}, // ≈ 6-bit counter
	}
	for _, tt := range tests {
		if got := tt.vec.ExpectedStreak(); got != tt.want {
			t.Errorf("ExpectedStreak(%v) = %d, want %d", tt.vec, got, tt.want)
		}
	}
}

func TestBaselineCounterSaturatesInSevenSteps(t *testing.T) {
	c := NewConfidence(FPCBaseline, 1)
	ctr := uint8(0)
	for i := 0; i < 7; i++ {
		if Saturated(ctr) {
			t.Fatalf("saturated after only %d bumps", i)
		}
		ctr = c.Bump(ctr)
	}
	if !Saturated(ctr) {
		t.Error("baseline counter not saturated after 7 bumps")
	}
	if c.Bump(ctr) != ConfMax {
		t.Error("Bump above saturation must stay saturated")
	}
}

// Property: counters never exceed ConfMax and never decrease on Bump.
func TestBumpMonotoneProperty(t *testing.T) {
	c := NewConfidence(FPCCommit, 99)
	f := func(start uint8) bool {
		ctr := start % (ConfMax + 1)
		next := c.Bump(ctr)
		return next >= ctr && next <= ConfMax && next-ctr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The FPC saturation time should statistically match the wide counter it
// mimics: mean streak to saturate under FPCCommit ≈ 129 correct predictions.
func TestFPCSaturationTimeMimicsWideCounter(t *testing.T) {
	c := NewConfidence(FPCCommit, 12345)
	const trials = 2000
	total := 0
	for i := 0; i < trials; i++ {
		ctr := uint8(0)
		steps := 0
		for !Saturated(ctr) {
			ctr = c.Bump(ctr)
			steps++
			if steps > 100000 {
				t.Fatal("counter failed to saturate")
			}
		}
		total += steps
	}
	mean := float64(total) / trials
	if mean < 110 || mean > 150 {
		t.Errorf("mean saturation streak = %.1f, want ≈ 129", mean)
	}
}

func TestFPCReissueSaturationTime(t *testing.T) {
	c := NewConfidence(FPCReissue, 777)
	const trials = 2000
	total := 0
	for i := 0; i < trials; i++ {
		ctr := uint8(0)
		for !Saturated(ctr) {
			ctr = c.Bump(ctr)
			total++
		}
	}
	mean := float64(total) / trials
	if mean < 55 || mean > 78 {
		t.Errorf("mean saturation streak = %.1f, want ≈ 65", mean)
	}
}
