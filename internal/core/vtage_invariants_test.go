package core

import (
	"testing"

	"repro/internal/ghist"
)

// White-box invariants of the VTAGE update automaton (Section 6): where
// allocation on a misprediction may land, what a fresh allocation must look
// like, the u-bit decay when every candidate is useful, and the confidence
// hysteresis protecting a confident value from a single misprediction.

func newInvariantVTAGE(t *testing.T) (*VTAGE, *ghist.History) {
	t.Helper()
	h := &ghist.History{}
	cfg := DefaultVTAGEConfig(FPCBaseline)
	cfg.LogBase = 6
	cfg.LogTagged = 5
	return NewVTAGE(cfg, h), h
}

// allocatedComps returns the tagged components whose fetch-indexed entry now
// carries the fetch-time tag of m (i.e. could serve this pc next time).
func allocatedComps(p *VTAGE, m *Meta) []int {
	var out []int
	for k := 0; k < NComp; k++ {
		if p.comps[k].entries[m.C1.Idx[k+1]].tag == m.C1.Tag[k] {
			out = append(out, k)
		}
	}
	return out
}

func TestVTAGEMispredictAllocatesLongerHistoryEntry(t *testing.T) {
	p, _ := newInvariantVTAGE(t)
	var m Meta
	p.Predict(100, &m)
	if m.C1.Prov != -1 {
		t.Fatalf("fresh predictor has a tagged provider %d", m.C1.Prov)
	}
	before := len(allocatedComps(p, &m))
	p.Train(100, 5, &m) // base predicts 0 -> mispredict -> allocate

	alloc := allocatedComps(p, &m)
	if len(alloc) != before+1 {
		t.Fatalf("allocations after one mispredict: %d, want %d", len(alloc), before+1)
	}
	// The new entry must start unconfident and not-useful with the actual
	// value, in a component using a longer history than the (base) provider.
	k := alloc[len(alloc)-1]
	e := &p.comps[k].entries[m.C1.Idx[k+1]]
	if e.val != 5 || e.c != 0 || e.u != 0 {
		t.Errorf("fresh allocation = {val %d, c %d, u %d}, want {5, 0, 0}", e.val, e.c, e.u)
	}
}

func TestVTAGEAllUsefulCandidatesDecayInsteadOfAllocate(t *testing.T) {
	p, _ := newInvariantVTAGE(t)
	var m Meta
	p.Predict(200, &m)
	if m.C1.Prov != -1 {
		t.Fatalf("unexpected provider %d", m.C1.Prov)
	}
	// Mark every candidate entry useful and remember its identity.
	type snap struct {
		tag uint16
		val Value
	}
	var snaps [NComp]snap
	for k := 0; k < NComp; k++ {
		e := &p.comps[k].entries[m.C1.Idx[k+1]]
		e.u = 1
		snaps[k] = snap{e.tag, e.val}
	}
	p.Train(200, 9, &m) // mispredict with no allocatable candidate

	for k := 0; k < NComp; k++ {
		e := &p.comps[k].entries[m.C1.Idx[k+1]]
		if e.u != 0 {
			t.Errorf("comp %d: u bit not decayed", k)
		}
		if e.tag != snaps[k].tag || e.val != snaps[k].val {
			t.Errorf("comp %d: entry replaced despite all candidates useful", k)
		}
	}
}

func TestVTAGEConfidenceActsAsValueHysteresis(t *testing.T) {
	p, _ := newInvariantVTAGE(t)
	var m Meta
	// Saturate the base entry on value 0: every prediction is correct (a
	// fresh base already holds 0), so no tagged entry is ever allocated and
	// the base stays the provider throughout.
	for i := 0; i < ConfMax+1; i++ {
		p.Predict(300, &m)
		p.Train(300, 0, &m)
	}
	b := &p.base[m.C1.Idx[0]]
	if b.val != 0 || !Saturated(b.c) {
		t.Fatalf("base entry not saturated on 0: {val %d, c %d}", b.val, b.c)
	}
	// First misprediction: confidence resets, value survives (hysteresis).
	p.Predict(300, &m)
	if m.C1.Prov != -1 {
		t.Fatalf("provider %d, want base", m.C1.Prov)
	}
	p.Train(300, 1000, &m)
	if b.val != 0 || b.c != 0 {
		t.Fatalf("after first mispredict: {val %d, c %d}, want {0, 0}", b.val, b.c)
	}
	// Second misprediction at zero confidence: value is replaced. The first
	// mispredict allocated a tagged entry, so pin the base as provider by
	// reusing the fetch-time Meta (its base prediction is still 0).
	p.Train(300, 1000, &m)
	if b.val != 1000 {
		t.Fatalf("after second mispredict: val %d, want 1000", b.val)
	}
}

func TestVTAGEProviderUpdateSetsUsefulness(t *testing.T) {
	p, _ := newInvariantVTAGE(t)
	var m Meta
	p.Predict(400, &m)
	p.Train(400, 3, &m) // allocate a tagged entry for pc 400

	// Find the allocated component and make it the provider.
	p.Predict(400, &m)
	if m.C1.Prov < 0 {
		t.Skip("allocation landed on a colliding tag; provider did not form")
	}
	k := int(m.C1.Prov)
	e := &p.comps[k].entries[m.C1.Idx[k+1]]
	p.Train(400, m.C1.Pred, &m) // correct prediction by the provider
	if e.u != 1 {
		t.Error("correct provider prediction did not set the u bit")
	}
	p.Predict(400, &m)
	p.Train(400, m.C1.Pred+1, &m) // wrong provider prediction
	if e.u != 0 {
		t.Error("wrong provider prediction did not clear the u bit")
	}
}
