package core

import (
	"math"

	"repro/internal/ghist"
)

// VTAGE is the Value TAgged GEometric history length predictor (Section 6),
// derived from the ITTAGE indirect branch predictor. A tagless last-value
// base component is backed by NComp tagged components indexed by the µop PC
// hashed with geometrically increasing slices of the global branch history
// and the path history. The matching component with the longest history
// provides the prediction; only the provider is updated at commit.
//
// Because the prediction depends only on the PC and control-flow history —
// never on previous values of the same µop — VTAGE has no speculative
// per-PC value state to track and can predict back-to-back occurrences of an
// instruction even with a multi-cycle lookup (Section 3.2).
type VTAGE struct {
	hist *ghist.History

	base     []vtageBase
	baseMask uint64

	comps [NComp]vtageComp
	conf  *Confidence
	rng   *LFSR
}

type vtageBase struct {
	val Value
	c   uint8
}

type vtageComp struct {
	entries  []vtageEntry
	mask     uint64
	histLen  int
	tagBits  int
	idxFold  ghist.Fold
	tagFoldA ghist.Fold
	tagFoldB ghist.Fold
	pathFold ghist.Fold
}

type vtageEntry struct {
	tag uint16
	val Value
	c   uint8
	u   uint8 // 1-bit usefulness for the replacement policy
}

// VTAGEConfig sizes a VTAGE predictor.
type VTAGEConfig struct {
	LogBase    int // log2 entries in the tagless base (paper: 13 → 8K)
	LogTagged  int // log2 entries per tagged component (paper: 10 → 1K)
	MinHist    int // shortest history length (paper: 2)
	MaxHist    int // longest history length (paper: 64)
	TagBitsMin int // tag width of component 1 (paper: 12+1)
	Vector     FPCVector
	Seed       uint32
}

// DefaultVTAGEConfig is the paper's Table 1 configuration.
func DefaultVTAGEConfig(vec FPCVector) VTAGEConfig {
	return VTAGEConfig{
		LogBase:    13,
		LogTagged:  10,
		MinHist:    2,
		MaxHist:    64,
		TagBitsMin: 13,
		Vector:     vec,
		Seed:       0x5EED,
	}
}

// NewVTAGE builds a VTAGE predictor reading (and sharing) the global history
// h, which the pipeline updates at fetch and repairs on squash.
func NewVTAGE(cfg VTAGEConfig, h *ghist.History) *VTAGE {
	p := &VTAGE{
		hist: h,
		base: make([]vtageBase, 1<<cfg.LogBase),
		conf: NewConfidence(cfg.Vector, cfg.Seed),
		rng:  NewLFSR(cfg.Seed*2 + 1),
	}
	p.baseMask = uint64(len(p.base) - 1)

	// Geometric history series from MinHist to MaxHist (paper: 2,4,...,64).
	ratio := 1.0
	if NComp > 1 {
		ratio = math.Pow(float64(cfg.MaxHist)/float64(cfg.MinHist), 1.0/float64(NComp-1))
	}
	hl := float64(cfg.MinHist)
	for i := 0; i < NComp; i++ {
		n := 1 << cfg.LogTagged
		L := int(hl + 0.5)
		c := &p.comps[i]
		c.entries = make([]vtageEntry, n)
		c.mask = uint64(n - 1)
		c.histLen = L
		c.tagBits = cfg.TagBitsMin + i
		c.idxFold = h.RegisterFold(L, cfg.LogTagged, false)
		c.tagFoldA = h.RegisterFold(L, c.tagBits, false)
		c.tagFoldB = h.RegisterFold(L, c.tagBits-1, false)
		c.pathFold = h.RegisterFold(minInt(L, 16), cfg.LogTagged, true)
		hl *= ratio
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// index and tag computation for component k at the current history state.
func (p *VTAGE) compIndex(k int, pc uint64) uint32 {
	c := &p.comps[k]
	h := hashPC(pc)
	return uint32((h ^ h>>uint(10+k) ^ p.hist.Folded(c.idxFold) ^ p.hist.Folded(c.pathFold)) & c.mask)
}

func (p *VTAGE) compTag(k int, pc uint64) uint16 {
	c := &p.comps[k]
	h := hashPC(pc ^ 0x7F4A7C15)
	mask := uint64(1)<<c.tagBits - 1
	return uint16((h ^ p.hist.Folded(c.tagFoldA) ^ p.hist.Folded(c.tagFoldB)<<1) & mask)
}

// Predict implements Predictor. All components are searched in parallel; the
// hitting component with the longest history provides the prediction.
func (p *VTAGE) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	m.C1.Prov = -1
	m.C1.Idx[0] = uint32(hashPC(pc) & p.baseMask)
	for k := 0; k < NComp; k++ {
		idx := p.compIndex(k, pc)
		tag := p.compTag(k, pc)
		m.C1.Idx[k+1] = idx
		m.C1.Tag[k] = tag
		if p.comps[k].entries[idx].tag == tag {
			m.C1.Prov = int8(k)
		}
	}
	if k := m.C1.Prov; k >= 0 {
		e := &p.comps[k].entries[m.C1.Idx[k+1]]
		m.Pred = e.val
		m.Conf = Saturated(e.c)
	} else {
		b := &p.base[m.C1.Idx[0]]
		m.Pred = b.val
		m.Conf = Saturated(b.c)
	}
	m.C1.Pred = m.Pred
	m.C1.Conf = m.Conf
}

// Train implements Predictor, applying the update automaton of Section 6 at
// commit time using the fetch-time indices and tags captured in m.
func (p *VTAGE) Train(pc uint64, actual Value, m *Meta) {
	cm := &m.C1
	correct := cm.Pred == actual

	if k := cm.Prov; k >= 0 {
		e := &p.comps[k].entries[cm.Idx[k+1]]
		if e.tag == cm.Tag[k] {
			p.updateEntry(&e.val, &e.c, actual, correct)
			if correct {
				e.u = 1
			} else {
				e.u = 0
			}
		}
	} else {
		b := &p.base[cm.Idx[0]]
		p.updateEntry(&b.val, &b.c, actual, correct)
	}
	if correct {
		return
	}

	// Misprediction: allocate in a component using a longer history than the
	// provider. Pick randomly among not-useful candidates; if none, reset
	// the u bit of every candidate entry instead (decay), allocating nothing.
	lo := int(cm.Prov) + 1
	var candidates [NComp]int
	nc := 0
	for k := lo; k < NComp; k++ {
		if p.comps[k].entries[cm.Idx[k+1]].u == 0 {
			candidates[nc] = k
			nc++
		}
	}
	if nc == 0 {
		for k := lo; k < NComp; k++ {
			p.comps[k].entries[cm.Idx[k+1]].u = 0
		}
		return
	}
	k := candidates[int(p.rng.Next())%nc]
	p.comps[k].entries[cm.Idx[k+1]] = vtageEntry{
		tag: cm.Tag[k],
		val: actual,
		c:   0,
		u:   0,
	}
}

// updateEntry applies the shared value/confidence automaton: correct
// predictions raise confidence probabilistically; a misprediction resets a
// confident counter, and replaces the value only once confidence is zero
// (the "c acts as hysteresis" rule of Section 6).
func (p *VTAGE) updateEntry(val *Value, c *uint8, actual Value, correct bool) {
	if correct {
		*c = p.conf.Bump(*c)
		return
	}
	if *c == 0 {
		*val = actual
	} else {
		*c = 0
	}
}

// Squash implements Predictor. VTAGE keeps no speculative per-PC value
// state; the shared global history is rolled back by the pipeline.
func (p *VTAGE) Squash(fromSeq uint64) {}

// Name implements Predictor.
func (p *VTAGE) Name() string { return "VTAGE" }

// StorageBits implements Predictor: base entries hold value+confidence;
// tagged entries add the partial tag and the u bit (Table 1: 68.6 kB +
// 64.1 kB in the paper's configuration).
func (p *VTAGE) StorageBits() int {
	bits := len(p.base) * (64 + 3)
	for i := range p.comps {
		c := &p.comps[i]
		bits += len(c.entries) * (c.tagBits + 64 + 3 + 1)
	}
	return bits
}

// HistLen returns the history length of tagged component k (for tests and
// the Table 1 printer).
func (p *VTAGE) HistLen(k int) int { return p.comps[k].histLen }
