package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ghist"
)

func TestVTAGEHistoryLengthsAreGeometric(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	want := []int{2, 4, 8, 16, 32, 64}
	for k := 0; k < NComp; k++ {
		if got := p.HistLen(k); got != want[k] {
			t.Errorf("component %d history length = %d, want %d", k, got, want[k])
		}
	}
}

func TestVTAGEBaseActsAsLVP(t *testing.T) {
	// With no branch history activity, VTAGE's base component learns
	// constants exactly like LVP.
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	correct, wrong := drive(p, 42, constSeq(77, 40), 25)
	if wrong != 0 {
		t.Errorf("VTAGE wrong confident predictions on constant: %d", wrong)
	}
	if correct < 25 {
		t.Errorf("VTAGE confident-correct = %d, want 25", correct)
	}
}

// branchCorrelatedRun simulates a µop whose value is determined by the
// preceding branch outcome — the pattern VTAGE is built for and that LVP and
// Stride cannot capture.
func branchCorrelatedRun(p Predictor, h *ghist.History, n int, tail int) (confCorrect, confWrong int) {
	const pc = 7
	vals := [2]Value{111, 999}
	for i := 0; i < n; i++ {
		dir := (i/3)%2 == 0 // direction alternates every 3 iterations
		h.Push(dir, 0x40)
		v := vals[0]
		if dir {
			v = vals[1]
		}
		m := predict(p, pc)
		if m.Conf && i >= n-tail {
			if m.Pred == v {
				confCorrect++
			} else {
				confWrong++
			}
		}
		p.Train(pc, v, &m)
	}
	return
}

func TestVTAGECapturesControlFlowCorrelatedValues(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	correct, wrong := branchCorrelatedRun(p, &h, 3000, 500)
	total := correct + wrong
	if total == 0 {
		t.Fatal("VTAGE never became confident on branch-correlated values")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("VTAGE accuracy on branch-correlated values = %.3f, want ≥ 0.95", acc)
	}
	if correct < 250 {
		t.Errorf("VTAGE coverage too low: %d confident-correct of last 500", correct)
	}
}

func TestLVPCannotCaptureControlFlowCorrelatedValues(t *testing.T) {
	var h ghist.History
	p := NewLVP(13, FPCBaseline, 1)
	correct, wrong := branchCorrelatedRun(p, &h, 3000, 500)
	// The value changes every 3 occurrences; a 3-bit confidence counter
	// needs 7 repeats, so LVP should essentially never be confident.
	if correct+wrong > 50 {
		t.Errorf("LVP was confident %d times on branch-correlated values", correct+wrong)
	}
}

func TestVTAGEAllocatesOnMisprediction(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)

	// Push some history so tagged components have context to hash.
	for i := 0; i < 64; i++ {
		h.Push(i%2 == 0, uint64(i))
	}
	m := predict(p, 5)
	if m.C1.Prov != -1 {
		t.Fatalf("fresh predictor has provider %d, want base (-1)", m.C1.Prov)
	}
	p.Train(5, 123, &m) // base learns 123... and a mispredict (pred was 0)
	m2 := predict(p, 5)
	// After the mispredicting first occurrence an upper entry was allocated.
	if m2.C1.Prov < 0 {
		t.Error("no tagged component allocated after misprediction")
	}
	if m2.Pred != 123 {
		t.Errorf("allocated entry predicts %d, want 123", m2.Pred)
	}
}

func TestVTAGEUsefulBitProtectsEntries(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	for i := 0; i < 10; i++ {
		h.Push(true, uint64(i))
	}
	// Train one PC until its provider entry is useful (correct prediction).
	var m Meta
	for i := 0; i < 5; i++ {
		m = predict(p, 11)
		p.Train(11, 55, &m)
	}
	m = predict(p, 11)
	if m.Pred != 55 {
		t.Fatalf("prediction = %d, want 55", m.Pred)
	}
	prov := m.C1.Prov
	if prov >= 0 {
		e := p.comps[prov].entries[m.C1.Idx[prov+1]]
		if e.u != 1 {
			t.Error("provider entry not marked useful after correct prediction")
		}
	}
}

func TestVTAGEConfidenceGatesUse(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCCommit), &h)
	// With FPCCommit (expected streak 129) a short constant run must NOT
	// produce confident predictions.
	correct, wrong := drive(p, 3, constSeq(9, 30), 30)
	if correct+wrong != 0 {
		t.Errorf("FPC-commit VTAGE confident after only 30 occurrences (%d uses)", correct+wrong)
	}
}

func TestVTAGEStorageMatchesPaper(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	gotKB := float64(p.StorageBits()) / 8 / 1000
	// Paper: 68.6 + 64.1 = 132.7 kB.
	if gotKB < 125 || gotKB > 140 {
		t.Errorf("VTAGE storage = %.1f kB, want ≈ 132.7 kB", gotKB)
	}
}

// Property: Predict never panics and the provider index is always in range
// for arbitrary PCs and history states.
func TestVTAGEPredictRobustProperty(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	f := func(pc uint64, taken bool, bpc uint16) bool {
		h.Push(taken, uint64(bpc))
		m := predict(p, pc)
		if m.C1.Prov < -1 || m.C1.Prov >= NComp {
			return false
		}
		p.Train(pc, pc*3, &m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: with a rolled-back history, VTAGE indices are reproducible —
// predicting, pushing noise, rolling back, and predicting again yields the
// same indices and tags (the pipeline relies on this for squash repair).
func TestVTAGEIndicesStableUnderRollback(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	for i := 0; i < 100; i++ {
		h.Push(i%3 == 0, uint64(i))
	}
	pos := h.Pos()
	m1 := predict(p, 77)
	for i := 0; i < 40; i++ {
		h.Push(i%2 == 0, uint64(1000+i))
	}
	h.RollTo(pos)
	m2 := predict(p, 77)
	if m1.C1.Idx != m2.C1.Idx || m1.C1.Tag != m2.C1.Tag {
		t.Error("VTAGE indices/tags not reproducible after history rollback")
	}
}

// Property: component tags always fit their declared widths (12+rank bits).
func TestVTAGETagWidthProperty(t *testing.T) {
	var h ghist.History
	p := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	f := func(pc uint64, taken bool) bool {
		h.Push(taken, pc)
		m := predict(p, pc)
		for k := 0; k < NComp; k++ {
			if uint64(m.C1.Tag[k]) >= uint64(1)<<(13+k) {
				return false
			}
			if m.C1.Idx[k+1] >= 1024 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Two VTAGE instances over histories fed identically must produce identical
// predictions — determinism across the shared-history boundary.
func TestVTAGEDeterministicAcrossInstances(t *testing.T) {
	var h1, h2 ghist.History
	p1 := NewVTAGE(DefaultVTAGEConfig(FPCCommit), &h1)
	p2 := NewVTAGE(DefaultVTAGEConfig(FPCCommit), &h2)
	for i := 0; i < 2000; i++ {
		taken := i%3 == 0
		h1.Push(taken, uint64(i%7))
		h2.Push(taken, uint64(i%7))
		pc := uint64(i % 13)
		m1 := predict(p1, pc)
		m2 := predict(p2, pc)
		if m1.Pred != m2.Pred || m1.Conf != m2.Conf {
			t.Fatalf("instances diverged at step %d", i)
		}
		v := Value(i % 5)
		p1.Train(pc, v, &m1)
		p2.Train(pc, v, &m2)
	}
}
