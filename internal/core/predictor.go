// Package core implements the paper's primary contribution: hardware value
// prediction with Forward Probabilistic Counter (FPC) confidence estimation
// and the VTAGE global-branch-history value predictor, together with every
// predictor the paper compares against — LVP, the 2-delta Stride predictor,
// an order-4 Finite Context Method predictor, the symmetric hybrids of
// Section 7.1.2, and the oracle predictor used for the Figure 3 upper bound.
//
// All predictors share one interface. Predictions are made in program order
// at fetch time (so context-based predictors see the right global history)
// and trained in program order at commit time with the architectural value,
// exactly as in the paper's commit-time-validation design. The Meta value
// returned by Predict carries per-prediction bookkeeping (provider component,
// fetch-time table indices and tags) back to Train, playing the role of the
// payload that travels with the µop through the real pipeline.
package core

// Value is a 64-bit data value, the unit of value prediction.
type Value = uint64

// NComp is the number of tagged VTAGE components; component 0 in Meta index
// slots is the base predictor, 1..NComp the tagged tables.
const NComp = 6

// CompMeta is the per-component bookkeeping captured at prediction time.
type CompMeta struct {
	Pred Value             // this component's best-guess prediction
	Conf bool              // and whether it was confident
	Prov int8              // provider: -1 base, 0..NComp-1 tagged, -2 none/nohit
	Idx  [NComp + 1]uint32 // fetch-time table indices (slot 0 = base)
	Tag  [NComp]uint16     // fetch-time tags for the tagged components
}

// Meta travels with a µop from Predict (fetch) to Train (commit).
type Meta struct {
	Seq  uint64 // dynamic occurrence id, stamped by the pipeline after Predict
	Pred Value  // the exposed prediction (best guess, valid even if !Conf)
	Conf bool   // true if the pipeline may use the prediction
	C1   CompMeta
	C2   CompMeta // second component for hybrids

	// GVH is the fetch-time global value history snapshot used by the gDiff
	// extension predictor (newest first).
	GVH [gdiffDepth]Value
}

// Predictor is a hardware value predictor. Implementations are not safe for
// concurrent use; the pipeline drives them from a single goroutine, mirroring
// the single in-order front-end of the machine.
type Predictor interface {
	// Predict fills m with the prediction for the next dynamic occurrence of
	// the µop at pc. It must be called in fetch order: context-based
	// predictors read the current global history, and computational
	// predictors advance their speculative per-PC value state.
	//
	// m is caller-provided scratch (typically the µop's in-flight payload
	// slot) and must be fully overwritten — nothing survives from its
	// previous use. Passing the scratch in rather than returning a Meta keeps
	// the per-µop hot path free of large value copies and heap escapes.
	Predict(pc uint64, m *Meta)

	// Train updates the predictor with the architectural result of the µop,
	// in commit order. m is the Meta returned by the matching Predict.
	Train(pc uint64, actual Value, m *Meta)

	// Squash discards speculative per-PC state (in-flight last values,
	// speculative value histories) belonging to occurrences with sequence
	// number >= fromSeq after a pipeline flush; older in-flight state
	// survives. This models the in-flight occurrence tracking Section 3.2
	// requires of computational and local-history predictors. Global branch
	// history repair is the pipeline's job (ghist.RollTo).
	Squash(fromSeq uint64)

	// Snapshot returns an opaque deep copy of all mutable state (tables,
	// LFSRs, speculative windows) for warm-state reuse. The pipeline calls
	// it at the warmup boundary; see DESIGN.md §9.
	Snapshot() PredictorState

	// Restore reinstates a snapshot taken from an identically configured
	// predictor of the same type, in place (the instance is not replaced, so
	// shared global-history wiring survives). It panics on a type mismatch.
	Restore(st PredictorState)

	// Name identifies the predictor in tables and figures.
	Name() string

	// StorageBits returns the total storage cost in bits (Table 1).
	StorageBits() int
}

// OracleFeed is implemented by predictors that must be told the actual
// outcome before Predict — only the perfect predictor of Figure 3.
type OracleFeed interface {
	FeedActual(v Value)
}

// SpecFeeder is implemented by predictors that track the speculative last
// occurrence(s) of each µop (stride and FCM families). The pipeline feeds
// the value of each fetched occurrence — the paper's Section 7.1 idealized
// speculative window, where the predictor always sees the last speculative
// occurrences of every in-flight instruction — tagged with the occurrence's
// sequence number so squash repair is precise.
type SpecFeeder interface {
	FeedSpec(pc uint64, v Value, seq uint64)
}

// hashPC mixes a µop index into a well-distributed 64-bit hash
// (SplitMix64 finalizer).
func hashPC(pc uint64) uint64 {
	z := pc + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
