package core

// ConfMax is the saturated value of the 3-bit confidence counters. A
// prediction is used by the pipeline only when its counter is saturated, and
// counters reset to zero on any misprediction (Section 5).
const ConfMax = 7

// FPCVector parameterizes a Forward Probabilistic Counter: entry i is
// log2(1/p_i), the inverse-power-of-two probability of taking the forward
// transition from state i to state i+1. Entry 0 is always 0 (probability 1)
// in the paper's vectors.
type FPCVector [ConfMax]uint8

// The paper's probability vectors (Section 5).
var (
	// FPCBaseline is the deterministic 3-bit counter: every correct
	// prediction increments by one. v = {1,1,1,1,1,1,1}.
	FPCBaseline = FPCVector{0, 0, 0, 0, 0, 0, 0}

	// FPCCommit mimics a 7-bit counter and is used with pipeline squashing
	// at commit: v = {1, 1/16, 1/16, 1/16, 1/16, 1/32, 1/32}.
	FPCCommit = FPCVector{0, 4, 4, 4, 4, 5, 5}

	// FPCReissue mimics a 6-bit counter and is used with selective reissue:
	// v = {1, 1/8, 1/8, 1/8, 1/8, 1/16, 1/16}.
	FPCReissue = FPCVector{0, 3, 3, 3, 3, 4, 4}
)

// ExpectedStreak returns the expected number of consecutive correct
// predictions needed to saturate a counter from zero: sum of 2^shift over
// the transitions. FPCCommit yields 129 (≈ a 7-bit counter's 128),
// FPCReissue 65 (≈ 6-bit), FPCBaseline 7.
func (v FPCVector) ExpectedStreak() int {
	n := 0
	for _, s := range v {
		n += 1 << s
	}
	return n
}

// Confidence implements the paper's confidence automaton over 3-bit
// counters stored by the caller: forward transitions are probabilistic
// (FPC), misprediction resets to zero, and only saturated counters allow the
// prediction to be used.
type Confidence struct {
	vec FPCVector
	rng *LFSR
}

// NewConfidence returns a confidence automaton using vector vec and an LFSR
// seeded with seed.
func NewConfidence(vec FPCVector, seed uint32) *Confidence {
	return &Confidence{vec: vec, rng: NewLFSR(seed)}
}

// Bump returns the counter value after a correct prediction: ctr+1 with the
// vector's transition probability, saturating at ConfMax.
func (c *Confidence) Bump(ctr uint8) uint8 {
	if ctr >= ConfMax {
		return ConfMax
	}
	if c.rng.TakeProb(c.vec[ctr]) {
		return ctr + 1
	}
	return ctr
}

// Saturated reports whether a counter allows the prediction to be used.
func Saturated(ctr uint8) bool { return ctr >= ConfMax }
