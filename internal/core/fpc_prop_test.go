package core

import (
	"math"
	"testing"
)

// TestFPCTransitionFrequencies is the seeded-LFSR property test for forward
// probabilistic counters: for every state of every paper vector, the
// empirical frequency of the forward transition must match the vector's
// probability 2^-v[i] within binomial-noise tolerance. This pins both the
// vectors themselves (Section 5) and the LFSR's suitability as their
// randomness source — a biased or correlated generator would silently change
// the effective counter width.
func TestFPCTransitionFrequencies(t *testing.T) {
	const trials = 200_000
	vectors := map[string]FPCVector{
		"baseline": FPCBaseline,
		"commit":   FPCCommit,
		"reissue":  FPCReissue,
	}
	for name, vec := range vectors {
		c := NewConfidence(vec, 0xBEEF)
		for state := uint8(0); state < ConfMax; state++ {
			want := 1.0 / float64(uint64(1)<<vec[state])
			taken := 0
			for i := 0; i < trials; i++ {
				if c.Bump(state) == state+1 {
					taken++
				}
			}
			got := float64(taken) / trials
			// Tolerance: 6 binomial standard deviations plus a small absolute
			// floor; deterministic because the LFSR seed is fixed.
			sigma := math.Sqrt(want * (1 - want) / trials)
			tol := 6*sigma + 1e-9
			if math.Abs(got-want) > tol {
				t.Errorf("%s vector, state %d: forward frequency %.5f, want %.5f ± %.5f",
					name, state, got, want, tol)
			}
		}
	}
}

// TestFPCSaturatedStateAbsorbs pins the automaton's endpoints: Bump saturates
// at ConfMax and stays there.
func TestFPCSaturatedStateAbsorbs(t *testing.T) {
	c := NewConfidence(FPCCommit, 1)
	for i := 0; i < 1000; i++ {
		if got := c.Bump(ConfMax); got != ConfMax {
			t.Fatalf("Bump(ConfMax) = %d", got)
		}
	}
}

// TestFPCExpectedStreakMatchesEmpirical checks that the expected number of
// consecutive correct predictions to saturate from zero matches the
// analytical ExpectedStreak value (≈128 for the commit vector, ≈64 for
// reissue, exactly 7 for baseline) within 5%.
func TestFPCExpectedStreakMatchesEmpirical(t *testing.T) {
	const runs = 20_000
	for _, tc := range []struct {
		name string
		vec  FPCVector
	}{
		{"baseline", FPCBaseline},
		{"commit", FPCCommit},
		{"reissue", FPCReissue},
	} {
		c := NewConfidence(tc.vec, 0xACE1)
		total := 0
		for r := 0; r < runs; r++ {
			ctr := uint8(0)
			steps := 0
			for ctr < ConfMax {
				ctr = c.Bump(ctr)
				steps++
			}
			total += steps
		}
		got := float64(total) / runs
		want := float64(tc.vec.ExpectedStreak())
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: empirical streak to saturation %.2f, analytical %v", tc.name, got, want)
		}
	}
}
