package core

// This file implements the Snapshot/Restore contract (DESIGN.md §9) for
// every predictor. Snapshots are opaque deep copies of all mutable state —
// tables, confidence/allocation LFSRs, and the speculative in-flight
// windows — taken mid-pipeline so a warmed simulation can be resumed
// byte-identically. Restore reinstates the state in place on an identically
// configured instance of the same type: instances are never replaced, so
// shared wiring (the global history VTAGE and PS read) survives.
//
// Shared global history fold values are deliberately not captured here;
// they live in the pipeline-owned ghist.History, which has its own
// Snapshot/Restore invoked by pipeline.Sim.

// PredictorState is an opaque snapshot of one predictor's mutable state.
type PredictorState interface{ predictorState() }

type lvpState struct {
	entries []lvpEntry
	rng     uint32
}

type strideState struct {
	entries []strideEntry
	spec    map[uint64][]specVal
	rng     uint32
}

type fcmState struct {
	vht  []fcmVHTEntry // hist slices alias the snapshot's own flat backing
	vpt  []fcmVPTEntry
	spec map[uint64][]fcmSpecVal
	rng  uint32
}

type vtageState struct {
	base    []vtageBase
	comps   [NComp][]vtageEntry
	confRng uint32
	rng     uint32
}

type gdiffState struct {
	entries []gdiffEntry
	gvh     [gdiffDepth]Value
	gvhSeq  [gdiffDepth]uint64
	gvhPos  int
	rng     uint32
}

type psState struct {
	lasts   []psLast
	strides []psStride
	spec    map[uint64][]specVal
	rng     uint32
}

type hybridState struct{ a, b PredictorState }

type oracleState struct{ next Value }

func (*lvpState) predictorState()    {}
func (*strideState) predictorState() {}
func (*fcmState) predictorState()    {}
func (*vtageState) predictorState()  {}
func (*gdiffState) predictorState()  {}
func (*psState) predictorState()     {}
func (*hybridState) predictorState() {}
func (*oracleState) predictorState() {}

// copySpec deep-copies the in-flight occurrence windows.
func copySpec(spec map[uint64]*specWindow) map[uint64][]specVal {
	out := make(map[uint64][]specVal, len(spec))
	for pc, w := range spec {
		out[pc] = append([]specVal(nil), w.vals...)
	}
	return out
}

// restoreSpec reinstates windows captured by copySpec. Existing window
// objects are reused where present so their backing capacity survives.
func restoreSpec(spec map[uint64]*specWindow, st map[uint64][]specVal) {
	for pc, w := range spec {
		if _, ok := st[pc]; !ok {
			w.vals = w.vals[:0]
			delete(spec, pc)
		}
	}
	for pc, vals := range st {
		w := spec[pc]
		if w == nil {
			w = &specWindow{}
			spec[pc] = w
		}
		w.vals = append(w.vals[:0], vals...)
	}
}

// Snapshot implements Predictor.
func (p *LVP) Snapshot() PredictorState {
	return &lvpState{entries: append([]lvpEntry(nil), p.entries...), rng: p.conf.rng.s}
}

// Restore implements Predictor.
func (p *LVP) Restore(st PredictorState) {
	s := st.(*lvpState)
	copy(p.entries, s.entries)
	p.conf.rng.s = s.rng
}

// Snapshot implements Predictor.
func (p *Stride2D) Snapshot() PredictorState {
	return &strideState{
		entries: append([]strideEntry(nil), p.entries...),
		spec:    copySpec(p.spec),
		rng:     p.conf.rng.s,
	}
}

// Restore implements Predictor.
func (p *Stride2D) Restore(st PredictorState) {
	s := st.(*strideState)
	copy(p.entries, s.entries)
	restoreSpec(p.spec, s.spec)
	p.conf.rng.s = s.rng
}

// Snapshot implements Predictor.
func (p *FCM) Snapshot() PredictorState {
	st := &fcmState{
		vht:  append([]fcmVHTEntry(nil), p.vht...),
		vpt:  append([]fcmVPTEntry(nil), p.vpt...),
		spec: make(map[uint64][]fcmSpecVal, len(p.spec)),
		rng:  p.conf.rng.s,
	}
	// The live VHT hist slices all alias one flat backing array owned by the
	// predictor; give the snapshot its own.
	back := make([]uint16, len(p.vht)*p.order)
	for i := range st.vht {
		dst := back[i*p.order : (i+1)*p.order : (i+1)*p.order]
		copy(dst, p.vht[i].hist)
		st.vht[i].hist = dst
	}
	for pc, w := range p.spec {
		st.spec[pc] = append([]fcmSpecVal(nil), w.vals...)
	}
	return st
}

// Restore implements Predictor.
func (p *FCM) Restore(st PredictorState) {
	s := st.(*fcmState)
	for i := range p.vht {
		e := &p.vht[i]
		src := &s.vht[i]
		e.tag, e.c, e.ok = src.tag, src.c, src.ok
		copy(e.hist, src.hist) // values only: keep the live flat backing
	}
	copy(p.vpt, s.vpt)
	for pc, w := range p.spec {
		if _, ok := s.spec[pc]; !ok {
			w.vals = w.vals[:0]
			delete(p.spec, pc)
		}
	}
	for pc, vals := range s.spec {
		w := p.spec[pc]
		if w == nil {
			w = &fcmWindow{}
			p.spec[pc] = w
		}
		w.vals = append(w.vals[:0], vals...)
	}
	p.conf.rng.s = s.rng
}

// Snapshot implements Predictor. The fold values VTAGE reads live in the
// shared ghist.History and are captured by the pipeline's snapshot.
func (p *VTAGE) Snapshot() PredictorState {
	st := &vtageState{
		base:    append([]vtageBase(nil), p.base...),
		confRng: p.conf.rng.s,
		rng:     p.rng.s,
	}
	for k := range p.comps {
		st.comps[k] = append([]vtageEntry(nil), p.comps[k].entries...)
	}
	return st
}

// Restore implements Predictor.
func (p *VTAGE) Restore(st PredictorState) {
	s := st.(*vtageState)
	copy(p.base, s.base)
	for k := range p.comps {
		copy(p.comps[k].entries, s.comps[k])
	}
	p.conf.rng.s = s.confRng
	p.rng.s = s.rng
}

// Snapshot implements Predictor.
func (p *GDiff) Snapshot() PredictorState {
	return &gdiffState{
		entries: append([]gdiffEntry(nil), p.entries...),
		gvh:     p.gvh,
		gvhSeq:  p.gvhSeq,
		gvhPos:  p.gvhPos,
		rng:     p.conf.rng.s,
	}
}

// Restore implements Predictor.
func (p *GDiff) Restore(st PredictorState) {
	s := st.(*gdiffState)
	copy(p.entries, s.entries)
	p.gvh = s.gvh
	p.gvhSeq = s.gvhSeq
	p.gvhPos = s.gvhPos
	p.conf.rng.s = s.rng
}

// Snapshot implements Predictor. The path-selection fold lives in the
// shared ghist.History and is captured by the pipeline's snapshot.
func (p *PS) Snapshot() PredictorState {
	return &psState{
		lasts:   append([]psLast(nil), p.lasts...),
		strides: append([]psStride(nil), p.strides...),
		spec:    copySpec(p.spec),
		rng:     p.conf.rng.s,
	}
}

// Restore implements Predictor.
func (p *PS) Restore(st PredictorState) {
	s := st.(*psState)
	copy(p.lasts, s.lasts)
	copy(p.strides, s.strides)
	restoreSpec(p.spec, s.spec)
	p.conf.rng.s = s.rng
}

// Snapshot implements Predictor by snapshotting both components. The
// ma/mb/ta/tb scratch Metas are fully overwritten before every use and carry
// no state across calls.
func (p *Hybrid) Snapshot() PredictorState {
	return &hybridState{a: p.a.Snapshot(), b: p.b.Snapshot()}
}

// Restore implements Predictor.
func (p *Hybrid) Restore(st PredictorState) {
	s := st.(*hybridState)
	p.a.Restore(s.a)
	p.b.Restore(s.b)
}

// Snapshot implements Predictor.
func (p *Oracle) Snapshot() PredictorState { return &oracleState{next: p.next} }

// Restore implements Predictor.
func (p *Oracle) Restore(st PredictorState) { p.next = st.(*oracleState).next }
