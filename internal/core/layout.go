package core

import (
	"fmt"
	"strings"

	"repro/internal/ghist"
)

// LayoutRow is one line of the Table 1 reproduction.
type LayoutRow struct {
	Predictor string
	Entries   string
	Tag       string
	KB        float64 // kB as in the paper (1 kB = 1000 bytes)
}

// Table1 builds the paper's Table 1 (predictor layout summary) from the
// actual storage accounting of freshly constructed predictors.
func Table1() []LayoutRow {
	var h ghist.History
	lvp := NewLVP(13, FPCCommit, 1)
	str := NewStride2D(13, FPCCommit, 1)
	fcm := NewFCM(4, 13, FPCCommit, 1)
	vt := NewVTAGE(DefaultVTAGEConfig(FPCCommit), &h)

	kb := func(bits int) float64 { return float64(bits) / 8 / 1000 }

	vtBase := len(vt.base) * (64 + 3)
	vtTagged := vt.StorageBits() - vtBase
	fcmVHT := len(fcm.vht) * (fcmTagBits + fcm.order*16 + 3)
	fcmVPT := fcm.StorageBits() - fcmVHT

	return []LayoutRow{
		{"LVP", "8192", "Full (51)", kb(lvp.StorageBits())},
		{"2D-Stride", "8192", "Full (51)", kb(str.StorageBits())},
		{"o4-FCM (VHT)", "8192", "Full (51)", kb(fcmVHT)},
		{"o4-FCM (VPT)", "8192", "-", kb(fcmVPT)},
		{"VTAGE (Base)", "8192", "-", kb(vtBase)},
		{"VTAGE (Tagged)", "6 x 1024", "12+rank", kb(vtTagged)},
	}
}

// FormatTable1 renders Table 1 next to the paper's reported sizes.
func FormatTable1() string {
	paper := map[string]float64{
		"LVP": 120.8, "2D-Stride": 251.9, "o4-FCM (VHT)": 120.8,
		"o4-FCM (VPT)": 67.6, "VTAGE (Base)": 68.6, "VTAGE (Tagged)": 64.1,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-10s %10s %10s\n", "Predictor", "#Entries", "Tag", "kB (ours)", "kB (paper)")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-16s %-10s %-10s %10.1f %10.1f\n", r.Predictor, r.Entries, r.Tag, r.KB, paper[r.Predictor])
	}
	return b.String()
}
