package core

// Hybrid is the paper's simple 2-component symmetric hybrid (Section 7.1.2):
// if only one component is confident its prediction is used; if both are
// confident they must agree, otherwise no prediction is made. Both
// components train on every committed value, and the component the pipeline
// will trust feeds its prediction to the other component's speculative
// last-value state (the cross-feeding rule of Section 7.1.2).
type Hybrid struct {
	a, b Predictor
	name string
}

// NewHybrid combines two predictors. By the paper's convention the
// context-based component is first (e.g. VTAGE) and the computational one
// second (e.g. 2D-Stride).
func NewHybrid(a, b Predictor) *Hybrid {
	return &Hybrid{a: a, b: b, name: a.Name() + "+" + b.Name()}
}

// Predict implements Predictor.
func (p *Hybrid) Predict(pc uint64) Meta {
	ma := p.a.Predict(pc)
	mb := p.b.Predict(pc)
	m := Meta{C1: ma.C1, C2: mb.C1}

	switch {
	case ma.Conf && mb.Conf:
		if ma.Pred == mb.Pred {
			m.Pred = ma.Pred
			m.Conf = true
		} else {
			m.Pred = ma.Pred // best guess only; not used
		}
	case ma.Conf:
		m.Pred = ma.Pred
		m.Conf = true
	case mb.Conf:
		m.Pred = mb.Pred
		m.Conf = true
	default:
		m.Pred = ma.Pred
	}

	return m
}

// FeedSpec implements SpecFeeder by forwarding the speculative occurrence to
// both components — the Section 7.1.2 cross-feeding rule, where a component
// consumes the speculative last occurrence established by the other's
// (pipeline-visible) prediction.
func (p *Hybrid) FeedSpec(pc uint64, v Value, seq uint64) {
	if f, ok := p.a.(SpecFeeder); ok {
		f.FeedSpec(pc, v, seq)
	}
	if f, ok := p.b.(SpecFeeder); ok {
		f.FeedSpec(pc, v, seq)
	}
}

// Train implements Predictor: when an instruction retires, all components
// are updated with the committed value.
func (p *Hybrid) Train(pc uint64, actual Value, m *Meta) {
	ma := Meta{Seq: m.Seq, Pred: m.C1.Pred, Conf: m.C1.Conf, C1: m.C1}
	mb := Meta{Seq: m.Seq, Pred: m.C2.Pred, Conf: m.C2.Conf, C1: m.C2}
	p.a.Train(pc, actual, &ma)
	p.b.Train(pc, actual, &mb)
}

// Squash implements Predictor.
func (p *Hybrid) Squash(fromSeq uint64) {
	p.a.Squash(fromSeq)
	p.b.Squash(fromSeq)
}

// Name implements Predictor.
func (p *Hybrid) Name() string { return p.name }

// StorageBits implements Predictor.
func (p *Hybrid) StorageBits() int {
	return p.a.StorageBits() + p.b.StorageBits()
}

// Components returns the two combined predictors.
func (p *Hybrid) Components() (a, b Predictor) { return p.a, p.b }
