package core

// Hybrid is the paper's simple 2-component symmetric hybrid (Section 7.1.2):
// if only one component is confident its prediction is used; if both are
// confident they must agree, otherwise no prediction is made. Both
// components train on every committed value, and the component the pipeline
// will trust feeds its prediction to the other component's speculative
// last-value state (the cross-feeding rule of Section 7.1.2).
type Hybrid struct {
	a, b Predictor
	name string

	// Reusable per-call scratch Metas. Locals passed to an interface method
	// escape to the heap on every call; predictors are single-threaded by
	// contract, so the hybrid keeps its component payloads here instead.
	ma, mb Meta // Predict scratch
	ta, tb Meta // Train scratch
}

// NewHybrid combines two predictors. By the paper's convention the
// context-based component is first (e.g. VTAGE) and the computational one
// second (e.g. 2D-Stride).
func NewHybrid(a, b Predictor) *Hybrid {
	return &Hybrid{a: a, b: b, name: a.Name() + "+" + b.Name()}
}

// Predict implements Predictor.
func (p *Hybrid) Predict(pc uint64, m *Meta) {
	p.a.Predict(pc, &p.ma)
	p.b.Predict(pc, &p.mb)
	ma, mb := &p.ma, &p.mb
	*m = Meta{C1: ma.C1, C2: mb.C1}

	switch {
	case ma.Conf && mb.Conf:
		if ma.Pred == mb.Pred {
			m.Pred = ma.Pred
			m.Conf = true
		} else {
			m.Pred = ma.Pred // best guess only; not used
		}
	case ma.Conf:
		m.Pred = ma.Pred
		m.Conf = true
	case mb.Conf:
		m.Pred = mb.Pred
		m.Conf = true
	default:
		m.Pred = ma.Pred
	}
}

// FeedSpec implements SpecFeeder by forwarding the speculative occurrence to
// both components — the Section 7.1.2 cross-feeding rule, where a component
// consumes the speculative last occurrence established by the other's
// (pipeline-visible) prediction.
func (p *Hybrid) FeedSpec(pc uint64, v Value, seq uint64) {
	if f, ok := p.a.(SpecFeeder); ok {
		f.FeedSpec(pc, v, seq)
	}
	if f, ok := p.b.(SpecFeeder); ok {
		f.FeedSpec(pc, v, seq)
	}
}

// Train implements Predictor: when an instruction retires, all components
// are updated with the committed value.
func (p *Hybrid) Train(pc uint64, actual Value, m *Meta) {
	p.ta = Meta{Seq: m.Seq, Pred: m.C1.Pred, Conf: m.C1.Conf, C1: m.C1}
	p.tb = Meta{Seq: m.Seq, Pred: m.C2.Pred, Conf: m.C2.Conf, C1: m.C2}
	p.a.Train(pc, actual, &p.ta)
	p.b.Train(pc, actual, &p.tb)
}

// Squash implements Predictor.
func (p *Hybrid) Squash(fromSeq uint64) {
	p.a.Squash(fromSeq)
	p.b.Squash(fromSeq)
}

// Name implements Predictor.
func (p *Hybrid) Name() string { return p.name }

// StorageBits implements Predictor.
func (p *Hybrid) StorageBits() int {
	return p.a.StorageBits() + p.b.StorageBits()
}

// Components returns the two combined predictors.
func (p *Hybrid) Components() (a, b Predictor) { return p.a, p.b }
