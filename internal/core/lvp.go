package core

// LVP is the Last Value Predictor of Lipasti et al. [12,13]: a direct-mapped
// table of full-tagged entries holding the last committed value of each
// static µop and a 3-bit confidence counter. Its prediction for an
// occurrence does not depend on the previous in-flight occurrence, so it can
// predict back-to-back occurrences with arbitrary lookup latency (Fig. 1).
type LVP struct {
	entries []lvpEntry
	conf    *Confidence
	mask    uint64
}

type lvpEntry struct {
	tag uint64 // full tag (modelled as 51 bits of PC hash)
	val Value
	c   uint8
	ok  bool // entry has been allocated
}

// lvpTagBits is the full-tag width the paper charges for (Table 1).
const lvpTagBits = 51

// NewLVP returns a last value predictor with 2^logEntries entries using the
// given confidence vector. The paper's configuration is logEntries=13 (8K).
func NewLVP(logEntries int, vec FPCVector, seed uint32) *LVP {
	n := 1 << logEntries
	return &LVP{
		entries: make([]lvpEntry, n),
		conf:    NewConfidence(vec, seed),
		mask:    uint64(n - 1),
	}
}

func (p *LVP) slot(pc uint64) (*lvpEntry, uint64) {
	h := hashPC(pc)
	return &p.entries[h&p.mask], h >> 13 & (1<<lvpTagBits - 1)
}

// Predict implements Predictor.
func (p *LVP) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		return
	}
	m.Pred = e.val
	m.Conf = Saturated(e.c)
	m.C1.Pred = e.val
	m.C1.Conf = m.Conf
}

// Train implements Predictor. LVP always records the committed value as the
// new last value; confidence builds on streaks of repeats and resets on a
// change.
func (p *LVP) Train(pc uint64, actual Value, m *Meta) {
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		*e = lvpEntry{tag: tag, val: actual, ok: true}
		return
	}
	if e.val == actual {
		e.c = p.conf.Bump(e.c)
	} else {
		e.c = 0
		e.val = actual
	}
}

// Squash implements Predictor. LVP holds no speculative state.
func (p *LVP) Squash(fromSeq uint64) {}

// Name implements Predictor.
func (p *LVP) Name() string { return "LVP" }

// StorageBits implements Predictor: tag + 64-bit value + 3-bit confidence
// per entry (Table 1: 120.8 kB at 8K entries).
func (p *LVP) StorageBits() int {
	return len(p.entries) * (lvpTagBits + 64 + 3)
}
