package core

// Stride2D is the 2-delta Stride predictor of Eickemeyer and Vassiliadis
// [6]: each entry holds the last value and two strides. The predicting
// stride s2 is replaced only when the same stride is observed twice in a row
// (s == s1), which filters one-off jumps out of otherwise affine sequences.
//
// The prediction for an occurrence needs the value of the *previous*
// occurrence, which may still be in flight: Section 3.2's "one has to track
// the last (possibly speculative) occurrence of each instruction". The
// tracking is modelled as a per-PC window of in-flight occurrences fed by
// the pipeline (FeedSpec) in fetch order, consumed at commit (Train), and
// truncated precisely on squash (Squash) using occurrence sequence numbers.
type Stride2D struct {
	entries []strideEntry
	conf    *Confidence
	mask    uint64
	spec    map[uint64]*specWindow
}

type strideEntry struct {
	tag    uint64
	last   Value
	s1, s2 int64
	c      uint8
	ok     bool
}

// specWindow is the in-flight occurrence window for one static µop, oldest
// first. Its size is bounded by the machine's in-flight capacity.
type specWindow struct {
	vals []specVal
}

type specVal struct {
	seq uint64
	val Value
}

func (w *specWindow) newest() (specVal, bool) {
	if len(w.vals) == 0 {
		return specVal{}, false
	}
	return w.vals[len(w.vals)-1], true
}

// push appends an occurrence, first dropping any entries that belong to a
// squashed-and-refetched future (seq greater or equal).
func (w *specWindow) push(seq uint64, v Value) {
	for len(w.vals) > 0 && w.vals[len(w.vals)-1].seq >= seq {
		w.vals = w.vals[:len(w.vals)-1]
	}
	w.vals = append(w.vals, specVal{seq, v})
}

// popThrough removes entries up to and including seq (commit consumption).
// The survivors are compacted to the front of the backing array rather than
// resliced past it, so the window's capacity is reused forever: the per-PC
// steady state allocates nothing.
func (w *specWindow) popThrough(seq uint64) {
	i := 0
	for i < len(w.vals) && w.vals[i].seq <= seq {
		i++
	}
	if i > 0 {
		n := copy(w.vals, w.vals[i:])
		w.vals = w.vals[:n]
	}
}

// truncFrom removes entries with sequence >= seq (squash repair).
func (w *specWindow) truncFrom(seq uint64) {
	for len(w.vals) > 0 && w.vals[len(w.vals)-1].seq >= seq {
		w.vals = w.vals[:len(w.vals)-1]
	}
}

// strideTagBits is the full-tag width charged in Table 1.
const strideTagBits = 51

// NewStride2D returns a 2-delta stride predictor with 2^logEntries entries.
func NewStride2D(logEntries int, vec FPCVector, seed uint32) *Stride2D {
	n := 1 << logEntries
	return &Stride2D{
		entries: make([]strideEntry, n),
		conf:    NewConfidence(vec, seed),
		mask:    uint64(n - 1),
		spec:    make(map[uint64]*specWindow),
	}
}

func (p *Stride2D) slot(pc uint64) (*strideEntry, uint64) {
	h := hashPC(pc)
	return &p.entries[h&p.mask], h >> 13 & (1<<strideTagBits - 1)
}

// Predict implements Predictor: the last speculative occurrence (the newest
// in-flight value if any, else the committed last value) plus the predicting
// stride.
func (p *Stride2D) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		return
	}
	last := e.last
	if w := p.spec[pc]; w != nil {
		if sv, ok := w.newest(); ok {
			last = sv.val
		}
	}
	pred := last + Value(e.s2)
	m.Pred = pred
	m.Conf = Saturated(e.c)
	m.C1.Pred = pred
	m.C1.Conf = m.Conf
}

// FeedSpec implements SpecFeeder: records the speculative value of the
// occurrence seq of pc, in fetch order.
func (p *Stride2D) FeedSpec(pc uint64, v Value, seq uint64) {
	w := p.spec[pc]
	if w == nil {
		w = &specWindow{}
		p.spec[pc] = w
	}
	w.push(seq, v)
}

// Train implements Predictor. A drained window stays in the map: an empty
// window predicts identically to an absent one, and keeping it preserves
// its backing capacity so the steady state never reallocates it.
func (p *Stride2D) Train(pc uint64, actual Value, m *Meta) {
	if w := p.spec[pc]; w != nil {
		w.popThrough(m.Seq)
	}
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		*e = strideEntry{tag: tag, last: actual, ok: true}
		return
	}
	// Confidence tracks the non-speculative prediction last+s2.
	if e.last+Value(e.s2) == actual {
		e.c = p.conf.Bump(e.c)
	} else {
		e.c = 0
	}
	s := int64(actual - e.last)
	if s == e.s1 {
		e.s2 = s // 2-delta rule: adopt a stride only when seen twice
	}
	e.s1 = s
	e.last = actual
}

// Squash implements Predictor: speculative occurrences at or after fromSeq
// died with the pipeline flush; older in-flight occurrences survive.
// Drained windows are kept (see Train).
func (p *Stride2D) Squash(fromSeq uint64) {
	for _, w := range p.spec {
		w.truncFrom(fromSeq)
	}
}

// Name implements Predictor.
func (p *Stride2D) Name() string { return "2D-Stride" }

// StorageBits implements Predictor: tag + last value + two strides +
// confidence (Table 1: 251.9 kB at 8K entries).
func (p *Stride2D) StorageBits() int {
	return len(p.entries) * (strideTagBits + 64 + 64 + 64 + 3)
}
