package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ghist"
)

// predict adapts the scratch-passing Predict contract for tests that want a
// value result.
func predict(p Predictor, pc uint64) Meta {
	var m Meta
	p.Predict(pc, &m)
	return m
}

// drive feeds a value sequence for one PC through predict/train and returns
// how many of the last `tail` predictions were confident-and-correct.
func drive(p Predictor, pc uint64, seq []Value, tail int) (confCorrect, confWrong int) {
	for i, v := range seq {
		m := predict(p, pc)
		if m.Conf && i >= len(seq)-tail {
			if m.Pred == v {
				confCorrect++
			} else {
				confWrong++
			}
		}
		p.Train(pc, v, &m)
	}
	return
}

func constSeq(v Value, n int) []Value {
	s := make([]Value, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func affineSeq(base Value, stride int64, n int) []Value {
	s := make([]Value, n)
	for i := range s {
		s[i] = base + Value(int64(i)*stride)
	}
	return s
}

func TestLVPPredictsConstants(t *testing.T) {
	p := NewLVP(10, FPCBaseline, 1)
	correct, wrong := drive(p, 100, constSeq(42, 50), 30)
	if wrong != 0 {
		t.Errorf("LVP made %d wrong confident predictions on a constant", wrong)
	}
	if correct < 30 {
		t.Errorf("LVP confident-correct = %d, want 30 (warmed up)", correct)
	}
}

func TestLVPDoesNotPredictStrides(t *testing.T) {
	p := NewLVP(10, FPCBaseline, 1)
	correct, _ := drive(p, 100, affineSeq(0, 8, 200), 100)
	if correct != 0 {
		t.Errorf("LVP confidently predicted %d values of a strided sequence", correct)
	}
}

func TestStridePredictsAffineSequences(t *testing.T) {
	p := NewStride2D(10, FPCBaseline, 1)
	correct, wrong := drive(p, 100, affineSeq(1000, 24, 60), 40)
	if wrong != 0 {
		t.Errorf("stride made %d wrong confident predictions on affine sequence", wrong)
	}
	if correct < 40 {
		t.Errorf("stride confident-correct = %d, want 40", correct)
	}
}

func TestStridePredictsConstants(t *testing.T) {
	// A constant is a stride of 0.
	p := NewStride2D(10, FPCBaseline, 1)
	correct, wrong := drive(p, 5, constSeq(7, 40), 20)
	if wrong != 0 || correct < 20 {
		t.Errorf("stride on constant: correct=%d wrong=%d, want 20/0", correct, wrong)
	}
}

func TestStride2DeltaFiltersOneOffJumps(t *testing.T) {
	// Sequence: stride 8 with a single jump; after the jump the 2-delta rule
	// keeps predicting stride 8 (s2 is only replaced when a stride repeats).
	p := NewStride2D(10, FPCBaseline, 1)
	seq := affineSeq(0, 8, 20)
	seq = append(seq, 10_000)                      // one-off jump
	seq = append(seq, affineSeq(10_008, 8, 20)...) // stride 8 resumes
	var preds []Value
	for _, v := range seq {
		m := predict(p, 1)
		preds = append(preds, m.Pred)
		p.Train(1, v, &m)
	}
	// Two occurrences after the jump, prediction should already be back on
	// the stride-8 track: pred = last + 8.
	at := len(seq) - 15
	if preds[at] != seq[at-1]+8 {
		t.Errorf("after jump: pred=%d, want last+8=%d", preds[at], seq[at-1]+8)
	}
}

func TestStrideSpeculativeBackToBack(t *testing.T) {
	// Two in-flight occurrences: the second prediction must build on the
	// first occurrence's speculative value, delivered through the
	// FeedSpec window as the pipeline does at fetch.
	p := NewStride2D(10, FPCBaseline, 1)
	// Warm the entry: values 0,8,16,24 committed.
	seq := uint64(0)
	for i := 0; i < 4; i++ {
		m := predict(p, 9)
		m.Seq = seq
		p.FeedSpec(9, Value(i*8), seq)
		p.Train(9, Value(i*8), &m)
		seq++
	}
	m1 := predict(p, 9) // should predict 32 (last=24 + 8)
	m1.Seq = seq
	p.FeedSpec(9, m1.Pred, seq)
	seq++
	m2 := predict(p, 9) // speculative: 40, building on the in-flight 32
	m2.Seq = seq
	p.FeedSpec(9, m2.Pred, seq)
	if m1.Pred != 32 {
		t.Errorf("first in-flight prediction = %d, want 32", m1.Pred)
	}
	if m2.Pred != 40 {
		t.Errorf("second in-flight (speculative) prediction = %d, want 40", m2.Pred)
	}
	p.Train(9, 32, &m1)
	p.Train(9, 40, &m2)
}

func TestStrideSquashDropsSpeculativeState(t *testing.T) {
	p := NewStride2D(10, FPCBaseline, 1)
	seq := uint64(0)
	for i := 0; i < 4; i++ {
		m := predict(p, 9)
		m.Seq = seq
		p.FeedSpec(9, Value(i*8), seq)
		p.Train(9, Value(i*8), &m)
		seq++
	}
	// Two in-flight occurrences, then a squash covering both.
	p.FeedSpec(9, 32, seq)
	p.FeedSpec(9, 40, seq+1)
	p.Squash(seq)
	m := predict(p, 9)
	if m.Pred != 32 {
		t.Errorf("post-squash prediction = %d, want 32 (from committed state)", m.Pred)
	}
}

func TestStrideSquashKeepsOlderInflight(t *testing.T) {
	// A squash at seq boundary must preserve older in-flight occurrences.
	p := NewStride2D(10, FPCBaseline, 1)
	seq := uint64(0)
	for i := 0; i < 4; i++ {
		m := predict(p, 9)
		m.Seq = seq
		p.FeedSpec(9, Value(i*8), seq)
		p.Train(9, Value(i*8), &m)
		seq++
	}
	p.FeedSpec(9, 32, seq)   // survives
	p.FeedSpec(9, 40, seq+1) // squashed
	p.Squash(seq + 1)
	m := predict(p, 9)
	if m.Pred != 40 {
		t.Errorf("post-partial-squash prediction = %d, want 40 (32+stride)", m.Pred)
	}
	// Refetch of the squashed occurrence re-feeds the same seq.
	p.FeedSpec(9, 40, seq+1)
	if m := predict(p, 9); m.Pred != 48 {
		t.Errorf("post-refetch prediction = %d, want 48", m.Pred)
	}
}

func TestFCMPredictsPeriodicPattern(t *testing.T) {
	// A repeating pattern of period 3 is exactly what an order-4 FCM learns.
	p := NewFCM(4, 10, FPCBaseline, 1)
	pattern := []Value{5, 17, 99}
	seq := make([]Value, 0, 300)
	for i := 0; i < 300; i++ {
		seq = append(seq, pattern[i%len(pattern)])
	}
	correct, wrong := drive(p, 100, seq, 100)
	if wrong != 0 {
		t.Errorf("FCM made %d wrong confident predictions on periodic pattern", wrong)
	}
	if correct < 90 {
		t.Errorf("FCM confident-correct = %d, want ≥ 90", correct)
	}
}

func TestFCMSquashDropsSpeculativeHistory(t *testing.T) {
	p := NewFCM(4, 10, FPCBaseline, 1)
	pattern := []Value{5, 17, 99, 4}
	for i := 0; i < 200; i++ {
		m := predict(p, 7)
		m.Seq = uint64(i)
		p.Train(7, pattern[i%4], &m)
	}
	before := predict(p, 7)
	p.FeedSpec(7, 1234, 500) // speculative occurrence, then squashed
	p.Squash(500)
	after := predict(p, 7)
	if before.Pred != after.Pred {
		t.Errorf("squash did not restore the non-speculative prediction: %d vs %d", before.Pred, after.Pred)
	}
	p.Squash(0)
}

func TestFCMSpeculativeWindowShiftsContext(t *testing.T) {
	// Feeding an in-flight occurrence must shift the context the next
	// prediction is made with.
	p := NewFCM(4, 10, FPCBaseline, 1)
	pattern := []Value{5, 17, 99}
	for i := 0; i < 300; i++ {
		m := predict(p, 7)
		m.Seq = uint64(i)
		p.FeedSpec(7, pattern[i%3], uint64(i))
		p.Train(7, pattern[i%3], &m)
	}
	// Committed+spec history ends ...5,17,99 -> next is 5.
	if m := predict(p, 7); m.Pred != 5 {
		t.Fatalf("prediction = %d, want 5", m.Pred)
	}
	// One more in-flight occurrence (value 5) shifts the context -> 17.
	p.FeedSpec(7, 5, 300)
	if m := predict(p, 7); m.Pred != 17 {
		t.Fatalf("prediction after spec feed = %d, want 17", m.Pred)
	}
}

func TestOracleAlwaysRight(t *testing.T) {
	var p Oracle
	for i := Value(0); i < 100; i++ {
		p.FeedActual(i * 3)
		m := predict(&p, uint64(i))
		if !m.Conf || m.Pred != i*3 {
			t.Fatalf("oracle wrong: pred=%d conf=%v want %d", m.Pred, m.Conf, i*3)
		}
		p.Train(uint64(i), i*3, &m)
	}
	if p.StorageBits() != 0 {
		t.Error("oracle should cost nothing")
	}
}

func TestHybridSelectionRules(t *testing.T) {
	var h ghist.History
	vt := NewVTAGE(DefaultVTAGEConfig(FPCBaseline), &h)
	st := NewStride2D(13, FPCBaseline, 1)
	hy := NewHybrid(vt, st)

	// Strided values: stride component becomes confident, VTAGE does not
	// (values never repeat), so the hybrid must pass stride through.
	for i := 0; i < 40; i++ {
		m := predict(hy, 50)
		hy.Train(50, Value(i*16), &m)
	}
	m := predict(hy, 50)
	if !m.Conf {
		t.Fatal("hybrid not confident on strided sequence")
	}
	// Committed values were 0,16,...,624, so the stride component predicts
	// 640 and the hybrid must pass it through.
	if m.Pred != 640 {
		t.Errorf("hybrid pred = %d, want 640 (stride component)", m.Pred)
	}
}

func TestHybridDisagreementSuppressesPrediction(t *testing.T) {
	// Two hand-rolled components that are both confident but disagree.
	a, b := &fixedPred{val: 1, conf: true}, &fixedPred{val: 2, conf: true}
	hy := NewHybrid(a, b)
	if m := predict(hy, 1); m.Conf {
		t.Error("hybrid used a prediction despite component disagreement")
	}
	a.val = 2
	if m := predict(hy, 1); !m.Conf || m.Pred != 2 {
		t.Error("hybrid rejected an agreed prediction")
	}
}

func TestHybridTrainsBothComponents(t *testing.T) {
	a, b := &fixedPred{}, &fixedPred{}
	hy := NewHybrid(a, b)
	m := predict(hy, 1)
	hy.Train(1, 5, &m)
	if a.trained != 1 || b.trained != 1 {
		t.Errorf("component train counts = %d,%d, want 1,1", a.trained, b.trained)
	}
	hy.Squash(0)
	if !a.squashed || !b.squashed {
		t.Error("Squash not propagated to both components")
	}
}

// fixedPred is a minimal stub Predictor for hybrid plumbing tests.
type fixedPred struct {
	val      Value
	conf     bool
	trained  int
	squashed bool
}

func (f *fixedPred) Predict(pc uint64, m *Meta) {
	*m = Meta{Pred: f.val, Conf: f.conf}
	m.C1.Pred = f.val
	m.C1.Conf = f.conf
}
func (f *fixedPred) Train(pc uint64, actual Value, m *Meta) { f.trained++ }
func (f *fixedPred) Squash(fromSeq uint64)                  { f.squashed = true }
func (f *fixedPred) Snapshot() PredictorState               { return &oracleState{} }
func (f *fixedPred) Restore(st PredictorState)              {}
func (f *fixedPred) Name() string                           { return "fixed" }
func (f *fixedPred) StorageBits() int                       { return 0 }

func TestTable1MatchesPaperSizes(t *testing.T) {
	rows := Table1()
	paper := map[string]float64{
		"LVP": 120.8, "2D-Stride": 251.9, "o4-FCM (VHT)": 120.8,
		"o4-FCM (VPT)": 67.6, "VTAGE (Base)": 68.6, "VTAGE (Tagged)": 64.1,
	}
	for _, r := range rows {
		want, ok := paper[r.Predictor]
		if !ok {
			t.Errorf("unexpected row %q", r.Predictor)
			continue
		}
		// Storage must be within a few percent of the paper's accounting.
		if r.KB < want*0.93 || r.KB > want*1.07 {
			t.Errorf("%s: %.1f kB, paper says %.1f kB", r.Predictor, r.KB, want)
		}
	}
	if FormatTable1() == "" {
		t.Error("empty Table 1 rendering")
	}
}

// Property: Train with a full table never predicts a value the entry has
// never seen for LVP (the tag check prevents aliased garbage becoming a
// confident prediction immediately).
func TestLVPNeverConfidentOnFirstSight(t *testing.T) {
	f := func(pc uint64, v Value) bool {
		p := NewLVP(8, FPCBaseline, 1)
		m := predict(p, pc)
		return !m.Conf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: stride predictor is exact on any affine sequence once warm,
// for arbitrary base and stride.
func TestStrideExactOnAffineProperty(t *testing.T) {
	f := func(base Value, stride int16) bool {
		p := NewStride2D(10, FPCBaseline, 1)
		seq := affineSeq(base, int64(stride), 30)
		_, wrong := drive(p, 3, seq, 25)
		if wrong != 0 {
			return false
		}
		// After warmup the raw prediction (ignoring confidence) is exact.
		m := predict(p, 3)
		return m.Pred == seq[len(seq)-1]+Value(int64(stride))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Hybrid must forward FeedSpec to both components so their speculative
// windows stay coherent.
func TestHybridForwardsFeedSpec(t *testing.T) {
	st := NewStride2D(10, FPCBaseline, 1)
	fc := NewFCM(4, 10, FPCBaseline, 2)
	hy := NewHybrid(fc, st)
	// Warm stride: 0,8,16,24 committed.
	for i := 0; i < 4; i++ {
		m := predict(hy, 9)
		m.Seq = uint64(i)
		hy.FeedSpec(9, Value(i*8), uint64(i))
		hy.Train(9, Value(i*8), &m)
	}
	// An in-flight occurrence fed through the hybrid must advance the
	// stride component's speculative last value.
	hy.FeedSpec(9, 32, 4)
	if m := predict(st, 9); m.Pred != 40 {
		t.Errorf("stride component spec last not forwarded: pred=%d, want 40", m.Pred)
	}
}

// FCM order must change which patterns are capturable: order 1 cannot
// disambiguate a period-3 pattern's repeated element contexts... it can
// (distinct values); but a pattern with repeated values needs deeper order.
func TestFCMOrderMatters(t *testing.T) {
	// Pattern 5,5,9: after value 5 the next is either 5 or 9 — order 1 is
	// ambiguous, order 2 (context [5,5] vs [9,5]) is not.
	pattern := []Value{5, 5, 9}
	run := func(order int) int {
		p := NewFCM(order, 10, FPCBaseline, 1)
		correct := 0
		for i := 0; i < 600; i++ {
			v := pattern[i%3]
			m := predict(p, 4)
			m.Seq = uint64(i)
			if i > 300 && m.Pred == v {
				correct++
			}
			p.Train(4, v, &m)
		}
		return correct
	}
	if o1, o2 := run(1), run(2); o2 <= o1 {
		t.Errorf("order-2 FCM (%d correct) not better than order-1 (%d) on ambiguous pattern", o2, o1)
	}
}
