package core

// GDiff is the global-stride predictor of Zhou, Flanagan and Conte [27]: it
// predicts an instruction's result as a stable difference from the result of
// one of the last n dynamic instructions (any PC) — the global value
// history. As the paper notes, gDiff sits "on top" of the machine's
// speculative value stream: at prediction time the global history consists
// mostly of in-flight results, which the pipeline feeds in fetch order (the
// same Section 7.1 idealized speculative window the other computational
// predictors use).
//
// Each table entry remembers, for its static µop, a distance into the
// global history and the stride observed at that distance, with the usual
// 3-bit (FPC-capable) confidence. Training re-derives the diffs against the
// fetch-time snapshot carried in Meta, and re-locks onto the closest
// distance whose diff repeated since the previous occurrence.
type GDiff struct {
	entries []gdiffEntry
	conf    *Confidence
	mask    uint64

	// Global value history ring: results of the most recent occurrences in
	// fetch order, newest last.
	gvh    [gdiffDepth]Value
	gvhSeq [gdiffDepth]uint64
	gvhPos int
}

// gdiffDepth is the global history depth n (the number of preceding dynamic
// results examined for a stable difference).
const gdiffDepth = 8

type gdiffEntry struct {
	tag      uint64
	dist     uint8 // 1..gdiffDepth
	stride   int64
	c        uint8
	lastDiff [gdiffDepth]int64 // diffs observed at the previous occurrence
	ok       bool
}

// NewGDiff builds a gDiff predictor with 2^logEntries entries.
func NewGDiff(logEntries int, vec FPCVector, seed uint32) *GDiff {
	n := 1 << logEntries
	return &GDiff{
		entries: make([]gdiffEntry, n),
		conf:    NewConfidence(vec, seed),
		mask:    uint64(n - 1),
	}
}

func (p *GDiff) slot(pc uint64) (*gdiffEntry, uint64) {
	h := hashPC(pc)
	return &p.entries[h&p.mask], h >> 13
}

// snapshot copies the current global history, newest first, into out.
func (p *GDiff) snapshot(out *[gdiffDepth]Value) {
	for i := 0; i < gdiffDepth; i++ {
		out[i] = p.gvh[(p.gvhPos-1-i+2*gdiffDepth)%gdiffDepth]
	}
}

// Predict implements Predictor. The fetch-time global history snapshot is
// stashed in the Meta (distances 1..n map to GVH slots 0..n-1); CompMeta
// would be too small for 8 values, so Meta carries them in the dedicated GVH
// field, written in place.
func (p *GDiff) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	p.snapshot(&m.GVH)
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag || e.dist == 0 {
		return
	}
	m.Pred = m.GVH[e.dist-1] + Value(e.stride)
	m.Conf = Saturated(e.c)
	m.C1.Pred = m.Pred
	m.C1.Conf = m.Conf
}

// FeedSpec implements SpecFeeder: every fetched occurrence's value enters
// the speculative global value history (ordered by fetch; squashed entries
// are overwritten by the refetch since the ring only keeps the last n).
func (p *GDiff) FeedSpec(pc uint64, v Value, seq uint64) {
	// Drop ring entries from squashed futures (seq going backwards).
	for cnt := 0; cnt < gdiffDepth; cnt++ {
		prev := (p.gvhPos - 1 + gdiffDepth) % gdiffDepth
		if p.gvhSeq[prev] < seq || p.gvhSeq[prev] == 0 {
			break
		}
		p.gvhPos = prev
		p.gvhSeq[prev] = 0
	}
	p.gvh[p.gvhPos] = v
	p.gvhSeq[p.gvhPos] = seq
	p.gvhPos = (p.gvhPos + 1) % gdiffDepth
}

// Train implements Predictor: diffs against the fetch-time snapshot retrain
// the (distance, stride) lock; correctness of the used prediction drives the
// confidence automaton.
func (p *GDiff) Train(pc uint64, actual Value, m *Meta) {
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		*e = gdiffEntry{tag: tag, ok: true}
		for k := 0; k < gdiffDepth; k++ {
			e.lastDiff[k] = int64(actual - m.GVH[k])
		}
		return
	}
	correct := e.dist != 0 && m.GVH[e.dist-1]+Value(e.stride) == actual
	if correct {
		e.c = p.conf.Bump(e.c)
	} else {
		e.c = 0
		// Re-lock onto the closest distance whose diff repeated.
		e.dist = 0
		for k := 0; k < gdiffDepth; k++ {
			d := int64(actual - m.GVH[k])
			if d == e.lastDiff[k] {
				e.dist = uint8(k + 1)
				e.stride = d
				break
			}
		}
	}
	for k := 0; k < gdiffDepth; k++ {
		e.lastDiff[k] = int64(actual - m.GVH[k])
	}
}

// Squash implements Predictor. The ring repair happens incrementally in
// FeedSpec when refetched occurrences arrive with smaller sequence numbers.
func (p *GDiff) Squash(fromSeq uint64) {}

// Name implements Predictor.
func (p *GDiff) Name() string { return "gDiff" }

// StorageBits implements Predictor: tag + distance + stride + confidence +
// the per-entry diff history.
func (p *GDiff) StorageBits() int {
	return len(p.entries) * (51 + 3 + 64 + 3 + gdiffDepth*64)
}
