package core

// FCM is an nth-order Finite Context Method predictor (Sazeides & Smith
// [18]), the paper's representative local-value-history context predictor.
// The first level (Value History Table) records the last n values produced
// by each static µop, compressed to 16 bits each; the hash of that history
// indexes the second level (Value Prediction Table) holding the prediction.
//
// Following Section 7.1.1: each 64-bit history value is folded (XOR) onto
// itself to 16 bits; the folded values are combined with the most recent
// left-shifted least, XORed with the PC to break conflicts; the VPT keeps a
// 2-bit hysteresis counter to limit replacement, and the 3-bit confidence
// counter lives in the VHT entry.
//
// FCM needs the last n speculative occurrences of each in-flight µop —
// exactly the complex tracking Section 3.2 argues against. As with the
// stride predictor, the tracking is a per-PC occurrence window fed by the
// pipeline in fetch order and repaired precisely on squashes; the paper
// (Section 7.1) likewise idealizes FCM's speculative window, noting its
// performance "is most likely to be overestimated".
type FCM struct {
	order int
	vht   []fcmVHTEntry
	vpt   []fcmVPTEntry
	conf  *Confidence
	mask  uint64
	spec  map[uint64]*fcmWindow

	// histBuf is the reusable speculative-history scratch for effHist; the
	// predictor is single-threaded by contract, so one buffer suffices and
	// Predict stays allocation-free.
	histBuf []uint16
}

type fcmVHTEntry struct {
	tag  uint64
	hist []uint16 // most recent first
	c    uint8
	ok   bool
}

type fcmVPTEntry struct {
	val  Value
	hyst uint8 // 2-bit replacement hysteresis
}

// fcmWindow is the in-flight folded-value window for one static µop,
// oldest first.
type fcmWindow struct {
	vals []fcmSpecVal
}

type fcmSpecVal struct {
	seq  uint64
	fold uint16
}

// fcmTagBits is the full-tag width charged for the VHT in Table 1.
const fcmTagBits = 51

// NewFCM returns an order-n FCM with 2^logEntries entries in each level.
// The paper's o4-FCM is order 4 with 8K+8K entries.
func NewFCM(order, logEntries int, vec FPCVector, seed uint32) *FCM {
	n := 1 << logEntries
	p := &FCM{
		order:   order,
		vht:     make([]fcmVHTEntry, n),
		vpt:     make([]fcmVPTEntry, n),
		conf:    NewConfidence(vec, seed),
		mask:    uint64(n - 1),
		spec:    make(map[uint64]*fcmWindow),
		histBuf: make([]uint16, 0, order),
	}
	// One flat backing array for every VHT history window: entries reset on
	// tag replacement by clearing their fixed slice in place, so the simulate
	// loop never allocates for VHT turnover.
	back := make([]uint16, n*order)
	for i := range p.vht {
		p.vht[i].hist = back[i*order : (i+1)*order : (i+1)*order]
	}
	return p
}

// fold16 compresses a 64-bit value to 16 bits by folding it onto itself.
func fold16(v Value) uint16 {
	return uint16(v ^ v>>16 ^ v>>32 ^ v>>48)
}

func (p *FCM) slot(pc uint64) (*fcmVHTEntry, uint64) {
	h := hashPC(pc)
	return &p.vht[h&p.mask], h >> 13 & (1<<fcmTagBits - 1)
}

// vptIndex hashes an n-deep folded history (most recent first) with the PC:
// the i-th most recent folded value is left-shifted by i before XOR.
func (p *FCM) vptIndex(pc uint64, hist []uint16) uint64 {
	var idx uint64
	for i, h := range hist {
		idx ^= uint64(h) << i
	}
	return (idx ^ hashPC(pc)) & p.mask
}

// effHist builds the speculative history view for pc into the predictor's
// reusable scratch buffer: the newest in-flight folded values first, then
// committed history, order deep. The returned slice aliases histBuf and is
// only valid until the next call.
func (p *FCM) effHist(e *fcmVHTEntry, w *fcmWindow) []uint16 {
	hist := p.histBuf[:0]
	if w != nil {
		for i := len(w.vals) - 1; i >= 0 && len(hist) < p.order; i-- {
			hist = append(hist, w.vals[i].fold)
		}
	}
	for i := 0; i < len(e.hist) && len(hist) < p.order; i++ {
		hist = append(hist, e.hist[i])
	}
	return hist
}

// Predict implements Predictor.
func (p *FCM) Predict(pc uint64, m *Meta) {
	*m = Meta{}
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		return
	}
	idx := p.vptIndex(pc, p.effHist(e, p.spec[pc]))
	pred := p.vpt[idx].val
	m.Pred = pred
	m.Conf = Saturated(e.c)
	m.C1.Pred = pred
	m.C1.Conf = m.Conf
	m.C1.Idx[0] = uint32(idx)
}

// FeedSpec implements SpecFeeder: records the speculative value of the
// occurrence seq of pc, in fetch order.
func (p *FCM) FeedSpec(pc uint64, v Value, seq uint64) {
	w := p.spec[pc]
	if w == nil {
		w = &fcmWindow{}
		p.spec[pc] = w
	}
	for len(w.vals) > 0 && w.vals[len(w.vals)-1].seq >= seq {
		w.vals = w.vals[:len(w.vals)-1]
	}
	w.vals = append(w.vals, fcmSpecVal{seq, fold16(v)})
}

// Train implements Predictor.
func (p *FCM) Train(pc uint64, actual Value, m *Meta) {
	// Consume the in-flight window through this occurrence, compacting in
	// place. A drained window stays in the map: empty predicts identically
	// to absent, and keeping it preserves capacity so the steady state
	// never reallocates it.
	if w := p.spec[pc]; w != nil {
		i := 0
		for i < len(w.vals) && w.vals[i].seq <= m.Seq {
			i++
		}
		if i > 0 {
			n := copy(w.vals, w.vals[i:])
			w.vals = w.vals[:n]
		}
	}
	e, tag := p.slot(pc)
	if !e.ok || e.tag != tag {
		// Tag replacement reuses the entry's fixed history slice (backed by
		// the flat array built in NewFCM) instead of allocating a fresh one.
		e.tag = tag
		e.c = 0
		e.ok = true
		clear(e.hist)
		p.pushHist(e, actual)
		return
	}
	// The non-speculative prediction drives confidence and the VPT update.
	idx := p.vptIndex(pc, e.hist)
	v := &p.vpt[idx]
	if v.val == actual {
		e.c = p.conf.Bump(e.c)
		if v.hyst < 3 {
			v.hyst++
		}
	} else {
		e.c = 0
		if v.hyst == 0 {
			v.val = actual
		} else {
			v.hyst--
		}
	}
	p.pushHist(e, actual)
}

func (p *FCM) pushHist(e *fcmVHTEntry, actual Value) {
	copy(e.hist[1:], e.hist[:len(e.hist)-1])
	e.hist[0] = fold16(actual)
}

// Squash implements Predictor: in-flight history elements at or after
// fromSeq are discarded; older in-flight elements survive. Drained windows
// are kept (see Train).
func (p *FCM) Squash(fromSeq uint64) {
	for _, w := range p.spec {
		for len(w.vals) > 0 && w.vals[len(w.vals)-1].seq >= fromSeq {
			w.vals = w.vals[:len(w.vals)-1]
		}
	}
}

// Name implements Predictor.
func (p *FCM) Name() string { return "o4-FCM" }

// StorageBits implements Predictor: VHT = tag + n×16-bit history + 3-bit
// confidence per entry; VPT = value + 2-bit hysteresis (Table 1: 120.8 kB +
// 67.6 kB at 8K entries each, order 4).
func (p *FCM) StorageBits() int {
	return len(p.vht)*(fcmTagBits+p.order*16+3) + len(p.vpt)*(64+2)
}
