package core

// LFSR is the Linear Feedback Shift Register pseudo-random generator the
// paper uses to drive probabilistic counter transitions (Section 5). It is
// implemented as a word-wide LFSR (xorshift32, linear over GF(2) like any
// LFSR) rather than a bit-serial Galois register: a bit-serial register
// shifts a single position per draw, so the low bits of successive draws
// overlap and probabilistic transitions become strongly correlated — one
// lucky increment makes the next one likely, which silently deflates the
// effective counter width. Hardware avoids this by free-running the
// register; the word-wide update models that.
type LFSR struct {
	s uint32
}

// NewLFSR returns an LFSR seeded with seed (0 is mapped to a fixed non-zero
// state, since the all-zero state is a fixed point).
func NewLFSR(seed uint32) *LFSR {
	if seed == 0 {
		seed = 0xACE1ACE1
	}
	return &LFSR{s: seed}
}

// Next advances the register and returns its new 32-bit state.
func (l *LFSR) Next() uint32 {
	s := l.s
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	l.s = s
	return s
}

// TakeProb returns true with probability 2^-shift (always true for shift 0).
func (l *LFSR) TakeProb(shift uint8) bool {
	if shift == 0 {
		return true
	}
	return l.Next()&(1<<shift-1) == 0
}
