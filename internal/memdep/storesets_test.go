package memdep

import "testing"

func TestNoSetNoWait(t *testing.T) {
	s := New(10)
	if _, wait := s.LoadFetched(100); wait {
		t.Error("load with no store set told to wait")
	}
	if _, has := s.StoreFetched(200, 1); has {
		t.Error("store with no set returned a predecessor")
	}
}

func TestViolationCreatesSharedSet(t *testing.T) {
	s := New(10)
	s.Violation(100, 200)
	if s.SSID(100) == Invalid || s.SSID(100) != s.SSID(200) {
		t.Fatalf("load/store SSIDs = %d,%d, want equal and valid", s.SSID(100), s.SSID(200))
	}
}

func TestLoadWaitsForInFlightStore(t *testing.T) {
	s := New(10)
	s.Violation(100, 200)
	s.StoreFetched(200, 55)
	tok, wait := s.LoadFetched(100)
	if !wait || tok != 55 {
		t.Errorf("LoadFetched = (%d,%v), want (55,true)", tok, wait)
	}
	s.StoreRetired(200, 55)
	if _, wait := s.LoadFetched(100); wait {
		t.Error("load still waiting after store retired")
	}
}

func TestStoreChainReturnsPredecessor(t *testing.T) {
	s := New(10)
	s.Violation(100, 200)
	s.Violation(100, 300) // second store joins the same set
	if s.SSID(200) != s.SSID(300) {
		t.Fatal("stores not merged into one set")
	}
	s.StoreFetched(200, 1)
	prev, has := s.StoreFetched(300, 2)
	if !has || prev != 1 {
		t.Errorf("store chaining: prev = (%d,%v), want (1,true)", prev, has)
	}
}

func TestMergeAdoptsSmallerSSID(t *testing.T) {
	s := New(10)
	s.Violation(1, 2) // set A
	s.Violation(3, 4) // set B
	a, b := s.SSID(1), s.SSID(3)
	if a == b {
		t.Skip("hash collision placed both violations in one set")
	}
	s.Violation(1, 4) // merges A and B
	if s.SSID(1) != s.SSID(4) {
		t.Error("sets not merged after cross violation")
	}
	got := s.SSID(1)
	if got != minU32(a, b) {
		t.Errorf("merged SSID = %d, want min(%d,%d)", got, a, b)
	}
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func TestClearInvalidatesLFST(t *testing.T) {
	s := New(10)
	s.Violation(100, 200)
	s.StoreFetched(200, 9)
	s.Clear()
	if _, wait := s.LoadFetched(100); wait {
		t.Error("LFST entry survived Clear")
	}
}

func TestStoreRetiredOnlyClearsOwnToken(t *testing.T) {
	s := New(10)
	s.Violation(100, 200)
	s.StoreFetched(200, 1)
	s.StoreFetched(200, 2) // newer instance of the same store
	s.StoreRetired(200, 1) // old instance retires
	if _, wait := s.LoadFetched(100); !wait {
		t.Error("newer in-flight store forgotten when older instance retired")
	}
}
