// Package memdep implements the Store Sets memory dependence predictor of
// Chrysos and Emer (Table 2: 1K-SSID/LFST). Loads that violated ordering
// against a store in the past are placed in that store's set; a load whose
// set contains an in-flight store waits for it instead of speculating.
package memdep

// Invalid marks a PC with no store set.
const Invalid = ^uint32(0)

// StoreSets holds the Store Set ID Table (SSIT, indexed by instruction PC)
// and the Last Fetched Store Table (LFST, indexed by SSID). The LFST maps to
// an opaque token the pipeline chooses (the store's ROB sequence number).
type StoreSets struct {
	ssit     []uint32
	ssitMask uint64
	lfst     []lfstEntry
	nextSSID uint32
}

type lfstEntry struct {
	token uint64
	valid bool
}

// New builds store sets with 2^logSSIT SSIT entries and as many possible
// store sets (the paper's 1K/1K).
func New(logSSIT int) *StoreSets {
	n := 1 << logSSIT
	s := &StoreSets{
		ssit:     make([]uint32, n),
		ssitMask: uint64(n - 1),
		lfst:     make([]lfstEntry, n),
	}
	for i := range s.ssit {
		s.ssit[i] = Invalid
	}
	return s
}

func (s *StoreSets) idx(pc uint64) uint64 {
	z := pc * 0x9E3779B97F4A7C15
	return (z >> 32) & s.ssitMask
}

// SSID returns the store set of pc, or Invalid.
func (s *StoreSets) SSID(pc uint64) uint32 { return s.ssit[s.idx(pc)] }

// StoreFetched registers an in-flight store: if the store belongs to a set,
// it becomes that set's last fetched store and the previous one (if any) is
// returned so the pipeline can chain store-store ordering.
func (s *StoreSets) StoreFetched(pc uint64, token uint64) (prev uint64, hasPrev bool) {
	ssid := s.SSID(pc)
	if ssid == Invalid {
		return 0, false
	}
	e := &s.lfst[ssid&uint32(s.ssitMask)]
	prev, hasPrev = e.token, e.valid
	e.token = token
	e.valid = true
	return prev, hasPrev
}

// LoadFetched returns the token of the store the load at pc must wait for,
// if its store set has an in-flight store.
func (s *StoreSets) LoadFetched(pc uint64) (token uint64, wait bool) {
	ssid := s.SSID(pc)
	if ssid == Invalid {
		return 0, false
	}
	e := &s.lfst[ssid&uint32(s.ssitMask)]
	return e.token, e.valid
}

// StoreRetired clears the LFST entry if this store is still its set's last
// fetched store.
func (s *StoreSets) StoreRetired(pc uint64, token uint64) {
	ssid := s.SSID(pc)
	if ssid == Invalid {
		return
	}
	e := &s.lfst[ssid&uint32(s.ssitMask)]
	if e.valid && e.token == token {
		e.valid = false
	}
}

// Violation trains the tables after a memory-order violation between a load
// and an older store, using the Chrysos-Emer merge rules: if neither has a
// set, create one; if one has, the other joins it; if both have, the sets
// merge by adopting the smaller SSID.
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	li, si := s.idx(loadPC), s.idx(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls == Invalid && ss == Invalid:
		id := s.allocSSID()
		s.ssit[li], s.ssit[si] = id, id
	case ls == Invalid:
		s.ssit[li] = ss
	case ss == Invalid:
		s.ssit[si] = ls
	case ls < ss:
		s.ssit[si] = ls
	default:
		s.ssit[li] = ss
	}
}

func (s *StoreSets) allocSSID() uint32 {
	id := s.nextSSID
	s.nextSSID = (s.nextSSID + 1) & uint32(s.ssitMask)
	return id
}

// Clear invalidates all LFST entries (used at pipeline squash: no stores
// remain in flight).
func (s *StoreSets) Clear() {
	for i := range s.lfst {
		s.lfst[i].valid = false
	}
}
