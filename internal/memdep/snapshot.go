package memdep

// State is an opaque snapshot of a StoreSets predictor (SSIT assignments,
// LFST tokens, allocation counter). Restore reinstates it in place on an
// identically sized instance.
type State struct {
	ssit     []uint32
	lfst     []lfstEntry
	nextSSID uint32
}

// Snapshot deep-copies the predictor state.
func (s *StoreSets) Snapshot() *State {
	return &State{
		ssit:     append([]uint32(nil), s.ssit...),
		lfst:     append([]lfstEntry(nil), s.lfst...),
		nextSSID: s.nextSSID,
	}
}

// Restore reinstates a snapshot taken from an identically sized StoreSets.
func (s *StoreSets) Restore(st *State) {
	copy(s.ssit, st.ssit)
	copy(s.lfst, st.lfst)
	s.nextSSID = st.nextSSID
}
