package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClass(t *testing.T) {
	tests := []struct {
		r     Reg
		fp    bool
		valid bool
	}{
		{R0, false, true},
		{R31, false, true},
		{F0, true, true},
		{F31, true, true},
		{NoReg, false, false},
		{Reg(64), false, false},
	}
	for _, tt := range tests {
		if got := tt.r.IsFP(); got != tt.fp {
			t.Errorf("%v.IsFP() = %v, want %v", tt.r, got, tt.fp)
		}
		if got := tt.r.Valid(); got != tt.valid {
			t.Errorf("%v.Valid() = %v, want %v", tt.r, got, tt.valid)
		}
	}
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op      Op
		control bool
		cond    bool
		mem     bool
		load    bool
		store   bool
	}{
		{ADD, false, false, false, false, false},
		{MUL, false, false, false, false, false},
		{FDIV, false, false, false, false, false},
		{LD, false, false, true, true, false},
		{LDX, false, false, true, true, false},
		{FLD, false, false, true, true, false},
		{ST, false, false, true, false, true},
		{FST, false, false, true, false, true},
		{BEQ, true, true, false, false, false},
		{BNE, true, true, false, false, false},
		{JMP, true, false, false, false, false},
		{JR, true, false, false, false, false},
		{CALL, true, false, false, false, false},
		{RET, true, false, false, false, false},
		{HALT, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := IsControl(tt.op); got != tt.control {
			t.Errorf("IsControl(%v) = %v, want %v", tt.op, got, tt.control)
		}
		if got := IsConditional(tt.op); got != tt.cond {
			t.Errorf("IsConditional(%v) = %v, want %v", tt.op, got, tt.cond)
		}
		if got := IsMem(tt.op); got != tt.mem {
			t.Errorf("IsMem(%v) = %v, want %v", tt.op, got, tt.mem)
		}
		if got := IsLoad(tt.op); got != tt.load {
			t.Errorf("IsLoad(%v) = %v, want %v", tt.op, got, tt.load)
		}
		if got := IsStore(tt.op); got != tt.store {
			t.Errorf("IsStore(%v) = %v, want %v", tt.op, got, tt.store)
		}
	}
}

func TestEveryOpHasNameAndClass(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
		// Only NOP may map to ClassNop.
		if op != NOP && ClassOf(op) == ClassNop && op.String() != "nop" {
			t.Errorf("op %v has no class", op)
		}
	}
}

func TestHasDest(t *testing.T) {
	tests := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: ADD, Dst: R1, Src1: R2, Src2: R3}, true},
		{Inst{Op: LD, Dst: R1, Src1: R2}, true},
		{Inst{Op: ST, Dst: NoReg, Src1: R2, Src2: R3}, false},
		{Inst{Op: CALL, Dst: R31}, false}, // control µops are never VP-eligible
		{Inst{Op: BEQ, Dst: NoReg, Src1: R1, Src2: R2}, false},
	}
	for _, tt := range tests {
		if got := tt.in.HasDest(); got != tt.want {
			t.Errorf("%v.HasDest() = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder("t")
	b.Li(R1, 0)
	loop := b.Here()
	b.Addi(R1, R1, 1)
	b.Cmplti(R2, R1, 10)
	b.Bnez(R2, loop)
	b.Halt()
	p := b.Program()

	if got := p.Insts[3]; got.Op != BNE || got.Imm != 1 {
		t.Errorf("branch not patched to loop head: %v", got)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("t")
	done := b.NewLabel()
	b.Li(R1, 5)
	b.Beqz(R1, done)
	b.Li(R1, 7)
	b.Bind(done)
	b.Halt()
	p := b.Program()
	if got := p.Insts[1].Imm; got != 3 {
		t.Errorf("forward branch target = %d, want 3", got)
	}
}

func TestBuilderPanicsOnWrongClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with FP register did not panic")
		}
	}()
	b := NewBuilder("t")
	b.Add(F1, R1, R2)
}

func TestBuilderPanicsOnUnboundLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound label did not panic")
		}
	}()
	b := NewBuilder("t")
	l := b.NewLabel()
	b.Jmp(l)
	b.Program()
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: JMP, Imm: 99}}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range branch target")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: ADD, Dst: Reg(99), Src1: R0, Src2: R1}}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted invalid register")
	}
}

func TestInstStringCoversForms(t *testing.T) {
	forms := []Inst{
		{Op: ADD, Dst: R1, Src1: R2, Src2: R3},
		{Op: ADD, Dst: R1, Src1: R2, Src2: NoReg, Imm: 4},
		{Op: LD, Dst: R1, Src1: R2, Imm: 8},
		{Op: LDX, Dst: R1, Src1: R2, Src2: R3},
		{Op: ST, Src1: R2, Src2: R3, Imm: 8},
		{Op: BEQ, Src1: R1, Src2: R2, Imm: 0},
		{Op: JMP, Imm: 0},
		{Op: JR, Src1: R1},
		{Op: CALL, Dst: R31, Imm: 0},
		{Op: RET, Src1: R31},
		{Op: HALT},
	}
	for _, in := range forms {
		if in.String() == "" {
			t.Errorf("empty String() for %v opcode", in.Op)
		}
	}
}

// Property: register String/IsFP agree — every FP register's name starts
// with 'f', every valid integer register's with 'r'.
func TestRegStringProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		s := r.String()
		if r.IsFP() {
			return s[0] == 'f'
		}
		return s[0] == 'r'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
