package isa

// Binary program codec: a compact, versioned serialization of Program used
// by tools that ship programs between processes (trace dumpers, corpus
// files) and by the native fuzz targets, which round-trip arbitrary bytes
// through Decode/Encode. The format is little-endian:
//
//	magic   "VPP1"
//	name    u8 length, then bytes
//	entry   u32
//	insts   u32 count, then per inst: op u8, dst u8, src1 u8, src2 u8, imm i64
//	data    u16 segment count, then per segment: addr u64, u32 word count, words u64...
//	regs    u8 count, then per reg: reg u8, value u64
//
// Decode validates structure (magic, counts against hard caps, truncation,
// known opcodes) but not semantics; call Program.Validate for that.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// codecMagic identifies (and versions) the binary program format.
const codecMagic = "VPP1"

// Hard caps keeping Decode safe on adversarial input (fuzzing, corrupt
// files): they bound allocation before any data is trusted.
const (
	maxCodecName  = 64
	maxCodecInsts = 1 << 20
	maxCodecSegs  = 1 << 10
	maxCodecWords = 1 << 16
)

// CheckEncodable reports whether the program fits within the codec caps
// shared with Decode. Encode panics on violation; callers accepting programs
// from untrusted producers (the assembler, program uploads) check first and
// return the error instead.
func CheckEncodable(p *Program) error {
	switch {
	case len(p.Name) > maxCodecName:
		return fmt.Errorf("isa: program name %d bytes exceeds codec cap %d", len(p.Name), maxCodecName)
	case len(p.Insts) > maxCodecInsts:
		return fmt.Errorf("isa: %d instructions exceed codec cap %d", len(p.Insts), maxCodecInsts)
	case len(p.Data) > maxCodecSegs:
		return fmt.Errorf("isa: %d data segments exceed codec cap %d", len(p.Data), maxCodecSegs)
	case len(p.InitRegs) > math.MaxUint8:
		return fmt.Errorf("isa: %d initial registers exceed codec cap %d", len(p.InitRegs), math.MaxUint8)
	}
	for _, seg := range p.Data {
		if len(seg.Words) > maxCodecWords {
			return fmt.Errorf("isa: %d segment words exceed codec cap %d", len(seg.Words), maxCodecWords)
		}
	}
	return nil
}

// Encode serializes the program. The output is deterministic: initial
// registers are emitted in ascending register order. Encode panics if the
// program exceeds the codec caps shared with Decode — truncating silently
// would produce a decodable encoding of a *different* program, and every
// in-repo producer (builder, kernels, fuzz recipes) is far below the caps.
func (p *Program) Encode() []byte {
	if err := CheckEncodable(p); err != nil {
		panic("isa: Encode: " + err.Error())
	}
	name := p.Name
	out := make([]byte, 0, 16+len(name)+12*len(p.Insts))
	out = append(out, codecMagic...)
	out = append(out, byte(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, p.Entry)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Insts)))
	for _, in := range p.Insts {
		out = append(out, byte(in.Op), byte(in.Dst), byte(in.Src1), byte(in.Src2))
		out = binary.LittleEndian.AppendUint64(out, uint64(in.Imm))
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Data)))
	for _, seg := range p.Data {
		out = binary.LittleEndian.AppendUint64(out, seg.Addr)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(seg.Words)))
		for _, w := range seg.Words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	}
	regs := make([]Reg, 0, len(p.InitRegs))
	for r := range p.InitRegs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	out = append(out, byte(len(regs)))
	for _, r := range regs {
		out = append(out, byte(r))
		out = binary.LittleEndian.AppendUint64(out, p.InitRegs[r])
	}
	return out
}

// codecReader is a bounds-checked little-endian cursor over Decode's input.
type codecReader struct {
	buf []byte
	off int
	err error
}

func (r *codecReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = errors.New("isa: truncated program encoding")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *codecReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *codecReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *codecReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *codecReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Decode parses a program serialized by Encode. It errors on bad magic,
// truncation, oversized counts, unknown opcodes, duplicate initial-register
// entries, or trailing bytes.
func Decode(data []byte) (*Program, error) {
	r := &codecReader{buf: data}
	if magic := r.take(len(codecMagic)); magic == nil || string(magic) != codecMagic {
		return nil, errors.New("isa: bad program magic")
	}
	nameLen := int(r.u8())
	if nameLen > maxCodecName {
		return nil, fmt.Errorf("isa: program name length %d exceeds %d", nameLen, maxCodecName)
	}
	name := string(r.take(nameLen))
	p := &Program{Name: name, Entry: r.u32()}

	nInsts := int(r.u32())
	if nInsts > maxCodecInsts {
		return nil, fmt.Errorf("isa: %d instructions exceeds %d", nInsts, maxCodecInsts)
	}
	if r.err == nil && nInsts > 0 {
		p.Insts = make([]Inst, 0, min(nInsts, len(r.buf)/12+1))
		for i := 0; i < nInsts && r.err == nil; i++ {
			in := Inst{
				Op:   Op(r.u8()),
				Dst:  Reg(r.u8()),
				Src1: Reg(r.u8()),
				Src2: Reg(r.u8()),
				Imm:  int64(r.u64()),
			}
			if r.err == nil && in.Op >= numOps {
				return nil, fmt.Errorf("isa: unknown opcode %d at pc %d", uint8(in.Op), i)
			}
			p.Insts = append(p.Insts, in)
		}
	}

	nSegs := int(r.u16())
	if nSegs > maxCodecSegs {
		return nil, fmt.Errorf("isa: %d data segments exceeds %d", nSegs, maxCodecSegs)
	}
	for i := 0; i < nSegs && r.err == nil; i++ {
		seg := DataSeg{Addr: r.u64()}
		nWords := int(r.u32())
		if nWords > maxCodecWords {
			return nil, fmt.Errorf("isa: %d segment words exceeds %d", nWords, maxCodecWords)
		}
		if r.err == nil && nWords > 0 {
			seg.Words = make([]uint64, 0, min(nWords, len(r.buf)/8+1))
			for j := 0; j < nWords && r.err == nil; j++ {
				seg.Words = append(seg.Words, r.u64())
			}
		}
		p.Data = append(p.Data, seg)
	}

	nRegs := int(r.u8())
	if nRegs > 0 && r.err == nil {
		p.InitRegs = make(map[Reg]uint64, nRegs)
		for i := 0; i < nRegs && r.err == nil; i++ {
			reg := Reg(r.u8())
			val := r.u64()
			if r.err != nil {
				break
			}
			if _, dup := p.InitRegs[reg]; dup {
				return nil, fmt.Errorf("isa: duplicate initial register %v", reg)
			}
			p.InitRegs[reg] = val
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("isa: %d trailing bytes after program", len(data)-r.off)
	}
	return p, nil
}
