package isa

// Seeded random-program generator for corpus production: Generate(family,
// seed) is a pure function of its arguments, so a corpus is reproducible
// from its (family, seed) pairs alone and two hosts generating the same
// pair get byte-identical Encode() output. Programs follow the builtin
// kernel convention of looping forever — the trace generator bounds
// execution by µop count, not by HALT.
//
// Families stress different predictor mechanisms (DESIGN.md §11):
//
//	branchy  data-dependent biased branches over an LCG stream — branch
//	         predictor pressure plus control-flow-dependent value locality
//	memory   pointer chasing and strided array walks — load-value patterns
//	         from constant to stride to context-dependent
//	mixed    integer/FP arithmetic, loads, stores, calls — a balanced mix
//	         like the paper's general-purpose SPEC workloads

import (
	"fmt"
	"strings"
)

// Families lists the generator families in stable order.
func Families() []string { return []string{"branchy", "memory", "mixed"} }

// splitmix64 is the PRNG behind Generate: tiny, deterministic, and decoupled
// from math/rand so library changes can never alter a published corpus.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// odd returns a random odd 64-bit constant (full-period LCG multipliers).
func (r *splitmix64) odd() uint64 { return r.next() | 1 }

// Generate builds the deterministic program for (family, seed). Identical
// arguments always produce identical programs.
func Generate(family string, seed uint64) (*Program, error) {
	rng := &splitmix64{s: seed}
	name := fmt.Sprintf("%s-%d", family, seed)
	b := NewBuilder(name)
	switch family {
	case "branchy":
		genBranchy(b, rng)
	case "memory":
		genMemory(b, rng)
	case "mixed":
		genMixed(b, rng)
	default:
		return nil, fmt.Errorf("isa: unknown generator family %q (have %s)", family, strings.Join(Families(), ", "))
	}
	return b.Program(), nil
}

// seedWords fills addr with n pseudo-random words and returns addr.
func seedWords(b *Builder, rng *splitmix64, addr uint64, n int) uint64 {
	words := make([]uint64, n)
	for i := range words {
		words[i] = rng.next()
	}
	return b.Data(addr, words...)
}

// seedCycle fills addr with a single pointer-chase cycle over n slots
// (n a power of two): slot i holds the index of the next slot, visiting
// every slot before repeating.
func seedCycle(b *Builder, rng *splitmix64, addr uint64, n int) uint64 {
	stride := uint64(rng.intn(n/2))*2 + 1 // odd => full cycle mod a power of two
	words := make([]uint64, n)
	for i := range words {
		words[i] = (uint64(i) + stride) % uint64(n)
	}
	return b.Data(addr, words...)
}

// genBranchy emits an infinite loop of 4-8 blocks, each updating an LCG and
// branching on a narrow mask of its state — biased, data-dependent branches
// with short arithmetic shadows, plus an occasional call for RAS traffic.
func genBranchy(b *Builder, rng *splitmix64) {
	const base = 1 << 16
	seedWords(b, rng, base, 64)
	b.InitReg(R1, base)      // scratch array
	b.InitReg(R2, rng.odd()) // LCG state
	b.InitReg(R3, 0)         // iteration counter

	// A tiny callee ahead of the loop so calls have somewhere to land.
	fn := b.NewLabel()
	entry := b.NewLabel()
	b.Jmp(entry)
	b.Bind(fn)
	b.Addi(R8, R8, int64(rng.intn(64)+1))
	b.Andi(R8, R8, 0xffff)
	b.Ret(R31)

	b.Bind(entry)
	top := b.Here()
	blocks := 4 + rng.intn(5)
	for i := 0; i < blocks; i++ {
		// LCG step with per-seed constants: the value stream (and thus the
		// branch bias pattern) differs across seeds.
		b.Muli(R2, R2, int64(rng.odd()))
		b.Addi(R2, R2, int64(rng.next()|1))
		mask := int64(1)<<(1+rng.intn(3)) - 1 // 1, 3, or 7: biased direction
		b.Andi(R4, R2, mask)
		skip := b.NewLabel()
		if rng.intn(2) == 0 {
			b.Beqz(R4, skip)
		} else {
			b.Bnez(R4, skip)
		}
		for n := rng.intn(3) + 1; n > 0; n-- {
			switch rng.intn(3) {
			case 0:
				b.Addi(R5, R5, int64(rng.intn(255)+1))
			case 1:
				b.Xori(R6, R2, int64(rng.intn(1<<16)))
			default:
				b.Shli(R7, R5, int64(rng.intn(5)+1))
			}
		}
		if rng.intn(4) == 0 {
			b.Call(R31, fn)
		}
		b.Bind(skip)
	}
	// Touch memory so the family isn't branch-only, then loop.
	b.Andi(R9, R2, 63*8)
	b.Ldx(R10, R1, R9)
	b.Addi(R3, R3, 1)
	b.Jmp(top)
}

// genMemory emits an infinite loop mixing a pointer chase (loads whose
// values are the addresses of the next loads), a strided read walk, and a
// rotating store — the paper's spectrum of load-value predictability.
func genMemory(b *Builder, rng *splitmix64) {
	const (
		chase   = 1 << 16 // pointer-chase cycle, 256 slots
		arr     = 1 << 17 // strided walk array, 512 words
		out     = 1 << 18 // store target, 64 words
		chaseN  = 256
		arrN    = 512
		outMask = 63 * 8
	)
	seedCycle(b, rng, chase, chaseN)
	seedWords(b, rng, arr, arrN)
	seedWords(b, rng, out, 64)
	b.InitReg(R1, chase)
	b.InitReg(R2, uint64(rng.intn(chaseN))) // chase position
	b.InitReg(R3, arr)
	b.InitReg(R4, 0) // walk offset
	b.InitReg(R5, out)
	b.InitReg(R6, 0) // store offset
	b.InitReg(R7, 0) // accumulator

	stride := int64(rng.intn(8)+1) * 8
	top := b.Here()
	// Pointer chase: R2 = mem[chase + R2*8].
	b.Shli(R8, R2, 3)
	b.Ldx(R2, R1, R8)
	// Strided walk with wraparound.
	chunk := rng.intn(3) + 1
	for i := 0; i < chunk; i++ {
		b.Ldx(R9, R3, R4)
		b.Add(R7, R7, R9)
		b.Addi(R4, R4, stride)
		b.Andi(R4, R4, int64(arrN-1)*8)
	}
	// Rotating store of the accumulator.
	b.Ldx(R10, R5, R6) // read-modify-write keeps a dependent load in the mix
	b.Add(R10, R10, R7)
	b.Shri(R11, R6, 3)
	b.St(R5, 0, R10) // fixed-address store; the rotating slot below varies
	b.Addi(R6, R6, 8)
	b.Andi(R6, R6, outMask)
	b.Addi(R11, R11, 1)
	b.Jmp(top)
}

// genMixed emits a balanced loop: integer and FP arithmetic, a couple of
// loads and a store, and a compare-driven branch — the general-purpose
// profile of the paper's SPEC-like kernels.
func genMixed(b *Builder, rng *splitmix64) {
	const (
		ints = 1 << 16 // 128 integer words
		fps  = 1 << 17 // 64 float words
		outA = 1 << 18
	)
	seedWords(b, rng, ints, 128)
	fvals := make([]float64, 64)
	frng := &splitmix64{s: rng.next()}
	for i := range fvals {
		fvals[i] = 1 + float64(frng.intn(1000))/7
	}
	b.DataF(fps, fvals...)
	seedWords(b, rng, outA, 16)
	b.InitReg(R1, ints)
	b.InitReg(R2, fps)
	b.InitReg(R3, outA)
	b.InitReg(R4, 0)         // index
	b.InitReg(R5, rng.odd()) // LCG state
	b.InitReg(R6, 0)         // accumulator

	top := b.Here()
	// Integer phase: LCG plus a dependent load.
	b.Muli(R5, R5, int64(rng.odd()))
	b.Addi(R5, R5, int64(rng.next()|1))
	b.Andi(R7, R5, 127*8)
	b.Ldx(R8, R1, R7)
	b.Add(R6, R6, R8)
	// FP phase: load, multiply-accumulate, occasional convert back.
	b.Andi(R9, R4, 63*8)
	b.Ldx(R10, R2, R9) // raw bits as integer load keeps an extra load
	b.Fld(F1, R2, int64(rng.intn(64))*8)
	b.Fmul(F2, F1, F1)
	b.Fadd(F3, F3, F2)
	if rng.intn(2) == 0 {
		b.F2i(R11, F3)
		b.Add(R6, R6, R11)
	}
	// Store and compare-driven branch.
	b.St(R3, int64(rng.intn(16))*8, R6)
	b.Addi(R4, R4, 8)
	b.Cmplti(R12, R4, int64(rng.intn(4096)+1024))
	skip := b.NewLabel()
	b.Bnez(R12, skip)
	b.Li(R4, 0)
	b.Bind(skip)
	b.Jmp(top)
}
