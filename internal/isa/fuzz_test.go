package isa_test

// Native Go fuzz targets for program building and decoding. CI runs each
// for a short fixed budget (see .github/workflows/ci.yml); locally:
//
//	go test -run='^$' -fuzz=FuzzDecode -fuzztime=30s ./internal/isa
//	go test -run='^$' -fuzz=FuzzBuild  -fuzztime=30s ./internal/isa
//
// Regression inputs found by fuzzing land in testdata/fuzz/ and then run as
// ordinary test cases forever.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// seedProgram is a small but representative program touching every encoder
// feature: data segments, initial registers, ALU, memory and control flow.
func seedProgram() *isa.Program {
	b := isa.NewBuilder("codec-seed")
	b.Data(0x1000, 7, 11, 13)
	b.InitReg(isa.R9, 0xDEADBEEF)
	b.Li(isa.R1, 0x1000)
	b.Li(isa.R2, 0)
	loop := b.Here()
	b.Ld(isa.R3, isa.R1, 0)
	b.Add(isa.R2, isa.R2, isa.R3)
	b.St(isa.R1, 8, isa.R2)
	b.Addi(isa.R4, isa.R2, -1)
	skip := b.NewLabel()
	b.Beqz(isa.R4, skip)
	b.Jmp(loop)
	b.Bind(skip)
	b.Halt()
	return b.Program()
}

// FuzzDecode round-trips arbitrary bytes through the binary program codec:
// any input Decode accepts must Validate without panicking, re-Encode, and
// decode back to the identical program.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VPP1"))
	f.Add(seedProgram().Encode())
	tiny := isa.Program{Name: "t", Insts: []isa.Inst{{Op: isa.HALT}}}
	f.Add(tiny.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := isa.Decode(data)
		if err != nil {
			return // structurally rejected input is a correct outcome
		}
		_ = p.Validate() // semantic validation must not panic
		for _, in := range p.Insts {
			_ = in.String()
		}
		enc := p.Encode()
		back, err := isa.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded program failed: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("decode/encode/decode is not a fixed point:\n%+v\nvs\n%+v", p, back)
		}
	})
}

// FuzzBuild drives the program builder from a byte recipe and checks that
// every built program validates, encodes, round-trips, and survives bounded
// functional execution.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{0x01, 0x22, 0x30, 0x44, 0x05, 0x66})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x10, 0x20, 0x30})
	f.Add(bytes.Repeat([]byte{0x07, 0x31}, 40))
	f.Fuzz(func(t *testing.T, recipe []byte) {
		prog := buildFromRecipe(recipe)
		if err := prog.Validate(); err != nil {
			t.Fatalf("builder produced an invalid program: %v", err)
		}
		// Functional execution must terminate (bounded) without panicking.
		tr := emu.Trace(prog, 2_000)
		if len(tr) == 0 {
			t.Fatal("empty trace from a non-empty program")
		}
		// Codec round trip: compare canonical encodings (DeepEqual would trip
		// over nil-vs-empty map representation differences) and behaviour.
		enc := prog.Encode()
		back, err := isa.Decode(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded program failed: %v", err)
		}
		if !bytes.Equal(enc, back.Encode()) {
			t.Fatalf("round trip changed the program encoding:\n%+v\nvs\n%+v", prog, back)
		}
		if !reflect.DeepEqual(tr, emu.Trace(back, 2_000)) {
			t.Fatal("round-tripped program behaves differently under the emulator")
		}
	})
}

// buildFromRecipe interprets bytes as builder operations over a small
// register window, always producing a structurally valid, halting program.
func buildFromRecipe(recipe []byte) *isa.Program {
	b := isa.NewBuilder("fuzz-build")
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5}
	b.Li(isa.R10, 0x4000) // memory base
	for i, r := range regs {
		b.Li(r, int64(i*3+1))
	}
	for i := 0; i+1 < len(recipe) && i < 200; i += 2 {
		op, arg := recipe[i], recipe[i+1]
		d := regs[int(op>>4)%len(regs)]
		s1 := regs[int(arg>>4)%len(regs)]
		s2 := regs[int(arg)%len(regs)]
		switch int(op) % 10 {
		case 0:
			b.Add(d, s1, s2)
		case 1:
			b.Sub(d, s1, s2)
		case 2:
			b.Xor(d, s1, s2)
		case 3:
			b.Mul(d, s1, s2)
		case 4:
			b.Div(d, s1, s2)
		case 5:
			b.Addi(d, s1, int64(arg))
		case 6: // bounded load
			b.Andi(d, s1, 0x7F8)
			b.Add(d, d, isa.R10)
			b.Ld(d, d, 0)
		case 7: // bounded store
			b.Andi(isa.R7, s1, 0x7F8)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.St(isa.R7, 0, s2)
		case 8: // short forward branch over one µop
			skip := b.NewLabel()
			b.Andi(isa.R8, s1, 1)
			b.Beqz(isa.R8, skip)
			b.Addi(d, d, 1)
			b.Bind(skip)
		case 9: // FP traffic so both register classes appear
			b.Fmov(isa.F1, isa.F1)
		}
	}
	b.Halt()
	return b.Program()
}

// TestCodecRoundTripSeed pins the round trip on the seed program outside the
// fuzzer, so `go test` always covers the codec.
func TestCodecRoundTripSeed(t *testing.T) {
	p := seedProgram()
	enc := p.Encode()
	back, err := isa.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, back.Encode()) {
		t.Fatalf("round trip changed the program encoding:\n%+v\nvs\n%+v", p, back)
	}
	// Decoded programs behave identically under the emulator.
	a := emu.Trace(p, 500)
	c := emu.Trace(back, 500)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("decoded program produced a different trace")
	}
}

// TestDecodeRejectsCorruption pins the decoder's structural validation.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := seedProgram().Encode()
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), enc[4:]...),
		"truncated":    enc[:len(enc)-3],
		"trailing":     append(append([]byte{}, enc...), 0xAA),
		"unknown op":   corruptFirstOp(enc),
		"oversize cnt": oversizeInstCount(enc),
	}
	for name, data := range cases {
		if _, err := isa.Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func corruptFirstOp(enc []byte) []byte {
	out := append([]byte{}, enc...)
	// magic(4) + nameLen(1) + name + entry(4) + count(4), then op byte.
	off := 4 + 1 + int(enc[4]) + 4 + 4
	out[off] = 0xFE
	return out
}

func oversizeInstCount(enc []byte) []byte {
	out := append([]byte{}, enc...)
	off := 4 + 1 + int(enc[4]) + 4
	out[off], out[off+1], out[off+2], out[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
	return out
}
