package isa_test

import (
	"bytes"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// TestGenerateDeterministic pins the corpus contract: identical (family,
// seed) pairs produce byte-identical programs, and different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	for _, family := range isa.Families() {
		a, err := isa.Generate(family, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := isa.Generate(family, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Encode(), b.Encode()) {
			t.Errorf("%s: same seed produced different programs", family)
		}
		c, err := isa.Generate(family, 43)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a.Encode(), c.Encode()) {
			t.Errorf("%s: different seeds produced identical programs", family)
		}
	}
}

// TestGenerateValidAndNonHalting: generated programs validate, never
// collide with a builtin name, and run forever — the trace generator bounds
// execution by µop count, exactly like the builtin kernels.
func TestGenerateValidAndNonHalting(t *testing.T) {
	for _, family := range isa.Families() {
		for seed := uint64(0); seed < 5; seed++ {
			p, err := isa.Generate(family, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", family, seed, err)
			}
			if _, clash := kernels.ByName(p.Name); clash {
				t.Fatalf("%s/%d: generated name %q collides with a builtin", family, seed, p.Name)
			}
			const n = 10_000
			tr := emu.Trace(p, n)
			if len(tr) != n {
				t.Errorf("%s/%d: trace stopped after %d µops (program halted?)", family, seed, len(tr))
			}
		}
	}
}

// TestGenerateUnknownFamily lists the valid families in the error.
func TestGenerateUnknownFamily(t *testing.T) {
	_, err := isa.Generate("quantum", 1)
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, f := range isa.Families() {
		if !bytes.Contains([]byte(err.Error()), []byte(f)) {
			t.Errorf("error %q does not list family %s", err, f)
		}
	}
}
