package isa

import "fmt"

// Reg names an architectural register. R0..R31 are the integer registers,
// F0..F31 the floating-point registers (held as float64 bit patterns).
// NoReg marks an absent operand; an absent Src2 on an ALU op selects the
// immediate operand instead.
type Reg uint8

// NumRegs is the total architectural register count (32 INT + 32 FP).
const NumRegs = 64

// NoReg marks an unused register slot.
const NoReg Reg = 255

// Integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Floating-point registers.
const (
	F0 Reg = iota + 32
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-32)
	case r.Valid():
		return fmt.Sprintf("r%d", r)
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Inst is one static instruction (µop). Branch targets live in Imm as
// absolute instruction indices. ALU ops with Src2 == NoReg use Imm as the
// second operand.
type Inst struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
}

// HasDest reports whether the instruction writes a register that value
// prediction could target. Control µops never qualify (the paper predicts
// values feeding branches, not branches themselves; CALL's link value is
// produced by the front-end).
func (in Inst) HasDest() bool {
	return in.Dst != NoReg && !IsControl(in.Op)
}

func (in Inst) String() string {
	switch {
	case in.Op == HALT || in.Op == NOP:
		return in.Op.String()
	case IsControl(in.Op):
		switch ClassOf(in.Op) {
		case ClassJump:
			return fmt.Sprintf("%s @%d", in.Op, in.Imm)
		case ClassJumpInd, ClassRet:
			return fmt.Sprintf("%s %s", in.Op, in.Src1)
		case ClassCall:
			return fmt.Sprintf("%s %s, @%d", in.Op, in.Dst, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
		}
	case in.Op == ST || in.Op == FST:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Src1, in.Imm, in.Src2)
	case in.Op == LD || in.Op == FLD:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Dst, in.Src1, in.Imm)
	case in.Op == LDX:
		return fmt.Sprintf("%s %s, [%s+%s]", in.Op, in.Dst, in.Src1, in.Src2)
	case in.Src2 == NoReg:
		return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.Src1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}
