package isa

import (
	"fmt"
	"math"
)

// Label is a forward-referenceable branch target handed out by the Builder.
type Label int

// Builder assembles a Program with symbolic labels. Methods panic on misuse
// (wrong register class, unbound label); kernels are static test-covered
// inputs, so construction errors are programming errors.
type Builder struct {
	name    string
	insts   []Inst
	targets []int   // label -> pc, -1 while unbound
	patches []patch // instructions waiting on a label
	data    []DataSeg
	regs    map[Reg]uint64
}

type patch struct {
	pc    int
	label Label
}

// NewBuilder starts assembling a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, regs: make(map[Reg]uint64)}
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.targets = append(b.targets, -1)
	return Label(len(b.targets) - 1)
}

// Bind binds l to the current PC.
func (b *Builder) Bind(l Label) {
	if b.targets[l] != -1 {
		panic(fmt.Sprintf("%s: label %d bound twice", b.name, l))
	}
	b.targets[l] = b.PC()
}

// Here allocates a label already bound to the current PC.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Data seeds memory at addr with words and returns addr for chaining.
func (b *Builder) Data(addr uint64, words ...uint64) uint64 {
	b.data = append(b.data, DataSeg{Addr: addr, Words: words})
	return addr
}

// DataF seeds memory at addr with float64 values.
func (b *Builder) DataF(addr uint64, vals ...float64) uint64 {
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = math.Float64bits(v)
	}
	return b.Data(addr, words...)
}

// InitReg sets the initial value of a register.
func (b *Builder) InitReg(r Reg, v uint64) { b.regs[r] = v }

func (b *Builder) emit(in Inst) {
	b.insts = append(b.insts, in)
}

func wantInt(ctx string, rs ...Reg) {
	for _, r := range rs {
		if r != NoReg && r.IsFP() {
			panic(fmt.Sprintf("%s: expected integer register, got %s", ctx, r))
		}
	}
}

func wantFP(ctx string, rs ...Reg) {
	for _, r := range rs {
		if r != NoReg && !r.IsFP() {
			panic(fmt.Sprintf("%s: expected FP register, got %s", ctx, r))
		}
	}
}

// --- integer ALU ---

func (b *Builder) alu(op Op, d, s1, s2 Reg) {
	wantInt(op.String(), d, s1, s2)
	b.emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
}

func (b *Builder) alui(op Op, d, s1 Reg, imm int64) {
	wantInt(op.String(), d, s1)
	b.emit(Inst{Op: op, Dst: d, Src1: s1, Src2: NoReg, Imm: imm})
}

// Add emits d = s1 + s2.
func (b *Builder) Add(d, s1, s2 Reg) { b.alu(ADD, d, s1, s2) }

// Addi emits d = s1 + imm.
func (b *Builder) Addi(d, s1 Reg, imm int64) { b.alui(ADD, d, s1, imm) }

// Sub emits d = s1 - s2.
func (b *Builder) Sub(d, s1, s2 Reg) { b.alu(SUB, d, s1, s2) }

// Subi emits d = s1 - imm.
func (b *Builder) Subi(d, s1 Reg, imm int64) { b.alui(SUB, d, s1, imm) }

// And emits d = s1 & s2.
func (b *Builder) And(d, s1, s2 Reg) { b.alu(AND, d, s1, s2) }

// Andi emits d = s1 & imm.
func (b *Builder) Andi(d, s1 Reg, imm int64) { b.alui(AND, d, s1, imm) }

// Or emits d = s1 | s2.
func (b *Builder) Or(d, s1, s2 Reg) { b.alu(OR, d, s1, s2) }

// Ori emits d = s1 | imm.
func (b *Builder) Ori(d, s1 Reg, imm int64) { b.alui(OR, d, s1, imm) }

// Xor emits d = s1 ^ s2.
func (b *Builder) Xor(d, s1, s2 Reg) { b.alu(XOR, d, s1, s2) }

// Xori emits d = s1 ^ imm.
func (b *Builder) Xori(d, s1 Reg, imm int64) { b.alui(XOR, d, s1, imm) }

// Shl emits d = s1 << s2.
func (b *Builder) Shl(d, s1, s2 Reg) { b.alu(SHL, d, s1, s2) }

// Shli emits d = s1 << imm.
func (b *Builder) Shli(d, s1 Reg, imm int64) { b.alui(SHL, d, s1, imm) }

// Shri emits d = s1 >> imm (logical).
func (b *Builder) Shri(d, s1 Reg, imm int64) { b.alui(SHR, d, s1, imm) }

// Srai emits d = s1 >> imm (arithmetic).
func (b *Builder) Srai(d, s1 Reg, imm int64) { b.alui(SRA, d, s1, imm) }

// Cmpeq emits d = (s1 == s2) ? 1 : 0.
func (b *Builder) Cmpeq(d, s1, s2 Reg) { b.alu(CMPEQ, d, s1, s2) }

// Cmplt emits d = (s1 < s2 signed) ? 1 : 0.
func (b *Builder) Cmplt(d, s1, s2 Reg) { b.alu(CMPLT, d, s1, s2) }

// Cmplti emits d = (s1 < imm signed) ? 1 : 0.
func (b *Builder) Cmplti(d, s1 Reg, imm int64) { b.alui(CMPLT, d, s1, imm) }

// Li emits d = imm.
func (b *Builder) Li(d Reg, imm int64) {
	wantInt("li", d)
	b.emit(Inst{Op: MOVI, Dst: d, Src1: NoReg, Src2: NoReg, Imm: imm})
}

// Mov emits d = s1.
func (b *Builder) Mov(d, s1 Reg) {
	wantInt("mov", d, s1)
	b.emit(Inst{Op: MOV, Dst: d, Src1: s1, Src2: NoReg})
}

// Mul emits d = s1 * s2.
func (b *Builder) Mul(d, s1, s2 Reg) { b.alu(MUL, d, s1, s2) }

// Muli emits d = s1 * imm.
func (b *Builder) Muli(d, s1 Reg, imm int64) { b.alui(MUL, d, s1, imm) }

// Div emits d = s1 / s2 (signed; /0 = 0).
func (b *Builder) Div(d, s1, s2 Reg) { b.alu(DIV, d, s1, s2) }

// Rem emits d = s1 % s2 (signed; %0 = s1).
func (b *Builder) Rem(d, s1, s2 Reg) { b.alu(REM, d, s1, s2) }

// Remi emits d = s1 % imm.
func (b *Builder) Remi(d, s1 Reg, imm int64) { b.alui(REM, d, s1, imm) }

// --- floating point ---

func (b *Builder) fp3(op Op, d, s1, s2 Reg) {
	wantFP(op.String(), d, s1, s2)
	b.emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
}

// Fadd emits d = s1 + s2.
func (b *Builder) Fadd(d, s1, s2 Reg) { b.fp3(FADD, d, s1, s2) }

// Fsub emits d = s1 - s2.
func (b *Builder) Fsub(d, s1, s2 Reg) { b.fp3(FSUB, d, s1, s2) }

// Fmul emits d = s1 * s2.
func (b *Builder) Fmul(d, s1, s2 Reg) { b.fp3(FMUL, d, s1, s2) }

// Fdiv emits d = s1 / s2.
func (b *Builder) Fdiv(d, s1, s2 Reg) { b.fp3(FDIV, d, s1, s2) }

// Fmov emits d = s1.
func (b *Builder) Fmov(d, s1 Reg) {
	wantFP("fmov", d, s1)
	b.emit(Inst{Op: FMOV, Dst: d, Src1: s1, Src2: NoReg})
}

// Fneg emits d = -s1.
func (b *Builder) Fneg(d, s1 Reg) {
	wantFP("fneg", d, s1)
	b.emit(Inst{Op: FNEG, Dst: d, Src1: s1, Src2: NoReg})
}

// Fabs emits d = |s1|.
func (b *Builder) Fabs(d, s1 Reg) {
	wantFP("fabs", d, s1)
	b.emit(Inst{Op: FABS, Dst: d, Src1: s1, Src2: NoReg})
}

// I2f emits fd = float64(rs).
func (b *Builder) I2f(fd, rs Reg) {
	wantFP("i2f dst", fd)
	wantInt("i2f src", rs)
	b.emit(Inst{Op: I2F, Dst: fd, Src1: rs, Src2: NoReg})
}

// F2i emits rd = int64(fs).
func (b *Builder) F2i(rd, fs Reg) {
	wantInt("f2i dst", rd)
	wantFP("f2i src", fs)
	b.emit(Inst{Op: F2I, Dst: rd, Src1: fs, Src2: NoReg})
}

// Fcmplt emits rd = (fs1 < fs2) ? 1 : 0.
func (b *Builder) Fcmplt(rd, fs1, fs2 Reg) {
	wantInt("fcmplt dst", rd)
	wantFP("fcmplt src", fs1, fs2)
	b.emit(Inst{Op: FCMPLT, Dst: rd, Src1: fs1, Src2: fs2})
}

// --- memory ---

// Ld emits d = mem[base+off].
func (b *Builder) Ld(d, base Reg, off int64) {
	wantInt("ld", d, base)
	b.emit(Inst{Op: LD, Dst: d, Src1: base, Src2: NoReg, Imm: off})
}

// Ldx emits d = mem[base+idx].
func (b *Builder) Ldx(d, base, idx Reg) {
	wantInt("ldx", d, base, idx)
	b.emit(Inst{Op: LDX, Dst: d, Src1: base, Src2: idx})
}

// St emits mem[base+off] = src.
func (b *Builder) St(base Reg, off int64, src Reg) {
	wantInt("st", base, src)
	b.emit(Inst{Op: ST, Dst: NoReg, Src1: base, Src2: src, Imm: off})
}

// Fld emits fd = mem[base+off].
func (b *Builder) Fld(fd, base Reg, off int64) {
	wantFP("fld dst", fd)
	wantInt("fld base", base)
	b.emit(Inst{Op: FLD, Dst: fd, Src1: base, Src2: NoReg, Imm: off})
}

// Fst emits mem[base+off] = fs.
func (b *Builder) Fst(base Reg, off int64, fs Reg) {
	wantInt("fst base", base)
	wantFP("fst src", fs)
	b.emit(Inst{Op: FST, Dst: NoReg, Src1: base, Src2: fs, Imm: off})
}

// --- control flow ---

func (b *Builder) branch(op Op, s1, s2 Reg, l Label) {
	wantInt(op.String(), s1, s2)
	b.patches = append(b.patches, patch{pc: b.PC(), label: l})
	b.emit(Inst{Op: op, Dst: NoReg, Src1: s1, Src2: s2})
}

// Beq emits if s1 == s2 goto l.
func (b *Builder) Beq(s1, s2 Reg, l Label) { b.branch(BEQ, s1, s2, l) }

// Bne emits if s1 != s2 goto l.
func (b *Builder) Bne(s1, s2 Reg, l Label) { b.branch(BNE, s1, s2, l) }

// Blt emits if s1 < s2 goto l.
func (b *Builder) Blt(s1, s2 Reg, l Label) { b.branch(BLT, s1, s2, l) }

// Bge emits if s1 >= s2 goto l.
func (b *Builder) Bge(s1, s2 Reg, l Label) { b.branch(BGE, s1, s2, l) }

// Beqz emits if s1 == 0 goto l.
func (b *Builder) Beqz(s1 Reg, l Label) { b.branch(BEQ, s1, NoReg, l) }

// Bnez emits if s1 != 0 goto l.
func (b *Builder) Bnez(s1 Reg, l Label) { b.branch(BNE, s1, NoReg, l) }

// Jmp emits goto l.
func (b *Builder) Jmp(l Label) {
	b.patches = append(b.patches, patch{pc: b.PC(), label: l})
	b.emit(Inst{Op: JMP, Dst: NoReg, Src1: NoReg, Src2: NoReg})
}

// Jr emits goto value(s1) — an indirect jump.
func (b *Builder) Jr(s1 Reg) {
	wantInt("jr", s1)
	b.emit(Inst{Op: JR, Dst: NoReg, Src1: s1, Src2: NoReg})
}

// Call emits link = retPC; goto l.
func (b *Builder) Call(link Reg, l Label) {
	wantInt("call", link)
	b.patches = append(b.patches, patch{pc: b.PC(), label: l})
	b.emit(Inst{Op: CALL, Dst: link, Src1: NoReg, Src2: NoReg})
}

// Ret emits goto value(link).
func (b *Builder) Ret(link Reg) {
	wantInt("ret", link)
	b.emit(Inst{Op: RET, Dst: NoReg, Src1: link, Src2: NoReg})
}

// Halt emits program termination.
func (b *Builder) Halt() { b.emit(Inst{Op: HALT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Inst{Op: NOP}) }

// Program resolves labels and returns the assembled, validated program.
func (b *Builder) Program() *Program {
	for _, p := range b.patches {
		t := b.targets[p.label]
		if t < 0 {
			panic(fmt.Sprintf("%s: pc %d references unbound label %d", b.name, p.pc, p.label))
		}
		b.insts[p.pc].Imm = int64(t)
	}
	p := &Program{
		Name:     b.name,
		Insts:    b.insts,
		Data:     b.data,
		InitRegs: b.regs,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
