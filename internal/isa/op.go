// Package isa defines the mini-ISA used by the reproduction: a small 64-bit
// RISC-like instruction set rich enough to express the synthetic SPEC-like
// kernels the paper's evaluation needs (integer/FP arithmetic, loads/stores,
// conditional branches, indirect jumps, calls and returns).
//
// The instruction set plays the role of the x86 µops of the paper: every
// instruction is a µop with at most one destination register and two source
// registers, so the value predictor sees exactly one predictable result per
// µop, as in the paper's gem5 setup.
package isa

import "fmt"

// Op is a µop opcode.
type Op uint8

// Opcodes. Register-register forms also accept an immediate second operand
// when Src2 == NoReg (the assembler's *I variants use this encoding).
const (
	NOP Op = iota

	// Integer ALU (1-cycle class).
	ADD
	SUB
	AND
	OR
	XOR
	SHL // logical shift left by Src2/imm (mod 64)
	SHR // logical shift right
	SRA // arithmetic shift right
	CMPEQ
	CMPLT  // signed less-than -> 0/1
	CMPLTU // unsigned less-than -> 0/1
	MOVI   // Dst = Imm
	MOV    // Dst = Src1

	// Integer multiply / divide (long-latency class).
	MUL
	DIV // signed divide; division by zero yields 0
	REM // signed remainder; by zero yields Src1

	// Floating point (values are float64 bit patterns in 64-bit registers).
	FADD
	FSUB
	FMUL
	FDIV
	FMOV
	FNEG
	FABS
	I2F // int64 -> float64
	F2I // float64 -> int64 (truncating; NaN/overflow yields 0)
	FCMPLT

	// Memory. Addresses are byte addresses; accesses are 8-byte words.
	LD  // Dst = mem[Src1 + Imm]
	LDX // Dst = mem[Src1 + Src2]
	ST  // mem[Src1 + Imm] = Src2
	FLD // FP load: Dst(F) = mem[Src1 + Imm]
	FST // FP store: mem[Src1 + Imm] = Src2(F)

	// Control flow. Targets are absolute instruction indices in Imm, except
	// for the indirect forms which read the target from Src1.
	BEQ  // if Src1 == Src2 goto Imm
	BNE  // if Src1 != Src2 goto Imm
	BLT  // if Src1 <  Src2 (signed) goto Imm
	BGE  // if Src1 >= Src2 (signed) goto Imm
	JMP  // goto Imm
	JR   // goto value(Src1): indirect jump (e.g. switch tables)
	CALL // Dst = return PC; goto Imm
	RET  // goto value(Src1): function return (uses the RAS in the front-end)

	HALT

	numOps
)

// Class groups opcodes by the functional unit pool that executes them and by
// their role in the pipeline front-end.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntAlu
	ClassIntMul
	ClassIntDiv
	ClassFPAlu
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // unconditional direct jump
	ClassJumpInd
	ClassCall
	ClassRet
	ClassHalt
)

var opClass = [numOps]Class{
	NOP:    ClassNop,
	ADD:    ClassIntAlu,
	SUB:    ClassIntAlu,
	AND:    ClassIntAlu,
	OR:     ClassIntAlu,
	XOR:    ClassIntAlu,
	SHL:    ClassIntAlu,
	SHR:    ClassIntAlu,
	SRA:    ClassIntAlu,
	CMPEQ:  ClassIntAlu,
	CMPLT:  ClassIntAlu,
	CMPLTU: ClassIntAlu,
	MOVI:   ClassIntAlu,
	MOV:    ClassIntAlu,
	MUL:    ClassIntMul,
	DIV:    ClassIntDiv,
	REM:    ClassIntDiv,
	FADD:   ClassFPAlu,
	FSUB:   ClassFPAlu,
	FMUL:   ClassFPMul,
	FDIV:   ClassFPDiv,
	FMOV:   ClassFPAlu,
	FNEG:   ClassFPAlu,
	FABS:   ClassFPAlu,
	I2F:    ClassFPAlu,
	F2I:    ClassFPAlu,
	FCMPLT: ClassFPAlu,
	LD:     ClassLoad,
	LDX:    ClassLoad,
	ST:     ClassStore,
	FLD:    ClassLoad,
	FST:    ClassStore,
	BEQ:    ClassBranch,
	BNE:    ClassBranch,
	BLT:    ClassBranch,
	BGE:    ClassBranch,
	JMP:    ClassJump,
	JR:     ClassJumpInd,
	CALL:   ClassCall,
	RET:    ClassRet,
	HALT:   ClassHalt,
}

var opName = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SRA: "sra", CMPEQ: "cmpeq", CMPLT: "cmplt",
	CMPLTU: "cmpltu", MOVI: "movi", MOV: "mov", MUL: "mul", DIV: "div",
	REM: "rem", FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FMOV: "fmov", FNEG: "fneg", FABS: "fabs", I2F: "i2f", F2I: "f2i",
	FCMPLT: "fcmplt", LD: "ld", LDX: "ldx", ST: "st", FLD: "fld", FST: "fst",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", JMP: "jmp", JR: "jr",
	CALL: "call", RET: "ret", HALT: "halt",
}

// ClassOf returns the execution class of op.
func ClassOf(op Op) Class {
	if int(op) >= len(opClass) {
		return ClassNop
	}
	return opClass[op]
}

func (op Op) String() string {
	if int(op) < len(opName) && opName[op] != "" {
		return opName[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsControl reports whether op redirects the PC (any branch/jump/call/ret).
func IsControl(op Op) bool {
	switch ClassOf(op) {
	case ClassBranch, ClassJump, ClassJumpInd, ClassCall, ClassRet:
		return true
	}
	return false
}

// IsConditional reports whether op is a conditional branch (the only control
// µops whose direction the TAGE predictor guesses).
func IsConditional(op Op) bool { return ClassOf(op) == ClassBranch }

// IsMem reports whether op accesses data memory.
func IsMem(op Op) bool {
	c := ClassOf(op)
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether op reads data memory.
func IsLoad(op Op) bool { return ClassOf(op) == ClassLoad }

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool { return ClassOf(op) == ClassStore }
