package isa_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// TestDisassembleRoundTripBuiltins pins the tentpole contract of the text
// format: every builtin kernel survives Disassemble -> Assemble with a
// byte-identical binary encoding, so text and binary are interchangeable
// workload sources with the same content-addressed identity.
func TestDisassembleRoundTripBuiltins(t *testing.T) {
	for _, k := range kernels.All() {
		p := k.Build()
		text := isa.Disassemble(p)
		back, err := isa.Assemble("", text)
		if err != nil {
			t.Fatalf("%s: reassemble: %v\n%s", k.Name, err, text)
		}
		if !bytes.Equal(p.Encode(), back.Encode()) {
			t.Errorf("%s: round trip changed the encoding", k.Name)
		}
		if back.Name != p.Name {
			t.Errorf("%s: round-trip name = %q", k.Name, back.Name)
		}
	}
}

// TestDisassembleRoundTripGenerated does the same over generated corpus
// programs, which exercise grammar paths the builtins may not.
func TestDisassembleRoundTripGenerated(t *testing.T) {
	for _, family := range isa.Families() {
		for seed := uint64(0); seed < 8; seed++ {
			p, err := isa.Generate(family, seed)
			if err != nil {
				t.Fatal(err)
			}
			back, err := isa.Assemble("", isa.Disassemble(p))
			if err != nil {
				t.Fatalf("%s/%d: reassemble: %v", family, seed, err)
			}
			if !bytes.Equal(p.Encode(), back.Encode()) {
				t.Errorf("%s/%d: round trip changed the encoding", family, seed)
			}
		}
	}
}

// TestAssembleBasics checks labels, directives, every operand shape, and
// the default-name rule.
func TestAssembleBasics(t *testing.T) {
	src := `
# a tiny but feature-complete program
.name demo
.entry start
.reg r1 4096
.reg f0 0x3ff0000000000000
.data 4096 1 2 3

start:
	movi r2, #0
loop:	ld r3, [r1]     ; comments end the line
	ldx r4, [r1+r2]
	add r2, r2, r3
	st [r1+8], r2
	fld f1, [r1]
	fadd f2, f2, f1
	beq r2, -, loop
	blt r2, r3, @2
	call r31, fn
	jmp loop
fn:	ret r31
`
	p, err := isa.Assemble("fallback", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q, want demo (.name overrides the default)", p.Name)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0 (start binds pc 0)", p.Entry)
	}
	if p.InitRegs[isa.R1] != 4096 || p.InitRegs[isa.F0] != 0x3ff0000000000000 {
		t.Errorf("init regs = %v", p.InitRegs)
	}
	if len(p.Data) != 1 || p.Data[0].Addr != 4096 || len(p.Data[0].Words) != 3 {
		t.Errorf("data = %+v", p.Data)
	}
	// beq r2, -, loop: compare-to-zero against the label's pc (1).
	var beq *isa.Inst
	for i := range p.Insts {
		if p.Insts[i].Op == isa.BEQ {
			beq = &p.Insts[i]
		}
	}
	if beq == nil || beq.Src2 != isa.NoReg || beq.Imm != 1 {
		t.Errorf("beq = %+v, want Src2=NoReg Imm=1", beq)
	}

	// Default name applies without .name.
	q, err := isa.Assemble("fallback", []byte("nop\njmp @0"))
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "fallback" {
		t.Errorf("name = %q, want fallback", q.Name)
	}
}

// TestAssembleErrors pins the failure modes a corpus author will actually
// hit, each with the offending line number in the message.
func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "frobnicate r1, r2", "unknown mnemonic"},
		{"bad register", "add rX, r1, r2", "bad register"},
		{"undefined label", "jmp nowhere", `undefined label "nowhere"`},
		{"duplicate label", "a:\na:\nnop", "defined twice"},
		{"bad directive", ".frob 3", "unknown directive"},
		{"missing immediate hash", "movi r1, 42", "must start with '#'"},
		{"operand count", "add r1, r2", "takes 3 operands"},
		{"target out of range", "jmp @99", "out of range"},
		{"raw escape assembles", "raw 28 1 2 3 0", ""}, // ldx via numeric fields
		{"ldx without brackets", "ldx r4, r1, r2", "takes 2 operands"},
		{"empty program", "# nothing", "out of range"},
		{"dup reg init", ".reg r1 1\n.reg r1 2\nnop\njmp @0", "initialized twice"},
	}
	for _, tc := range cases {
		_, err := isa.Assemble("t", []byte(tc.src))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadSniffsFormat: Load dispatches on the binary magic, so callers can
// hand it either file format without an extension check.
func TestLoadSniffsFormat(t *testing.T) {
	p, err := isa.Generate("branchy", 1)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.Load("ignored", p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin.Encode(), p.Encode()) {
		t.Error("binary Load changed the program")
	}
	txt, err := isa.Load("ignored", isa.Disassemble(p))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(txt.Encode(), p.Encode()) {
		t.Error("text Load changed the program")
	}
	if _, err := isa.Load("x", []byte("VPP2 not a program")); err == nil {
		t.Error("near-magic garbage loaded")
	}
}
