package isa

// Text assembly: a line-oriented, human-writable rendering of Program that
// round-trips byte-exactly through the binary codec — for every program p,
// Assemble(Disassemble(p)) encodes to the same bytes as p (pinned against
// every builtin kernel in asm_test.go). The grammar mirrors Inst.String:
//
//	# whole-line comment; ';' comments to end of line anywhere
//	.name gzip            program name (optional; overrides the default)
//	.entry 3              entry PC (optional; instruction index or label)
//	.reg r1 4096          initial register value
//	.data 4096 1 2 3      seed memory: byte address, then 64-bit words
//	loop:                 label (binds the next instruction's index)
//	add r1, r2, r3        three-register ALU
//	add r1, r2, #5        immediate ALU (Src2 = NoReg)
//	movi r1, #42          load immediate
//	mov r1, r2            register move (mov/fmov/fneg/fabs/i2f/f2i)
//	ld r1, [r2+8]         load  (also [r2], [r2-8])
//	ldx r1, [r2+r3]       indexed load
//	st [r2+8], r3         store (address first, like the destination it is)
//	beq r1, r2, loop      branch to label or absolute @12; '-' = compare to 0
//	jmp loop / jr r1 / call r31, fn / ret r31 / nop / halt
//	raw 1 2 3 255 -7      escape hatch: op dst src1 src2 imm, all numeric
//
// Numbers accept Go literal syntax (0x.., 0o.., decimal). Disassemble emits
// the canonical form above with absolute @N branch targets; `raw` appears
// only for decodable-but-unidiomatic field combinations (e.g. a nop with
// register fields), so arbitrary Decode output still round-trips.

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// opByName maps mnemonics to opcodes, built from the String table so the
// two can never drift.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opName[op]] = op
	}
	return m
}()

// asmError is a parse failure with a 1-based source line.
func asmError(line int, format string, args ...any) error {
	return fmt.Errorf("isa: assemble: line %d: %s", line, fmt.Sprintf(format, args...))
}

// fixup is an unresolved label reference: slot selects which field of the
// program receives the target PC.
type fixup struct {
	line  int
	label string
	pc    int // instruction index to patch (Imm), or -1 for the entry point
}

// Assemble parses text assembly into a validated Program. name is the
// default program name, used when the source has no .name directive (CLI
// loaders pass the file's base name).
func Assemble(name string, src []byte) (*Program, error) {
	p := &Program{Name: name}
	labels := make(map[string]int)
	var fixups []fixup

	for lineNo, rawLine := range strings.Split(string(src), "\n") {
		lineNo++ // 1-based for humans
		line := rawLine
		// ';' comments anywhere; '#' only at line start (inline it would be
		// ambiguous with the '#' immediate prefix).
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			continue
		}

		// Labels: `name:` optionally followed by a directive or instruction.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isLabelName(label) {
				return nil, asmError(lineNo, "bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, asmError(lineNo, "label %q defined twice", label)
			}
			labels[label] = len(p.Insts)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			if err := asmDirective(p, &fixups, lineNo, line); err != nil {
				return nil, err
			}
			continue
		}

		in, f, err := asmInst(lineNo, line, len(p.Insts))
		if err != nil {
			return nil, err
		}
		if f != nil {
			fixups = append(fixups, *f)
		}
		p.Insts = append(p.Insts, in)
	}

	for _, f := range fixups {
		t, ok := labels[f.label]
		if !ok {
			return nil, asmError(f.line, "undefined label %q", f.label)
		}
		if f.pc < 0 {
			p.Entry = uint32(t)
		} else {
			p.Insts[f.pc].Imm = int64(t)
		}
	}
	if err := CheckEncodable(p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: assemble: %w", err)
	}
	return p, nil
}

// asmDirective handles one .name/.entry/.reg/.data line.
func asmDirective(p *Program, fixups *[]fixup, lineNo int, line string) error {
	dir, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch dir {
	case ".name":
		if rest == "" {
			return asmError(lineNo, ".name needs a value")
		}
		p.Name = rest
	case ".entry":
		if rest == "" {
			return asmError(lineNo, ".entry needs an instruction index or label")
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(rest, "@"), 0, 32); err == nil {
			p.Entry = uint32(n)
		} else if isLabelName(rest) {
			*fixups = append(*fixups, fixup{line: lineNo, label: rest, pc: -1})
		} else {
			return asmError(lineNo, "bad .entry %q", rest)
		}
	case ".reg":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return asmError(lineNo, ".reg needs a register and a value")
		}
		r, err := parseReg(fields[0])
		if err != nil || r == NoReg {
			return asmError(lineNo, "bad register %q", fields[0])
		}
		v, err := parseU64(fields[1])
		if err != nil {
			return asmError(lineNo, "bad register value %q", fields[1])
		}
		if p.InitRegs == nil {
			p.InitRegs = make(map[Reg]uint64)
		}
		if _, dup := p.InitRegs[r]; dup {
			return asmError(lineNo, "register %s initialized twice", r)
		}
		p.InitRegs[r] = v
	case ".data":
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return asmError(lineNo, ".data needs an address")
		}
		addr, err := parseU64(fields[0])
		if err != nil {
			return asmError(lineNo, "bad .data address %q", fields[0])
		}
		seg := DataSeg{Addr: addr}
		for _, f := range fields[1:] {
			w, err := parseU64(f)
			if err != nil {
				return asmError(lineNo, "bad .data word %q", f)
			}
			seg.Words = append(seg.Words, w)
		}
		p.Data = append(p.Data, seg)
	default:
		return asmError(lineNo, "unknown directive %q", dir)
	}
	return nil
}

// asmInst parses one instruction line into the exact field encoding the
// builder would emit, plus a label fixup when the target is symbolic.
func asmInst(lineNo int, line string, pc int) (Inst, *fixup, error) {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	var ops []string
	if rest != "" {
		ops = strings.Split(rest, ",")
		for i := range ops {
			ops[i] = strings.TrimSpace(ops[i])
		}
	}
	fail := func(format string, args ...any) (Inst, *fixup, error) {
		return Inst{}, nil, asmError(lineNo, format, args...)
	}
	want := func(n int) error {
		if len(ops) != n {
			return asmError(lineNo, "%s takes %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	if mnem == "raw" {
		fields := strings.Fields(rest)
		if len(fields) != 5 {
			return fail("raw takes 5 space-separated fields (op dst src1 src2 imm), got %d", len(fields))
		}
		var nums [4]uint64
		for i := range 4 {
			n, err := strconv.ParseUint(fields[i], 0, 8)
			if err != nil {
				return fail("bad raw field %q", fields[i])
			}
			nums[i] = n
		}
		imm, err := strconv.ParseInt(fields[4], 0, 64)
		if err != nil {
			return fail("bad raw immediate %q", fields[4])
		}
		if Op(nums[0]) >= numOps {
			return fail("unknown opcode %d", nums[0])
		}
		return Inst{Op: Op(nums[0]), Dst: Reg(nums[1]), Src1: Reg(nums[2]), Src2: Reg(nums[3]), Imm: imm}, nil, nil
	}

	op, ok := opByName[strings.ToLower(mnem)]
	if !ok {
		return fail("unknown mnemonic %q", mnem)
	}

	// target parses a branch destination: @N absolute, or a label (returned
	// as a fixup against this instruction).
	var f *fixup
	target := func(tok string) (int64, error) {
		if strings.HasPrefix(tok, "@") {
			return strconv.ParseInt(tok[1:], 0, 64)
		}
		if !isLabelName(tok) {
			return 0, fmt.Errorf("bad target %q", tok)
		}
		f = &fixup{line: lineNo, label: tok, pc: pc}
		return 0, nil
	}

	switch {
	case op == NOP || op == HALT:
		if err := want(0); err != nil {
			return Inst{}, nil, err
		}
		return Inst{Op: op}, nil, nil

	case op == MOVI:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: d, Src1: NoReg, Src2: NoReg, Imm: imm}, nil, nil

	case op == MOV || op == FMOV || op == FNEG || op == FABS || op == I2F || op == F2I:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		d, err1 := parseReg(ops[0])
		s, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("bad register in %q", line)
		}
		return Inst{Op: op, Dst: d, Src1: s, Src2: NoReg}, nil, nil

	case op == LD || op == FLD:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		base, idx, off, err := parseMem(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		if idx != NoReg {
			return fail("%s takes a base+offset address; use ldx for base+index", mnem)
		}
		return Inst{Op: op, Dst: d, Src1: base, Src2: NoReg, Imm: off}, nil, nil

	case op == LDX:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		base, idx, off, err := parseMem(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		if idx == NoReg || off != 0 {
			return fail("ldx takes a [base+index] address")
		}
		return Inst{Op: op, Dst: d, Src1: base, Src2: idx}, nil, nil

	case op == ST || op == FST:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		base, idx, off, err := parseMem(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		if idx != NoReg {
			return fail("%s takes a base+offset address", mnem)
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: NoReg, Src1: base, Src2: src, Imm: off}, nil, nil

	case IsConditional(op):
		if err := want(3); err != nil {
			return Inst{}, nil, err
		}
		s1, err1 := parseReg(ops[0])
		s2, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("bad register in %q", line)
		}
		imm, err := target(ops[2])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: NoReg, Src1: s1, Src2: s2, Imm: imm}, f, nil

	case op == JMP:
		if err := want(1); err != nil {
			return Inst{}, nil, err
		}
		imm, err := target(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: NoReg, Src1: NoReg, Src2: NoReg, Imm: imm}, f, nil

	case op == JR || op == RET:
		if err := want(1); err != nil {
			return Inst{}, nil, err
		}
		s, err := parseReg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: NoReg, Src1: s, Src2: NoReg}, nil, nil

	case op == CALL:
		if err := want(2); err != nil {
			return Inst{}, nil, err
		}
		link, err := parseReg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		imm, err := target(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		return Inst{Op: op, Dst: link, Src1: NoReg, Src2: NoReg, Imm: imm}, f, nil

	default: // three-operand ALU / FP, with optional immediate forms
		if len(ops) != 3 && len(ops) != 4 {
			return fail("%s takes 3 operands (or 4 with a trailing immediate), got %d", mnem, len(ops))
		}
		d, err1 := parseReg(ops[0])
		s1, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("bad register in %q", line)
		}
		if strings.HasPrefix(ops[2], "#") { // immediate form: Src2 = NoReg
			if len(ops) != 3 {
				return fail("immediate %s takes 3 operands", mnem)
			}
			imm, err := parseImm(ops[2])
			if err != nil {
				return fail("%v", err)
			}
			return Inst{Op: op, Dst: d, Src1: s1, Src2: NoReg, Imm: imm}, nil, nil
		}
		s2, err := parseReg(ops[2])
		if err != nil {
			return fail("%v", err)
		}
		var imm int64
		if len(ops) == 4 {
			if imm, err = parseImm(ops[3]); err != nil {
				return fail("%v", err)
			}
		}
		return Inst{Op: op, Dst: d, Src1: s1, Src2: s2, Imm: imm}, nil, nil
	}
}

// isLabelName reports whether s is a plausible label: an identifier that
// cannot be confused with a register, immediate, or target literal.
func isLabelName(s string) bool {
	if s == "" || s == "-" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseReg parses r0..r31, f0..f31, or '-' for NoReg.
func parseReg(tok string) (Reg, error) {
	if tok == "-" {
		return NoReg, nil
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'f' || tok[0] == 'R' || tok[0] == 'F') {
		if n, err := strconv.ParseUint(tok[1:], 10, 8); err == nil && n < 32 {
			if tok[0] == 'f' || tok[0] == 'F' {
				return Reg(n + 32), nil
			}
			return Reg(n), nil
		}
	}
	return NoReg, fmt.Errorf("bad register %q", tok)
}

// parseImm parses a '#'-prefixed signed immediate.
func parseImm(tok string) (int64, error) {
	if !strings.HasPrefix(tok, "#") {
		return 0, fmt.Errorf("immediate %q must start with '#'", tok)
	}
	n, err := strconv.ParseInt(tok[1:], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return n, nil
}

// parseU64 parses an unsigned 64-bit value, accepting negative literals as
// their two's-complement bit pattern (handy for .reg seeds).
func parseU64(tok string) (uint64, error) {
	if n, err := strconv.ParseUint(tok, 0, 64); err == nil {
		return n, nil
	}
	n, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// parseMem parses a bracketed address: [base], [base+off], [base-off], or
// [base+index]. Returns idx == NoReg for the offset forms.
func parseMem(tok string) (base, idx Reg, off int64, err error) {
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return NoReg, NoReg, 0, fmt.Errorf("bad address %q (want [reg], [reg+off], or [reg+reg])", tok)
	}
	inner := strings.TrimSpace(tok[1 : len(tok)-1])
	i := strings.IndexAny(inner, "+-")
	if i < 0 {
		base, err = parseReg(inner)
		return base, NoReg, 0, err
	}
	base, err = parseReg(strings.TrimSpace(inner[:i]))
	if err != nil {
		return NoReg, NoReg, 0, err
	}
	rest := strings.TrimSpace(inner[i:])
	if inner[i] == '+' {
		if r, rerr := parseReg(strings.TrimSpace(rest[1:])); rerr == nil {
			return base, r, 0, nil
		}
	}
	off, err = strconv.ParseInt(rest, 0, 64)
	if err != nil {
		return NoReg, NoReg, 0, fmt.Errorf("bad address offset %q", rest)
	}
	return base, NoReg, off, nil
}

// Disassemble renders p as text assembly that Assemble parses back to a
// byte-identical encoding. Output order: .name, .entry, .reg (ascending),
// .data (program order), then instructions with absolute @N targets.
func Disassemble(p *Program) []byte {
	var b bytes.Buffer
	if p.Name != "" {
		fmt.Fprintf(&b, ".name %s\n", p.Name)
	}
	if p.Entry != 0 {
		fmt.Fprintf(&b, ".entry %d\n", p.Entry)
	}
	regs := make([]Reg, 0, len(p.InitRegs))
	for r := range p.InitRegs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		fmt.Fprintf(&b, ".reg %s %d\n", r, p.InitRegs[r])
	}
	for _, seg := range p.Data {
		fmt.Fprintf(&b, ".data %d", seg.Addr)
		for _, w := range seg.Words {
			fmt.Fprintf(&b, " %d", w)
		}
		b.WriteByte('\n')
	}
	for _, in := range p.Insts {
		b.WriteString(renderInst(in))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// renderInst emits the canonical text for one instruction, falling back to
// the raw escape for field combinations the grammar has no idiom for.
func renderInst(in Inst) string {
	raw := func() string {
		return fmt.Sprintf("raw %d %d %d %d %d", uint8(in.Op), uint8(in.Dst), uint8(in.Src1), uint8(in.Src2), in.Imm)
	}
	switch {
	case in.Op == NOP || in.Op == HALT:
		if in.Dst != 0 || in.Src1 != 0 || in.Src2 != 0 || in.Imm != 0 {
			return raw()
		}
		return in.Op.String()
	case in.Op == MOVI:
		if in.Src1 != NoReg || in.Src2 != NoReg {
			return raw()
		}
		return fmt.Sprintf("movi %s, #%d", in.Dst, in.Imm)
	case in.Op == MOV || in.Op == FMOV || in.Op == FNEG || in.Op == FABS || in.Op == I2F || in.Op == F2I:
		if in.Src2 != NoReg || in.Imm != 0 {
			return raw()
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src1)
	case in.Op == LD || in.Op == FLD:
		if in.Src2 != NoReg {
			return raw()
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, renderAddr(in.Src1, in.Imm))
	case in.Op == LDX:
		if in.Imm != 0 {
			return raw()
		}
		return fmt.Sprintf("ldx %s, [%s+%s]", in.Dst, in.Src1, in.Src2)
	case in.Op == ST || in.Op == FST:
		if in.Dst != NoReg {
			return raw()
		}
		return fmt.Sprintf("%s %s, %s", in.Op, renderAddr(in.Src1, in.Imm), in.Src2)
	case IsConditional(in.Op):
		if in.Dst != NoReg {
			return raw()
		}
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case in.Op == JMP:
		if in.Dst != NoReg || in.Src1 != NoReg || in.Src2 != NoReg {
			return raw()
		}
		return fmt.Sprintf("jmp @%d", in.Imm)
	case in.Op == JR || in.Op == RET:
		if in.Dst != NoReg || in.Src2 != NoReg || in.Imm != 0 {
			return raw()
		}
		return fmt.Sprintf("%s %s", in.Op, in.Src1)
	case in.Op == CALL:
		if in.Src1 != NoReg || in.Src2 != NoReg {
			return raw()
		}
		return fmt.Sprintf("call %s, @%d", in.Dst, in.Imm)
	default: // three-operand ALU / FP
		if in.Src2 == NoReg {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.Src1, in.Imm)
		}
		if in.Imm != 0 {
			return fmt.Sprintf("%s %s, %s, %s, #%d", in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// renderAddr formats a base+offset memory operand.
func renderAddr(base Reg, off int64) string {
	switch {
	case off == 0:
		return fmt.Sprintf("[%s]", base)
	case off < 0:
		return fmt.Sprintf("[%s%d]", base, off)
	default:
		return fmt.Sprintf("[%s+%d]", base, off)
	}
}

// Load parses a program from either supported file format, sniffing the
// binary codec's magic: VPP1 bytes decode, anything else assembles as text.
// name is the default program name for text sources without a .name.
func Load(name string, data []byte) (*Program, error) {
	if bytes.HasPrefix(data, []byte(codecMagic)) {
		p, err := Decode(data)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	return Assemble(name, data)
}
