package isa

import "fmt"

// DataSeg seeds a region of data memory before a program runs.
type DataSeg struct {
	Addr  uint64   // byte address of the first word (8-byte aligned)
	Words []uint64 // initial 64-bit word contents
}

// Program is a static µop sequence plus its initial machine state. PCs are
// instruction indices starting at Entry.
type Program struct {
	Name     string
	Insts    []Inst
	Entry    uint32
	Data     []DataSeg
	InitRegs map[Reg]uint64
}

// Validate checks structural well-formedness: branch targets in range,
// operand register classes consistent with opcodes.
func (p *Program) Validate() error {
	n := int64(len(p.Insts))
	for pc, in := range p.Insts {
		if IsControl(in.Op) {
			cls := ClassOf(in.Op)
			if cls != ClassJumpInd && cls != ClassRet {
				if in.Imm < 0 || in.Imm >= n {
					return fmt.Errorf("%s: pc %d: target %d out of range [0,%d)", p.Name, pc, in.Imm, n)
				}
			}
		}
		for _, r := range [...]Reg{in.Dst, in.Src1, in.Src2} {
			if r != NoReg && !r.Valid() {
				return fmt.Errorf("%s: pc %d: invalid register %d", p.Name, pc, uint8(r))
			}
		}
	}
	if int64(p.Entry) >= n {
		return fmt.Errorf("%s: entry %d out of range", p.Name, p.Entry)
	}
	return nil
}

// DynInst is one dynamic µop as produced by the functional emulator: the
// static instruction plus everything the timing model and the value
// predictors need to know about this execution of it.
type DynInst struct {
	Seq    uint64 // dynamic sequence number (0-based)
	PC     uint32 // static instruction index
	NextPC uint32 // architecturally correct next PC
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Result uint64 // value written to Dst (valid iff HasDest())
	Addr   uint64 // effective address for memory µops
	Taken  bool   // control-flow outcome (valid for control µops)
}

// HasDest reports whether this dynamic µop produces a value-predictable
// register result.
func (d *DynInst) HasDest() bool {
	return d.Dst != NoReg && !IsControl(d.Op)
}
