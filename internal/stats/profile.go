// Package stats computes workload characterization profiles from dynamic
// µop traces: instruction mix, branch behaviour, memory footprint, and the
// value-locality metrics (last-value and stride predictability) that
// determine which value predictor family can cover a workload. The profiles
// explain the per-kernel results in EXPERIMENTS.md and back the Table 3
// substitution argument in DESIGN.md §4.
package stats

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Profile summarizes one dynamic trace.
type Profile struct {
	Uops uint64

	// Instruction mix (fractions of all µops).
	Loads, Stores, Branches, FPOps, IntOps float64

	// Control flow.
	TakenRate    float64 // taken fraction of conditional branches
	StaticPCs    int     // distinct static µops executed
	CallsReturns uint64

	// Memory behaviour.
	FootprintLines int // distinct 64B lines touched by data accesses

	// Value locality over VP-eligible (register-producing) µops:
	// fraction whose result equals the previous result of the same PC
	// (last-value locality) or the previous result plus the previous
	// stride (stride locality). These bound what LVP-like and stride-like
	// predictors can cover.
	Eligible      uint64
	LastValueRate float64
	StrideRate    float64
}

// Compute builds the profile of a trace.
func Compute(trace []isa.DynInst) Profile {
	var p Profile
	p.Uops = uint64(len(trace))
	if len(trace) == 0 {
		return p
	}

	type hist struct {
		last   uint64
		stride int64
		seen   bool
		seen2  bool
	}
	perPC := make(map[uint32]*hist)
	lines := make(map[uint64]struct{})
	var loads, stores, branches, fpops, intops, takenCond, conds, callsRets uint64
	var lastHits, strideHits uint64

	for i := range trace {
		d := &trace[i]
		switch {
		case isa.IsLoad(d.Op):
			loads++
		case isa.IsStore(d.Op):
			stores++
		}
		cls := isa.ClassOf(d.Op)
		switch cls {
		case isa.ClassFPAlu, isa.ClassFPMul, isa.ClassFPDiv:
			fpops++
		case isa.ClassIntAlu, isa.ClassIntMul, isa.ClassIntDiv:
			intops++
		case isa.ClassCall, isa.ClassRet:
			callsRets++
		}
		if isa.IsControl(d.Op) {
			branches++
			if isa.IsConditional(d.Op) {
				conds++
				if d.Taken {
					takenCond++
				}
			}
		}
		if isa.IsMem(d.Op) {
			lines[d.Addr/64] = struct{}{}
		}
		if d.HasDest() {
			p.Eligible++
			h := perPC[d.PC]
			if h == nil {
				h = &hist{}
				perPC[d.PC] = h
			}
			if h.seen {
				if d.Result == h.last {
					lastHits++
				}
				if h.seen2 && d.Result == h.last+uint64(h.stride) {
					strideHits++
				}
				h.stride = int64(d.Result - h.last)
				h.seen2 = true
			}
			h.last = d.Result
			h.seen = true
		}
	}

	n := float64(len(trace))
	p.Loads = float64(loads) / n
	p.Stores = float64(stores) / n
	p.Branches = float64(branches) / n
	p.FPOps = float64(fpops) / n
	p.IntOps = float64(intops) / n
	if conds > 0 {
		p.TakenRate = float64(takenCond) / float64(conds)
	}
	p.CallsReturns = callsRets
	p.FootprintLines = len(lines)
	pcs := make(map[uint32]struct{})
	for i := range trace {
		pcs[trace[i].PC] = struct{}{}
	}
	p.StaticPCs = len(pcs)
	if p.Eligible > 0 {
		p.LastValueRate = float64(lastHits) / float64(p.Eligible)
		p.StrideRate = float64(strideHits) / float64(p.Eligible)
	}
	return p
}

// Format renders the profile as a compact block.
func (p Profile) Format(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d uops, %d static PCs\n", name, p.Uops, p.StaticPCs)
	fmt.Fprintf(&b, "  mix: %4.1f%% loads %4.1f%% stores %4.1f%% branches %4.1f%% FP %4.1f%% int\n",
		100*p.Loads, 100*p.Stores, 100*p.Branches, 100*p.FPOps, 100*p.IntOps)
	fmt.Fprintf(&b, "  branches: %4.1f%% taken (cond); %d calls/returns\n", 100*p.TakenRate, p.CallsReturns)
	fmt.Fprintf(&b, "  memory: %d lines (%d KB) touched\n", p.FootprintLines, p.FootprintLines*64/1024)
	fmt.Fprintf(&b, "  value locality: %4.1f%% last-value, %4.1f%% stride (of %d eligible)\n",
		100*p.LastValueRate, 100*p.StrideRate, p.Eligible)
	return b.String()
}

// Row renders the profile as one table row (see Header).
func (p Profile) Row(name string) string {
	return fmt.Sprintf("%-10s %5.1f %5.1f %5.1f %5.1f %7d %8d %7.1f %7.1f",
		name, 100*p.Loads, 100*p.Stores, 100*p.Branches, 100*p.FPOps,
		p.StaticPCs, p.FootprintLines, 100*p.LastValueRate, 100*p.StrideRate)
}

// Header is the column header matching Row.
func Header() string {
	return fmt.Sprintf("%-10s %5s %5s %5s %5s %7s %8s %7s %7s",
		"kernel", "ld%", "st%", "br%", "fp%", "PCs", "lines", "lastv%", "stride%")
}
