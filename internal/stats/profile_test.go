package stats

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func TestEmptyTrace(t *testing.T) {
	p := Compute(nil)
	if p.Uops != 0 || p.Eligible != 0 {
		t.Errorf("empty trace profile: %+v", p)
	}
}

func TestConstantLoopIsLastValuePredictable(t *testing.T) {
	b := isa.NewBuilder("const")
	b.Li(isa.R1, 7)
	loop := b.Here()
	b.Mov(isa.R2, isa.R1) // always 7
	b.Jmp(loop)
	b.Halt()
	p := Compute(emu.Trace(b.Program(), 10_000))
	if p.LastValueRate < 0.95 {
		t.Errorf("last-value rate = %.3f on a constant loop, want ≈ 1", p.LastValueRate)
	}
}

func TestAffineLoopIsStridePredictable(t *testing.T) {
	b := isa.NewBuilder("affine")
	b.Li(isa.R1, 0)
	loop := b.Here()
	b.Addi(isa.R1, isa.R1, 8)
	b.Jmp(loop)
	b.Halt()
	p := Compute(emu.Trace(b.Program(), 10_000))
	if p.StrideRate < 0.95 {
		t.Errorf("stride rate = %.3f on an affine loop, want ≈ 1", p.StrideRate)
	}
	if p.LastValueRate > 0.05 {
		t.Errorf("last-value rate = %.3f on an affine loop, want ≈ 0", p.LastValueRate)
	}
}

func TestMixFractionsSumBelowOne(t *testing.T) {
	for _, k := range kernels.All() {
		p := Compute(emu.Trace(k.Build(), 30_000))
		sum := p.Loads + p.Stores + p.Branches + p.FPOps + p.IntOps
		if sum > 1.0001 {
			t.Errorf("%s: mix fractions sum to %.3f > 1", k.Name, sum)
		}
		if p.StaticPCs <= 0 || p.FootprintLines <= 0 {
			t.Errorf("%s: degenerate profile %+v", k.Name, p)
		}
		if p.TakenRate < 0 || p.TakenRate > 1 {
			t.Errorf("%s: taken rate %f", k.Name, p.TakenRate)
		}
	}
}

func TestKernelDesignIntentVisibleInProfiles(t *testing.T) {
	profile := func(name string) Profile {
		k, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("kernel %q missing", name)
		}
		return Compute(emu.Trace(k.Build(), 100_000))
	}
	// art's normalization recurrence (about 2 of 10 µops per iteration) makes
	// it last-value local well above the noise floor, and its scan addresses
	// stride.
	if p := profile("art"); p.LastValueRate < 0.15 || p.StrideRate < 0.5 {
		t.Errorf("art locality lv=%.3f stride=%.3f, want ≥ 0.15 / ≥ 0.5",
			p.LastValueRate, p.StrideRate)
	}
	// bzip2's prefix sums and counters make it stride local.
	if p := profile("bzip2"); p.StrideRate < 0.25 {
		t.Errorf("bzip2 stride rate = %.3f, want ≥ 0.25", p.StrideRate)
	}
	// crafty's bit mixing should be neither.
	if p := profile("crafty"); p.LastValueRate > 0.45 && p.StrideRate > 0.45 {
		t.Errorf("crafty unexpectedly predictable: lv=%.3f stride=%.3f",
			p.LastValueRate, p.StrideRate)
	}
	// mcf touches far more memory than gamess.
	if mcf, gm := profile("mcf"), profile("gamess"); mcf.FootprintLines < gm.FootprintLines*10 {
		t.Errorf("mcf footprint %d not ≫ gamess %d", mcf.FootprintLines, gm.FootprintLines)
	}
	// sjeng exercises calls/returns.
	if p := profile("sjeng"); p.CallsReturns == 0 {
		t.Error("sjeng has no calls/returns")
	}
}

func TestFormatAndRow(t *testing.T) {
	p := Compute(emu.Trace(kernels.All()[0].Build(), 10_000))
	if s := p.Format("x"); !strings.Contains(s, "value locality") {
		t.Errorf("Format missing sections: %q", s)
	}
	if r := p.Row("x"); len(strings.Fields(r)) < 9 {
		t.Errorf("Row too short: %q", r)
	}
	if h := Header(); !strings.Contains(h, "lastv%") {
		t.Errorf("Header malformed: %q", h)
	}
}
