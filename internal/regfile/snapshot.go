package regfile

// State is a snapshot of both register files' occupancy.
type State struct {
	intFree, fpFree int
}

// Snapshot captures the free counts.
func (fs *Files) Snapshot() State {
	return State{intFree: fs.Int.free, fpFree: fs.FP.free}
}

// Restore reinstates a snapshot.
func (fs *Files) Restore(st State) {
	fs.Int.free = st.intFree
	fs.FP.free = st.fpFree
}
