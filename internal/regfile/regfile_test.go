package regfile

import (
	"testing"

	"repro/internal/isa"
)

func TestAllocRelease(t *testing.T) {
	f := NewFile(40) // 8 allocatable beyond the 32 architectural
	for i := 0; i < 8; i++ {
		if !f.TryAlloc() {
			t.Fatalf("alloc %d failed with %d free", i, f.Free())
		}
	}
	if f.TryAlloc() {
		t.Error("alloc succeeded with empty free list")
	}
	f.Release()
	if !f.TryAlloc() {
		t.Error("alloc failed after release")
	}
}

func TestReleaseClampsAtCapacity(t *testing.T) {
	f := NewFile(40)
	for i := 0; i < 20; i++ {
		f.Release()
	}
	if f.Free() != 8 {
		t.Errorf("Free = %d after over-release, want 8", f.Free())
	}
}

func TestFilesDispatchByClass(t *testing.T) {
	fs := NewFiles(256, 256)
	if fs.For(isa.R3) != fs.Int {
		t.Error("integer register routed to FP file")
	}
	if fs.For(isa.F3) != fs.FP {
		t.Error("FP register routed to INT file")
	}
}

func TestZyubanKoggeArea(t *testing.T) {
	// (R+W)(R+2W) with R=2W gives 12W².
	if got := Area(16, 8); got != 24*32 {
		t.Errorf("Area(16,8) = %d, want 768 (12W², W=8)", got)
	}
}

func TestSection4ScenariosMatchPaper(t *testing.T) {
	sc := Section4Scenarios(8)
	wants := []float64{12, 24, 17.5} // the paper's 12W², 24W², 35W²/2
	for i, s := range sc {
		if s.AreaUnits != wants[i] {
			t.Errorf("%s: %.1f W², want %.1f W²", s.Name, s.AreaUnits, wants[i])
		}
	}
	// The buffered design halves the naive overhead as the paper claims:
	// overhead over baseline is (17.5-12) vs (24-12).
	if over := sc[2].AreaUnits - sc[0].AreaUnits; over > (sc[1].AreaUnits-sc[0].AreaUnits)/2 {
		t.Errorf("buffered overhead %.1f W² exceeds half the naive overhead", over)
	}
}
