// Package regfile models the physical register files of the out-of-order
// engine (Table 2: 256 INT + 256 FP) — free-list pressure at rename,
// release at the commit of the next writer — plus the Zyuban-Kogge
// area/energy model the paper uses in Section 4 to size the cost of the
// extra write ports that commit-time value prediction needs.
package regfile

import "repro/internal/isa"

// File tracks physical register occupancy for one register class.
type File struct {
	free  int
	total int
}

// NewFile returns a file with n physical registers, minus the architectural
// mappings that are permanently live (32 per class).
func NewFile(n int) *File {
	return &File{free: n - 32, total: n}
}

// TryAlloc takes one free register, reporting false when none remain (rename
// stalls).
func (f *File) TryAlloc() bool {
	if f.free == 0 {
		return false
	}
	f.free--
	return true
}

// Release returns one register to the free list (the previous mapping of an
// architectural register dies when its next writer commits, or a squashed
// µop's allocation is rolled back).
func (f *File) Release() {
	f.free++
	if f.free > f.total-32 {
		f.free = f.total - 32
	}
}

// Free reports the current free-register count.
func (f *File) Free() int { return f.free }

// Files bundles the INT and FP register files.
type Files struct {
	Int *File
	FP  *File
}

// NewFiles returns Table 2's 256/256 configuration when given 256, 256.
func NewFiles(nInt, nFP int) *Files {
	return &Files{Int: NewFile(nInt), FP: NewFile(nFP)}
}

// For returns the file backing architectural register r.
func (fs *Files) For(r isa.Reg) *File {
	if r.IsFP() {
		return fs.FP
	}
	return fs.Int
}

// Area returns the Zyuban-Kogge register file area estimate, proportional to
// (R+W)(R+2W) for R read and W write ports [29].
func Area(readPorts, writePorts int) int {
	return (readPorts + writePorts) * (readPorts + 2*writePorts)
}

// PortScenario is one register-file provisioning option from Section 4.
type PortScenario struct {
	Name       string
	ReadPorts  int     // R
	WritePorts int     // total write ports (baseline W plus any VP ports)
	AreaUnits  float64 // in units of W² for the paper's comparison
}

// Section4Scenarios reproduces the paper's worked example for issue width W:
// baseline R=2W reads and W writes (area 12W²), naive value prediction
// doubling the write ports (24W²), and the buffered W/2-extra-port design
// (17.5W², i.e. "35W²/2").
func Section4Scenarios(w int) []PortScenario {
	base := Area(2*w, w)
	naive := Area(2*w, 2*w)
	buffered := Area(2*w, w+w/2)
	unit := float64(w * w)
	return []PortScenario{
		{"baseline (R=2W, W writes)", 2 * w, w, float64(base) / unit},
		{"naive VP (2W writes)", 2 * w, 2 * w, float64(naive) / unit},
		{"buffered VP (W/2 extra)", 2 * w, w + w/2, float64(buffered) / unit},
	}
}
