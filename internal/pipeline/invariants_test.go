package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
)

// randomProgram builds a structurally valid random program: arithmetic on a
// handful of registers, loads/stores into a small region, and a counted loop
// with a data-dependent inner branch. Used to fuzz the pipeline model.
func randomProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("fuzz")
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6}
	b.Li(isa.R10, 0x5000) // memory base
	for _, r := range regs {
		b.Li(r, int64(rng.Intn(100)))
	}
	loop := b.Here()
	n := 5 + rng.Intn(20)
	for i := 0; i < n; i++ {
		d := regs[rng.Intn(len(regs))]
		s1 := regs[rng.Intn(len(regs))]
		s2 := regs[rng.Intn(len(regs))]
		switch rng.Intn(8) {
		case 0:
			b.Add(d, s1, s2)
		case 1:
			b.Sub(d, s1, s2)
		case 2:
			b.Xor(d, s1, s2)
		case 3:
			b.Mul(d, s1, s2)
		case 4:
			b.Andi(d, s1, 0xFF8)
		case 5: // bounded load
			b.Andi(d, s1, 0xFF8)
			b.Add(d, d, isa.R10)
			b.Ld(d, d, 0)
		case 6: // bounded store
			b.Andi(isa.R7, s1, 0xFF8)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.St(isa.R7, 0, s2)
		case 7: // data-dependent short forward branch
			skip := b.NewLabel()
			b.Andi(isa.R8, s1, 1)
			b.Beqz(isa.R8, skip)
			b.Addi(d, d, 1)
			b.Bind(skip)
		}
	}
	b.Jmp(loop)
	b.Halt()
	return b.Program()
}

// TestFuzzPipelineInvariants runs random programs through every predictor
// and recovery combination, checking global invariants: the run terminates,
// commits everything requested, and IPC stays within machine bounds.
func TestFuzzPipelineInvariants(t *testing.T) {
	preds := []func(h *ghist.History) core.Predictor{
		nil,
		func(h *ghist.History) core.Predictor { return core.NewLVP(10, core.FPCBaseline, 3) },
		func(h *ghist.History) core.Predictor { return core.NewStride2D(10, core.FPCBaseline, 3) },
		func(h *ghist.History) core.Predictor { return core.NewFCM(4, 10, core.FPCBaseline, 3) },
		func(h *ghist.History) core.Predictor {
			return core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCBaseline), h)
		},
		func(h *ghist.History) core.Predictor {
			return core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCBaseline), h),
				core.NewStride2D(10, core.FPCBaseline, 4))
		},
	}
	seeds := int64(6)
	if testing.Short() {
		seeds = 2 // two seeds still cross every predictor x recovery pair
	}
	for seed := int64(1); seed <= seeds; seed++ {
		tr := emu.Trace(randomProgram(seed), 20_000)
		for pi, mk := range preds {
			for _, rec := range []RecoveryMode{SquashAtCommit, SelectiveReissue} {
				cfg := DefaultConfig()
				cfg.Recovery = rec
				h := &ghist.History{}
				var p core.Predictor
				if mk != nil {
					p = mk(h)
				}
				st, err := New(cfg, tr, p, h).Run(2_000, 15_000)
				if err != nil {
					t.Fatalf("seed %d pred %d %v: %v", seed, pi, rec, err)
				}
				if st.Committed < 17_000 {
					t.Errorf("seed %d pred %d %v: committed %d < requested", seed, pi, rec, st.Committed)
				}
				if ipc := st.IPC(); ipc <= 0 || ipc > 8 {
					t.Errorf("seed %d pred %d %v: IPC %f out of bounds", seed, pi, rec, ipc)
				}
				if acc := st.Accuracy(); acc < 0 || acc > 1 {
					t.Errorf("accuracy %f out of range", acc)
				}
				if cov := st.Coverage(); cov < 0 || cov > 1 {
					t.Errorf("coverage %f out of range", cov)
				}
			}
		}
	}
}

// Property: used predictions partition into correct and wrong.
func TestStatsPartitionProperty(t *testing.T) {
	tr := emu.Trace(randomProgram(42), 20_000)
	f := func(seed uint32) bool {
		cfg := DefaultConfig()
		h := &ghist.History{}
		p := core.NewLVP(10, core.FPCBaseline, seed)
		st, err := New(cfg, tr, p, h).Run(2_000, 10_000)
		if err != nil {
			return false
		}
		return st.Used == st.UsedCorrect+st.UsedWrong && st.Used <= st.Eligible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// TestOracleNeverSlower: on every kernel the oracle machine must commit the
// same work in no more cycles than the baseline.
func TestOracleNeverSlower(t *testing.T) {
	w, m := testWin(5_000, 15_000)
	for _, k := range kernelNames() {
		base, err := NewForKernel(DefaultConfig(), k, int(w+m), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		bst, err := base.Run(w, m)
		if err != nil {
			t.Fatal(err)
		}
		h := &ghist.History{}
		osim, err := NewForKernel(DefaultConfig(), k, int(w+m), &core.Oracle{}, h)
		if err != nil {
			t.Fatal(err)
		}
		ost, err := osim.Run(w, m)
		if err != nil {
			t.Fatal(err)
		}
		// Allow 2% slack for second-order effects (predictions change issue
		// order, which can shift cache/DRAM interleaving slightly). The
		// -short windows are too small to amortize cold caches, so they only
		// smoke-test the path with a much looser bound.
		slack := 0.98
		if testing.Short() {
			slack = 0.85
		}
		if ost.IPC() < bst.IPC()*slack {
			t.Errorf("%s: oracle IPC %.3f below baseline %.3f", k, ost.IPC(), bst.IPC())
		}
	}
}
