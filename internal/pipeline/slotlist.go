package pipeline

// Chain terminator and not-a-member marker for slotList links.
const (
	listEnd  = -1
	listFree = -2
)

// slotList is an intrusive doubly-linked list over ROB slot numbers, kept in
// age order (oldest first) by its users. The per-cycle pipeline stages each
// iterate one of these worklists — dispatched-but-unissued µops for issue,
// completed-but-unprocessed µops for writeback, IQ holders for validation —
// instead of scanning every ROB slot, turning the dominant per-cycle cost
// from O(ROB) into O(live work). Links live in flat arrays sized to the ROB,
// so membership changes are O(1) pointer swaps with no allocation.
type slotList struct {
	head, tail int
	next, prev []int
}

// newSlotList returns an empty list able to hold slots 0..n-1.
func newSlotList(n int) slotList {
	l := slotList{head: listEnd, tail: listEnd, next: make([]int, n), prev: make([]int, n)}
	for i := 0; i < n; i++ {
		l.next[i] = listFree
		l.prev[i] = listFree
	}
	return l
}

// has reports whether slot s is currently a member.
func (l *slotList) has(s int) bool { return l.next[s] != listFree }

// pushBack appends s at the tail. The caller guarantees s is not already a
// member and is younger (in its age order) than every current member.
func (l *slotList) pushBack(s int) {
	l.next[s] = listEnd
	l.prev[s] = l.tail
	if l.tail == listEnd {
		l.head = s
	} else {
		l.next[l.tail] = s
	}
	l.tail = s
}

// insertAfter links s directly after cur; cur == listEnd inserts at the
// front. The caller guarantees s is not already a member.
func (l *slotList) insertAfter(cur, s int) {
	if cur == listEnd {
		l.prev[s] = listEnd
		l.next[s] = l.head
		if l.head == listEnd {
			l.tail = s
		} else {
			l.prev[l.head] = s
		}
		l.head = s
		return
	}
	n := l.next[cur]
	l.next[cur] = s
	l.prev[s] = cur
	l.next[s] = n
	if n == listEnd {
		l.tail = s
	} else {
		l.prev[n] = s
	}
}

// remove unlinks member s.
func (l *slotList) remove(s int) {
	p, n := l.prev[s], l.next[s]
	if p == listEnd {
		l.head = n
	} else {
		l.next[p] = n
	}
	if n == listEnd {
		l.tail = p
	} else {
		l.prev[n] = p
	}
	l.next[s] = listFree
	l.prev[s] = listFree
}

// clear unlinks every member, leaving the list empty and all slots free.
func (l *slotList) clear() {
	for s := l.head; s != listEnd; {
		n := l.next[s]
		l.next[s] = listFree
		l.prev[s] = listFree
		s = n
	}
	l.head, l.tail = listEnd, listEnd
}
