package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ghist"
	"repro/internal/isa"
)

// snapPredictors covers every predictor family the harness can build,
// including the hybrids' cross-feeding and the oracle's feed path.
func snapPredictors() map[string]func(h *ghist.History) core.Predictor {
	return map[string]func(h *ghist.History) core.Predictor{
		"none":   nil,
		"oracle": func(h *ghist.History) core.Predictor { return &core.Oracle{} },
		"lvp":    func(h *ghist.History) core.Predictor { return core.NewLVP(10, core.FPCBaseline, 3) },
		"stride": func(h *ghist.History) core.Predictor { return core.NewStride2D(10, core.FPCBaseline, 3) },
		"fcm":    func(h *ghist.History) core.Predictor { return core.NewFCM(4, 10, core.FPCBaseline, 3) },
		"gdiff":  func(h *ghist.History) core.Predictor { return core.NewGDiff(10, core.FPCBaseline, 3) },
		"ps": func(h *ghist.History) core.Predictor {
			return core.NewPS(10, 10, core.FPCBaseline, 3, h)
		},
		"vtage": func(h *ghist.History) core.Predictor {
			return core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCCommit), h)
		},
		"vtage+stride": func(h *ghist.History) core.Predictor {
			return core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCCommit), h),
				core.NewStride2D(10, core.FPCCommit, 4))
		},
	}
}

// TestSnapshotRestoreByteIdentical is the tentpole differential: for every
// predictor family × both recovery modes, a run that snapshots at the
// warmup boundary, restores into a FRESH sim, and advances to the end must
// reproduce the straight-through Run(warmup, measure) exactly — same Stats,
// same commit stream — and continuing the donor sim must not corrupt the
// snapshot (deep-copy check).
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	kernel := "gzip"
	w, m := testWin(8_000, 20_000)
	total := w + m

	for name, mk := range snapPredictors() {
		for _, rec := range []RecoveryMode{SquashAtCommit, SelectiveReissue} {
			cfg := DefaultConfig()
			cfg.Recovery = rec

			build := func() *Sim {
				h := &ghist.History{}
				var p core.Predictor
				if mk != nil {
					p = mk(h)
				}
				s, err := NewForKernel(cfg, kernel, int(total), p, h)
				if err != nil {
					t.Fatalf("%s/%v: %v", name, rec, err)
				}
				return s
			}

			// Reference: one straight run, recording the commit stream.
			ref := build()
			var refSeqs []uint64
			ref.OnCommit = func(di *isa.DynInst) { refSeqs = append(refSeqs, di.Seq) }
			refStats, err := ref.Run(w, m)
			if err != nil {
				t.Fatalf("%s/%v: ref run: %v", name, rec, err)
			}

			// Donor: warm up, snapshot, then keep running to the end.
			donor := build()
			if _, err := donor.Run(w, 0); err != nil {
				t.Fatalf("%s/%v: warmup: %v", name, rec, err)
			}
			snap := donor.Snapshot()
			atSnap := donor.Stats().Committed
			donorStats, err := donor.Advance(total - atSnap)
			if err != nil {
				t.Fatalf("%s/%v: donor advance: %v", name, rec, err)
			}
			if *donorStats != *refStats {
				t.Errorf("%s/%v: warmed-then-advanced stats differ from straight run:\n%+v\nvs\n%+v",
					name, rec, *donorStats, *refStats)
			}

			// Restore into a fresh sim and advance to the end. The commit
			// stream after the snapshot point must match the reference's
			// suffix, and the final stats must be equal.
			fresh := build()
			fresh.Restore(snap)
			var seqs []uint64
			fresh.OnCommit = func(di *isa.DynInst) { seqs = append(seqs, di.Seq) }
			freshStats, err := fresh.Advance(total - atSnap)
			if err != nil {
				t.Fatalf("%s/%v: restored advance: %v", name, rec, err)
			}
			if *freshStats != *refStats {
				t.Errorf("%s/%v: restored stats differ from straight run:\n%+v\nvs\n%+v",
					name, rec, *freshStats, *refStats)
			}
			suffix := refSeqs[atSnap:]
			if len(seqs) != len(suffix) {
				t.Fatalf("%s/%v: restored run committed %d µops, reference suffix has %d",
					name, rec, len(seqs), len(suffix))
			}
			for i := range seqs {
				if seqs[i] != suffix[i] {
					t.Fatalf("%s/%v: commit stream diverges at %d: %d vs %d",
						name, rec, i, seqs[i], suffix[i])
				}
			}
		}
	}
}

// TestSnapshotReusableTwice restores the same snapshot into two fresh sims
// and checks both runs agree — the snapshot must survive being consumed.
func TestSnapshotReusableTwice(t *testing.T) {
	w, m := testWin(8_000, 20_000)
	total := w + m
	cfg := DefaultConfig()

	build := func() *Sim {
		h := &ghist.History{}
		p := core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCCommit), h),
			core.NewStride2D(10, core.FPCCommit, 4))
		s, err := NewForKernel(cfg, "mcf", int(total), p, h)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	donor := build()
	if _, err := donor.Run(w, 0); err != nil {
		t.Fatal(err)
	}
	snap := donor.Snapshot()
	atSnap := donor.Stats().Committed

	var got [2]Stats
	for i := range got {
		s := build()
		s.Restore(snap)
		st, err := s.Advance(total - atSnap)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = *st
	}
	if got[0] != got[1] {
		t.Errorf("two restores of one snapshot disagree:\n%+v\nvs\n%+v", got[0], got[1])
	}
}

// TestRestoreRejectsMismatchedShape locks the guard: restoring a snapshot
// into a sim with a different configuration must panic, not silently
// corrupt state.
func TestRestoreRejectsMismatchedShape(t *testing.T) {
	s1, err := NewForKernel(DefaultConfig(), "gzip", 5_000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(1_000, 0); err != nil {
		t.Fatal(err)
	}
	snap := s1.Snapshot()

	cfg := DefaultConfig()
	cfg.ROB = cfg.ROB / 2
	s2, err := NewForKernel(cfg, "gzip", 5_000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Restore with mismatched ROB size did not panic")
		}
	}()
	s2.Restore(snap)
}
