package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ghist"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memdep"
	"repro/internal/regfile"
)

// State is an opaque snapshot of a whole Sim: every piece of mutable
// machine state — ROB and stage worklists, fetch queue, rename map, memory
// hierarchy, branch and value predictors, global history, statistics — deep
// copied mid-flight. Taken at the warmup boundary it lets a sweep re-run
// the measurement phase without re-paying warmup, byte-identically to a
// straight-through run (DESIGN.md §9).
//
// A State is only meaningful for a Sim built with New over the same trace
// and the same Config (and a predictor of the same configuration): Restore
// reinstates state in place and never reallocates, so all sizes must match.
type State struct {
	cycle int64

	rob    []robEntry
	head   int
	tail   int
	count  int
	iqUsed int
	lqUsed int
	sqUsed int

	lists [5]slotListState // waitIssue, waitWB, iqHeld, inFlightLd, inFlightSt

	feq     []feEntry
	feqHead int
	feqLen  int

	fetchIdx     int
	nextFetchCyc int64
	fetchBlocked bool
	lastFetchCyc []int64

	lastProd [isa.NumRegs]int

	divFree   []int64
	fpDivFree []int64

	warmupUops uint64
	warmed     bool

	stats Stats

	hist  *ghist.State
	tage  *bpred.TageState
	btb   *bpred.BTBState
	ras   bpred.RASState
	l1i   *mem.CacheState
	l1d   *mem.CacheState
	l2    *mem.CacheState
	mm    *dram.State
	ssets *memdep.State
	regs  regfile.State

	pred core.PredictorState // nil when the sim has no value predictor
}

type slotListState struct {
	head, tail int
	next, prev []int
}

func (l *slotList) snapshot() slotListState {
	return slotListState{
		head: l.head,
		tail: l.tail,
		next: append([]int(nil), l.next...),
		prev: append([]int(nil), l.prev...),
	}
}

func (l *slotList) restore(st slotListState) {
	l.head = st.head
	l.tail = st.tail
	copy(l.next, st.next)
	copy(l.prev, st.prev)
}

// Snapshot deep-copies the simulator's complete mutable state. The trace,
// configuration, and OnCommit hook are not captured: they are identity, not
// state.
func (s *Sim) Snapshot() *State {
	st := &State{
		cycle:        s.cycle,
		rob:          append([]robEntry(nil), s.rob...),
		head:         s.head,
		tail:         s.tail,
		count:        s.count,
		iqUsed:       s.iqUsed,
		lqUsed:       s.lqUsed,
		sqUsed:       s.sqUsed,
		feq:          append([]feEntry(nil), s.feq...),
		feqHead:      s.feqHead,
		feqLen:       s.feqLen,
		fetchIdx:     s.fetchIdx,
		nextFetchCyc: s.nextFetchCyc,
		fetchBlocked: s.fetchBlocked,
		lastFetchCyc: append([]int64(nil), s.lastFetchCyc...),
		lastProd:     s.lastProd,
		divFree:      append([]int64(nil), s.divFree...),
		fpDivFree:    append([]int64(nil), s.fpDivFree...),
		warmupUops:   s.warmupUops,
		warmed:       s.warmed,
		stats:        s.stats,
		hist:         s.hist.Snapshot(),
		tage:         s.tage.Snapshot(),
		btb:          s.btb.Snapshot(),
		ras:          s.ras.Snapshot(),
		l1i:          s.l1i.Snapshot(),
		l1d:          s.l1d.Snapshot(),
		l2:           s.l2.Snapshot(),
		mm:           s.mm.Snapshot(),
		ssets:        s.ssets.Snapshot(),
		regs:         s.regs.Snapshot(),
	}
	st.lists[0] = s.waitIssue.snapshot()
	st.lists[1] = s.waitWB.snapshot()
	st.lists[2] = s.iqHeld.snapshot()
	st.lists[3] = s.inFlightLd.snapshot()
	st.lists[4] = s.inFlightSt.snapshot()
	if s.pred != nil {
		st.pred = s.pred.Snapshot()
	}
	return st
}

// Restore reinstates a snapshot on a Sim constructed with New over the same
// trace, config, and predictor configuration. All state is written in place;
// the shared global-history wiring between the sim, TAGE, and
// history-reading value predictors is preserved.
func (s *Sim) Restore(st *State) {
	if len(st.rob) != len(s.rob) || len(st.feq) != len(s.feq) ||
		len(st.lastFetchCyc) != len(s.lastFetchCyc) ||
		(st.pred == nil) != (s.pred == nil) {
		panic("pipeline: snapshot does not match this sim's configuration")
	}
	s.cycle = st.cycle
	copy(s.rob, st.rob)
	s.head = st.head
	s.tail = st.tail
	s.count = st.count
	s.iqUsed = st.iqUsed
	s.lqUsed = st.lqUsed
	s.sqUsed = st.sqUsed
	s.waitIssue.restore(st.lists[0])
	s.waitWB.restore(st.lists[1])
	s.iqHeld.restore(st.lists[2])
	s.inFlightLd.restore(st.lists[3])
	s.inFlightSt.restore(st.lists[4])
	copy(s.feq, st.feq)
	s.feqHead = st.feqHead
	s.feqLen = st.feqLen
	s.fetchIdx = st.fetchIdx
	s.nextFetchCyc = st.nextFetchCyc
	s.fetchBlocked = st.fetchBlocked
	copy(s.lastFetchCyc, st.lastFetchCyc)
	s.lastProd = st.lastProd
	copy(s.divFree, st.divFree)
	copy(s.fpDivFree, st.fpDivFree)
	s.warmupUops = st.warmupUops
	s.warmed = st.warmed
	s.stats = st.stats
	s.hist.Restore(st.hist)
	s.tage.Restore(st.tage)
	s.btb.Restore(st.btb)
	s.ras.RestoreState(st.ras)
	s.l1i.Restore(st.l1i)
	s.l1d.Restore(st.l1d)
	s.l2.Restore(st.l2)
	s.mm.Restore(st.mm)
	s.ssets.Restore(st.ssets)
	s.regs.Restore(st.regs)
	if s.pred != nil {
		s.pred.Restore(st.pred)
	}
	// The writeback-skip bound is not part of the captured state: force a
	// fresh scan, which recomputes it exactly.
	s.wbMinDone = 0
}
