package pipeline

import (
	"math"

	"repro/internal/core"
)

// This file holds the two legs of the specialized simulate loop
// (DESIGN.md §9): devirtualized per-µop predictor dispatch, and
// event-driven idle-cycle skipping. Both are exact — the reference
// interface-dispatch, step-every-cycle loop stays available behind
// SetReferenceLoop, and TestFastLoopMatchesReference pins the two
// byte-identical across every predictor family and recovery mode.

// predKind names the concrete predictor type the hot loop dispatches to
// directly, avoiding an interface call per µop.
type predKind uint8

const (
	predNone   predKind = iota // baseline machine: no value prediction
	predLVP
	predStride
	predFCM
	predVTAGE
	predGDiff
	predPS
	predHybrid
	predOracle
	predOther // unknown implementation (tests): interface dispatch
)

// resolvePred classifies pred and caches the concrete pointer for direct
// calls. Called once at construction; the per-µop wrappers below switch on
// the kind, which the compiler lowers to direct (inlinable) calls.
func (s *Sim) resolvePred(pred core.Predictor) {
	s.predKind = predOther
	switch p := pred.(type) {
	case nil:
		s.predKind = predNone
	case *core.LVP:
		s.predKind, s.lvp = predLVP, p
	case *core.Stride2D:
		s.predKind, s.stride = predStride, p
	case *core.FCM:
		s.predKind, s.fcm = predFCM, p
	case *core.VTAGE:
		s.predKind, s.vtage = predVTAGE, p
	case *core.GDiff:
		s.predKind, s.gdiff = predGDiff, p
	case *core.PS:
		s.predKind, s.ps = predPS, p
	case *core.Hybrid:
		s.predKind, s.hyb = predHybrid, p
	case *core.Oracle:
		s.predKind, s.orc = predOracle, p
	}
}

// SetReferenceLoop switches the sim to the reference simulate loop:
// interface dispatch for every predictor call and a step every cycle with
// no idle skipping. The fast loop is exactly equivalent; the reference
// exists so differential tests can prove it.
func (s *Sim) SetReferenceLoop(on bool) { s.refLoop = on }

func (s *Sim) predict(pc uint64, m *core.Meta) {
	if s.refLoop {
		s.pred.Predict(pc, m)
		return
	}
	switch s.predKind {
	case predLVP:
		s.lvp.Predict(pc, m)
	case predStride:
		s.stride.Predict(pc, m)
	case predFCM:
		s.fcm.Predict(pc, m)
	case predVTAGE:
		s.vtage.Predict(pc, m)
	case predGDiff:
		s.gdiff.Predict(pc, m)
	case predPS:
		s.ps.Predict(pc, m)
	case predHybrid:
		s.hyb.Predict(pc, m)
	case predOracle:
		s.orc.Predict(pc, m)
	default:
		s.pred.Predict(pc, m)
	}
}

func (s *Sim) train(pc uint64, actual uint64, m *core.Meta) {
	if s.refLoop {
		s.pred.Train(pc, actual, m)
		return
	}
	switch s.predKind {
	case predLVP:
		s.lvp.Train(pc, actual, m)
	case predStride:
		s.stride.Train(pc, actual, m)
	case predFCM:
		s.fcm.Train(pc, actual, m)
	case predVTAGE:
		s.vtage.Train(pc, actual, m)
	case predGDiff:
		s.gdiff.Train(pc, actual, m)
	case predPS:
		s.ps.Train(pc, actual, m)
	case predHybrid:
		s.hyb.Train(pc, actual, m)
	case predOracle:
		s.orc.Train(pc, actual, m)
	default:
		s.pred.Train(pc, actual, m)
	}
}

func (s *Sim) squashPred(fromSeq uint64) {
	if s.refLoop {
		s.pred.Squash(fromSeq)
		return
	}
	switch s.predKind {
	case predLVP:
		s.lvp.Squash(fromSeq)
	case predStride:
		s.stride.Squash(fromSeq)
	case predFCM:
		s.fcm.Squash(fromSeq)
	case predVTAGE:
		s.vtage.Squash(fromSeq)
	case predGDiff:
		s.gdiff.Squash(fromSeq)
	case predPS:
		s.ps.Squash(fromSeq)
	case predHybrid:
		s.hyb.Squash(fromSeq)
	case predOracle:
		s.orc.Squash(fromSeq)
	default:
		s.pred.Squash(fromSeq)
	}
}

// feedSpec forwards a speculative occurrence to predictors that track one
// (the SpecFeeder implementations); other kinds are a no-op, mirroring the
// cached sfeed capability view.
func (s *Sim) feedSpec(pc uint64, v uint64, seq uint64) {
	if s.refLoop {
		if s.sfeed != nil {
			s.sfeed.FeedSpec(pc, v, seq)
		}
		return
	}
	switch s.predKind {
	case predStride:
		s.stride.FeedSpec(pc, v, seq)
	case predFCM:
		s.fcm.FeedSpec(pc, v, seq)
	case predGDiff:
		s.gdiff.FeedSpec(pc, v, seq)
	case predPS:
		s.ps.FeedSpec(pc, v, seq)
	case predHybrid:
		s.hyb.FeedSpec(pc, v, seq)
	default:
		if s.sfeed != nil {
			s.sfeed.FeedSpec(pc, v, seq)
		}
	}
}

// feedActual forwards the architectural outcome to the oracle before its
// Predict; all other kinds are a no-op.
func (s *Sim) feedActual(v uint64) {
	if s.refLoop {
		if s.ofeed != nil {
			s.ofeed.FeedActual(v)
		}
		return
	}
	switch s.predKind {
	case predOracle:
		s.orc.FeedActual(v)
	default:
		if s.ofeed != nil {
			s.ofeed.FeedActual(v)
		}
	}
}

// noEvent marks "no future cycle can change anything" in nextEventCycle.
const noEvent = int64(math.MaxInt64)

// nextEventCycle returns the earliest cycle at which any pipeline stage can
// act, assuming the cycle that just finished made no progress anywhere:
//
//   - an issued µop completes (doneCyc of a waitWB entry) — enables
//     writeback processing, dependent wakeup, IQ validation release;
//   - the ROB head becomes committable (doneCyc + commitLatency);
//   - the fetch queue head becomes dispatchable (readyCyc);
//   - the front-end may fetch again (nextFetchCyc, when fetch is eligible).
//
// Any returned cycle at or before s.cycle means "something is already
// pending" and the caller must not skip. The event set is exhaustive
// because every other state transition is driven by one of these: source
// readiness changes only when a producer completes or commits, structural
// resources free only at commit/writeback/issue, a blocked divider's free
// time is folded in separately (s.blockEvent), and the caller refuses to
// skip outright when issue saw a µop whose blocked retry has side effects
// (MSHR-full loads re-probe the cache every cycle).
func (s *Sim) nextEventCycle() int64 {
	// wbMinDone is a lower bound on the earliest completion in waitWB
	// (maintained by writeback/issue): a stale-low bound only shortens the
	// skip, never overshoots a completion.
	t := noEvent
	if s.waitWB.head != listEnd && s.wbMinDone < t {
		t = s.wbMinDone
	}
	if s.count > 0 {
		if h := &s.rob[s.head]; h.done {
			if d := h.doneCyc + commitLatency; d < t {
				t = d
			}
		}
	}
	if s.feqLen > 0 {
		// Only a not-yet-ready head is an event. An already-ready head in a
		// no-progress cycle means dispatch is resource-stalled: the unblock
		// comes from a completion or commit (covered above), and the stall
		// counter is bulk-charged by maybeSkipIdle.
		if d := s.feq[s.feqHead].readyCyc; d >= s.cycle && d < t {
			t = d
		}
	}
	if !s.fetchBlocked && s.fetchIdx < len(s.trace) && s.feqLen < fetchBufCap {
		if d := s.nextFetchCyc; d < t {
			t = d
		}
	}
	return t
}

// maybeSkipIdle advances s.cycle directly to the next event when the step
// that just ran changed nothing. Stepping through the skipped cycles would
// have been pure no-ops except for the per-cycle dispatch stall counter,
// which is bulk-added: the stall predicate cannot change during the window
// (its inputs only move on the events the window excludes by construction).
func (s *Sim) maybeSkipIdle() {
	if s.refLoop || s.progress || s.issueBlocked {
		return
	}
	t := s.nextEventCycle()
	if s.blockEvent < t {
		t = s.blockEvent // a busy divider frees then (always > s.cycle)
	}
	if t == noEvent || t <= s.cycle {
		return
	}
	if s.stallCtr != nil && s.warmed {
		*s.stallCtr += uint64(t - s.cycle)
	}
	s.cycle = t
}
