// Package pipeline is the trace-driven cycle-level model of the paper's
// out-of-order superscalar machine (Table 2): an 8-wide, deep (15-cycle
// front-end / 4-cycle back-end) pipeline with a 256-entry ROB, 128-entry IQ,
// 48/48 LQ/SQ, 256/256 physical registers, TAGE branch prediction, store
// sets, a three-level memory hierarchy over DDR3, and — the subject of the
// paper — value prediction in the front-end with validation either by
// squashing at commit or by idealized selective reissue.
//
// The model is trace-driven: the functional emulator supplies the correct
// dynamic path, so branch mispredictions and squashes appear as fetch
// bubbles plus structural refill rather than wrong-path execution
// (DESIGN.md §4 documents the substitution).
package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/mem"
)

// RecoveryMode selects how a used value misprediction is repaired
// (Section 3.1.1 of the paper).
type RecoveryMode int

const (
	// SquashAtCommit flushes the pipeline when the mispredicted µop
	// commits — cheap hardware, expensive recovery.
	SquashAtCommit RecoveryMode = iota
	// SelectiveReissue replays only the dependents of the mispredicted µop
	// with the paper's idealistic 0-cycle repair; value-speculative µops
	// hold their IQ entries until they are validated.
	SelectiveReissue
)

func (m RecoveryMode) String() string {
	if m == SelectiveReissue {
		return "reissue"
	}
	return "squash"
}

// Config is the machine description. DefaultConfig returns Table 2.
type Config struct {
	FetchWidth    int
	TakenPerCyc   int // taken branches fetchable per cycle
	DispatchWidth int
	IssueWidth    int
	RetireWidth   int

	FrontDepth int64 // fetch-to-dispatch latency (paper: 15, "slow front-end")
	BackDepth  int64 // issue-to-commit minimum (paper: 4, "swift back-end")

	ROB, IQ, LQ, SQ int
	IntRegs, FPRegs int

	// Functional unit pools and latencies.
	ALUs       int
	MulDivs    int
	FPUs       int
	FPMulDivs  int
	MemPorts   int
	LatALU     int64
	LatMul     int64
	LatDiv     int64 // unpipelined
	LatFP      int64
	LatFPMul   int64
	LatFPDiv   int64 // unpipelined
	LatForward int64 // store-to-load forwarding

	BTBMissBubble int64 // front-end redirect on a taken-branch BTB miss

	Recovery RecoveryMode

	// PredictLoadsOnly restricts value prediction to load µops — the
	// classic load-value-prediction deployment. The paper predicts every
	// register-producing µop ("we do not try to estimate criticality or
	// focus only on load instructions", §7.2); this switch quantifies the
	// difference.
	PredictLoadsOnly bool

	// Caches and memory.
	L1I, L1D, L2 mem.Config
	DRAM         dram.Config

	LogSSIT int // store sets size
}

// DefaultConfig is the paper's Table 2 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    8,
		TakenPerCyc:   2,
		DispatchWidth: 8,
		IssueWidth:    8,
		RetireWidth:   8,
		FrontDepth:    15,
		BackDepth:     4,
		ROB:           256,
		IQ:            128,
		LQ:            48,
		SQ:            48,
		IntRegs:       256,
		FPRegs:        256,
		ALUs:          8,
		MulDivs:       4,
		FPUs:          8,
		FPMulDivs:     4,
		MemPorts:      4,
		LatALU:        1,
		LatMul:        3,
		LatDiv:        25,
		LatFP:         3,
		LatFPMul:      5,
		LatFPDiv:      10,
		LatForward:    2,
		BTBMissBubble: 5,
		Recovery:      SquashAtCommit,
		L1I:           mem.Config{Name: "L1I", Bytes: 32 << 10, Assoc: 4, Latency: 1, MSHRs: 8},
		L1D:           mem.Config{Name: "L1D", Bytes: 32 << 10, Assoc: 4, Latency: 2, MSHRs: 64},
		L2:            mem.Config{Name: "L2", Bytes: 2 << 20, Assoc: 16, Latency: 12, MSHRs: 64},
		DRAM:          dram.DefaultConfig(),
		LogSSIT:       10,
	}
}

// FormatTable2 renders the simulator configuration in the shape of the
// paper's Table 2.
func (c Config) FormatTable2() string {
	var b strings.Builder
	w := func(section, text string) {
		fmt.Fprintf(&b, "%-10s %s\n", section, text)
	}
	w("Front End", fmt.Sprintf("L1I %d-way %dKB; %d-wide fetch (%d taken branch/cycle); TAGE 1+12 components; 2-way 4K-entry BTB, 32-entry RAS; %d-cycle front-end",
		c.L1I.Assoc, c.L1I.Bytes>>10, c.FetchWidth, c.TakenPerCyc, c.FrontDepth))
	w("Execution", fmt.Sprintf("%d-entry ROB, %d-entry IQ, %d/%d-entry LQ/SQ, %d/%d INT/FP registers; 1K-SSID/LFST Store Sets; %d-issue, %dALU(%dc), %dMulDiv(%dc/%dc*), %dFP(%dc), %dFPMulDiv(%dc/%dc*), %dLd/Str; full bypass; %d-wide retire",
		c.ROB, c.IQ, c.LQ, c.SQ, c.IntRegs, c.FPRegs, c.IssueWidth,
		c.ALUs, c.LatALU, c.MulDivs, c.LatMul, c.LatDiv,
		c.FPUs, c.LatFP, c.FPMulDivs, c.LatFPMul, c.LatFPDiv,
		c.MemPorts, c.RetireWidth))
	w("Caches", fmt.Sprintf("L1D %d-way %dKB, %d cycles, %d MSHRs, %d load ports; unified L2 %d-way %dMB, %d cycles, %d MSHRs, stride prefetcher degree 8; 64B lines, LRU",
		c.L1D.Assoc, c.L1D.Bytes>>10, c.L1D.Latency, c.L1D.MSHRs, c.MemPorts,
		c.L2.Assoc, c.L2.Bytes>>20, c.L2.Latency, c.L2.MSHRs))
	w("Memory", fmt.Sprintf("single channel DDR3-1600 (11-11-11), 2 ranks, 8 banks/rank, 8K row buffer, tREFI 7.8us; min read lat. %d cycles, max %d cycles",
		dram.New(c.DRAM).MinReadLatency(), dram.New(c.DRAM).MaxReadLatency()))
	w("*", "not pipelined")
	return b.String()
}
