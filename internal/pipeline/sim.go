package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/memdep"
	"repro/internal/regfile"
)

// noSlot marks an absent ROB dependency.
const noSlot = -1

// robEntry is one in-flight µop.
type robEntry struct {
	ti  int    // trace index
	seq uint64 // trace sequence number (identity across slot reuse)

	fetchCyc int64
	dispCyc  int64
	issueCyc int64
	doneCyc  int64

	// recheckAt is a lower bound on the cycle this entry could next become
	// issue-eligible (set by readyBound when srcStatus fails); the issue scan
	// skips the srcStatus walk until then. Purely an iteration filter: it
	// never affects what issues when.
	recheckAt int64

	dispatched bool
	issued     bool
	done       bool
	wbDone     bool // writeback-side effects already processed
	inIQ       bool

	// Dependencies: ROB slots of the producing µops (noSlot if the operand
	// was architecturally ready at dispatch), guarded by seq for slot reuse.
	dep1, dep2       int
	dep1Seq, dep2Seq uint64

	// Value prediction.
	vpTried   bool // the predictor was consulted for this µop at fetch
	conf      bool // confident prediction written to the PRF at dispatch
	predWrong bool
	predUsed  bool // a dependent issued consuming the predicted value
	meta      core.Meta

	// Branch prediction.
	isCond    bool
	brMispred bool
	bmeta     bpred.TageMeta
	btbBubble bool

	// History/RAS checkpoints (state before this µop at fetch).
	histPos uint64
	rasTop  int

	hasDest     bool
	destFP      bool
	isLoad      bool
	isStore     bool
	fwdStore    bool // load satisfied by store-to-load forwarding
	usedSpecSrc bool // issued consuming a not-yet-validated predicted value

	// Store-set dependence: the load must wait for this store.
	depStoreSeq uint64
	hasDepStore bool
}

// feEntry is a fetched µop waiting in the in-order front-end.
type feEntry struct {
	ti        int
	readyCyc  int64
	vpTried   bool
	conf      bool
	predWrong bool
	meta      core.Meta
	isCond    bool
	brMispred bool
	bmeta     bpred.TageMeta
	histPos   uint64
	rasTop    int
}

// Sim is one simulation instance: a machine configuration bound to a trace
// and a value predictor. Zero value is not usable; construct with New.
type Sim struct {
	cfg   Config
	trace []isa.DynInst
	pred  core.Predictor // nil = baseline machine without value prediction

	// OnCommit, when non-nil, observes every architecturally committed µop in
	// commit order — exactly once each, squashes included. Differential tests
	// replay the committed stream against the functional emulator through it.
	OnCommit func(*isa.DynInst)

	hist  *ghist.History
	tage  *bpred.Tage
	btb   *bpred.BTB
	ras   *bpred.RAS
	l1i   *mem.Cache
	l1d   *mem.Cache
	l2    *mem.Cache
	mm    *dram.Memory
	ssets *memdep.StoreSets
	regs  *regfile.Files

	cycle int64

	rob    []robEntry
	head   int
	tail   int
	count  int
	iqUsed int
	lqUsed int
	sqUsed int

	// Per-cycle stage worklists (age-ordered; see slotList). Together they
	// replace full-ROB scans in issue, writeback and IQ validation.
	waitIssue slotList // dispatched, not yet issued
	waitWB    slotList // issued, writeback-side effects not yet processed
	iqHeld    slotList // still holding an IQ entry (inIQ)

	// In-flight memory µops (age-ordered): store-to-load forwarding walks
	// inFlightSt instead of every older ROB slot, and violation detection
	// walks inFlightLd instead of every younger one.
	inFlightLd slotList
	inFlightSt slotList

	// Fetch-to-dispatch decoupling queue as a fixed ring buffer: feq is
	// allocated once in New and reused for the whole run.
	feq     []feEntry
	feqHead int
	feqLen  int

	fetchIdx     int
	nextFetchCyc int64
	fetchBlocked bool    // waiting for a mispredicted branch to resolve
	lastFetchCyc []int64 // per static PC, cycle of the last fetch (-1 = never)

	lastProd [isa.NumRegs]int // arch reg -> producing ROB slot (or noSlot)

	// Unpipelined divider pools.
	divFree   []int64
	fpDivFree []int64

	// reissueScratch is the reusable invalid-set of reissueDependents.
	reissueScratch []bool

	// Cached capability views of pred, resolved once instead of per fetch.
	ofeed core.OracleFeed
	sfeed core.SpecFeeder

	// Devirtualized predictor dispatch (fastloop.go): the concrete type is
	// resolved once at construction so the per-µop wrappers switch on
	// predKind and call directly instead of through the interface.
	predKind predKind
	lvp      *core.LVP
	stride   *core.Stride2D
	fcm      *core.FCM
	vtage    *core.VTAGE
	gdiff    *core.GDiff
	ps       *core.PS
	hyb      *core.Hybrid
	orc      *core.Oracle
	refLoop  bool // reference loop: interface dispatch, no idle skipping

	// Per-step transients feeding maybeSkipIdle (fastloop.go). progress is
	// set by any stage that changed machine state this cycle; issueBlocked
	// when issue saw a source-ready µop fail on a resource whose retry has
	// side effects or unknown timing (MSHR-full loads, width limits);
	// blockEvent is the earliest unblock cycle of purely-timestamped blocks
	// (busy dividers); stallCtr points at the dispatch stall counter charged
	// this cycle; doneActivity when a completion threshold crossed
	// (writeback processing, commit, or a squash), the only cycles IQ
	// validation can release on.
	progress     bool
	issueBlocked bool
	blockEvent   int64
	stallCtr     *uint64
	doneActivity bool

	// wbMinDone is a lower bound on the earliest doneCyc in waitWB: while it
	// is in the future the writeback scan is skipped entirely. It only
	// decreases outside the scan (insert-time min, 0 on squash/restore), so
	// staleness costs a redundant scan, never a missed one.
	wbMinDone int64

	// minIssueLat is the smallest execution latency any µop can have under
	// cfg, used by readyBound for producers that have not issued yet.
	minIssueLat int64

	warmupUops uint64
	warmed     bool

	stats Stats
}

// New builds a simulator for trace under cfg using pred for value prediction
// (nil disables VP: the baseline machine).
func New(cfg Config, trace []isa.DynInst, pred core.Predictor, hist *ghist.History) *Sim {
	if hist == nil {
		hist = &ghist.History{}
	}
	mm := dram.New(cfg.DRAM)
	l2 := mem.NewCache(cfg.L2, nil, mm)
	pf := mem.NewStridePrefetcher(8, 8, l2)
	l2.AttachPrefetcher(pf)
	s := &Sim{
		cfg:       cfg,
		trace:     trace,
		pred:      pred,
		hist:      hist,
		tage:      bpred.NewTage(bpred.DefaultTageConfig(), hist),
		btb:       bpred.NewBTB(12),
		ras:       &bpred.RAS{},
		l1i:       mem.NewCache(cfg.L1I, l2, nil),
		l1d:       mem.NewCache(cfg.L1D, l2, nil),
		l2:        l2,
		mm:        mm,
		ssets:     memdep.New(cfg.LogSSIT),
		regs:      regfile.NewFiles(cfg.IntRegs, cfg.FPRegs),
		rob:       make([]robEntry, cfg.ROB),
		divFree:   make([]int64, cfg.MulDivs),
		fpDivFree: make([]int64, cfg.FPMulDivs),
	}
	s.waitIssue = newSlotList(cfg.ROB)
	s.waitWB = newSlotList(cfg.ROB)
	s.iqHeld = newSlotList(cfg.ROB)
	s.inFlightLd = newSlotList(cfg.ROB)
	s.inFlightSt = newSlotList(cfg.ROB)
	s.reissueScratch = make([]bool, cfg.ROB)
	// The ring must absorb one full fetch group past the high-water check at
	// the top of fetch (which only gates the start of a group).
	fw := cfg.FetchWidth
	if fw < 1 {
		fw = 1
	}
	s.feq = make([]feEntry, fetchBufCap+fw)
	// Last-fetch-cycle table, indexed by static PC (trace PCs are program
	// indices, so the table is as small as the program).
	maxPC := uint32(0)
	for i := range trace {
		if trace[i].PC > maxPC {
			maxPC = trace[i].PC
		}
	}
	s.lastFetchCyc = make([]int64, maxPC+1)
	for i := range s.lastFetchCyc {
		s.lastFetchCyc[i] = -1
	}
	if pred != nil {
		s.ofeed, _ = pred.(core.OracleFeed)
		s.sfeed, _ = pred.(core.SpecFeeder)
	}
	s.resolvePred(pred)
	s.minIssueLat = cfg.LatALU
	for _, l := range []int64{cfg.LatMul, cfg.LatDiv, cfg.LatFP, cfg.LatFPMul,
		cfg.LatFPDiv, cfg.LatForward, 1 /* store addr-gen */, cfg.L1D.Latency} {
		if l < s.minIssueLat {
			s.minIssueLat = l
		}
	}
	if s.minIssueLat < 0 {
		s.minIssueLat = 0
	}
	for i := range s.lastProd {
		s.lastProd[i] = noSlot
	}
	return s
}

// NewForKernel is a convenience constructor: trace the named kernel for
// nUops and build a simulator over it.
func NewForKernel(cfg Config, kernel string, nUops int, pred core.Predictor, hist *ghist.History) (*Sim, error) {
	k, ok := kernels.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown kernel %q", kernel)
	}
	return New(cfg, emu.Trace(k.Build(), nUops), pred, hist), nil
}

func (s *Sim) di(ti int) *isa.DynInst { return &s.trace[ti] }

func (s *Sim) entry(slot int) *robEntry { return &s.rob[slot] }

func (s *Sim) next(slot int) int {
	if slot++; slot == len(s.rob) {
		return 0
	}
	return slot
}

// slotAge converts a slot to its age order position (0 = oldest).
func (s *Sim) slotAge(slot int) int {
	d := slot - s.head
	if d < 0 {
		d += len(s.rob)
	}
	return d
}

// insertByAge links slot into l keeping l's age order. It walks backwards
// from the tail: insertions overwhelmingly happen at or near the young end
// (fresh issues, replayed µops), so the walk is short.
func (s *Sim) insertByAge(l *slotList, slot int) {
	age := s.slotAge(slot)
	cur := l.tail
	for cur != listEnd && s.slotAge(cur) > age {
		cur = l.prev[cur]
	}
	l.insertAfter(cur, slot)
}

// Run simulates warmup+measure committed µops (capped by the trace length)
// and returns the statistics. It errors on a deadlocked machine — a model
// bug, not a workload property.
func (s *Sim) Run(warmup, measure uint64) (*Stats, error) {
	s.warmupUops = warmup
	if warmup == 0 {
		s.warmed = true
	}
	total := warmup + measure
	if t := uint64(len(s.trace)); total > t {
		total = t
	}
	return s.advanceTo(total)
}

// Advance continues a running simulation until n more µops commit (capped by
// the trace length) and returns the statistics. It is the steady-state
// benchmarking entry point: Run once to warm the machine, then time repeated
// Advance calls to measure the simulate loop free of construction, trace
// generation, and cold-start effects.
func (s *Sim) Advance(n uint64) (*Stats, error) {
	target := s.stats.Committed + n
	if t := uint64(len(s.trace)); target > t {
		target = t
	}
	return s.advanceTo(target)
}

// advanceTo steps the machine until total µops have committed.
func (s *Sim) advanceTo(total uint64) (*Stats, error) {
	lastCommitted := s.stats.Committed
	stuck := int64(0)
	for s.stats.Committed < total {
		s.step()
		s.maybeSkipIdle()
		if s.stats.Committed == lastCommitted {
			stuck++
			if stuck > 1_000_000 {
				return nil, errors.New("pipeline: no commit progress for 1M cycles (model deadlock)")
			}
		} else {
			stuck = 0
			lastCommitted = s.stats.Committed
		}
	}
	s.stats.Cycles = s.cycle
	return &s.stats, nil
}

// step advances the machine one cycle, processing stages in reverse pipeline
// order so same-cycle feed-through cannot happen.
func (s *Sim) step() {
	s.progress = false
	s.issueBlocked = false
	s.blockEvent = noEvent
	s.stallCtr = nil
	s.doneActivity = false
	s.commit()
	s.writeback()
	s.issue()
	s.dispatch()
	s.fetch()
	if s.cfg.Recovery == SelectiveReissue && (s.doneActivity || s.refLoop) {
		// IQ validation can only newly release when a completion threshold
		// crossed this cycle, which always coincides with writeback
		// processing, a commit, or a squash (doneActivity).
		s.releaseValidatedIQ()
	}
	s.cycle++
}

// ---------------------------------------------------------------- commit --

// commitLatency is the writeback+commit stage depth beyond execution: with
// the 2-cycle dispatch-to-issue gap it forms the paper's 4-cycle back-end.
const commitLatency = 2

func (s *Sim) commit() {
	for n := 0; n < s.cfg.RetireWidth && s.count > 0; n++ {
		e := s.entry(s.head)
		if !e.done || e.doneCyc+commitLatency > s.cycle {
			return
		}
		di := s.di(e.ti)

		if e.isStore {
			// Stores write the cache from the post-commit store buffer; the
			// access is charged for bandwidth/MSHR stats but never blocks.
			s.l1d.Access(s.cycle, di.Addr, uint64(di.PC), true, true)
			s.ssets.StoreRetired(uint64(di.PC), e.seq)
		}

		// Train predictors with the architectural outcome, in commit order.
		if e.isCond {
			s.tage.Train(uint64(di.PC), di.Taken, &e.bmeta)
			if s.warmed {
				s.stats.CondBranches++
				if e.brMispred {
					s.stats.CondMispredicts++
				}
			}
		}
		valueSquash := false
		if s.pred != nil && e.vpTried {
			s.train(uint64(di.PC), di.Result, &e.meta)
			if s.warmed {
				s.stats.Eligible++
				if e.conf {
					s.stats.Used++
					if e.predWrong {
						s.stats.UsedWrong++
					} else {
						s.stats.UsedCorrect++
					}
				}
			}
			if e.conf && e.predWrong {
				if e.predUsed && s.cfg.Recovery == SquashAtCommit {
					valueSquash = true
				} else if !e.predUsed && s.warmed {
					s.stats.WrongUnused++
				}
			}
		}

		if e.hasDest {
			s.regs.For(s.di(e.ti).Dst).Release()
		}
		if e.isLoad {
			s.lqUsed--
			s.inFlightLd.remove(s.head)
		}
		if e.isStore {
			s.sqUsed--
			s.inFlightSt.remove(s.head)
		}
		if e.inIQ {
			// Validation precedes commit by construction, but keep the IQ
			// worklist and counter consistent with the slot's reuse if a
			// holder ever reaches retirement.
			e.inIQ = false
			s.iqUsed--
			s.iqHeld.remove(s.head)
		}
		if !e.wbDone {
			// Writeback-side processing can be starved past retirement by
			// consecutive squash early-returns in writeback(). The effects
			// are moot once the µop commits, but the slot must leave the
			// worklist before it is reused for a younger µop.
			e.wbDone = true
			s.waitWB.remove(s.head)
		}
		// The committed entry can no longer forward through the ROB.
		if e.hasDest && s.lastProd[di.Dst] == s.head {
			s.lastProd[di.Dst] = noSlot
		}
		s.head = s.next(s.head)
		s.count--
		s.stats.Committed++
		s.progress = true
		s.doneActivity = true
		if s.OnCommit != nil {
			s.OnCommit(di)
		}

		if !s.warmed && s.stats.Committed >= s.warmupUops {
			s.warmed = true
			s.stats.WarmCycles = s.cycle
			s.stats.WarmCommitted = s.stats.Committed
		}

		if valueSquash {
			// Pipeline squashing at commit: every younger µop is flushed and
			// fetch restarts after the mispredicted µop (Section 3.1.1).
			if s.warmed {
				s.stats.SquashValue++
			}
			s.squashFromAge(0, e.ti+1, s.cycle+1)
			return
		}
	}
}

// ------------------------------------------------------------- writeback --

// writeback processes µops whose execution completed this cycle: branch
// redirects, store-set violation checks, and value-misprediction detection.
// It walks only the issued-but-unprocessed worklist (in age order), not the
// whole ROB.
func (s *Sim) writeback() {
	if !s.refLoop && s.wbMinDone > s.cycle {
		return // nothing in waitWB can have completed yet
	}
	newMin := noEvent
	nxt := listEnd
	for slot := s.waitWB.head; slot != listEnd; slot = nxt {
		nxt = s.waitWB.next[slot]
		e := s.entry(slot)
		if e.doneCyc > s.cycle {
			if e.doneCyc < newMin {
				newMin = e.doneCyc
			}
			continue // still executing
		}
		e.wbDone = true
		s.waitWB.remove(slot)
		s.progress = true
		s.doneActivity = true
		di := s.di(e.ti)

		// Branch resolution: redirect the stalled front-end.
		if e.brMispred {
			if s.warmed {
				s.stats.SquashBranch++
			}
			s.squashFromAge(s.slotAge(slot)+1, e.ti+1, e.doneCyc+1)
			s.fetchBlocked = false
			return // younger state just vanished; rescan next cycle
		}

		// Memory-order violation: a store whose address resolves after a
		// younger overlapping load already executed.
		if e.isStore {
			if v := s.findViolatingLoad(slot, e); v != noSlot {
				ve := s.entry(v)
				if s.warmed {
					s.stats.SquashMemOrder++
				}
				s.ssets.Violation(uint64(s.di(ve.ti).PC), uint64(di.PC))
				s.squashFromAge(s.slotAge(v), ve.ti, e.doneCyc+1)
				s.fetchBlocked = false
				return
			}
		}

		// Value misprediction under selective reissue: replay dependents
		// with the paper's idealistic 0-cycle repair.
		if e.conf && e.predWrong && s.cfg.Recovery == SelectiveReissue && e.predUsed {
			s.reissueDependents(slot)
			// Replayed µops (all younger than slot) left the worklist, which
			// may include the captured successor: restart from the head. The
			// already-processed prefix is gone from the list, so the rescan
			// visits exactly the remaining entries in the same age order.
			nxt = s.waitWB.head
			newMin = noEvent // restart the min over the rescanned list
		}
	}
	s.wbMinDone = newMin
}

// findViolatingLoad returns the oldest load younger than the store at slot
// that already executed with an overlapping address, or noSlot. Only
// in-flight loads are examined (oldest first), not every younger slot.
func (s *Sim) findViolatingLoad(storeSlot int, se *robEntry) int {
	saddr := s.di(se.ti).Addr &^ 7
	storeAge := s.slotAge(storeSlot)
	for slot := s.inFlightLd.head; slot != listEnd; slot = s.inFlightLd.next[slot] {
		if s.slotAge(slot) <= storeAge {
			continue // not younger than the store
		}
		e := s.entry(slot)
		if !e.issued {
			continue
		}
		if e.issueCyc >= se.doneCyc {
			continue // load issued after the store resolved: saw it
		}
		if s.di(e.ti).Addr&^7 == saddr {
			return slot
		}
	}
	return noSlot
}

// reissueDependents invalidates (transitively) every issued µop that
// consumed a value derived from the mispredicted producer at root, making
// them re-execute with correct inputs. The invalid-set scratch is a Sim
// field reused across calls.
func (s *Sim) reissueDependents(root int) {
	invalid := s.reissueScratch
	clear(invalid)
	invalid[root] = true
	rootE := s.entry(root)
	for slot, n := s.next(root), s.slotAge(root)+1; n < s.count; slot, n = s.next(slot), n+1 {
		e := s.entry(slot)
		if !e.issued {
			continue
		}
		bad := false
		if e.dep1 != noSlot && invalid[e.dep1] && s.rob[e.dep1].seq == e.dep1Seq {
			bad = s.consumedStale(e, e.dep1, root, rootE)
		}
		if !bad && e.dep2 != noSlot && invalid[e.dep2] && s.rob[e.dep2].seq == e.dep2Seq {
			bad = s.consumedStale(e, e.dep2, root, rootE)
		}
		if !bad {
			continue
		}
		invalid[slot] = true
		e.issued = false
		e.done = false
		if !e.wbDone {
			s.waitWB.remove(slot) // was awaiting writeback under its stale result
		}
		e.wbDone = false
		e.fwdStore = false
		e.doneCyc = 0
		s.insertByAge(&s.waitIssue, slot) // back on the issue worklist
		if s.warmed {
			s.stats.ReissuedUops++
		}
	}
}

// consumedStale reports whether e's use of producer p was based on a stale
// value: for the root producer, only consumers that issued before its
// correct result existed; for transitively reissued producers, any issue.
func (s *Sim) consumedStale(e *robEntry, p int, root int, rootE *robEntry) bool {
	if p == root {
		return e.issueCyc < rootE.doneCyc
	}
	return true
}

// ---------------------------------------------------------------- issue ---

func (s *Sim) issue() {
	issued := 0
	aluUsed, mulUsed, fpUsed, fpMulUsed, memUsed := 0, 0, 0, 0, 0
	nxt := listEnd
	for slot := s.waitIssue.head; slot != listEnd && issued < s.cfg.IssueWidth; slot = nxt {
		nxt = s.waitIssue.next[slot]
		e := s.entry(slot)
		if !s.refLoop && e.recheckAt > s.cycle {
			continue // sources provably unavailable until then
		}
		ready, spec1, spec2 := s.srcStatus(e)
		if !ready {
			if !s.refLoop {
				e.recheckAt = s.readyBound(e)
			}
			continue
		}
		di := s.di(e.ti)
		var lat int64
		switch isa.ClassOf(di.Op) {
		case isa.ClassNop, isa.ClassHalt:
			lat = s.cfg.LatALU
			if aluUsed >= s.cfg.ALUs {
				s.issueBlocked = true
				continue
			}
			aluUsed++
		case isa.ClassIntAlu, isa.ClassBranch, isa.ClassJump, isa.ClassJumpInd, isa.ClassCall, isa.ClassRet:
			if aluUsed >= s.cfg.ALUs {
				s.issueBlocked = true
				continue
			}
			aluUsed++
			lat = s.cfg.LatALU
		case isa.ClassIntMul:
			if mulUsed >= s.cfg.MulDivs {
				s.issueBlocked = true
				continue
			}
			mulUsed++
			lat = s.cfg.LatMul
		case isa.ClassIntDiv:
			u := freeUnit(s.divFree, s.cycle)
			if u < 0 {
				s.blockUnitEvent(s.divFree)
				continue
			}
			s.divFree[u] = s.cycle + s.cfg.LatDiv
			lat = s.cfg.LatDiv
		case isa.ClassFPAlu:
			if fpUsed >= s.cfg.FPUs {
				s.issueBlocked = true
				continue
			}
			fpUsed++
			lat = s.cfg.LatFP
		case isa.ClassFPMul:
			if fpMulUsed >= s.cfg.FPMulDivs {
				s.issueBlocked = true
				continue
			}
			fpMulUsed++
			lat = s.cfg.LatFPMul
		case isa.ClassFPDiv:
			u := freeUnit(s.fpDivFree, s.cycle)
			if u < 0 {
				s.blockUnitEvent(s.fpDivFree)
				continue
			}
			s.fpDivFree[u] = s.cycle + s.cfg.LatFPDiv
			lat = s.cfg.LatFPDiv
		case isa.ClassLoad:
			if memUsed >= s.cfg.MemPorts {
				s.issueBlocked = true
				continue
			}
			l, ok := s.loadLatency(slot, e)
			if !ok {
				continue // blocked load: loadLatency flags impure retries itself
			}
			memUsed++
			lat = l
		case isa.ClassStore:
			if memUsed >= s.cfg.MemPorts {
				s.issueBlocked = true
				continue
			}
			memUsed++
			lat = 1 // address generation; data written at commit
		}

		e.issued = true
		s.progress = true
		e.issueCyc = s.cycle
		e.doneCyc = s.cycle + lat
		e.done = true // completion is timestamped; effects apply at doneCyc
		s.waitIssue.remove(slot)
		s.insertByAge(&s.waitWB, slot)
		if e.doneCyc < s.wbMinDone {
			s.wbMinDone = e.doneCyc
		}
		// Record prediction consumption for each source satisfied by a
		// not-yet-validated predicted value (folded out of srcStatus).
		if spec1 {
			s.rob[e.dep1].predUsed = true
			e.usedSpecSrc = true
		}
		if spec2 {
			s.rob[e.dep2].predUsed = true
			e.usedSpecSrc = true
		}
		issued++
		// IQ entries release at issue, except that under selective reissue
		// value-speculatively issued µops stay until validated (Section 7.2).
		if e.inIQ && (s.cfg.Recovery == SquashAtCommit || !e.usedSpecSrc) {
			e.inIQ = false
			s.iqUsed--
			s.iqHeld.remove(slot)
		}
	}
}

func freeUnit(units []int64, now int64) int {
	for i, t := range units {
		if t <= now {
			return i
		}
	}
	return -1
}

// blockUnitEvent records the earliest cycle a fully-busy divider pool frees
// as an idle-skip event. The busy check is pure and every free time was
// fixed at issue (all strictly in the future when freeUnit fails), so the
// blocked µop's retries until then are exact no-ops.
func (s *Sim) blockUnitEvent(units []int64) {
	for _, t := range units {
		if t < s.blockEvent {
			s.blockEvent = t
		}
	}
}

// srcStatus reports whether both sources of e are available this cycle —
// from committed state, a completed producer (full bypass), or a confident
// value prediction written to the PRF at the producer's dispatch — and, per
// source, whether availability rests on a not-yet-validated prediction. It
// fuses the former operandReady and markSpecUse passes into one walk of the
// producers; the caller applies the spec flags only if the µop really
// issues.
func (s *Sim) srcStatus(e *robEntry) (ready, spec1, spec2 bool) {
	if e.dep1 != noSlot {
		p := &s.rob[e.dep1]
		// p.seq != seq means the producer committed: value is architectural.
		if p.seq == e.dep1Seq && !(p.done && p.doneCyc <= s.cycle) {
			if !p.conf {
				return false, false, false
			}
			spec1 = true // predicted value available since dispatch
		}
	}
	if e.dep2 != noSlot {
		p := &s.rob[e.dep2]
		if p.seq == e.dep2Seq && !(p.done && p.doneCyc <= s.cycle) {
			if !p.conf {
				return false, false, false
			}
			spec2 = true
		}
	}
	return true, spec1, spec2
}

// readyBound returns a safe lower bound on the cycle e could next become
// issue-eligible, derived from its first unavailable producer: a producer
// with a timestamped completion delivers at doneCyc; one that has not even
// issued cannot deliver before it issues next cycle plus the smallest
// execution latency. Reissue only pushes producer completions later, so a
// bound computed before a replay remains a lower bound.
func (s *Sim) readyBound(e *robEntry) int64 {
	if e.dep1 != noSlot {
		p := &s.rob[e.dep1]
		if p.seq == e.dep1Seq && !p.conf && !(p.done && p.doneCyc <= s.cycle) {
			if p.done {
				return p.doneCyc
			}
			return s.cycle + 1 + s.minIssueLat
		}
	}
	if e.dep2 != noSlot {
		p := &s.rob[e.dep2]
		if p.seq == e.dep2Seq && !p.conf && !(p.done && p.doneCyc <= s.cycle) {
			if p.done {
				return p.doneCyc
			}
			return s.cycle + 1 + s.minIssueLat
		}
	}
	return s.cycle + 1
}

// loadLatency resolves a load at issue time: store-set blocking, LSQ
// forwarding, then the cache hierarchy. ok=false means "cannot issue now".
func (s *Sim) loadLatency(slot int, e *robEntry) (int64, bool) {
	di := s.di(e.ti)

	// Store-set discipline: wait for the predicted-conflicting store. This
	// reject happens before any cache access, so the retry is pure; the
	// unblock (the store's doneCyc crossing) is already an idle-skip event
	// via waitWB, so it need not pin issueBlocked.
	if e.hasDepStore {
		if ps := s.findInFlightStore(e.depStoreSeq); ps != noSlot {
			p := s.entry(ps)
			if !(p.done && p.doneCyc <= s.cycle) {
				return 0, false
			}
		}
	}

	// Search older in-flight stores (youngest first) for a forwarding match.
	addr := di.Addr &^ 7
	age := s.slotAge(slot)
	for slot2 := s.inFlightSt.tail; slot2 != listEnd; slot2 = s.inFlightSt.prev[slot2] {
		if s.slotAge(slot2) >= age {
			continue // not older than the load
		}
		p := s.entry(slot2)
		if !(p.done && p.doneCyc <= s.cycle) {
			continue // unresolved older store: speculate past it (store sets)
		}
		if s.di(p.ti).Addr&^7 == addr {
			e.fwdStore = true
			return s.cfg.LatForward, true
		}
	}

	done, ok := s.l1d.Access(s.cycle, di.Addr, uint64(di.PC), false, true)
	if !ok {
		// The rejected probe counted an MSHR stall and fed the prefetcher:
		// the retry itself has architectural side effects, so idle-skip must
		// keep stepping every cycle while this load is blocked.
		s.issueBlocked = true
		return 0, false
	}
	return done - s.cycle, true
}

func (s *Sim) prevSlot(slot int) int {
	if slot == 0 {
		return len(s.rob) - 1
	}
	return slot - 1
}

// findInFlightStore resolves a store-set token (always a store's sequence
// number) to its ROB slot, or noSlot if that store already committed.
func (s *Sim) findInFlightStore(seq uint64) int {
	for slot := s.inFlightSt.head; slot != listEnd; slot = s.inFlightSt.next[slot] {
		if s.rob[slot].seq == seq {
			return slot
		}
	}
	return noSlot
}

// releaseValidatedIQ frees IQ entries of issued µops whose value-speculative
// sources have all been validated — the extra IQ pressure selective reissue
// costs (Section 7.2.1). Only current IQ holders are visited.
func (s *Sim) releaseValidatedIQ() {
	nxt := listEnd
	for slot := s.iqHeld.head; slot != listEnd; slot = nxt {
		nxt = s.iqHeld.next[slot]
		e := s.entry(slot)
		if !e.issued || !e.done || e.doneCyc > s.cycle {
			continue
		}
		if s.depValidated(e.dep1, e.dep1Seq) && s.depValidated(e.dep2, e.dep2Seq) {
			e.inIQ = false
			s.iqUsed--
			s.iqHeld.remove(slot)
			s.progress = true
		}
	}
}

func (s *Sim) depValidated(dep int, depSeq uint64) bool {
	if dep == noSlot {
		return true
	}
	p := &s.rob[dep]
	if p.seq != depSeq {
		return true
	}
	return p.done && p.doneCyc <= s.cycle
}

// -------------------------------------------------------------- dispatch --

func (s *Sim) dispatch() {
	for n := 0; n < s.cfg.DispatchWidth && s.feqLen > 0; n++ {
		fe := &s.feq[s.feqHead]
		if fe.readyCyc > s.cycle {
			return
		}
		if s.count >= s.cfg.ROB {
			s.stall(&s.stats.StallROB)
			return
		}
		if s.iqUsed >= s.cfg.IQ {
			s.stall(&s.stats.StallIQ)
			return
		}
		di := s.di(fe.ti)
		isLoad, isStore := isa.IsLoad(di.Op), isa.IsStore(di.Op)
		if isLoad && s.lqUsed >= s.cfg.LQ {
			s.stall(&s.stats.StallLQ)
			return
		}
		if isStore && s.sqUsed >= s.cfg.SQ {
			s.stall(&s.stats.StallSQ)
			return
		}
		hasDest := di.Dst != isa.NoReg
		if hasDest && !s.regs.For(di.Dst).TryAlloc() {
			s.stall(&s.stats.StallRegs)
			return
		}

		slot := s.tail
		e := s.entry(slot)
		*e = robEntry{
			ti:         fe.ti,
			seq:        di.Seq,
			fetchCyc:   fe.readyCyc - s.cfg.FrontDepth,
			dispCyc:    s.cycle,
			dispatched: true,
			inIQ:       true,
			vpTried:    fe.vpTried,
			conf:       fe.conf,
			predWrong:  fe.predWrong,
			meta:       fe.meta,
			isCond:     fe.isCond,
			brMispred:  fe.brMispred,
			bmeta:      fe.bmeta,
			histPos:    fe.histPos,
			rasTop:     fe.rasTop,
			hasDest:    hasDest,
			destFP:     hasDest && di.Dst.IsFP(),
			isLoad:     isLoad,
			isStore:    isStore,
			dep1:       noSlot,
			dep2:       noSlot,
		}
		s.iqUsed++
		s.waitIssue.pushBack(slot)
		s.iqHeld.pushBack(slot)
		if isLoad {
			s.lqUsed++
			s.inFlightLd.pushBack(slot)
		}
		if isStore {
			s.sqUsed++
			s.inFlightSt.pushBack(slot)
		}

		// Rename: resolve sources to in-flight producers.
		if di.Src1 != isa.NoReg {
			if p := s.lastProd[di.Src1]; p != noSlot {
				e.dep1, e.dep1Seq = p, s.rob[p].seq
			}
		}
		if di.Src2 != isa.NoReg {
			if p := s.lastProd[di.Src2]; p != noSlot {
				e.dep2, e.dep2Seq = p, s.rob[p].seq
			}
		}
		if hasDest {
			s.lastProd[di.Dst] = slot
		}

		// Memory dependence prediction (store sets).
		if isStore {
			s.ssets.StoreFetched(uint64(di.PC), di.Seq)
		}
		if isLoad {
			if tok, wait := s.ssets.LoadFetched(uint64(di.PC)); wait {
				e.depStoreSeq, e.hasDepStore = tok, true
			}
		}

		s.tail = s.next(s.tail)
		s.count++
		s.progress = true
		if s.feqHead++; s.feqHead == len(s.feq) {
			s.feqHead = 0
		}
		s.feqLen--
	}
}

func (s *Sim) stall(counter *uint64) {
	s.stallCtr = counter
	if s.warmed {
		*counter++
	}
}

// ---------------------------------------------------------------- fetch ---

// fetchBufCap bounds the decoupling queue between fetch and dispatch.
const fetchBufCap = 64

func (s *Sim) fetch() {
	if s.fetchBlocked || s.cycle < s.nextFetchCyc || s.fetchIdx >= len(s.trace) {
		return
	}
	// The high-water check gates the start of a group only; the ring is sized
	// fetchBufCap+FetchWidth so a full group always fits past it.
	if s.feqLen >= fetchBufCap {
		return
	}
	taken := 0
	linesTouched := 0
	var lastLine uint64 = ^uint64(0)

	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.fetchIdx >= len(s.trace) {
			return
		}
		di := s.di(s.fetchIdx)

		// Instruction cache: µops are 8 bytes, 8 per 64B line; a fetch group
		// may span two lines.
		lineAddr := uint64(di.PC) * 8 / mem.LineBytes
		if lineAddr != lastLine {
			if linesTouched == 2 {
				return // line bandwidth exhausted this cycle
			}
			if !s.l1i.Contains(uint64(di.PC) * 8) {
				done, ok := s.l1i.Access(s.cycle, uint64(di.PC)*8, uint64(di.PC), false, true)
				if s.warmed {
					s.stats.FetchIMissStalls++
				}
				if ok {
					s.nextFetchCyc = done
				} else {
					s.nextFetchCyc = s.cycle + 1
				}
				return
			}
			linesTouched++
			lastLine = lineAddr
		}

		// Build the entry directly in its ring slot: the predictor writes its
		// Meta payload in place, so the per-µop hot path copies it exactly
		// once (ring slot -> ROB entry at dispatch).
		fi := s.feqHead + s.feqLen
		if fi >= len(s.feq) {
			fi -= len(s.feq)
		}
		fe := &s.feq[fi]
		*fe = feEntry{
			ti:       s.fetchIdx,
			readyCyc: s.cycle + s.cfg.FrontDepth,
			histPos:  s.hist.Pos(),
			rasTop:   s.ras.Top(),
		}

		// Value prediction happens in the front-end for every µop producing
		// a register (Section 7.2).
		if s.pred != nil && di.HasDest() && (!s.cfg.PredictLoadsOnly || isa.IsLoad(di.Op)) {
			fe.vpTried = true
			s.feedActual(di.Result)
			s.predict(uint64(di.PC), &fe.meta)
			fe.meta.Seq = di.Seq
			fe.conf = fe.meta.Conf
			fe.predWrong = fe.conf && fe.meta.Pred != di.Result
			// Speculative occurrence tracking, following Section 7.1's
			// idealization: the paper assumes predictors deliver predictions
			// instantaneously with the correct last speculative occurrences
			// available ("o4-FCM is — unrealistically — able to deliver
			// predictions for two occurrences fetched in two consecutive
			// cycles"). The trace-driven equivalent feeds the occurrence's
			// actual outcome, which a real machine approximates through
			// execution-time repair of the speculative window.
			s.feedSpec(uint64(di.PC), di.Result, di.Seq)
		}

		// Back-to-back statistic (Section 3.2).
		if s.warmed {
			s.stats.FetchedUops++
			if di.HasDest() {
				if last := s.lastFetchCyc[di.PC]; last >= 0 && last == s.cycle-1 {
					s.stats.B2BEligible++
				}
			}
		}
		s.lastFetchCyc[di.PC] = s.cycle

		stop := false
		if isa.IsControl(di.Op) {
			stop = s.fetchControl(di, fe, &taken)
		}

		s.feqLen++
		s.fetchIdx++
		s.progress = true
		if stop {
			return
		}
	}
}

// fetchControl models branch prediction at fetch for one control µop. It
// returns true if fetch must stop after this µop (taken-branch budget,
// misprediction stall, or BTB redirect bubble).
func (s *Sim) fetchControl(di *isa.DynInst, fe *feEntry, taken *int) bool {
	pc := uint64(di.PC)
	stop := false
	mispred := false
	btbBubble := false

	switch isa.ClassOf(di.Op) {
	case isa.ClassBranch:
		fe.isCond = true
		predTaken, m := s.tage.Predict(pc)
		fe.bmeta = m
		mispred = predTaken != di.Taken
		if predTaken && di.Taken {
			if _, hit := s.btb.Lookup(pc); !hit {
				btbBubble = true
			}
		}
		s.hist.Push(di.Taken, pc)
	case isa.ClassJump, isa.ClassCall:
		if _, hit := s.btb.Lookup(pc); !hit {
			btbBubble = true
		}
		if isa.ClassOf(di.Op) == isa.ClassCall {
			s.ras.Push(di.PC + 1)
		}
	case isa.ClassJumpInd:
		tgt, hit := s.btb.Lookup(pc)
		mispred = !hit || tgt != di.NextPC
	case isa.ClassRet:
		mispred = s.ras.Pop() != di.NextPC
	}

	if di.Taken {
		s.btb.Insert(pc, di.NextPC)
		*taken++
		if *taken >= s.cfg.TakenPerCyc {
			stop = true
		}
	}
	if mispred {
		fe.brMispred = true
		s.fetchBlocked = true
		return true
	}
	if btbBubble {
		// Direct branch with an unknown target: the decoder redirects a few
		// cycles later rather than waiting for execution.
		if s.warmed {
			s.stats.BTBBubbles++
		}
		s.nextFetchCyc = s.cycle + s.cfg.BTBMissBubble
		return true
	}
	return stop
}

// ---------------------------------------------------------------- squash --

// squashFromAge flushes the ROB from age position fromAge (0 = head,
// inclusive) to the tail, clears the front-end, and restarts fetch at trace
// index resumeTI at cycle resumeCyc. It repairs the global history, the RAS,
// the rename producer table, the store-set LFST, and the value predictor's
// speculative state. Ages (not slots) disambiguate the full-ROB wrap case.
func (s *Sim) squashFromAge(fromAge int, resumeTI int, resumeCyc int64) {
	// Determine the checkpoint: the first squashed µop's fetch-time state,
	// or (if the ROB part is empty) the oldest front-end entry's.
	var histPos uint64
	var rasTop int
	restored := false

	if fromAge < s.count {
		slot := (s.head + fromAge) % len(s.rob)
		e := s.entry(slot)
		histPos, rasTop, restored = e.histPos, e.rasTop, true
		// Free resources of every squashed entry.
		for cur, n := slot, fromAge; n < s.count; cur, n = s.next(cur), n+1 {
			se := s.entry(cur)
			if se.hasDest {
				s.regs.For(s.di(se.ti).Dst).Release()
			}
			if se.isLoad {
				s.lqUsed--
			}
			if se.isStore {
				s.sqUsed--
			}
			if se.inIQ {
				s.iqUsed--
			}
		}
		s.count = fromAge
		s.tail = slot
	}
	if !restored && s.feqLen > 0 {
		fe := &s.feq[s.feqHead]
		histPos, rasTop, restored = fe.histPos, fe.rasTop, true
	}
	if restored {
		s.hist.RollTo(histPos)
		s.ras.Restore(rasTop)
	}
	s.feqHead, s.feqLen = 0, 0

	// Rebuild the rename table and the stage worklists from the surviving
	// ROB prefix.
	for i := range s.lastProd {
		s.lastProd[i] = noSlot
	}
	s.waitIssue.clear()
	s.waitWB.clear()
	s.iqHeld.clear()
	s.inFlightLd.clear()
	s.inFlightSt.clear()
	for cur, n := s.head, 0; n < s.count; cur, n = s.next(cur), n+1 {
		e := s.entry(cur)
		if e.hasDest {
			s.lastProd[s.di(e.ti).Dst] = cur
		}
		if e.dispatched && !e.issued {
			s.waitIssue.pushBack(cur)
		}
		if e.issued && !e.wbDone {
			s.waitWB.pushBack(cur)
		}
		if e.inIQ {
			s.iqHeld.pushBack(cur)
		}
		if e.isLoad {
			s.inFlightLd.pushBack(cur)
		}
		if e.isStore {
			s.inFlightSt.pushBack(cur)
		}
	}

	// Rebuild the LFST from surviving stores; speculative value-predictor
	// state dies with the in-flight µops.
	s.ssets.Clear()
	for cur, n := s.head, 0; n < s.count; cur, n = s.next(cur), n+1 {
		e := s.entry(cur)
		if e.isStore {
			s.ssets.StoreFetched(uint64(s.di(e.ti).PC), e.seq)
		}
	}
	if s.pred != nil {
		s.squashPred(s.seqAt(resumeTI))
	}

	s.fetchIdx = resumeTI
	s.nextFetchCyc = resumeCyc
	s.fetchBlocked = false
	s.wbMinDone = 0 // worklists changed mid-scan: force a fresh walk
	s.doneActivity = true
}

// seqAt returns the sequence number of the µop at trace index ti, or one
// past the last sequence when ti is at the end of the trace.
func (s *Sim) seqAt(ti int) uint64 {
	if ti >= len(s.trace) {
		if len(s.trace) == 0 {
			return 0
		}
		return s.trace[len(s.trace)-1].Seq + 1
	}
	return s.trace[ti].Seq
}

// Stats exposes the accumulated statistics (valid after Run).
func (s *Sim) Stats() *Stats { return &s.stats }
