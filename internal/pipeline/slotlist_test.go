package pipeline

import (
	"math/rand"
	"testing"
)

// collect returns the list's members in order.
func collect(l *slotList) []int {
	var out []int
	for s := l.head; s != listEnd; s = l.next[s] {
		out = append(out, s)
	}
	return out
}

func TestSlotListBasicOps(t *testing.T) {
	l := newSlotList(8)
	for _, s := range []int{2, 5, 7} {
		l.pushBack(s)
	}
	if got := collect(&l); len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 7 {
		t.Fatalf("after pushBack: %v", got)
	}
	if !l.has(5) || l.has(3) {
		t.Fatal("membership wrong")
	}
	l.remove(5)
	if got := collect(&l); len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("after remove(5): %v", got)
	}
	l.insertAfter(2, 3)       // middle
	l.insertAfter(listEnd, 1) // front
	l.insertAfter(l.tail, 6)  // back
	if got := collect(&l); len(got) != 5 ||
		got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 7 || got[4] != 6 {
		t.Fatalf("after inserts: %v", got)
	}
	l.clear()
	if got := collect(&l); len(got) != 0 {
		t.Fatalf("after clear: %v", got)
	}
	for s := 0; s < 8; s++ {
		if l.has(s) {
			t.Fatalf("slot %d still a member after clear", s)
		}
	}
}

// TestSlotListRandomizedAgainstModel drives the list with random operations
// and checks it against a plain-slice reference model.
func TestSlotListRandomizedAgainstModel(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	l := newSlotList(n)
	var model []int

	idxOf := func(s int) int {
		for i, v := range model {
			if v == s {
				return i
			}
		}
		return -1
	}

	for op := 0; op < 20_000; op++ {
		s := rng.Intn(n)
		switch rng.Intn(4) {
		case 0: // pushBack if absent
			if !l.has(s) {
				l.pushBack(s)
				model = append(model, s)
			}
		case 1: // remove if present
			if l.has(s) {
				l.remove(s)
				i := idxOf(s)
				model = append(model[:i], model[i+1:]...)
			}
		case 2: // insertAfter a random present anchor (or front)
			if l.has(s) {
				continue
			}
			if len(model) == 0 || rng.Intn(4) == 0 {
				l.insertAfter(listEnd, s)
				model = append([]int{s}, model...)
			} else {
				anchor := model[rng.Intn(len(model))]
				l.insertAfter(anchor, s)
				i := idxOf(anchor)
				model = append(model[:i+1], append([]int{s}, model[i+1:]...)...)
			}
		case 3: // occasional clear
			if rng.Intn(50) == 0 {
				l.clear()
				model = model[:0]
			}
		}
		if got := collect(&l); len(got) != len(model) {
			t.Fatalf("op %d: list %v vs model %v", op, got, model)
		} else {
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("op %d: list %v vs model %v", op, got, model)
				}
			}
		}
	}
}
