package pipeline

// Stats accumulates simulation measurements. Counters marked "(measured)"
// are collected only after the warmup window, mirroring the paper's 50M
// warmup / 50M measurement methodology.
type Stats struct {
	Cycles    int64
	Committed uint64

	// Measurement window boundaries.
	WarmCycles    int64
	WarmCommitted uint64

	// Value prediction (measured, counted at commit).
	Eligible    uint64 // committed µops producing a register
	Used        uint64 // confident predictions the pipeline consumed
	UsedCorrect uint64
	UsedWrong   uint64
	WrongUnused uint64 // wrong predictions silently replaced (no dependent issued)

	// Recovery events (measured).
	SquashBranch   uint64
	SquashValue    uint64
	SquashMemOrder uint64
	ReissuedUops   uint64

	// Branch prediction (measured, counted at commit).
	CondBranches    uint64
	CondMispredicts uint64

	// Fetch statistics (measured; Fig. 1 motivation).
	FetchedUops      uint64
	B2BEligible      uint64 // VP-eligible µops whose previous occurrence was fetched the cycle before
	FetchIMissStalls uint64
	BTBBubbles       uint64

	// Structural stalls at dispatch (measured).
	StallROB, StallIQ, StallLQ, StallSQ, StallRegs uint64
}

// MeasuredCycles returns the cycle count of the measurement window.
func (s *Stats) MeasuredCycles() int64 { return s.Cycles - s.WarmCycles }

// MeasuredCommitted returns the µops committed inside the window.
func (s *Stats) MeasuredCommitted() uint64 { return s.Committed - s.WarmCommitted }

// IPC returns committed µops per cycle over the measurement window.
func (s *Stats) IPC() float64 {
	c := s.MeasuredCycles()
	if c <= 0 {
		return 0
	}
	return float64(s.MeasuredCommitted()) / float64(c)
}

// Coverage is the fraction of eligible µops whose prediction was used
// (the paper's coverage definition).
func (s *Stats) Coverage() float64 {
	if s.Eligible == 0 {
		return 0
	}
	return float64(s.Used) / float64(s.Eligible)
}

// Accuracy is the fraction of used predictions that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Used == 0 {
		return 1
	}
	return float64(s.UsedCorrect) / float64(s.Used)
}

// B2BFraction is the fraction of fetched VP-eligible µops whose previous
// dynamic occurrence was fetched in the previous cycle (Section 3.2: up to
// 15.3%, 3.4% amean on the paper's machine).
func (s *Stats) B2BFraction() float64 {
	if s.FetchedUops == 0 {
		return 0
	}
	return float64(s.B2BEligible) / float64(s.FetchedUops)
}

// BranchMPKI returns conditional branch mispredictions per kilo-µop.
func (s *Stats) BranchMPKI() float64 {
	c := s.MeasuredCommitted()
	if c == 0 {
		return 0
	}
	return 1000 * float64(s.CondMispredicts) / float64(c)
}
