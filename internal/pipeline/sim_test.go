package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
)

// simpleLoop builds an independent-add loop with plenty of ILP.
func simpleLoop() []isa.DynInst {
	b := isa.NewBuilder("ilp")
	b.Li(isa.R1, 0)
	loop := b.Here()
	b.Addi(isa.R2, isa.R1, 1)
	b.Addi(isa.R3, isa.R1, 2)
	b.Addi(isa.R4, isa.R1, 3)
	b.Addi(isa.R5, isa.R1, 4)
	b.Addi(isa.R1, isa.R1, 1)
	b.Jmp(loop)
	b.Halt()
	return emu.Trace(b.Program(), 60_000)
}

// serialChain builds a serial dependence chain through a constant-value
// load: without VP the loop is latency-bound; with a last-value predictor it
// is not.
func serialChain() []isa.DynInst {
	b := isa.NewBuilder("chain")
	b.Data(0x1000, 0) // chase slot holding index 0 (self-loop)
	b.Li(isa.R1, 0x1000)
	b.Li(isa.R2, 0)
	b.Li(isa.R4, 0)
	loop := b.Here()
	b.Shli(isa.R3, isa.R2, 3)
	b.Ldx(isa.R2, isa.R1, isa.R3) // serial: load feeds next address (always 0)
	b.Add(isa.R4, isa.R4, isa.R2)
	b.Jmp(loop)
	b.Halt()
	return emu.Trace(b.Program(), 60_000)
}

// testWin sizes simulation windows for the test mode: full in long mode,
// a fifth in -short mode, keeping every path exercised while the suite
// stays fast.
func testWin(warmup, measure uint64) (uint64, uint64) {
	if testing.Short() {
		return warmup / 5, measure / 5
	}
	return warmup, measure
}

func runTrace(t *testing.T, tr []isa.DynInst, mk func(h *ghist.History) core.Predictor, rec RecoveryMode) *Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Recovery = rec
	h := &ghist.History{}
	var p core.Predictor
	if mk != nil {
		p = mk(h)
	}
	s := New(cfg, tr, p, h)
	w, m := testWin(10_000, 40_000)
	st, err := s.Run(w, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestBaselineIPCSane(t *testing.T) {
	st := runTrace(t, simpleLoop(), nil, SquashAtCommit)
	ipc := st.IPC()
	if ipc <= 0.5 || ipc > 8 {
		t.Errorf("baseline IPC = %.2f, want in (0.5, 8]", ipc)
	}
	if st.MeasuredCommitted() == 0 {
		t.Error("nothing committed in measurement window")
	}
}

func TestCommittedMatchesRequest(t *testing.T) {
	st := runTrace(t, simpleLoop(), nil, SquashAtCommit)
	// Commit is up to RetireWidth per cycle, so the final cycle may overshoot
	// the requested total by at most RetireWidth-1.
	w, m := testWin(10_000, 40_000)
	want := w + m
	if st.Committed < want || st.Committed >= want+8 {
		t.Errorf("Committed = %d, want %d..%d", st.Committed, want, want+7)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func(h *ghist.History) core.Predictor {
		return core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCCommit), h)
	}
	a := runTrace(t, serialChain(), mk, SquashAtCommit)
	b := runTrace(t, serialChain(), mk, SquashAtCommit)
	if *a != *b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestOracleBreaksSerialChain(t *testing.T) {
	base := runTrace(t, serialChain(), nil, SquashAtCommit)
	oracle := runTrace(t, serialChain(), func(*ghist.History) core.Predictor { return &core.Oracle{} }, SquashAtCommit)
	if oracle.IPC() <= base.IPC()*1.2 {
		t.Errorf("oracle IPC %.2f not well above baseline %.2f on a serial chain",
			oracle.IPC(), base.IPC())
	}
	if oracle.Accuracy() != 1 {
		t.Errorf("oracle accuracy = %.4f, want 1", oracle.Accuracy())
	}
}

func TestLVPBreaksConstantLoadChain(t *testing.T) {
	base := runTrace(t, serialChain(), nil, SquashAtCommit)
	lvp := runTrace(t, serialChain(), func(*ghist.History) core.Predictor {
		return core.NewLVP(13, core.FPCCommit, 7)
	}, SquashAtCommit)
	if lvp.IPC() <= base.IPC()*1.1 {
		t.Errorf("LVP IPC %.2f vs baseline %.2f: constant-load chain not broken",
			lvp.IPC(), base.IPC())
	}
	if lvp.Used == 0 {
		t.Error("LVP made no used predictions")
	}
	if acc := lvp.Accuracy(); acc < 0.99 {
		t.Errorf("LVP accuracy on constant loads = %.4f, want ≈ 1", acc)
	}
}

// changingValues builds a loop whose load value changes every k iterations:
// a predictor that becomes confident will periodically be wrong, exercising
// the recovery paths.
func changingValues() []isa.DynInst {
	b := isa.NewBuilder("change")
	b.Li(isa.R1, 0x1000)
	b.Li(isa.R2, 0) // iteration counter
	b.Li(isa.R5, 0) // stored value
	loop := b.Here()
	b.Ld(isa.R3, isa.R1, 0)
	b.Add(isa.R4, isa.R3, isa.R3) // dependent use: makes the prediction "used"
	b.Addi(isa.R2, isa.R2, 1)
	b.Andi(isa.R6, isa.R2, 63)
	skip := b.NewLabel()
	b.Bnez(isa.R6, skip)
	b.Addi(isa.R5, isa.R5, 1) // every 64 iterations the value changes
	b.St(isa.R1, 0, isa.R5)
	b.Bind(skip)
	b.Jmp(loop)
	b.Halt()
	return emu.Trace(b.Program(), 80_000)
}

func TestValueSquashPathExercised(t *testing.T) {
	// With deterministic 3-bit counters LVP becomes confident quickly and is
	// then wrong at every value change: squashes must occur and be survived.
	st := runTrace(t, changingValues(), func(*ghist.History) core.Predictor {
		return core.NewLVP(13, core.FPCBaseline, 7)
	}, SquashAtCommit)
	if st.SquashValue == 0 {
		t.Error("no value squashes despite periodic mispredictions")
	}
	if st.UsedWrong == 0 {
		t.Error("no wrong used predictions recorded")
	}
}

func TestSelectiveReissuePathExercised(t *testing.T) {
	st := runTrace(t, changingValues(), func(*ghist.History) core.Predictor {
		return core.NewLVP(13, core.FPCBaseline, 7)
	}, SelectiveReissue)
	if st.ReissuedUops == 0 {
		t.Error("no µops reissued despite mispredictions with dependents")
	}
	if st.SquashValue != 0 {
		t.Error("commit-time value squashes under selective reissue")
	}
}

func TestReissueCheaperThanSquashAtLowAccuracy(t *testing.T) {
	// The Section 3.1.1 argument: with a mediocre confidence scheme,
	// selective reissue beats squashing at commit.
	mk := func(*ghist.History) core.Predictor { return core.NewLVP(13, core.FPCBaseline, 7) }
	squash := runTrace(t, changingValues(), mk, SquashAtCommit)
	reissue := runTrace(t, changingValues(), mk, SelectiveReissue)
	if reissue.IPC() < squash.IPC()*0.98 {
		t.Errorf("reissue IPC %.3f below squash IPC %.3f", reissue.IPC(), squash.IPC())
	}
}

// storeLoadConflict builds a late-resolving store followed by an early load
// to the same address: classic memory-order violation until store sets learn.
func storeLoadConflict() []isa.DynInst {
	b := isa.NewBuilder("conflict")
	b.Li(isa.R1, 0x1000)
	b.Li(isa.R2, 100)
	b.Li(isa.R7, 3)
	loop := b.Here()
	// Store address depends on a long-latency divide.
	b.Div(isa.R3, isa.R2, isa.R7) // slow
	b.Andi(isa.R3, isa.R3, 0)     // always 0 -> same word
	b.Add(isa.R4, isa.R1, isa.R3)
	b.St(isa.R4, 0, isa.R2)
	// The load is ready immediately and overlaps the store.
	b.Ld(isa.R5, isa.R1, 0)
	b.Add(isa.R6, isa.R5, isa.R5)
	b.Addi(isa.R2, isa.R2, 1)
	b.Jmp(loop)
	b.Halt()
	return emu.Trace(b.Program(), 60_000)
}

func TestMemoryOrderViolationAndLearning(t *testing.T) {
	// No warmup: the first violation must be visible in the stats.
	cfg := DefaultConfig()
	s := New(cfg, storeLoadConflict(), nil, nil)
	_, m := testWin(0, 50_000)
	st, err := s.Run(0, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.SquashMemOrder == 0 {
		t.Error("no memory-order violations on a store-load conflict loop")
	}
	// Store sets must learn: violations should be far rarer than iterations.
	iters := st.MeasuredCommitted() / 9
	if st.SquashMemOrder > iters/4 {
		t.Errorf("store sets never learned: %d violations in %d iterations",
			st.SquashMemOrder, iters)
	}
}

func TestBranchMispredictsRecover(t *testing.T) {
	// Data-dependent branches on pseudo-random values: TAGE cannot predict
	// them all; squashes must be counted and survived.
	b := isa.NewBuilder("rand-branch")
	b.Li(isa.R1, 88172645463325252)
	b.Li(isa.R2, 0)
	loop := b.Here()
	b.Muli(isa.R1, isa.R1, 6364136223846793005)
	b.Addi(isa.R1, isa.R1, 1442695040888963407)
	b.Shri(isa.R3, isa.R1, 60)
	skip := b.NewLabel()
	b.Beqz(isa.R3, skip)
	b.Addi(isa.R2, isa.R2, 1)
	b.Bind(skip)
	b.Jmp(loop)
	b.Halt()
	tr := emu.Trace(b.Program(), 60_000)
	st := runTrace(t, tr, nil, SquashAtCommit)
	if st.SquashBranch == 0 {
		t.Error("no branch mispredictions on random branches")
	}
	if st.CondMispredicts == 0 || st.CondBranches == 0 {
		t.Error("branch statistics not collected")
	}
}

func TestB2BStatisticCollected(t *testing.T) {
	// The tight ILP loop refetches the same PCs every cycle or two: the
	// back-to-back statistic must be non-zero there.
	st := runTrace(t, simpleLoop(), nil, SquashAtCommit)
	if st.B2BEligible == 0 {
		t.Error("no back-to-back-eligible µops in a tight loop")
	}
	if st.B2BFraction() <= 0 || st.B2BFraction() > 1 {
		t.Errorf("B2BFraction = %f out of range", st.B2BFraction())
	}
}

func TestIPCNeverExceedsWidth(t *testing.T) {
	for _, tr := range [][]isa.DynInst{simpleLoop(), serialChain(), changingValues()} {
		st := runTrace(t, tr, nil, SquashAtCommit)
		if st.IPC() > float64(DefaultConfig().RetireWidth) {
			t.Errorf("IPC %.2f exceeds retire width", st.IPC())
		}
	}
}

func TestTable2Renders(t *testing.T) {
	s := DefaultConfig().FormatTable2()
	if len(s) < 100 {
		t.Errorf("Table 2 rendering too short:\n%s", s)
	}
}

func TestNewForKernelUnknown(t *testing.T) {
	if _, err := NewForKernel(DefaultConfig(), "no-such-kernel", 1000, nil, nil); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestAllKernelsSimulate(t *testing.T) {
	// Integration smoke test: every kernel runs under the baseline machine.
	for _, name := range kernelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, m := testWin(5_000, 25_000)
			s, err := NewForKernel(DefaultConfig(), name, int(w+m), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			st, err := s.Run(w, m)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st.IPC() <= 0 {
				t.Errorf("IPC = %f", st.IPC())
			}
		})
	}
}

// kernelNames avoids importing kernels into every test function signature.
func kernelNames() []string {
	return []string{"gzip", "wupwise", "applu", "vpr", "art", "crafty",
		"parser", "vortex", "bzip2", "gcc", "gamess", "mcf", "milc", "namd",
		"gobmk", "hmmer", "sjeng", "h264ref", "lbm"}
}
