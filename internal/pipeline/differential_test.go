package pipeline

// Differential testing of the timing model against the functional emulator:
// random seeded programs run through internal/emu directly and through the
// pipeline's commit stream, and the architectural outcomes must be
// identical. The pipeline is trace-driven, so what this locks down is the
// commit discipline itself — that every traced µop commits exactly once, in
// program order, through every squash, replay and refetch the machine
// performs. A hot-path refactor that drops, duplicates or reorders commits
// cannot pass.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ghist"
	"repro/internal/isa"
)

// archShadow reconstructs architectural state from the committed µop stream.
type archShadow struct {
	regs [isa.NumRegs]uint64
	mem  map[uint64]uint64 // 8-byte-aligned address -> word
}

func newArchShadow(p *isa.Program) *archShadow {
	s := &archShadow{mem: make(map[uint64]uint64)}
	for _, seg := range p.Data {
		for i, w := range seg.Words {
			s.mem[(seg.Addr+uint64(i)*8)&^7] = w
		}
	}
	for r, v := range p.InitRegs {
		s.regs[r] = v
	}
	return s
}

// apply replays one committed µop's architectural effects.
func (s *archShadow) apply(di *isa.DynInst) {
	if isa.IsStore(di.Op) {
		s.mem[di.Addr&^7] = s.regs[di.Src2]
	}
	if di.Dst != isa.NoReg {
		s.regs[di.Dst] = di.Result
	}
}

// diffPredictors are the predictor configurations the differential test
// crosses with both recovery modes; LVP with deterministic counters is the
// most squash-happy configuration the suite has.
func diffPredictors() []func(h *ghist.History) core.Predictor {
	return []func(h *ghist.History) core.Predictor{
		nil,
		func(h *ghist.History) core.Predictor { return core.NewLVP(10, core.FPCBaseline, 3) },
		func(h *ghist.History) core.Predictor { return core.NewStride2D(10, core.FPCBaseline, 3) },
		func(h *ghist.History) core.Predictor {
			return core.NewHybrid(core.NewVTAGE(core.DefaultVTAGEConfig(core.FPCBaseline), h),
				core.NewStride2D(10, core.FPCBaseline, 4))
		},
	}
}

// TestDifferentialEmuVsPipeline runs random seeded programs through the
// emulator and through the pipeline's commit stream and asserts identical
// committed register and memory state, plus exact commit-order discipline.
func TestDifferentialEmuVsPipeline(t *testing.T) {
	seeds := int64(8)
	traceUops := 25_000
	if testing.Short() {
		seeds, traceUops = 3, 8_000
	}
	for seed := int64(1); seed <= seeds; seed++ {
		prog := randomProgram(seed)
		tr := emu.Trace(prog, traceUops)

		// Reference: the emulator's own architectural state after exactly
		// len(tr) steps.
		ref := emu.New(prog)
		for i := 0; i < len(tr); i++ {
			if _, ok := ref.Step(); !ok {
				t.Fatalf("seed %d: emulator halted before the trace ended", seed)
			}
		}

		for pi, mk := range diffPredictors() {
			for _, rec := range []RecoveryMode{SquashAtCommit, SelectiveReissue} {
				h := &ghist.History{}
				var p core.Predictor
				if mk != nil {
					p = mk(h)
				}
				cfg := DefaultConfig()
				cfg.Recovery = rec

				shadow := newArchShadow(prog)
				var commits uint64
				var orderErr bool
				sim := New(cfg, tr, p, h)
				sim.OnCommit = func(di *isa.DynInst) {
					if di.Seq != commits {
						orderErr = true
					}
					commits++
					shadow.apply(di)
				}
				st, err := sim.Run(0, uint64(len(tr)))
				if err != nil {
					t.Fatalf("seed %d pred %d %v: %v", seed, pi, rec, err)
				}
				if orderErr {
					t.Fatalf("seed %d pred %d %v: commits out of order or duplicated", seed, pi, rec)
				}
				if commits != uint64(len(tr)) || st.Committed != commits {
					t.Fatalf("seed %d pred %d %v: %d commits for a %d-uop trace (stats say %d)",
						seed, pi, rec, commits, len(tr), st.Committed)
				}

				for r := isa.Reg(0); r < isa.NumRegs; r++ {
					if shadow.regs[r] != ref.Reg(r) {
						t.Errorf("seed %d pred %d %v: reg %v = %#x from commit stream, %#x from emulator",
							seed, pi, rec, r, shadow.regs[r], ref.Reg(r))
					}
				}
				for addr, v := range shadow.mem {
					if got := ref.ReadMem(addr); got != v {
						t.Errorf("seed %d pred %d %v: mem[%#x] = %#x from commit stream, %#x from emulator",
							seed, pi, rec, addr, v, got)
					}
				}
				if t.Failed() {
					return // one full dump is enough
				}
			}
		}
	}
}

// TestDifferentialKernels runs the same commit-stream check over real
// kernels, which exercise far deeper loops, FP code and the full memory
// hierarchy timing (the values themselves still come from the trace).
func TestDifferentialKernels(t *testing.T) {
	names := []string{"gzip", "mcf", "wupwise", "crafty"}
	traceUops := 30_000
	if testing.Short() {
		names, traceUops = names[:2], 10_000
	}
	for _, name := range names {
		h := &ghist.History{}
		pred := core.NewLVP(10, core.FPCBaseline, 3)
		sim, err := NewForKernel(DefaultConfig(), name, traceUops, pred, h)
		if err != nil {
			t.Fatal(err)
		}
		var commits uint64
		ok := true
		sim.OnCommit = func(di *isa.DynInst) {
			if di.Seq != commits {
				ok = false
			}
			commits++
		}
		st, err := sim.Run(0, uint64(traceUops))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s: commit stream out of order", name)
		}
		if commits != st.Committed {
			t.Errorf("%s: hook saw %d commits, stats %d", name, commits, st.Committed)
		}
	}
}
