package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ghist"
	"repro/internal/isa"
)

// TestFastLoopMatchesReference pins the specialized simulate loop
// (devirtualized predictor dispatch + idle-cycle skipping) byte-identical
// to the reference loop (interface dispatch, a step every cycle) for every
// predictor family × both recovery modes × two kernels with different
// idle profiles: mcf is memory-bound (long idle windows the fast loop
// skips), gzip is branchy (frequent squashes and short windows).
func TestFastLoopMatchesReference(t *testing.T) {
	w, m := testWin(8_000, 20_000)
	total := w + m

	for _, kernel := range []string{"mcf", "gzip"} {
		for name, mk := range snapPredictors() {
			for _, rec := range []RecoveryMode{SquashAtCommit, SelectiveReissue} {
				cfg := DefaultConfig()
				cfg.Recovery = rec

				run := func(ref bool) (*Stats, []uint64) {
					h := &ghist.History{}
					var p core.Predictor
					if mk != nil {
						p = mk(h)
					}
					s, err := NewForKernel(cfg, kernel, int(total), p, h)
					if err != nil {
						t.Fatalf("%s/%s/%v: %v", kernel, name, rec, err)
					}
					s.SetReferenceLoop(ref)
					var seqs []uint64
					s.OnCommit = func(di *isa.DynInst) { seqs = append(seqs, di.Seq) }
					st, err := s.Run(w, m)
					if err != nil {
						t.Fatalf("%s/%s/%v (ref=%v): %v", kernel, name, rec, ref, err)
					}
					return st, seqs
				}

				refSt, refSeqs := run(true)
				fastSt, fastSeqs := run(false)

				if *fastSt != *refSt {
					t.Errorf("%s/%s/%v: fast loop diverged from reference:\n fast %+v\n  ref %+v",
						kernel, name, rec, *fastSt, *refSt)
				}
				if len(fastSeqs) != len(refSeqs) {
					t.Fatalf("%s/%s/%v: commit stream length %d != %d",
						kernel, name, rec, len(fastSeqs), len(refSeqs))
				}
				for i := range fastSeqs {
					if fastSeqs[i] != refSeqs[i] {
						t.Fatalf("%s/%s/%v: commit stream diverges at %d: %d != %d",
							kernel, name, rec, i, fastSeqs[i], refSeqs[i])
					}
				}
			}
		}
	}
}

// TestFastLoopSkipsIdleCycles asserts the fast loop actually exercises the
// skip path on a memory-bound kernel: the machine must reach the same final
// cycle as the reference while calling step far fewer times. Without this,
// a silently dead skip predicate would keep the differential test green
// while losing the speedup it exists to provide.
func TestFastLoopSkipsIdleCycles(t *testing.T) {
	w, m := testWin(4_000, 12_000)
	cfg := DefaultConfig()
	s, err := NewForKernel(cfg, "mcf", int(w+m), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(w, m)
	if err != nil {
		t.Fatal(err)
	}
	// Count no-op steps indirectly: re-run in reference mode and compare
	// cycles (identical) — then confirm skipping happened by construction:
	// on mcf a large fraction of cycles are idle waits on DRAM, so the
	// committed-µop/cycle ratio is low while the fast loop's wall clock is
	// dominated by active cycles only. The cheap observable proxy here is
	// that at least one skip occurred, which we detect by stepping a fresh
	// sim manually and watching the cycle counter jump.
	s2, err := NewForKernel(cfg, "mcf", int(w+m), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	jumped := false
	for s2.Stats().Committed < w+m && steps < 10_000_000 {
		before := s2.cycle
		s2.step()
		s2.maybeSkipIdle()
		if s2.cycle > before+1 {
			jumped = true
		}
		steps++
	}
	if !jumped {
		t.Fatal("fast loop never skipped an idle cycle on mcf")
	}
	if int64(steps) >= s2.cycle {
		t.Fatalf("fast loop stepped every cycle (%d steps for %d cycles)", steps, s2.cycle)
	}
	if s2.cycle != st.Cycles {
		t.Fatalf("manual stepping ended at cycle %d, Run ended at %d", s2.cycle, st.Cycles)
	}
}
