package ghist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPushAndBit(t *testing.T) {
	var h History
	h.Push(true, 0x10)
	h.Push(false, 0x20)
	h.Push(true, 0x30)
	if !h.Bit(0) {
		t.Error("Bit(0) = false, want true (newest)")
	}
	if h.Bit(1) {
		t.Error("Bit(1) = true, want false")
	}
	if !h.Bit(2) {
		t.Error("Bit(2) = false, want true (oldest)")
	}
	if h.Bit(3) {
		t.Error("Bit(3) beyond history should be false")
	}
}

// referenceFold computes the fold value directly from the definition: bit of
// age a contributes at position a mod width.
func referenceFold(h *History, length, width int, path bool) uint64 {
	mask := uint64(1)<<width - 1
	n := length
	if uint64(n) > h.pos {
		n = int(h.pos)
	}
	var v uint64
	for a := 0; a < n; a++ {
		e := uint64(h.recent(a, path)) & mask
		v ^= rotl(e, uint(a%width), width)
	}
	return v
}

func TestFoldMatchesReferenceIncrementally(t *testing.T) {
	var h History
	f1 := h.RegisterFold(8, 5, false)
	f2 := h.RegisterFold(37, 11, false)
	f3 := h.RegisterFold(16, 7, true)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h.Push(rng.Intn(2) == 0, uint64(rng.Intn(1<<16)))
		if got, want := h.Folded(f1), referenceFold(&h, 8, 5, false); got != want {
			t.Fatalf("push %d: fold(8,5) = %#x, want %#x", i, got, want)
		}
		if got, want := h.Folded(f2), referenceFold(&h, 37, 11, false); got != want {
			t.Fatalf("push %d: fold(37,11) = %#x, want %#x", i, got, want)
		}
		if got, want := h.Folded(f3), referenceFold(&h, 16, 7, true); got != want {
			t.Fatalf("push %d: path fold(16,7) = %#x, want %#x", i, got, want)
		}
	}
}

func TestRollToRestoresFolds(t *testing.T) {
	var h History
	f := h.RegisterFold(20, 9, false)
	rng := rand.New(rand.NewSource(11))

	for i := 0; i < 100; i++ {
		h.Push(rng.Intn(2) == 0, uint64(i))
	}
	snapPos := h.Pos()
	snapVal := h.Folded(f)

	for i := 0; i < 30; i++ {
		h.Push(rng.Intn(3) == 0, uint64(1000+i))
	}
	h.RollTo(snapPos)

	if h.Pos() != snapPos {
		t.Errorf("Pos after RollTo = %d, want %d", h.Pos(), snapPos)
	}
	if got := h.Folded(f); got != snapVal {
		t.Errorf("fold after RollTo = %#x, want %#x", got, snapVal)
	}
	// History must be replayable identically after rollback.
	h.Push(true, 42)
	if got, want := h.Folded(f), referenceFold(&h, 20, 9, false); got != want {
		t.Errorf("fold after rollback+push = %#x, want %#x", got, want)
	}
}

func TestRollToNewerPosIsNoop(t *testing.T) {
	var h History
	h.Push(true, 1)
	h.RollTo(99)
	if h.Pos() != 1 {
		t.Errorf("Pos = %d, want 1", h.Pos())
	}
}

func TestFoldWidthClamping(t *testing.T) {
	var h History
	f := h.RegisterFold(4, 0, false) // width clamped to 1
	h.Push(true, 1)
	if v := h.Folded(f); v > 1 {
		t.Errorf("1-bit fold value %d out of range", v)
	}
}

func TestFoldLengthClampedToCapacity(t *testing.T) {
	var h History
	f := h.RegisterFold(Capacity*2, 10, false)
	for i := 0; i < Capacity+10; i++ {
		h.Push(i%3 == 0, uint64(i))
	}
	if got := h.Folded(f); got != referenceFold(&h, Capacity-1, 10, false) {
		t.Error("over-capacity fold diverged from reference")
	}
}

// Property: fold values always fit in their declared width.
func TestFoldRangeProperty(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		w := int(width%16) + 1
		var h History
		fd := h.RegisterFold(32, w, false)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			h.Push(rng.Intn(2) == 0, uint64(rng.Int()))
			if h.Folded(fd) >= uint64(1)<<w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: two histories fed the same sequence have identical folds
// (determinism), and differ with overwhelming probability after divergent
// suffixes longer than the fold window are applied then compared.
func TestFoldDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		var a, b History
		fa := a.RegisterFold(24, 10, false)
		fb := b.RegisterFold(24, 10, false)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			taken := rng.Intn(2) == 0
			pc := uint64(rng.Int())
			a.Push(taken, pc)
			b.Push(taken, pc)
		}
		return a.Folded(fa) == b.Folded(fb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
