// Package ghist maintains the speculative global branch history and path
// history shared by the TAGE branch predictor and the VTAGE value predictor.
//
// The history is a ring of conditional-branch outcomes plus a ring of branch
// PC low bits (the path). Predictors register folded views (circular-shift
// XOR folds of the most recent L bits into W-bit indices, as in TAGE/ITTAGE
// hardware); folds are maintained incrementally on every push. On rollback
// (which the pipeline invokes when it squashes) the fold values are restored
// from a per-push checkpoint ring; positions that predate the checkpoint
// window fall back to replay-rebuilding from the ring contents, which yields
// the same values the incremental maintenance had at that position.
package ghist

const (
	// Capacity is the number of outcomes retained; it bounds the longest
	// usable history length. Power of two.
	Capacity = 2048
	capMask  = Capacity - 1
)

// Fold is a handle to one registered folded view of the history.
type Fold int

type foldSpec struct {
	length int    // history bits folded
	width  int    // output index width in bits
	path   bool   // fold the path ring instead of the outcome ring
	val    uint64 // current folded value
}

// History is the speculative global history. The zero value is an empty
// history with no registered folds, ready to use.
type History struct {
	bits  [Capacity]byte   // outcome ring: 0 or 1
	path  [Capacity]uint16 // PC low bits of every control µop
	pos   uint64           // total pushes so far; ring index = pos & capMask
	folds []foldSpec

	// ckpt is the fold-value checkpoint ring: slot (p & capMask) holds the
	// complete fold vector as it stood at position p, written by the push
	// that reached p. RollTo restores the vector with one copy instead of
	// replaying every fold over its whole history window.
	ckpt []uint64 // Capacity * len(folds), laid out slot-major
	// ckptFrom is the position checkpoints are valid after: rollbacks to
	// positions at or before it (registration-time state, restored
	// snapshots) rebuild by replay instead.
	ckptFrom uint64
}

// Pos returns the current history position (total outcomes pushed). Pipeline
// components snapshot Pos per in-flight µop and RollTo it on squash.
func (h *History) Pos() uint64 { return h.pos }

// Push appends one branch outcome and its PC to the history and updates all
// registered folds.
func (h *History) Push(taken bool, pc uint64) {
	var b byte
	if taken {
		b = 1
	}
	idx := h.pos & capMask
	h.bits[idx] = b
	h.path[idx] = uint16(pc)
	h.pos++
	n := len(h.folds)
	if len(h.ckpt) != Capacity*n {
		// Sized lazily at the first push after registration settles:
		// predictors register all folds at construction time, so this
		// allocates once per history rather than once per fold.
		h.ckpt = make([]uint64, Capacity*n)
		h.ckptFrom = h.pos - 1
	}
	ck := h.ckpt[int(h.pos&capMask)*n : int(h.pos&capMask)*n+n]
	for i := range h.folds {
		h.stepFold(&h.folds[i])
		ck[i] = h.folds[i].val
	}
}

// stepFold advances fold f for the outcome/path just pushed (h.pos already
// incremented). Classic TAGE circular shift register: rotate left by 1,
// insert the new bit, remove the bit that fell off the history window.
func (h *History) stepFold(f *foldSpec) {
	mask := uint64(1)<<f.width - 1
	f.val = ((f.val << 1) | (f.val >> (f.width - 1))) & mask
	f.val ^= uint64(h.recent(0, f.path))
	if h.pos >= uint64(f.length) {
		// The evicted entry was inserted (masked to width bits) length pushes
		// ago and has been rotated length%width positions since.
		old := uint64(h.recent(f.length, f.path)) & mask
		f.val ^= rotl(old, uint(f.length%f.width), f.width)
	}
	f.val &= mask
}

func rotl(v uint64, n uint, width int) uint64 {
	n %= uint(width)
	mask := uint64(1)<<width - 1
	return ((v << n) | (v >> (uint(width) - n))) & mask
}

// recent returns the i-th most recent entry (i=0 is the newest) from the
// outcome ring, or the path ring when path is set.
func (h *History) recent(i int, path bool) uint16 {
	idx := (h.pos - 1 - uint64(i)) & capMask
	if path {
		return h.path[idx]
	}
	return uint16(h.bits[idx])
}

// RegisterFold registers a folded view of the last length outcomes (or path
// entries) into width bits and returns its handle. Must be called before any
// Push for the fold to be exact; predictors register all folds at
// construction time.
func (h *History) RegisterFold(length, width int, path bool) Fold {
	// The ring overwrites the slot that is exactly Capacity pushes old at
	// every push, so the longest window whose eviction is still readable is
	// Capacity-1.
	if length > Capacity-1 {
		length = Capacity - 1
	}
	if width < 1 {
		width = 1
	}
	h.folds = append(h.folds, foldSpec{length: length, width: width, path: path})
	h.rebuildFold(len(h.folds) - 1)
	// The checkpoint ring is laid out per registered fold, so existing
	// checkpoints are invalid; Push resizes it lazily on its next call.
	h.ckptFrom = h.pos
	return Fold(len(h.folds) - 1)
}

// Folded returns the current value of fold f.
func (h *History) Folded(f Fold) uint64 { return h.folds[f].val }

// RollTo rewinds the history to position pos (forgetting newer outcomes) and
// restores every fold to the value it had there — from the checkpoint ring
// when pos is inside its window, by replay otherwise (the two agree: the
// ring entries a fold's window covers are untouched by newer pushes, so a
// replay reproduces exactly the inputs the incremental maintenance saw).
// pos must not be older than what the ring still holds.
func (h *History) RollTo(pos uint64) {
	if pos > h.pos {
		return // nothing newer to forget
	}
	if h.pos-pos > Capacity {
		pos = h.pos - Capacity
	}
	inWindow := h.pos-pos < Capacity && pos > h.ckptFrom
	h.pos = pos
	if inWindow {
		n := len(h.folds)
		ck := h.ckpt[int(pos&capMask)*n : int(pos&capMask)*n+n]
		for i := range h.folds {
			h.folds[i].val = ck[i]
		}
		return
	}
	for i := range h.folds {
		h.rebuildFold(i)
	}
}

// rebuildFold recomputes fold i from the ring contents by replaying the last
// length entries oldest-first through the same rotate-insert step.
func (h *History) rebuildFold(i int) {
	f := &h.folds[i]
	n := f.length
	if uint64(n) > h.pos {
		n = int(h.pos)
	}
	mask := uint64(1)<<f.width - 1
	var v uint64
	for j := n - 1; j >= 0; j-- { // oldest within window first
		v = ((v << 1) | (v >> (f.width - 1))) & mask
		v ^= uint64(h.recent(j, f.path))
		v &= mask
	}
	f.val = v
}

// State is an opaque snapshot of a History (see Snapshot).
type State struct {
	bits [Capacity]byte
	path [Capacity]uint16
	pos  uint64
	vals []uint64 // registered folds' current values, in registration order
}

// Snapshot captures the complete mutable state of the history: the rings,
// the position, and every registered fold's value. The checkpoint ring is
// deliberately excluded — Restore invalidates it, and rollbacks past a
// restored position rebuild by replay, which produces the same values.
func (h *History) Snapshot() *State {
	st := &State{pos: h.pos, vals: make([]uint64, len(h.folds))}
	st.bits = h.bits
	st.path = h.path
	for i := range h.folds {
		st.vals[i] = h.folds[i].val
	}
	return st
}

// Restore reinstates a snapshot taken from a history with the same fold
// registration sequence (same predictors constructed in the same order).
// The receiver's fold registrations are kept; only their values change.
func (h *History) Restore(st *State) {
	if len(st.vals) != len(h.folds) {
		panic("ghist: snapshot fold count mismatch")
	}
	h.bits = st.bits
	h.path = st.path
	h.pos = st.pos
	for i := range h.folds {
		h.folds[i].val = st.vals[i]
	}
	h.ckptFrom = h.pos // older checkpoints belong to the abandoned timeline
}

// Bit returns the i-th most recent outcome (i=0 newest). It returns false
// beyond the recorded history.
func (h *History) Bit(i int) bool {
	if uint64(i) >= h.pos || i >= Capacity {
		return false
	}
	return h.recent(i, false) == 1
}
