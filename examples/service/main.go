// Service example: run one of the paper's experiments through the
// simulation service and its typed client, streaming results as they land.
//
// With no arguments it starts an in-process server on a random port — a
// self-contained demo of repro.NewServer + repro.NewClient:
//
//	go run ./examples/service
//
// Given a base URL it talks to a running vpserved daemon instead (this is
// also the CI smoke driver for cmd/vpserved):
//
//	go run ./examples/service http://127.0.0.1:8437
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var base string
	if len(os.Args) > 1 {
		base = os.Args[1]
	} else {
		// Self-contained mode: an in-process service on a random port,
		// sized for interactive latency.
		srv, err := repro.NewServer(repro.ServerOptions{Warmup: 2_000, Measure: 8_000})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv)
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process vpserved on %s\n", base)
	}

	c := repro.NewClient(base)
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	fmt.Printf("server healthy (up %.1fs)\n", h.UptimeS)

	// Submit Fig. 1 (back-to-back VP-eligible fetches: one baseline run per
	// kernel) and stream records as simulations finish.
	job, err := c.SubmitExperiment(ctx, "fig1")
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("job %s accepted (%d specs)\n", job.ID, job.Specs)
	if _, err := c.Stream(ctx, job.ID, func(ev repro.ServiceEvent) error {
		if ev.Type == "record" && ev.Record != nil {
			fmt.Printf("  %-10s IPC %.3f\n", ev.Record.Kernel, ev.Record.IPC)
		}
		return nil
	}); err != nil {
		log.Fatalf("stream: %v", err)
	}
	final, err := c.Job(ctx, job.ID)
	if err != nil {
		log.Fatalf("job: %v", err)
	}
	if final.State != "done" {
		log.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	fmt.Printf("\n%s\n", final.Artifact)

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("statsz: %v", err)
	}
	fmt.Printf("server stats: %d simulations run, %d memo hits, %d workers\n",
		stats.MemoMisses, stats.MemoHits, stats.Workers)
}
