// Service example: drive the simulation service through the
// backend-neutral Runner API — an experiment rendered server-side and a
// spec batch streamed record by record — plus the typed client for
// health/stats observability.
//
// With no arguments it starts an in-process server on a random port — a
// self-contained demo of repro.NewServer + repro.NewRemoteRunner:
//
//	go run ./examples/service
//
// Given a base URL it talks to a running vpserved daemon instead (this is
// also the CI smoke driver for cmd/vpserved):
//
//	go run ./examples/service http://127.0.0.1:8437
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var base string
	if len(os.Args) > 1 {
		base = os.Args[1]
	} else {
		// Self-contained mode: an in-process service on a random port,
		// sized for interactive latency.
		srv, err := repro.NewServer(repro.ServerOptions{Warmup: 2_000, Measure: 8_000})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv)
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process vpserved on %s\n", base)
	}

	c := repro.NewClient(base)
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	fmt.Printf("server healthy (up %.1fs)\n", h.UptimeS)

	// The Runner is the backend-neutral face of the same daemon: this block
	// runs unchanged against a LocalRunner.
	r := repro.NewRemoteRunner(base)
	defer r.Close()

	// Stream a small predictor shoot-out: records arrive in spec order as
	// the server finishes them.
	specs := []repro.Spec{
		{Kernel: "art", Predictor: "lvp", Counters: repro.FPC},
		{Kernel: "art", Predictor: "stride", Counters: repro.FPC},
		{Kernel: "art", Predictor: "vtage", Counters: repro.FPC},
		{Kernel: "art", Predictor: "vtage+stride", Counters: repro.FPC},
	}
	fmt.Println("\nart kernel, FPC counters:")
	if err := r.Batch(ctx, specs, func(rec repro.Record) error {
		fmt.Printf("  %-14s IPC %.3f  speedup %.3f\n", rec.Predictor, rec.IPC, rec.Speedup)
		return nil
	}); err != nil {
		log.Fatalf("batch: %v", err)
	}

	// Run Fig. 1 server-side and print the rendered artifact.
	fmt.Println()
	if err := r.Experiment(ctx, "fig1", repro.ExperimentOptions{}, os.Stdout); err != nil {
		log.Fatalf("experiment: %v", err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("statsz: %v", err)
	}
	fmt.Printf("\nserver stats: %d simulations run, %d memo hits, %d workers\n",
		stats.MemoMisses, stats.MemoHits, stats.Workers)
}
