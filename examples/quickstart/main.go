// Quickstart: simulate one kernel with the paper's recommended
// configuration — the VTAGE + 2D-Stride hybrid with FPC confidence and
// squash-at-commit recovery — and compare it with the no-VP baseline.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s, err := repro.Simulate(repro.Options{
		Kernel:    "art",
		Predictor: "vtage+stride",
		Counters:  repro.FPC,
		Recovery:  repro.SquashAtCommit,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Practical data value speculation, quickstart")
	fmt.Printf("kernel %s with %s:\n", s.Kernel, s.Predictor)
	fmt.Printf("  IPC       %.3f\n", s.IPC)
	fmt.Printf("  speedup   %.2fx over the same machine without value prediction\n", s.Speedup)
	fmt.Printf("  coverage  %.1f%% of eligible µops used a prediction\n", 100*s.Coverage)
	fmt.Printf("  accuracy  %.4f of used predictions were correct\n", s.Accuracy)
	fmt.Printf("  recovery  %d commit-time value squashes\n", s.Stats.SquashValue)
}
