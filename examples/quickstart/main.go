// Quickstart: simulate one kernel with the paper's recommended
// configuration — the VTAGE + 2D-Stride hybrid with FPC confidence and
// squash-at-commit recovery — through the backend-neutral Runner API, and
// compare it with the no-VP baseline. Swap NewLocalRunner for
// NewRemoteRunner("http://127.0.0.1:8437") and the same code runs against a
// vpserved daemon.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	r := repro.NewLocalRunner(repro.RunnerOptions{})
	defer r.Close()

	rec, err := r.Simulate(context.Background(), repro.Spec{
		Kernel:    "art",
		Predictor: "vtage+stride",
		Counters:  repro.FPC,
		Recovery:  repro.SquashAtCommit,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Practical data value speculation, quickstart")
	fmt.Printf("kernel %s with %s:\n", rec.Kernel, rec.Predictor)
	fmt.Printf("  IPC       %.3f\n", rec.IPC)
	fmt.Printf("  speedup   %.2fx over the same machine without value prediction\n", rec.Speedup)
	fmt.Printf("  coverage  %.1f%% of eligible µops used a prediction\n", 100*rec.Coverage)
	fmt.Printf("  accuracy  %.4f of used predictions were correct\n", rec.Accuracy)
	fmt.Printf("  recovery  %d commit-time value squashes\n", rec.SquashValue)
}
