// Confidence demonstrates the FPC trade-off of Section 5: on the same kernel
// and predictor, plain 3-bit confidence counters deliver more coverage but
// enough mispredictions to lose performance under squash-at-commit recovery,
// while forward probabilistic counters trade a little coverage for >99.5%
// accuracy and turn the loss into a gain.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("FPC accuracy/coverage trade-off (squash-at-commit recovery)")
	fmt.Printf("%-10s %-9s %9s %9s %10s %8s\n",
		"kernel", "counters", "coverage", "accuracy", "squashes", "speedup")
	for _, k := range []string{"applu", "namd", "gobmk", "hmmer"} {
		for _, c := range []struct {
			name string
			mode repro.Counters
		}{{"baseline", repro.BaselineCounters}, {"FPC", repro.FPC}} {
			s, err := repro.Simulate(repro.Options{
				Kernel:    k,
				Predictor: "vtage",
				Counters:  c.mode,
				Recovery:  repro.SquashAtCommit,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-9s %8.1f%% %9.4f %10d %8.3f\n",
				k, c.name, 100*s.Coverage, s.Accuracy, s.Stats.SquashValue, s.Speedup)
		}
	}
	fmt.Println("\nFPC counters saturate only after ~129 consecutive correct predictions,")
	fmt.Println("mimicking 7-bit counters with 3 bits of storage plus an LFSR.")
}
