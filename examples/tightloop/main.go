// Tightloop demonstrates the paper's Section 3.2 motivation: in tight loops
// (here the h264ref SAD kernel), occurrences of the same µop are fetched in
// consecutive cycles, so a practical predictor must deliver back-to-back
// predictions. VTAGE predicts from PC + global branch history only, so it
// handles these µops with multi-cycle table access, while local-value-history
// predictors (FCM) would need a single-cycle critical loop.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Back-to-back VP-eligible fetches per kernel (Fig. 1 motivation)")
	fmt.Printf("%-10s %10s %14s\n", "kernel", "b2b", "VTAGE speedup")
	for _, k := range []string{"h264ref", "art", "bzip2", "gcc", "gobmk"} {
		s, err := repro.Simulate(repro.Options{
			Kernel:    k,
			Predictor: "vtage",
			Counters:  repro.FPC,
			Recovery:  repro.SquashAtCommit,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9.1f%% %14.3f\n", k, 100*s.Stats.B2BFraction(), s.Speedup)
	}
	fmt.Println("\nµops whose previous occurrence was fetched one cycle earlier can only")
	fmt.Println("be predicted by predictors without a per-PC value recurrence (LVP, VTAGE).")
}
