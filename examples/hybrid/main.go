// Hybrid demonstrates Section 7.1.2: computational (2D-Stride) and
// context-based (VTAGE) predictors are complementary — they cover different
// µops, so the symmetric hybrid reaches at least the better component on
// every kernel and increases total coverage.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	preds := []string{"stride", "vtage", "vtage+stride"}
	fmt.Println("Hybrid value prediction (FPC, squash-at-commit)")
	fmt.Printf("%-10s", "kernel")
	for _, p := range preds {
		fmt.Printf(" %14s", p)
	}
	fmt.Println(" (speedup / coverage)")
	for _, k := range []string{"parser", "gcc", "art", "wupwise", "h264ref"} {
		fmt.Printf("%-10s", k)
		for _, p := range preds {
			s, err := repro.Simulate(repro.Options{
				Kernel:    k,
				Predictor: p,
				Counters:  repro.FPC,
				Recovery:  repro.SquashAtCommit,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.2f /%5.1f%%", s.Speedup, 100*s.Coverage)
		}
		fmt.Println()
	}
	fmt.Println("\nIf both components are confident they must agree, otherwise no")
	fmt.Println("prediction is made; each trains on every committed value.")
}
