// Recovery demonstrates the paper's central architectural argument
// (Sections 3.1 and 8.2.4): with weak confidence, the recovery mechanism
// decides whether value prediction pays — squashing at commit loses where
// idealized selective reissue still gains. With FPC confidence the two
// mechanisms converge, so the cheap one (squash at commit, which barely
// touches the out-of-order engine) is the practical choice.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	type cell struct {
		counters repro.Counters
		recovery repro.Recovery
		label    string
	}
	cells := []cell{
		{repro.BaselineCounters, repro.SquashAtCommit, "3-bit + squash"},
		{repro.BaselineCounters, repro.SelectiveReissue, "3-bit + reissue"},
		{repro.FPC, repro.SquashAtCommit, "FPC + squash"},
		{repro.FPC, repro.SelectiveReissue, "FPC + reissue"},
	}

	fmt.Println("Misprediction recovery vs confidence (VTAGE, speedup over no-VP)")
	fmt.Printf("%-10s", "kernel")
	for _, c := range cells {
		fmt.Printf(" %16s", c.label)
	}
	fmt.Println()
	for _, k := range []string{"applu", "namd", "gobmk", "art"} {
		fmt.Printf("%-10s", k)
		for _, c := range cells {
			s, err := repro.Simulate(repro.Options{
				Kernel:    k,
				Predictor: "vtage",
				Counters:  c.counters,
				Recovery:  c.recovery,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %16.3f", s.Speedup)
		}
		fmt.Println()
	}
	fmt.Println("\nWith 3-bit counters the squash column loses and the reissue column")
	fmt.Println("doesn't; with FPC both columns match — so commit-time squashing, the")
	fmt.Println("mechanism that leaves the out-of-order engine untouched, suffices.")
}
