package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunnerDispatchObservability drives one observed runner per backend
// over a shared registry and asserts the dispatch histogram separates the
// backends by label, the trace writers carry dispatch spans, and the local
// runner's session instruments landed on the same registry.
func TestRunnerDispatchObservability(t *testing.T) {
	reg := NewMetrics()
	var localTrace, remoteTrace bytes.Buffer

	local, err := OpenLocalRunner(RunnerOptions{
		Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 2,
		Metrics: reg, TraceWriter: &localTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerOptions{Warmup: runnerWarmup, Measure: runnerMeasure, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	remote := OpenRemoteRunner(ts.URL, RunnerOptions{Metrics: reg, TraceWriter: &remoteTrace})
	t.Cleanup(func() {
		local.Close()
		remote.Close()
		ts.Close()
		srv.Close()
	})

	ctx := context.Background()
	spec := Spec{Kernel: "gzip", Predictor: "lvp"}
	for i := 0; i < 3; i++ {
		if _, err := local.Simulate(ctx, spec); err != nil {
			t.Fatal(err)
		}
		if _, err := remote.Simulate(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}

	dispatch := reg.HistogramVec("repro_dispatch_seconds", "", nil, "backend")
	if got := dispatch.With("local").Count(); got != 3 {
		t.Errorf("local dispatch count = %d, want 3", got)
	}
	if got := dispatch.With("remote").Count(); got != 3 {
		t.Errorf("remote dispatch count = %d, want 3", got)
	}

	// The local runner's session shares the registry: its simulations
	// counter reflects the two cold runs (spec + baseline).
	if got := reg.Counter("repro_simulations_total", "").Value(); got != 2 {
		t.Errorf("repro_simulations_total = %d, want 2 (spec + baseline, memo after)", got)
	}

	for name, buf := range map[string]*bytes.Buffer{"local": &localTrace, "remote": &remoteTrace} {
		dispatches := 0
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			var s obs.Span
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				t.Fatalf("%s: corrupt trace line %q: %v", name, line, err)
			}
			if s.Stage == obs.StageDispatch {
				dispatches++
				if s.Tier != name {
					t.Errorf("%s dispatch span has tier %q", name, s.Tier)
				}
			}
		}
		if dispatches != 3 {
			t.Errorf("%s trace has %d dispatch spans, want 3", name, dispatches)
		}
	}
}
