package repro

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestKernelsAndPredictorsListed(t *testing.T) {
	if got := len(Kernels()); got != 19 {
		t.Errorf("Kernels() = %d entries, want 19", got)
	}
	found := map[string]bool{}
	for _, p := range Predictors() {
		found[p] = true
	}
	for _, want := range []string{"none", "lvp", "stride", "fcm", "vtage", "oracle", "vtage+stride"} {
		if !found[want] {
			t.Errorf("Predictors() missing %q", want)
		}
	}
}

func TestSimulateDefaultsAndErrors(t *testing.T) {
	if _, err := Simulate(Options{Kernel: "nope", Predictor: "vtage"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := Simulate(Options{Kernel: "gzip", Predictor: "nope"}); err == nil {
		t.Error("unknown predictor accepted")
	}
	s, err := Simulate(Options{
		Kernel: "gzip", Predictor: "vtage", Counters: FPC,
		Warmup: 5_000, Measure: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.IPC <= 0 || s.Speedup <= 0 {
		t.Errorf("degenerate summary: %+v", s)
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment("table1", 0, 0, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"VTAGE", "LVP", "2D-Stride", "o4-FCM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateWithWorkers(t *testing.T) {
	// The Workers knob must not change results, only scheduling.
	opts := Options{Kernel: "gzip", Predictor: "lvp", Counters: FPC,
		Warmup: 1_000, Measure: 4_000}
	seq, err := Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("Workers changed the summary:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestRunExperimentOptsJSON(t *testing.T) {
	var sb strings.Builder
	opt := ExperimentOptions{Warmup: 500, Measure: 2_000, Workers: 4, Format: "json"}
	if err := RunExperimentOpts("fig1", opt, &sb); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &recs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(recs) != len(Kernels()) {
		t.Errorf("got %d records, want %d", len(recs), len(Kernels()))
	}
	if err := RunExperimentOpts("table1", opt, &strings.Builder{}); err == nil {
		t.Error("json format accepted for a text-only experiment")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment("fig99", 0, 0, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentsCoverEveryPaperArtifact(t *testing.T) {
	ids := Experiments()
	want := []string{"table1", "table2", "table3", "fig1", "fig3", "fig4",
		"fig5", "fig6", "fig7", "acc", "sec3", "sec4"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

// TestNewServerFacade mounts the service layer through the facade only —
// the path external consumers take — and drives one synchronous simulation
// and one experiment job through NewClient.
func TestNewServerFacade(t *testing.T) {
	srv, err := NewServer(ServerOptions{Warmup: 1_000, Measure: 4_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(ts.URL)
	ctx := context.Background()
	rec, err := c.Simulate(ctx, SpecRequest{Kernel: "gzip", Predictor: "stride", Counters: "fpc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kernel != "gzip" || rec.Predictor != "stride" || rec.IPC <= 0 {
		t.Errorf("bad record over the facade: %+v", rec)
	}

	job, err := c.SubmitExperiment(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || !strings.Contains(final.Artifact, "VTAGE") {
		t.Errorf("table1 job over the facade: state=%s artifact=%q", final.State, final.Artifact)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoMisses == 0 {
		t.Error("statsz shows no simulations after a simulate call")
	}
}
