package repro

import (
	"strings"
	"testing"
)

func TestKernelsAndPredictorsListed(t *testing.T) {
	if got := len(Kernels()); got != 19 {
		t.Errorf("Kernels() = %d entries, want 19", got)
	}
	found := map[string]bool{}
	for _, p := range Predictors() {
		found[p] = true
	}
	for _, want := range []string{"none", "lvp", "stride", "fcm", "vtage", "oracle", "vtage+stride"} {
		if !found[want] {
			t.Errorf("Predictors() missing %q", want)
		}
	}
}

func TestSimulateDefaultsAndErrors(t *testing.T) {
	if _, err := Simulate(Options{Kernel: "nope", Predictor: "vtage"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := Simulate(Options{Kernel: "gzip", Predictor: "nope"}); err == nil {
		t.Error("unknown predictor accepted")
	}
	s, err := Simulate(Options{
		Kernel: "gzip", Predictor: "vtage", Counters: FPC,
		Warmup: 5_000, Measure: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.IPC <= 0 || s.Speedup <= 0 {
		t.Errorf("degenerate summary: %+v", s)
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment("table1", 0, 0, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"VTAGE", "LVP", "2D-Stride", "o4-FCM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment("fig99", 0, 0, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentsCoverEveryPaperArtifact(t *testing.T) {
	ids := Experiments()
	want := []string{"table1", "table2", "table3", "fig1", "fig3", "fig4",
		"fig5", "fig6", "fig7", "acc", "sec3", "sec4"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}
