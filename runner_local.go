package repro

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
)

// LocalRunner runs simulations in-process on one long-lived
// harness.Session: kernel traces and simulation results are memoized for
// the runner's lifetime, so every consumer — repeated Simulate calls,
// overlapping Batch sets, experiment renders — pays warmup once per
// distinct spec. Batches fan out across a bounded worker pool. Safe for
// concurrent use.
type LocalRunner struct {
	opts    RunnerOptions
	session *harness.Session
	obs     *runnerObs // nil when unobserved
}

// OpenLocalRunner builds a runner over a fresh session sized by o, opening
// (creating if needed) the persistent record store when o.StoreDir is set.
// A non-nil o.Metrics or o.TraceWriter attaches the observability layer:
// session instruments (cache lookups, simulations, phase timings) plus the
// runner's own dispatch histogram.
func OpenLocalRunner(o RunnerOptions) (*LocalRunner, error) {
	o = o.withDefaults()
	se := harness.NewSession(o.Warmup, o.Measure)
	if o.StoreDir != "" {
		st, err := store.Open(o.StoreDir, harness.StoreVersion)
		if err != nil {
			return nil, err
		}
		se.UseStore(st)
	}
	r := &LocalRunner{opts: o, session: se}
	if o.Metrics != nil || o.TraceWriter != nil {
		var tracer *obs.Tracer
		if o.TraceWriter != nil {
			tracer = obs.NewTracer(o.TraceWriter)
		}
		se.Observe(harness.NewObserver(o.Metrics, tracer))
		r.obs = newRunnerObs(o.Metrics, tracer, "local")
	}
	return r, nil
}

// NewLocalRunner builds a runner over a fresh session sized by o. It panics
// if o.StoreDir is set and unusable; callers that configure a store should
// prefer OpenLocalRunner.
func NewLocalRunner(o RunnerOptions) *LocalRunner {
	r, err := OpenLocalRunner(o)
	if err != nil {
		panic(err)
	}
	return r
}

// Session exposes the shared session, for callers that need harness-level
// access (the deprecated facade wrappers, benchmarks, tests).
func (r *LocalRunner) Session() *harness.Session { return r.session }

// MemoStats reports the shared session's memo and store effectiveness — the
// local analogue of the service's /v1/statsz counters.
func (r *LocalRunner) MemoStats() MemoStats { return r.session.MemoStats() }

// Simulate runs one spec and the baseline its speedup needs (scheduled
// together, so they run in parallel when the runner has more than one
// worker) and returns the flattened record.
func (r *LocalRunner) Simulate(ctx context.Context, spec Spec) (Record, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return Record{}, err
	}
	start := time.Now()
	batch := []harness.Spec{spec}
	if spec.Predictor != "none" {
		batch = append(batch, spec.Baseline())
	}
	if _, err := r.session.RunAllCtx(ctx, batch, r.opts.Workers); err != nil {
		r.obs.observe(spec, start, err)
		return Record{}, err
	}
	rec, err := r.session.RecordCtx(ctx, spec) // warm: both runs just landed
	r.obs.observe(spec, start, err)
	return rec, err
}

// Batch implements the streaming contract over the worker pool: specs are
// simulated concurrently (each worker produces one spec's record, baseline
// included), and a delivery loop invokes fn in spec order as soon as each
// record's turn is reachable. Duplicate specs and shared baselines are free
// via the session memo and its singleflight.
func (r *LocalRunner) Batch(ctx context.Context, specs []Spec, fn func(Record) error) error {
	if len(specs) == 0 {
		return nil
	}
	canon := make([]harness.Spec, len(specs))
	for i, sp := range specs {
		canon[i] = sp.Canonical()
		if err := canon[i].Validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.opts.workers()
	if workers > len(canon) {
		workers = len(canon)
	}
	type outcome struct {
		rec Record
		err error
	}
	// One buffered slot per spec: workers never block on delivery, and the
	// in-order delivery loop below never blocks a worker.
	slots := make([]chan outcome, len(canon))
	for i := range slots {
		slots[i] = make(chan outcome, 1)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rec, err := r.session.RecordCtx(ctx, canon[i])
				slots[i] <- outcome{rec, err}
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range canon {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	// Make sure no worker goroutine outlives the call, whichever way the
	// delivery loop exits.
	defer wg.Wait()
	defer cancel()

	for i := range canon {
		select {
		case out := <-slots[i]:
			if out.err != nil {
				return fmt.Errorf("spec %d: %w", i, out.err)
			}
			if err := fn(out.rec); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Experiment renders one experiment through the shared session. A nonzero
// o.Warmup/o.Measure differing from the runner's windows forgoes the shared
// memo: measurement windows are session-wide state, so a differently-sized
// request runs on its own throwaway session.
func (r *LocalRunner) Experiment(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		return fmt.Errorf("repro: unknown experiment %q (have %v)", id, Experiments())
	}
	se := r.session
	warmup, measure := r.opts.Warmup, r.opts.Measure
	if o.Warmup != 0 {
		warmup = o.Warmup
	}
	if o.Measure != 0 {
		measure = o.Measure
	}
	if warmup != r.opts.Warmup || measure != r.opts.Measure {
		se = harness.NewSession(warmup, measure)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = r.opts.Workers
	}
	return harness.Render(ctx, se, e, o.Format, workers, w)
}

// RegisterProgram adds p to the runner's session registry and returns its
// canonical workload string (Runner interface). Content-addressed and
// idempotent; a program byte-identical to a builtin kernel answers the
// builtin's name and shares all of its cached state.
func (r *LocalRunner) RegisterProgram(ctx context.Context, p *Program) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return r.session.RegisterProgram(p)
}

// Experiments returns the harness's §5.1 experiment index.
func (r *LocalRunner) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []ExperimentInfo
	for _, e := range harness.Experiments() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out, nil
}

// Close implements Runner. A local runner holds no resources beyond the
// memoized session, which the garbage collector reclaims; Close exists so
// Runner consumers can shut any backend down uniformly.
func (r *LocalRunner) Close() error { return nil }
