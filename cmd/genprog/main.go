// Command genprog emits deterministic synthetic workload programs — the
// generator behind vpsim -gen, exposed as files so corpora can be checked
// in, diffed, uploaded to a daemon, and swept by the other tools. The same
// family and seed produce byte-identical programs on every machine.
//
// Usage:
//
//	genprog -list                               # the families
//	genprog -family branchy -seed 42 -o b.vasm  # one program, text assembly
//	genprog -family memory -seed 7 -o m.isa     # one program, binary encoding
//	genprog -dir corpus -count 4                # corpus: every family × seeds 0..3
//	genprog -dir corpus -family mixed -count 8 -seed 100 -ext isa
//
// The output format follows the file extension: ".isa" writes the binary
// program encoding, anything else the canonical text assembly (which
// assembles back byte-identically). Generated programs never halt on their
// own — the simulator's measurement window bounds execution — so they can
// be warmed and measured at any window sizing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genprog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "", "workload family (empty with -dir: all families)")
	seed := fs.Uint64("seed", 0, "first seed")
	count := fs.Int("count", 1, "programs per family (seeds seed..seed+count-1; -dir only)")
	out := fs.String("o", "", "write one program to this file (format by extension: .isa binary, else text assembly)")
	dir := fs.String("dir", "", "write a corpus into this directory as <family>-<seed>.<ext>")
	ext := fs.String("ext", "vasm", "corpus file extension: vasm (text assembly) or isa (binary)")
	list := fs.Bool("list", false, "list the generator families and exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "genprog: "+format+"\n", a...)
		return 2
	}

	if *list {
		for _, f := range repro.GeneratorFamilies() {
			fmt.Fprintln(stdout, f)
		}
		return 0
	}
	if (*out == "") == (*dir == "") {
		return usage("name exactly one destination: -o file or -dir directory")
	}
	if *ext != "vasm" && *ext != "isa" {
		return usage("unknown -ext %q (have vasm, isa)", *ext)
	}
	if *count < 1 {
		return usage("-count must be at least 1")
	}

	if *out != "" {
		if *family == "" {
			return usage("-o needs -family (one of: %s)", strings.Join(repro.GeneratorFamilies(), ", "))
		}
		p, err := repro.GenerateProgram(*family, *seed)
		if err != nil {
			return usage("%v", err)
		}
		if err := writeProgram(*out, p); err != nil {
			fmt.Fprintln(stderr, "genprog:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\t%s\n", *out, repro.ProgramID(p))
		return 0
	}

	families := repro.GeneratorFamilies()
	if *family != "" {
		families = []string{*family}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(stderr, "genprog:", err)
		return 1
	}
	for _, fam := range families {
		for i := 0; i < *count; i++ {
			s := *seed + uint64(i)
			p, err := repro.GenerateProgram(fam, s)
			if err != nil {
				return usage("%v", err)
			}
			path := filepath.Join(*dir, fmt.Sprintf("%s-%d.%s", fam, s, *ext))
			if err := writeProgram(path, p); err != nil {
				fmt.Fprintln(stderr, "genprog:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s\t%s\n", path, repro.ProgramID(p))
		}
	}
	return 0
}

// writeProgram writes p in the format the destination's extension selects.
func writeProgram(path string, p *repro.Program) error {
	var data []byte
	if filepath.Ext(path) == ".isa" {
		data = p.Encode()
	} else {
		data = repro.DisassembleProgram(p)
	}
	return os.WriteFile(path, data, 0o644)
}
