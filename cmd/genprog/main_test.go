package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func runArgs(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestListFamilies: -list prints every generator family.
func TestListFamilies(t *testing.T) {
	out, _, code := runArgs(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if got := strings.Fields(out); len(got) != len(repro.GeneratorFamilies()) {
		t.Errorf("-list printed %v, want %v", got, repro.GeneratorFamilies())
	}
}

// TestSingleFileBothFormats: -o emits text or binary by extension, both
// loading back to the identical program (the id printed beside the path).
func TestSingleFileBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"p.vasm", "p.isa"} {
		path := filepath.Join(dir, name)
		out, errb, code := runArgs(t, "-family", "memory", "-seed", "9", "-o", path)
		if code != 0 {
			t.Fatalf("%s exited %d: %s", name, code, errb)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := repro.LoadProgram("", data)
		if err != nil {
			t.Fatalf("%s does not load back: %v", name, err)
		}
		id := repro.ProgramID(p)
		if !strings.Contains(out, id) {
			t.Errorf("%s output %q missing id %s", name, out, id)
		}
		want, _ := repro.GenerateProgram("memory", 9)
		if id != repro.ProgramID(want) {
			t.Errorf("%s round-trips to a different identity", name)
		}
	}
}

// TestCorpusIsDeterministic: two -dir runs with the same arguments produce
// byte-identical files — the property CI's ingestion smoke leans on.
func TestCorpusIsDeterministic(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	for _, dir := range []string{a, b} {
		if _, errb, code := runArgs(t, "-dir", dir, "-count", "2"); code != 0 {
			t.Fatalf("corpus into %s exited %d: %s", dir, code, errb)
		}
	}
	fa, err := filepath.Glob(filepath.Join(a, "*"))
	if err != nil || len(fa) != 2*len(repro.GeneratorFamilies()) {
		t.Fatalf("corpus holds %d files (err %v), want %d", len(fa), err, 2*len(repro.GeneratorFamilies()))
	}
	for _, pa := range fa {
		da, err := os.ReadFile(pa)
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, filepath.Base(pa)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between identical runs", filepath.Base(pa))
		}
	}
}

// TestUsageErrors: malformed invocations exit 2.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                         // no destination
		{"-o", "x", "-dir", "y"},   // two destinations
		{"-o", "x.vasm"},           // -o without -family
		{"-dir", "d", "-ext", "x"}, // unknown extension
		{"-dir", "d", "-count", "0"},
		{"-family", "nope", "-o", "x.vasm"},
	} {
		if _, _, code := runArgs(t, args...); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}
