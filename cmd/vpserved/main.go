// Command vpserved is the simulation-as-a-service daemon: one long-lived
// harness session behind the /v1 HTTP job API (DESIGN.md §6), so kernel
// traces and simulation results are cached across every request the
// process ever answers.
//
// Usage:
//
//	vpserved                                  # listen on 127.0.0.1:8437
//	vpserved -addr 127.0.0.1:0 -addr-file a   # random port, written to a
//	vpserved -workers 8 -max-jobs 128         # sizing
//	vpserved -store-dir /var/cache/vpsim      # results survive restarts
//	vpserved -log-format json                 # structured access/ops logs
//	vpserved -trace-log run.ndjson -pprof     # run tracing + profiling
//
// Try it:
//
//	curl -s localhost:8437/v1/healthz
//	curl -s localhost:8437/metrics                       # Prometheus text
//	curl -s -X POST localhost:8437/v1/simulate \
//	     -d '{"kernel":"art","predictor":"vtage","counters":"fpc"}'
//	curl -s -X POST localhost:8437/v1/experiments/fig4   # -> {"id":"j000001",...}
//	curl -sN localhost:8437/v1/jobs/j000001/stream       # NDJSON results
//
// SIGTERM or SIGINT drains gracefully: admission stops, running jobs
// finish, the listener closes, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
)

func main() {
	// Zero means "server default": the service layer's Options.WithDefaults
	// is the single source of default sizing, so tuning it there changes
	// the daemon and embedded servers together.
	addr := flag.String("addr", "127.0.0.1:8437", "listen address (use port 0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 0, "simulation workers shared by all requests (0: GOMAXPROCS)")
	warmup := flag.Uint64("warmup", 0, "warmup µops per simulation (0: server default)")
	measure := flag.Uint64("measure", 0, "measured µops per simulation (0: server default)")
	maxJobs := flag.Int("max-jobs", 0, "max unfinished jobs admitted (0: server default)")
	maxBatch := flag.Int("max-batch", 0, "max specs per batch or experiment (0: server default)")
	reqTimeout := flag.Duration("request-timeout", 0, "synchronous /v1/simulate budget (0: server default)")
	storeDir := flag.String("store-dir", "", "persistent record store directory shared across restarts and processes (empty: memory-only)")
	shardID := flag.String("shard-id", "", "shard identity reported by /v1/healthz and /v1/statsz (empty: the bound host:port)")
	snapshotCap := flag.Int("snapshot-cap", 0, "warm-state snapshot cache entries (0: default cap, negative: disabled)")
	traceLog := flag.String("trace-log", "", "append one NDJSON span per simulation lifecycle stage to this file (empty: off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (same listener)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "graceful shutdown budget")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		slog.Error("vpserved", "err", err)
		os.Exit(2)
	}

	opts := repro.ServerOptions{
		Warmup:         *warmup,
		Measure:        *measure,
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		MaxBatch:       *maxBatch,
		RequestTimeout: *reqTimeout,
		StoreDir:       *storeDir,
		SnapshotCap:    *snapshotCap,
	}.WithDefaults()
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("open trace log", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.TraceWriter = f
		logger.Info("run tracing on", "trace_log", *traceLog)
	}

	// Listen before constructing the server: the default shard identity is
	// the bound host:port, which only exists once the listener is up.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	opts.ShardID = *shardID
	if opts.ShardID == "" {
		opts.ShardID = bound
	}
	svc, err := repro.NewServer(opts)
	if err != nil {
		logger.Error("start", "err", err)
		os.Exit(1)
	}

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Error("write addr-file", "path", *addrFile, "err", err)
			os.Exit(1)
		}
	}
	if opts.StoreDir != "" {
		logger.Info("persistent store attached", "dir", opts.StoreDir)
	}
	// opts passed through WithDefaults, so Workers here is the effective
	// pool size even when -workers 0 asked for the default. GOMAXPROCS and
	// NumCPU alongside it say how much of that pool can actually run at
	// once — a 16-worker pool on GOMAXPROCS=1 is concurrency, not parallelism.
	logger.Info("listening",
		"addr", bound,
		"shard_id", opts.ShardID,
		"workers", opts.Workers,
		"gomaxprocs", runtime.GOMAXPROCS(0),
		"num_cpu", runtime.NumCPU(),
		"warmup_uops", opts.Warmup,
		"measure_uops", opts.Measure)

	var handler http.Handler = svc
	if *pprofOn {
		// The service handler keeps everything under /v1 (plus /metrics), so
		// mounting pprof beside it cannot shadow an API route.
		mux := http.NewServeMux()
		mux.Handle("/", svc)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof on", "prefix", "/debug/pprof/")
	}

	httpSrv := &http.Server{
		Handler: logRequests(logger, handler),
		// No WriteTimeout: /v1/jobs/{id}/stream stays open for the job's
		// lifetime; per-request budgets are enforced by the service layer.
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	case err := <-serveErr:
		logger.Error("serve", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	clean := true
	if err := svc.Drain(ctx); err != nil {
		clean = false
		logger.Warn("drain interrupted; cancelling remaining jobs", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		clean = false
		logger.Warn("http shutdown", "err", err)
	}
	// Close cancels whatever Drain left behind; renders and simulations are
	// all context-driven (DESIGN.md §6.2), so this settles within one
	// cancellation checkpoint. The timeout is defense in depth against a
	// future uncancellable path, not an expected exit.
	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			clean = false
			logger.Error("close", "err", err)
		}
	case <-time.After(*drainTimeout):
		clean = false
		logger.Error("close timed out with work still in flight", "budget", drainTimeout.String())
	}
	if !clean {
		logger.Error("shutdown finished with errors")
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// newLogger builds the process logger on stderr in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (have text, json)", format)
	}
}

// logRequests is the structured access log: one line per request with
// method, path, status, response bytes, and duration. Streaming endpoints
// log when the stream ends, with the full body size.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush keeps streaming endpoints working through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
