// Command vpserved is the simulation-as-a-service daemon: one long-lived
// harness session behind the /v1 HTTP job API (DESIGN.md §6), so kernel
// traces and simulation results are cached across every request the
// process ever answers.
//
// Usage:
//
//	vpserved                                  # listen on 127.0.0.1:8437
//	vpserved -addr 127.0.0.1:0 -addr-file a   # random port, written to a
//	vpserved -workers 8 -max-jobs 128         # sizing
//	vpserved -store-dir /var/cache/vpsim      # results survive restarts
//
// Try it:
//
//	curl -s localhost:8437/v1/healthz
//	curl -s -X POST localhost:8437/v1/simulate \
//	     -d '{"kernel":"art","predictor":"vtage","counters":"fpc"}'
//	curl -s -X POST localhost:8437/v1/experiments/fig4   # -> {"id":"j000001",...}
//	curl -sN localhost:8437/v1/jobs/j000001/stream       # NDJSON results
//
// SIGTERM or SIGINT drains gracefully: admission stops, running jobs
// finish, the listener closes, and the process exits 0.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
)

func main() {
	// Zero means "server default": the service layer's Options.WithDefaults
	// is the single source of default sizing, so tuning it there changes
	// the daemon and embedded servers together.
	addr := flag.String("addr", "127.0.0.1:8437", "listen address (use port 0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 0, "simulation workers shared by all requests (0: GOMAXPROCS)")
	warmup := flag.Uint64("warmup", 0, "warmup µops per simulation (0: server default)")
	measure := flag.Uint64("measure", 0, "measured µops per simulation (0: server default)")
	maxJobs := flag.Int("max-jobs", 0, "max unfinished jobs admitted (0: server default)")
	maxBatch := flag.Int("max-batch", 0, "max specs per batch or experiment (0: server default)")
	reqTimeout := flag.Duration("request-timeout", 0, "synchronous /v1/simulate budget (0: server default)")
	storeDir := flag.String("store-dir", "", "persistent record store directory shared across restarts and processes (empty: memory-only)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "graceful shutdown budget")
	flag.Parse()

	log.SetPrefix("vpserved: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	opts := repro.ServerOptions{
		Warmup:         *warmup,
		Measure:        *measure,
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		MaxBatch:       *maxBatch,
		RequestTimeout: *reqTimeout,
		StoreDir:       *storeDir,
	}.WithDefaults()
	svc, err := repro.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if opts.StoreDir != "" {
		log.Printf("persistent store: %s", opts.StoreDir)
	}
	// opts passed through WithDefaults, so Workers here is the effective
	// pool size even when -workers 0 asked for the default. GOMAXPROCS and
	// NumCPU alongside it say how much of that pool can actually run at
	// once — a 16-worker pool on GOMAXPROCS=1 is concurrency, not parallelism.
	log.Printf("worker pool: %d workers (GOMAXPROCS=%d, NumCPU=%d)",
		opts.Workers, runtime.GOMAXPROCS(0), runtime.NumCPU())
	log.Printf("listening on %s (workers=%d warmup=%d measure=%d)",
		bound, opts.Workers, opts.Warmup, opts.Measure)

	httpSrv := &http.Server{
		Handler: logRequests(svc),
		// No WriteTimeout: /v1/jobs/{id}/stream stays open for the job's
		// lifetime; per-request budgets are enforced by the service layer.
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %s; draining", s)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	clean := true
	if err := svc.Drain(ctx); err != nil {
		clean = false
		log.Printf("drain: %v (cancelling remaining jobs)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		clean = false
		log.Printf("http shutdown: %v", err)
	}
	// Close cancels whatever Drain left behind; renders and simulations are
	// all context-driven (DESIGN.md §6.2), so this settles within one
	// cancellation checkpoint. The timeout is defense in depth against a
	// future uncancellable path, not an expected exit.
	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			clean = false
			log.Printf("close: %v", err)
		}
	case <-time.After(*drainTimeout):
		clean = false
		log.Printf("close: timed out after %s with work still in flight", *drainTimeout)
	}
	if !clean {
		log.Printf("shutdown finished with errors")
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// logRequests is a minimal access log: method, path, status, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		log.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Millisecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush keeps streaming endpoints working through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
