// Command bench measures the simulator's hot-path performance and writes a
// machine-readable BENCH_<label>.json record (DESIGN.md §5.4), giving every
// PR a trajectory to beat. Three measurements are taken:
//
//   - steady: ns/µop and allocs/µop of the simulate loop alone, via repeated
//     Sim.Advance chunks on a warm machine (construction, trace generation
//     and warmup excluded), per predictor configuration;
//   - fig4 at one worker: wall-clock of the full Fig. 4 spec batch run
//     sequentially — the single-thread throughput headline number;
//   - fig4 parallel: the same batch across the worker pool.
//
// Pass -before to embed a prior record and report speedups against it:
//
//	go run ./cmd/bench -label pr2 -before BENCH_seed.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/benchkit"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/store"
)

// SteadyResult is the per-predictor steady-state measurement.
type SteadyResult struct {
	Predictor    string  `json:"predictor"`
	NsPerUop     float64 `json:"ns_per_uop"`
	AllocsPerUop float64 `json:"allocs_per_uop"`
	UopsPerSec   float64 `json:"uops_per_sec"`
}

// Fig4Result is the Fig. 4 batch wall-clock measurement. ParallelSpeedup is
// null when the parallel pass could not actually run in parallel (effective
// parallelism of 1): a pinned GOMAXPROCS or a single-CPU machine makes the
// two passes measure the same thing, and recording their ratio as a
// "speedup" would be noise presented as signal.
type Fig4Result struct {
	Specs            int      `json:"specs"`
	Warmup           uint64   `json:"warmup_uops"`
	Measure          uint64   `json:"measure_uops"`
	UopsTotal        uint64   `json:"uops_total"`
	WallSeconds1W    float64  `json:"wall_s_1_worker"`
	UopsPerSec1W     float64  `json:"uops_per_sec_1_worker"`
	WallSecondsPar   float64  `json:"wall_s_parallel"`
	RequestedWorkers int      `json:"requested_workers"`
	EffectiveProcs   int      `json:"effective_gomaxprocs"`
	NumCPU           int      `json:"num_cpu"`
	ParallelSpeedup  *float64 `json:"parallel_speedup"`
}

// AblationResult is the ablation-batch measurement: the union of the four
// sensitivity sweeps' declared spec sets (abl-fpc, abl-hist, abl-loads,
// abl-width — extended Specs with explicit vectors, history lengths,
// loads-only scope and machine widths) run across the worker pool through
// the same memoized path as the figures.
type AblationResult struct {
	Specs       int     `json:"specs"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_s"`
	SpecsPerSec float64 `json:"specs_per_sec"`
}

// RunnerResult measures the facade's backend-neutral dispatch overhead: the
// same warm (memo-hit) spec repeatedly dispatched through a LocalRunner and
// through a RemoteRunner against an in-process HTTP server. Simulation cost
// cancels out, so the numbers isolate what a caller pays per call for each
// backend — scheduling and record flattening locally; HTTP, JSON and the
// job machinery remotely.
type RunnerResult struct {
	WarmCalls         int     `json:"warm_calls"`
	LocalUsPerCall    float64 `json:"local_us_per_call"`
	RemoteUsPerCall   float64 `json:"remote_us_per_call"`
	OverheadUsPerCall float64 `json:"overhead_us_per_call"`
	OverheadRatio     float64 `json:"overhead_ratio"`
}

// WarmStartResult measures the persistent store's cross-process leverage:
// the deduplicated fig4 batch runs twice through store-backed sessions over
// one store directory — a cold pass that simulates and persists, then a
// fresh session (a new process, morally) that must be served entirely from
// disk. The speedup is the headline warm-start win; zero warm misses is the
// correctness criterion.
type WarmStartResult struct {
	Specs         int     `json:"specs"`
	Workers       int     `json:"workers"`
	ColdSeconds   float64 `json:"cold_wall_s"`
	WarmSeconds   float64 `json:"warm_wall_s"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	WarmStoreHits uint64  `json:"warm_store_hits"`
	WarmMisses    uint64  `json:"warm_misses"`
}

// CorpusFamilyResult is one generator family's sweep rate within the corpus
// measurement.
type CorpusFamilyResult struct {
	Family      string  `json:"family"`
	Specs       int     `json:"specs"`
	WallSeconds float64 `json:"wall_s"`
	SpecsPerSec float64 `json:"specs_per_sec"`
}

// CorpusResult measures the bring-your-own-workload path end to end:
// deterministically generated programs (genprog's families) registered as
// first-class content-addressed workloads and swept across a predictor list
// through the same memoized session path the builtin kernels use. The rate
// is reported per family because the families stress different machine
// behaviour (branchy: control flow; memory: loads; mixed: both), so a
// regression can be localized to the path that caused it.
type CorpusResult struct {
	ProgramsPerFamily int                  `json:"programs_per_family"`
	Predictors        []string             `json:"predictors"`
	Workers           int                  `json:"workers"`
	Families          []CorpusFamilyResult `json:"families"`
	SpecsPerSec       float64              `json:"specs_per_sec"`
}

// ServerResult measures the service layer (internal/service) end to end:
// several concurrent clients submit the same fig4 spec batch over HTTP to
// an in-process server, so the number folds in scheduling, streaming, and —
// because the batches overlap — the serving leverage of the shared memo.
type ServerResult struct {
	Clients     int     `json:"clients"`
	Workers     int     `json:"workers"`
	UniqueSpecs int     `json:"unique_specs"`
	SpecsServed int     `json:"specs_served"`
	WallSeconds float64 `json:"wall_s"`
	SpecsPerSec float64 `json:"specs_per_sec"`
}

// FleetThroughputPoint is the fig4 batch rate through a ShardedRunner at
// one fleet size (cold shards, so it folds in scatter, simulation across
// the shard pools, and ordered gather).
type FleetThroughputPoint struct {
	Shards      int     `json:"shards"`
	Specs       int     `json:"specs"`
	WallSeconds float64 `json:"wall_s"`
	SpecsPerSec float64 `json:"specs_per_sec"`
}

// FleetResult measures the fleet tier (DESIGN.md §12): batch throughput at
// 1/2/3 shards, and the batched wire path's warm dispatch cost against the
// per-call baseline the Runner section tracks. BatchedSpeedup is the
// headline — how much cheaper one warm spec travels inside a batch-sync
// frame than as its own /v1/simulate round trip.
type FleetResult struct {
	WarmCalls        int                    `json:"warm_calls"`
	PerCallUs        float64                `json:"warm_per_call_us"`
	BatchedUsPerSpec float64                `json:"warm_batched_us_per_spec"`
	BatchedSpeedup   float64                `json:"batched_vs_per_call"`
	Throughput       []FleetThroughputPoint `json:"throughput"`
}

// Record is the full benchmark record written to BENCH_<label>.json.
type Record struct {
	Label       string             `json:"label"`
	CreatedUnix int64              `json:"created_unix"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Note        string             `json:"note,omitempty"`
	Steady      []SteadyResult     `json:"steady,omitempty"`
	Fig4        *Fig4Result        `json:"fig4,omitempty"`
	WarmStart   *WarmStartResult   `json:"warm_start,omitempty"`
	Ablation    *AblationResult    `json:"ablation,omitempty"`
	Corpus      *CorpusResult      `json:"corpus,omitempty"`
	Server      *ServerResult      `json:"server,omitempty"`
	Runner      *RunnerResult      `json:"runner,omitempty"`
	Fleet       *FleetResult       `json:"fleet,omitempty"`
	Before      *Record            `json:"before,omitempty"`
	Speedups    map[string]float64 `json:"speedup_vs_before,omitempty"`
}

func main() {
	label := flag.String("label", "dev", "record label; output file is BENCH_<label>.json")
	outDir := flag.String("out", ".", "output directory")
	before := flag.String("before", "", "prior BENCH_*.json to embed and compare against")
	kernel := flag.String("kernel", "gzip", "kernel for the steady-state measurement")
	warmup := flag.Uint64("warmup", 20_000, "fig4 warmup µops per simulation")
	measure := flag.Uint64("measure", 80_000, "fig4 measured µops per simulation")
	workers := flag.Int("workers", 0, "parallel fig4 workers (<=0: GOMAXPROCS)")
	quick := flag.Bool("quick", false, "shrink windows for a fast smoke record (CI)")
	flag.Parse()

	if *quick {
		*warmup, *measure = 5_000, 20_000
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	rec := &Record{
		Label:       *label,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(os.Stderr, "bench: steady-state simulate loop on %q\n", *kernel)
	for _, p := range benchkit.SteadyPredictors {
		sr, err := measureSteady(*kernel, p, *quick)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %-14s %7.1f ns/uop  %6.4f allocs/uop  %9.0f uops/s\n",
			p, sr.NsPerUop, sr.AllocsPerUop, sr.UopsPerSec)
		rec.Steady = append(rec.Steady, sr)
	}

	fmt.Fprintf(os.Stderr, "bench: fig4 batch (%d+%d µops per sim)\n", *warmup, *measure)
	f4, err := measureFig4(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	parSp := "speedup n/a"
	if f4.ParallelSpeedup != nil {
		parSp = fmt.Sprintf("%.2fx", *f4.ParallelSpeedup)
	}
	fmt.Fprintf(os.Stderr, "  %d specs: %.2fs at 1 worker (%.0f uops/s), %.2fs at %d workers (%s)\n",
		f4.Specs, f4.WallSeconds1W, f4.UopsPerSec1W, f4.WallSecondsPar, f4.RequestedWorkers, parSp)
	rec.Fig4 = &f4

	fmt.Fprintf(os.Stderr, "bench: warm start (fig4 batch, cold store-backed pass vs store-served pass)\n")
	ws, err := measureWarmStart(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "  %d specs: %.2fs cold, %.3fs warm (%.0fx, %d store hits, %d misses)\n",
		ws.Specs, ws.ColdSeconds, ws.WarmSeconds, ws.WarmSpeedup, ws.WarmStoreHits, ws.WarmMisses)
	rec.WarmStart = &ws

	fmt.Fprintf(os.Stderr, "bench: ablation batch (abl-fpc + abl-hist + abl-loads + abl-width, memoized path)\n")
	ab, err := measureAblation(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "  %d specs in %.2fs = %.1f specs/s (%d workers)\n",
		ab.Specs, ab.WallSeconds, ab.SpecsPerSec, ab.Workers)
	rec.Ablation = &ab

	fmt.Fprintf(os.Stderr, "bench: generated-program corpus sweep (%d programs/family x %d predictors)\n",
		corpusProgramsPerFamily, len(corpusPredictors))
	cp, err := measureCorpus(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	for _, fr := range cp.Families {
		fmt.Fprintf(os.Stderr, "  %-8s %d specs in %.2fs = %.1f specs/s\n",
			fr.Family, fr.Specs, fr.WallSeconds, fr.SpecsPerSec)
	}
	rec.Corpus = &cp

	fmt.Fprintf(os.Stderr, "bench: vpserved throughput (fig4 batch x %d overlapping clients over HTTP)\n", serverClients)
	sv, err := measureServer(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "  %d specs served in %.2fs = %.0f specs/s (%d unique, %d workers)\n",
		sv.SpecsServed, sv.WallSeconds, sv.SpecsPerSec, sv.UniqueSpecs, sv.Workers)
	rec.Server = &sv

	fmt.Fprintf(os.Stderr, "bench: runner dispatch overhead (warm spec, local vs remote backend)\n")
	rn, err := measureRunnerOverhead(*warmup, *measure)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "  %d warm calls: %.1f µs/call local, %.1f µs/call remote (+%.1f µs, %.1fx)\n",
		rn.WarmCalls, rn.LocalUsPerCall, rn.RemoteUsPerCall, rn.OverheadUsPerCall, rn.OverheadRatio)
	rec.Runner = &rn

	fmt.Fprintf(os.Stderr, "bench: fleet tier (sharded fig4 batches; batched vs per-call warm dispatch)\n")
	fl, err := measureFleet(*warmup, *measure, *workers)
	if err != nil {
		fatal(err)
	}
	for _, p := range fl.Throughput {
		fmt.Fprintf(os.Stderr, "  %d shard(s): %d specs in %.2fs = %.1f specs/s\n",
			p.Shards, p.Specs, p.WallSeconds, p.SpecsPerSec)
	}
	fmt.Fprintf(os.Stderr, "  warm dispatch: %.1f µs/call per-call, %.2f µs/spec batched (%.1fx)\n",
		fl.PerCallUs, fl.BatchedUsPerSpec, fl.BatchedSpeedup)
	rec.Fleet = &fl

	if *before != "" {
		prev, err := loadRecord(*before)
		if err != nil {
			fatal(err)
		}
		prev.Before = nil // keep records one level deep
		rec.Before = prev
		rec.Speedups = speedups(rec, prev)
		for k, v := range rec.Speedups {
			fmt.Fprintf(os.Stderr, "  speedup vs %s: %s = %.2fx\n", prev.Label, k, v)
		}
	}

	out := filepath.Join(*outDir, "BENCH_"+*label+".json")
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

// measureSteady times Sim.Advance chunks on a warm machine and counts
// steady-state allocations, mirroring BenchmarkSteadyStateSimulate — the
// windows, predictor coverage and build logic are shared through
// internal/benchkit. The allocation probe runs after the timing rounds, deep
// in the trace, where per-PC speculative-window churn would show up.
func measureSteady(kernel, predictor string, quick bool) (SteadyResult, error) {
	traceUops, chunk, rounds := benchkit.TraceUops, uint64(benchkit.Chunk), 20
	allocProbe := uint64(200_000)
	if quick {
		traceUops, rounds, allocProbe = 400_000, 5, 50_000
	}
	tr, err := benchkit.SteadyTrace(kernel, traceUops)
	if err != nil {
		return SteadyResult{}, err
	}

	sim, err := benchkit.NewWarmSim(tr, predictor)
	if err != nil {
		return SteadyResult{}, err
	}
	var elapsed time.Duration
	var uops uint64
	for i := 0; i < rounds; i++ {
		if sim.Stats().Committed+chunk > uint64(len(tr)) {
			if sim, err = benchkit.NewWarmSim(tr, predictor); err != nil {
				return SteadyResult{}, err
			}
		}
		beforeC := sim.Stats().Committed
		start := time.Now()
		if _, err := sim.Advance(chunk); err != nil {
			return SteadyResult{}, err
		}
		elapsed += time.Since(start)
		uops += sim.Stats().Committed - beforeC
	}

	if sim.Stats().Committed+allocProbe > uint64(len(tr)) {
		if sim, err = benchkit.NewWarmSim(tr, predictor); err != nil {
			return SteadyResult{}, err
		}
	}
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := sim.Advance(allocProbe); err != nil {
			panic(err)
		}
	})

	ns := float64(elapsed.Nanoseconds()) / float64(uops)
	return SteadyResult{
		Predictor:    predictor,
		NsPerUop:     ns,
		AllocsPerUop: allocs / float64(allocProbe),
		UopsPerSec:   1e9 / ns,
	}, nil
}

// measureFig4 runs the full Fig. 4 spec batch sequentially and in parallel.
// The declared spec list repeats per-kernel baselines across its two counter
// halves; duplicates are removed so uops_total counts real simulations (the
// session memo would dedupe them at run time anyway).
//
// The parallel pass raises GOMAXPROCS to the requested worker count for its
// duration (and restores it after): a pool of N goroutine workers under
// GOMAXPROCS=1 time-slices one CPU, and the old code reported that as a
// ~1.0x "parallel speedup" as if it had measured scaling. When even the
// raised limit yields effective parallelism of 1 — a single-CPU machine —
// the speedup is recorded as null rather than a fabricated ratio.
func measureFig4(warmup, measure uint64, workers int) (Fig4Result, error) {
	specs := harness.DedupSpecs(harness.Fig4Specs())
	perSim := warmup + measure

	start := time.Now()
	if _, err := harness.NewSession(warmup, measure).RunAll(specs, 1); err != nil {
		return Fig4Result{}, err
	}
	seq := time.Since(start).Seconds()

	prevProcs := runtime.GOMAXPROCS(0)
	if workers > prevProcs {
		runtime.GOMAXPROCS(workers)
	}
	effective := runtime.GOMAXPROCS(0)
	start = time.Now()
	_, err := harness.NewSession(warmup, measure).RunAll(specs, workers)
	par := time.Since(start).Seconds()
	if effective != prevProcs {
		runtime.GOMAXPROCS(prevProcs)
	}
	if err != nil {
		return Fig4Result{}, err
	}

	total := uint64(len(specs)) * perSim
	res := Fig4Result{
		Specs:            len(specs),
		Warmup:           warmup,
		Measure:          measure,
		UopsTotal:        total,
		WallSeconds1W:    seq,
		UopsPerSec1W:     float64(total) / seq,
		WallSecondsPar:   par,
		RequestedWorkers: workers,
		EffectiveProcs:   effective,
		NumCPU:           runtime.NumCPU(),
	}
	if parallelism := min(workers, effective, res.NumCPU); parallelism > 1 {
		sp := seq / par
		res.ParallelSpeedup = &sp
	} else {
		fmt.Fprintf(os.Stderr,
			"bench: warning: effective parallelism is 1 (workers=%d, GOMAXPROCS=%d, NumCPU=%d); parallel_speedup recorded as null\n",
			workers, effective, res.NumCPU)
	}
	return res, nil
}

// measureWarmStart runs the deduplicated fig4 batch through two store-backed
// sessions sharing one temporary store directory. The first (cold) pass
// simulates everything and persists write-behind; the second uses a fresh
// session — cold memo, same disk — so every lookup exercises the read-through
// path. A warm miss means an entry failed to round-trip.
func measureWarmStart(warmup, measure uint64, workers int) (WarmStartResult, error) {
	dir, err := os.MkdirTemp("", "bench-vpstore-")
	if err != nil {
		return WarmStartResult{}, err
	}
	defer os.RemoveAll(dir)
	specs := harness.DedupSpecs(harness.Fig4Specs())

	pass := func() (float64, harness.MemoStats, error) {
		st, err := store.Open(dir, harness.StoreVersion)
		if err != nil {
			return 0, harness.MemoStats{}, err
		}
		se := harness.NewSession(warmup, measure)
		se.UseStore(st)
		start := time.Now()
		if _, err := se.RunAll(specs, workers); err != nil {
			return 0, harness.MemoStats{}, err
		}
		return time.Since(start).Seconds(), se.MemoStats(), nil
	}

	cold, _, err := pass()
	if err != nil {
		return WarmStartResult{}, err
	}
	warm, m, err := pass()
	if err != nil {
		return WarmStartResult{}, err
	}
	return WarmStartResult{
		Specs:         len(specs),
		Workers:       workers,
		ColdSeconds:   cold,
		WarmSeconds:   warm,
		WarmSpeedup:   cold / warm,
		WarmStoreHits: m.StoreHits,
		WarmMisses:    m.Misses,
	}, nil
}

// ablationIDs are the sensitivity-sweep experiments whose declared spec
// sets form the ablation batch.
var ablationIDs = []string{"abl-fpc", "abl-hist", "abl-loads", "abl-width"}

// measureAblation runs the deduplicated union of the ablation sweeps'
// declared spec sets across the worker pool. Before PR 4 these sweeps
// simulated unmemoized on the render path; this number records the
// batch-scheduled replacement so the trajectory can hold it.
func measureAblation(warmup, measure uint64, workers int) (AblationResult, error) {
	var all []harness.Spec
	for _, id := range ablationIDs {
		e, ok := harness.ExperimentByID(id)
		if !ok || e.Specs == nil {
			return AblationResult{}, fmt.Errorf("experiment %q missing a declared spec set", id)
		}
		all = append(all, e.Specs()...)
	}
	specs := harness.DedupSpecs(all)
	start := time.Now()
	if _, err := harness.NewSession(warmup, measure).RunAll(specs, workers); err != nil {
		return AblationResult{}, err
	}
	wall := time.Since(start).Seconds()
	return AblationResult{
		Specs:       len(specs),
		Workers:     workers,
		WallSeconds: wall,
		SpecsPerSec: float64(len(specs)) / wall,
	}, nil
}

// corpusPredictors is the predictor list the corpus sweep crosses each
// generated program with — the same default sweep `experiments -corpus`
// runs. corpusProgramsPerFamily generated programs per family (seeds
// 0..n-1) keep the section proportionate to the others.
var corpusPredictors = []string{"lvp", "stride", "vtage"}

const corpusProgramsPerFamily = 2

// measureCorpus generates corpusProgramsPerFamily programs per generator
// family, registers each as a first-class workload of a fresh session, and
// runs the program × predictor sweep across the worker pool — the exact
// path a `genprog | experiments -corpus` pipeline takes, minus the disk
// round-trip. Each family gets its own session so per-family wall times
// don't share memo or trace state.
func measureCorpus(warmup, measure uint64, workers int) (CorpusResult, error) {
	res := CorpusResult{
		ProgramsPerFamily: corpusProgramsPerFamily,
		Predictors:        corpusPredictors,
		Workers:           workers,
	}
	var specsTotal int
	var wallTotal float64
	for _, fam := range repro.GeneratorFamilies() {
		se := harness.NewSession(warmup, measure)
		var specs []harness.Spec
		for s := uint64(0); s < corpusProgramsPerFamily; s++ {
			p, err := repro.GenerateProgram(fam, s)
			if err != nil {
				return CorpusResult{}, err
			}
			id, err := se.RegisterProgram(p)
			if err != nil {
				return CorpusResult{}, err
			}
			for _, pred := range corpusPredictors {
				specs = append(specs, harness.Spec{Program: id, Predictor: pred, Counters: harness.FPC})
			}
		}
		start := time.Now()
		if _, err := se.RunAll(specs, workers); err != nil {
			return CorpusResult{}, err
		}
		wall := time.Since(start).Seconds()
		res.Families = append(res.Families, CorpusFamilyResult{
			Family:      fam,
			Specs:       len(specs),
			WallSeconds: wall,
			SpecsPerSec: float64(len(specs)) / wall,
		})
		specsTotal += len(specs)
		wallTotal += wall
	}
	res.SpecsPerSec = float64(specsTotal) / wallTotal
	return res, nil
}

// serverClients is how many concurrent clients the server measurement runs;
// their batches fully overlap, which is the service's intended load shape.
const serverClients = 4

// measureServer starts an in-process service (the same handler cmd/vpserved
// serves), points serverClients typed clients at it over real HTTP, and has
// each submit the deduplicated fig4 batch concurrently. The reported rate
// is records served per wall-clock second — with overlapping batches this
// measures the memo-backed serving leverage, not raw simulation speed.
func measureServer(warmup, measure uint64, workers int) (ServerResult, error) {
	srv, err := service.New(service.Options{Warmup: warmup, Measure: measure, Workers: workers})
	if err != nil {
		return ServerResult{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerResult{}, err
	}
	defer ln.Close()
	go http.Serve(ln, srv)

	var reqs []service.SpecRequest
	for _, sp := range harness.DedupSpecs(harness.Fig4Specs()) {
		reqs = append(reqs, service.RequestFor(sp))
	}

	ctx := context.Background()
	base := "http://" + ln.Addr().String()
	start := time.Now()
	errs := make([]error, serverClients)
	var wg sync.WaitGroup
	for n := 0; n < serverClients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := client.New(base)
			st, err := c.SubmitBatch(ctx, reqs)
			if err != nil {
				errs[n] = err
				return
			}
			final, err := c.Wait(ctx, st.ID)
			if err == nil && final.State != service.StateDone {
				err = fmt.Errorf("job %s finished %s: %s", final.ID, final.State, final.Error)
			}
			errs[n] = err
		}(n)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServerResult{}, err
		}
	}
	served := serverClients * len(reqs)
	return ServerResult{
		Clients:     serverClients,
		Workers:     workers,
		UniqueSpecs: len(reqs),
		SpecsServed: served,
		WallSeconds: wall,
		SpecsPerSec: float64(served) / wall,
	}, nil
}

// runnerWarmCalls is how many warm dispatches each backend is timed over;
// the per-call quotient is stable well below this.
const runnerWarmCalls = 300

// measureRunnerOverhead times repeated warm Simulate calls of one spec
// through both Runner backends. The first call on each backend pays the
// simulation; every timed call is a memo hit, so the µs/call difference is
// pure dispatch overhead (the number BenchmarkRunnerRemoteOverhead tracks
// interactively).
func measureRunnerOverhead(warmup, measure uint64) (RunnerResult, error) {
	ctx := context.Background()
	spec := repro.Spec{Kernel: "art", Predictor: "vtage", Counters: repro.FPC}

	timeCalls := func(r repro.Runner) (float64, error) {
		if _, err := r.Simulate(ctx, spec); err != nil { // pay the simulation once
			return 0, err
		}
		start := time.Now()
		for i := 0; i < runnerWarmCalls; i++ {
			if _, err := r.Simulate(ctx, spec); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() * 1e6 / runnerWarmCalls, nil
	}

	local := repro.NewLocalRunner(repro.RunnerOptions{Warmup: warmup, Measure: measure})
	defer local.Close()
	localUs, err := timeCalls(local)
	if err != nil {
		return RunnerResult{}, err
	}

	srv, err := service.New(service.Options{Warmup: warmup, Measure: measure})
	if err != nil {
		return RunnerResult{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return RunnerResult{}, err
	}
	defer ln.Close()
	go http.Serve(ln, srv)
	remote := repro.NewRemoteRunner("http://" + ln.Addr().String())
	defer remote.Close()
	remoteUs, err := timeCalls(remote)
	if err != nil {
		return RunnerResult{}, err
	}

	return RunnerResult{
		WarmCalls:         runnerWarmCalls,
		LocalUsPerCall:    localUs,
		RemoteUsPerCall:   remoteUs,
		OverheadUsPerCall: remoteUs - localUs,
		OverheadRatio:     remoteUs / localUs,
	}, nil
}

// fleetWarmCalls sizes the fleet dispatch comparison; fleetWarmFrames full
// frames give the batched side a similar sample.
const (
	fleetWarmCalls  = 300
	fleetWarmFrames = 20
)

// startBenchShards stands up n in-process service shards on real loopback
// listeners (the same handler vpserved serves) and returns their base URLs
// plus a closer.
func startBenchShards(n int, warmup, measure uint64, workers int) ([]string, func(), error) {
	var urls []string
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	for i := 0; i < n; i++ {
		srv, err := service.New(service.Options{
			Warmup: warmup, Measure: measure, Workers: workers,
			ShardID: fmt.Sprintf("bench-%d", i),
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			closeAll()
			return nil, nil, err
		}
		go http.Serve(ln, srv)
		closers = append(closers, func() { ln.Close(); srv.Close() })
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, closeAll, nil
}

// measureFleet measures the fleet tier. Throughput runs the deduplicated
// fig4 batch through a ShardedRunner over 1, 2 and 3 cold shards — the
// end-to-end fleet path: consistent-hash scatter, per-shard simulation,
// ordered gather. The dispatch comparison then times one warm shard both
// ways: per-call /v1/simulate round trips versus batch-sync frames, the
// ratio the batched wire path exists to win (DESIGN.md §12.3).
func measureFleet(warmup, measure uint64, workers int) (FleetResult, error) {
	ctx := context.Background()
	specs := harness.DedupSpecs(harness.Fig4Specs())

	var res FleetResult
	for _, shards := range []int{1, 2, 3} {
		urls, closeAll, err := startBenchShards(shards, warmup, measure, workers)
		if err != nil {
			return res, err
		}
		runner, err := repro.OpenShardedRunner(repro.RunnerOptions{Shards: urls})
		if err != nil {
			closeAll()
			return res, err
		}
		n := 0
		start := time.Now()
		err = runner.Batch(ctx, specs, func(repro.Record) error { n++; return nil })
		wall := time.Since(start).Seconds()
		runner.Close()
		closeAll()
		if err != nil {
			return res, err
		}
		res.Throughput = append(res.Throughput, FleetThroughputPoint{
			Shards:      shards,
			Specs:       n,
			WallSeconds: wall,
			SpecsPerSec: float64(n) / wall,
		})
	}

	urls, closeAll, err := startBenchShards(1, warmup, measure, workers)
	if err != nil {
		return res, err
	}
	defer closeAll()
	c := client.New(urls[0])
	defer c.Close()
	reqs := make([]service.SpecRequest, len(specs))
	for i, sp := range specs {
		reqs[i] = service.RequestFor(sp)
	}
	if _, err := c.SimulateBatchSync(ctx, reqs); err != nil { // pay the simulations once
		return res, err
	}
	start := time.Now()
	for i := 0; i < fleetWarmCalls; i++ {
		if _, err := c.Simulate(ctx, reqs[i%len(reqs)]); err != nil {
			return res, err
		}
	}
	res.PerCallUs = time.Since(start).Seconds() * 1e6 / fleetWarmCalls
	start = time.Now()
	for i := 0; i < fleetWarmFrames; i++ {
		if _, err := c.SimulateBatchSync(ctx, reqs); err != nil {
			return res, err
		}
	}
	res.BatchedUsPerSpec = time.Since(start).Seconds() * 1e6 / float64(fleetWarmFrames*len(reqs))
	res.WarmCalls = fleetWarmCalls
	res.BatchedSpeedup = res.PerCallUs / res.BatchedUsPerSpec
	return res, nil
}

// speedups compares the headline numbers of two records. Steady comparisons
// match by predictor name; fig4 compares effective single-thread µops/s.
func speedups(cur, prev *Record) map[string]float64 {
	out := map[string]float64{}
	prevSteady := map[string]SteadyResult{}
	for _, s := range prev.Steady {
		prevSteady[s.Predictor] = s
	}
	for _, s := range cur.Steady {
		if p, ok := prevSteady[s.Predictor]; ok && s.NsPerUop > 0 {
			out["steady_"+s.Predictor] = p.NsPerUop / s.NsPerUop
		}
	}
	if cur.Fig4 != nil && prev.Fig4 != nil && prev.Fig4.UopsPerSec1W > 0 {
		out["fig4_single_thread"] = cur.Fig4.UopsPerSec1W / prev.Fig4.UopsPerSec1W
	}
	if cur.Server != nil && prev.Server != nil && prev.Server.SpecsPerSec > 0 {
		out["server_specs_per_sec"] = cur.Server.SpecsPerSec / prev.Server.SpecsPerSec
	}
	if cur.Ablation != nil && prev.Ablation != nil && prev.Ablation.SpecsPerSec > 0 {
		out["ablation_specs_per_sec"] = cur.Ablation.SpecsPerSec / prev.Ablation.SpecsPerSec
	}
	if cur.Corpus != nil && prev.Corpus != nil && prev.Corpus.SpecsPerSec > 0 {
		out["corpus_specs_per_sec"] = cur.Corpus.SpecsPerSec / prev.Corpus.SpecsPerSec
	}
	if cur.WarmStart != nil && prev.WarmStart != nil && prev.WarmStart.WarmSpeedup > 0 {
		out["warm_start_speedup"] = cur.WarmStart.WarmSpeedup / prev.WarmStart.WarmSpeedup
	}
	if cur.Runner != nil && prev.Runner != nil && cur.Runner.RemoteUsPerCall > 0 {
		// >1 means remote dispatch got cheaper since the prior record.
		out["runner_remote_dispatch"] = prev.Runner.RemoteUsPerCall / cur.Runner.RemoteUsPerCall
	}
	if cur.Fleet != nil && cur.Fleet.BatchedUsPerSpec > 0 {
		if prev.Fleet != nil {
			out["fleet_batched_dispatch"] = prev.Fleet.BatchedUsPerSpec / cur.Fleet.BatchedUsPerSpec
		} else if prev.Runner != nil {
			// First record with a fleet section: hold the batched path
			// against the prior record's warm per-call remote dispatch —
			// the number the batched framing exists to beat.
			out["fleet_batched_vs_prior_per_call"] = prev.Runner.RemoteUsPerCall / cur.Fleet.BatchedUsPerSpec
		}
	}
	return out
}

func loadRecord(path string) (*Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
