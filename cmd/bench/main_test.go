package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro"
)

// BenchmarkRunnerRemoteOverhead times one warm (memo-hit) Simulate dispatch
// through each Runner backend. The local/remote difference is the price of
// the wire — HTTP, JSON, and the service job machinery — which cmd/bench
// records into the BENCH trajectory as the `runner` section.
//
//	go test -run='^$' -bench BenchmarkRunnerRemoteOverhead ./cmd/bench
func BenchmarkRunnerRemoteOverhead(b *testing.B) {
	const (
		warmup  = 5_000
		measure = 20_000
	)
	ctx := context.Background()
	spec := repro.Spec{Kernel: "art", Predictor: "vtage", Counters: repro.FPC}

	bench := func(b *testing.B, r repro.Runner) {
		if _, err := r.Simulate(ctx, spec); err != nil { // pay the simulation once
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Simulate(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		local := repro.NewLocalRunner(repro.RunnerOptions{Warmup: warmup, Measure: measure})
		defer local.Close()
		bench(b, local)
	})
	b.Run("remote", func(b *testing.B) {
		srv, err := repro.NewServer(repro.ServerOptions{Warmup: warmup, Measure: measure})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer func() {
			ts.Close()
			srv.Close()
		}()
		remote := repro.NewRemoteRunner(ts.URL)
		defer remote.Close()
		bench(b, remote)
	})
}

// TestMeasureCorpus smoke-tests the corpus section with tiny windows: every
// generator family must report a positive sweep rate.
func TestMeasureCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement smoke needs real (if small) simulations")
	}
	cp, err := measureCorpus(1_000, 4_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(cp.Families), len(repro.GeneratorFamilies()); got != want {
		t.Fatalf("corpus measured %d families, want %d", got, want)
	}
	for _, fr := range cp.Families {
		if fr.Specs != corpusProgramsPerFamily*len(corpusPredictors) || fr.SpecsPerSec <= 0 {
			t.Errorf("degenerate family measurement: %+v", fr)
		}
	}
	if cp.SpecsPerSec <= 0 {
		t.Errorf("degenerate overall rate: %+v", cp)
	}
}

// TestMeasureRunnerOverhead smoke-tests the bench section with tiny windows
// so CI keeps the measurement path compiling and running.
func TestMeasureRunnerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement smoke needs real (if small) simulations")
	}
	rn, err := measureRunnerOverhead(1_000, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if rn.LocalUsPerCall <= 0 || rn.RemoteUsPerCall <= 0 {
		t.Errorf("degenerate measurement: %+v", rn)
	}
	if rn.RemoteUsPerCall < rn.LocalUsPerCall {
		t.Logf("remote dispatch measured cheaper than local (%+v) — plausible only on a loaded machine", rn)
	}
}
