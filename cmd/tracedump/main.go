// Command tracedump characterizes workloads: instruction mix, branch
// behaviour, memory footprint, and value-locality metrics. For the builtin
// kernels the output documents why each responds to the predictor family it
// was designed for (DESIGN.md §4); -program runs the same profile over a
// bring-your-own workload file.
//
// Usage:
//
//	tracedump                     # table for all builtin kernels
//	tracedump -kernel art         # detailed block for one kernel
//	tracedump -program my.vasm    # detailed block for a program file (.isa or .vasm)
//	tracedump -uops 1000000       # longer traces
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	kernel := flag.String("kernel", "", "single builtin kernel to profile in detail (default: all, as a table)")
	program := flag.String("program", "", "profile this program file instead (binary .isa or text .vasm; format sniffed)")
	uops := flag.Int("uops", 300_000, "trace length in µops")
	flag.Parse()

	if *kernel != "" && *program != "" {
		fmt.Fprintln(os.Stderr, "tracedump: -kernel and -program both name a workload; use one")
		os.Exit(2)
	}

	if *program != "" {
		data, err := os.ReadFile(*program)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		name := strings.TrimSuffix(filepath.Base(*program), filepath.Ext(*program))
		p, err := repro.LoadProgram(name, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracedump: %s: %v\n", *program, err)
			os.Exit(2)
		}
		prof := stats.Compute(emu.Trace(p, *uops))
		fmt.Print(prof.Format(p.Name))
		return
	}

	if *kernel != "" {
		k, ok := kernels.ByName(*kernel)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracedump: unknown kernel %q (builtin kernels: %s)\n",
				*kernel, strings.Join(kernels.Names(), ", "))
			os.Exit(2)
		}
		p := stats.Compute(emu.Trace(k.Build(), *uops))
		fmt.Print(p.Format(k.Name))
		return
	}

	fmt.Println(stats.Header())
	for _, k := range kernels.All() {
		p := stats.Compute(emu.Trace(k.Build(), *uops))
		fmt.Println(p.Row(k.Name))
	}
}
