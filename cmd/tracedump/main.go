// Command tracedump characterizes the synthetic kernels: instruction mix,
// branch behaviour, memory footprint, and value-locality metrics. The
// output documents why each kernel responds to the predictor family it was
// designed for (DESIGN.md §4).
//
// Usage:
//
//	tracedump                 # table for all kernels
//	tracedump -kernel art     # detailed block for one kernel
//	tracedump -uops 1000000   # longer traces
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	kernel := flag.String("kernel", "", "single kernel to profile in detail (default: all, as a table)")
	uops := flag.Int("uops", 300_000, "trace length in µops")
	flag.Parse()

	if *kernel != "" {
		k, ok := kernels.ByName(*kernel)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracedump: unknown kernel %q\n", *kernel)
			os.Exit(2)
		}
		p := stats.Compute(emu.Trace(k.Build(), *uops))
		fmt.Print(p.Format(k.Name))
		return
	}

	fmt.Println(stats.Header())
	for _, k := range kernels.All() {
		p := stats.Compute(emu.Trace(k.Build(), *uops))
		fmt.Println(p.Row(k.Name))
	}
}
