// Command vpsim runs one kernel under one value-predictor configuration and
// prints the headline statistics — the single-run workhorse behind the
// experiment harness. It dispatches through the backend-neutral repro.Runner:
// in-process by default, or against a warm vpserved daemon with -server, so
// parameter sweeps from the shell can reuse a remote memo.
//
// Usage:
//
//	vpsim -kernel art -pred vtage+stride -counters fpc -recovery squash
//	vpsim -kernel art -pred vtage -width 4 -max-hist 256          # extended spec
//	vpsim -kernel art -pred vtage -server http://127.0.0.1:8437   # remote dispatch
//	vpsim -kernel art -pred vtage -shards "$(cat fleet.addrs)"    # fleet dispatch
//	vpsim -kernel art -pred vtage -store-dir .vpstore             # persist the result
//	vpsim -program mywork.vasm -pred vtage                        # bring your own workload
//	vpsim -gen branchy:42 -pred vtage                             # generated workload
//
// -program accepts binary program encodings (.isa) and text assembly
// (.vasm) alike — the format is sniffed, not extension-driven. With
// -server, the program is uploaded to the daemon automatically. -gen
// builds the deterministic synthetic workload family:seed (see genprog
// -list); identical arguments reproduce byte-identical programs anywhere.
//
// Output is a flattened record; -format json emits it with the stable
// field names shared by -format csv|json everywhere else (DESIGN.md §5.3).
//
// Profiling the simulator (see README.md "Profiling the hot path"):
//
//	vpsim -kernel gzip -pred none -measure 2000000 -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof -top cpu.prof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args, executes, and returns the process exit code, so the
// profile-flushing defers always execute even on failures and tests can
// drive the real flag path.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "art", "kernel to simulate (see -list)")
	programFile := fs.String("program", "", "simulate this program file instead of a builtin kernel (binary .isa or text .vasm; format sniffed)")
	gen := fs.String("gen", "", `simulate a generated workload "family:seed" (families: `+strings.Join(repro.GeneratorFamilies(), ", ")+")")
	pred := fs.String("pred", "vtage", "value predictor: "+strings.Join(repro.Predictors(), ", "))
	counters := fs.String("counters", "fpc", "confidence counters: baseline or fpc")
	recovery := fs.String("recovery", "squash", "misprediction recovery: squash or reissue")
	warmup := fs.Uint64("warmup", 50_000, "warmup µops")
	measure := fs.Uint64("measure", 250_000, "measured µops")
	workers := fs.Int("workers", 0, "parallel simulation workers (<=0: GOMAXPROCS; ignored with -server: the daemon's pool applies)")
	width := fs.Int("width", 0, "machine width override (0: the paper's 8-wide)")
	loadsOnly := fs.Bool("loads-only", false, "restrict value prediction to load µops")
	maxHist := fs.Int("max-hist", 0, "VTAGE max history override (0: the paper's 64)")
	fpcVector := fs.String("fpc-vector", "", `explicit FPC vector, e.g. "0,2,2,2,2,3,3"`)
	format := fs.String("format", "text", "output format: text or json")
	server := fs.String("server", "", "run against this vpserved base URL instead of in-process")
	shards := fs.String("shards", "", "comma-separated vpserved base URLs: route across a fleet instead of in-process (see vpfleet)")
	storeDir := fs.String("store-dir", "", "persistent record store directory for in-process runs (empty: memory-only)")
	list := fs.Bool("list", false, "list kernels and exit")
	traceLog := fs.String("trace-log", "", "append one NDJSON span per run lifecycle stage to this file (empty: off)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile after the run to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, k := range repro.Kernels() {
			fmt.Fprintln(stdout, k)
		}
		return 0
	}

	if *server != "" && *shards != "" {
		fmt.Fprintln(stderr, "vpsim: -server and -shards both name a remote backend; use one")
		return 2
	}
	if *server != "" || *shards != "" {
		// Remote simulations are sized by the daemon; refuse explicit window
		// flags rather than silently returning differently-sized results.
		bad := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "warmup" || f.Name == "measure" {
				bad = true
			}
		})
		if bad {
			fmt.Fprintln(stderr, "vpsim: -warmup/-measure size local runs; a remote daemon's windows are set by vpserved -warmup/-measure")
			return 2
		}
		if *storeDir != "" {
			fmt.Fprintln(stderr, "vpsim: -store-dir applies to in-process runs; a remote daemon's store is set by vpserved -store-dir")
			return 2
		}
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "vpsim:", err)
		return 1
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "vpsim: unknown format %q (have text, json)\n", *format)
		return 2
	}

	// Resolve the workload source: builtin -kernel, a -program file, or a
	// -gen family:seed. Exactly one may be named.
	var prog *repro.Program
	if *programFile != "" && *gen != "" {
		fmt.Fprintln(stderr, "vpsim: -program and -gen both name a workload; use one")
		return 2
	}
	if *programFile != "" || *gen != "" {
		explicitKernel := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "kernel" {
				explicitKernel = true
			}
		})
		if explicitKernel {
			fmt.Fprintln(stderr, "vpsim: -kernel conflicts with -program/-gen; name one workload source")
			return 2
		}
	}
	if *programFile != "" {
		data, err := os.ReadFile(*programFile)
		if err != nil {
			fmt.Fprintln(stderr, "vpsim:", err)
			return 2
		}
		name := strings.TrimSuffix(filepath.Base(*programFile), filepath.Ext(*programFile))
		prog, err = repro.LoadProgram(name, data)
		if err != nil {
			fmt.Fprintf(stderr, "vpsim: %s: %v\n", *programFile, err)
			return 2
		}
	}
	if *gen != "" {
		family, seedStr, ok := strings.Cut(*gen, ":")
		if !ok {
			fmt.Fprintf(stderr, "vpsim: -gen wants family:seed (families: %s)\n",
				strings.Join(repro.GeneratorFamilies(), ", "))
			return 2
		}
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "vpsim: -gen seed %q: %v\n", seedStr, err)
			return 2
		}
		prog, err = repro.GenerateProgram(family, seed)
		if err != nil {
			fmt.Fprintln(stderr, "vpsim:", err)
			return 2
		}
	}

	spec := repro.Spec{
		Kernel:    *kernel,
		Predictor: *pred,
		Recovery:  repro.SquashAtCommit,
		Width:     *width,
		LoadsOnly: *loadsOnly,
		MaxHist:   *maxHist,
		FPCVec:    *fpcVector,
	}
	switch *counters {
	case "baseline":
		spec.Counters = repro.BaselineCounters
	case "fpc":
		spec.Counters = repro.FPC
	default:
		fmt.Fprintf(stderr, "vpsim: unknown counters %q (have baseline, fpc)\n", *counters)
		return 2
	}
	switch *recovery {
	case "squash":
	case "reissue":
		spec.Recovery = repro.SelectiveReissue
	default:
		fmt.Fprintf(stderr, "vpsim: unknown recovery %q (have squash, reissue)\n", *recovery)
		return 2
	}
	if prog != nil {
		// The content-addressed identity is computable before any backend
		// exists; registration below may still fold it onto a builtin name.
		spec.Kernel, spec.Program = "", repro.ProgramID(prog)
	}
	// Validate before any backend is built: an unknown kernel, an out-of-range
	// override, or an unparseable -fpc-vector is a usage error that must fail
	// fast, not after paying session warmup.
	if err := spec.Canonical().Validate(); err != nil {
		fmt.Fprintln(stderr, "vpsim:", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written after the run (LIFO before StopCPUProfile is fine: heap
		// accounting is independent of the CPU profile).
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "vpsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile shows live + total allocation
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "vpsim:", err)
			}
		}()
	}

	opts := repro.RunnerOptions{
		Warmup: *warmup, Measure: *measure, Workers: *workers, StoreDir: *storeDir,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		opts.TraceWriter = f
	}

	var runner repro.Runner
	if *shards != "" {
		// A fleet backend: spec-sharded routing across the listed daemons.
		// Windows and stores are per-shard (vpserved flags), like -server.
		sharded, err := repro.OpenShardedRunner(repro.RunnerOptions{
			Shards:      strings.Split(*shards, ","),
			TraceWriter: opts.TraceWriter,
		})
		if err != nil {
			return fail(err)
		}
		runner = sharded
	} else if *server != "" {
		// Remote windows are the daemon's; the flags size local runs only.
		// The trace writer still applies: a remote runner traces its
		// dispatch spans (the daemon traces simulation stages via
		// vpserved -trace-log).
		runner = repro.OpenRemoteRunner(*server, repro.RunnerOptions{TraceWriter: opts.TraceWriter})
	} else {
		local, err := repro.OpenLocalRunner(opts)
		if err != nil {
			return fail(err)
		}
		runner = local
	}
	defer runner.Close()

	if prog != nil {
		id, err := runner.RegisterProgram(ctx, prog)
		if err != nil {
			return fail(err)
		}
		spec.Program = id
	}
	rec, err := runner.Simulate(ctx, spec)
	if err != nil {
		return fail(err)
	}
	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return fail(err)
		}
		return 0
	}
	printRecord(stdout, rec)
	return 0
}

// printRecord renders the human-readable report from the flattened record —
// the same fields whichever backend produced it.
func printRecord(w io.Writer, r repro.Record) {
	fmt.Fprintf(w, "kernel      %s\n", r.Kernel)
	fmt.Fprintf(w, "predictor   %s (%s counters, %s recovery)\n", r.Predictor, r.Counters, r.Recovery)
	if r.Width != 0 || r.LoadsOnly || r.MaxHist != 0 || r.FPCVector != "" {
		fmt.Fprintf(w, "config      width=%d loads_only=%t max_hist=%d fpc_vector=%q (0/false: paper default)\n",
			r.Width, r.LoadsOnly, r.MaxHist, r.FPCVector)
	}
	fmt.Fprintf(w, "IPC         %.3f\n", r.IPC)
	fmt.Fprintf(w, "speedup     %.3f (vs no value prediction)\n", r.Speedup)
	fmt.Fprintf(w, "coverage    %.1f%%\n", 100*r.Coverage)
	fmt.Fprintf(w, "accuracy    %.4f\n", r.Accuracy)
	fmt.Fprintf(w, "squashes    value=%d branch=%d memorder=%d reissued=%d\n",
		r.SquashValue, r.SquashBranch, r.SquashMemOrder, r.ReissuedUops)
	fmt.Fprintf(w, "branches    %.2f MPKI\n", r.BranchMPKI)
	fmt.Fprintf(w, "back-to-back eligible fetches: %.1f%%\n", 100*r.B2BFraction)
}
