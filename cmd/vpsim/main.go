// Command vpsim runs one kernel under one value-predictor configuration and
// prints the headline statistics — the single-run workhorse behind the
// experiment harness.
//
// Usage:
//
//	vpsim -kernel art -pred vtage+stride -counters fpc -recovery squash
//
// Profiling the simulator (see README.md "Profiling the hot path"):
//
//	vpsim -kernel gzip -pred none -measure 2000000 -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof -top cpu.prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro"
)

// main only parses flags and exits; run does the work and returns the exit
// code, so profile-flushing defers always execute even on failures.
func main() {
	kernel := flag.String("kernel", "art", "kernel to simulate (see -list)")
	pred := flag.String("pred", "vtage", "value predictor: "+strings.Join(repro.Predictors(), ", "))
	counters := flag.String("counters", "fpc", "confidence counters: baseline or fpc")
	recovery := flag.String("recovery", "squash", "misprediction recovery: squash or reissue")
	warmup := flag.Uint64("warmup", 50_000, "warmup µops")
	measure := flag.Uint64("measure", 250_000, "measured µops")
	workers := flag.Int("workers", 0, "parallel simulation workers (<=0: GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text or json")
	list := flag.Bool("list", false, "list kernels and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the run to this file")
	flag.Parse()

	if *list {
		for _, k := range repro.Kernels() {
			fmt.Println(k)
		}
		return
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "vpsim: unknown format %q (have text, json)\n", *format)
		os.Exit(2)
	}
	opts := repro.Options{
		Kernel:    *kernel,
		Predictor: *pred,
		Warmup:    *warmup,
		Measure:   *measure,
		Workers:   *workers,
	}
	switch *counters {
	case "baseline":
		opts.Counters = repro.BaselineCounters
	case "fpc":
		opts.Counters = repro.FPC
	default:
		fmt.Fprintf(os.Stderr, "vpsim: unknown counters %q\n", *counters)
		os.Exit(2)
	}
	switch *recovery {
	case "squash":
		opts.Recovery = repro.SquashAtCommit
	case "reissue":
		opts.Recovery = repro.SelectiveReissue
	default:
		fmt.Fprintf(os.Stderr, "vpsim: unknown recovery %q\n", *recovery)
		os.Exit(2)
	}

	os.Exit(run(opts, *counters, *recovery, *format, *cpuprofile, *memprofile))
}

func run(opts repro.Options, counters, recovery, format, cpuprofile, memprofile string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "vpsim:", err)
		return 1
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		// Written after the run (LIFO before StopCPUProfile is fine: heap
		// accounting is independent of the CPU profile).
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vpsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile shows live + total allocation
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vpsim:", err)
			}
		}()
	}

	s, err := repro.Simulate(opts)
	if err != nil {
		return fail(err)
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Printf("kernel      %s\n", s.Kernel)
	fmt.Printf("predictor   %s (%s counters, %s recovery)\n", s.Predictor, counters, recovery)
	fmt.Printf("IPC         %.3f\n", s.IPC)
	fmt.Printf("speedup     %.3f (vs no value prediction)\n", s.Speedup)
	fmt.Printf("coverage    %.1f%%\n", 100*s.Coverage)
	fmt.Printf("accuracy    %.4f\n", s.Accuracy)
	st := s.Stats
	fmt.Printf("squashes    value=%d branch=%d memorder=%d reissued=%d\n",
		st.SquashValue, st.SquashBranch, st.SquashMemOrder, st.ReissuedUops)
	fmt.Printf("branches    %.2f MPKI\n", st.BranchMPKI())
	fmt.Printf("back-to-back eligible fetches: %.1f%%\n", 100*st.B2BFraction())
	return 0
}
