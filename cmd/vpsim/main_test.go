package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func runArgs(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), code
}

var shortWindows = []string{"-warmup", "500", "-measure", "2000"}

// TestTextReport drives the default text path end to end, extended-spec
// echo included.
func TestTextReport(t *testing.T) {
	args := append([]string{"-kernel", "gzip", "-pred", "lvp"}, shortWindows...)
	out, errb, code := runArgs(t, args...)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, errb)
	}
	for _, want := range []string{"kernel      gzip", "lvp (FPC counters, squash recovery)", "IPC", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "config ") {
		t.Errorf("default spec printed an extended-config line:\n%s", out)
	}

	args = append([]string{"-kernel", "gzip", "-pred", "vtage", "-width", "4", "-max-hist", "256"}, shortWindows...)
	out, errb, code = runArgs(t, args...)
	if code != 0 {
		t.Fatalf("extended spec exited %d: %s", code, errb)
	}
	if !strings.Contains(out, "width=4") || !strings.Contains(out, "max_hist=256") {
		t.Errorf("extended spec not echoed:\n%s", out)
	}
}

// TestJSONEmitsRecord: -format json emits the stable Record field names.
func TestJSONEmitsRecord(t *testing.T) {
	args := append([]string{"-kernel", "gzip", "-pred", "lvp", "-format", "json"}, shortWindows...)
	out, errb, code := runArgs(t, args...)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, errb)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"kernel", "predictor", "counters", "recovery", "ipc", "speedup", "fpc_vector"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("record missing field %q: %v", key, rec)
		}
	}
	if rec["kernel"] != "gzip" || rec["predictor"] != "lvp" {
		t.Errorf("wrong record identity: %v", rec)
	}
}

// TestServerFlagMatchesInProcess: the same spec through -server and through
// the in-process backend yields the identical record.
func TestServerFlagMatchesInProcess(t *testing.T) {
	srv, err := repro.NewServer(repro.ServerOptions{Warmup: 500, Measure: 2_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	base := []string{"-kernel", "art", "-pred", "vtage", "-counters", "fpc", "-format", "json"}
	local, errb, code := runArgs(t, append(base, shortWindows...)...)
	if code != 0 {
		t.Fatalf("local exited %d: %s", code, errb)
	}
	// The remote run carries no window flags: a daemon's windows are its own.
	remote, errb, code := runArgs(t, append(base, "-server", ts.URL)...)
	if code != 0 {
		t.Fatalf("remote exited %d: %s", code, errb)
	}
	if local != remote {
		t.Errorf("backends disagree:\n--- local\n%s--- remote\n%s", local, remote)
	}

	// Explicit window flags alongside -server are refused, not ignored.
	if _, errb, code := runArgs(t, append(append(base, shortWindows...), "-server", ts.URL)...); code != 2 {
		t.Errorf("-server with explicit windows exited %d (stderr %q), want 2", code, errb)
	}
}

// TestBadInvocations covers flag validation and runtime failures. An
// invalid spec is a usage error (exit 2) caught before any session warmup
// is paid, not a runtime failure discovered mid-run.
func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "bogus"},
		{"-counters", "bogus"},
		{"-recovery", "bogus"},
		{"-bogusflag"},
		{"-kernel", "nope"},
		{"-pred", "lvp", "-max-hist", "256"}, // vtage-only knob
		{"-pred", "vtage", "-fpc-vector", "0,2,nope"},
		{"-pred", "vtage", "-fpc-vector", "1,2,3"}, // wrong arity
		{"-width", "99"},
		{"-server", "http://127.0.0.1:1", "-store-dir", "x"}, // store is local-only
	} {
		if _, _, code := runArgs(t, args...); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
	for _, args := range [][]string{
		{"-server", "http://127.0.0.1:1"},
	} {
		if _, errb, code := runArgs(t, args...); code != 1 || !strings.Contains(errb, "vpsim:") {
			t.Errorf("run(%v) exited %d (stderr %q), want 1", args, code, errb)
		}
	}
}

// TestStoreDirPersistsAndReloads: the first run over an empty -store-dir
// persists its records; a second process-equivalent run over the same dir
// prints the identical report.
func TestStoreDirPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	args := append([]string{"-kernel", "gzip", "-pred", "lvp", "-format", "json", "-store-dir", dir}, shortWindows...)
	first, errb, code := runArgs(t, args...)
	if code != 0 {
		t.Fatalf("first run exited %d: %s", code, errb)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("store dir holds %d entries after the run (err %v), want >0", len(entries), err)
	}
	second, errb, code := runArgs(t, args...)
	if code != 0 {
		t.Fatalf("second run exited %d: %s", code, errb)
	}
	if first != second {
		t.Errorf("store-backed rerun changed the record:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestProgramAndGenWorkloads drives the workload-source flags: a -program
// file (text and binary), the equivalent -gen spelling, and their identity —
// all three must simulate the same content-addressed workload and print
// identical reports.
func TestProgramAndGenWorkloads(t *testing.T) {
	prog, err := repro.GenerateProgram("mixed", 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	vasm := filepath.Join(dir, "m.vasm")
	bin := filepath.Join(dir, "m.isa")
	if err := writeFile(vasm, repro.DisassembleProgram(prog)); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(bin, prog.Encode()); err != nil {
		t.Fatal(err)
	}

	base := append([]string{"-pred", "stride", "-format", "json"}, shortWindows...)
	var reports []string
	for _, src := range [][]string{
		{"-program", vasm},
		{"-program", bin},
		{"-gen", "mixed:11"},
	} {
		out, errb, code := runArgs(t, append(append([]string{}, base...), src...)...)
		if code != 0 {
			t.Fatalf("%v exited %d: %s", src, code, errb)
		}
		if !strings.Contains(out, repro.ProgramID(prog)) {
			t.Errorf("%v report does not carry the content-addressed id:\n%s", src, out)
		}
		reports = append(reports, out)
	}
	if reports[0] != reports[1] || reports[0] != reports[2] {
		t.Errorf("workload sources disagree:\n%s\n%s\n%s", reports[0], reports[1], reports[2])
	}
}

// TestProgramFlagUsageErrors: conflicting or malformed workload sources are
// usage errors (exit 2) with actionable messages.
func TestProgramFlagUsageErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.vasm")
	if err := writeFile(bad, []byte("frobnicate r1, r2\n")); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-program", bad},
		{"-program", filepath.Join(dir, "missing.vasm")},
		{"-program", bad, "-gen", "mixed:1"},
		{"-kernel", "gzip", "-gen", "mixed:1"},
		{"-gen", "mixed"},      // no seed
		{"-gen", "mixed:x"},    // bad seed
		{"-gen", "nofamily:1"}, // unknown family
	} {
		if _, errb, code := runArgs(t, args...); code != 2 {
			t.Errorf("run(%v) exited %d (stderr %q), want 2", args, code, errb)
		}
	}
}

// TestProgramUploadsToServer: -program with -server must match the local
// record exactly — the upload happens transparently.
func TestProgramUploadsToServer(t *testing.T) {
	srv, err := repro.NewServer(repro.ServerOptions{Warmup: 500, Measure: 2_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	prog, err := repro.GenerateProgram("branchy", 5)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "b.vasm")
	if err := writeFile(file, repro.DisassembleProgram(prog)); err != nil {
		t.Fatal(err)
	}
	base := []string{"-program", file, "-pred", "lvp", "-format", "json"}
	local, errb, code := runArgs(t, append(base, shortWindows...)...)
	if code != 0 {
		t.Fatalf("local exited %d: %s", code, errb)
	}
	remote, errb, code := runArgs(t, append(base, "-server", ts.URL)...)
	if code != 0 {
		t.Fatalf("remote exited %d: %s", code, errb)
	}
	if local != remote {
		t.Errorf("backends disagree on the program workload:\n--- local\n%s--- remote\n%s", local, remote)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestListKernels: -list prints every kernel.
func TestListKernels(t *testing.T) {
	out, _, code := runArgs(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if got := len(strings.Fields(out)); got != len(repro.Kernels()) {
		t.Errorf("-list printed %d kernels, want %d", got, len(repro.Kernels()))
	}
}
