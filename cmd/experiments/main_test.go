package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListShowsEveryExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, id := range []string{"table1", "fig1", "fig4", "acc", "abl-width"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// TestRunJSONRoundTrip drives the real flag path: -run fig1 -format json
// must emit a JSON array that parses back into one record per kernel with
// the stable field names.
func TestRunJSONRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-run", "fig1", "-format", "json",
		"-warmup", "500", "-measure", "2000", "-workers", "4"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	var recs []map[string]any
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(recs) != 19 {
		t.Fatalf("got %d records, want 19 (one per kernel)", len(recs))
	}
	for _, r := range recs {
		for _, key := range []string{"kernel", "predictor", "ipc", "speedup", "coverage"} {
			if _, ok := r[key]; !ok {
				t.Fatalf("record missing field %q: %v", key, r)
			}
		}
		if r["predictor"] != "none" || r["speedup"] != 1.0 {
			t.Errorf("fig1 records are baseline runs, got %v", r)
		}
	}
}

func TestRunCSVHasHeaderAndRows(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-run", "fig1", "-format", "csv", "-warmup", "500", "-measure", "2000"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d CSV lines, want 20 (header + 19 kernels)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kernel,predictor,") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
}

// TestUnknownIDPrintsIndex: a bad -run id must fail with the full §5.1
// experiment index (id + paper artifact), not a bare error.
func TestUnknownIDPrintsIndex(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("unknown id exited %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown id "fig99"`) {
		t.Errorf("missing the offending id: %s", msg)
	}
	for _, want := range []string{"fig4", "abl-width", "Table 1", "selective reissue"} {
		if !strings.Contains(msg, want) {
			t.Errorf("index after unknown id missing %q:\n%s", want, msg)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-run", "fig99"},           // unknown id
		{"-all", "-format", "json"}, // -all is text-only
		{},                          // no action
		{"-bogusflag"},              // parse error
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig1", "-format", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown format exited %d, want 1", code)
	}
}
