package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestListShowsEveryExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, id := range []string{"table1", "fig1", "fig4", "acc", "abl-width"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// startServer hosts an in-process simulation service for -server tests and
// returns its base URL.
func startServer(t *testing.T, warmup, measure uint64) string {
	t.Helper()
	srv, err := repro.NewServer(repro.ServerOptions{Warmup: warmup, Measure: measure, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// TestServerFlagMatchesInProcess is the retargeting acceptance test: the
// same -run against -server and against the in-process backend must emit
// byte-identical output, for the structured and the text renderer alike.
func TestServerFlagMatchesInProcess(t *testing.T) {
	url := startServer(t, 500, 2_000)
	for _, format := range []string{"csv", "text"} {
		var local, remote, errb bytes.Buffer
		args := []string{"-run", "fig1", "-format", format, "-warmup", "500", "-measure", "2000"}
		if code := run(context.Background(), args, &local, &errb); code != 0 {
			t.Fatalf("local %s exited %d: %s", format, code, errb.String())
		}
		args = append(args, "-server", url)
		if code := run(context.Background(), args, &remote, &errb); code != 0 {
			t.Fatalf("remote %s exited %d: %s", format, code, errb.String())
		}
		if local.String() != remote.String() {
			t.Errorf("fig1 %s output differs between backends:\n--- local\n%s--- remote\n%s",
				format, local.String(), remote.String())
		}
	}
}

// TestServerFlagListAndErrors: -list reads the server's index; a window
// mismatch against the daemon fails loudly; a dead server exits 1.
func TestServerFlagListAndErrors(t *testing.T) {
	url := startServer(t, 500, 2_000)
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-list", "-server", url}, &out, &errb); code != 0 {
		t.Fatalf("-list -server exited %d: %s", code, errb.String())
	}
	for _, id := range []string{"fig4", "abl-width", "Table 1"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("remote -list output missing %q:\n%s", id, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	args := []string{"-run", "fig1", "-server", url, "-warmup", "999"}
	if code := run(context.Background(), args, &out, &errb); code != 1 {
		t.Fatalf("window mismatch exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "per-daemon") {
		t.Errorf("window mismatch error does not explain itself: %s", errb.String())
	}

	errb.Reset()
	if code := run(context.Background(), []string{"-run", "fig1", "-server", "http://127.0.0.1:1"}, &out, &errb); code != 1 {
		t.Errorf("unreachable server exited %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestRunJSONRoundTrip drives the real flag path: -run fig1 -format json
// must emit a JSON array that parses back into one record per kernel with
// the stable field names.
func TestRunJSONRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-run", "fig1", "-format", "json",
		"-warmup", "500", "-measure", "2000", "-workers", "4"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	var recs []map[string]any
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(recs) != 19 {
		t.Fatalf("got %d records, want 19 (one per kernel)", len(recs))
	}
	for _, r := range recs {
		for _, key := range []string{"kernel", "predictor", "ipc", "speedup", "coverage"} {
			if _, ok := r[key]; !ok {
				t.Fatalf("record missing field %q: %v", key, r)
			}
		}
		if r["predictor"] != "none" || r["speedup"] != 1.0 {
			t.Errorf("fig1 records are baseline runs, got %v", r)
		}
	}
}

func TestRunCSVHasHeaderAndRows(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-run", "fig1", "-format", "csv", "-warmup", "500", "-measure", "2000"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d CSV lines, want 20 (header + 19 kernels)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kernel,predictor,") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
}

// TestUnknownIDPrintsIndex: a bad -run id must fail with the full §5.1
// experiment index (id + paper artifact), not a bare error.
func TestUnknownIDPrintsIndex(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-run", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("unknown id exited %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown id "fig99"`) {
		t.Errorf("missing the offending id: %s", msg)
	}
	for _, want := range []string{"fig4", "abl-width", "Table 1", "selective reissue"} {
		if !strings.Contains(msg, want) {
			t.Errorf("index after unknown id missing %q:\n%s", want, msg)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-run", "fig99"},           // unknown id
		{"-all", "-format", "json"}, // -all is text-only
		{},                          // no action
		{"-bogusflag"},              // parse error
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-run", "fig1", "-format", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown format exited %d, want 1", code)
	}
}

// TestAblationJSONDeterministicAcrossWorkers pins the PR 4 acceptance
// property: an ablation's structured output is byte-identical whether its
// spec batch runs on one worker or eight — parallel scheduling of the
// extended (custom-config) specs never changes rendered records.
func TestAblationJSONDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 2)
	for i, workers := range []string{"1", "8"} {
		var out, errb bytes.Buffer
		args := []string{"-run", "abl-fpc", "-format", "json",
			"-warmup", "500", "-measure", "2000", "-workers", workers}
		if code := run(context.Background(), args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s exited %d: %s", workers, code, errb.String())
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("abl-fpc JSON differs between -workers 1 and -workers 8:\n--- 1 worker\n%s--- 8 workers\n%s",
			outputs[0], outputs[1])
	}
	var recs []map[string]any
	if err := json.Unmarshal([]byte(outputs[0]), &recs); err != nil {
		t.Fatalf("abl-fpc output is not a JSON array: %v", err)
	}
	// 4 kernels x (baseline + 5 sweep points), with the explicit vectors on
	// the custom-counter records.
	if len(recs) != 24 {
		t.Fatalf("abl-fpc emitted %d records, want 24", len(recs))
	}
	custom := 0
	for _, r := range recs {
		if r["counters"] == "custom" {
			custom++
			if r["fpc_vector"] == "" {
				t.Errorf("custom-counter record without fpc_vector: %v", r)
			}
		}
	}
	// Per kernel: 3 sweep points carry explicit vectors (the 3-bit point
	// folds onto baseline counters, the 7-bit point onto the FPC scheme).
	if custom != 12 {
		t.Errorf("%d custom-vector records, want 12", custom)
	}
}

// TestInterruptedRunExitsNonzero: a cancelled context (what SIGINT triggers
// via signal.NotifyContext in main) must abort the run with a context error
// on stderr and the 130 exit status.
func TestInterruptedRunExitsNonzero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	args := []string{"-run", "abl-hist", "-warmup", "500", "-measure", "2000"}
	if code := run(ctx, args, &out, &errb); code != 130 {
		t.Fatalf("interrupted run exited %d, want 130 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") || !strings.Contains(errb.String(), "context canceled") {
		t.Errorf("stderr does not report the interruption: %s", errb.String())
	}
	var out2, errb2 bytes.Buffer
	if code := run(ctx, []string{"-all"}, &out2, &errb2); code != 130 {
		t.Errorf("interrupted -all exited %d, want 130 (stderr: %s)", code, errb2.String())
	}
}

// TestCorpusSweepBackends drives -corpus through both backends: the same
// generated corpus must produce byte-identical output locally and against a
// daemon (which receives the programs by automatic upload), in every format.
func TestCorpusSweepBackends(t *testing.T) {
	dir := t.TempDir()
	for _, gen := range []struct {
		family string
		seed   uint64
		name   string
	}{
		{"branchy", 1, "b1.vasm"},
		{"memory", 2, "m2.isa"},
	} {
		p, err := repro.GenerateProgram(gen.family, gen.seed)
		if err != nil {
			t.Fatal(err)
		}
		data := repro.DisassembleProgram(p)
		if strings.HasSuffix(gen.name, ".isa") {
			data = p.Encode()
		}
		if err := os.WriteFile(filepath.Join(dir, gen.name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	url := startServer(t, 500, 2_000)
	for _, format := range []string{"text", "csv"} {
		var local, remote, errb bytes.Buffer
		args := []string{"-corpus", dir, "-pred", "lvp,stride", "-format", format, "-warmup", "500", "-measure", "2000"}
		if code := run(context.Background(), args, &local, &errb); code != 0 {
			t.Fatalf("local corpus %s exited %d: %s", format, code, errb.String())
		}
		args = []string{"-corpus", dir, "-pred", "lvp,stride", "-format", format, "-server", url}
		if code := run(context.Background(), args, &remote, &errb); code != 0 {
			t.Fatalf("remote corpus %s exited %d: %s", format, code, errb.String())
		}
		if local.String() != remote.String() {
			t.Errorf("corpus %s output differs between backends:\n--- local\n%s--- remote\n%s",
				format, local.String(), remote.String())
		}
	}

	// Usage errors: empty corpus directory, conflict with -run.
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-corpus", t.TempDir()}, &out, &errb); code != 1 {
		t.Errorf("empty corpus exited %d, want 1 (stderr %s)", code, errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-corpus", dir, "-run", "fig1"}, &out, &errb); code != 2 {
		t.Errorf("-corpus with -run exited %d, want 2", code)
	}
}
