// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §5 maps each id to the paper artifact).
//
// Usage:
//
//	experiments -all                 # everything (several minutes)
//	experiments -run fig4            # one table/figure
//	experiments -run fig4 -measure 1000000   # bigger windows
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/harness"
)

func main() {
	run := flag.String("run", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	warmup := flag.Uint64("warmup", 50_000, "warmup µops per simulation")
	measure := flag.Uint64("measure", 250_000, "measured µops per simulation")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	se := harness.NewSession(*warmup, *measure)
	switch {
	case *all:
		if err := harness.RunAll(se, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case *run != "":
		e, ok := harness.ExperimentByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (have %s)\n",
				*run, strings.Join(repro.Experiments(), ", "))
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(se, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
