// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §5 maps each id to the paper artifact). It runs through the
// backend-neutral repro.Runner: in-process by default, or against a warm
// vpserved daemon with -server — same ids, same flags, byte-identical
// output.
//
// Usage:
//
//	experiments -all                         # everything (several minutes)
//	experiments -run fig4                    # one table/figure
//	experiments -run fig4 -measure 1000000   # bigger windows
//	experiments -run fig4 -workers 8         # parallel simulation
//	experiments -run fig4 -format json       # structured results
//	experiments -run abl-fpc -format csv     # ablations are structured too
//	experiments -run fig4 -server http://127.0.0.1:8437   # remote, memo-warm
//	experiments -run fig4 -shards "$(cat fleet.addrs)"    # sharded across a fleet
//	experiments -list -server http://127.0.0.1:8437       # the server's index
//	experiments -run fig4 -store-dir .vpstore             # warm-start next run
//	experiments -corpus ./corpus -pred lvp,stride,vtage   # sweep your own programs
//
// -corpus sweeps every program file (.isa binary or .vasm text assembly,
// format sniffed) in a directory across the -pred predictor list, through
// whichever backend the other flags select — programs are registered with
// the runner (uploaded, when remote) automatically. Generate a corpus with
// genprog.
//
// Ctrl-C (SIGINT) or SIGTERM cancels cleanly: in-flight simulations stop at
// their next cancellation checkpoint (local and remote — a remote job is
// cancelled server-side) and the process exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro"
	"repro/internal/harness"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code. ctx cancels in-flight work (the signal handler in main
// wires it to SIGINT/SIGTERM); an interrupted run exits 130, the shell
// convention for death-by-SIGINT.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "", "experiment id to run (see -list)")
	all := fs.Bool("all", false, "run every experiment")
	warmup := fs.Uint64("warmup", 50_000, "warmup µops per simulation")
	measure := fs.Uint64("measure", 250_000, "measured µops per simulation")
	workers := fs.Int("workers", 0, "parallel simulation workers (<=0: GOMAXPROCS; remote: server pool)")
	format := fs.String("format", "text", "output format for -run: text, json, or csv")
	list := fs.Bool("list", false, "list experiment ids and exit")
	corpus := fs.String("corpus", "", "sweep every program file in this directory (instead of -run/-all)")
	preds := fs.String("pred", "lvp,stride,vtage", "comma-separated predictors for the -corpus sweep")
	server := fs.String("server", "", "run against this vpserved base URL instead of in-process")
	shards := fs.String("shards", "", "comma-separated vpserved base URLs: route across a fleet instead of in-process (see vpfleet)")
	storeDir := fs.String("store-dir", "", "persistent record store directory for in-process runs (empty: memory-only)")
	traceLog := fs.String("trace-log", "", "append one NDJSON span per run lifecycle stage to this file (empty: off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		if harness.IsContextErr(err) {
			fmt.Fprintln(stderr, "experiments: interrupted:", err)
			return 130
		}
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	// Remote backends size simulations daemon-wide; only forward the window
	// flags the user actually set, so the runner can verify them against the
	// server (and default invocations just use the server's windows).
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	opts := repro.RunnerOptions{
		Warmup: *warmup, Measure: *measure, Workers: *workers, StoreDir: *storeDir,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		opts.TraceWriter = f
	}

	if *server != "" && *shards != "" {
		fmt.Fprintln(stderr, "experiments: -server and -shards both name a remote backend; use one")
		return 2
	}
	remote := *server != "" || *shards != ""
	var runner repro.Runner
	if remote {
		if *storeDir != "" {
			fmt.Fprintln(stderr, "experiments: -store-dir applies to in-process runs; a remote daemon's store is set by vpserved -store-dir")
			return 2
		}
	}
	switch {
	case *shards != "":
		// A fleet backend: spec-sharded routing across the listed daemons.
		sharded, err := repro.OpenShardedRunner(repro.RunnerOptions{
			Shards:      strings.Split(*shards, ","),
			TraceWriter: opts.TraceWriter,
		})
		if err != nil {
			return fail(err)
		}
		runner = sharded
	case *server != "":
		// Remote runs trace dispatch spans only; the daemon traces
		// simulation stages via vpserved -trace-log.
		runner = repro.OpenRemoteRunner(*server, repro.RunnerOptions{TraceWriter: opts.TraceWriter})
	default:
		local, err := repro.OpenLocalRunner(opts)
		if err != nil {
			return fail(err)
		}
		runner = local
	}
	defer runner.Close()

	eo := repro.ExperimentOptions{Workers: *workers, Format: *format}
	if remote {
		if explicit["warmup"] {
			eo.Warmup = *warmup
		}
		if explicit["measure"] {
			eo.Measure = *measure
		}
	}

	if *corpus != "" {
		if *runID != "" || *all {
			fmt.Fprintln(stderr, "experiments: -corpus is its own sweep; drop -run/-all")
			return 2
		}
		if err := runCorpus(ctx, runner, *corpus, *preds, *format, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	index, err := runner.Experiments(ctx)
	if err != nil {
		return fail(err)
	}

	switch {
	case *list:
		printIndex(stdout, index)
		return 0
	case *all:
		if *format != "text" {
			fmt.Fprintln(stderr, "experiments: -format json|csv applies to -run, not -all")
			return 2
		}
		for _, e := range index {
			fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
			if err := runner.Experiment(ctx, e.ID, eo, stdout); err != nil {
				return fail(err)
			}
			fmt.Fprintln(stdout, strings.Repeat("-", 70))
		}
	case *runID != "":
		e, ok := experimentByID(index, *runID)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q; the experiment index (DESIGN.md §5.1):\n", *runID)
			printIndex(stderr, index)
			return 2
		}
		if *format == "text" {
			fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
		}
		if err := runner.Experiment(ctx, e.ID, eo, stdout); err != nil {
			return fail(err)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// runCorpus loads every program file in dir (sorted by name, .isa and .vasm
// alike), registers each with the runner, and batches the program × predictor
// sweep through it — so a corpus run exercises exactly the Simulate path a
// builtin sweep does, local or remote. Text output is a compact table; json
// and csv emit the same stable Record fields as everywhere else.
func runCorpus(ctx context.Context, runner repro.Runner, dir, preds, format string, stdout io.Writer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type loaded struct {
		file string
		id   string
	}
	var programs []loaded
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".isa" && ext != ".vasm" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		p, err := repro.LoadProgram(strings.TrimSuffix(e.Name(), ext), data)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		id, err := runner.RegisterProgram(ctx, p)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		programs = append(programs, loaded{file: e.Name(), id: id})
	}
	if len(programs) == 0 {
		return fmt.Errorf("no program files (.isa, .vasm) in %s", dir)
	}

	var predictors []string
	for _, p := range strings.Split(preds, ",") {
		if p = strings.TrimSpace(p); p != "" {
			predictors = append(predictors, p)
		}
	}
	if len(predictors) == 0 {
		return fmt.Errorf("empty -pred list")
	}
	var specs []repro.Spec
	for _, prog := range programs {
		for _, pred := range predictors {
			specs = append(specs, repro.Spec{Program: prog.id, Predictor: pred, Counters: repro.FPC})
		}
	}

	var recs []repro.Record
	if err := runner.Batch(ctx, specs, func(r repro.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return err
	}
	switch format {
	case "json":
		return harness.WriteJSON(stdout, recs)
	case "csv":
		return harness.WriteCSV(stdout, recs)
	case "", "text":
		fmt.Fprintf(stdout, "%-24s %-12s %8s %8s %9s %9s\n", "program", "predictor", "ipc", "speedup", "coverage", "accuracy")
		for i, r := range recs {
			fmt.Fprintf(stdout, "%-24s %-12s %8.3f %8.3f %8.1f%% %9.4f\n",
				programs[i/len(predictors)].file, r.Predictor, r.IPC, r.Speedup, 100*r.Coverage, r.Accuracy)
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (have text, json, csv)", format)
	}
}

func experimentByID(index []repro.ExperimentInfo, id string) (repro.ExperimentInfo, bool) {
	for _, e := range index {
		if e.ID == id {
			return e, true
		}
	}
	return repro.ExperimentInfo{}, false
}

// printIndex writes the §5.1 experiment index: id and the paper artifact it
// regenerates.
func printIndex(w io.Writer, index []repro.ExperimentInfo) {
	for _, e := range index {
		fmt.Fprintf(w, "%-9s %s\n", e.ID, e.Title)
	}
}
