// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §5 maps each id to the paper artifact).
//
// Usage:
//
//	experiments -all                         # everything (several minutes)
//	experiments -run fig4                    # one table/figure
//	experiments -run fig4 -measure 1000000   # bigger windows
//	experiments -run fig4 -workers 8         # parallel simulation
//	experiments -run fig4 -format json       # structured results
//	experiments -run abl-fpc -format csv     # ablations are structured too
//
// Ctrl-C (SIGINT) or SIGTERM cancels cleanly: in-flight simulations stop at
// their next cancellation checkpoint and the process exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/harness"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code. ctx cancels in-flight work (the signal handler in main
// wires it to SIGINT/SIGTERM); an interrupted run exits 130, the shell
// convention for death-by-SIGINT.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "", "experiment id to run (see -list)")
	all := fs.Bool("all", false, "run every experiment")
	warmup := fs.Uint64("warmup", 50_000, "warmup µops per simulation")
	measure := fs.Uint64("measure", 250_000, "measured µops per simulation")
	workers := fs.Int("workers", 0, "parallel simulation workers (<=0: GOMAXPROCS)")
	format := fs.String("format", "text", "output format for -run: text, json, or csv")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		if harness.IsContextErr(err) {
			fmt.Fprintln(stderr, "experiments: interrupted:", err)
			return 130
		}
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	if *list {
		printIndex(stdout)
		return 0
	}

	se := harness.NewSession(*warmup, *measure)
	switch {
	case *all:
		if *format != "text" {
			fmt.Fprintln(stderr, "experiments: -format json|csv applies to -run, not -all")
			return 2
		}
		if err := harness.RunAllExperiments(ctx, se, stdout, *workers); err != nil {
			return fail(err)
		}
	case *runID != "":
		e, ok := harness.ExperimentByID(*runID)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q; the experiment index (DESIGN.md §5.1):\n", *runID)
			printIndex(stderr)
			return 2
		}
		if *format == "text" {
			fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
		}
		if err := harness.Render(ctx, se, e, *format, *workers, stdout); err != nil {
			return fail(err)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// printIndex writes the §5.1 experiment index: id and the paper artifact it
// regenerates.
func printIndex(w io.Writer) {
	for _, e := range harness.Experiments() {
		fmt.Fprintf(w, "%-9s %s\n", e.ID, e.Title)
	}
}
